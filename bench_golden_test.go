package reconpriv

// Golden-file regression for the rpbench -json artifact schema: downstream
// plotting consumes the BENCH_<name>.json files, so a silently renamed or
// dropped field must fail tier-1 here instead of breaking the plots. The
// committed golden is the adversary row at a frozen small configuration;
// the comparison is structural — the exact key set, plus exact equality of
// the fields that are deterministic under the frozen seeds — while timing
// fields only need to exist and be numeric.

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/reconpriv/reconpriv/internal/experiments"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files instead of comparing")

// The frozen configuration: small enough for tier-1, large enough that the
// CENSUS pipeline (generalization, grouping, SPS, indexing) all engage.
const (
	goldenCensusSize = 20000
	goldenConds      = 200
)

const adversaryGoldenPath = "testdata/BENCH_adversary.golden.json"

// goldenDeterministic lists the adversary-row fields that are pure
// functions of the frozen seeds and must match the golden exactly. The
// remaining fields (index_ms, scan_ms, batch_ms, speedup, workers,
// max_abs_diff) are machine-dependent: present and numeric, values free.
var goldenDeterministic = []string{"dataset", "records", "conditions", "empty_subsets"}

func TestBenchAdversaryGoldenJSON(t *testing.T) {
	res, err := experiments.RunAdversaryBench(goldenCensusSize, goldenConds)
	if err != nil {
		t.Fatal(err)
	}
	// Marshal exactly as cmd/rpbench does for its BENCH_<name>.json files.
	fresh, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(adversaryGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(adversaryGoldenPath, append(fresh, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", adversaryGoldenPath)
		return
	}
	goldenData, err := os.ReadFile(adversaryGoldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test -run TestBenchAdversaryGoldenJSON -update .)", err)
	}

	var got, want map[string]any
	if err := json.Unmarshal(fresh, &got); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(goldenData, &want); err != nil {
		t.Fatalf("golden file is not valid JSON: %v", err)
	}

	for k := range want {
		if _, ok := got[k]; !ok {
			t.Errorf("field %q disappeared from the bench JSON (schema drift)", k)
		}
	}
	for k, v := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("new field %q is not in the golden (regenerate with -update)", k)
			continue
		}
		if _, isNum := v.(float64); !isNum {
			if sv, isStr := v.(string); !isStr || sv == "" {
				t.Errorf("field %q is neither a number nor a non-empty string: %v", k, v)
			}
		}
	}
	for _, k := range goldenDeterministic {
		if got[k] != want[k] {
			t.Errorf("deterministic field %q = %v, golden has %v (frozen-seed drift)", k, got[k], want[k])
		}
	}
	// The equivalence bound is part of the artifact's meaning, not timing.
	if d, _ := got["max_abs_diff"].(float64); d > 1e-12 {
		t.Errorf("max_abs_diff %g exceeds the 1e-12 equivalence bound", d)
	}
}
