package reconpriv

import (
	"github.com/reconpriv/reconpriv/internal/dp"
)

// NIRAttackResult summarizes the non-independent-reasoning attack on
// differentially private answers (the paper's Section 2 and Table 1).
type NIRAttackResult struct {
	TrueConf    float64 // y/x, the confidence the attacker is after
	ConfMean    float64 // mean of the noisy estimate Y/X over the trials
	ConfStdErr  float64
	RelErr1Mean float64 // utility of the first noisy answer
	RelErr2Mean float64 // utility of the second noisy answer
	Indicator   float64 // 2(b/x)², Corollary 2's closed-form predictor
}

// NIRAttack simulates the two-query ratio attack against an
// ε-differentially-private Laplace mechanism: count queries with true
// answers x (the public-attribute match) and y (the match with the
// sensitive value) are answered with Laplace noise of scale
// b = sensitivity/ε, and the attacker estimates the rule confidence y/x
// from the noisy pair. When the indicator 2(b/x)² is small (the paper's
// rule of thumb: b/x ≤ 1/20), the estimate is reliable and a sensitive
// disclosure occurs even though each answer is differentially private.
func NIRAttack(epsilon, sensitivity, x, y float64, trials int, seed int64) (*NIRAttackResult, error) {
	mech := dp.LaplaceMechanism{Epsilon: epsilon, Sensitivity: sensitivity}
	res, err := dp.RatioAttack(rngFor(seed), mech, x, y, trials)
	if err != nil {
		return nil, err
	}
	return &NIRAttackResult{
		TrueConf:    res.TrueConf,
		ConfMean:    res.Conf.Mean,
		ConfStdErr:  res.Conf.StdErr,
		RelErr1Mean: res.RelErr1.Mean,
		RelErr2Mean: res.RelErr2.Mean,
		Indicator:   dp.Indicator(mech.Scale(), x),
	}, nil
}

// CountPair is one (x, y) pair of count answers for the NIR attack sweep:
// x the public-attribute match count, y the match count with the sensitive
// value. Pairs typically come from Adversary.CountPairs against a
// publication, closing the loop between the reconstruction engine and the
// DP disclosure experiment.
type CountPair struct {
	X, Y float64
}

// NIRSweepCell is one (ε, pair) cell of a sweep: the NIRAttackResult for
// that privacy budget and query pair.
type NIRSweepCell struct {
	Epsilon float64
	X, Y    float64
	NIRAttackResult
}

// NIRSweepResult is the vectorized NIR attack over a grid of privacy
// budgets and count pairs.
type NIRSweepResult struct {
	Sensitivity float64
	Trials      int
	// Cells is row-major over (epsilon, pair): the cell for epsilons[i] and
	// pairs[j] is Cells[i*len(pairs)+j].
	Cells []NIRSweepCell
}

// NIRAttackSweep is the vectorized form of NIRAttack: it evaluates the
// two-query ratio attack for every privacy budget in epsilons crossed with
// every count pair, fanning the grid out over all cores. Every cell draws a
// private RNG stream derived from (seed, cell position), so the sweep is
// deterministic for a seed and identical however it is scheduled. This is
// the paper's Table 1 as a reusable measurement: pass the ε grid and the
// (x, y) pairs of the rules under attack — typically straight from
// Adversary.CountPairs — and read off which cells disclose (small
// Indicator, tight Conf) despite each answer being ε-differentially
// private.
func NIRAttackSweep(epsilons []float64, pairs []CountPair, sensitivity float64, trials int, seed int64) (*NIRSweepResult, error) {
	dpairs := make([]dp.CountPair, len(pairs))
	for i, pr := range pairs {
		dpairs[i] = dp.CountPair{X: pr.X, Y: pr.Y}
	}
	sweep, err := dp.RatioAttackSweep(seed, sensitivity, epsilons, dpairs, trials, 0)
	if err != nil {
		return nil, err
	}
	out := &NIRSweepResult{Sensitivity: sensitivity, Trials: trials, Cells: make([]NIRSweepCell, len(sweep.Cells))}
	for i := range sweep.Cells {
		c := &sweep.Cells[i]
		out.Cells[i] = NIRSweepCell{
			Epsilon: c.Epsilon,
			X:       c.X,
			Y:       c.Y,
			NIRAttackResult: NIRAttackResult{
				TrueConf:    c.TrueConf,
				ConfMean:    c.Conf.Mean,
				ConfStdErr:  c.Conf.StdErr,
				RelErr1Mean: c.RelErr1.Mean,
				RelErr2Mean: c.RelErr2.Mean,
				Indicator:   c.Indicator,
			},
		}
	}
	return out, nil
}
