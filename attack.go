package reconpriv

import (
	"github.com/reconpriv/reconpriv/internal/dp"
)

// NIRAttackResult summarizes the non-independent-reasoning attack on
// differentially private answers (the paper's Section 2 and Table 1).
type NIRAttackResult struct {
	TrueConf    float64 // y/x, the confidence the attacker is after
	ConfMean    float64 // mean of the noisy estimate Y/X over the trials
	ConfStdErr  float64
	RelErr1Mean float64 // utility of the first noisy answer
	RelErr2Mean float64 // utility of the second noisy answer
	Indicator   float64 // 2(b/x)², Corollary 2's closed-form predictor
}

// NIRAttack simulates the two-query ratio attack against an
// ε-differentially-private Laplace mechanism: count queries with true
// answers x (the public-attribute match) and y (the match with the
// sensitive value) are answered with Laplace noise of scale
// b = sensitivity/ε, and the attacker estimates the rule confidence y/x
// from the noisy pair. When the indicator 2(b/x)² is small (the paper's
// rule of thumb: b/x ≤ 1/20), the estimate is reliable and a sensitive
// disclosure occurs even though each answer is differentially private.
func NIRAttack(epsilon, sensitivity, x, y float64, trials int, seed int64) (*NIRAttackResult, error) {
	mech := dp.LaplaceMechanism{Epsilon: epsilon, Sensitivity: sensitivity}
	res, err := dp.RatioAttack(rngFor(seed), mech, x, y, trials)
	if err != nil {
		return nil, err
	}
	return &NIRAttackResult{
		TrueConf:    res.TrueConf,
		ConfMean:    res.Conf.Mean,
		ConfStdErr:  res.Conf.StdErr,
		RelErr1Mean: res.RelErr1.Mean,
		RelErr2Mean: res.RelErr2.Mean,
		Indicator:   dp.Indicator(mech.Scale(), x),
	}, nil
}
