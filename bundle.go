package reconpriv

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"github.com/reconpriv/reconpriv/internal/perturb"
)

// BundleMeta is the sidecar metadata a consumer needs to use a published
// table: the retention probability to invert, the privacy parameters it was
// published under, and the generalization that produced its domains.
// Publishing the parameters is safe — reconstruction privacy is a property
// of the perturbation process, not a secret of the publisher.
type BundleMeta struct {
	Sensitive    string           `json:"sensitive"`
	P            float64          `json:"retention_probability"`
	Lambda       float64          `json:"lambda"`
	Delta        float64          `json:"delta"`
	Significance float64          `json:"significance"`
	RecordsIn    int              `json:"records_in"`
	RecordsOut   int              `json:"records_out"`
	Merges       []AttributeMerge `json:"merges,omitempty"`
}

const (
	bundleDataFile = "data.csv"
	bundleMetaFile = "meta.json"
)

// WriteBundle publishes the table with the full pipeline and writes the
// result to dir as data.csv plus meta.json. The directory is created if
// missing.
func WriteBundle(dir string, t *Table, opt Options) (*PublishReport, error) {
	pub, rep, err := Publish(t, opt)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("reconpriv: creating bundle directory: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, bundleDataFile))
	if err != nil {
		return nil, fmt.Errorf("reconpriv: creating bundle data: %w", err)
	}
	defer f.Close()
	if err := pub.WriteCSV(f); err != nil {
		return nil, err
	}
	meta := BundleMeta{
		Sensitive:    t.SensitiveAttribute(),
		P:            opt.RetentionProbability,
		Lambda:       opt.Lambda,
		Delta:        opt.Delta,
		Significance: opt.Significance,
		RecordsIn:    rep.RecordsIn,
		RecordsOut:   rep.RecordsOut,
		Merges:       rep.Merges,
	}
	mf, err := os.Create(filepath.Join(dir, bundleMetaFile))
	if err != nil {
		return nil, fmt.Errorf("reconpriv: creating bundle meta: %w", err)
	}
	defer mf.Close()
	enc := json.NewEncoder(mf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(meta); err != nil {
		return nil, fmt.Errorf("reconpriv: encoding bundle meta: %w", err)
	}
	return rep, nil
}

// ReadBundle loads a publication written by WriteBundle. The returned meta
// carries the retention probability for Reconstruct / EstimateCount.
func ReadBundle(dir string) (*Table, *BundleMeta, error) {
	mf, err := os.Open(filepath.Join(dir, bundleMetaFile))
	if err != nil {
		return nil, nil, fmt.Errorf("reconpriv: opening bundle meta: %w", err)
	}
	defer mf.Close()
	var meta BundleMeta
	if err := json.NewDecoder(mf).Decode(&meta); err != nil {
		return nil, nil, fmt.Errorf("reconpriv: decoding bundle meta: %w", err)
	}
	if meta.Sensitive == "" {
		return nil, nil, fmt.Errorf("reconpriv: bundle meta missing the sensitive attribute")
	}
	f, err := os.Open(filepath.Join(dir, bundleDataFile))
	if err != nil {
		return nil, nil, fmt.Errorf("reconpriv: opening bundle data: %w", err)
	}
	defer f.Close()
	t, err := ReadCSV(f, meta.Sensitive)
	if err != nil {
		return nil, nil, err
	}
	return t, &meta, nil
}

// RetentionForBreach returns the largest retention probability p that
// upgrades any adversary prior ≤ rho1 on a sensitive value to a posterior
// ≤ rho2 under uniform perturbation (ρ1-ρ2 privacy via amplification). Use
// it to pick Options.RetentionProbability when reconstruction privacy is
// layered on top of a breach-probability guarantee, as Definition 4
// anticipates.
func RetentionForBreach(rho1, rho2 float64, m int) (float64, error) {
	return perturb.RetentionForRho1Rho2(rho1, rho2, m)
}
