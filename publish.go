package reconpriv

import (
	"fmt"

	"github.com/reconpriv/reconpriv/internal/chimerge"
	"github.com/reconpriv/reconpriv/internal/core"
	"github.com/reconpriv/reconpriv/internal/dataset"
)

// AttributeMerge describes how generalization rewrote one public attribute.
type AttributeMerge struct {
	Attribute    string
	DomainBefore int
	DomainAfter  int
	// Merged maps each generalized value label to its original member labels.
	Merged map[string][]string
}

// PublishReport describes what a Publish call did.
type PublishReport struct {
	// Merges is the per-attribute generalization outcome (nil when
	// Significance is 0).
	Merges []AttributeMerge
	// PersonalGroups is |G| after generalization.
	PersonalGroups int
	// ViolatingGroups and ViolatingRecords quantify how much of the input
	// violated (λ, δ)-reconstruction privacy before enforcement (the v_g and
	// v_r of the paper's Section 6).
	ViolatingGroups  int
	ViolatingRecords int
	// SampledGroups counts groups the SPS algorithm down-sampled.
	SampledGroups int
	// RecordsIn and RecordsOut are the table sizes before and after
	// publishing (they differ only by the ±1 rounding of SPS scaling).
	RecordsIn, RecordsOut int
}

// Publish runs the full pipeline — generalize, test, enforce with SPS — and
// returns the private publication D*₂ together with a report. The published
// table satisfies (λ, δ)-reconstruction privacy in every personal group
// (Theorem 4) while aggregate reconstruction stays unbiased (Theorem 5).
func Publish(t *Table, opt Options) (*Table, *PublishReport, error) {
	if err := opt.validate(); err != nil {
		return nil, nil, err
	}
	work, merge, err := generalizeOrClone(t, opt.Significance)
	if err != nil {
		return nil, nil, err
	}
	rep := &PublishReport{RecordsIn: t.NumRows()}
	if merge != nil {
		rep.Merges = mergeReport(merge)
	}
	groups := dataset.GroupsOf(work)
	rep.PersonalGroups = groups.NumGroups()
	viol := core.Violations(groups, opt.params())
	rep.ViolatingGroups = viol.ViolatingGroups
	rep.ViolatingRecords = viol.ViolatingRecord
	published, st, err := core.PublishSPS(rngFor(opt.Seed), groups, opt.params())
	if err != nil {
		return nil, nil, err
	}
	rep.SampledGroups = st.SampledGroups
	rep.RecordsOut = st.RecordsOut
	return &Table{t: published.Table()}, rep, nil
}

// PublishUniform publishes with plain uniform perturbation (the UP baseline):
// every record's sensitive value is perturbed with retention probability p,
// with no privacy testing and no sampling. Generalization is still applied
// so the output is comparable with Publish.
func PublishUniform(t *Table, opt Options) (*Table, *PublishReport, error) {
	if err := opt.validate(); err != nil {
		return nil, nil, err
	}
	work, merge, err := generalizeOrClone(t, opt.Significance)
	if err != nil {
		return nil, nil, err
	}
	rep := &PublishReport{RecordsIn: t.NumRows(), RecordsOut: t.NumRows()}
	if merge != nil {
		rep.Merges = mergeReport(merge)
	}
	groups := dataset.GroupsOf(work)
	rep.PersonalGroups = groups.NumGroups()
	viol := core.Violations(groups, opt.params())
	rep.ViolatingGroups = viol.ViolatingGroups
	rep.ViolatingRecords = viol.ViolatingRecord
	published, err := core.PublishUP(rngFor(opt.Seed), groups, opt.RetentionProbability)
	if err != nil {
		return nil, nil, err
	}
	return &Table{t: published.Table()}, rep, nil
}

// ViolationReport is the outcome of CheckViolations.
type ViolationReport struct {
	Groups           int
	ViolatingGroups  int
	Records          int
	ViolatingRecords int
}

// VG returns the violating-group rate.
func (r ViolationReport) VG() float64 {
	if r.Groups == 0 {
		return 0
	}
	return float64(r.ViolatingGroups) / float64(r.Groups)
}

// VR returns the fraction of records covered by violating groups.
func (r ViolationReport) VR() float64 {
	if r.Records == 0 {
		return 0
	}
	return float64(r.ViolatingRecords) / float64(r.Records)
}

// CheckViolations tests every personal group of the (generalized) table
// against (λ, δ)-reconstruction privacy without publishing anything. The
// test (Corollary 4) depends only on group sizes and frequencies, not on a
// perturbation run.
func CheckViolations(t *Table, opt Options) (*ViolationReport, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	work, _, err := generalizeOrClone(t, opt.Significance)
	if err != nil {
		return nil, err
	}
	groups := dataset.GroupsOf(work)
	viol := core.Violations(groups, opt.params())
	return &ViolationReport{
		Groups:           viol.Groups,
		ViolatingGroups:  viol.ViolatingGroups,
		Records:          viol.Records,
		ViolatingRecords: viol.ViolatingRecord,
	}, nil
}

// Generalize applies only the chi-square value merging and returns the
// generalized table (step 1 of the pipeline), for callers that want to
// inspect or index it separately.
func Generalize(t *Table, significance float64) (*Table, []AttributeMerge, error) {
	if significance <= 0 || significance >= 1 {
		return nil, nil, fmt.Errorf("reconpriv: significance must be in (0,1), got %v", significance)
	}
	work, merge, err := generalizeOrClone(t, significance)
	if err != nil {
		return nil, nil, err
	}
	return &Table{t: work}, mergeReport(merge), nil
}

// MaxGroupSize exposes s_g (Eq. 10): the largest personal-group size at
// which a sensitive value of frequency f (domain size m) still satisfies
// (λ, δ)-reconstruction privacy under the options' parameters.
func MaxGroupSize(f float64, m int, opt Options) (float64, error) {
	if err := opt.validate(); err != nil {
		return 0, err
	}
	return core.MaxGroupSize(f, m, opt.params()), nil
}

func mergeReport(res *chimerge.Result) []AttributeMerge {
	if res == nil {
		return nil
	}
	out := make([]AttributeMerge, 0, len(res.Attrs))
	for _, a := range res.Attrs {
		am := AttributeMerge{
			Attribute:    a.Name,
			DomainBefore: a.DomainBefore,
			DomainAfter:  a.DomainAfter,
			Merged:       make(map[string][]string, a.DomainAfter),
		}
		mp := res.MappingFor(a.Attr)
		for old, nw := range mp.OldToNew {
			label := mp.NewValues[nw]
			am.Merged[label] = append(am.Merged[label], a.OldLabels[old])
		}
		out = append(out, am)
	}
	return out
}
