package reconpriv

import (
	"fmt"

	"github.com/reconpriv/reconpriv/internal/query"
	"github.com/reconpriv/reconpriv/internal/reconstruct"
)

// Reconstruct estimates the sensitive-value distribution of the record
// subset matching the given public-attribute conditions, from a *published*
// table. It inverts the perturbation with the maximum likelihood estimator
// of the paper's Lemma 2:
//
//	F'ᵢ = (O*ᵢ/|S*| − (1−p)/m) / p.
//
// conds maps attribute names to value labels; an empty map reconstructs over
// the whole table. p must be the retention probability the data was
// published with. The estimate is unbiased and sums to one, but entries may
// be slightly negative on small subsets — that inaccuracy on personal groups
// is exactly what reconstruction privacy guarantees.
//
// The returned map is keyed by sensitive-value label.
func Reconstruct(published *Table, conds map[string]string, p float64) (map[string]float64, error) {
	counts, size, err := observedCounts(published, conds)
	if err != nil {
		return nil, err
	}
	if size == 0 {
		return nil, fmt.Errorf("reconpriv: no records match the conditions")
	}
	est, err := reconstruct.MLE(counts, p)
	if err != nil {
		return nil, err
	}
	sa := published.t.Schema.SAAttr()
	out := make(map[string]float64, len(est))
	for i, v := range est {
		out[sa.Label(uint16(i))] = v
	}
	return out, nil
}

// EstimateCount estimates the number of records satisfying the conditions
// AND carrying the given sensitive value, from a published table — the
// count-query estimator est = |S*|·F' of the paper's Section 6.1.
func EstimateCount(published *Table, conds map[string]string, sensitiveValue string, p float64) (float64, error) {
	counts, size, err := observedCounts(published, conds)
	if err != nil {
		return 0, err
	}
	if size == 0 {
		return 0, nil
	}
	sa := published.t.Schema.SAAttr()
	code, err := sa.Code(sensitiveValue)
	if err != nil {
		return 0, err
	}
	fPrime := reconstruct.MLEValue(counts[code], size, p, sa.Domain())
	return float64(size) * fPrime, nil
}

// ReconstructClamped is Reconstruct with the estimate projected onto the
// probability simplex: negative entries are floored at 0 and the rest
// renormalized. The raw (unbiased) MLE of Reconstruct stays the default;
// clamping is for consumers that need a genuine distribution.
func ReconstructClamped(published *Table, conds map[string]string, p float64) (map[string]float64, error) {
	counts, size, err := observedCounts(published, conds)
	if err != nil {
		return nil, err
	}
	if size == 0 {
		return nil, fmt.Errorf("reconpriv: no records match the conditions")
	}
	est, err := reconstruct.MLEClamped(counts, p)
	if err != nil {
		return nil, err
	}
	sa := published.t.Schema.SAAttr()
	out := make(map[string]float64, len(est))
	for i, v := range est {
		out[sa.Label(uint16(i))] = v
	}
	return out, nil
}

// Adversary is the batched reconstruction engine over one published table:
// it indexes the table's marginal cubes once (the same structure the
// publication server answers queries from) and then evaluates arbitrary
// batches of reconstruction and count-estimate requests with one O(1)
// histogram lookup each, instead of the per-call table scan of Reconstruct
// and EstimateCount. Realistic adversaries — the linear reconstruction
// attacks of Kasiviswanathan et al. — issue thousands of correlated
// queries, which is exactly the workload this engine is built for; the
// scan-based functions remain as the cross-checked reference (tests pin
// batch answers to the scan answers to 1e-12).
//
// An Adversary is immutable after construction and safe for concurrent use.
type Adversary struct {
	t   *Table
	eng *reconstruct.Engine
}

// NewAdversary indexes a published table for batched reconstruction with
// condition sets of up to 3 public attributes (the paper's query
// dimensionality). p must be the retention probability the table was
// published with.
func NewAdversary(published *Table, p float64) (*Adversary, error) {
	return NewAdversaryDepth(published, p, 3, 0)
}

// NewAdversaryDepth is NewAdversary with an explicit index depth (the
// largest condition-set size, capped at the number of public attributes)
// and indexing worker count (0 = GOMAXPROCS). Deeper indexes answer wider
// conjunctions but cost exponentially more memory; depth is capped at 8 by
// the index key packing.
func NewAdversaryDepth(published *Table, p float64, maxDim, workers int) (*Adversary, error) {
	marg, err := query.BuildMarginalsParallel(published.t, maxDim, workers)
	if err != nil {
		return nil, err
	}
	eng, err := reconstruct.NewEngine(marg, p)
	if err != nil {
		return nil, err
	}
	return &Adversary{t: published, eng: eng}, nil
}

// Reconstruction is one subset's result within a batched reconstruction:
// the estimated sensitive-value distribution keyed by label, the observed
// subset size, and a per-subset error. An empty subset is not an error —
// Size is 0 and Freqs nil.
type Reconstruction struct {
	Freqs map[string]float64
	Size  int
	Err   error
}

// ReconstructBatch reconstructs the sensitive-value distribution of every
// condition set, in input order — the batched, index-backed form of
// Reconstruct. Each subset is an attribute-name → value-label map, exactly
// as Reconstruct takes, except that the empty set (whole-table
// reconstruction) must go through Reconstruct's scan path — the marginal
// index stores no 0-attribute cube. clamp applies the simplex projection of
// ReconstructClamped to every estimate.
func (a *Adversary) ReconstructBatch(subsets []map[string]string, clamp bool) []Reconstruction {
	sets := make([][]reconstruct.Condition, len(subsets))
	resolveErr := make([]error, len(subsets))
	for i, conds := range subsets {
		attrs, vals, err := a.t.resolveConds(conds)
		if err != nil {
			resolveErr[i] = err
			continue
		}
		set := make([]reconstruct.Condition, len(attrs))
		for j := range attrs {
			set[j] = reconstruct.Condition{Attr: attrs[j], Value: vals[j]}
		}
		sets[i] = set
	}
	raw := a.eng.ReconstructBatch(sets, reconstruct.BatchOptions{Clamp: clamp})
	sa := a.t.t.Schema.SAAttr()
	out := make([]Reconstruction, len(subsets))
	for i, r := range raw {
		if resolveErr[i] != nil {
			out[i] = Reconstruction{Err: resolveErr[i]}
			continue
		}
		out[i] = Reconstruction{Size: r.Size, Err: r.Err}
		if r.Freqs != nil {
			freqs := make(map[string]float64, len(r.Freqs))
			for v, f := range r.Freqs {
				freqs[sa.Label(uint16(v))] = f
			}
			out[i].Freqs = freqs
		}
	}
	return out
}

// CountQuery is one batched count-estimate request: conjunctive conditions
// on public attributes plus one sensitive value, all by label.
type CountQuery struct {
	Conds          map[string]string
	SensitiveValue string
}

// CountEstimate is one CountQuery's result: est = |S*|·F' (Section 6.1) and
// the observed subset size. An empty subset estimates 0 with no error,
// matching EstimateCount.
type CountEstimate struct {
	Estimate float64
	Size     int
	Err      error
}

// EstimateCountBatch evaluates the Section 6.1 count estimator for every
// query, in input order — the batched, index-backed form of EstimateCount.
func (a *Adversary) EstimateCountBatch(qs []CountQuery) []CountEstimate {
	eqs := make([]reconstruct.CountQuery, len(qs))
	resolveErr := make([]error, len(qs))
	for i, q := range qs {
		attrs, vals, err := a.t.resolveConds(q.Conds)
		if err == nil {
			var code uint16
			code, err = a.t.t.Schema.SAAttr().Code(q.SensitiveValue)
			if err == nil {
				set := make([]reconstruct.Condition, len(attrs))
				for j := range attrs {
					set[j] = reconstruct.Condition{Attr: attrs[j], Value: vals[j]}
				}
				eqs[i] = reconstruct.CountQuery{Conds: set, SA: code}
			}
		}
		resolveErr[i] = err
	}
	raw := a.eng.EstimateCountBatch(eqs, reconstruct.BatchOptions{})
	out := make([]CountEstimate, len(qs))
	for i, r := range raw {
		if resolveErr[i] != nil {
			out[i] = CountEstimate{Err: resolveErr[i]}
			continue
		}
		out[i] = CountEstimate{Estimate: r.Estimate, Size: r.Size, Err: r.Err}
	}
	return out
}

// CountPairs evaluates the queries and returns (x, y) count pairs for the
// NIR ratio attack: x the subset size (public-attribute match count, exact
// on published data — NA values are never perturbed) and y the
// reconstruction-based estimate of the sensitive match count. A negative
// estimate — routine for rare values on small subsets, where the unbiased
// MLE dips below zero — is floored at 0: the attack models the true count,
// which cannot be negative, and the ratio attack requires y ≥ 0. Queries
// that fail to resolve or match no records return an error — the ratio
// attack needs x > 0.
func (a *Adversary) CountPairs(qs []CountQuery) ([]CountPair, error) {
	ests := a.EstimateCountBatch(qs)
	out := make([]CountPair, len(ests))
	for i, e := range ests {
		if e.Err != nil {
			return nil, fmt.Errorf("reconpriv: count pair %d: %w", i, e.Err)
		}
		if e.Size == 0 {
			return nil, fmt.Errorf("reconpriv: count pair %d: no records match the conditions", i)
		}
		y := e.Estimate
		if y < 0 {
			y = 0
		}
		out[i] = CountPair{X: float64(e.Size), Y: y}
	}
	return out, nil
}

// Count returns the exact number of records satisfying the conditions (and,
// when sensitiveValue is non-empty, carrying that sensitive value). Intended
// for raw tables — on published data it counts perturbed values.
func Count(t *Table, conds map[string]string, sensitiveValue string) (int, error) {
	counts, size, err := observedCounts(t, conds)
	if err != nil {
		return 0, err
	}
	if sensitiveValue == "" {
		return size, nil
	}
	code, err := t.t.Schema.SAAttr().Code(sensitiveValue)
	if err != nil {
		return 0, err
	}
	return counts[code], nil
}

// observedCounts scans the table once, returning the SA histogram and size
// of the subset matching conds.
func observedCounts(t *Table, conds map[string]string) ([]int, int, error) {
	attrs, vals, err := t.resolveConds(conds)
	if err != nil {
		return nil, 0, err
	}
	m := t.t.Schema.SADomain()
	counts := make([]int, m)
	size := 0
	n := t.t.NumRows()
	for r := 0; r < n; r++ {
		row := t.t.Row(r)
		match := true
		for i, a := range attrs {
			if row[a] != vals[i] {
				match = false
				break
			}
		}
		if match {
			counts[row[t.t.Schema.SA]]++
			size++
		}
	}
	return counts, size, nil
}
