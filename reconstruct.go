package reconpriv

import (
	"fmt"

	"github.com/reconpriv/reconpriv/internal/reconstruct"
)

// Reconstruct estimates the sensitive-value distribution of the record
// subset matching the given public-attribute conditions, from a *published*
// table. It inverts the perturbation with the maximum likelihood estimator
// of the paper's Lemma 2:
//
//	F'ᵢ = (O*ᵢ/|S*| − (1−p)/m) / p.
//
// conds maps attribute names to value labels; an empty map reconstructs over
// the whole table. p must be the retention probability the data was
// published with. The estimate is unbiased and sums to one, but entries may
// be slightly negative on small subsets — that inaccuracy on personal groups
// is exactly what reconstruction privacy guarantees.
//
// The returned map is keyed by sensitive-value label.
func Reconstruct(published *Table, conds map[string]string, p float64) (map[string]float64, error) {
	counts, size, err := observedCounts(published, conds)
	if err != nil {
		return nil, err
	}
	if size == 0 {
		return nil, fmt.Errorf("reconpriv: no records match the conditions")
	}
	est, err := reconstruct.MLE(counts, p)
	if err != nil {
		return nil, err
	}
	sa := published.t.Schema.SAAttr()
	out := make(map[string]float64, len(est))
	for i, v := range est {
		out[sa.Label(uint16(i))] = v
	}
	return out, nil
}

// EstimateCount estimates the number of records satisfying the conditions
// AND carrying the given sensitive value, from a published table — the
// count-query estimator est = |S*|·F' of the paper's Section 6.1.
func EstimateCount(published *Table, conds map[string]string, sensitiveValue string, p float64) (float64, error) {
	counts, size, err := observedCounts(published, conds)
	if err != nil {
		return 0, err
	}
	if size == 0 {
		return 0, nil
	}
	sa := published.t.Schema.SAAttr()
	code, err := sa.Code(sensitiveValue)
	if err != nil {
		return 0, err
	}
	fPrime := reconstruct.MLEValue(counts[code], size, p, sa.Domain())
	return float64(size) * fPrime, nil
}

// Count returns the exact number of records satisfying the conditions (and,
// when sensitiveValue is non-empty, carrying that sensitive value). Intended
// for raw tables — on published data it counts perturbed values.
func Count(t *Table, conds map[string]string, sensitiveValue string) (int, error) {
	counts, size, err := observedCounts(t, conds)
	if err != nil {
		return 0, err
	}
	if sensitiveValue == "" {
		return size, nil
	}
	code, err := t.t.Schema.SAAttr().Code(sensitiveValue)
	if err != nil {
		return 0, err
	}
	return counts[code], nil
}

// observedCounts scans the table once, returning the SA histogram and size
// of the subset matching conds.
func observedCounts(t *Table, conds map[string]string) ([]int, int, error) {
	attrs, vals, err := t.resolveConds(conds)
	if err != nil {
		return nil, 0, err
	}
	m := t.t.Schema.SADomain()
	counts := make([]int, m)
	size := 0
	n := t.t.NumRows()
	for r := 0; r < n; r++ {
		row := t.t.Row(r)
		match := true
		for i, a := range attrs {
			if row[a] != vals[i] {
				match = false
				break
			}
		}
		if match {
			counts[row[t.t.Schema.SA]]++
			size++
		}
	}
	return counts, size, nil
}
