package reconpriv

import (
	"github.com/reconpriv/reconpriv/internal/datagen"
)

// The library ships three synthetic sample data sets so the examples and the
// quickstart run without external files. SampleAdult and SampleCensus are
// statistical stand-ins for the UCI ADULT and the 500K CENSUS data sets used
// in the paper's evaluation (see DESIGN.md for the substitution rationale);
// SampleMedical is the Gender/Job/Disease table of the paper's Example 2.

// SampleAdult returns the 45,222-record ADULT stand-in: public attributes
// Education, Occupation, Race, Gender and sensitive attribute Income
// (two values). It embeds the paper's Example-1 rule cell: exactly 501
// records match {Prof-school, Prof-specialty, White, Male}, 420 of them
// with income >50K.
func SampleAdult(seed int64) *Table {
	return &Table{t: datagen.Adult(seed)}
}

// SampleCensus returns an n-record CENSUS stand-in (n ≤ 500,000): public
// attributes Age, Gender, Education, Marital, Race and a 50-value sensitive
// Occupation attribute.
func SampleCensus(n int, seed int64) (*Table, error) {
	t, err := datagen.Census(n, seed)
	if err != nil {
		return nil, err
	}
	return &Table{t: t}, nil
}

// SampleMedical returns an n-record medical table D(Gender, Job, Disease)
// with a 10-value sensitive Disease attribute — the running example of the
// paper's Section 1.2.
func SampleMedical(n int, seed int64) (*Table, error) {
	t, err := datagen.Medical(n, seed)
	if err != nil {
		return nil, err
	}
	return &Table{t: t}, nil
}

// SampleMedicalWithColor returns the medical table extended with an
// SA-irrelevant FavoriteColor attribute — the Section 3.4 scenario in which
// an adversary aggregates personal groups that differ only on an irrelevant
// attribute to sharpen a personal reconstruction, and which the chi-square
// generalization neutralizes by merging the irrelevant values.
func SampleMedicalWithColor(n int, seed int64) (*Table, error) {
	t, err := datagen.MedicalWithColor(n, seed)
	if err != nil {
		return nil, err
	}
	return &Table{t: t}, nil
}
