// Package reconpriv implements reconstruction privacy (Wang, Han, Fu, Wong,
// Yu — "Reconstruction Privacy: Enabling Statistical Learning", EDBT 2015):
// a data-perturbation publishing pipeline that keeps aggregate statistical
// relationships learnable while making per-individual frequency
// reconstruction provably inaccurate.
//
// The pipeline publishes a categorical table with one sensitive attribute
// (SA) and several public attributes (NA):
//
//  1. Generalize: public-attribute values with statistically
//     indistinguishable SA-conditional distributions are merged via
//     pairwise chi-square tests (Section 3.4 of the paper), so that every
//     surviving value has a distinct impact on SA.
//  2. Test: every personal group — the records identical on all public
//     attributes — is checked against (λ, δ)-reconstruction privacy using
//     the Chernoff-bound test of Corollary 4.
//  3. Enforce: violating groups are published through
//     Sampling-Perturbing-Scaling (SPS): a frequency-preserving sample of
//     the admissible size s_g is perturbed with retention probability p and
//     scaled back to the original size. Non-violating groups are perturbed
//     verbatim.
//
// Consumers of the published table reconstruct SA distributions of record
// subsets with the unbiased MLE of Lemma 2 (Reconstruct / EstimateCount);
// reconstruction over large aggregates stays accurate (the law of large
// numbers), while reconstruction aimed at one individual's personal group
// carries relative error above λ with probability at least δ.
//
// The zero value of Options is not usable; start from DefaultOptions.
package reconpriv

import (
	"fmt"
	"io"

	"github.com/reconpriv/reconpriv/internal/chimerge"
	"github.com/reconpriv/reconpriv/internal/core"
	"github.com/reconpriv/reconpriv/internal/dataset"
	"github.com/reconpriv/reconpriv/internal/stats"
)

// Table is a categorical data set with one designated sensitive attribute.
// It is immutable through this API: every operation returns a new Table.
type Table struct {
	t *dataset.Table
}

// DefaultOptions are the paper's defaults (Table 6): retention probability
// p = 0.5, λ = δ = 0.3, chi-square significance 0.05.
var DefaultOptions = Options{
	RetentionProbability: 0.5,
	Lambda:               0.3,
	Delta:                0.3,
	Significance:         0.05,
	Seed:                 1,
}

// Options configure the publishing pipeline.
type Options struct {
	// RetentionProbability is p: each record keeps its sensitive value with
	// probability p and otherwise receives a uniform value. Must be in (0,1).
	RetentionProbability float64
	// Lambda is the relative-error radius λ of Definition 3.
	Lambda float64
	// Delta is the probability floor δ of Definition 3.
	Delta float64
	// Significance is the chi-square level for merging public-attribute
	// values (0 disables generalization; the paper uses 0.05).
	Significance float64
	// Seed drives all randomness; equal seeds give identical publications.
	Seed int64
}

func (o Options) params() core.Params {
	return core.Params{P: o.RetentionProbability, Lambda: o.Lambda, Delta: o.Delta}
}

func (o Options) validate() error {
	if err := o.params().Validate(); err != nil {
		return err
	}
	if o.Significance < 0 || o.Significance >= 1 {
		return fmt.Errorf("reconpriv: significance must be in [0,1), got %v", o.Significance)
	}
	return nil
}

// ReadCSV loads a table from CSV. The first row names the attributes;
// sensitive designates the sensitive attribute (all others are public).
// Attribute domains are collected from the data.
func ReadCSV(r io.Reader, sensitive string) (*Table, error) {
	t, err := dataset.ReadCSV(r, sensitive)
	if err != nil {
		return nil, err
	}
	return &Table{t: t}, nil
}

// WriteCSV writes the table with a header row.
func (t *Table) WriteCSV(w io.Writer) error { return dataset.WriteCSV(w, t.t) }

// NumRows returns the number of records.
func (t *Table) NumRows() int { return t.t.NumRows() }

// Attributes returns the attribute names in schema order.
func (t *Table) Attributes() []string {
	names := make([]string, t.t.Schema.NumAttrs())
	for i := range t.t.Schema.Attrs {
		names[i] = t.t.Schema.Attrs[i].Name
	}
	return names
}

// SensitiveAttribute returns the name of the sensitive attribute.
func (t *Table) SensitiveAttribute() string { return t.t.Schema.SAAttr().Name }

// Domain returns the value labels of the named attribute.
func (t *Table) Domain(attr string) ([]string, error) {
	i, err := t.t.Schema.AttrIndex(attr)
	if err != nil {
		return nil, err
	}
	return append([]string(nil), t.t.Schema.Attrs[i].Values...), nil
}

// Row returns the labels of record i in schema order.
func (t *Table) Row(i int) []string {
	row := t.t.Row(i)
	out := make([]string, len(row))
	for c, v := range row {
		out[c] = t.t.Schema.Attrs[c].Label(v)
	}
	return out
}

// rngFor builds the deterministic random stream of an operation.
func rngFor(seed int64) *stats.Rand { return stats.NewRand(seed) }

// resolveConds translates attribute=value string conditions to codes.
func (t *Table) resolveConds(conds map[string]string) ([]int, []uint16, error) {
	attrs := make([]int, 0, len(conds))
	vals := make([]uint16, 0, len(conds))
	for name, label := range conds {
		ai, err := t.t.Schema.AttrIndex(name)
		if err != nil {
			return nil, nil, err
		}
		if ai == t.t.Schema.SA {
			return nil, nil, fmt.Errorf("reconpriv: conditions may not reference the sensitive attribute %q", name)
		}
		code, err := t.t.Schema.Attrs[ai].Code(label)
		if err != nil {
			return nil, nil, err
		}
		attrs = append(attrs, ai)
		vals = append(vals, code)
	}
	return attrs, vals, nil
}

// generalizeOrClone applies the chi-square generalization when enabled.
func generalizeOrClone(t *Table, significance float64) (*dataset.Table, *chimerge.Result, error) {
	if significance == 0 {
		return t.t, nil, nil
	}
	res, err := chimerge.Generalize(t.t, significance)
	if err != nil {
		return nil, nil, err
	}
	return res.Table, res, nil
}
