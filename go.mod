module github.com/reconpriv/reconpriv

go 1.22
