package reconpriv

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// publishedMedical publishes the medical fixture and returns the
// publication with the options used.
func publishedMedical(t *testing.T) (*Table, Options) {
	t.Helper()
	opt := DefaultOptions
	pub, _, err := Publish(medicalTable(t), opt)
	if err != nil {
		t.Fatal(err)
	}
	return pub, opt
}

// adversarySubsets enumerates condition sets over the published domains:
// every single-attribute condition plus every Gender×Job pair — guaranteed
// in-vocabulary whatever the generalization merged.
func adversarySubsets(t *testing.T, pub *Table) []map[string]string {
	t.Helper()
	var subsets []map[string]string
	genders, err := pub.Domain("Gender")
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := pub.Domain("Job")
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range genders {
		subsets = append(subsets, map[string]string{"Gender": g})
		for _, j := range jobs {
			subsets = append(subsets, map[string]string{"Gender": g, "Job": j})
		}
	}
	for _, j := range jobs {
		subsets = append(subsets, map[string]string{"Job": j})
	}
	return subsets
}

func TestAdversaryBatchMatchesScan(t *testing.T) {
	// Batch-vs-scan equivalence at the public API: ReconstructBatch through
	// the marginal index must agree with per-call Reconstruct (the scan
	// reference) to 1e-12 on every subset, raw and clamped.
	pub, opt := publishedMedical(t)
	adv, err := NewAdversary(pub, opt.RetentionProbability)
	if err != nil {
		t.Fatal(err)
	}
	subsets := adversarySubsets(t, pub)
	for _, clamp := range []bool{false, true} {
		batch := adv.ReconstructBatch(subsets, clamp)
		if len(batch) != len(subsets) {
			t.Fatalf("batch answered %d of %d subsets", len(batch), len(subsets))
		}
		for i, conds := range subsets {
			var want map[string]float64
			var scanErr error
			if clamp {
				want, scanErr = ReconstructClamped(pub, conds, opt.RetentionProbability)
			} else {
				want, scanErr = Reconstruct(pub, conds, opt.RetentionProbability)
			}
			if scanErr != nil {
				// The scan path errors on empty subsets; the batch reports
				// Size 0 with no error instead.
				if batch[i].Err != nil || batch[i].Size != 0 {
					t.Fatalf("subset %v: scan errored (%v) but batch = %+v", conds, scanErr, batch[i])
				}
				continue
			}
			if batch[i].Err != nil {
				t.Fatalf("subset %v: batch error %v", conds, batch[i].Err)
			}
			if len(batch[i].Freqs) != len(want) {
				t.Fatalf("subset %v: label sets differ", conds)
			}
			for label, w := range want {
				if d := math.Abs(batch[i].Freqs[label] - w); d > 1e-12 {
					t.Fatalf("subset %v label %q: batch %v scan %v (clamp=%v)", conds, label, batch[i].Freqs[label], w, clamp)
				}
			}
		}
	}
}

func TestAdversaryEstimateCountMatchesScan(t *testing.T) {
	pub, opt := publishedMedical(t)
	adv, err := NewAdversary(pub, opt.RetentionProbability)
	if err != nil {
		t.Fatal(err)
	}
	diseases, err := pub.Domain("Disease")
	if err != nil {
		t.Fatal(err)
	}
	var qs []CountQuery
	for _, conds := range adversarySubsets(t, pub) {
		qs = append(qs, CountQuery{Conds: conds, SensitiveValue: diseases[len(qs)%len(diseases)]})
	}
	ests := adv.EstimateCountBatch(qs)
	for i, q := range qs {
		want, err := EstimateCount(pub, q.Conds, q.SensitiveValue, opt.RetentionProbability)
		if err != nil {
			t.Fatal(err)
		}
		if ests[i].Err != nil {
			t.Fatalf("query %d: %v", i, ests[i].Err)
		}
		if d := math.Abs(ests[i].Estimate - want); d > 1e-12 {
			t.Fatalf("query %d: batch %v scan %v", i, ests[i].Estimate, want)
		}
	}
}

func TestAdversaryPerItemErrors(t *testing.T) {
	pub, opt := publishedMedical(t)
	adv, err := NewAdversary(pub, opt.RetentionProbability)
	if err != nil {
		t.Fatal(err)
	}
	genders, err := pub.Domain("Gender")
	if err != nil {
		t.Fatal(err)
	}
	batch := adv.ReconstructBatch([]map[string]string{
		{"Gender": genders[0]},
		{"Gender": "NotAGender"},
		{"NoSuchAttr": "x"},
		{"Disease": "Flu"}, // conditions may not reference the SA
	}, false)
	if batch[0].Err != nil || batch[0].Freqs == nil {
		t.Errorf("healthy subset failed: %+v", batch[0])
	}
	for _, i := range []int{1, 2, 3} {
		if batch[i].Err == nil {
			t.Errorf("subset %d should report an error", i)
		}
	}
	ests := adv.EstimateCountBatch([]CountQuery{
		{Conds: map[string]string{"Gender": genders[0]}, SensitiveValue: "Flu"},
		{Conds: map[string]string{"Gender": genders[0]}, SensitiveValue: "NotADisease"},
	})
	if ests[0].Err != nil {
		t.Errorf("healthy query failed: %v", ests[0].Err)
	}
	if ests[1].Err == nil {
		t.Error("bad sensitive value should report an error")
	}
}

func TestEstimateCountEmptySubset(t *testing.T) {
	// EstimateCount on an empty subset is 0 with no error on both paths.
	// The (Female, Doctor) pair never occurs, while every label occurs
	// somewhere, so the pair is a valid in-vocabulary empty subset.
	// Generalization is disabled so the pair cannot be merged away.
	csv := "Gender,Job,Disease\n" +
		"Male,Doctor,Flu\nMale,Doctor,HIV\nMale,Clerk,Flu\nMale,Clerk,Flu\n" +
		"Female,Clerk,HIV\nFemale,Clerk,Flu\nFemale,Clerk,HIV\nFemale,Clerk,Flu\n"
	tab, err := ReadCSV(strings.NewReader(csv), "Disease")
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions
	opt.Significance = 0
	pub, _, err := Publish(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := NewAdversary(pub, opt.RetentionProbability)
	if err != nil {
		t.Fatal(err)
	}
	conds := map[string]string{"Gender": "Female", "Job": "Doctor"}
	if n, err := Count(pub, conds, ""); err != nil || n != 0 {
		t.Fatalf("fixture broken: Count = %d, %v; want empty subset", n, err)
	}
	est, err := EstimateCount(pub, conds, "Flu", opt.RetentionProbability)
	if err != nil || est != 0 {
		t.Errorf("scan EstimateCount on empty subset = %v, %v; want 0, nil", est, err)
	}
	batch := adv.EstimateCountBatch([]CountQuery{{Conds: conds, SensitiveValue: "Flu"}})
	if batch[0].Err != nil || batch[0].Estimate != 0 || batch[0].Size != 0 {
		t.Errorf("batch EstimateCount on empty subset = %+v; want zero, nil", batch[0])
	}
	rec := adv.ReconstructBatch([]map[string]string{conds}, false)
	if rec[0].Err != nil || rec[0].Size != 0 || rec[0].Freqs != nil {
		t.Errorf("batch Reconstruct on empty subset = %+v; want zero, nil", rec[0])
	}
	// The scan-path Reconstruct errors on the empty subset (its historical
	// contract); the batch reports Size 0 instead.
	if _, err := Reconstruct(pub, conds, opt.RetentionProbability); err == nil {
		t.Error("scan Reconstruct on empty subset should error")
	}
}

func TestReconstructClampedProperties(t *testing.T) {
	pub, opt := publishedMedical(t)
	for _, conds := range adversarySubsets(t, pub) {
		clamped, err := ReconstructClamped(pub, conds, opt.RetentionProbability)
		if err != nil {
			continue // empty subset
		}
		sum := 0.0
		for label, v := range clamped {
			if v < 0 {
				t.Fatalf("subset %v label %q: clamped entry negative", conds, label)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("subset %v: clamped freqs sum to %v", conds, sum)
		}
	}
	// The default Reconstruct stays the raw unbiased MLE: it must be able
	// to go negative somewhere on a small sample.
	small, err := SampleMedical(60, 2)
	if err != nil {
		t.Fatal(err)
	}
	smallPub, _, err := Publish(small, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	sawNegative := false
	for _, g := range []string{"Male", "Female"} {
		raw, err := Reconstruct(smallPub, map[string]string{"Gender": g}, DefaultOptions.RetentionProbability)
		if err != nil {
			continue
		}
		for _, v := range raw {
			if v < 0 {
				sawNegative = true
			}
		}
	}
	if !sawNegative {
		t.Log("note: no negative raw MLE entry on this draw; clamp default-difference untested")
	}
}

func TestNIRAttackSeedDeterminism(t *testing.T) {
	a, err := NIRAttack(0.5, 2, 423, 354, 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NIRAttack(0.5, 2, 423, 354, 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("equal seeds should reproduce the attack exactly")
	}
	c, err := NIRAttack(0.5, 2, 423, 354, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.ConfMean == c.ConfMean {
		t.Error("different seeds should draw different noise")
	}
}

func TestNIRAttackSweepFacade(t *testing.T) {
	epsilons := []float64{0.01, 0.1, 0.5}
	pairs := []CountPair{{X: 423, Y: 354}, {X: 40, Y: 10}}
	sweep, err := NIRAttackSweep(epsilons, pairs, 2, 50, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Cells) != 6 {
		t.Fatalf("cells = %d", len(sweep.Cells))
	}
	again, err := NIRAttackSweep(epsilons, pairs, 2, 50, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sweep, again) {
		t.Error("equal seeds should reproduce the sweep exactly")
	}
	// Analytic columns: indicator shrinks as ε grows for a fixed pair, and
	// the true confidence is y/x everywhere.
	for j := range pairs {
		prev := math.Inf(1)
		for i := range epsilons {
			cell := sweep.Cells[i*len(pairs)+j]
			if cell.TrueConf != pairs[j].Y/pairs[j].X {
				t.Errorf("cell (%d,%d) true conf = %v", i, j, cell.TrueConf)
			}
			if cell.Indicator >= prev {
				t.Errorf("indicator should shrink with epsilon")
			}
			prev = cell.Indicator
		}
	}
	if _, err := NIRAttackSweep(nil, pairs, 2, 50, 1); err == nil {
		t.Error("empty epsilon grid should error")
	}
}

func TestNIRAttackSweepFromAdversary(t *testing.T) {
	// The full loop the docs advertise: estimate count pairs from a
	// publication with the batched engine, then sweep the DP ratio attack
	// over them.
	pub, opt := publishedMedical(t)
	adv, err := NewAdversary(pub, opt.RetentionProbability)
	if err != nil {
		t.Fatal(err)
	}
	genders, err := pub.Domain("Gender")
	if err != nil {
		t.Fatal(err)
	}
	qs := []CountQuery{
		{Conds: map[string]string{"Gender": genders[0]}, SensitiveValue: "Flu"},
		{Conds: map[string]string{"Gender": genders[1]}, SensitiveValue: "HIV"},
	}
	pairs, err := adv.CountPairs(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, pr := range pairs {
		if pr.X <= 0 {
			t.Fatalf("pair %d has x = %v", i, pr.X)
		}
	}
	sweep, err := NIRAttackSweep([]float64{0.1, 0.5}, pairs, 2, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Cells) != 4 {
		t.Fatalf("cells = %d", len(sweep.Cells))
	}
	// A query that matches nothing cannot feed the ratio attack.
	if _, err := adv.CountPairs([]CountQuery{{Conds: map[string]string{"Gender": "NotAGender"}, SensitiveValue: "Flu"}}); err == nil {
		t.Error("unresolvable pair should error")
	}
}
