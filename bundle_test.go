package reconpriv

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/reconpriv/reconpriv/internal/perturb"
)

func TestBundleRoundTrip(t *testing.T) {
	tab := medicalTable(t)
	dir := t.TempDir()
	rep, err := WriteBundle(dir, tab, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RecordsIn != tab.NumRows() {
		t.Errorf("RecordsIn = %d", rep.RecordsIn)
	}
	pub, meta, err := ReadBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Sensitive != "Disease" {
		t.Errorf("Sensitive = %q", meta.Sensitive)
	}
	if meta.P != DefaultOptions.RetentionProbability ||
		meta.Lambda != DefaultOptions.Lambda ||
		meta.Delta != DefaultOptions.Delta {
		t.Errorf("meta parameters corrupted: %+v", meta)
	}
	if pub.NumRows() != meta.RecordsOut {
		t.Errorf("bundle rows %d != meta %d", pub.NumRows(), meta.RecordsOut)
	}
	if len(meta.Merges) == 0 {
		t.Error("meta should record the generalization")
	}
	// The consumer path: reconstruct using only bundle contents.
	dist, err := Reconstruct(pub, nil, meta.P)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range dist {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("reconstruction sums to %v", sum)
	}
}

func TestBundleErrors(t *testing.T) {
	tab := medicalTable(t)
	if _, err := WriteBundle(t.TempDir(), tab, Options{}); err == nil {
		t.Error("invalid options should error")
	}
	if _, _, err := ReadBundle(t.TempDir()); err == nil {
		t.Error("empty directory should error")
	}
	// Corrupt meta.
	dir := t.TempDir()
	if _, err := WriteBundle(dir, tab, DefaultOptions); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadBundle(dir); err == nil {
		t.Error("corrupt meta should error")
	}
	// Meta without sensitive attribute.
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadBundle(dir); err == nil {
		t.Error("meta without sensitive attribute should error")
	}
}

func TestRetentionForBreach(t *testing.T) {
	p, err := RetentionForBreach(0.1, 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	want, err := perturb.RetentionForRho1Rho2(0.1, 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p != want {
		t.Errorf("RetentionForBreach = %v, want %v", p, want)
	}
	if _, err := RetentionForBreach(0.5, 0.1, 10); err == nil {
		t.Error("rho2 < rho1 should error")
	}
}

func TestSampleMedicalWithColor(t *testing.T) {
	tab, err := SampleMedicalWithColor(3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	attrs := tab.Attributes()
	if len(attrs) != 4 || attrs[2] != "FavoriteColor" {
		t.Errorf("attributes = %v", attrs)
	}
	// The color must merge away under generalization (no SA impact).
	_, merges, err := Generalize(tab, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range merges {
		if m.Attribute == "FavoriteColor" && m.DomainAfter != 1 {
			t.Errorf("FavoriteColor should merge to 1, got %d", m.DomainAfter)
		}
	}
	if _, err := SampleMedicalWithColor(0, 1); err == nil {
		t.Error("size 0 should error")
	}
}
