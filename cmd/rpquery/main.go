// Command rpquery answers count queries and reconstructs sensitive-value
// distributions from published (or raw) CSV tables, or from a running
// rpserve publication server.
//
// Conditions are attr=value pairs. Against published data, -p must match the
// retention probability the data was published with; the tool then prints
// the MLE-reconstructed estimate. With -p 1 the tool counts exactly
// (suitable for raw data).
//
// With -addr the tool speaks to an rpserve instance instead of a local CSV:
// -count VALUE posts a single count query to /query, -dist posts one
// subset to /reconstruct, and -insert streams records into an incremental
// publication via /insert, all against the publication named by -id. In
// insert mode each positional argument is one record as comma-separated
// attr=value pairs covering the full schema (sensitive attribute included).
// The -binary flag switches the request to the compact
// application/x-rp-binary wire encoding (the tool fetches the publication's
// domains to translate labels into the original codes binary frames carry);
// responses are decoded from the same encoding.
//
// Usage:
//
//	rpquery -sa Income -p 0.5 [-count ">50K"] input.csv Education=HS-grad Gender=Male
//	rpquery -sa Disease -p 0.5 -dist input.csv Job=Engineer
//	rpquery -addr http://localhost:8080 -id pub-abc123 -count Flu Job=Engineer
//	rpquery -addr http://localhost:8080 -id pub-abc123 -binary -dist Job=Engineer
//	rpquery -addr http://localhost:8080 -id pub-abc123 -insert "Gender=Male,Job=Engineer,Disease=Flu"
//	rpquery -addr http://localhost:8080 -id pub-abc123 -binary -insert "Gender=Female,Job=Lawyer,Disease=Cold"
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/reconpriv/reconpriv"
	"github.com/reconpriv/reconpriv/internal/serve"
	"github.com/reconpriv/reconpriv/internal/wire"
)

func main() {
	var (
		sa      = flag.String("sa", "", "sensitive attribute name (required in CSV mode)")
		p       = flag.Float64("p", 1, "retention probability of the published data (1 = exact counting)")
		count   = flag.String("count", "", "estimate the count of this sensitive value")
		dist    = flag.Bool("dist", false, "reconstruct the full sensitive-value distribution")
		addr    = flag.String("addr", "", "rpserve base URL (switches to server mode)")
		id      = flag.String("id", "", "publication id (server mode, required)")
		client  = flag.String("client", "rpquery", "client name for exposure accounting (server mode)")
		binary  = flag.Bool("binary", false, "use the binary wire encoding (server mode)")
		insert  = flag.Bool("insert", false, "insert records into an incremental publication (server mode); each arg is one record as comma-separated attr=value pairs")
		timeout = flag.Duration("timeout", 30*time.Second, "HTTP request deadline in server mode (0 disables)")
	)
	flag.Parse()
	httpClient = &http.Client{Timeout: *timeout}
	args := flag.Args()
	if *addr != "" {
		remote(*addr, *id, *client, *count, *dist, *binary, *insert, args)
		return
	}
	if *sa == "" {
		fatal(fmt.Errorf("-sa is required"))
	}
	if len(args) == 0 {
		fatal(fmt.Errorf("usage: rpquery -sa SA [-p P] [-count VALUE|-dist] input.csv attr=value ..."))
	}
	var in io.Reader = os.Stdin
	if args[0] != "-" {
		f, err := os.Open(args[0])
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	t, err := reconpriv.ReadCSV(in, *sa)
	if err != nil {
		fatal(err)
	}
	conds := parseConds(args[1:])
	switch {
	case *dist:
		if *p >= 1 {
			fatal(fmt.Errorf("-dist requires the published retention probability -p in (0,1)"))
		}
		d, err := reconpriv.Reconstruct(t, conds, *p)
		if err != nil {
			fatal(err)
		}
		printDist(d)
	case *count != "":
		if *p >= 1 {
			n, err := reconpriv.Count(t, conds, *count)
			if err != nil {
				fatal(err)
			}
			fmt.Println(n)
		} else {
			est, err := reconpriv.EstimateCount(t, conds, *count, *p)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%.1f\n", est)
		}
	default:
		n, err := reconpriv.Count(t, conds, "")
		if err != nil {
			fatal(err)
		}
		fmt.Println(n)
	}
}

func parseConds(args []string) map[string]string {
	conds := map[string]string{}
	for _, a := range args {
		kv := strings.SplitN(a, "=", 2)
		if len(kv) != 2 {
			fatal(fmt.Errorf("condition %q is not attr=value", a))
		}
		conds[kv[0]] = kv[1]
	}
	return conds
}

func printDist(d map[string]float64) {
	keys := make([]string, 0, len(d))
	for k := range d {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return d[keys[i]] > d[keys[j]] })
	for _, k := range keys {
		fmt.Printf("%-24s %8.4f\n", k, d[k])
	}
}

// --- server mode ---

// domains is the slice of the /publications?domains=1 view the label→code
// translation needs.
type domains struct {
	Status string `json:"status"`
	Attrs  []struct {
		Name   string   `json:"name"`
		Index  int      `json:"index"`
		Values []string `json:"values"`
	} `json:"attrs"`
	Sensitive *struct {
		Name   string   `json:"name"`
		Index  int      `json:"index"`
		Values []string `json:"values"`
	} `json:"sensitive"`
}

func remote(addr, id, client, count string, dist, binary, insert bool, args []string) {
	if id == "" {
		fatal(fmt.Errorf("server mode requires -id"))
	}
	if !insert && !dist && count == "" {
		fatal(fmt.Errorf("server mode requires -count VALUE, -dist, or -insert"))
	}
	conds := make([]serve.CondJSON, 0, len(args))
	for a, v := range parseConds(args) {
		conds = append(conds, serve.CondJSON{Attr: a, Value: v})
	}
	sort.Slice(conds, func(i, j int) bool { return conds[i].Attr < conds[j].Attr })

	var dom domains
	getJSON(fmt.Sprintf("%s/publications?id=%s&domains=1", addr, id), &dom)
	if dom.Status != "ready" {
		fatal(fmt.Errorf("publication %s is %s", id, dom.Status))
	}
	if dom.Sensitive == nil {
		fatal(fmt.Errorf("publication %s has no domain info", id))
	}

	if insert {
		doInsert(addr, id, client, binary, &dom, args)
		return
	}

	switch {
	case binary && dist:
		m := wire.ReconstructReq{ID: []byte(id), Client: []byte(client)}
		m.Subsets = [][]wire.Cond{encodeConds(&dom, conds)}
		body := post(addr+"/reconstruct", wire.ContentType, m.Append(nil))
		var resp wire.ReconstructResp
		if err := resp.Decode(body); err != nil {
			fatal(err)
		}
		res := resp.Results[0]
		if res.Err != nil {
			fatal(fmt.Errorf("%s", res.Err))
		}
		d := make(map[string]float64, len(res.Freqs))
		for code, f := range res.Freqs {
			d[dom.Sensitive.Values[code]] = f
		}
		printDist(d)
		fmt.Printf("subset size %d; charged %d, cumulative exposure %d\n",
			res.Size, resp.Charged, resp.ClientQueries)
	case binary:
		saCode := labelCode(dom.Sensitive.Values, count, dom.Sensitive.Name)
		m := wire.QueryReq{ID: []byte(id), Client: []byte(client)}
		m.Queries = []wire.Query{{SA: saCode, Conds: encodeConds(&dom, conds)}}
		body := post(addr+"/query", wire.ContentType, m.Append(nil))
		var resp wire.QueryResp
		if err := resp.Decode(body); err != nil {
			fatal(err)
		}
		a := resp.Answers[0]
		if a.Err != nil {
			fatal(fmt.Errorf("%s", a.Err))
		}
		fmt.Printf("count %d estimate %.1f (charged %d, cumulative exposure %d)\n",
			a.Count, a.Estimate, resp.Charged, resp.ClientQueries)
	case dist:
		req, _ := json.Marshal(map[string]any{
			"id": id, "client": client, "subsets": [][]serve.CondJSON{conds},
		})
		var resp serve.ReconstructResponse
		body := post(addr+"/reconstruct", "application/json", req)
		if err := json.Unmarshal(body, &resp); err != nil {
			fatal(err)
		}
		res := resp.Results[0]
		if res.Error != "" {
			fatal(fmt.Errorf("%s", res.Error))
		}
		printDist(res.Freqs)
		fmt.Printf("subset size %d; charged %d, cumulative exposure %d\n",
			res.Size, resp.Charged, resp.ClientQueries)
	default:
		req, _ := json.Marshal(map[string]any{
			"id": id, "client": client,
			"queries": []serve.QueryJSON{{Conds: conds, SA: count}},
		})
		var resp serve.QueryResponse
		body := post(addr+"/query", "application/json", req)
		if err := json.Unmarshal(body, &resp); err != nil {
			fatal(err)
		}
		a := resp.Answers[0]
		if a.Error != "" {
			fatal(fmt.Errorf("%s", a.Error))
		}
		fmt.Printf("count %d estimate %.1f (charged %d, cumulative exposure %d)\n",
			a.Count, a.Estimate, resp.Charged, resp.ClientQueries)
	}
}

// doInsert streams one record batch into an incremental publication. Each
// arg is a full record as comma-separated attr=value pairs; every schema
// attribute (sensitive included) must appear exactly once.
func doInsert(addr, id, client string, binary bool, dom *domains, args []string) {
	if len(args) == 0 {
		fatal(fmt.Errorf("-insert requires at least one record argument"))
	}
	width := len(dom.Attrs) + 1
	records := make([]map[string]string, 0, len(args))
	for _, a := range args {
		rec := map[string]string{}
		for _, pair := range strings.Split(a, ",") {
			kv := strings.SplitN(pair, "=", 2)
			if len(kv) != 2 {
				fatal(fmt.Errorf("record field %q is not attr=value", pair))
			}
			rec[kv[0]] = kv[1]
		}
		if len(rec) != width {
			fatal(fmt.Errorf("record %q has %d attributes, schema needs %d", a, len(rec), width))
		}
		records = append(records, rec)
	}

	if binary {
		codes := make([][]uint16, len(records))
		for i, rec := range records {
			row := make([]uint16, width)
			for _, a := range dom.Attrs {
				v, ok := rec[a.Name]
				if !ok {
					fatal(fmt.Errorf("record %d is missing attribute %q", i, a.Name))
				}
				row[a.Index] = labelCode(a.Values, v, a.Name)
			}
			v, ok := rec[dom.Sensitive.Name]
			if !ok {
				fatal(fmt.Errorf("record %d is missing the sensitive attribute %q", i, dom.Sensitive.Name))
			}
			row[dom.Sensitive.Index] = labelCode(dom.Sensitive.Values, v, dom.Sensitive.Name)
			codes[i] = row
		}
		m := wire.InsertReq{ID: []byte(id), Client: []byte(client), Wait: true, NAttrs: width, Records: codes}
		body := post(addr+"/insert", wire.ContentType, m.Append(nil))
		var resp wire.InsertResp
		if err := resp.Decode(body); err != nil {
			fatal(err)
		}
		fmt.Printf("inserted %d (%d trials, %d absorbed); stream holds %d records\n",
			resp.Inserted, resp.Trials, resp.Absorbed, resp.TotalRecords)
		return
	}

	req, _ := json.Marshal(map[string]any{"id": id, "records": records, "wait": true})
	var resp struct {
		Inserted     int `json:"inserted"`
		Trials       int `json:"trials"`
		Absorbed     int `json:"absorbed"`
		TotalRecords int `json:"total_records"`
	}
	body := post(addr+"/insert", "application/json", req)
	if err := json.Unmarshal(body, &resp); err != nil {
		fatal(err)
	}
	fmt.Printf("inserted %d (%d trials, %d absorbed); stream holds %d records\n",
		resp.Inserted, resp.Trials, resp.Absorbed, resp.TotalRecords)
}

// encodeConds translates label conditions into the original codes binary
// frames carry, via the publication's advertised domains.
func encodeConds(dom *domains, conds []serve.CondJSON) []wire.Cond {
	out := make([]wire.Cond, 0, len(conds))
	for _, c := range conds {
		found := false
		for _, a := range dom.Attrs {
			if a.Name != c.Attr {
				continue
			}
			out = append(out, wire.Cond{
				Attr:  a.Index,
				Value: labelCode(a.Values, c.Value, a.Name),
			})
			found = true
			break
		}
		if !found {
			fatal(fmt.Errorf("unknown attribute %q", c.Attr))
		}
	}
	return out
}

func labelCode(values []string, label, attr string) uint16 {
	for code, v := range values {
		if v == label {
			return uint16(code)
		}
	}
	fatal(fmt.Errorf("attribute %s has no value %q", attr, label))
	return 0
}

// httpClient is the shared server-mode client. A default http.Client has no
// deadline, so a stalled server would hang the tool forever; -timeout bounds
// every request end to end (connect through body read).
var httpClient = &http.Client{Timeout: 30 * time.Second}

func getJSON(url string, out any) {
	resp, err := httpClient.Get(url)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode >= 400 {
		fatal(fmt.Errorf("GET %s returned %d: %s", url, resp.StatusCode, data))
	}
	if err := json.Unmarshal(data, out); err != nil {
		fatal(err)
	}
}

// post sends a pre-encoded body; non-2xx statuses carry the server's typed
// JSON ErrorBody regardless of the request encoding, and are fatal with the
// body shown.
func post(url, contentType string, body []byte) []byte {
	resp, err := httpClient.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode >= 400 {
		fatal(fmt.Errorf("POST %s returned %d: %s", url, resp.StatusCode, data))
	}
	return data
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rpquery:", err)
	os.Exit(1)
}
