// Command rpquery answers count queries and reconstructs sensitive-value
// distributions from published (or raw) CSV tables.
//
// Conditions are attr=value pairs. Against published data, -p must match the
// retention probability the data was published with; the tool then prints
// the MLE-reconstructed estimate. With -p 1 the tool counts exactly
// (suitable for raw data).
//
// Usage:
//
//	rpquery -sa Income -p 0.5 [-count ">50K"] input.csv Education=HS-grad Gender=Male
//	rpquery -sa Disease -p 0.5 -dist input.csv Job=Engineer
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/reconpriv/reconpriv"
)

func main() {
	var (
		sa    = flag.String("sa", "", "sensitive attribute name (required)")
		p     = flag.Float64("p", 1, "retention probability of the published data (1 = exact counting)")
		count = flag.String("count", "", "estimate the count of this sensitive value")
		dist  = flag.Bool("dist", false, "reconstruct the full sensitive-value distribution")
	)
	flag.Parse()
	if *sa == "" {
		fatal(fmt.Errorf("-sa is required"))
	}
	args := flag.Args()
	if len(args) == 0 {
		fatal(fmt.Errorf("usage: rpquery -sa SA [-p P] [-count VALUE|-dist] input.csv attr=value ..."))
	}
	var in io.Reader = os.Stdin
	if args[0] != "-" {
		f, err := os.Open(args[0])
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	t, err := reconpriv.ReadCSV(in, *sa)
	if err != nil {
		fatal(err)
	}
	conds := map[string]string{}
	for _, a := range args[1:] {
		kv := strings.SplitN(a, "=", 2)
		if len(kv) != 2 {
			fatal(fmt.Errorf("condition %q is not attr=value", a))
		}
		conds[kv[0]] = kv[1]
	}
	switch {
	case *dist:
		if *p >= 1 {
			fatal(fmt.Errorf("-dist requires the published retention probability -p in (0,1)"))
		}
		d, err := reconpriv.Reconstruct(t, conds, *p)
		if err != nil {
			fatal(err)
		}
		keys := make([]string, 0, len(d))
		for k := range d {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return d[keys[i]] > d[keys[j]] })
		for _, k := range keys {
			fmt.Printf("%-24s %8.4f\n", k, d[k])
		}
	case *count != "":
		if *p >= 1 {
			n, err := reconpriv.Count(t, conds, *count)
			if err != nil {
				fatal(err)
			}
			fmt.Println(n)
		} else {
			est, err := reconpriv.EstimateCount(t, conds, *count, *p)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%.1f\n", est)
		}
	default:
		n, err := reconpriv.Count(t, conds, "")
		if err != nil {
			fatal(err)
		}
		fmt.Println(n)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rpquery:", err)
	os.Exit(1)
}
