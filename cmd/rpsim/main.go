// Command rpsim runs a deterministic workload simulation against an
// in-process publication server and validates the serving invariants
// continuously (see internal/sim for the invariant list).
//
// Usage:
//
//	rpsim [-scenario steady-read|churn|adversary|fleet|budget|mixed] [-seed N]
//	      [-clients N] [-steps N] [-think D] [-pipeline-workers N] [-list]
//
// The deterministic JSON summary goes to stdout — two runs with the same
// scenario, seed, and scale print byte-identical summaries — and the
// human-readable report (throughput, per-operation latency quantiles) goes
// to stderr. The exit status is 1 when any invariant was violated, so a
// single `go run ./cmd/rpsim -scenario mixed -seed 1` is a full serving
// regression check.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/reconpriv/reconpriv/internal/fleet"
	"github.com/reconpriv/reconpriv/internal/serve"
	"github.com/reconpriv/reconpriv/internal/sim"
)

func main() {
	// When re-executed as a replica child of a cross-process fleet
	// scenario, serve and never return.
	fleet.ChildServeMain()

	var (
		scenario = flag.String("scenario", "mixed", "workload scenario (see -list)")
		seed     = flag.Int64("seed", 1, "run seed; fixes every random draw")
		clients  = flag.Int("clients", 0, "concurrent simulated clients (0 = scenario default)")
		steps    = flag.Int("steps", 0, "operations per client (0 = scenario default)")
		think    = flag.Duration("think", 0, "maximum per-step client pause (arrival schedule; 0 = none)")
		workers  = flag.Int("pipeline-workers", 0, "server cold-path parallelism (0 = GOMAXPROCS)")
		list     = flag.Bool("list", false, "list scenarios and exit")
	)
	flag.Parse()

	if *list {
		for _, sc := range sim.Scenarios() {
			fmt.Printf("%-12s %s\n", sc.Name, sc.Description)
		}
		return
	}

	sc, err := sim.Lookup(*scenario)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rpsim: %v\n", err)
		os.Exit(2)
	}
	start := time.Now()
	res, err := sim.Run(sim.Options{
		Scenario: sc,
		Seed:     *seed,
		Clients:  *clients,
		Steps:    *steps,
		Think:    *think,
		Config:   serve.Config{PipelineWorkers: *workers},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rpsim: %v\n", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "%s\n(total %.2fs including setup)\n", res.Report(), time.Since(start).Seconds())
	out, err := res.SummaryJSON()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rpsim: %v\n", err)
		os.Exit(2)
	}
	os.Stdout.Write(append(out, '\n'))
	if res.Summary.Invariants.Violations > 0 {
		os.Exit(1)
	}
}
