// Command rpbench regenerates every table and figure of the paper's
// evaluation from the built-in synthetic data sets.
//
// Usage:
//
//	rpbench [-exp all|table1,table2,table4,table5,fig1,fig2,fig3,fig4,fig5,
//	             audit,adversary,sim,fleet,wire,ingest,budget,outputvs,coldpublish,ablations]
//	        [-runs N] [-trials N] [-census-size N] [-seed N]
//
// Each experiment prints the same rows/series as the corresponding artifact
// in the paper; EXPERIMENTS.md records the paper-vs-measured comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/reconpriv/reconpriv/internal/experiments"
	"github.com/reconpriv/reconpriv/internal/fleet"
)

func main() {
	// When re-executed as a replica child of a cross-process fleet
	// scenario, serve and never return.
	fleet.ChildServeMain()

	var (
		exp        = flag.String("exp", "all", "comma-separated experiments: table1,table2,table4,table5,fig1,fig2,fig3,fig4,fig5,audit,adversary,sim,fleet,wire,ingest,budget,outputvs,coldpublish,ablations")
		runs       = flag.Int("runs", experiments.DefaultRuns, "independent perturbation runs per error point")
		trials     = flag.Int("trials", 10, "noise trials for Table 1")
		censusSize = flag.Int("census-size", experiments.DefaultCensusSize, "default CENSUS sample size")
		seed       = flag.Int64("seed", experiments.RunSeed, "seed for randomized experiments")
		jsonDir    = flag.String("json", "", "also write each result as BENCH_<name>.json in this directory")
	)
	flag.Parse()
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "rpbench: %v\n", err)
			os.Exit(1)
		}
	}
	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	ran := 0
	for _, e := range []struct {
		name string
		run  func() (fmt.Stringer, error)
	}{
		{"table1", func() (fmt.Stringer, error) { return experiments.RunTable1(*trials, *seed) }},
		{"table2", func() (fmt.Stringer, error) { return experiments.RunTable2(), nil }},
		{"table4", func() (fmt.Stringer, error) { return experiments.RunTable4() }},
		{"table5", func() (fmt.Stringer, error) { return experiments.RunTable5(*censusSize) }},
		{"fig1", func() (fmt.Stringer, error) { return experiments.RunFig1("ADULT") }},
		{"fig1b", func() (fmt.Stringer, error) { return experiments.RunFig1("CENSUS") }},
		{"fig2", func() (fmt.Stringer, error) { return sweepAll(true, false, *censusSize, 0) }},
		{"fig3", func() (fmt.Stringer, error) { return sweepAll(true, true, *censusSize, *runs) }},
		{"fig4", func() (fmt.Stringer, error) { return sweepAll(false, false, *censusSize, 0) }},
		{"fig5", func() (fmt.Stringer, error) { return sweepAll(false, true, *censusSize, *runs) }},
		{"audit", func() (fmt.Stringer, error) { return runAudits(*censusSize, *seed) }},
		{"adversary", func() (fmt.Stringer, error) { return experiments.RunAdversaryBench(*censusSize, 1000) }},
		{"sim", func() (fmt.Stringer, error) { return experiments.RunSimMixed(8, 40, *seed) }},
		{"fleet", func() (fmt.Stringer, error) { return experiments.RunFleetBench(8, 20, *seed) }},
		{"wire", func() (fmt.Stringer, error) { return experiments.RunWireBench(*censusSize, 2) }},
		{"ingest", func() (fmt.Stringer, error) { return experiments.RunIngestBench(0, 0, *seed) }},
		{"budget", func() (fmt.Stringer, error) { return experiments.RunBudgetBench(0, *seed) }},
		{"coldpublish", func() (fmt.Stringer, error) { return experiments.RunColdPublish(*censusSize, 5) }},
		{"outputvs", func() (fmt.Stringer, error) { return runOutputVs(*censusSize, *runs) }},
		{"ablations", func() (fmt.Stringer, error) { return runAblations(*censusSize, *runs, *seed) }},
	} {
		if !all && !want[e.name] {
			continue
		}
		ran++
		start := time.Now()
		res, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rpbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%.2fs) ===\n%s\n", e.name, time.Since(start).Seconds(), res)
		if *jsonDir != "" {
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "rpbench: %s: marshal: %v\n", e.name, err)
				os.Exit(1)
			}
			path := filepath.Join(*jsonDir, "BENCH_"+e.name+".json")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "rpbench: %s: %v\n", e.name, err)
				os.Exit(1)
			}
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "rpbench: no experiment matched %q\n", *exp)
		os.Exit(2)
	}
}

// multi concatenates sub-results.
type multi []fmt.Stringer

func (m multi) String() string {
	parts := make([]string, len(m))
	for i, s := range m {
		parts[i] = s.String()
	}
	return strings.Join(parts, "\n")
}

// sweepAll runs the three (or four, for CENSUS) panels of a violation or
// error figure.
func sweepAll(adult, errors bool, censusSize, runs int) (fmt.Stringer, error) {
	vars := []experiments.SweepVar{experiments.SweepP, experiments.SweepLambda, experiments.SweepDelta}
	if !adult {
		vars = append(vars, experiments.SweepSize)
	}
	var out multi
	for _, v := range vars {
		if errors {
			res, err := experiments.RunErrorSweep(adult, v, censusSize, runs)
			if err != nil {
				return nil, err
			}
			out = append(out, res)
		} else {
			res, err := experiments.RunViolationSweep(adult, v, censusSize)
			if err != nil {
				return nil, err
			}
			out = append(out, res)
		}
	}
	return out, nil
}

func runAudits(censusSize int, seed int64) (fmt.Stringer, error) {
	var out multi
	a, err := experiments.RunAudit(true, censusSize, 2000, 10, seed)
	if err != nil {
		return nil, err
	}
	out = append(out, a)
	c, err := experiments.RunAudit(false, censusSize, 500, 10, seed)
	if err != nil {
		return nil, err
	}
	out = append(out, c)
	return out, nil
}

func runOutputVs(censusSize, runs int) (fmt.Stringer, error) {
	var out multi
	a, err := experiments.RunOutputVsData(true, censusSize, runs)
	if err != nil {
		return nil, err
	}
	out = append(out, a)
	c, err := experiments.RunOutputVsData(false, censusSize, runs)
	if err != nil {
		return nil, err
	}
	out = append(out, c)
	return out, nil
}

func runAblations(censusSize, runs int, seed int64) (fmt.Stringer, error) {
	var out multi
	b, err := experiments.RunBoundsAblation(censusSize)
	if err != nil {
		return nil, err
	}
	out = append(out, b)
	e, err := experiments.RunEstimatorAblation(runs, seed)
	if err != nil {
		return nil, err
	}
	out = append(out, e)
	ra, err := experiments.RunReducePAblation(true, censusSize, runs)
	if err != nil {
		return nil, err
	}
	out = append(out, ra)
	rc, err := experiments.RunReducePAblation(false, censusSize, runs)
	if err != nil {
		return nil, err
	}
	out = append(out, rc)
	return out, nil
}
