// Command rpserve is the long-running reconstruction-privacy publication
// server: it builds publications once per (dataset, parameters) key, caches
// them with prebuilt marginal indexes, and answers batched count queries
// over HTTP/JSON (see internal/serve for the endpoint reference).
//
// Usage:
//
//	rpserve [-addr :8080] [-shards 16] [-query-workers N] [-publish-workers N]
//	        [-pipeline-workers N] [-max-batch 100000] [-exposure-warn 50000]
//	        [-budget N] [-budget-window 1h] [-budget-soft 0.85]
//	        [-budget-trusted id,id] [-budget-trusted-quota N]
//	        [-allow-csv] [-preload census:300000,adult]
//
// -preload publishes the named datasets with default parameters before the
// server starts accepting traffic, so the first query never pays a build.
// Each preload entry is dataset[:size].
//
// The -budget flags tune the exposure budget manager: every answered query
// charges one unit and every reconstructed subset charges the SA domain
// size against the client's sliding-window quota; charges past it are
// rejected with a typed budget_exhausted 429 and a Retry-After header.
// The default quota is calibrated so a generation-averaging adversary is
// cut off well before it can pin raw counts (see EXPERIMENTS.md);
// -budget -1 disables enforcement while keeping the bounded ledger and
// /statsz reporting, and -budget-trusted grants named clients the 4x tier.
//
// A minimal session:
//
//	rpserve -preload medical:5000 &
//	curl -s localhost:8080/publications
//	curl -s -X POST localhost:8080/query -d '{
//	  "id": "<id from /publications>",
//	  "queries": [{"conds": [{"attr": "Job", "value": "Engineer"}], "sa": "Flu"}]
//	}'
//	curl -s -X POST localhost:8080/reconstruct -d '{
//	  "id": "<id>",
//	  "subsets": [[{"attr": "Job", "value": "Engineer"}]]
//	}'
//	curl -s -X POST localhost:8080/audit -d '{"id": "<id>", "trials": 1000}'
//	curl -s localhost:8080/statsz
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/reconpriv/reconpriv/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		shards       = flag.Int("shards", 16, "publication registry shards")
		queryWorkers = flag.Int("query-workers", 0, "batch evaluation workers (0 = GOMAXPROCS)")
		pubWorkers   = flag.Int("publish-workers", 0, "parallel publisher workers (0 = GOMAXPROCS)")
		pipeWorkers  = flag.Int("pipeline-workers", 0, "cold-path preprocessing workers: generalize, group, index (0 = GOMAXPROCS)")
		maxBatch     = flag.Int("max-batch", 0, "max queries per /query request (0 = 100000)")
		maxInsert    = flag.Int("max-insert", 0, "max records per /insert request (0 = 100000)")
		exposure     = flag.Int64("exposure-warn", 0, "per-client query count that trips exposure_warning (0 = 50000, -1 disables)")
		maxPubs      = flag.Int("max-publications", 0, "max distinct publication keys held in memory (0 = 1024)")
		allowCSV     = flag.Bool("allow-csv", false, "allow publishing server-local CSV files")
		preload      = flag.String("preload", "", "comma-separated dataset[:size] list to publish before serving")
		drainWait    = flag.Duration("drain-wait", 10*time.Second, "max time to wait for in-flight requests on SIGTERM")

		budgetQuota   = flag.Int64("budget", 0, "per-client exposure budget per window (0 = calibrated default, -1 disables enforcement)")
		budgetWindow  = flag.Duration("budget-window", 0, "sliding budget window (0 = 1h)")
		budgetSoft    = flag.Float64("budget-soft", 0, "quota fraction past which reconstructs are shed first (0 = 0.85, -1 disables)")
		budgetTrusted = flag.String("budget-trusted", "", "comma-separated client ids in the trusted (higher-quota) tier")
		trustedQuota  = flag.Int64("budget-trusted-quota", 0, "budget for trusted-tier clients (0 = 4x the default quota)")
	)
	flag.Parse()

	srv := serve.New(serve.Config{
		Shards:             *shards,
		QueryWorkers:       *queryWorkers,
		PublishWorkers:     *pubWorkers,
		PipelineWorkers:    *pipeWorkers,
		MaxBatch:           *maxBatch,
		MaxInsert:          *maxInsert,
		ExposureWarn:       *exposure,
		MaxPublications:    *maxPubs,
		AllowCSV:           *allowCSV,
		BudgetQuota:        *budgetQuota,
		BudgetWindow:       *budgetWindow,
		BudgetSoftFraction: *budgetSoft,
		BudgetTrusted:      splitTrusted(*budgetTrusted),
		BudgetTrustedQuota: *trustedQuota,
	})

	if *preload != "" {
		for _, spec := range strings.Split(*preload, ",") {
			req, err := parsePreload(strings.TrimSpace(spec))
			if err != nil {
				log.Fatalf("rpserve: -preload %q: %v", spec, err)
			}
			start := time.Now()
			e, _, err := srv.Publish(req, true)
			if err != nil {
				log.Fatalf("rpserve: preload %q: %v", spec, err)
			}
			pub, err := e.Publication()
			if err != nil {
				log.Fatalf("rpserve: preload %q: %v", spec, err)
			}
			log.Printf("rpserve: preloaded %s as %s in %v (|G| = %d)",
				spec, pub.ID, time.Since(start).Round(time.Millisecond), pub.Meta.Groups)
		}
	}

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- httpServer.ListenAndServe() }()
	log.Printf("rpserve: serving on %s", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("rpserve: %v", err)
	case sig := <-sigc:
		// Graceful drain: flip the application-level gate first so new work is
		// rejected with a typed 503 (Retry-After) while the listener stays up,
		// wait for in-flight requests up to the deadline, then close the
		// listener. Closing the listener first would turn the polite 503s into
		// connection refusals.
		log.Printf("rpserve: %v, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			log.Printf("rpserve: %v", err)
		}
		if err := httpServer.Shutdown(ctx); err != nil {
			log.Printf("rpserve: shutdown: %v", err)
		}
	}
}

// splitTrusted turns the -budget-trusted list into client ids, dropping
// empty entries.
func splitTrusted(s string) []string {
	var ids []string
	for _, id := range strings.Split(s, ",") {
		if id = strings.TrimSpace(id); id != "" {
			ids = append(ids, id)
		}
	}
	return ids
}

// parsePreload turns "census:300000" into a publish request with default
// parameters.
func parsePreload(spec string) (serve.PublishRequest, error) {
	name, sizeStr, hasSize := strings.Cut(spec, ":")
	req := serve.PublishRequest{Dataset: name}
	if hasSize {
		n, err := strconv.Atoi(sizeStr)
		if err != nil {
			return req, fmt.Errorf("bad size %q", sizeStr)
		}
		req.Size = n
	}
	return req, nil
}
