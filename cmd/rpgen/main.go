// Command rpgen generates the built-in synthetic data sets as CSV (plus an
// optional JSON schema) for use with rpperturb and rpquery.
//
// Usage:
//
//	rpgen -dataset adult|census|medical [-n N] [-seed N] [-o file.csv] [-schema file.json]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/reconpriv/reconpriv/internal/datagen"
	"github.com/reconpriv/reconpriv/internal/dataset"
)

func main() {
	var (
		name   = flag.String("dataset", "adult", "adult, census, or medical")
		n      = flag.Int("n", 0, "record count (census/medical; adult is fixed at 45222)")
		seed   = flag.Int64("seed", 1, "generator seed")
		out    = flag.String("o", "-", "output CSV path (- for stdout)")
		schema = flag.String("schema", "", "optional path for the JSON schema")
	)
	flag.Parse()

	var t *dataset.Table
	var err error
	switch *name {
	case "adult":
		t = datagen.Adult(*seed)
	case "census":
		size := *n
		if size == 0 {
			size = 300000
		}
		t, err = datagen.Census(size, *seed)
	case "medical":
		size := *n
		if size == 0 {
			size = 10000
		}
		t, err = datagen.Medical(size, *seed)
	default:
		err = fmt.Errorf("unknown dataset %q", *name)
	}
	if err != nil {
		fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := dataset.WriteCSV(w, t); err != nil {
		fatal(err)
	}
	if *schema != "" {
		f, err := os.Create(*schema)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := dataset.WriteSchema(f, t.Schema); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "rpgen: wrote %d records of %s\n", t.NumRows(), *name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rpgen:", err)
	os.Exit(1)
}
