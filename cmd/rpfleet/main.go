// Command rpfleet serves a replicated publication fleet: N replicas behind
// a router that places publications by rendezvous hashing, fails queries
// over between holders, retries with capped backoff, and charges client
// exposure exactly once per logical request regardless of retries (see
// internal/fleet for the design).
//
// Replicas run in one of three transports:
//
//   - in-process (default): replicas are goroutine-served servers inside
//     this process — zero setup, the simulation-scale mode.
//   - -procs: each replica is a spawned child process of this binary,
//     reached over real loopback sockets. A replica crash is a real process
//     exit; the router detects it through transport failures, ejects the
//     replica, and a restart respawns the child and deterministically
//     replays its state (checkpoint + mutation-log tail).
//   - -peers addr,addr,...: replicas are externally managed rpserve
//     processes the router attaches to; the peer list overrides -replicas.
//
// Usage:
//
//	rpfleet [-addr :8080] [-replicas 3] [-rf 2] [-timeout 2s]
//	        [-procs | -peers host:port,host:port]
//	        [-checkpoint-log 64] [-build-timeout 2m]
//	        [-eject-after 3] [-max-inflight 64] [-verify-every 16]
//	        [-budget N] [-budget-soft 0.85] [-budget-trusted id,id]
//	        [-preload medical:5000,census:300000]
//
// -preload publishes each dataset[:size] across the fleet before serving,
// so the first query never pays a build. The endpoint surface matches
// rpserve — /query, /reconstruct, /audit, /publish, /refresh, /insert,
// /publications, /healthz, /statsz — with two router additions: requests
// may carry an X-Idempotency-Key header to make retries safe, and /statsz
// reports router counters (failovers, ejections, shed load, checkpoints)
// instead of per-replica internals. Inserts fan out to every live holder
// and append to the publication's mutation log; when the log reaches
// -checkpoint-log entries it is folded into a stored snapshot, so restart
// replay cost stays bounded under sustained ingest. Replica-side
// budget_exhausted 429s pass through with their Retry-After header and are
// never retried — a rejected request charges no exposure on any replica.
//
// A minimal cross-process session:
//
//	rpfleet -procs -replicas 3 -rf 2 -preload medical:5000 &
//	curl -s localhost:8080/publications
//	curl -s -X POST localhost:8080/query -H 'X-Idempotency-Key: demo-1' -d '{
//	  "id": "<id from /publications>",
//	  "queries": [{"conds": [{"attr": "Job", "value": "Engineer"}], "sa": "Flu"}]
//	}'
//	curl -s localhost:8080/statsz
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/reconpriv/reconpriv/internal/fleet"
	"github.com/reconpriv/reconpriv/internal/serve"
)

func main() {
	// When re-executed as a replica child (-procs), serve and never return.
	fleet.ChildServeMain()

	var (
		addr        = flag.String("addr", ":8080", "listen address")
		replicas    = flag.Int("replicas", 3, "replica count")
		rf          = flag.Int("rf", 2, "replication factor: holders per publication (clamped to -replicas)")
		timeout     = flag.Duration("timeout", 2*time.Second, "per-attempt replica deadline")
		attempts    = flag.Int("attempts", 5, "attempt budget per logical request")
		ejectAfter  = flag.Int("eject-after", 3, "consecutive transport failures before a replica is ejected")
		maxInflight = flag.Int64("max-inflight", 64, "concurrent requests per replica before load shedding")
		verifyEvery = flag.Int("verify-every", 16, "sample 1-in-N answers for cross-replica digest verification (negative disables)")
		pipeWorkers = flag.Int("pipeline-workers", 0, "per-replica cold-path preprocessing workers (0 = GOMAXPROCS)")
		preload     = flag.String("preload", "", "comma-separated dataset[:size] list to publish before serving")

		procs        = flag.Bool("procs", false, "spawn each replica as a child process reached over real sockets")
		peers        = flag.String("peers", "", "comma-separated replica base addresses to attach to (overrides -replicas; mutually exclusive with -procs)")
		checkpointMu = flag.Int("checkpoint-log", 64, "mutation-log length at which a publication is checkpointed and the log truncated (negative disables)")
		buildTimeout = flag.Duration("build-timeout", 2*time.Minute, "deadline for control-plane operations (publish, refresh, snapshot, restart replay)")

		budgetQuota   = flag.Int64("budget", 0, "per-client exposure budget per window on every replica (0 = calibrated default, -1 disables)")
		budgetWindow  = flag.Duration("budget-window", 0, "sliding budget window (0 = 1h)")
		budgetSoft    = flag.Float64("budget-soft", 0, "quota fraction past which reconstructs are shed first (0 = 0.85, -1 disables)")
		budgetTrusted = flag.String("budget-trusted", "", "comma-separated client ids in the trusted (higher-quota) tier")
		trustedQuota  = flag.Int64("budget-trusted-quota", 0, "budget for trusted-tier clients (0 = 4x the default quota)")
	)
	flag.Parse()

	cfg := fleet.Config{
		Replicas:          *replicas,
		ReplicationFactor: *rf,
		EjectAfter:        *ejectAfter,
		MaxInFlight:       *maxInflight,
		MaxAttempts:       *attempts,
		Timeout:           *timeout,
		BuildTimeout:      *buildTimeout,
		VerifyEvery:       *verifyEvery,
		CheckpointLog:     *checkpointMu,
		Serve: serve.Config{
			PipelineWorkers:    *pipeWorkers,
			BudgetQuota:        *budgetQuota,
			BudgetWindow:       *budgetWindow,
			BudgetSoftFraction: *budgetSoft,
			BudgetTrusted:      splitTrusted(*budgetTrusted),
			BudgetTrustedQuota: *trustedQuota,
		},
	}

	var f *fleet.Fleet
	var err error
	switch {
	case *procs && *peers != "":
		log.Fatal("rpfleet: -procs and -peers are mutually exclusive")
	case *procs:
		f, err = fleet.NewProcs(cfg)
	case *peers != "":
		f, err = fleet.NewPeers(cfg, splitTrusted(*peers))
	default:
		f = fleet.New(cfg)
	}
	if err != nil {
		log.Fatalf("rpfleet: %v", err)
	}
	defer f.Close()

	if *preload != "" {
		for _, spec := range strings.Split(*preload, ",") {
			req, err := parsePreload(strings.TrimSpace(spec))
			if err != nil {
				log.Fatalf("rpfleet: -preload %q: %v", spec, err)
			}
			start := time.Now()
			id, err := f.Publish(req)
			if err != nil {
				log.Fatalf("rpfleet: preload %q: %v", spec, err)
			}
			log.Printf("rpfleet: preloaded %s as %s on replicas %v in %v",
				spec, id, f.Holders(id), time.Since(start).Round(time.Millisecond))
		}
	}

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           f.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("rpfleet: %d replicas (rf %d, %s) serving on %s",
		f.Config().Replicas, f.Config().ReplicationFactor, f.Transport(), *addr)
	log.Fatal(httpServer.ListenAndServe())
}

// splitTrusted turns a comma-separated list into trimmed non-empty entries.
func splitTrusted(s string) []string {
	var ids []string
	for _, id := range strings.Split(s, ",") {
		if id = strings.TrimSpace(id); id != "" {
			ids = append(ids, id)
		}
	}
	return ids
}

// parsePreload turns "census:300000" into a publish request with default
// parameters.
func parsePreload(spec string) (serve.PublishRequest, error) {
	name, sizeStr, hasSize := strings.Cut(spec, ":")
	req := serve.PublishRequest{Dataset: name}
	if hasSize {
		n, err := strconv.Atoi(sizeStr)
		if err != nil {
			return req, fmt.Errorf("bad size %q", sizeStr)
		}
		req.Size = n
	}
	return req, nil
}
