// Command rpperturb publishes a CSV table under reconstruction privacy.
//
// It reads a table whose sensitive attribute is named with -sa, runs the
// publishing pipeline (chi-square generalization → Corollary 4 test → SPS,
// or plain uniform perturbation with -method up), and writes the published
// CSV to -o.
//
// Usage:
//
//	rpperturb -sa Income [-method sps|up] [-p 0.5] [-lambda 0.3] [-delta 0.3]
//	          [-significance 0.05] [-seed 1] [-o out.csv] input.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/reconpriv/reconpriv"
)

func main() {
	var (
		sa     = flag.String("sa", "", "sensitive attribute name (required)")
		method = flag.String("method", "sps", "sps (reconstruction-private) or up (uniform perturbation)")
		p      = flag.Float64("p", reconpriv.DefaultOptions.RetentionProbability, "retention probability")
		lambda = flag.Float64("lambda", reconpriv.DefaultOptions.Lambda, "relative-error radius lambda")
		delta  = flag.Float64("delta", reconpriv.DefaultOptions.Delta, "probability floor delta")
		sig    = flag.Float64("significance", reconpriv.DefaultOptions.Significance, "chi-square significance (0 disables generalization)")
		seed   = flag.Int64("seed", 1, "perturbation seed")
		out    = flag.String("o", "-", "output CSV path (- for stdout)")
	)
	flag.Parse()
	if *sa == "" {
		fatal(fmt.Errorf("-sa is required"))
	}
	var in io.Reader = os.Stdin
	if flag.NArg() > 0 && flag.Arg(0) != "-" {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	t, err := reconpriv.ReadCSV(in, *sa)
	if err != nil {
		fatal(err)
	}
	opt := reconpriv.Options{
		RetentionProbability: *p,
		Lambda:               *lambda,
		Delta:                *delta,
		Significance:         *sig,
		Seed:                 *seed,
	}
	var pub *reconpriv.Table
	var rep *reconpriv.PublishReport
	switch *method {
	case "sps":
		pub, rep, err = reconpriv.Publish(t, opt)
	case "up":
		pub, rep, err = reconpriv.PublishUniform(t, opt)
	default:
		err = fmt.Errorf("unknown method %q", *method)
	}
	if err != nil {
		fatal(err)
	}
	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := pub.WriteCSV(w); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "rpperturb: %d records in, %d out; %d personal groups, %d violating (%d records), %d sampled\n",
		rep.RecordsIn, rep.RecordsOut, rep.PersonalGroups, rep.ViolatingGroups, rep.ViolatingRecords, rep.SampledGroups)
	for _, m := range rep.Merges {
		fmt.Fprintf(os.Stderr, "rpperturb: %s domain %d -> %d\n", m.Attribute, m.DomainBefore, m.DomainAfter)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rpperturb:", err)
	os.Exit(1)
}
