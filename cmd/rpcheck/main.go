// Command rpcheck diagnoses a table's exposure under reconstruction
// privacy: it generalizes, tests every personal group against Corollary 4,
// and prints the violation summary plus the largest groups with their s_g
// thresholds and would-be SPS sampling rates.
//
// Usage:
//
//	rpcheck -sa Income [-p 0.5] [-lambda 0.3] [-delta 0.3]
//	        [-significance 0.05] [-top 20] [-audit-trials 0] input.csv
//
// With -audit-trials N > 0 it additionally runs the Monte-Carlo audit: the
// empirical tail probabilities of the personal-reconstruction error per
// group, next to their Chernoff bounds.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/reconpriv/reconpriv/internal/chimerge"
	"github.com/reconpriv/reconpriv/internal/core"
	"github.com/reconpriv/reconpriv/internal/dataset"
	"github.com/reconpriv/reconpriv/internal/stats"
)

func main() {
	var (
		sa     = flag.String("sa", "", "sensitive attribute name (required)")
		p      = flag.Float64("p", 0.5, "retention probability")
		lambda = flag.Float64("lambda", 0.3, "relative-error radius lambda")
		delta  = flag.Float64("delta", 0.3, "probability floor delta")
		sig    = flag.Float64("significance", 0.05, "chi-square significance (0 disables generalization)")
		top    = flag.Int("top", 20, "number of largest groups to list")
		audit  = flag.Int("audit-trials", 0, "Monte-Carlo audit trials per listed group (0 disables)")
		seed   = flag.Int64("seed", 1, "audit seed")
	)
	flag.Parse()
	if *sa == "" {
		fatal(fmt.Errorf("-sa is required"))
	}
	var in io.Reader = os.Stdin
	if flag.NArg() > 0 && flag.Arg(0) != "-" {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	t, err := dataset.ReadCSV(in, *sa)
	if err != nil {
		fatal(err)
	}
	work := t
	if *sig > 0 {
		res, err := chimerge.Generalize(t, *sig)
		if err != nil {
			fatal(err)
		}
		for _, a := range res.Attrs {
			if a.DomainAfter != a.DomainBefore {
				fmt.Printf("generalized %s: %d -> %d values\n", a.Name, a.DomainBefore, a.DomainAfter)
			}
		}
		work = res.Table
	}
	pm := core.Params{P: *p, Lambda: *lambda, Delta: *delta}
	if err := pm.Validate(); err != nil {
		fatal(err)
	}
	groups := dataset.GroupsOf(work)
	rep := core.Violations(groups, pm)
	fmt.Printf("\n%d records in %d personal groups (sizes %d..%d)\n",
		rep.Records, rep.Groups, rep.MinGroupSize, rep.MaxGroupSize)
	fmt.Printf("violating (%.2g,%.2g)-reconstruction-privacy at p=%.2g: %d groups (%.1f%%) covering %d records (%.1f%%)\n\n",
		pm.Lambda, pm.Delta, pm.P, rep.ViolatingGroups, 100*rep.VG(), rep.ViolatingRecord, 100*rep.VR())

	diags := core.Diagnose(groups, pm)
	if *top > len(diags) {
		*top = len(diags)
	}
	fmt.Printf("%-7s %-7s %-8s %-9s %-6s %s\n", "size", "maxfreq", "s_g", "violates", "tau", "group")
	for _, d := range diags[:*top] {
		fmt.Printf("%-7d %-7.3f %-8.0f %-9v %-6.2f %s\n",
			d.Size, d.MaxFreq, d.SG, d.Violating, d.Tau, core.FormatKey(groups, d.Key))
	}

	if *audit > 0 {
		fmt.Printf("\nMonte-Carlo audit (%d trials per group, UP process):\n", *audit)
		arep, err := core.Audit(stats.NewRand(*seed), groups, pm, false, *audit, *top)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-7s %-9s %-9s %-9s %-9s %s\n", "size", "emp>λ", "boundU", "emp<-λ", "boundL", "group")
		for _, g := range arep.Groups {
			fmt.Printf("%-7d %-9.4f %-9.4f %-9.4f %-9.4f %s\n",
				g.Size, g.UpperEmp, g.UpperBound, g.LowerEmp, g.LowerBound, core.FormatKey(groups, g.Key))
		}
		if v := arep.BoundViolations(0.02); v > 0 {
			fmt.Printf("WARNING: %d groups exceeded their Chernoff bounds\n", v)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rpcheck:", err)
	os.Exit(1)
}
