package reconpriv

// The benchmarks below regenerate every table and figure of the paper's
// evaluation (see EXPERIMENTS.md for paper-vs-measured) and time the
// regeneration. Each benchmark reports domain-specific metrics via
// b.ReportMetric, so `go test -bench=. -benchmem` doubles as a results
// harness: the headline quantities of each artifact appear next to the
// timing. cmd/rpbench prints the full rows/series.
//
// Benchmarks use fewer perturbation runs per point (3) than the paper's 10
// to keep `go test -bench=.` minutes-scale; cmd/rpbench defaults to 10.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/reconpriv/reconpriv/internal/chimerge"
	"github.com/reconpriv/reconpriv/internal/core"
	"github.com/reconpriv/reconpriv/internal/datagen"
	"github.com/reconpriv/reconpriv/internal/dataset"
	"github.com/reconpriv/reconpriv/internal/experiments"
	"github.com/reconpriv/reconpriv/internal/perturb"
	"github.com/reconpriv/reconpriv/internal/query"
	"github.com/reconpriv/reconpriv/internal/reconstruct"
	"github.com/reconpriv/reconpriv/internal/serve"
	"github.com/reconpriv/reconpriv/internal/sim"
	"github.com/reconpriv/reconpriv/internal/stats"
	"github.com/reconpriv/reconpriv/internal/wire"
)

const (
	benchRuns       = 3
	benchCensusSize = 300000
)

// BenchmarkTable1NIRAttack regenerates Table 1: the ratio attack on the
// Example-1 rule through differentially private answers.
func BenchmarkTable1NIRAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1(10, 1)
		if err != nil {
			b.Fatal(err)
		}
		// ε=0.5 column: the disclosure the paper highlights.
		b.ReportMetric(res.Columns[2].Conf.Mean, "conf@eps0.5")
		b.ReportMetric(res.Columns[2].RelErr1.Mean, "relerr1@eps0.5")
	}
}

// BenchmarkTable2Indicator regenerates Table 2, the closed-form disclosure
// indicator grid.
func BenchmarkTable2Indicator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunTable2()
		b.ReportMetric(res.Values[1][2], "indicator@b20x500")
	}
}

// BenchmarkTable4ChiMergeAdult regenerates Table 4: the chi-square
// aggregation impact on ADULT (16/14/5/2 → 7/4/2/2, |G| 2240 → 112).
func BenchmarkTable4ChiMergeAdult(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable4()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.GroupsAfter), "groups-after")
	}
}

// BenchmarkTable5ChiMergeCensus regenerates Table 5 (CENSUS 300K: Age 77→1,
// |G| 116424 → 1512).
func BenchmarkTable5ChiMergeCensus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable5(benchCensusSize)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.GroupsAfter), "groups-after")
	}
}

// BenchmarkFig1MaxGroupSize regenerates both panels of Figure 1 (s_g vs f).
func BenchmarkFig1MaxGroupSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := experiments.RunFig1("ADULT")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.RunFig1("CENSUS"); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(a.Series[1].SG[0], "sg@f0.5p0.5")
	}
}

// BenchmarkFig2AdultViolation regenerates Figure 2: ADULT violation rates
// across the p, λ, δ sweeps.
func BenchmarkFig2AdultViolation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var def float64
		for _, v := range []experiments.SweepVar{experiments.SweepP, experiments.SweepLambda, experiments.SweepDelta} {
			res, err := experiments.RunViolationSweep(true, v, benchCensusSize)
			if err != nil {
				b.Fatal(err)
			}
			def = res.Points[2].VG
		}
		b.ReportMetric(def, "vg@defaults")
	}
}

// BenchmarkFig3AdultError regenerates Figure 3: ADULT relative error of SPS
// vs UP across the p, λ, δ sweeps.
func BenchmarkFig3AdultError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var up, sps float64
		for _, v := range []experiments.SweepVar{experiments.SweepP, experiments.SweepLambda, experiments.SweepDelta} {
			res, err := experiments.RunErrorSweep(true, v, benchCensusSize, benchRuns)
			if err != nil {
				b.Fatal(err)
			}
			up = res.Points[2].UP.Mean
			sps = res.Points[2].SPS.Mean
		}
		b.ReportMetric(up, "up-err@defaults")
		b.ReportMetric(sps, "sps-err@defaults")
	}
}

// BenchmarkFig4CensusViolation regenerates Figure 4: CENSUS violation rates
// across the p, λ, δ and |D| sweeps.
func BenchmarkFig4CensusViolation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var vr float64
		for _, v := range []experiments.SweepVar{experiments.SweepP, experiments.SweepLambda, experiments.SweepDelta, experiments.SweepSize} {
			res, err := experiments.RunViolationSweep(false, v, benchCensusSize)
			if err != nil {
				b.Fatal(err)
			}
			vr = res.Points[2].VR
		}
		b.ReportMetric(vr, "vr@defaults")
	}
}

// BenchmarkFig5CensusError regenerates Figure 5: CENSUS relative error of
// SPS vs UP across the p, λ, δ and |D| sweeps.
func BenchmarkFig5CensusError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var ratio float64
		for _, v := range []experiments.SweepVar{experiments.SweepP, experiments.SweepLambda, experiments.SweepDelta, experiments.SweepSize} {
			res, err := experiments.RunErrorSweep(false, v, benchCensusSize, benchRuns)
			if err != nil {
				b.Fatal(err)
			}
			ratio = res.Points[2].SPS.Mean / res.Points[2].UP.Mean
		}
		b.ReportMetric(ratio, "sps/up@defaults")
	}
}

// BenchmarkAblationBounds compares the plugged-in tail bounds (Theorem 2's
// extension point): Chernoff vs Chebyshev vs Hoeffding vs Markov.
func BenchmarkAblationBounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunBoundsAblation(benchCensusSize)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].SGAdult, "chernoff-sg")
		b.ReportMetric(res.Rows[1].SGAdult, "bernstein-sg")
		b.ReportMetric(res.Rows[2].SGAdult, "chebyshev-sg")
	}
}

// BenchmarkAblationEstimators compares MLE, matrix MLE, and iterative Bayes
// reconstruction accuracy and cost.
func BenchmarkAblationEstimators(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunEstimatorAblation(benchRuns, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].MLE, "mle-l1@50")
		b.ReportMetric(res.Rows[0].EM, "em-l1@50")
	}
}

// BenchmarkAblationReduceP compares SPS against the rejected
// reduce-p-globally alternative on ADULT.
func BenchmarkAblationReduceP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunReducePAblation(true, benchCensusSize, benchRuns)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SPSError.Mean, "sps-err")
		b.ReportMetric(res.ReduceP.Mean, "reducep-err")
	}
}

// BenchmarkAblationPerturbModes compares the reference per-record
// perturbation path with the distribution-identical histogram path.
func BenchmarkAblationPerturbModes(b *testing.B) {
	raw := datagen.Adult(1)
	groups := dataset.GroupsOf(raw)
	rng := stats.NewRand(1)
	b.Run("per-record", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := perturb.Table(rng, raw, 0.5); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("histogram", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.PublishUP(rng, groups, 0.5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPerturbCounts compares the two implementations of histogram
// perturbation on one large personal group: the O(n) per-record reference
// loop and the O(m) binomial fast path. They draw from the same
// distribution (see TestCountsChiSquareMatchesPerRecord); only the cost
// differs, and the gap is the heart of the sublinear publishing claim.
func BenchmarkPerturbCounts(b *testing.B) {
	// A 100K-record group over a 50-value SA domain with a skewed histogram.
	const m = 50
	counts := make([]int, m)
	total := 0
	for v := 0; v < m; v++ {
		counts[v] = (m - v) * 80
		total += counts[v]
	}
	b.Run("loop", func(b *testing.B) {
		rng := stats.NewRand(1)
		for i := 0; i < b.N; i++ {
			perturb.CountsPerRecord(rng, counts, 0.5)
		}
		b.ReportMetric(float64(total), "records")
	})
	b.Run("binomial", func(b *testing.B) {
		rng := stats.NewRand(1)
		for i := 0; i < b.N; i++ {
			perturb.Counts(rng, counts, 0.5)
		}
		b.ReportMetric(float64(total), "records")
	})
}

// BenchmarkGroupFind times key lookups against the CENSUS group set; the
// binary search runs over the cached encoded keys, so a lookup costs one
// probe encoding plus ~log|G| integer compares.
func BenchmarkGroupFind(b *testing.B) {
	ds, err := experiments.CensusData(benchCensusSize)
	if err != nil {
		b.Fatal(err)
	}
	gs := ds.Groups
	n := gs.NumGroups()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if gs.Find(gs.Groups[i%n].Key) == nil {
			b.Fatal("existing key not found")
		}
	}
}

// BenchmarkOutputVsData compares ε-DP Laplace answers against UP and SPS on
// the shared query pool (the Introduction's output- vs data-perturbation
// contrast).
func BenchmarkOutputVsData(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunOutputVsData(true, benchCensusSize, benchRuns)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SPSError.Mean, "sps-err")
		b.ReportMetric(res.DP[1].DPError.Mean, "dp-err@eps0.5")
	}
}

// BenchmarkAuditAdult runs the Monte-Carlo verification of Corollary 3 on
// ADULT's ten largest personal groups.
func BenchmarkAuditAdult(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAudit(true, benchCensusSize, 1000, 10, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.UP.BoundViolations(0.02)), "bound-violations")
	}
}

// BenchmarkAuditSweep times the parallel per-group audit engine sweeping
// every personal group of CENSUS 300K (the /audit workload). The sweep is
// bit-identical at any worker count; the benchmark runs it at GOMAXPROCS.
func BenchmarkAuditSweep(b *testing.B) {
	ds, err := experiments.CensusData(benchCensusSize)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := core.AuditSweep(1, ds.Groups, core.DefaultParams, true, 200, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rep.Groups)), "groups")
	}
	b.StopTimer()
	b.ReportMetric(float64(ds.Groups.NumGroups())*float64(b.N)/b.Elapsed().Seconds(), "groups/s")
}

// BenchmarkReconstructBatch times the index-backed adversary engine
// answering a 1,000-condition reconstruction batch against an SPS
// publication of CENSUS 300K, next to the per-call scan reference
// (RunAdversaryBench measures the same workload with the built-in 1e-12
// equivalence check; the acceptance speedup comes from rpbench -exp
// adversary).
func BenchmarkReconstructBatch(b *testing.B) {
	res, err := experiments.RunAdversaryBench(benchCensusSize, 1000)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.Speedup, "scan-speedup")
	b.ReportMetric(res.BatchMS, "batch-ms")
	ds, err := experiments.CensusData(benchCensusSize)
	if err != nil {
		b.Fatal(err)
	}
	published, _, err := core.PublishSPSParallel(1, ds.Groups, core.DefaultParams, 0)
	if err != nil {
		b.Fatal(err)
	}
	marg, err := query.BuildMarginalsFromGroups(published, 3)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := reconstruct.NewEngine(marg, core.DefaultParams.P)
	if err != nil {
		b.Fatal(err)
	}
	sets := experiments.RandomConditionSets(published.Schema, 1000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs := eng.ReconstructBatch(sets, reconstruct.BatchOptions{})
		for j := range recs {
			if recs[j].Err != nil {
				b.Fatal(recs[j].Err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(sets))*float64(b.N)/b.Elapsed().Seconds(), "reconstructions/s")
}

// BenchmarkSimMixed runs the mixed workload simulation end to end: 8
// concurrent clients driving queries, inserts, refreshes, reconstructions,
// and audits against an in-process publication server over real HTTP, with
// the internal/sim invariant checker validating every step. The benchmark
// fails on any invariant violation, so it doubles as a serving regression
// gate wherever benchmarks run.
func BenchmarkSimMixed(b *testing.B) {
	sc, err := sim.Lookup("mixed")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Options{Scenario: sc, Seed: 1, Clients: 8, Steps: 20})
		if err != nil {
			b.Fatal(err)
		}
		if v := res.Summary.Invariants.Violations; v > 0 {
			b.Fatalf("%d invariant violations: %v", v, res.Summary.Invariants.Failures)
		}
		b.ReportMetric(res.Timing.RequestsPerSec, "requests/s")
		b.ReportMetric(float64(res.Summary.Invariants.Checks), "checks")
	}
}

// BenchmarkIncrementalPublish times streaming publication of the ADULT
// records through the incremental publisher.
func BenchmarkIncrementalPublish(b *testing.B) {
	raw := datagen.Adult(1)
	for i := 0; i < b.N; i++ {
		inc, err := core.NewIncremental(raw.Schema, core.DefaultParams, stats.NewRand(1))
		if err != nil {
			b.Fatal(err)
		}
		if err := inc.AddTable(raw); err != nil {
			b.Fatal(err)
		}
		st := inc.Stats()
		b.ReportMetric(float64(st.Trials)/float64(st.Records), "trial-fraction")
	}
}

// BenchmarkParallelSPSCensus compares the deterministic parallel publisher
// against the sequential one on CENSUS 300K.
func BenchmarkParallelSPSCensus(b *testing.B) {
	ds, err := experiments.CensusData(benchCensusSize)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.PublishSPSParallel(int64(i), ds.Groups, core.DefaultParams, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublishSPSCensus times one full SPS publication of CENSUS 300K —
// the paper's Section 5 claims O(|D| log |D| + |D|); ours is a linear pass
// over group histograms after an O(|D|) grouping.
func BenchmarkPublishSPSCensus(b *testing.B) {
	ds, err := experiments.CensusData(benchCensusSize)
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRand(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.PublishSPS(rng, ds.Groups, core.DefaultParams); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryPoolEvaluate times a 5,000-query pool evaluation against a
// published CENSUS 300K (group-indexed, O(1) per query).
func BenchmarkQueryPoolEvaluate(b *testing.B) {
	ds, err := experiments.CensusData(benchCensusSize)
	if err != nil {
		b.Fatal(err)
	}
	up, err := core.PublishUP(stats.NewRand(1), ds.Groups, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	marg, err := query.BuildMarginalsFromGroups(up, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ds.Pool.Evaluate(marg, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// serveWorkload translates the cached Section 6.1 query pool (generalized
// value codes) back into the wire vocabulary of the publication server
// (original attribute labels): for each generalized code, any original
// value that maps to it names the same cube cell.
func serveWorkload(b *testing.B, ds *experiments.Dataset) []serve.QueryJSON {
	b.Helper()
	orig := ds.Raw.Schema
	rev := make([]map[uint16]uint16, orig.NumAttrs()) // attr -> new code -> an old code
	for i := range ds.Merge.Mappings {
		mp := &ds.Merge.Mappings[i]
		r := make(map[uint16]uint16, len(mp.NewValues))
		for old, nw := range mp.OldToNew {
			if _, ok := r[nw]; !ok {
				r[nw] = uint16(old)
			}
		}
		rev[mp.Attr] = r
	}
	out := make([]serve.QueryJSON, len(ds.Pool.Queries))
	for i, q := range ds.Pool.Queries {
		wq := serve.QueryJSON{SA: orig.SAAttr().Label(q.SA)}
		for _, c := range q.Conds {
			code := c.Value
			if r := rev[c.Attr]; r != nil {
				code = r[c.Value]
			}
			wq.Conds = append(wq.Conds, serve.CondJSON{
				Attr:  orig.Attrs[c.Attr].Name,
				Value: orig.Attrs[c.Attr].Label(code),
			})
		}
		out[i] = wq
	}
	return out
}

// BenchmarkServeQueryBatch answers the paper's full 5,000-query workload
// (Section 6.1) as one HTTP batch against a served CENSUS 300K publication:
// JSON decode → label resolution → pooled marginal lookups → JSON encode,
// end to end. The publication is built once outside the timed loop; no
// per-query table scan happens anywhere on the path.
func BenchmarkServeQueryBatch(b *testing.B) {
	ds, err := experiments.CensusData(benchCensusSize)
	if err != nil {
		b.Fatal(err)
	}
	// Budget enforcement off: these duels measure protocol throughput, and
	// a 5,000-query batch replayed b.N times from one client would exhaust
	// any realistic quota.
	srv := serve.New(serve.Config{BudgetQuota: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	e, _, err := srv.Publish(serve.PublishRequest{Dataset: serve.DatasetCensus, Size: benchCensusSize}, true)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.Publication(); err != nil {
		b.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{
		"id": e.ID(), "client": "bench", "queries": serveWorkload(b, ds),
	})
	if err != nil {
		b.Fatal(err)
	}
	queries := len(ds.Pool.Queries)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var out struct {
			Answers []struct {
				Error string `json:"error"`
			} `json:"answers"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if len(out.Answers) != queries {
			b.Fatalf("%d answers", len(out.Answers))
		}
		for _, a := range out.Answers {
			if a.Error != "" {
				b.Fatal(a.Error)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(queries)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkServedQueryBatch answers the same 5,000-query workload through
// both negotiated encodings against one served publication: the json
// sub-benchmark is the BenchmarkServeQueryBatch baseline, the binary
// sub-benchmark sends the batch as one application/x-rp-binary frame and
// decodes the response with a reused wire.QueryResp. The ratio of their
// queries/s metrics is the tentpole acceptance number (target >= 5x);
// `rpbench -exp wire` reports the same duel outside the test harness.
func BenchmarkServedQueryBatch(b *testing.B) {
	ds, err := experiments.CensusData(benchCensusSize)
	if err != nil {
		b.Fatal(err)
	}
	// Budget enforcement off: these duels measure protocol throughput, and
	// a 5,000-query batch replayed b.N times from one client would exhaust
	// any realistic quota.
	srv := serve.New(serve.Config{BudgetQuota: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	e, _, err := srv.Publish(serve.PublishRequest{Dataset: serve.DatasetCensus, Size: benchCensusSize}, true)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.Publication(); err != nil {
		b.Fatal(err)
	}
	jqs, wqs := experiments.WireWorkload(ds)
	queries := len(wqs)

	b.Run("json", func(b *testing.B) {
		body, err := json.Marshal(map[string]any{
			"id": e.ID(), "client": "bench", "queries": jqs,
		})
		if err != nil {
			b.Fatal(err)
		}
		var out struct {
			Answers []struct {
				Error string `json:"error"`
			} `json:"answers"`
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			out.Answers = out.Answers[:0]
			err = json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			if err != nil {
				b.Fatal(err)
			}
			if len(out.Answers) != queries {
				b.Fatalf("%d answers", len(out.Answers))
			}
			for j := range out.Answers {
				if out.Answers[j].Error != "" {
					b.Fatal(out.Answers[j].Error)
				}
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(queries)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	})

	b.Run("binary", func(b *testing.B) {
		m := wire.QueryReq{ID: []byte(e.ID()), Client: []byte("bench"), Queries: wqs}
		frame := m.Append(nil)
		var resp wire.QueryResp
		var buf bytes.Buffer
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r, err := http.Post(ts.URL+"/query", wire.ContentType, bytes.NewReader(frame))
			if err != nil {
				b.Fatal(err)
			}
			buf.Reset()
			_, err = buf.ReadFrom(r.Body)
			r.Body.Close()
			if err != nil {
				b.Fatal(err)
			}
			if r.StatusCode != http.StatusOK {
				b.Fatalf("status %d: %s", r.StatusCode, buf.Bytes())
			}
			if err := resp.Decode(buf.Bytes()); err != nil {
				b.Fatal(err)
			}
			if len(resp.Answers) != queries {
				b.Fatalf("%d answers", len(resp.Answers))
			}
			for j := range resp.Answers {
				if resp.Answers[j].Err != nil {
					b.Fatal(string(resp.Answers[j].Err))
				}
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(queries)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	})
}

// BenchmarkAnswerBatch isolates the in-process batch evaluator from the
// HTTP layer: the same 5,000 queries against the same publication's
// marginal index, with the default worker pool.
func BenchmarkAnswerBatch(b *testing.B) {
	ds, err := experiments.CensusData(benchCensusSize)
	if err != nil {
		b.Fatal(err)
	}
	published, _, err := core.PublishSPSParallel(1, ds.Groups, core.DefaultParams, 0)
	if err != nil {
		b.Fatal(err)
	}
	marg, err := query.BuildMarginalsFromGroups(published, 3)
	if err != nil {
		b.Fatal(err)
	}
	queries := len(ds.Pool.Queries)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		answers := marg.AnswerBatch(ds.Pool.Queries, 0.5, 0)
		for j := range answers {
			if answers[j].Err != nil {
				b.Fatal(answers[j].Err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(queries)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkChiMergeCensus times the Section 3.4 generalization alone on the
// 300K CENSUS (the dominant preprocessing cost).
func BenchmarkChiMergeCensus(b *testing.B) {
	raw, err := datagen.Census(benchCensusSize, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Generalize(&Table{t: raw}, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdPublish measures the end-to-end request-to-queryable cold
// path on CENSUS 300K — exactly what a cache-missing /publish or a /refresh
// pays after the raw table is loaded: chi-square generalization, grouping,
// SPS perturbation, and marginal indexing. Data generation is excluded (the
// server caches raw tables per source).
//
// "sequential" is the pre-fusion pipeline shape: materialize the
// generalized table, then group, publish, and index single-threaded.
// "parallel" is the fused cold path at GOMAXPROCS: one analysis scan, no
// materialized table (grouping maps values on the fly), sharded grouping,
// concurrent cube fill. Both produce bit-identical publications
// (TestPipelineWorkersBitIdentical, RunColdPublish's cross-check).
func BenchmarkColdPublish(b *testing.B) {
	raw, err := datagen.Census(benchCensusSize, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := chimerge.Generalize(raw, chimerge.DefaultSignificance)
			if err != nil {
				b.Fatal(err)
			}
			groups := dataset.GroupsOf(res.Table)
			pub, _, err := core.PublishSPSParallel(1, groups, core.DefaultParams, 1)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := query.BuildMarginalsFromGroups(pub, 3); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := chimerge.Analyze(raw, chimerge.DefaultSignificance, 0)
			if err != nil {
				b.Fatal(err)
			}
			groups, err := dataset.GroupsOfMapped(raw, res.Mappings, 0)
			if err != nil {
				b.Fatal(err)
			}
			pub, _, err := core.PublishSPSParallel(1, groups, core.DefaultParams, 0)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := query.BuildMarginalsFromGroupsParallel(pub, 3, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
