// Background knowledge: reproduce the paper's Section 3.4 aggregation
// attack and its defense.
//
// FavoriteColor is a public attribute with no impact on Disease. An
// adversary who knows this aggregates the personal groups that differ only
// in color — male engineers who like red, blue, green, … — and reconstructs
// Bob's disease distribution from six times as many perturbed records as
// any single personal group holds, sharpening the estimate by ~√6.
//
// The chi-square generalization closes the gap: all colors merge into one
// generalized value, so {Male, Engineer} becomes a single personal group
// and SPS budgets its independent trials as one unit.
//
// Run with: go run ./examples/background
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/reconpriv/reconpriv"
)

const disease = "CervicalSpondylosis"

func main() {
	raw, err := reconpriv.SampleMedicalWithColor(30000, 7)
	if err != nil {
		log.Fatal(err)
	}
	target := map[string]string{"Gender": "Male", "Job": "Engineer"}
	truth := trueFreq(raw, target)
	fmt.Printf("true P(%s | Male, Engineer) = %.4f\n\n", disease, truth)

	gen, merges, err := reconpriv.Generalize(raw, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	_ = gen
	for _, m := range merges {
		fmt.Printf("chi-square merge: %-14s %d -> %d\n", m.Attribute, m.DomainBefore, m.DomainAfter)
	}
	fmt.Println()

	const runs = 40
	results := map[string]float64{}
	for _, mode := range []struct {
		name string
		sig  float64
	}{
		{"no generalization (attackable)", 0},
		{"with generalization (defended)", 0.05},
	} {
		var sumSq float64
		for run := 0; run < runs; run++ {
			opt := reconpriv.DefaultOptions
			opt.Significance = mode.sig
			opt.Seed = int64(run + 1)
			pub, _, err := reconpriv.Publish(raw, opt)
			if err != nil {
				log.Fatal(err)
			}
			// The attack: reconstruct over ALL records matching Bob's
			// gender and job, aggregating across colors. Without
			// generalization those are six separately-budgeted personal
			// groups; with it they are one, and the estimate the adversary
			// can form for Bob targets the generalized group.
			conds, modeTruth, err := resolveTarget(raw, pub, target)
			if err != nil {
				log.Fatal(err)
			}
			dist, err := reconpriv.Reconstruct(pub, conds, opt.RetentionProbability)
			if err != nil {
				log.Fatal(err)
			}
			d := dist[disease] - modeTruth
			sumSq += d * d
		}
		rmse := math.Sqrt(sumSq / runs)
		results[mode.name] = rmse
		fmt.Printf("%-34s RMSE of the adversary's estimate for Bob: %.4f\n", mode.name, rmse)
	}
	attack := results["no generalization (attackable)"]
	if defended := results["with generalization (defended)"]; attack > 0 {
		fmt.Printf("\ndefense degrades the attack by %.1fx (theory predicts ~sqrt(6) = 2.4x from the lost 6x trial aggregation)\n",
			defended/attack)
	}
	fmt.Println("generalization makes the aggregation attack no better than attacking one budgeted group")
}

// resolveTarget maps Bob's original attribute values onto the published
// table's (possibly generalized) labels and returns the matching conditions
// plus the true disease frequency of that published-group population in the
// raw data. For generalized labels like "Engineer|Clerk" the truth is
// computed over the union of the member values.
func resolveTarget(raw, pub *reconpriv.Table, orig map[string]string) (map[string]string, float64, error) {
	conds := make(map[string]string, len(orig))
	for attr, val := range orig {
		dom, err := pub.Domain(attr)
		if err != nil {
			return nil, 0, err
		}
		found := ""
		for _, label := range dom {
			if label == val || containsMember(label, val) {
				found = label
				break
			}
		}
		if found == "" {
			return nil, 0, fmt.Errorf("no published label covers %s=%s", attr, val)
		}
		conds[attr] = found
	}
	// Truth over the union of member values in the raw table.
	match, with := 0, 0
	for r := 0; r < raw.NumRows(); r++ {
		row := raw.Row(r)
		ok := true
		for i, attr := range raw.Attributes() {
			want, has := conds[attr]
			if !has {
				continue
			}
			if row[i] != want && !containsMember(want, row[i]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		match++
		if row[len(row)-1] == disease {
			with++
		}
	}
	if match == 0 {
		return nil, 0, fmt.Errorf("no raw records match %v", conds)
	}
	return conds, float64(with) / float64(match), nil
}

// containsMember reports whether a generalized pipe-joined label contains
// the member value.
func containsMember(label, member string) bool {
	start := 0
	for i := 0; i <= len(label); i++ {
		if i == len(label) || label[i] == '|' {
			if label[start:i] == member {
				return true
			}
			start = i + 1
		}
	}
	return false
}

func trueFreq(t *reconpriv.Table, conds map[string]string) float64 {
	match, err := reconpriv.Count(t, conds, "")
	if err != nil {
		log.Fatal(err)
	}
	with, err := reconpriv.Count(t, conds, disease)
	if err != nil {
		log.Fatal(err)
	}
	return float64(with) / float64(match)
}
