// NIR attack: reproduce the paper's Section 2 / Example 1 demonstration that
// differentially private answers disclose sensitive information through
// non-independent reasoning.
//
// The adversary issues two count queries against an ε-DP Laplace mechanism:
//
//	Q1: Education=Prof-school ∧ Occupation=Prof-specialty ∧ Race=White ∧ Gender=Male
//	Q2: Q1 ∧ Income=>50K
//
// and estimates the rule confidence from the noisy pair. As ε grows (better
// utility), the estimate converges to the true 83.83% — a targeted
// disclosure that no fixed noise scale can prevent for large enough counts.
//
// Run with: go run ./examples/nirattack
package main

import (
	"fmt"
	"log"

	"github.com/reconpriv/reconpriv"
)

func main() {
	adult := reconpriv.SampleAdult(1)
	conds := map[string]string{
		"Education":  "Prof-school",
		"Occupation": "Prof-specialty",
		"Race":       "White",
		"Gender":     "Male",
	}
	ans1, err := reconpriv.Count(adult, conds, "")
	if err != nil {
		log.Fatal(err)
	}
	ans2, err := reconpriv.Count(adult, conds, ">50K")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("true answers: ans1=%d ans2=%d  Conf=%.4f\n", ans1, ans2, float64(ans2)/float64(ans1))
	fmt.Printf("(the overall >50K rate is only %.2f%%, so the rule is a sensitive inference)\n\n",
		100*overallRate(adult))

	fmt.Printf("%-8s %-8s %-12s %-10s %-12s %-12s %s\n",
		"eps", "b", "Conf' mean", "Conf' SE", "relerr ans1", "relerr ans2", "indicator 2(b/x)^2")
	for _, eps := range []float64{0.01, 0.1, 0.5} {
		res, err := reconpriv.NIRAttack(eps, 2, float64(ans1), float64(ans2), 10, 99)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8g %-8g %-12.4f %-10.4f %-12.4f %-12.4f %.6f\n",
			eps, 2/eps, res.ConfMean, res.ConfStdErr, res.RelErr1Mean, res.RelErr2Mean, res.Indicator)
	}
	fmt.Println("\nAt eps=0.5 the noisy answers are accurate (small relative errors) AND the")
	fmt.Println("confidence estimate is within 1% of the truth: utility and disclosure arrive together.")
	fmt.Println("Reconstruction privacy prevents exactly this personal-group inference (see quickstart).")
}

func overallRate(t *reconpriv.Table) float64 {
	high, err := reconpriv.Count(t, nil, ">50K")
	if err != nil {
		log.Fatal(err)
	}
	return float64(high) / float64(t.NumRows())
}
