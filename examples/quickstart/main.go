// Quickstart: publish a table under reconstruction privacy and reconstruct
// statistics from the publication.
//
// The flow is the paper's end-to-end story: a hospital holds D(Gender, Job,
// Disease) with Disease sensitive; it publishes a perturbed version that (a)
// still supports learning statistical relationships from large aggregates,
// while (b) making frequency estimates aimed at one individual's personal
// group provably inaccurate.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/reconpriv/reconpriv"
)

func main() {
	// A 20,000-record medical table: Gender and Job are public, Disease
	// (10 values) is sensitive.
	raw, err := reconpriv.SampleMedical(20000, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raw table: %d records, attributes %v, sensitive=%s\n",
		raw.NumRows(), raw.Attributes(), raw.SensitiveAttribute())

	// How much of the raw table violates (0.3, 0.3)-reconstruction privacy
	// under uniform perturbation with p = 0.5?
	opt := reconpriv.DefaultOptions
	viol, err := reconpriv.CheckViolations(raw, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before publishing: %d/%d personal groups violate, covering %.1f%% of records\n",
		viol.ViolatingGroups, viol.Groups, 100*viol.VR())

	// Publish with the full pipeline: chi-square generalization, Corollary-4
	// testing, and SPS enforcement.
	pub, rep, err := reconpriv.Publish(raw, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published: %d records, %d groups sampled by SPS\n", pub.NumRows(), rep.SampledGroups)
	for _, m := range rep.Merges {
		fmt.Printf("  %s: domain %d -> %d\n", m.Attribute, m.DomainBefore, m.DomainAfter)
	}

	// Aggregate reconstruction (the utility): the disease distribution over
	// the whole publication, inverted with the Lemma-2 MLE, tracks the raw
	// distribution closely.
	dist, err := reconpriv.Reconstruct(pub, nil, opt.RetentionProbability)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nreconstructed global disease distribution vs raw:")
	for _, d := range []string{"Flu", "CervicalSpondylosis", "BreastCancer", "HIV"} {
		exact, err := reconpriv.Count(raw, nil, d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-20s est %.4f   raw %.4f\n", d, dist[d], float64(exact)/float64(raw.NumRows()))
	}

	// Count-query estimation (Section 6.1's est = |S*|·F').
	jobs, err := pub.Domain("Job")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncount estimates on the publication (generalized Job values):")
	for _, job := range jobs {
		est, err := reconpriv.EstimateCount(pub, map[string]string{"Job": job}, "CervicalSpondylosis", opt.RetentionProbability)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  Job=%-18s ∧ CervicalSpondylosis: est %.0f\n", job, est)
	}
}
