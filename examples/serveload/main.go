// Command serveload drives load against a running rpserve instance: it
// publishes a dataset (deduplicated server-side if it already exists),
// fetches the publication's attribute domains, generates a random
// conjunctive count-query workload in the shape of the paper's Section 6.1
// (dimensionality d ∈ {1..3}, uniform values), and fires it as concurrent
// batches, reporting client-side throughput next to the server's /statsz
// view.
//
// The -encoding flag selects the protocol encoding: "json" (the default),
// "binary" (application/x-rp-binary wire frames), or "both" (each client
// alternates per round, reporting per-encoding throughput side by side).
// The binary codec below is hand-rolled on purpose — this example imports
// nothing from the repository, so it documents exactly what an external
// client must emit and parse.
//
// With -insert N the dataset is published incrementally and each client
// round streams N random records into the publication through the /insert
// firehose before querying it — in the selected encoding, so
// -encoding binary exercises the fixed-width insert frames (kind 5/6)
// whose layout the codec below documents.
//
// Usage:
//
//	rpserve -preload census:300000 &
//	go run ./examples/serveload -addr http://localhost:8080 \
//	    -dataset census -size 300000 -batch 5000 -clients 4 -rounds 10 \
//	    -encoding both
//	go run ./examples/serveload -addr http://localhost:8080 \
//	    -dataset medical -size 20000 -insert 500 -encoding binary
package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

type cond struct {
	Attr  string `json:"attr"`
	Value string `json:"value"`
}

type wireQuery struct {
	Conds []cond `json:"conds"`
	SA    string `json:"sa"`
}

type attrInfo struct {
	Name   string   `json:"name"`
	Index  int      `json:"index"`
	Values []string `json:"values"`
}

type pubInfo struct {
	ID        string     `json:"id"`
	Status    string     `json:"status"`
	Error     string     `json:"error"`
	Attrs     []attrInfo `json:"attrs"`
	Sensitive *attrInfo  `json:"sensitive"`
	Meta      *struct {
		Records int `json:"records"`
		Groups  int `json:"groups"`
	} `json:"meta"`
}

// binaryContentType negotiates the wire encoding per request.
const binaryContentType = "application/x-rp-binary"

// codebook maps the label vocabulary back to the original codes a binary
// condition carries: attr is the attribute's full-schema index (from the
// /publications "index" field), value is the position of the label in the
// attribute's original Values list.
type codebook struct {
	attrIdx map[string]uint16
	valCode map[string]map[string]uint16
	saCode  map[string]uint16
}

func makeCodebook(info *pubInfo) *codebook {
	cb := &codebook{
		attrIdx: make(map[string]uint16, len(info.Attrs)),
		valCode: make(map[string]map[string]uint16, len(info.Attrs)),
		saCode:  make(map[string]uint16, len(info.Sensitive.Values)),
	}
	for _, a := range info.Attrs {
		cb.attrIdx[a.Name] = uint16(a.Index)
		vm := make(map[string]uint16, len(a.Values))
		for code, v := range a.Values {
			vm[v] = uint16(code)
		}
		cb.valCode[a.Name] = vm
	}
	for code, v := range info.Sensitive.Values {
		cb.saCode[v] = uint16(code)
	}
	return cb
}

// encodeQueryFrame builds one POST /query wire frame:
//
//	'R' 'P' version(2) kind(1=queryReq) payloadLen(u32 LE)
//	str8(id) str8(client) flags(u8, bit0=wait) n(u32)
//	then per query: sa(u16) nConds(u8) then per cond: attr(u16) value(u16)
func (cb *codebook) encodeQueryFrame(id, client string, qs []wireQuery) []byte {
	buf := []byte{'R', 'P', 2, 1, 0, 0, 0, 0}
	buf = append(buf, byte(len(id)))
	buf = append(buf, id...)
	buf = append(buf, byte(len(client)))
	buf = append(buf, client...)
	buf = append(buf, 0) // flags: wait not needed, publication is ready
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(qs)))
	for _, q := range qs {
		buf = binary.LittleEndian.AppendUint16(buf, cb.saCode[q.SA])
		buf = append(buf, byte(len(q.Conds)))
		for _, c := range q.Conds {
			buf = binary.LittleEndian.AppendUint16(buf, cb.attrIdx[c.Attr])
			buf = binary.LittleEndian.AppendUint16(buf, cb.valCode[c.Attr][c.Value])
		}
	}
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(buf)-8))
	return buf
}

// encodeInsertFrame builds one POST /insert wire frame (the firehose path):
//
//	'R' 'P' version(2) kind(5=insertReq) payloadLen(u32 LE)
//	str8(id) str8(client) flags(u8, bit0=wait) nAttrs(u8) n(u32)
//	then per record: code(u16)×nAttrs — full schema order, sensitive
//	attribute included at its schema position
func encodeInsertFrame(id, client string, nAttrs int, recs [][]uint16) []byte {
	buf := []byte{'R', 'P', 2, 5, 0, 0, 0, 0}
	buf = append(buf, byte(len(id)))
	buf = append(buf, id...)
	buf = append(buf, byte(len(client)))
	buf = append(buf, client...)
	buf = append(buf, 1) // flags: wait — block until the publication is ready
	buf = append(buf, byte(nAttrs))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(recs)))
	for _, rec := range recs {
		for _, c := range rec {
			buf = binary.LittleEndian.AppendUint16(buf, c)
		}
	}
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(buf)-8))
	return buf
}

// decodeInsertResp parses a binary insertResp frame (no ledger block —
// inserts charge no exposure):
//
//	header(kind 6), str8(id) str8(client) inserted(u32) trials(u32)
//	absorbed(u32) totalRecords(u64)
func decodeInsertResp(b []byte) (inserted int, total uint64, err error) {
	if len(b) < 8 || b[0] != 'R' || b[1] != 'P' || b[2] != 2 || b[3] != 6 {
		return 0, 0, fmt.Errorf("not a v2 insertResp frame")
	}
	r := byteReader{b: b, off: 8}
	r.skip(int(r.u8())) // id
	r.skip(int(r.u8())) // client
	inserted = int(r.u32())
	r.u32() // trials
	r.u32() // absorbed
	total = r.u64()
	return inserted, total, r.err
}

// queryResult is the encoding-blind slice of a query response the load
// report consumes.
type queryResult struct {
	Answered, Errored int
	ClientQueries     int64
	ExposureWarning   bool
}

// decodeQueryResp parses a binary queryResp frame:
//
//	header, then ledger := str8(id) str8(client) charged(u64)
//	clientQueries(u64) budgetRemaining(u64)
//	flags(u8, bit0=warning bit1=budgetExact) serveMicros(u64),
//	then n(u32) answers: 0x00 count(u64) estimate(f64) | 0x01 str16(error)
func decodeQueryResp(b []byte) (queryResult, error) {
	var out queryResult
	r := byteReader{b: b}
	if len(b) < 8 || b[0] != 'R' || b[1] != 'P' || b[2] != 2 || b[3] != 2 {
		return out, fmt.Errorf("not a v2 queryResp frame")
	}
	r.off = 8
	r.skip(int(r.u8())) // id
	r.skip(int(r.u8())) // client
	r.u64()             // charged
	out.ClientQueries = int64(r.u64())
	r.u64() // budget remaining
	out.ExposureWarning = r.u8()&1 != 0
	r.u64() // serve micros
	n := int(r.u32())
	for i := 0; i < n && r.err == nil; i++ {
		switch r.u8() {
		case 0:
			r.u64()
			r.u64() // estimate bits
			out.Answered++
		case 1:
			r.skip(int(r.u16()))
			out.Errored++
		default:
			return out, fmt.Errorf("unknown answer tag")
		}
	}
	return out, r.err
}

type byteReader struct {
	b   []byte
	off int
	err error
}

func (r *byteReader) need(n int) bool {
	if r.err == nil && r.off+n > len(r.b) {
		r.err = fmt.Errorf("truncated frame at byte %d", r.off)
	}
	return r.err == nil
}

func (r *byteReader) skip(n int) {
	if r.need(n) {
		r.off += n
	}
}

func (r *byteReader) u8() byte {
	if !r.need(1) {
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *byteReader) u16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *byteReader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *byteReader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "rpserve base URL")
		dataset  = flag.String("dataset", "census", "dataset to publish and query")
		size     = flag.Int("size", 300000, "dataset size (census/medical)")
		maxDim   = flag.Int("maxdim", 3, "maximum query dimensionality")
		batch    = flag.Int("batch", 5000, "queries per /query request (the paper's workload size)")
		clients  = flag.Int("clients", 4, "concurrent client goroutines")
		rounds   = flag.Int("rounds", 10, "batches per client")
		seed     = flag.Int64("seed", 7, "workload generator seed")
		encoding = flag.String("encoding", "json", "query encoding: json, binary, or both (alternate per round)")
		insertN  = flag.Int("insert", 0, "records streamed into the publication per client round via /insert (publishes incrementally)")
		timeout  = flag.Duration("timeout", 2*time.Minute, "HTTP request deadline, including the initial blocking publish (0 disables)")
	)
	flag.Parse()
	if *encoding != "json" && *encoding != "binary" && *encoding != "both" {
		log.Fatalf("serveload: -encoding must be json, binary, or both (got %q)", *encoding)
	}
	httpClient = &http.Client{
		Timeout:   *timeout,
		Transport: &http.Transport{MaxIdleConnsPerHost: *clients + 2},
	}

	// Publish (or hit the cache) and wait for readiness. Inserts need the
	// streaming publisher, so -insert switches the method to incremental.
	publishBody := map[string]any{"dataset": *dataset, "size": *size, "wait": true}
	if *insertN > 0 {
		publishBody["method"] = "incremental"
	}
	pub := postJSON[pubInfo](*addr+"/publish", publishBody)
	if pub.Status != "ready" {
		log.Fatalf("serveload: publication %s is %s: %s", pub.ID, pub.Status, pub.Error)
	}

	// Fetch the queryable vocabulary.
	info := getJSON[pubInfo](fmt.Sprintf("%s/publications?id=%s&domains=1", *addr, pub.ID))
	if info.Sensitive == nil || len(info.Attrs) == 0 {
		log.Fatalf("serveload: publication %s has no domain info", pub.ID)
	}
	fmt.Printf("publication %s: %d records, %d personal groups\n",
		info.ID, info.Meta.Records, info.Meta.Groups)
	cb := makeCodebook(&info)

	// The insert workload needs the full schema in original order: public
	// attributes at their advertised indices, the sensitive attribute at its
	// own schema position.
	width := len(info.Attrs) + 1
	type slot struct {
		name   string
		values []string
	}
	slots := make([]slot, width)
	for _, a := range info.Attrs {
		slots[a.Index] = slot{a.Name, a.Values}
	}
	slots[info.Sensitive.Index] = slot{info.Sensitive.Name, info.Sensitive.Values}
	makeRecords := func(rng *rand.Rand, n int) (labels []map[string]string, codes [][]uint16) {
		for i := 0; i < n; i++ {
			rec := make([]uint16, width)
			lab := make(map[string]string, width)
			for s, sl := range slots {
				c := uint16(rng.Intn(len(sl.values)))
				rec[s] = c
				lab[sl.name] = sl.values[c]
			}
			labels = append(labels, lab)
			codes = append(codes, rec)
		}
		return labels, codes
	}

	// Generate the workload: random conjunctions over original labels.
	dmax := *maxDim
	if dmax > len(info.Attrs) {
		dmax = len(info.Attrs)
	}
	makeBatch := func(rng *rand.Rand) []wireQuery {
		qs := make([]wireQuery, *batch)
		for i := range qs {
			d := 1 + rng.Intn(dmax)
			perm := rng.Perm(len(info.Attrs))[:d]
			q := wireQuery{SA: info.Sensitive.Values[rng.Intn(len(info.Sensitive.Values))]}
			for _, ai := range perm {
				a := info.Attrs[ai]
				q.Conds = append(q.Conds, cond{Attr: a.Name, Value: a.Values[rng.Intn(len(a.Values))]})
			}
			qs[i] = q
		}
		return qs
	}

	// sent/answered/errored/elapsedNS per encoding: [0]=json, [1]=binary.
	var sent, answered, errored, elapsedNS [2]atomic.Int64
	var inserted, insertNS [2]atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			crng := rand.New(rand.NewSource(*seed + int64(c)*1000))
			client := fmt.Sprintf("serveload-%d", c)
			for r := 0; r < *rounds; r++ {
				qs := makeBatch(crng)
				useBinary := *encoding == "binary" || (*encoding == "both" && r%2 == 1)
				if *insertN > 0 {
					labels, codes := makeRecords(crng, *insertN)
					enc := 0
					ti := time.Now()
					var n int
					if useBinary {
						enc = 1
						raw := postRaw(*addr+"/insert", binaryContentType,
							encodeInsertFrame(pub.ID, client, width, codes))
						var err error
						if n, _, err = decodeInsertResp(raw); err != nil {
							log.Fatalf("serveload: decoding binary insert response: %v", err)
						}
					} else {
						resp := postJSON[struct {
							Inserted int `json:"inserted"`
						}](*addr+"/insert", map[string]any{
							"id": pub.ID, "records": labels, "wait": true,
						})
						n = resp.Inserted
					}
					insertNS[enc].Add(time.Since(ti).Nanoseconds())
					inserted[enc].Add(int64(n))
				}
				var res queryResult
				t0 := time.Now()
				if useBinary {
					frame := cb.encodeQueryFrame(pub.ID, client, qs)
					raw := postRaw(*addr+"/query", binaryContentType, frame)
					var err error
					if res, err = decodeQueryResp(raw); err != nil {
						log.Fatalf("serveload: decoding binary response: %v", err)
					}
				} else {
					body := map[string]any{"id": pub.ID, "client": client, "queries": qs}
					resp := postJSON[struct {
						Answers []struct {
							Error string `json:"error"`
						} `json:"answers"`
						ClientQueries   int64 `json:"client_queries"`
						ExposureWarning bool  `json:"exposure_warning"`
					}](*addr+"/query", body)
					for _, a := range resp.Answers {
						if a.Error == "" {
							res.Answered++
						} else {
							res.Errored++
						}
					}
					res.ClientQueries = resp.ClientQueries
					res.ExposureWarning = resp.ExposureWarning
				}
				enc := 0
				if useBinary {
					enc = 1
				}
				elapsedNS[enc].Add(time.Since(t0).Nanoseconds())
				sent[enc].Add(int64(*batch))
				answered[enc].Add(int64(res.Answered))
				errored[enc].Add(int64(res.Errored))
				if res.ExposureWarning {
					fmt.Printf("client %s crossed the exposure threshold at %d cumulative queries\n",
						client, res.ClientQueries)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var totalSent, totalAnswered, totalErrored int64
	for enc, name := range []string{"json", "binary"} {
		s := sent[enc].Load()
		if s == 0 {
			continue
		}
		totalSent += s
		totalAnswered += answered[enc].Load()
		totalErrored += errored[enc].Load()
		secs := float64(elapsedNS[enc].Load()) / 1e9 / float64(*clients)
		fmt.Printf("%-6s %d queries, %.0f queries/s client-side (%d answered, %d per-query errors)\n",
			name, s, float64(s)/math.Max(secs, 1e-9), answered[enc].Load(), errored[enc].Load())
	}
	for enc, name := range []string{"json", "binary"} {
		ins := inserted[enc].Load()
		if ins == 0 {
			continue
		}
		isecs := float64(insertNS[enc].Load()) / 1e9 / float64(*clients)
		fmt.Printf("%-6s %d records via /insert, %.0f records/s client-side\n",
			name, ins, float64(ins)/math.Max(isecs, 1e-9))
	}
	fmt.Printf("total: %d queries in %v (%.0f queries/s; %d answered, %d per-query errors)\n",
		totalSent, elapsed.Round(time.Millisecond),
		float64(totalSent)/elapsed.Seconds(), totalAnswered, totalErrored)

	var stats map[string]any
	statsRaw := getJSON[json.RawMessage](*addr + "/statsz")
	if err := json.Unmarshal(statsRaw, &stats); err == nil {
		out, _ := json.MarshalIndent(stats, "", "  ")
		fmt.Printf("server /statsz:\n%s\n", out)
	}
}

// httpClient is the shared client for every request the tool sends. The
// default http.Client has no deadline, so one wedged request would hang a
// client goroutine (and the whole run) forever; -timeout bounds each request
// end to end, sized so the initial wait=true publish still fits.
var httpClient = &http.Client{Timeout: 2 * time.Minute}

func postJSON[T any](url string, body any) T {
	buf, err := json.Marshal(body)
	if err != nil {
		log.Fatalf("serveload: %v", err)
	}
	resp, err := httpClient.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatalf("serveload: POST %s: %v", url, err)
	}
	return decodeBody[T](url, resp)
}

// postRaw posts a pre-encoded body and returns the raw response bytes;
// error statuses arrive as JSON ErrorBody envelopes regardless of the
// request encoding, so failures are printable as-is.
func postRaw(url, contentType string, body []byte) []byte {
	resp, err := httpClient.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		log.Fatalf("serveload: POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("serveload: reading %s: %v", url, err)
	}
	if resp.StatusCode >= 400 {
		log.Fatalf("serveload: %s returned %d: %s", url, resp.StatusCode, data)
	}
	return data
}

func getJSON[T any](url string) T {
	resp, err := httpClient.Get(url)
	if err != nil {
		log.Fatalf("serveload: GET %s: %v", url, err)
	}
	return decodeBody[T](url, resp)
}

func decodeBody[T any](url string, resp *http.Response) T {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("serveload: reading %s: %v", url, err)
	}
	if resp.StatusCode >= 400 {
		log.Fatalf("serveload: %s returned %d: %s", url, resp.StatusCode, data)
	}
	var out T
	if err := json.Unmarshal(data, &out); err != nil {
		log.Fatalf("serveload: decoding %s: %v (%s)", url, err, data)
	}
	return out
}
