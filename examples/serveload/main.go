// Command serveload drives load against a running rpserve instance: it
// publishes a dataset (deduplicated server-side if it already exists),
// fetches the publication's attribute domains, generates a random
// conjunctive count-query workload in the shape of the paper's Section 6.1
// (dimensionality d ∈ {1..3}, uniform values), and fires it as concurrent
// batches, reporting client-side throughput next to the server's /statsz
// view.
//
// Usage:
//
//	rpserve -preload census:300000 &
//	go run ./examples/serveload -addr http://localhost:8080 \
//	    -dataset census -size 300000 -batch 5000 -clients 4 -rounds 10
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

type cond struct {
	Attr  string `json:"attr"`
	Value string `json:"value"`
}

type wireQuery struct {
	Conds []cond `json:"conds"`
	SA    string `json:"sa"`
}

type attrInfo struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
}

type pubInfo struct {
	ID        string     `json:"id"`
	Status    string     `json:"status"`
	Error     string     `json:"error"`
	Attrs     []attrInfo `json:"attrs"`
	Sensitive *attrInfo  `json:"sensitive"`
	Meta      *struct {
		Records int `json:"records"`
		Groups  int `json:"groups"`
	} `json:"meta"`
}

func main() {
	var (
		addr    = flag.String("addr", "http://localhost:8080", "rpserve base URL")
		dataset = flag.String("dataset", "census", "dataset to publish and query")
		size    = flag.Int("size", 300000, "dataset size (census/medical)")
		maxDim  = flag.Int("maxdim", 3, "maximum query dimensionality")
		batch   = flag.Int("batch", 5000, "queries per /query request (the paper's workload size)")
		clients = flag.Int("clients", 4, "concurrent client goroutines")
		rounds  = flag.Int("rounds", 10, "batches per client")
		seed    = flag.Int64("seed", 7, "workload generator seed")
	)
	flag.Parse()

	// Publish (or hit the cache) and wait for readiness.
	pub := postJSON[pubInfo](*addr+"/publish", map[string]any{
		"dataset": *dataset, "size": *size, "wait": true,
	})
	if pub.Status != "ready" {
		log.Fatalf("serveload: publication %s is %s: %s", pub.ID, pub.Status, pub.Error)
	}

	// Fetch the queryable vocabulary.
	info := getJSON[pubInfo](fmt.Sprintf("%s/publications?id=%s&domains=1", *addr, pub.ID))
	if info.Sensitive == nil || len(info.Attrs) == 0 {
		log.Fatalf("serveload: publication %s has no domain info", pub.ID)
	}
	fmt.Printf("publication %s: %d records, %d personal groups\n",
		info.ID, info.Meta.Records, info.Meta.Groups)

	// Generate the workload: random conjunctions over original labels.
	dmax := *maxDim
	if dmax > len(info.Attrs) {
		dmax = len(info.Attrs)
	}
	makeBatch := func(rng *rand.Rand) []wireQuery {
		qs := make([]wireQuery, *batch)
		for i := range qs {
			d := 1 + rng.Intn(dmax)
			perm := rng.Perm(len(info.Attrs))[:d]
			q := wireQuery{SA: info.Sensitive.Values[rng.Intn(len(info.Sensitive.Values))]}
			for _, ai := range perm {
				a := info.Attrs[ai]
				q.Conds = append(q.Conds, cond{Attr: a.Name, Value: a.Values[rng.Intn(len(a.Values))]})
			}
			qs[i] = q
		}
		return qs
	}

	var sent, answered, errored atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			crng := rand.New(rand.NewSource(*seed + int64(c)*1000))
			client := fmt.Sprintf("serveload-%d", c)
			for r := 0; r < *rounds; r++ {
				body := map[string]any{"id": pub.ID, "client": client, "queries": makeBatch(crng)}
				resp := postJSON[struct {
					Answers []struct {
						Error string `json:"error"`
					} `json:"answers"`
					ClientQueries   int64 `json:"client_queries"`
					ExposureWarning bool  `json:"exposure_warning"`
					ServeMicros     int64 `json:"serve_us"`
				}](*addr+"/query", body)
				sent.Add(int64(*batch))
				for _, a := range resp.Answers {
					if a.Error == "" {
						answered.Add(1)
					} else {
						errored.Add(1)
					}
				}
				if resp.ExposureWarning {
					fmt.Printf("client %s crossed the exposure threshold at %d cumulative queries\n",
						client, resp.ClientQueries)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("sent %d queries in %v (%.0f queries/s client-side; %d answered, %d per-query errors)\n",
		sent.Load(), elapsed.Round(time.Millisecond),
		float64(sent.Load())/elapsed.Seconds(), answered.Load(), errored.Load())

	var stats map[string]any
	statsRaw := getJSON[json.RawMessage](*addr + "/statsz")
	if err := json.Unmarshal(statsRaw, &stats); err == nil {
		out, _ := json.MarshalIndent(stats, "", "  ")
		fmt.Printf("server /statsz:\n%s\n", out)
	}
}

func postJSON[T any](url string, body any) T {
	buf, err := json.Marshal(body)
	if err != nil {
		log.Fatalf("serveload: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatalf("serveload: POST %s: %v", url, err)
	}
	return decodeBody[T](url, resp)
}

func getJSON[T any](url string) T {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("serveload: GET %s: %v", url, err)
	}
	return decodeBody[T](url, resp)
}

func decodeBody[T any](url string, resp *http.Response) T {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("serveload: reading %s: %v", url, err)
	}
	if resp.StatusCode >= 400 {
		log.Fatalf("serveload: %s returned %d: %s", url, resp.StatusCode, data)
	}
	var out T
	if err := json.Unmarshal(data, &out); err != nil {
		log.Fatalf("serveload: decoding %s: %v (%s)", url, err, data)
	}
	return out
}
