// Census sweep: run the publishing pipeline on a large, many-valued data set
// (a 100K sample of the CENSUS stand-in with a 50-value sensitive
// Occupation) and compare count-query utility between plain uniform
// perturbation and the reconstruction-private SPS publication.
//
// Run with: go run ./examples/censussweep
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/reconpriv/reconpriv"
)

func main() {
	raw, err := reconpriv.SampleCensus(100000, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raw: %d records, %v\n", raw.NumRows(), raw.Attributes())

	opt := reconpriv.DefaultOptions
	viol, err := reconpriv.CheckViolations(raw, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("violations at defaults: %d/%d groups (%.1f%%), covering %.1f%% of records\n\n",
		viol.ViolatingGroups, viol.Groups, 100*viol.VG(), 100*viol.VR())

	up, _, err := reconpriv.PublishUniform(raw, opt)
	if err != nil {
		log.Fatal(err)
	}
	sps, rep, err := reconpriv.Publish(raw, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SPS sampled %d of %d personal groups\n\n", rep.SampledGroups, rep.PersonalGroups)

	// The publication keeps generalized values; query a few large slices.
	gen, _, err := reconpriv.Generalize(raw, opt.Significance)
	if err != nil {
		log.Fatal(err)
	}
	eduVals, err := gen.Domain("Education")
	if err != nil {
		log.Fatal(err)
	}
	occVals, err := gen.Domain("Occupation")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-34s %8s %10s %10s\n", "query", "true", "UP est", "SPS est")
	var upErr, spsErr float64
	queries := 0
	for e := 0; e < 3; e++ {
		for o := 0; o < 3; o++ {
			conds := map[string]string{"Education": eduVals[e]}
			occ := occVals[o*7]
			ans, err := reconpriv.Count(gen, conds, occ)
			if err != nil {
				log.Fatal(err)
			}
			ue, err := reconpriv.EstimateCount(up, conds, occ, opt.RetentionProbability)
			if err != nil {
				log.Fatal(err)
			}
			se, err := reconpriv.EstimateCount(sps, conds, occ, opt.RetentionProbability)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-34s %8d %10.0f %10.0f\n",
				fmt.Sprintf("Edu=%s ∧ Occ=%s", eduVals[e], occ), ans, ue, se)
			upErr += math.Abs(ue-float64(ans)) / float64(ans)
			spsErr += math.Abs(se-float64(ans)) / float64(ans)
			queries++
		}
	}
	fmt.Printf("\navg relative error over %d queries: UP %.3f, SPS %.3f\n", queries, upErr/float64(queries), spsErr/float64(queries))
	fmt.Println("on this near-balanced 50-value data set, reconstruction privacy costs little utility")
}
