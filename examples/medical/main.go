// Split Role Principle: reproduce the paper's Example 2 — personal
// reconstruction (aimed at Bob, a male engineer) must be inaccurate, while
// aggregate reconstruction (career engineers vs cervical spondylosis) stays
// accurate.
//
// The example publishes the medical table many times with UP and with SPS
// and measures, across publications, the relative error of
//
//   - the personal estimate: P(CervicalSpondylosis | Gender=Male ∧ Job=Engineer)
//     reconstructed from Bob's personal group, and
//   - the aggregate estimate: P(CervicalSpondylosis | Job=Engineer)
//     reconstructed from the whole engineer population.
//
// Under SPS the personal estimate degrades markedly while the aggregate
// barely moves — the law-of-large-numbers gap the paper exploits.
//
// Run with: go run ./examples/medical
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/reconpriv/reconpriv"
)

const disease = "CervicalSpondylosis"

func main() {
	raw, err := reconpriv.SampleMedical(20000, 7)
	if err != nil {
		log.Fatal(err)
	}
	// Skip generalization so the original Gender/Job values survive and the
	// personal group is exactly {Male, Engineer}, as in the paper's example.
	opt := reconpriv.DefaultOptions
	opt.Significance = 0

	personal := map[string]string{"Gender": "Male", "Job": "Engineer"}
	aggregate := map[string]string{"Job": "Engineer"}

	truePersonal := trueFreq(raw, personal)
	trueAggregate := trueFreq(raw, aggregate)
	fmt.Printf("true frequencies of %s: personal group %.4f, aggregate group %.4f\n\n",
		disease, truePersonal, trueAggregate)

	const runs = 30
	fmt.Printf("%-6s %-28s %-28s\n", "", "personal (male engineers)", "aggregate (all engineers)")
	fmt.Printf("%-6s %-13s %-14s %-13s %-14s\n", "method", "mean abs err", "worst abs err", "mean abs err", "worst abs err")
	for _, method := range []string{"UP", "SPS"} {
		var sumP, maxP, sumA, maxA float64
		for run := 0; run < runs; run++ {
			o := opt
			o.Seed = int64(run + 1)
			var pub *reconpriv.Table
			var err error
			if method == "UP" {
				pub, _, err = reconpriv.PublishUniform(raw, o)
			} else {
				pub, _, err = reconpriv.Publish(raw, o)
			}
			if err != nil {
				log.Fatal(err)
			}
			ep := math.Abs(estFreq(pub, personal, o) - truePersonal)
			ea := math.Abs(estFreq(pub, aggregate, o) - trueAggregate)
			sumP += ep
			sumA += ea
			maxP = math.Max(maxP, ep)
			maxA = math.Max(maxA, ea)
		}
		fmt.Printf("%-6s %-13.4f %-14.4f %-13.4f %-14.4f\n",
			method, sumP/runs, maxP, sumA/runs, maxA)
	}
	fmt.Println("\nSPS degrades the personal estimate (privacy) while the aggregate estimate")
	fmt.Println("stays close to the truth (utility): the Split Role Principle in action.")
}

func trueFreq(t *reconpriv.Table, conds map[string]string) float64 {
	match, err := reconpriv.Count(t, conds, "")
	if err != nil {
		log.Fatal(err)
	}
	with, err := reconpriv.Count(t, conds, disease)
	if err != nil {
		log.Fatal(err)
	}
	return float64(with) / float64(match)
}

func estFreq(pub *reconpriv.Table, conds map[string]string, opt reconpriv.Options) float64 {
	dist, err := reconpriv.Reconstruct(pub, conds, opt.RetentionProbability)
	if err != nil {
		log.Fatal(err)
	}
	return dist[disease]
}
