package reconpriv

import (
	"bytes"
	"math"
	"testing"

	"github.com/reconpriv/reconpriv/internal/chimerge"
	"github.com/reconpriv/reconpriv/internal/core"
	"github.com/reconpriv/reconpriv/internal/datagen"
	"github.com/reconpriv/reconpriv/internal/dataset"
	"github.com/reconpriv/reconpriv/internal/query"
	"github.com/reconpriv/reconpriv/internal/stats"
)

// These integration tests exercise the full pipeline across module
// boundaries — generate → generalize → test → publish → query — asserting
// the paper's two experimental claims end to end:
//
//  1. reconstruction privacy is violated by realistic data under plain
//     uniform perturbation, and
//  2. SPS removes every violation while the aggregate query error stays
//     close to the UP baseline.

func TestEndToEndAdultPipeline(t *testing.T) {
	raw := datagen.Adult(1)
	res, err := chimerge.Generalize(raw, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	groups := dataset.GroupsOf(res.Table)
	pm := core.DefaultParams

	// Claim 1: violations on the raw personal groups.
	before := core.Violations(groups, pm)
	if before.ViolatingGroups == 0 {
		t.Fatal("ADULT should violate reconstruction privacy at the defaults")
	}

	// Publish with SPS.
	published, st, err := core.PublishSPS(stats.NewRand(1), groups, pm)
	if err != nil {
		t.Fatal(err)
	}
	if st.SampledGroups != before.ViolatingGroups {
		t.Errorf("sampled %d groups, violations were %d", st.SampledGroups, before.ViolatingGroups)
	}

	// Every published group's effective trial count is its sample size,
	// which SPS capped at s_g — verify via the published sizes: scaling
	// restored them, so check the sample arithmetic instead.
	m := groups.Schema.SADomain()
	for i := range groups.Groups {
		g := &groups.Groups[i]
		sg := core.MaxGroupSize(g.MaxFreq(), m, pm)
		if float64(g.Size) <= sg {
			continue
		}
		// The published group must still exist with roughly the same size.
		pg := &published.Groups[i]
		if pg.Size == 0 {
			t.Errorf("group %d vanished", i)
		}
	}

	// Utility: query error of SPS vs UP on the 5,000-query pool.
	origMarg, err := query.BuildMarginals(raw, 3)
	if err != nil {
		t.Fatal(err)
	}
	genMarg, err := query.BuildMarginals(res.Table, 3)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := query.GeneratePool(stats.NewRand(42), origMarg, genMarg, res.Mappings, query.DefaultPoolOptions)
	if err != nil {
		t.Fatal(err)
	}
	up, err := core.PublishUP(stats.NewRand(2), groups, pm.P)
	if err != nil {
		t.Fatal(err)
	}
	upMarg, err := query.BuildMarginalsFromGroups(up, 3)
	if err != nil {
		t.Fatal(err)
	}
	upRep, err := pool.Evaluate(upMarg, pm.P)
	if err != nil {
		t.Fatal(err)
	}
	spsMarg, err := query.BuildMarginalsFromGroups(published, 3)
	if err != nil {
		t.Fatal(err)
	}
	spsRep, err := pool.Evaluate(spsMarg, pm.P)
	if err != nil {
		t.Fatal(err)
	}
	if upRep.AvgError > 0.10 {
		t.Errorf("UP error %v unexpectedly large", upRep.AvgError)
	}
	if spsRep.AvgError > 4*upRep.AvgError {
		t.Errorf("SPS error %v too far above UP %v", spsRep.AvgError, upRep.AvgError)
	}
}

func TestEndToEndSPSRestoresPrivacyProcessLevel(t *testing.T) {
	// Reconstruction privacy is a property of the perturbation process:
	// after SPS, each previously-violating group was rebuilt from a sample
	// of at most s_g independent trials. Verify empirically on one large
	// group: across many publications, the personal reconstruction error
	// exceeds λ with frequency ≥ δ-ish, while without sampling (UP) the
	// error stays small much more often.
	raw, err := datagen.Medical(30000, 3)
	if err != nil {
		t.Fatal(err)
	}
	groups := dataset.GroupsOf(raw)
	pm := core.DefaultParams
	m := raw.Schema.SADomain()

	// Pick the biggest violating group and its top sensitive value.
	var target *dataset.Group
	for i := range groups.Groups {
		g := &groups.Groups[i]
		if !core.GroupPrivate(g, m, pm) && (target == nil || g.Size > target.Size) {
			target = g
		}
	}
	if target == nil {
		t.Fatal("no violating group in fixture")
	}
	topSA := 0
	for sa, c := range target.SACounts {
		if c > target.SACounts[topSA] {
			topSA = sa
		}
	}
	f := target.Freq(uint16(topSA))

	reconstructFreq := func(published *dataset.GroupSet) float64 {
		pg := published.Find(target.Key)
		if pg == nil || pg.Size == 0 {
			return math.NaN()
		}
		return (float64(pg.SACounts[topSA])/float64(pg.Size) - (1-pm.P)/float64(m)) / pm.P
	}

	const runs = 300
	upBig, spsBig := 0, 0 // publications with |F'-f|/f > λ
	for run := 0; run < runs; run++ {
		rng := stats.NewRand(int64(run))
		up, err := core.PublishUP(rng, groups, pm.P)
		if err != nil {
			t.Fatal(err)
		}
		sps, _, err := core.PublishSPS(rng, groups, pm)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(reconstructFreq(up)-f)/f > pm.Lambda {
			upBig++
		}
		if math.Abs(reconstructFreq(sps)-f)/f > pm.Lambda {
			spsBig++
		}
	}
	upRate := float64(upBig) / runs
	spsRate := float64(spsBig) / runs
	if spsRate < 2*upRate {
		t.Errorf("SPS personal-reconstruction failure rate %v should far exceed UP's %v", spsRate, upRate)
	}
}

func TestEndToEndAggregateUnbiasedness(t *testing.T) {
	// Theorem 5 across the full pipeline: the reconstructed count of an
	// aggregate subset, averaged over publications, approaches the truth.
	raw, err := datagen.Medical(20000, 5)
	if err != nil {
		t.Fatal(err)
	}
	groups := dataset.GroupsOf(raw)
	pm := core.DefaultParams
	m := raw.Schema.SADomain()

	// Aggregate subset: all records with Job=0 (both genders → two groups).
	trueCount := 0
	for i := range groups.Groups {
		g := &groups.Groups[i]
		if g.Key[1] == 0 {
			trueCount += g.SACounts[5]
		}
	}
	const runs = 400
	var sum float64
	for run := 0; run < runs; run++ {
		sps, _, err := core.PublishSPS(stats.NewRand(int64(run)), groups, pm)
		if err != nil {
			t.Fatal(err)
		}
		size, obs := 0, 0
		for i := range sps.Groups {
			g := &sps.Groups[i]
			if g.Key[1] == 0 {
				size += g.Size
				obs += g.SACounts[5]
			}
		}
		fPrime := (float64(obs)/float64(size) - (1-pm.P)/float64(m)) / pm.P
		sum += fPrime * float64(size)
	}
	mean := sum / runs
	if math.Abs(mean-float64(trueCount))/float64(trueCount) > 0.05 {
		t.Errorf("mean reconstructed count %v, want ≈ %d (Theorem 5)", mean, trueCount)
	}
}

func TestEndToEndCSVPipelineThroughFacade(t *testing.T) {
	// The CLI path: table → CSV → read back → publish → CSV → read back →
	// reconstruct. Everything must survive serialization.
	tab, err := SampleMedical(5000, 11)
	if err != nil {
		t.Fatal(err)
	}
	pub, _, err := Publish(tab, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pub.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "Disease")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != pub.NumRows() {
		t.Fatal("row count changed through CSV")
	}
	dist, err := Reconstruct(back, nil, DefaultOptions.RetentionProbability)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range dist {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("reconstruction after round trip sums to %v", sum)
	}
}
