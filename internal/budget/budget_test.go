package budget

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/reconpriv/reconpriv/internal/stats"
)

// fakeClock is a manually advanced clock for window tests.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time       { return f.t }
func (f *fakeClock) step(d time.Duration) { f.t = f.t.Add(d) }

func newTestManager(cfg Config) (*Manager, *fakeClock) {
	fc := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	cfg.Clock = fc.now
	return New(cfg), fc
}

// TestQuotaBoundaryExactlyHit pins the boundary semantics: a charge that
// lands exactly on the quota is allowed with zero remaining, and the next
// unit is rejected without being charged.
func TestQuotaBoundaryExactlyHit(t *testing.T) {
	m, _ := newTestManager(Config{Quota: 10})
	if res := m.Charge("c", "p", 4, ClassQuery); !res.OK || res.Remaining != 6 {
		t.Fatalf("first charge: %+v", res)
	}
	res := m.Charge("c", "p", 6, ClassQuery)
	if !res.OK || res.Remaining != 0 || res.WindowUsed != 10 {
		t.Fatalf("boundary charge should succeed with 0 remaining: %+v", res)
	}
	rej := m.Charge("c", "p", 1, ClassQuery)
	if rej.OK || rej.Reason != ReasonClientQuota {
		t.Fatalf("charge past boundary: %+v", rej)
	}
	if rej.RetryAfter <= 0 {
		t.Fatalf("rejection must carry a positive RetryAfter, got %v", rej.RetryAfter)
	}
	// The rejection must not have charged: totals unchanged.
	if total, exact := m.Estimate("c"); total != 10 || !exact {
		t.Fatalf("after rejection: total=%d exact=%v, want 10 exact", total, exact)
	}
	if st := m.Snapshot(); st.RejectedClientQuota != 1 || st.TotalCharged != 10 {
		t.Fatalf("stats after rejection: %+v", st)
	}
}

// TestWindowRolloverMidBatch drives charges across slot boundaries and
// checks that budget frees exactly as old slots expire, including a
// rejection whose RetryAfter, once waited out, admits the same charge.
func TestWindowRolloverMidBatch(t *testing.T) {
	m, fc := newTestManager(Config{Quota: 100, Window: time.Hour, Slots: 4})
	if res := m.Charge("c", "p", 60, ClassQuery); !res.OK {
		t.Fatalf("first charge: %+v", res)
	}
	fc.step(15 * time.Minute) // one slot
	if res := m.Charge("c", "p", 60, ClassQuery); res.OK {
		t.Fatalf("60+60 in one window must reject: %+v", res)
	}
	if res := m.Charge("c", "p", 40, ClassQuery); !res.OK || res.Remaining != 0 {
		t.Fatalf("charge to exactly the boundary mid-window: %+v", res)
	}
	rej := m.Charge("c", "p", 60, ClassQuery)
	if rej.OK {
		t.Fatalf("over boundary: %+v", rej)
	}
	// Waiting out the advertised RetryAfter must be sufficient.
	fc.step(rej.RetryAfter)
	if res := m.Charge("c", "p", 60, ClassQuery); !res.OK {
		t.Fatalf("charge after RetryAfter %v: %+v", rej.RetryAfter, res)
	}
	// A full window of silence clears everything.
	fc.step(time.Hour)
	if used, _ := m.WindowUsed("c"); used != 0 {
		t.Fatalf("window usage after idle window = %d, want 0", used)
	}
	if total, _ := m.Estimate("c"); total != 160 {
		t.Fatalf("cumulative total must not decay: %d, want 160", total)
	}
}

// TestTrustedTier checks tiered quotas: a trusted client keeps going after
// the default tier is exhausted.
func TestTrustedTier(t *testing.T) {
	m, _ := newTestManager(Config{Quota: 10, TrustedQuota: 40, Trusted: []string{"vip"}})
	if res := m.Charge("plain", "p", 11, ClassQuery); res.OK {
		t.Fatal("default tier must reject 11/10")
	}
	if res := m.Charge("vip", "p", 11, ClassQuery); !res.OK || res.Quota != 40 {
		t.Fatalf("trusted tier: %+v", res)
	}
	if res := m.Charge("vip", "p", 30, ClassQuery); res.OK {
		t.Fatalf("trusted tier past 40: %+v", res)
	}
}

// TestGracefulDegradation checks the shed order: reconstruct-class charges
// are rejected past the soft threshold while query-class charges still
// land, until the hard quota stops everything.
func TestGracefulDegradation(t *testing.T) {
	m, _ := newTestManager(Config{Quota: 100, SoftFraction: 0.8})
	if res := m.Charge("c", "p", 75, ClassQuery); !res.OK {
		t.Fatalf("priming charge: %+v", res)
	}
	rec := m.Charge("c", "p", 10, ClassReconstruct)
	if rec.OK || rec.Reason != ReasonDegraded {
		t.Fatalf("reconstruct past soft threshold: %+v", rec)
	}
	if res := m.Charge("c", "p", 10, ClassQuery); !res.OK {
		t.Fatalf("query at same usage must still pass: %+v", res)
	}
	// 85 used now; 80 is the soft limit, 100 the hard one.
	if res := m.Charge("c", "p", 20, ClassQuery); res.OK || res.Reason != ReasonClientQuota {
		t.Fatalf("hard quota: %+v", res)
	}
	st := m.Snapshot()
	if st.RejectedDegraded != 1 || st.RejectedClientQuota != 1 {
		t.Fatalf("rejection counters: %+v", st)
	}
}

// TestPublicationQuota checks the per-publication cap across clients.
func TestPublicationQuota(t *testing.T) {
	m, _ := newTestManager(Config{Quota: 1000, PublicationQuota: 25})
	for i := 0; i < 5; i++ {
		client := fmt.Sprintf("c%d", i)
		if res := m.Charge(client, "pub", 5, ClassQuery); !res.OK {
			t.Fatalf("client %d: %+v", i, res)
		}
	}
	res := m.Charge("c9", "pub", 5, ClassQuery)
	if res.OK || res.Reason != ReasonPublicationQuota {
		t.Fatalf("publication cap: %+v", res)
	}
	if other := m.Charge("c9", "other", 5, ClassQuery); !other.OK {
		t.Fatalf("other publication unaffected: %+v", other)
	}
}

// TestPromotionDeterministic replays the same charge sequence twice
// through tiny managers and requires identical decisions, tracked sets,
// and stats; it also pins the eviction rule (smallest window usage,
// smallest id on ties).
func TestPromotionDeterministic(t *testing.T) {
	cfg := Config{Quota: -1, MaxTracked: 2, SketchWidth: 64, SketchDepth: 2, PromoteAt: 10}
	run := func() ([]Result, []string, Stats) {
		m, _ := newTestManager(cfg)
		var rs []Result
		// a and b take the exact slots; then heavy charges to c promote
		// it past whichever of a and b is lighter.
		rs = append(rs, m.Charge("a", "", 3, ClassQuery))
		rs = append(rs, m.Charge("b", "", 7, ClassQuery))
		rs = append(rs, m.Charge("c", "", 12, ClassQuery))
		rs = append(rs, m.Charge("d", "", 2, ClassQuery))
		return rs, m.TrackedClients(), m.Snapshot()
	}
	r1, t1, s1 := run()
	r2, t2, s2 := run()
	if !reflect.DeepEqual(r1, r2) || !reflect.DeepEqual(t1, t2) || s1 != s2 {
		t.Fatalf("replay diverged:\n%v\n%v\n%v vs %v\n%+v vs %+v", r1, r2, t1, t2, s1, s2)
	}
	// c (12) must have displaced a (3), the lightest tracked entry.
	if !reflect.DeepEqual(t1, []string{"b", "c"}) {
		t.Fatalf("tracked after promotion = %v, want [b c]", t1)
	}
	if s1.Promotions != 1 || s1.Evictions != 1 || s1.Seeded != 1 {
		t.Fatalf("promotion stats: %+v", s1)
	}
}

// TestSketchNeverUndercounts floods a deliberately tiny sketch with a
// zipf-distributed population and checks estimate >= exact for every
// client, tracked or not, including across promotions and evictions.
func TestSketchNeverUndercounts(t *testing.T) {
	m, _ := newTestManager(Config{Quota: -1, MaxTracked: 8, SketchWidth: 64, SketchDepth: 3, PromoteAt: 20})
	rng := stats.NewRand(11)
	z := stats.NewZipf(1.3, 500)
	oracle := map[string]int64{}
	for i := 0; i < 5000; i++ {
		client := fmt.Sprintf("client-%04d", z.Draw(rng))
		n := int64(1 + rng.Intn(3))
		m.Charge(client, "", n, ClassQuery)
		oracle[client] += n
	}
	for client, want := range oracle {
		got, _ := m.Estimate(client)
		if got < want {
			t.Fatalf("estimate for %s = %d undercounts exact %d", client, got, want)
		}
	}
	st := m.Snapshot()
	if st.Tracked > 8 {
		t.Fatalf("tracked %d exceeds MaxTracked 8", st.Tracked)
	}
}

// TestExactTrackingIsExact verifies first-seen tracked clients report
// exact counts regardless of sketch noise from the untracked tail.
func TestExactTrackingIsExact(t *testing.T) {
	m, _ := newTestManager(Config{Quota: -1, MaxTracked: 4, SketchWidth: 16, SketchDepth: 2})
	for i := 0; i < 4; i++ {
		m.Charge(fmt.Sprintf("hh-%d", i), "", int64(100+i), ClassQuery)
	}
	for i := 0; i < 1000; i++ {
		m.Charge(fmt.Sprintf("tail-%d", i), "", 1, ClassQuery)
	}
	for i := 0; i < 4; i++ {
		total, exact := m.Estimate(fmt.Sprintf("hh-%d", i))
		if !exact || total != int64(100+i) {
			t.Fatalf("hh-%d: total=%d exact=%v, want %d exact", i, total, exact, 100+i)
		}
	}
}

// TestCancelRefunds checks that canceling an exact-tracked charge restores
// window budget and total, while sketch-resident refunds are dropped.
func TestCancelRefunds(t *testing.T) {
	m, _ := newTestManager(Config{Quota: 10})
	m.Charge("c", "p", 10, ClassQuery)
	if res := m.Charge("c", "p", 1, ClassQuery); res.OK {
		t.Fatal("quota full")
	}
	m.Cancel("c", "p", 10)
	if res := m.Charge("c", "p", 10, ClassQuery); !res.OK {
		t.Fatalf("after refund: %+v", res)
	}
	if total, _ := m.Estimate("c"); total != 10 {
		t.Fatalf("total after refund+recharge = %d, want 10", total)
	}
}

// TestChargeServedOvershoots checks the fleet settle path: a served charge
// lands even past quota, and the next precheck pays for it.
func TestChargeServedOvershoots(t *testing.T) {
	m, _ := newTestManager(Config{Quota: 10})
	if res := m.ChargeServed("c", "p", 25, ClassQuery); !res.OK || res.WindowUsed != 25 {
		t.Fatalf("served charge must land: %+v", res)
	}
	pre := m.Precheck("c", "p", ClassQuery)
	if pre.OK || pre.Reason != ReasonClientQuota || pre.RetryAfter <= 0 {
		t.Fatalf("precheck after overshoot: %+v", pre)
	}
}

// TestPrecheckDegradesReconstructFirst mirrors graceful degradation on the
// precheck path used by the fleet router.
func TestPrecheckDegradesReconstructFirst(t *testing.T) {
	m, _ := newTestManager(Config{Quota: 100, SoftFraction: 0.5})
	m.Charge("c", "p", 60, ClassQuery)
	if pre := m.Precheck("c", "p", ClassReconstruct); pre.OK || pre.Reason != ReasonDegraded {
		t.Fatalf("reconstruct precheck past soft: %+v", pre)
	}
	if pre := m.Precheck("c", "p", ClassQuery); !pre.OK {
		t.Fatalf("query precheck below hard quota: %+v", pre)
	}
}

// TestEnforcementDisabled checks Quota < 0: everything is admitted,
// Remaining reports Unlimited, counting still works.
func TestEnforcementDisabled(t *testing.T) {
	m, _ := newTestManager(Config{Quota: -1})
	res := m.Charge("c", "p", 1<<20, ClassQuery)
	if !res.OK || res.Remaining != Unlimited {
		t.Fatalf("disabled enforcement: %+v", res)
	}
	if total, _ := m.Estimate("c"); total != 1<<20 {
		t.Fatalf("total = %d", total)
	}
	if m.Enforced() {
		t.Fatal("Enforced() must be false")
	}
}

// TestMemoryBounded holds a small-config manager under a fixed byte bound
// while the client population grows 100x past MaxTracked.
func TestMemoryBounded(t *testing.T) {
	m, _ := newTestManager(Config{Quota: -1, MaxTracked: 256, SketchWidth: 1 << 10, SketchDepth: 4})
	var after256 int64
	for i := 0; i < 25600; i++ {
		m.Charge(fmt.Sprintf("client-%06d", i), "", 1, ClassQuery)
		if i == 255 {
			after256 = m.MemoryBytes()
		}
	}
	if got := m.MemoryBytes(); got > after256+4096 {
		t.Fatalf("memory grew with client count: %d bytes after 25600 clients vs %d after 256", got, after256)
	}
}

func BenchmarkBudgetCharge(b *testing.B) {
	m := New(Config{})
	rng := stats.NewRand(1)
	z := stats.NewZipf(1.2, 1_000_000)
	ids := make([]string, 1<<16)
	for i := range ids {
		ids[i] = fmt.Sprintf("client-%07d", z.Draw(rng))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Charge(ids[i&(1<<16-1)], "pub", 1, ClassQuery)
	}
}
