// Package budget enforces per-client and per-publication exposure budgets
// with bounded memory.
//
// The serving layer charges every answered query and reconstruction against
// the requesting client (see internal/serve); this package turns that
// ledger from an unbounded exact map into a quota-enforcing manager that
// stays small at production client counts. Counting is sketch-backed: a
// count-min sketch absorbs the long tail of clients, while heavy hitters
// are promoted to exact tracking with a deterministic smallest-usage
// eviction, so the clients that matter for enforcement are counted exactly
// and everyone else is overestimated, never under. Usage decays through a
// sliding window of fixed slots, quotas come in configurable tiers
// (default and trusted), and rejections are typed: callers translate a
// failed Result into a budget_exhausted response with a Retry-After
// computed from when enough window slots expire.
//
// Two invariants shape the design. Estimates never undercount — the sketch
// only overestimates, evicted exact entries are folded back into it, and
// refunds of sketch-resident charges are dropped rather than risk
// undershoot — so a quota can bound a reconstruction adversary even for
// untracked clients. And every decision is deterministic in the charge
// sequence: promotion happens exactly when an estimate crosses the
// threshold, eviction picks the minimum (usage, client) pair, and no code
// path consults map iteration order, which keeps the simulator's
// byte-identical-summary property intact.
package budget
