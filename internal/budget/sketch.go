package budget

import "math"

// The sketches index rows by independent mixes of one base hash per key.
// FNV-1a supplies the base; the SplitMix64 finalizer decorrelates rows.

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
	golden    = 0x9e3779b97f4a7c15
)

func hashKey(s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// rowIndex returns the column for depth row d under a power-of-two mask.
func rowIndex(base uint64, d int, mask uint64) uint64 {
	return mix(base+uint64(d+1)*golden) & mask
}

// winSketch is the sliding-window half of the counting state: one
// count-min slab of uint32 counters per window slot. Slots rotate as the
// clock crosses slot boundaries; expired slabs are zeroed wholesale, so a
// lookup never has to reason about staleness.
type winSketch struct {
	slots, depth int
	width        uint64 // power of two
	mask         uint64
	counts       []uint32 // slots × depth × width
	epochs       []int64  // epoch currently stored in each slot position
}

func newWinSketch(slots, depth int, width uint64) *winSketch {
	return &winSketch{
		slots:  slots,
		depth:  depth,
		width:  width,
		mask:   width - 1,
		counts: make([]uint32, uint64(slots)*uint64(depth)*width),
		epochs: make([]int64, slots),
	}
}

// advance rotates the window to epoch e, zeroing every slot position whose
// resident epoch has fallen out of [e-slots+1, e].
func (w *winSketch) advance(e int64) {
	for pos := 0; pos < w.slots; pos++ {
		if w.epochs[pos] > e-int64(w.slots) && w.epochs[pos] <= e {
			continue
		}
		// This position will next hold the epoch congruent to pos.
		next := e - (e-int64(pos))%int64(w.slots)
		if next > e {
			next -= int64(w.slots)
		}
		slab := w.slab(pos)
		for i := range slab {
			slab[i] = 0
		}
		w.epochs[pos] = next
	}
}

func (w *winSketch) slab(pos int) []uint32 {
	n := uint64(w.depth) * w.width
	return w.counts[uint64(pos)*n : (uint64(pos)+1)*n]
}

// add charges n into the slot holding epoch e. Counters saturate rather
// than wrap, preserving the never-undercount invariant.
func (w *winSketch) add(base uint64, e int64, n int64) {
	slab := w.slab(int(e % int64(w.slots)))
	for d := 0; d < w.depth; d++ {
		c := &slab[uint64(d)*w.width+rowIndex(base, d, w.mask)]
		if s := uint64(*c) + uint64(n); s > math.MaxUint32 {
			*c = math.MaxUint32
		} else {
			*c = uint32(s)
		}
	}
}

// slotEstimate returns the count-min estimate for one slot position.
func (w *winSketch) slotEstimate(base uint64, pos int) int64 {
	slab := w.slab(pos)
	est := uint32(math.MaxUint32)
	for d := 0; d < w.depth; d++ {
		if c := slab[uint64(d)*w.width+rowIndex(base, d, w.mask)]; c < est {
			est = c
		}
	}
	return int64(est)
}

// estimate sums the per-slot estimates: the windowed usage upper bound.
func (w *winSketch) estimate(base uint64) int64 {
	var sum int64
	for pos := 0; pos < w.slots; pos++ {
		sum += w.slotEstimate(base, pos)
	}
	return sum
}

// slotEstimates appends the per-slot estimates ordered oldest epoch first,
// for Retry-After computation. Only slots within the window are included.
func (w *winSketch) slotEstimates(base uint64, e int64, dst []int64) []int64 {
	for age := int64(w.slots) - 1; age >= 0; age-- {
		ep := e - age
		pos := int(((ep % int64(w.slots)) + int64(w.slots)) % int64(w.slots))
		if w.epochs[pos] != ep {
			dst = append(dst, 0)
			continue
		}
		dst = append(dst, w.slotEstimate(base, pos))
	}
	return dst
}

// cumSketch is the non-rotating cumulative half: uint64 counters so
// lifetime totals cannot saturate in practice.
type cumSketch struct {
	depth  int
	width  uint64
	mask   uint64
	counts []uint64 // depth × width
}

func newCumSketch(depth int, width uint64) *cumSketch {
	return &cumSketch{depth: depth, width: width, mask: width - 1,
		counts: make([]uint64, uint64(depth)*width)}
}

func (c *cumSketch) add(base uint64, n int64) {
	for d := 0; d < c.depth; d++ {
		c.counts[uint64(d)*c.width+rowIndex(base, d, c.mask)] += uint64(n)
	}
}

func (c *cumSketch) estimate(base uint64) int64 {
	est := uint64(math.MaxUint64)
	for d := 0; d < c.depth; d++ {
		if v := c.counts[uint64(d)*c.width+rowIndex(base, d, c.mask)]; v < est {
			est = v
		}
	}
	if est > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(est)
}

// pow2 rounds n up to the next power of two.
func pow2(n int) uint64 {
	w := uint64(1)
	for w < uint64(n) {
		w <<= 1
	}
	return w
}
