package budget

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Defaults for the zero Config. DefaultQuota is calibrated against a
// generation-averaging adversary on the reference medical publication
// (internal/experiments/budget.go, EXPERIMENTS.md): stably pinning any
// raw group histogram — reconstruction accuracy beyond what the
// single-generation Bernstein envelope permits — costs at least ~2,400
// charge units even for the smallest group on the attacker's luckiest
// measured seed, and certifying a pin from the envelope itself costs tens
// of thousands. The default tier's 2,000 therefore exhausts first.
// Workloads that legitimately charge more per window (the simulator's
// load generators reach 4,000 units in the adversary scenario) belong in
// the trusted tier, whose DefaultTrustedFactor lifts the quota to 8,000.
const (
	DefaultQuota          = 2000
	DefaultWindow         = time.Hour
	DefaultSlots          = 4
	DefaultTrustedFactor  = 4    // trusted tier = factor × default quota
	DefaultPubFactor      = 50   // publication quota = factor × default quota
	DefaultSoftFraction   = 0.85 // shed reconstruct-class charges past this
	DefaultMaxTracked     = 1 << 16
	DefaultSketchWidth    = 1 << 18
	DefaultSketchDepth    = 4
	DefaultMaxTrackedPubs = 4096
)

// Unlimited is the Remaining value reported when enforcement is disabled.
const Unlimited = math.MaxInt64

// Class labels what kind of work a charge pays for. Reconstruct-class
// charges are shed first as a client approaches its quota: reconstruction
// is the privacy-sensitive operation, so degradation starts there.
type Class int

const (
	ClassQuery Class = iota
	ClassReconstruct
)

// Reason says why a charge was rejected.
type Reason string

const (
	ReasonNone             Reason = ""
	ReasonClientQuota      Reason = "client_quota"
	ReasonPublicationQuota Reason = "publication_quota"
	ReasonDegraded         Reason = "degraded" // reconstruct shed near quota
)

// Config tunes a Manager. The zero value means production defaults;
// explicit negatives disable the corresponding mechanism.
type Config struct {
	// Quota is the per-client charge budget per window for the default
	// tier. 0 means DefaultQuota; negative disables enforcement entirely
	// (the manager still counts, warns, and reports).
	Quota int64
	// TrustedQuota is the budget for trusted-tier clients
	// (0 = DefaultTrustedFactor × Quota).
	TrustedQuota int64
	// Trusted lists client ids in the trusted tier.
	Trusted []string
	// PublicationQuota caps total charges against one publication per
	// window (0 = DefaultPubFactor × Quota; negative disables).
	PublicationQuota int64
	// Window is the sliding decay window (0 = DefaultWindow), divided
	// into Slots slots (0 = DefaultSlots).
	Window time.Duration
	Slots  int
	// SoftFraction of the quota at which reconstruct-class charges are
	// shed (0 = DefaultSoftFraction; negative disables degradation).
	SoftFraction float64
	// MaxTracked bounds exact per-client entries (0 = DefaultMaxTracked).
	MaxTracked int
	// SketchWidth and SketchDepth size the count-min sketches
	// (0 = DefaultSketchWidth / DefaultSketchDepth). Width is rounded up
	// to a power of two.
	SketchWidth, SketchDepth int
	// PromoteAt is the sketch estimate at which a client is promoted to
	// exact tracking (0 = Quota/2).
	PromoteAt int64
	// Clock supplies time for window rotation (nil = time.Now).
	Clock func() time.Time
}

// Result reports the outcome of a charge or precheck.
type Result struct {
	OK     bool
	Reason Reason
	// Total is the client's cumulative lifetime exposure after the
	// charge (unchanged on rejection). WindowUsed is the windowed usage.
	// Both are exact when Exact is true and count-min upper bounds
	// otherwise.
	Total      int64
	WindowUsed int64
	// Remaining is the window budget left after this charge, or
	// Unlimited when enforcement is off.
	Remaining int64
	Quota     int64
	// RetryAfter, set on rejection, is the duration until enough window
	// slots expire for a same-size charge to fit.
	RetryAfter time.Duration
	Exact      bool
}

// Stats is a point-in-time snapshot for /statsz.
type Stats struct {
	Enforced                                 bool
	Quota, TrustedQuota, PublicationQuota    int64
	WindowSeconds                            float64
	Slots, SketchWidth, SketchDepth          int
	SketchEpsilon, SketchDelta               float64
	Tracked, Seeded, TrackedPubs             int
	Occupancy                                float64 // max tracked window usage / its quota
	MaxClientTotal                           int64   // max cumulative among exact-tracked clients
	Charges                                  uint64
	RejectedClientQuota, RejectedPublication uint64
	RejectedDegraded                         uint64
	Promotions, Evictions                    uint64
	TotalCharged                             int64
	MemoryBytes                              int64
}

// entry is one exactly tracked key: per-slot window usage plus the
// lifetime total. seeded entries were promoted out of the sketch, so their
// counts are upper bounds rather than exact.
type entry struct {
	slots  []int64
	epochs []int64
	total  int64
	seeded bool
}

func newEntry(slots int) *entry {
	return &entry{slots: make([]int64, slots), epochs: make([]int64, slots)}
}

func (en *entry) windowUsed(e int64, nslots int64) int64 {
	var sum int64
	for i, ep := range en.epochs {
		if ep > e-nslots && ep <= e {
			sum += en.slots[i]
		}
	}
	return sum
}

func (en *entry) add(e int64, nslots int64, n int64) {
	pos := int(e % nslots)
	if en.epochs[pos] != e {
		en.slots[pos] = 0
		en.epochs[pos] = e
	}
	en.slots[pos] += n
}

// refund removes up to n from the window, newest slot first, and from the
// total. Used to cancel a charge whose request was never served.
func (en *entry) refund(e int64, nslots int64, n int64) {
	en.total -= n
	if en.total < 0 {
		en.total = 0
	}
	for age := int64(0); age < nslots && n > 0; age++ {
		ep := e - age
		pos := int(((ep % nslots) + nslots) % nslots)
		if en.epochs[pos] != ep {
			continue
		}
		take := en.slots[pos]
		if take > n {
			take = n
		}
		en.slots[pos] -= take
		n -= take
	}
}

// slotAmounts appends window usage ordered oldest first, zero-filled for
// slots with no charges, mirroring winSketch.slotEstimates.
func (en *entry) slotAmounts(e int64, nslots int64, dst []int64) []int64 {
	for age := nslots - 1; age >= 0; age-- {
		ep := e - age
		pos := int(((ep % nslots) + nslots) % nslots)
		if en.epochs[pos] == ep {
			dst = append(dst, en.slots[pos])
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// Manager is the exposure budget manager. All methods are safe for
// concurrent use.
type Manager struct {
	quota, trustedQuota, pubQuota int64
	softQuota, softTrusted        int64 // 0 disables degradation
	promoteAt                     int64
	window, slotDur               time.Duration
	nslots                        int
	maxTracked, maxPubs           int
	depth                         int
	width                         uint64
	clock                         func() time.Time

	mu       sync.Mutex
	epoch    int64
	win      *winSketch
	cum      *cumSketch
	exact    map[string]*entry
	pubs     map[string]*entry
	trusted  map[string]bool
	keyBytes int64 // total bytes of exact-map keys, for memory accounting
	pubBytes int64

	charges, rejClient, rejPub, rejSoft uint64
	promotions, evictions               uint64
	totalCharged                        int64
	maxClientTotal                      int64
	seeded                              int
}

// overflowPub aggregates publications beyond the tracked bound into one
// shared conservative bucket.
const overflowPub = "\x00overflow"

// New returns a Manager for the config; see Config for zero-value
// semantics.
func New(cfg Config) *Manager {
	m := &Manager{
		quota:      cfg.Quota,
		window:     cfg.Window,
		nslots:     cfg.Slots,
		maxTracked: cfg.MaxTracked,
		maxPubs:    DefaultMaxTrackedPubs,
		depth:      cfg.SketchDepth,
		clock:      cfg.Clock,
	}
	if m.quota == 0 {
		m.quota = DefaultQuota
	}
	if m.window <= 0 {
		m.window = DefaultWindow
	}
	if m.nslots <= 0 {
		m.nslots = DefaultSlots
	}
	m.slotDur = m.window / time.Duration(m.nslots)
	if m.maxTracked <= 0 {
		m.maxTracked = DefaultMaxTracked
	}
	if m.depth <= 0 {
		m.depth = DefaultSketchDepth
	}
	w := cfg.SketchWidth
	if w <= 0 {
		w = DefaultSketchWidth
	}
	m.width = pow2(w)
	if m.clock == nil {
		m.clock = time.Now
	}
	m.trustedQuota = cfg.TrustedQuota
	if m.trustedQuota == 0 && m.quota > 0 {
		m.trustedQuota = DefaultTrustedFactor * m.quota
	}
	m.pubQuota = cfg.PublicationQuota
	if m.pubQuota == 0 && m.quota > 0 {
		m.pubQuota = DefaultPubFactor * m.quota
	}
	soft := cfg.SoftFraction
	if soft == 0 {
		soft = DefaultSoftFraction
	}
	if soft > 0 && m.quota > 0 {
		m.softQuota = int64(soft * float64(m.quota))
		m.softTrusted = int64(soft * float64(m.trustedQuota))
	}
	m.promoteAt = cfg.PromoteAt
	if m.promoteAt <= 0 {
		q := m.quota
		if q <= 0 {
			q = DefaultQuota
		}
		m.promoteAt = q / 2
	}
	m.win = newWinSketch(m.nslots, m.depth, m.width)
	m.cum = newCumSketch(m.depth, m.width)
	m.exact = make(map[string]*entry)
	m.pubs = make(map[string]*entry)
	m.trusted = make(map[string]bool, len(cfg.Trusted))
	for _, c := range cfg.Trusted {
		m.trusted[c] = true
	}
	return m
}

// Enforced reports whether quotas are active (Config.Quota >= 0).
func (m *Manager) Enforced() bool { return m.quota > 0 }

func (m *Manager) quotaFor(client string) int64 {
	if m.trusted[client] {
		return m.trustedQuota
	}
	return m.quota
}

func (m *Manager) softFor(client string) int64 {
	if m.trusted[client] {
		return m.softTrusted
	}
	return m.softQuota
}

// advance moves the window to the clock's current epoch. Callers hold mu.
func (m *Manager) advance() int64 {
	e := m.clock().UnixNano() / int64(m.slotDur)
	if e != m.epoch {
		m.win.advance(e)
		m.epoch = e
	}
	return e
}

// Charge atomically checks and charges n units for client against pub.
// A rejected charge mutates nothing: a 429 never charges.
func (m *Manager) Charge(client, pub string, n int64, class Class) Result {
	return m.charge(client, pub, n, class, false)
}

// ChargeServed charges unconditionally, even past quota. The fleet router
// uses it at settle time, when the replica's answer has already been
// relayed: the response cannot be unsent, so the charge must land and the
// client's next precheck pays for the overshoot.
func (m *Manager) ChargeServed(client, pub string, n int64, class Class) Result {
	return m.charge(client, pub, n, class, true)
}

// Precheck evaluates whether a charge of unknown size could proceed: it
// rejects only when the window is already at or past the relevant limit.
// Nothing is charged.
func (m *Manager) Precheck(client, pub string, class Class) Result {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.advance()
	used, total, exact := m.usage(client, e)
	quota := m.quotaFor(client)
	res := Result{OK: true, Total: total, WindowUsed: used, Quota: quota, Exact: exact, Remaining: Unlimited}
	if quota <= 0 {
		return res
	}
	res.Remaining = quota - used
	if res.Remaining < 0 {
		res.Remaining = 0
	}
	limit := quota
	reason := ReasonClientQuota
	if soft := m.softFor(client); class == ClassReconstruct && soft > 0 && soft < limit {
		limit, reason = soft, ReasonDegraded
	}
	if used >= limit {
		res.OK = false
		res.Reason = reason
		res.Remaining = 0
		res.RetryAfter = m.retryAfter(client, e, used, 1, limit)
		m.countReject(reason)
		return res
	}
	if m.pubQuota > 0 && pub != "" {
		if pe, ok := m.pubs[m.pubKey(pub)]; ok && pe.windowUsed(e, int64(m.nslots)) >= m.pubQuota {
			res.OK = false
			res.Reason = ReasonPublicationQuota
			res.RetryAfter = m.slotDur - time.Duration(m.clock().UnixNano()-e*int64(m.slotDur))
			m.countReject(ReasonPublicationQuota)
		}
	}
	return res
}

func (m *Manager) charge(client, pub string, n int64, class Class, force bool) Result {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.advance()
	used, total, exact := m.usage(client, e)
	quota := m.quotaFor(client)
	res := Result{OK: true, Total: total, WindowUsed: used, Quota: quota, Exact: exact, Remaining: Unlimited}
	if n <= 0 {
		return res
	}
	if quota > 0 && !force {
		if rej, reason, limit := m.checkClient(client, used, n, class, quota); rej {
			res.OK = false
			res.Reason = reason
			res.Remaining = quota - used
			if res.Remaining < 0 {
				res.Remaining = 0
			}
			res.RetryAfter = m.retryAfter(client, e, used, n, limit)
			m.countReject(reason)
			return res
		}
		if m.pubQuota > 0 && pub != "" {
			pe := m.pubs[m.pubKey(pub)]
			pused := int64(0)
			if pe != nil {
				pused = pe.windowUsed(e, int64(m.nslots))
			}
			if pused+n > m.pubQuota {
				res.OK = false
				res.Reason = ReasonPublicationQuota
				res.Remaining = quota - used
				if res.Remaining < 0 {
					res.Remaining = 0
				}
				res.RetryAfter = m.pubRetryAfter(pe, e, pused, n)
				m.countReject(ReasonPublicationQuota)
				return res
			}
		}
	}
	used, total, exact = m.commit(client, e, n)
	if pub != "" && m.pubQuota > 0 {
		m.chargePub(pub, e, n)
	}
	m.charges++
	m.totalCharged += n
	res.WindowUsed = used
	res.Total = total
	res.Exact = exact
	if quota > 0 {
		res.Remaining = quota - used
		if res.Remaining < 0 {
			res.Remaining = 0
		}
	}
	return res
}

func (m *Manager) checkClient(client string, used, n int64, class Class, quota int64) (bool, Reason, int64) {
	if used+n > quota {
		return true, ReasonClientQuota, quota
	}
	if soft := m.softFor(client); class == ClassReconstruct && soft > 0 && used+n > soft {
		return true, ReasonDegraded, soft
	}
	return false, ReasonNone, 0
}

// usage returns window usage, lifetime total, and exactness for client.
func (m *Manager) usage(client string, e int64) (used, total int64, exactCounts bool) {
	if en, ok := m.exact[client]; ok {
		return en.windowUsed(e, int64(m.nslots)), en.total, !en.seeded
	}
	base := hashKey(client)
	return m.win.estimate(base), m.cum.estimate(base), false
}

// commit lands an accepted charge and handles tracking transitions.
func (m *Manager) commit(client string, e, n int64) (used, total int64, exactCounts bool) {
	nslots := int64(m.nslots)
	if en, ok := m.exact[client]; ok {
		en.add(e, nslots, n)
		en.total += n
		if en.total > m.maxClientTotal {
			m.maxClientTotal = en.total
		}
		return en.windowUsed(e, nslots), en.total, !en.seeded
	}
	if len(m.exact) < m.maxTracked {
		// Free exact slot: track from the first charge, bypassing the
		// sketch entirely so the counts are exact for good.
		en := newEntry(m.nslots)
		en.add(e, nslots, n)
		en.total = n
		m.exact[client] = en
		m.keyBytes += int64(len(client))
		if en.total > m.maxClientTotal {
			m.maxClientTotal = en.total
		}
		return n, n, true
	}
	base := hashKey(client)
	m.win.add(base, e, n)
	m.cum.add(base, n)
	w := m.win.estimate(base)
	if w >= m.promoteAt && w-n < m.promoteAt {
		// The estimate crossed the promotion threshold on this charge:
		// this client is now a heavy hitter worth exact tracking.
		m.promote(client, base, e, w)
	}
	if en, ok := m.exact[client]; ok {
		return en.windowUsed(e, nslots), en.total, false
	}
	return w, m.cum.estimate(base), false
}

// promote moves a sketch-resident client into the exact map, evicting the
// tracked entry with the smallest window usage if the map is full. The
// victim is the minimum (usage, client) pair — a deterministic function of
// the charge sequence, never of map iteration order. The promoted entry is
// seeded from its sketch estimates, which only overestimate, so promotion
// preserves the never-undercount invariant; its counts stay flagged as
// estimates.
func (m *Manager) promote(client string, base uint64, e int64, w int64) {
	nslots := int64(m.nslots)
	if len(m.exact) >= m.maxTracked {
		victim := ""
		victimUsed := int64(math.MaxInt64)
		for c, en := range m.exact {
			u := en.windowUsed(e, nslots)
			if u < victimUsed || (u == victimUsed && (victim == "" || c < victim)) {
				victim, victimUsed = c, u
			}
		}
		if victimUsed >= w {
			return // everyone tracked is at least as heavy
		}
		m.evict(victim, e)
	}
	en := newEntry(m.nslots)
	for i, est := range m.win.slotEstimates(base, e, nil) {
		ep := e - (nslots - 1) + int64(i)
		if est > 0 {
			en.epochs[int(((ep%nslots)+nslots)%nslots)] = ep
			en.slots[int(((ep%nslots)+nslots)%nslots)] = est
		}
	}
	en.total = m.cum.estimate(base)
	en.seeded = true
	m.exact[client] = en
	m.keyBytes += int64(len(client))
	m.seeded++
	m.promotions++
	if en.total > m.maxClientTotal {
		m.maxClientTotal = en.total
	}
}

// evict folds an exact entry back into the sketches so estimates for the
// evicted client remain upper bounds.
func (m *Manager) evict(client string, e int64) {
	en := m.exact[client]
	base := hashKey(client)
	nslots := int64(m.nslots)
	for i, ep := range en.epochs {
		if ep > e-nslots && ep <= e && en.slots[i] > 0 {
			m.win.add(base, ep, en.slots[i])
		}
	}
	if en.total > 0 {
		m.cum.add(base, en.total)
	}
	if en.seeded {
		m.seeded--
	}
	delete(m.exact, client)
	m.keyBytes -= int64(len(client))
	m.evictions++
}

func (m *Manager) pubKey(pub string) string {
	if _, ok := m.pubs[pub]; ok {
		return pub
	}
	if len(m.pubs) >= m.maxPubs {
		return overflowPub
	}
	return pub
}

func (m *Manager) chargePub(pub string, e, n int64) {
	key := m.pubKey(pub)
	pe, ok := m.pubs[key]
	if !ok {
		pe = newEntry(m.nslots)
		m.pubs[key] = pe
		m.pubBytes += int64(len(key))
	}
	pe.add(e, int64(m.nslots), n)
	pe.total += n
}

// retryAfter computes how long until enough of the client's window expires
// for a charge of n to fit under limit. Slots expire oldest first; the
// answer is the duration to the k-th rotation where the freed usage
// suffices, capped at a full window when n alone exceeds the limit.
func (m *Manager) retryAfter(client string, e int64, used, n, limit int64) time.Duration {
	var amounts []int64
	if en, ok := m.exact[client]; ok {
		amounts = en.slotAmounts(e, int64(m.nslots), nil)
	} else {
		amounts = m.win.slotEstimates(hashKey(client), e, nil)
	}
	return m.retryFromSlots(amounts, e, used, n, limit)
}

func (m *Manager) pubRetryAfter(pe *entry, e int64, used, n int64) time.Duration {
	if pe == nil {
		return m.window
	}
	return m.retryFromSlots(pe.slotAmounts(e, int64(m.nslots), nil), e, used, n, m.pubQuota)
}

func (m *Manager) retryFromSlots(amounts []int64, e int64, used, n, limit int64) time.Duration {
	intoSlot := time.Duration(m.clock().UnixNano() - e*int64(m.slotDur))
	freed := int64(0)
	for k, a := range amounts {
		freed += a
		if used-freed+n <= limit {
			return time.Duration(k+1)*m.slotDur - intoSlot
		}
	}
	return m.window
}

func (m *Manager) countReject(r Reason) {
	switch r {
	case ReasonClientQuota:
		m.rejClient++
	case ReasonPublicationQuota:
		m.rejPub++
	case ReasonDegraded:
		m.rejSoft++
	}
}

// Cancel refunds a charge whose request failed after charging. Refunds
// apply only to exactly tracked state; sketch-resident refunds are dropped
// because count-min cannot subtract safely, keeping estimates upper
// bounds.
func (m *Manager) Cancel(client, pub string, n int64) {
	if n <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.advance()
	if en, ok := m.exact[client]; ok {
		en.refund(e, int64(m.nslots), n)
	}
	if pub != "" {
		if pe, ok := m.pubs[m.pubKey(pub)]; ok {
			pe.refund(e, int64(m.nslots), n)
		}
	}
	m.totalCharged -= n
	if m.totalCharged < 0 {
		m.totalCharged = 0
	}
}

// Estimate returns the client's cumulative lifetime exposure and whether
// it is exact (true only for clients tracked since their first charge).
func (m *Manager) Estimate(client string) (int64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if en, ok := m.exact[client]; ok {
		return en.total, !en.seeded
	}
	return m.cum.estimate(hashKey(client)), false
}

// WindowUsed returns the client's usage within the current window and
// whether it is exact.
func (m *Manager) WindowUsed(client string) (int64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.advance()
	used, _, exact := m.usage(client, e)
	return used, exact
}

// QuotaFor returns the window quota that applies to client (0 when
// enforcement is disabled).
func (m *Manager) QuotaFor(client string) int64 {
	if m.quota <= 0 {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.quotaFor(client)
}

// TotalCharged returns the lifetime sum of accepted charges.
func (m *Manager) TotalCharged() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.totalCharged
}

// Tracked returns the number of exactly tracked clients.
func (m *Manager) Tracked() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.exact)
}

// TrackedClients returns the exactly tracked client ids, sorted. The
// sketch-resident tail is not enumerable.
func (m *Manager) TrackedClients() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.exact))
	for c := range m.exact {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// MemoryBytes returns the manager's working-set size, computed from
// structure sizes rather than sampled from the runtime: sketch slabs plus
// exact-map entries (key bytes, slot arrays, map overhead).
func (m *Manager) MemoryBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.memoryBytesLocked()
}

func (m *Manager) memoryBytesLocked() int64 {
	const entryOverhead = 48 + 16 + 48 // struct + string header + map bucket share
	perEntry := int64(m.nslots)*16 + entryOverhead
	b := int64(len(m.win.counts))*4 + int64(len(m.cum.counts))*8
	b += int64(len(m.exact))*perEntry + m.keyBytes
	b += int64(len(m.pubs))*perEntry + m.pubBytes
	return b
}

// Snapshot returns current Stats.
func (m *Manager) Snapshot() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.epoch
	st := Stats{
		Enforced:            m.quota > 0,
		Quota:               m.quota,
		TrustedQuota:        m.trustedQuota,
		PublicationQuota:    m.pubQuota,
		WindowSeconds:       m.window.Seconds(),
		Slots:               m.nslots,
		SketchWidth:         int(m.width),
		SketchDepth:         m.depth,
		SketchEpsilon:       math.E / float64(m.width),
		SketchDelta:         math.Exp(-float64(m.depth)),
		Tracked:             len(m.exact),
		Seeded:              m.seeded,
		TrackedPubs:         len(m.pubs),
		MaxClientTotal:      m.maxClientTotal,
		Charges:             m.charges,
		RejectedClientQuota: m.rejClient,
		RejectedPublication: m.rejPub,
		RejectedDegraded:    m.rejSoft,
		Promotions:          m.promotions,
		Evictions:           m.evictions,
		TotalCharged:        m.totalCharged,
		MemoryBytes:         m.memoryBytesLocked(),
	}
	if m.quota > 0 {
		maxUsed := int64(0)
		var maxQuota int64 = 1
		for c, en := range m.exact {
			u := en.windowUsed(e, int64(m.nslots))
			q := m.quotaFor(c)
			if q > 0 && u*maxQuota > maxUsed*q { // compare u/q fractions
				maxUsed, maxQuota = u, q
			}
		}
		st.Occupancy = float64(maxUsed) / float64(maxQuota)
	}
	return st
}
