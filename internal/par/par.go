// Package par holds the one concurrency primitive the data pipeline shares:
// striped fan-out over an index range. The cold publishing path (fused
// generalization in internal/chimerge, sharded grouping in internal/dataset,
// concurrent marginal indexing in internal/query) and the publishers in
// internal/core all shard work the same way — contiguous stripes of [0, n)
// dealt to at most `workers` goroutines, each identified by a worker id so
// callers can keep private accumulators and merge them once after the join.
//
// Everything built on Striped is required to be bit-identical across worker
// counts: stripes only decide *which goroutine* computes an index, never
// *what* is computed, and accumulator merges are restricted to order-free
// operations (integer sums, integer-valued float sums below 2^53, max).
package par

import (
	"runtime"
	"sync"
)

// Mix64 is the SplitMix64 finalizer (the same mixer internal/stats uses as
// its PRNG core): a bijective avalanche of the input, cheap enough to run
// per record. Sharded passes use it to spread structured keys — mixed-radix
// encodings, sequential ids — evenly over a worker modulus.
func Mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Clamp resolves a requested worker count against n work items: zero or
// negative means GOMAXPROCS, and the result never exceeds n (nor drops
// below 1).
func Clamp(n, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Striped runs fn(worker, lo, hi) over contiguous stripes of [0, n) on up
// to `workers` goroutines (pass the result of Clamp, or any positive count —
// values ≤ 0 mean GOMAXPROCS). workers == 1 runs inline with no goroutine.
// Stripes never overlap, so per-index writes into shared output need no
// locks; the worker id indexes per-worker accumulators.
func Striped(n, workers int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Clamp(n, workers)
	if workers == 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	stripe := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * stripe
		hi := lo + stripe
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}
