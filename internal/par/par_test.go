package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestClamp(t *testing.T) {
	if got := Clamp(10, 0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Clamp(10, 0) = %d, want GOMAXPROCS", got)
	}
	if got := Clamp(3, 8); got != 3 {
		t.Errorf("Clamp(3, 8) = %d, want 3", got)
	}
	if got := Clamp(0, 8); got != 1 {
		t.Errorf("Clamp(0, 8) = %d, want 1", got)
	}
	if got := Clamp(100, 4); got != 4 {
		t.Errorf("Clamp(100, 4) = %d, want 4", got)
	}
}

func TestStripedCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16, 100} {
		for _, n := range []int{0, 1, 5, 16, 97} {
			seen := make([]atomic.Int32, n)
			Striped(n, workers, func(w, lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("workers=%d n=%d: bad stripe [%d,%d)", workers, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					seen[i].Add(1)
				}
			})
			for i := range seen {
				if c := seen[i].Load(); c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestStripedWorkerIDsAreDistinct(t *testing.T) {
	const n, workers = 64, 8
	var used [workers]atomic.Int32
	Striped(n, workers, func(w, lo, hi int) {
		used[w].Add(1)
	})
	for w := range used {
		if c := used[w].Load(); c > 1 {
			t.Errorf("worker id %d handed to %d stripes", w, c)
		}
	}
}
