package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSingleflightCollapses checks that callers arriving while a flight is
// open join it instead of re-executing. The leader's fn blocks on a gate
// until every follower has had ample time to reach Do; a follower that
// nevertheless missed the flight would run its own fn, which the test
// counts.
func TestSingleflightCollapses(t *testing.T) {
	var sf singleflight
	var leaderRuns, followerRuns atomic.Int32
	entered := make(chan struct{})
	gate := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err, _ := sf.Do("k", func() (any, error) {
			leaderRuns.Add(1)
			close(entered)
			<-gate
			return "value", nil
		})
		if err != nil || v != "value" {
			t.Errorf("leader got %v, %v", v, err)
		}
	}()
	<-entered // the flight is now provably open

	const followers = 32
	results := make([]any, followers)
	sharedCount := atomic.Int32{}
	var started sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		started.Add(1)
		go func(i int) {
			defer wg.Done()
			started.Done()
			v, err, shared := sf.Do("k", func() (any, error) {
				followerRuns.Add(1)
				return "follower", nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
			if shared {
				sharedCount.Add(1)
			}
		}(i)
	}
	started.Wait()
	time.Sleep(100 * time.Millisecond) // let every follower reach Do
	close(gate)
	wg.Wait()

	if leaderRuns.Load() != 1 || followerRuns.Load() != 0 {
		t.Fatalf("leader fn ran %d times, follower fns %d times", leaderRuns.Load(), followerRuns.Load())
	}
	for i, v := range results {
		if v != "value" {
			t.Fatalf("follower %d got %v instead of the shared result", i, v)
		}
	}
	if sharedCount.Load() != followers {
		t.Fatalf("shared for %d of %d followers", sharedCount.Load(), followers)
	}
}

// TestSingleflightKeysIndependent checks that distinct keys do not serialize.
func TestSingleflightKeysIndependent(t *testing.T) {
	var sf singleflight
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, _ := sf.Do(fmt.Sprintf("k%d", i), func() (any, error) { return i, nil })
			if err != nil || v != i {
				t.Errorf("key k%d: got %v, %v", i, v, err)
			}
		}(i)
	}
	wg.Wait()
}

// TestSingleflightErrorShared checks that an error result is delivered to
// every waiter and that the key is released for the next call.
func TestSingleflightErrorShared(t *testing.T) {
	var sf singleflight
	wantErr := fmt.Errorf("boom")
	_, err, _ := sf.Do("k", func() (any, error) { return nil, wantErr })
	if err != wantErr {
		t.Fatalf("got %v", err)
	}
	v, err, _ := sf.Do("k", func() (any, error) { return 42, nil })
	if err != nil || v != 42 {
		t.Fatalf("key not released: %v, %v", v, err)
	}
}
