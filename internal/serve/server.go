package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reconpriv/reconpriv/internal/budget"
	"github.com/reconpriv/reconpriv/internal/dataset"
	"github.com/reconpriv/reconpriv/internal/par"
	"github.com/reconpriv/reconpriv/internal/query"
)

// Config tunes the server; the zero value is fully usable.
type Config struct {
	// Shards is the registry shard count (default 16, rounded up to a power
	// of two).
	Shards int
	// QueryWorkers bounds the per-batch evaluation pool (default GOMAXPROCS).
	QueryWorkers int
	// PublishWorkers bounds the parallel publisher (default GOMAXPROCS).
	PublishWorkers int
	// PipelineWorkers bounds the cold-path preprocessing parallelism — the
	// fused chi-square generalization scan, the sharded grouping pass, and
	// the concurrent marginal-cube fill of every build and re-index
	// (default GOMAXPROCS). Results are bit-identical at any width; the
	// knob only trades build latency against CPU available for queries.
	PipelineWorkers int
	// MaxBatch caps the queries accepted per /query request (default 100,000).
	MaxBatch int
	// MaxInsert caps the records accepted per /insert request (default 100,000).
	MaxInsert int
	// CompactEvery bounds the marginal generation stack of an incremental
	// publication: once an insert append leaves more than this many
	// generations, a background compaction folds the stack into one flat
	// arena. Lower values trade compaction work for read amplification
	// (every cell read sums one value per generation). Answers and digests
	// are identical at any setting. Default 8; -1 disables compaction.
	CompactEvery int
	// IngestLegacyReindex restores the pre-delta insert path: every insert
	// batch marks the publication dirty and the next query rebuilds the
	// whole index from a full snapshot. It exists as the baseline for the
	// sustained-ingest benchmark (rpbench -exp ingest) and as an escape
	// hatch; the delta path is the default.
	IngestLegacyReindex bool
	// ExposureWarn is the per-client cumulative answered-query count above
	// which query responses set exposure_warning — the operator's signal
	// that one client has gathered enough answers for a linear
	// reconstruction attack to start paying off. Default 50,000 (10× the
	// paper's 5,000-query workload); 0 keeps the default, -1 disables.
	ExposureWarn int64
	// MaxPublications caps the number of distinct publication keys the
	// registry will hold (default 1024). Publish requests arrive
	// unauthenticated and entries (tables, group sets, marginal cubes) are
	// never evicted, so without a cap a sweep of distinct data_seed/size
	// values could grow server memory without bound.
	MaxPublications int
	// AllowCSV permits the csv dataset source (reading server-local files
	// on behalf of clients); off by default.
	AllowCSV bool
	// BudgetQuota is the per-client exposure budget per sliding window,
	// enforced by the internal/budget manager: charges past it get a typed
	// budget_exhausted 429 with a Retry-After computed from the window.
	// 0 means budget.DefaultQuota (calibrated against the NIR audit, see
	// EXPERIMENTS.md); -1 disables enforcement while keeping the bounded
	// ledger and /statsz reporting.
	BudgetQuota int64
	// BudgetTrustedQuota is the quota for clients listed in BudgetTrusted
	// (0 = budget.DefaultTrustedFactor × BudgetQuota).
	BudgetTrustedQuota int64
	// BudgetTrusted lists client ids in the trusted tier.
	BudgetTrusted []string
	// BudgetPublicationQuota caps total charges per publication per window
	// (0 = budget.DefaultPubFactor × BudgetQuota; -1 disables).
	BudgetPublicationQuota int64
	// BudgetWindow is the sliding decay window (0 = budget.DefaultWindow).
	BudgetWindow time.Duration
	// BudgetSoftFraction of the quota past which reconstruct-class charges
	// are shed first — graceful degradation before the hard cutoff
	// (0 = budget.DefaultSoftFraction; -1 disables).
	BudgetSoftFraction float64
	// BudgetMaxTracked bounds exactly tracked clients; beyond it the
	// count-min sketch absorbs the tail (0 = budget.DefaultMaxTracked).
	BudgetMaxTracked int
	// Clock overrides the server's time source for uptime accounting
	// (/healthz and /statsz). It is a test and simulation hook: injecting a
	// fixed clock makes every time-derived /statsz field deterministic, so
	// harnesses like internal/sim can compare whole responses byte for
	// byte. nil means time.Now. Request latency measurement is deliberately
	// not routed through it — latency histograms measure real elapsed time.
	Clock func() time.Time
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.QueryWorkers <= 0 {
		c.QueryWorkers = runtime.GOMAXPROCS(0)
	}
	if c.PublishWorkers <= 0 {
		c.PublishWorkers = runtime.GOMAXPROCS(0)
	}
	if c.PipelineWorkers <= 0 {
		c.PipelineWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 100000
	}
	if c.MaxInsert <= 0 {
		c.MaxInsert = 100000
	}
	if c.CompactEvery == 0 {
		c.CompactEvery = 8
	}
	if c.ExposureWarn == 0 {
		c.ExposureWarn = 50000
	}
	if c.MaxPublications <= 0 {
		c.MaxPublications = 1024
	}
	return c
}

// Server holds the publication registry and all serving state. Create with
// New, mount Handler on an http.Server. All methods are safe for concurrent
// use.
type Server struct {
	cfg   Config
	reg   *registry
	sf    singleflight
	start time.Time

	tables struct {
		mu sync.RWMutex
		m  map[string]*dataset.Table
	}

	// budget is the exposure ledger: bounded, quota-enforcing, typed
	// rejections. Every answered query and reconstruction charges it.
	budget *budget.Manager

	// Counters surfaced by /statsz. publishRuns counts actual pipeline
	// executions; publishRequests − publishRuns − refreshes = cacheHits.
	publishRequests    atomic.Uint64
	publishRuns        atomic.Uint64
	cacheHits          atomic.Uint64
	refreshes          atomic.Uint64
	refreshFailures    atomic.Uint64
	queryBatches       atomic.Uint64
	queriesAnswered    atomic.Uint64
	queryErrors        atomic.Uint64
	inserts            atomic.Uint64
	absorbed           atomic.Uint64
	ingestAppends      atomic.Uint64
	compactions        atomic.Uint64
	reconstructBatches atomic.Uint64
	reconstructions    atomic.Uint64
	audits             atomic.Uint64
	auditCacheHits     atomic.Uint64

	// auditCache holds completed audit sweeps keyed by (publication,
	// generation, parameters); see adversary.go.
	auditCache struct {
		mu sync.Mutex
		m  map[string]*auditResponse
	}

	// Drain state: once draining is set, the admission wrapper rejects new
	// work (except /healthz and /statsz) with a typed 503 while inflight
	// counts the requests still being served — Drain waits for it to reach
	// zero. inflight is incremented before the draining check, so a request
	// observed in flight is always counted.
	draining atomic.Bool
	inflight atomic.Int64

	lat latencyHist // /query and /reconstruct request latency
}

// New builds a Server.
func New(cfg Config) *Server {
	s := &Server{cfg: cfg.withDefaults()}
	s.start = s.now()
	s.reg = newRegistry(s.cfg.Shards)
	s.tables.m = make(map[string]*dataset.Table)
	s.budget = budget.New(budget.Config{
		Quota:            s.cfg.BudgetQuota,
		TrustedQuota:     s.cfg.BudgetTrustedQuota,
		Trusted:          s.cfg.BudgetTrusted,
		PublicationQuota: s.cfg.BudgetPublicationQuota,
		Window:           s.cfg.BudgetWindow,
		SoftFraction:     s.cfg.BudgetSoftFraction,
		MaxTracked:       s.cfg.BudgetMaxTracked,
		Clock:            s.cfg.Clock,
	})
	return s
}

// Budget exposes the server's budget manager; the fleet router uses it to
// disable replica-level enforcement and tests to inspect the ledger.
func (s *Server) Budget() *budget.Manager { return s.budget }

// now reads the configured clock (time.Now unless Config.Clock is set).
func (s *Server) now() time.Time {
	if s.cfg.Clock != nil {
		return s.cfg.Clock()
	}
	return time.Now()
}

// Handler returns the HTTP surface documented in the package comment,
// wrapped in the drain admission gate.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/publish", s.handlePublish)
	mux.HandleFunc("/publications", s.handlePublications)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/reconstruct", s.handleReconstruct)
	mux.HandleFunc("/audit", s.handleAudit)
	mux.HandleFunc("/refresh", s.handleRefresh)
	mux.HandleFunc("/insert", s.handleInsert)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/restore", s.handleRestore)
	mux.HandleFunc("/digest", s.handleDigest)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statsz", s.handleStatsz)
	return s.admit(mux)
}

// admit is the drain gate in front of every handler: it tracks in-flight
// requests and, once draining, rejects new work with a typed 503 —
// observability endpoints stay open so operators can watch the drain.
// inflight is incremented before the draining check so Drain's wait-for-zero
// covers every admitted request.
func (s *Server) admit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		if s.draining.Load() && r.URL.Path != "/healthz" && r.URL.Path != "/statsz" {
			WriteError(w, http.StatusServiceUnavailable, CodeDraining, ErrDraining)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// BeginDrain flips the server into draining mode without waiting: new
// requests (except /healthz and /statsz) are rejected with a typed 503 from
// this point on. In-flight requests keep running.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether the server is refusing new work.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain begins draining and blocks until every in-flight request has
// finished or the context expires, in which case the remaining count is
// reported in the error. It is idempotent and safe to call concurrently.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	for {
		if s.inflight.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("serve: drain: %d requests still in flight: %w", s.inflight.Load(), ctx.Err())
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// Publish runs the publish path programmatically (the HTTP handler and
// tests share it): normalize, dedupe against the registry, build if new.
// A key whose previous build failed is retried — a transient failure (a
// CSV file that appears later, say) must not poison the key forever;
// buildMu ensures exactly one caller restarts the build and later callers
// join its completion channel. started reports whether this call kicked
// off a build (fresh or retry); !started is a cache hit. With wait,
// Publish blocks until the build it observed settles.
func (s *Server) Publish(req PublishRequest, wait bool) (e *Entry, started bool, err error) {
	if err := req.Normalize(); err != nil {
		return nil, false, err
	}
	if req.Dataset == DatasetCSV && !s.cfg.AllowCSV {
		return nil, false, fmt.Errorf("serve: csv sources are disabled (enable with -allow-csv)")
	}
	s.publishRequests.Add(1)
	key := req.Key()
	e, created, err := s.reg.getOrCreate(IDForKey(key), key, req, s.cfg.MaxPublications)
	if err != nil {
		return nil, false, err
	}
	if created {
		s.publishRuns.Add(1)
		go func() {
			pub, err := s.buildPublication(e, 0)
			e.settle(pub, err)
		}()
		if wait {
			<-e.done
		}
		return e, true, nil
	}

	// Existing entry: start a retry if its build failed, and pick the
	// channel that tracks the build this caller observed (the first build's
	// done, or the in-flight retry's channel — done is already closed once
	// the first build settles, so it cannot signal retries).
	waitCh, retried := s.retryOrJoin(e)
	if waitCh == nil {
		waitCh = e.done
	}
	if !retried {
		s.cacheHits.Add(1)
	}
	if wait {
		<-waitCh
	}
	return e, retried, nil
}

// retryOrJoin inspects an existing entry under buildMu: if its build
// failed, it starts a fresh generation-0 build and returns its completion
// channel (started = true); if a retry is already in flight, it returns
// that retry's channel; otherwise it returns nil. All restarts of a failed
// build go through here — Publish and /refresh included — so two rebuilds
// of one entry can never interleave their stores.
func (s *Server) retryOrJoin(e *Entry) (ch chan struct{}, started bool) {
	e.buildMu.Lock()
	defer e.buildMu.Unlock()
	if e.retryDone != nil {
		return e.retryDone, false
	}
	if e.state.Load() != stateFailed {
		return nil, false
	}
	s.publishRuns.Add(1)
	c := make(chan struct{})
	e.retryDone = c
	e.state.Store(statePending)
	go func() {
		pub, err := s.buildPublication(e, 0)
		e.settle(pub, err)
		e.buildMu.Lock()
		e.retryDone = nil
		e.buildMu.Unlock()
		close(c)
	}()
	return c, true
}

// --- wire types ---

// publicationJSON is the /publications and /publish view of an entry.
type publicationJSON struct {
	ID           string     `json:"id"`
	Status       string     `json:"status"`
	Error        string     `json:"error,omitempty"`
	Dataset      string     `json:"dataset"`
	Size         int        `json:"size,omitempty"`
	Method       string     `json:"method"`
	P            float64    `json:"p"`
	Lambda       float64    `json:"lambda"`
	Delta        float64    `json:"delta"`
	Significance float64    `json:"significance"`
	Seed         int64      `json:"seed"`
	MaxDim       int        `json:"max_dim"`
	Generation   int        `json:"generation"`
	CreatedAt    time.Time  `json:"created_at"`
	BuildMS      float64    `json:"build_ms,omitempty"`
	Meta         *metaJSON  `json:"meta,omitempty"`
	Attrs        []attrJSON `json:"attrs,omitempty"`
	SAttr        *attrJSON  `json:"sensitive,omitempty"`
	Cached       bool       `json:"cached,omitempty"`
}

type metaJSON struct {
	Records          int     `json:"records"`
	RecordsOut       int     `json:"records_out"`
	Groups           int     `json:"groups"`
	ViolatingGroups  int     `json:"violating_groups"`
	ViolatingRecords int     `json:"violating_records"`
	SampledGroups    int     `json:"sampled_groups"`
	MaxGroupSize     int     `json:"max_group_size"`
	AvgGroupSize     float64 `json:"avg_group_size"`
}

type attrJSON struct {
	Name string `json:"name"`
	// Index is the attribute's position in the full schema (sensitive
	// attribute included) — the attr code a binary-wire condition carries.
	// The Attrs array alone cannot recover it when the sensitive attribute
	// sits mid-schema.
	Index  int      `json:"index"`
	Domain int      `json:"domain"`
	Values []string `json:"values,omitempty"`
}

// entryJSON renders an entry; withDomains adds the original value labels
// clients may use in query conditions.
func entryJSON(e *Entry, withDomains bool) publicationJSON {
	req := &e.reqCopy
	out := publicationJSON{
		ID:           e.id,
		Status:       stateName(e.state.Load()),
		Dataset:      req.Dataset,
		Size:         req.Size,
		Method:       req.Method,
		P:            req.P,
		Lambda:       req.Lambda,
		Delta:        req.Delta,
		Significance: *req.Significance,
		Seed:         req.Seed,
		MaxDim:       req.MaxDim,
		CreatedAt:    e.created,
	}
	if msg := e.failure.Load(); msg != nil {
		out.Error = *msg
	}
	if pub := e.pub.Load(); pub != nil {
		out.Generation = pub.Generation
		out.BuildMS = float64(pub.BuildTime.Microseconds()) / 1000
		out.Meta = &metaJSON{
			Records:          pub.Meta.Records,
			RecordsOut:       pub.Meta.RecordsOut,
			Groups:           pub.Meta.Groups,
			ViolatingGroups:  pub.Meta.ViolatingGroups,
			ViolatingRecords: pub.Meta.ViolatingRecords,
			SampledGroups:    pub.Meta.SampledGroups,
			MaxGroupSize:     pub.Meta.MaxGroupSize,
			AvgGroupSize:     pub.Meta.AvgGroupSize,
		}
		if withDomains {
			for i := range pub.Orig.Attrs {
				a := &pub.Orig.Attrs[i]
				aj := attrJSON{Name: a.Name, Index: i, Domain: a.Domain(), Values: append([]string(nil), a.Values...)}
				if i == pub.Orig.SA {
					out.SAttr = &aj
				} else {
					out.Attrs = append(out.Attrs, aj)
				}
			}
		}
	}
	return out
}

// --- handlers ---

func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	var req PublishRequest
	if !s.decode(w, r, &req) {
		return
	}
	e, started, err := s.Publish(req, req.Wait)
	if err != nil {
		if errors.Is(err, ErrCapacity) {
			WriteError(w, http.StatusTooManyRequests, CodeCapacity, err)
			return
		}
		WriteError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	out := entryJSON(e, false)
	out.Cached = !started
	code := http.StatusOK
	if e.state.Load() == statePending {
		code = http.StatusAccepted
	}
	writeJSON(w, code, out)
}

func (s *Server) handlePublications(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		WriteError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	withDomains := r.URL.Query().Get("domains") != ""
	if id := r.URL.Query().Get("id"); id != "" {
		e := s.reg.get(id)
		if e == nil {
			WriteError(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("no publication %q", id))
			return
		}
		writeJSON(w, http.StatusOK, entryJSON(e, withDomains))
		return
	}
	entries := s.reg.list()
	out := make([]publicationJSON, 0, len(entries))
	for _, e := range entries {
		out = append(out, entryJSON(e, withDomains))
	}
	writeJSON(w, http.StatusOK, out)
}

// queryRequest is the body of POST /query.
type queryRequest struct {
	ID string `json:"id"`
	// Client identifies the querying party for exposure accounting;
	// the X-Client-ID header takes precedence, the remote IP is the
	// fallback.
	Client  string      `json:"client,omitempty"`
	Queries []QueryJSON `json:"queries"`
	// Wait blocks until a pending publication is ready instead of failing
	// with 409.
	Wait bool `json:"wait,omitempty"`
}

// QueryAnswer is one query's served answer. Exported (with QueryResponse)
// so routing layers like internal/fleet can decode, verify, and re-emit the
// body without a private mirror.
type QueryAnswer struct {
	Count    int     `json:"count"`
	Estimate float64 `json:"estimate"`
	Error    string  `json:"error,omitempty"`
}

// QueryResponse is the body of a successful POST /query.
type QueryResponse struct {
	ID      string        `json:"id"`
	Answers []QueryAnswer `json:"answers"`
	Client  string        `json:"client"`
	// Charged is the exposure charge of this batch alone — the amount added
	// to the client's ledger, as opposed to ClientQueries, the cumulative
	// total. Routing layers that keep their own authoritative ledger charge
	// exactly this once per logical request, however many replica attempts
	// it took.
	Charged       int64 `json:"charged"`
	ClientQueries int64 `json:"client_queries"`
	// BudgetRemaining is the window budget left after this charge, -1 when
	// enforcement is disabled. BudgetExact says whether the budget counts
	// are exact (tracked client) rather than sketch upper bounds.
	BudgetRemaining int64 `json:"budget_remaining"`
	BudgetExact     bool  `json:"budget_exact,omitempty"`
	ExposureWarning bool  `json:"exposure_warning,omitempty"`
	ServeMicros     int64 `json:"serve_us"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if isBinary(r) {
		s.handleQueryBinary(w, r)
		return
	}
	start := time.Now()
	var req queryRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("empty query batch"))
		return
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		WriteError(w, http.StatusRequestEntityTooLarge, CodeTooLarge,
			fmt.Errorf("batch of %d exceeds the limit %d", len(req.Queries), s.cfg.MaxBatch))
		return
	}
	pub, ok := s.resolvePublication(w, req.ID, req.Wait, true)
	if !ok {
		return
	}
	// Charge before evaluating: a budget rejection must not pay for the
	// work it refuses, and nothing after this point can fail the request.
	client := clientID(r, req.Client)
	bres, ok := s.chargeExposure(w, client, pub.ID, int64(len(req.Queries)), budget.ClassQuery)
	if !ok {
		return
	}

	// Resolution is striped across the same worker width as evaluation: on
	// large batches the label→code translation costs as much as the cube
	// lookups, so it must not run single-threaded in front of the pool.
	qs := make([]query.Query, len(req.Queries))
	resolveErr := make([]error, len(req.Queries))
	par.Striped(len(req.Queries), s.cfg.QueryWorkers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			qs[i], resolveErr[i] = pub.Resolve(req.Queries[i])
		}
	})
	answers := pub.Marg.AnswerBatch(qs, pub.Req.P, s.cfg.QueryWorkers)

	out := QueryResponse{ID: pub.ID, Answers: make([]QueryAnswer, len(answers))}
	var errs uint64
	for i, a := range answers {
		aj := QueryAnswer{Count: a.Count, Estimate: a.Estimate}
		if resolveErr[i] != nil {
			aj = QueryAnswer{Error: resolveErr[i].Error()}
		} else if a.Err != nil {
			aj = QueryAnswer{Error: a.Err.Error()}
		}
		if aj.Error != "" {
			errs++
		}
		out.Answers[i] = aj
	}

	out.Client = client
	out.Charged = int64(len(req.Queries))
	s.fillLedger(&out, bres)

	s.queryBatches.Add(1)
	s.queriesAnswered.Add(uint64(len(req.Queries)))
	s.queryErrors.Add(errs)
	elapsed := time.Since(start)
	s.lat.Observe(elapsed)
	out.ServeMicros = elapsed.Microseconds()
	writeJSON(w, http.StatusOK, out)
}

// resolvePublication loads the ready publication behind id, handling the
// pending/failed states and — when reindex is set — the lazy rebuild of a
// dirty incremental entry's marginal index. Readers that only need the
// schema and entry state (the insert path, which would invalidate a fresh
// index immediately anyway) pass reindex = false.
func (s *Server) resolvePublication(w http.ResponseWriter, id string, wait, reindex bool) (*Publication, bool) {
	e := s.reg.get(id)
	if e == nil {
		WriteError(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("no publication %q", id))
		return nil, false
	}
	if e.state.Load() == statePending {
		if !wait {
			WriteError(w, http.StatusConflict, CodeBuilding,
				fmt.Errorf("publication %q is still building (retry, or set wait)", id))
			return nil, false
		}
		<-e.done
	}
	if e.state.Load() == stateFailed {
		msg := "publication failed"
		if m := e.failure.Load(); m != nil {
			msg = *m
		}
		WriteError(w, http.StatusBadGateway, CodeBuildFailed, fmt.Errorf("publication %q: %s", id, msg))
		return nil, false
	}
	if e.pub.Load() == nil {
		// A retry of a failed first build is in flight: done is already
		// closed but no publication exists yet.
		WriteError(w, http.StatusConflict, CodeRebuilding,
			fmt.Errorf("publication %q is rebuilding (retry shortly)", id))
		return nil, false
	}
	if reindex && e.inc != nil && e.dirty.Load() {
		pub, err := s.reindexIncremental(e)
		if err != nil {
			WriteError(w, http.StatusInternalServerError, CodeInternal, err)
			return nil, false
		}
		return pub, true
	}
	return e.pub.Load(), true
}

// refreshRequest is the body of POST /refresh.
type refreshRequest struct {
	ID   string `json:"id"`
	Wait bool   `json:"wait,omitempty"`
}

func (s *Server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	var req refreshRequest
	if !s.decode(w, r, &req) {
		return
	}
	e := s.reg.get(req.ID)
	if e == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no publication %q", req.ID))
		return
	}
	if req.Wait {
		if _, err := s.Refresh(req.ID); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, entryJSON(e, false))
		return
	}
	s.refreshes.Add(1)
	go s.sf.Do("refresh:"+req.ID, s.refreshRun(e, req.ID))
	writeJSON(w, http.StatusAccepted, entryJSON(e, false))
}

// Refresh republishes the publication behind id with a fresh generation and
// blocks until the rebuild settles — the waiting form of POST /refresh,
// which delegates here; concurrent refreshes of one id collapse into one
// rebuild via singleflight. It returns the entry so callers can read the
// refreshed publication.
func (s *Server) Refresh(id string) (*Entry, error) {
	e := s.reg.get(id)
	if e == nil {
		return nil, fmt.Errorf("serve: no publication %q", id)
	}
	s.refreshes.Add(1)
	if _, err, _ := s.sf.Do("refresh:"+id, s.refreshRun(e, id)); err != nil {
		return nil, err
	}
	return e, nil
}

// refreshRun builds the singleflight closure behind one refresh of an entry.
func (s *Server) refreshRun(e *Entry, id string) func() (any, error) {
	return func() (any, error) {
		<-e.done // a refresh of a still-building publication waits for it
		// Refreshing an entry whose build failed (or is being retried) IS
		// the retry; routing it through the shared buildMu path keeps two
		// rebuilds of one entry from ever interleaving their stores.
		if ch, _ := s.retryOrJoin(e); ch != nil {
			<-ch
			if e.state.Load() != stateReady {
				msg := "build failed"
				if m := e.failure.Load(); m != nil {
					msg = *m
				}
				s.refreshFailures.Add(1)
				return nil, fmt.Errorf("publication %q: %s", id, msg)
			}
			return e.pub.Load(), nil
		}
		// The entry is ready and cannot become failed while we rebuild
		// (only first-build/retry settles set that state, and none can be
		// in flight here), so the publication swap below is safe.
		old := e.pub.Load()
		pub, err := s.buildPublication(e, old.Generation+1)
		if err != nil {
			// The old publication keeps serving; surface the failure on the
			// entry (visible in /publications) and in /statsz rather than
			// dropping it.
			s.refreshFailures.Add(1)
			msg := "refresh: " + err.Error()
			e.failure.Store(&msg)
			return nil, err
		}
		e.pub.Store(pub)
		e.state.Store(stateReady)
		e.failure.Store(nil)
		if e.inc != nil {
			// Inserts may have landed between this refresh's snapshot and
			// the store (including a reindex swap the store just replaced).
			// Record counts only grow, so a mismatch against the snapshot
			// total means the index is stale: flag it so the next query
			// re-indexes on top of the refreshed publication.
			e.incMu.Lock()
			stale := e.inc.Stats().Records != pub.Meta.RecordsOut
			e.incMu.Unlock()
			if stale {
				e.dirty.Store(true)
			}
		}
		return pub, nil
	}
}

// insertRequest is the body of POST /insert: records as attribute → value
// label objects over the publication's original schema (all public
// attributes plus the sensitive attribute are required).
type insertRequest struct {
	ID      string              `json:"id"`
	Records []map[string]string `json:"records"`
	Wait    bool                `json:"wait,omitempty"`
}

type insertResponse struct {
	ID       string `json:"id"`
	Inserted int    `json:"inserted"`
	// Trials counts records published by spending a fresh perturbation
	// trial; Absorbed counts records folded in by duplicating an existing
	// perturbed record — no new trial, the streaming analogue of Scaling.
	Trials       int `json:"trials"`
	Absorbed     int `json:"absorbed"`
	TotalRecords int `json:"total_records"`
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if isBinary(r) {
		s.handleInsertBinary(w, r)
		return
	}
	var req insertRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Records) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("no records"))
		return
	}
	if len(req.Records) > s.cfg.MaxInsert {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("insert of %d exceeds the limit %d", len(req.Records), s.cfg.MaxInsert))
		return
	}
	pub, ok := s.resolvePublication(w, req.ID, req.Wait, false)
	if !ok {
		return
	}
	e := s.reg.get(req.ID)
	if e.inc == nil {
		WriteError(w, http.StatusConflict, CodeNotIncremental,
			fmt.Errorf("publication %q was published with method %q; only incremental publications accept inserts", req.ID, pub.Req.Method))
		return
	}
	schema := pub.Orig
	naIdx := schema.NAIndices()
	keys := make([][]uint16, 0, len(req.Records))
	sas := make([]uint16, 0, len(req.Records))
	for ri, rec := range req.Records {
		key := make([]uint16, len(naIdx))
		for ki, ai := range naIdx {
			label, ok := rec[schema.Attrs[ai].Name]
			if !ok {
				httpError(w, http.StatusBadRequest, fmt.Errorf("record %d: missing attribute %q", ri, schema.Attrs[ai].Name))
				return
			}
			code, err := schema.Attrs[ai].Code(label)
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("record %d: %v", ri, err))
				return
			}
			key[ki] = code
		}
		label, ok := rec[schema.SAAttr().Name]
		if !ok {
			httpError(w, http.StatusBadRequest, fmt.Errorf("record %d: missing sensitive attribute %q", ri, schema.SAAttr().Name))
			return
		}
		sa, err := schema.SAAttr().Code(label)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("record %d: %v", ri, err))
			return
		}
		keys = append(keys, key)
		sas = append(sas, sa)
	}

	resp, err := s.applyInsert(e, keys, sas)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	resp.ID = req.ID
	s.inserts.Add(uint64(resp.Inserted))
	s.absorbed.Add(uint64(resp.Absorbed))
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": s.now().Sub(s.start).Seconds(),
	})
}

// statszResponse is the /statsz body.
type statszResponse struct {
	Publications    int    `json:"publications"`
	Pending         int    `json:"pending"`
	PublishRequests uint64 `json:"publish_requests"`
	PublishRuns     uint64 `json:"publish_runs"`
	CacheHits       uint64 `json:"cache_hits"`
	Refreshes       uint64 `json:"refreshes"`
	RefreshFailures uint64 `json:"refresh_failures"`
	QueryBatches    uint64 `json:"query_batches"`
	QueriesAnswered uint64 `json:"queries_answered"`
	QueryErrors     uint64 `json:"query_errors"`
	Inserts         uint64 `json:"inserts"`
	InsertsAbsorbed uint64 `json:"inserts_absorbed"`
	// IngestAppends counts insert batches indexed by appending a delta
	// generation (the streaming fast path); it is deterministic for a
	// deterministic workload. Compactions counts completed background
	// generation-stack compactions — compaction timing is asynchronous, so
	// harnesses must treat this counter as advisory, never byte-compare it.
	IngestAppends uint64 `json:"ingest_appends"`
	Compactions   uint64 `json:"compactions"`
	// ReconstructBatches / Reconstructions count POST /reconstruct traffic
	// (batches and condition sets answered); Audits counts actual audit
	// sweeps run, AuditCacheHits responses served from the audit cache.
	ReconstructBatches uint64 `json:"reconstruct_batches"`
	Reconstructions    uint64 `json:"reconstructions"`
	Audits             uint64 `json:"audits"`
	AuditCacheHits     uint64 `json:"audit_cache_hits"`
	// Clients counts exactly tracked clients in the budget manager. It is
	// exact for those clients; once the count-min sketch absorbs an
	// untracked tail it is a lower bound on the distinct-client total
	// (sketch-resident clients are not enumerable).
	Clients int `json:"clients"`
	// TotalCharged is the lifetime sum of accepted exposure charges across
	// all clients — exact, and the same number a fleet router's /statsz
	// reports, so single-server and fleet surfaces stay consistent.
	TotalCharged int64 `json:"total_charged"`
	// Draining reports whether the drain gate is rejecting new work; InFlight
	// is the number of requests currently being served (including the /statsz
	// request reporting it).
	Draining bool  `json:"draining"`
	InFlight int64 `json:"in_flight"`
	// MaxClientQueries is the largest per-client cumulative answered-query
	// count among exactly tracked clients — the most exposed client's
	// total, the number the exposure warning compares against. Exact for
	// tracked clients; a promoted (seeded) client's total is a sketch
	// upper bound.
	MaxClientQueries int64 `json:"max_client_queries"`
	// Budget reports the exposure budget manager: quotas, occupancy,
	// rejection counters, and the sketch's error bounds.
	Budget        BudgetStatsz `json:"budget"`
	UptimeSeconds float64      `json:"uptime_seconds"`
	QueriesPerSec float64      `json:"queries_per_second"`
	// LatencyObservations is the total request count recorded in the
	// latency histogram — every successfully answered /query and
	// /reconstruct request adds exactly one. Workload harnesses use it as a
	// conservation check: at quiescence it must equal the number of such
	// requests issued, or the server dropped or double-counted one.
	LatencyObservations uint64 `json:"latency_observations"`
	LatencyUS           struct {
		Mean float64 `json:"mean"`
		P50  float64 `json:"p50"`
		P90  float64 `json:"p90"`
		P99  float64 `json:"p99"`
	} `json:"query_latency_us"`
}

// BudgetStatsz is the /statsz view of the exposure budget manager.
// Counts labeled exact are exact; sketch-resident clients (promoted past
// MaxTracked or never tracked) carry count-min upper bounds, whose error is
// bounded by SketchEpsilon × TotalCharged with probability 1 − SketchDelta.
type BudgetStatsz struct {
	Enforced         bool    `json:"enforced"`
	Quota            int64   `json:"quota"`
	TrustedQuota     int64   `json:"trusted_quota"`
	PublicationQuota int64   `json:"publication_quota"`
	WindowSeconds    float64 `json:"window_seconds"`
	// Occupancy is the most budget-consumed tracked client's window usage
	// as a fraction of its quota — 1.0 means someone is pinned at the limit.
	Occupancy float64 `json:"occupancy"`
	// TrackedClients hold exact ledgers; SeededClients were promoted out of
	// the sketch, so their ledgers are upper bounds until the window turns.
	TrackedClients      int     `json:"tracked_clients"`
	SeededClients       int     `json:"seeded_clients"`
	TrackedPublications int     `json:"tracked_publications"`
	Charges             uint64  `json:"charges"`
	RejectedClientQuota uint64  `json:"rejected_client_quota"`
	RejectedPubQuota    uint64  `json:"rejected_publication_quota"`
	RejectedDegraded    uint64  `json:"rejected_degraded"`
	Promotions          uint64  `json:"promotions"`
	Evictions           uint64  `json:"evictions"`
	SketchWidth         int     `json:"sketch_width"`
	SketchDepth         int     `json:"sketch_depth"`
	SketchEpsilon       float64 `json:"sketch_epsilon"`
	SketchDelta         float64 `json:"sketch_delta"`
	MemoryBytes         int64   `json:"memory_bytes"`
}

// BudgetStatszOf maps a manager snapshot onto the /statsz shape.
func BudgetStatszOf(bs budget.Stats) BudgetStatsz {
	return BudgetStatsz{
		Enforced:            bs.Enforced,
		Quota:               bs.Quota,
		TrustedQuota:        bs.TrustedQuota,
		PublicationQuota:    bs.PublicationQuota,
		WindowSeconds:       bs.WindowSeconds,
		Occupancy:           bs.Occupancy,
		TrackedClients:      bs.Tracked,
		SeededClients:       bs.Seeded,
		TrackedPublications: bs.TrackedPubs,
		Charges:             bs.Charges,
		RejectedClientQuota: bs.RejectedClientQuota,
		RejectedPubQuota:    bs.RejectedPublication,
		RejectedDegraded:    bs.RejectedDegraded,
		Promotions:          bs.Promotions,
		Evictions:           bs.Evictions,
		SketchWidth:         bs.SketchWidth,
		SketchDepth:         bs.SketchDepth,
		SketchEpsilon:       bs.SketchEpsilon,
		SketchDelta:         bs.SketchDelta,
		MemoryBytes:         bs.MemoryBytes,
	}
}

// Stats snapshots the serving counters (also used by tests).
func (s *Server) Stats() statszResponse {
	var out statszResponse
	out.Publications, out.Pending = s.reg.counts()
	out.PublishRequests = s.publishRequests.Load()
	out.PublishRuns = s.publishRuns.Load()
	out.CacheHits = s.cacheHits.Load()
	out.Refreshes = s.refreshes.Load()
	out.RefreshFailures = s.refreshFailures.Load()
	out.QueryBatches = s.queryBatches.Load()
	out.QueriesAnswered = s.queriesAnswered.Load()
	out.QueryErrors = s.queryErrors.Load()
	out.Inserts = s.inserts.Load()
	out.InsertsAbsorbed = s.absorbed.Load()
	out.IngestAppends = s.ingestAppends.Load()
	out.Compactions = s.compactions.Load()
	out.ReconstructBatches = s.reconstructBatches.Load()
	out.Reconstructions = s.reconstructions.Load()
	out.Audits = s.audits.Load()
	out.AuditCacheHits = s.auditCacheHits.Load()
	bs := s.budget.Snapshot()
	out.Clients = bs.Tracked
	out.MaxClientQueries = bs.MaxClientTotal
	out.TotalCharged = bs.TotalCharged
	out.Budget = BudgetStatszOf(bs)
	out.Draining = s.draining.Load()
	out.InFlight = s.inflight.Load()
	up := s.now().Sub(s.start).Seconds()
	out.UptimeSeconds = up
	if up > 0 {
		out.QueriesPerSec = float64(out.QueriesAnswered) / up
	}
	out.LatencyObservations = s.lat.Count()
	out.LatencyUS.Mean = float64(s.lat.Mean().Nanoseconds()) / 1000
	out.LatencyUS.P50 = float64(s.lat.Quantile(0.50).Nanoseconds()) / 1000
	out.LatencyUS.P90 = float64(s.lat.Quantile(0.90).Nanoseconds()) / 1000
	out.LatencyUS.P99 = float64(s.lat.Quantile(0.99).Nanoseconds()) / 1000
	return out
}

// Lookup returns the registry entry behind a publication id, or nil.
// Exported for embedding layers (internal/fleet) that manage replicas
// in-process and need direct entry access — digest comparison, generation
// inspection — without an HTTP round-trip.
func (s *Server) Lookup(id string) *Entry { return s.reg.get(id) }

// LatencyObservations returns the request count recorded in the latency
// histogram (see statszResponse.LatencyObservations). Exported for workload
// harnesses that cross-check it against their own issued-request tallies.
func (s *Server) LatencyObservations() uint64 { return s.lat.Count() }

// ClientExposure returns one client's cumulative charged query count (0 for
// a client the server has never answered). Exported so workload harnesses
// can verify the exposure ledger against the charges their clients observed.
// Exact for clients the budget manager tracks exactly; a count-min upper
// bound once the client has been folded into the sketch.
func (s *Server) ClientExposure(client string) int64 {
	total, _ := s.budget.Estimate(client)
	return total
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// --- exposure accounting ---

// clientID picks the exposure-accounting identity: explicit header, then
// request body, then the remote IP.
func clientID(r *http.Request, bodyClient string) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	if bodyClient != "" {
		return bodyClient
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// chargeExposure charges n exposure units for client against pub before any
// evaluation work happens. On rejection it writes the typed budget_exhausted
// response — HTTP 429 with a Retry-After computed from the sliding window —
// and returns ok=false; the rejected request is never charged.
func (s *Server) chargeExposure(w http.ResponseWriter, client, pubID string, n int64, class budget.Class) (budget.Result, bool) {
	res := s.budget.Charge(client, pubID, n, class)
	if res.OK {
		return res, true
	}
	err := fmt.Errorf("client %q over exposure budget (%s): window usage %d + charge %d exceeds quota %d",
		client, res.Reason, res.WindowUsed, n, res.Quota)
	WriteErrorRetryAfter(w, http.StatusTooManyRequests, CodeBudgetExhausted, err, res.RetryAfter)
	return res, false
}

// ledgerValues converts a budget charge result into the response ledger
// numbers: the cumulative client total, the remaining window budget (-1 when
// enforcement is disabled), whether those figures are exact or sketch upper
// bounds, and whether the total crossed the operator warning threshold.
func (s *Server) ledgerValues(res budget.Result) (total, remaining int64, exact, warn bool) {
	total = res.Total
	remaining = res.Remaining
	if remaining == budget.Unlimited {
		remaining = -1
	}
	return total, remaining, res.Exact, s.cfg.ExposureWarn > 0 && total > s.cfg.ExposureWarn
}

// fillLedger copies a budget charge result into a query response.
func (s *Server) fillLedger(out *QueryResponse, res budget.Result) {
	out.ClientQueries, out.BudgetRemaining, out.BudgetExact, out.ExposureWarning = s.ledgerValues(res)
}

// --- JSON plumbing ---

// maxBodyBytes bounds request bodies (a 100K-record insert of wide labels
// fits comfortably).
const maxBodyBytes = 64 << 20

func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(dst); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
