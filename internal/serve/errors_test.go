package serve

import (
	"net/http"
	"testing"
)

// TestErrorTaxonomy drives every taxonomy path a router depends on: each
// failure must carry its stable code, the legacy error field, and — for
// retryable codes — a Retry-After header.
func TestErrorTaxonomy(t *testing.T) {
	_, ts := startServer(t, Config{MaxBatch: 2})
	var pub publicationJSON
	if code := post(t, ts.URL+"/publish", medicalRequest(), &pub); code != http.StatusOK {
		t.Fatalf("publish returned %d", code)
	}

	cases := []struct {
		name       string
		path       string
		body       any
		wantStatus int
		wantCode   ErrorCode
	}{
		{"unknown id", "/query", map[string]any{"id": "nope", "queries": []QueryJSON{{SA: "Flu"}}},
			http.StatusNotFound, CodeNotFound},
		{"empty batch", "/query", map[string]any{"id": pub.ID},
			http.StatusBadRequest, CodeBadRequest},
		{"oversized batch", "/query", map[string]any{"id": pub.ID, "queries": make([]QueryJSON, 3)},
			http.StatusRequestEntityTooLarge, CodeTooLarge},
		{"empty subsets", "/reconstruct", map[string]any{"id": pub.ID},
			http.StatusBadRequest, CodeBadRequest},
		{"insert into sps", "/insert", map[string]any{"id": pub.ID, "records": []map[string]string{{"x": "y"}}},
			http.StatusConflict, CodeNotIncremental},
		{"bad audit trials", "/audit", map[string]any{"id": pub.ID, "trials": -1},
			http.StatusBadRequest, CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+tc.path, "application/json", jsonBody(t, tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			var eb ErrorBody
			decodeBody(t, resp, &eb)
			if eb.Code != tc.wantCode {
				t.Fatalf("code = %q, want %q", eb.Code, tc.wantCode)
			}
			if eb.Message == "" || eb.Error != eb.Message {
				t.Fatalf("message %q / error %q: legacy mirror broken", eb.Message, eb.Error)
			}
			if tc.wantCode.Retryable() && resp.Header.Get("Retry-After") == "" {
				t.Fatal("retryable code without Retry-After header")
			}
		})
	}
}

// TestMethodNotAllowed covers the decode() gate shared by every POST handler.
func TestMethodNotAllowed(t *testing.T) {
	_, ts := startServer(t, Config{})
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query = %d, want 405", resp.StatusCode)
	}
	var eb ErrorBody
	decodeBody(t, resp, &eb)
	if eb.Code != CodeMethodNotAllowed {
		t.Fatalf("code = %q, want %q", eb.Code, CodeMethodNotAllowed)
	}
}

// TestDecodeErrorCode covers the typed decode and its status fallbacks.
func TestDecodeErrorCode(t *testing.T) {
	cases := []struct {
		status int
		body   string
		want   ErrorCode
	}{
		{400, `{"code":"building","message":"x","error":"x"}`, CodeBuilding}, // body wins
		{404, `not json`, CodeNotFound},
		{405, ``, CodeMethodNotAllowed},
		{409, `{}`, CodeBuilding},
		{413, ``, CodeTooLarge},
		{429, ``, CodeOverloaded},
		{503, ``, CodeUnavailable},
		{500, ``, CodeInternal},
		{418, ``, CodeBadRequest},
	}
	for _, tc := range cases {
		if got := DecodeErrorCode(tc.status, []byte(tc.body)); got != tc.want {
			t.Errorf("DecodeErrorCode(%d, %q) = %q, want %q", tc.status, tc.body, got, tc.want)
		}
	}
}

// TestRetryableSplit pins the retryable/permanent partition the fleet router's
// failover policy is built on.
func TestRetryableSplit(t *testing.T) {
	retryable := []ErrorCode{CodeBuilding, CodeRebuilding, CodeDraining, CodeInternal, CodeUnavailable, CodeOverloaded}
	permanent := []ErrorCode{CodeBadRequest, CodeMethodNotAllowed, CodeNotFound, CodeTooLarge,
		CodeBuildFailed, CodeNotIncremental, CodeNoGroups, CodeCapacity, CodeUnsupported}
	for _, c := range retryable {
		if !c.Retryable() {
			t.Errorf("%q should be retryable", c)
		}
	}
	for _, c := range permanent {
		if c.Retryable() {
			t.Errorf("%q should be permanent", c)
		}
	}
}
