package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"
)

// This file is the server's error taxonomy: every handler failure maps to a
// stable typed code carried in the JSON body, so clients — above all the
// internal/fleet router — can distinguish retryable conditions (a build
// still in flight, a draining process) from permanent ones (validation, a
// deterministic build failure) without parsing prose. The wire contract is
// ErrorBody; the code set below is append-only.

// ErrorCode classifies one request failure.
type ErrorCode string

// The stable code set. Codes through CodeInternal are emitted by
// serve.Server itself; the trailing three are reserved for routing layers
// (internal/fleet) that speak the same envelope.
const (
	CodeBadRequest       ErrorCode = "bad_request"        // malformed body or invalid parameters
	CodeMethodNotAllowed ErrorCode = "method_not_allowed" // wrong HTTP verb
	CodeNotFound         ErrorCode = "not_found"          // unknown publication id
	CodeTooLarge         ErrorCode = "too_large"          // batch beyond MaxBatch / MaxInsert
	CodeBuilding         ErrorCode = "building"           // publication still building (retry or wait)
	CodeRebuilding       ErrorCode = "rebuilding"         // failed first build being retried
	CodeBuildFailed      ErrorCode = "build_failed"       // the build settled with an error
	CodeNotIncremental   ErrorCode = "not_incremental"    // /insert into a non-incremental publication
	CodeNoGroups         ErrorCode = "no_groups"          // /audit on a publication without a raw snapshot
	CodeCapacity         ErrorCode = "capacity"           // registry publication cap reached
	CodeDraining         ErrorCode = "draining"           // server is shutting down gracefully
	CodeBudgetExhausted  ErrorCode = "budget_exhausted"   // exposure budget quota refused the charge
	CodeInternal         ErrorCode = "internal"           // unexpected server-side failure

	CodeUnavailable ErrorCode = "unavailable" // fleet: no replica of the publication could answer
	CodeOverloaded  ErrorCode = "overloaded"  // fleet: load shed, all replicas at capacity
	CodeUnsupported ErrorCode = "unsupported" // fleet: endpoint not served by this topology
)

// Retryable reports whether a failure with this code is transient: the same
// request may succeed later (or on another replica) without modification.
// Validation failures, unknown ids, oversized batches, and deterministic
// build failures are permanent — retrying them only burns capacity.
func (c ErrorCode) Retryable() bool {
	switch c {
	case CodeBuilding, CodeRebuilding, CodeDraining, CodeBudgetExhausted, CodeInternal,
		CodeUnavailable, CodeOverloaded:
		return true
	}
	return false
}

// ErrorBody is the stable JSON error envelope: {code, message}. Error
// mirrors Message so pre-taxonomy clients that decode {"error": ...} keep
// working.
type ErrorBody struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
	Error   string    `json:"error"`
}

// Sentinel errors for conditions programmatic callers (Publish, the fleet
// router) need to distinguish without string matching.
var (
	// ErrCapacity is wrapped by the registry when the distinct-publication
	// cap rejects a new key.
	ErrCapacity = errors.New("publication limit reached")
	// ErrDraining is the drain gate's rejection.
	ErrDraining = errors.New("server is draining")
)

// retryAfterSecs is the Retry-After hint attached to transient rejections
// that have no better estimate of their own.
const retryAfterSecs = "1"

// WriteError renders one typed failure. Transient codes carry a Retry-After
// header so well-behaved clients back off instead of hammering.
func WriteError(w http.ResponseWriter, status int, code ErrorCode, err error) {
	if code.Retryable() {
		w.Header().Set("Retry-After", retryAfterSecs)
	}
	msg := err.Error()
	writeJSON(w, status, ErrorBody{Code: code, Message: msg, Error: msg})
}

// WriteErrorRetryAfter is WriteError with a computed Retry-After instead of
// the generic one-second hint: budget rejections derive it from the sliding
// window, load shedding from the backoff configuration. The header is in
// whole seconds, rounded up, never below one — a sub-second wait still must
// not invite an immediate retry.
func WriteErrorRetryAfter(w http.ResponseWriter, status int, code ErrorCode, err error, retryAfter time.Duration) {
	secs := int64((retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	msg := err.Error()
	writeJSON(w, status, ErrorBody{Code: code, Message: msg, Error: msg})
}

// DecodeErrorCode extracts the typed code from an error response, falling
// back to a status-derived classification for bodies that predate the
// taxonomy (or are not JSON at all — a proxy's bare 502, say).
func DecodeErrorCode(status int, body []byte) ErrorCode {
	var eb ErrorBody
	if json.Unmarshal(body, &eb) == nil && eb.Code != "" {
		return eb.Code
	}
	switch {
	case status == http.StatusNotFound:
		return CodeNotFound
	case status == http.StatusMethodNotAllowed:
		return CodeMethodNotAllowed
	case status == http.StatusConflict:
		return CodeBuilding
	case status == http.StatusRequestEntityTooLarge:
		return CodeTooLarge
	case status == http.StatusTooManyRequests:
		return CodeOverloaded
	case status == http.StatusServiceUnavailable:
		return CodeUnavailable
	case status >= 500:
		return CodeInternal
	default:
		return CodeBadRequest
	}
}

// httpError is the legacy single-argument writer: status-derived code. New
// call sites should pass an explicit code via WriteError.
func httpError(w http.ResponseWriter, status int, err error) {
	WriteError(w, status, statusCode(status), err)
}

// statusCode maps a bare HTTP status onto the taxonomy for call sites that
// have no more specific classification.
func statusCode(status int) ErrorCode {
	switch {
	case status == http.StatusNotFound:
		return CodeNotFound
	case status == http.StatusMethodNotAllowed:
		return CodeMethodNotAllowed
	case status == http.StatusRequestEntityTooLarge:
		return CodeTooLarge
	case status >= 500:
		return CodeInternal
	default:
		return CodeBadRequest
	}
}
