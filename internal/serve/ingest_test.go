package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/reconpriv/reconpriv/internal/datagen"
	"github.com/reconpriv/reconpriv/internal/wire"
)

// benchPost is the benchmark twin of post: send JSON, drain the response,
// return the status.
func benchPost(b *testing.B, url string, body any) int {
	b.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// insertBatch builds one deterministic batch of medical records, both as the
// JSON label form and the binary full-schema code form, from a shared stream
// — the two encodings of the same records, for cross-path equivalence tests.
func insertBatch(rng *rand.Rand, n int) (recs []map[string]string, codes [][]uint16) {
	schema := datagen.MedicalSchema()
	for i := 0; i < n; i++ {
		rec := make([]uint16, schema.NumAttrs())
		lab := make(map[string]string, schema.NumAttrs())
		for a := 0; a < schema.NumAttrs(); a++ {
			rec[a] = uint16(rng.Intn(schema.Attrs[a].Domain()))
			lab[schema.Attrs[a].Name] = schema.Attrs[a].Label(rec[a])
		}
		recs = append(recs, lab)
		codes = append(codes, rec)
	}
	return recs, codes
}

// publishIncremental publishes the standard incremental test publication.
func publishIncremental(t *testing.T, s *Server, size int) *Entry {
	t.Helper()
	req := medicalRequest()
	req.Method = MethodIncremental
	req.Size = size
	e, _, err := s.Publish(req, true)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// queryBattery answers every (Job, Disease) and (Gender, Disease) single-
// condition query — full coverage of the 1-dim cubes the medical publication
// serves — and returns the counts and raw estimate bits for bit-exact
// comparison across servers.
func queryBattery(t *testing.T, url, id string) (counts []int, estBits []uint64) {
	t.Helper()
	schema := datagen.MedicalSchema()
	var qs []QueryJSON
	for _, attr := range []int{0, 1} {
		for v := 0; v < schema.Attrs[attr].Domain(); v++ {
			for sa := 0; sa < schema.SADomain(); sa++ {
				qs = append(qs, QueryJSON{
					Conds: []CondJSON{{Attr: schema.Attrs[attr].Name, Value: schema.Attrs[attr].Label(uint16(v))}},
					SA:    schema.SAAttr().Label(uint16(sa)),
				})
			}
		}
	}
	var resp QueryResponse
	if code := post(t, url+"/query", queryRequest{ID: id, Queries: qs}, &resp); code != http.StatusOK {
		t.Fatalf("query battery returned %d", code)
	}
	for i, a := range resp.Answers {
		if a.Error != "" {
			t.Fatalf("battery query %d: %s", i, a.Error)
		}
		counts = append(counts, a.Count)
		estBits = append(estBits, math.Float64bits(a.Estimate))
	}
	return counts, estBits
}

// TestDeltaInsertMatchesLegacyReindex is the ingest golden test: the delta
// path (flush increments, append a marginal generation, overlay the raw
// groups) must serve the exact publication the legacy full-reindex path
// builds from a fresh snapshot — digest-identical, so the marginal
// checksums, metadata, and the full raw group dump all agree, not just the
// answers.
func TestDeltaInsertMatchesLegacyReindex(t *testing.T) {
	sDelta, tsDelta := startServer(t, Config{})
	sLegacy, tsLegacy := startServer(t, Config{IngestLegacyReindex: true})
	eD := publishIncremental(t, sDelta, 1000)
	eL := publishIncremental(t, sLegacy, 1000)

	rng := rand.New(rand.NewSource(42))
	total := 1000
	for batch := 0; batch < 6; batch++ {
		recs, _ := insertBatch(rng, 25+batch*10)
		total += len(recs)
		var insD, insL insertResponse
		if code := post(t, tsDelta.URL+"/insert", insertRequest{ID: eD.ID(), Records: recs}, &insD); code != http.StatusOK {
			t.Fatalf("delta insert returned %d", code)
		}
		if code := post(t, tsLegacy.URL+"/insert", insertRequest{ID: eL.ID(), Records: recs}, &insL); code != http.StatusOK {
			t.Fatalf("legacy insert returned %d", code)
		}
		// Both publishers consume the same RNG stream in the same order, so
		// the trial/absorb split must agree batch by batch.
		if insD.Trials != insL.Trials || insD.Absorbed != insL.Absorbed || insD.TotalRecords != insL.TotalRecords {
			t.Fatalf("batch %d accounting diverged: delta=%+v legacy=%+v", batch, insD, insL)
		}
	}

	// The legacy server re-indexes lazily: force it with a query, then
	// compare the full answer surface bit for bit.
	cD, bD := queryBattery(t, tsDelta.URL, eD.ID())
	cL, bL := queryBattery(t, tsLegacy.URL, eL.ID())
	for i := range cD {
		if cD[i] != cL[i] || bD[i] != bL[i] {
			t.Fatalf("answer %d diverged: delta count=%d est=%x, legacy count=%d est=%x",
				i, cD[i], bD[i], cL[i], bL[i])
		}
	}

	pubD, err := eD.Publication()
	if err != nil {
		t.Fatal(err)
	}
	pubL, err := eL.Publication()
	if err != nil {
		t.Fatal(err)
	}
	if pubD.Meta.Records != total || pubD.Meta.RecordsOut != total {
		t.Fatalf("delta meta not current: %+v, want %d records", pubD.Meta, total)
	}
	if dd, dl := pubD.Digest(), pubL.Digest(); dd != dl {
		t.Fatalf("digest diverged: delta %s (generations %d), legacy %s",
			dd, pubD.Marg.Generations(), dl)
	}

	st := sDelta.Stats()
	if st.IngestAppends != 6 {
		t.Fatalf("delta server made %d appends for 6 batches", st.IngestAppends)
	}
	if lst := sLegacy.Stats(); lst.IngestAppends != 0 {
		t.Fatalf("legacy server made %d delta appends, want 0", lst.IngestAppends)
	}
}

// TestCompactionByteIdentity inserts the same stream into servers whose only
// difference is the compaction threshold (disabled, aggressive, moderate)
// and requires the served publications to be digest-identical at every
// query worker width — compaction must be invisible except to the statsz
// counter.
func TestCompactionByteIdentity(t *testing.T) {
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		type variant struct {
			every int
			s     *Server
			ts    *httptest.Server
			e     *Entry
		}
		variants := []*variant{{every: -1}, {every: 1}, {every: 3}}
		for _, v := range variants {
			v.s, v.ts = startServer(t, Config{CompactEvery: v.every, QueryWorkers: workers, PipelineWorkers: workers})
			v.e = publishIncremental(t, v.s, 800)
		}

		rng := rand.New(rand.NewSource(int64(workers)))
		for batch := 0; batch < 8; batch++ {
			recs, _ := insertBatch(rng, 30)
			for _, v := range variants {
				if code := post(t, v.ts.URL+"/insert", insertRequest{ID: v.e.ID(), Records: recs}, nil); code != http.StatusOK {
					t.Fatalf("workers=%d compact_every=%d: insert returned %d", workers, v.every, code)
				}
			}
		}

		// The aggressive server must actually compact (the trigger is
		// deterministic, completion is async — poll briefly).
		deadline := time.Now().Add(5 * time.Second)
		for variants[1].s.Stats().Compactions == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("workers=%d: no compaction completed with compact_every=1", workers)
			}
			time.Sleep(time.Millisecond)
		}
		pub0, err := variants[0].e.Publication()
		if err != nil {
			t.Fatal(err)
		}
		if pub0.Marg.Generations() != 9 {
			t.Fatalf("workers=%d: disabled compaction holds %d generations, want 9", workers, pub0.Marg.Generations())
		}

		refCounts, refBits := queryBattery(t, variants[0].ts.URL, variants[0].e.ID())
		refDigest := pub0.Digest()
		for _, v := range variants[1:] {
			c, b := queryBattery(t, v.ts.URL, v.e.ID())
			for i := range refCounts {
				if c[i] != refCounts[i] || b[i] != refBits[i] {
					t.Fatalf("workers=%d compact_every=%d: answer %d diverged", workers, v.every, i)
				}
			}
			pub, err := v.e.Publication()
			if err != nil {
				t.Fatal(err)
			}
			if d := pub.Digest(); d != refDigest {
				t.Fatalf("workers=%d compact_every=%d: digest %s, want %s (generations %d)",
					workers, v.every, d, refDigest, pub.Marg.Generations())
			}
		}
	}
}

// TestBinaryInsertEquivalence feeds one server JSON label records and a twin
// the same records as binary code frames: accounting, digests, and answers
// must be indistinguishable. It then drives the binary decoder's rejection
// paths — errors are the JSON ErrorBody envelope even on the binary path.
func TestBinaryInsertEquivalence(t *testing.T) {
	sJSON, tsJSON := startServer(t, Config{})
	sBin, tsBin := startServer(t, Config{})
	eJ := publishIncremental(t, sJSON, 600)
	eB := publishIncremental(t, sBin, 600)
	schema := datagen.MedicalSchema()

	rng := rand.New(rand.NewSource(7))
	for batch := 0; batch < 4; batch++ {
		recs, codes := insertBatch(rng, 40)
		var insJ insertResponse
		if code := post(t, tsJSON.URL+"/insert", insertRequest{ID: eJ.ID(), Records: recs}, &insJ); code != http.StatusOK {
			t.Fatalf("json insert returned %d", code)
		}
		frame := (&wire.InsertReq{
			ID:      []byte(eB.ID()),
			Client:  []byte("firehose"),
			NAttrs:  schema.NumAttrs(),
			Records: codes,
		}).Append(nil)
		status, body, ct := postBinary(t, tsBin.URL+"/insert", frame)
		if status != http.StatusOK || ct != wire.ContentType {
			t.Fatalf("binary insert returned %d (%s): %s", status, ct, body)
		}
		var insB wire.InsertResp
		if err := insB.Decode(body); err != nil {
			t.Fatalf("decoding binary insert response: %v", err)
		}
		if string(insB.ID) != eB.ID() || string(insB.Client) != "firehose" {
			t.Fatalf("binary insert echo: id=%q client=%q", insB.ID, insB.Client)
		}
		if int(insB.Inserted) != insJ.Inserted || int(insB.Trials) != insJ.Trials ||
			int(insB.Absorbed) != insJ.Absorbed || int(insB.TotalRecords) != insJ.TotalRecords {
			t.Fatalf("batch %d accounting diverged: json=%+v binary=%+v", batch, insJ, insB)
		}
	}

	pubJ, err := eJ.Publication()
	if err != nil {
		t.Fatal(err)
	}
	pubB, err := eB.Publication()
	if err != nil {
		t.Fatal(err)
	}
	if pubJ.Digest() != pubB.Digest() {
		t.Fatalf("digest diverged between JSON and binary ingest: %s vs %s", pubJ.Digest(), pubB.Digest())
	}
	cJ, bJ := queryBattery(t, tsJSON.URL, eJ.ID())
	cB, bB := queryBattery(t, tsBin.URL, eB.ID())
	for i := range cJ {
		if cJ[i] != cB[i] || bJ[i] != bB[i] {
			t.Fatalf("answer %d diverged between JSON and binary ingest", i)
		}
	}

	// Rejection paths. Every case must come back as the JSON error envelope
	// with a stable code, and leave the publication untouched.
	before := sBin.Stats().Inserts
	badDomain := [][]uint16{{0, 0, uint16(schema.SADomain())}}
	spsEntry, _, err := sBin.Publish(medicalRequest(), true)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		frame  []byte
		status int
		code   ErrorCode
	}{
		{"garbage", []byte("not a frame"), http.StatusBadRequest, CodeBadRequest},
		{"empty batch", (&wire.InsertReq{ID: []byte(eB.ID()), NAttrs: 3}).Append(nil), http.StatusBadRequest, CodeBadRequest},
		{"wrong arity", (&wire.InsertReq{ID: []byte(eB.ID()), NAttrs: 2, Records: [][]uint16{{0, 0}}}).Append(nil), http.StatusBadRequest, CodeBadRequest},
		{"sa out of domain", (&wire.InsertReq{ID: []byte(eB.ID()), NAttrs: 3, Records: badDomain}).Append(nil), http.StatusBadRequest, CodeBadRequest},
		{"na out of domain", (&wire.InsertReq{ID: []byte(eB.ID()), NAttrs: 3, Records: [][]uint16{{uint16(schema.Attrs[0].Domain()), 0, 0}}}).Append(nil), http.StatusBadRequest, CodeBadRequest},
		{"not incremental", (&wire.InsertReq{ID: []byte(spsEntry.ID()), NAttrs: 3, Records: [][]uint16{{0, 0, 0}}}).Append(nil), http.StatusConflict, CodeNotIncremental},
	}
	for _, tc := range cases {
		status, body, ct := postBinary(t, tsBin.URL+"/insert", tc.frame)
		if status != tc.status {
			t.Fatalf("%s: status %d, want %d (%s)", tc.name, status, tc.status, body)
		}
		if ct != "application/json" {
			t.Fatalf("%s: error content type %q, want JSON envelope", tc.name, ct)
		}
		var eb ErrorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Code != tc.code {
			t.Fatalf("%s: error body %s (parse err %v), want code %s", tc.name, body, err, tc.code)
		}
	}
	if after := sBin.Stats().Inserts; after != before {
		t.Fatalf("rejected frames inserted records: %d -> %d", before, after)
	}
}

// TestConcurrentInsertQueryCompact hammers one incremental publication with
// parallel inserts, queries, and (via CompactEvery=1) near-continuous
// background compaction. Meaningful under -race; the end-state assertions
// check conservation — every accepted record is eventually served.
func TestConcurrentInsertQueryCompact(t *testing.T) {
	s, ts := startServer(t, Config{CompactEvery: 1})
	e := publishIncremental(t, s, 500)
	schema := datagen.MedicalSchema()

	const inserters, batches, perBatch = 4, 8, 20
	var wg sync.WaitGroup
	for g := 0; g < inserters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for b := 0; b < batches; b++ {
				recs, _ := insertBatch(rng, perBatch)
				var ins insertResponse
				if code := post(t, ts.URL+"/insert", insertRequest{ID: e.ID(), Records: recs}, &ins); code != http.StatusOK {
					t.Errorf("inserter %d: insert returned %d", g, code)
					return
				}
				if ins.Trials+ins.Absorbed != perBatch {
					t.Errorf("inserter %d: accounting %+v", g, ins)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				var resp QueryResponse
				code := post(t, ts.URL+"/query", queryRequest{ID: e.ID(), Queries: []QueryJSON{{
					Conds: []CondJSON{{Attr: "Job", Value: schema.Attrs[1].Label(uint16(i % schema.Attrs[1].Domain()))}},
					SA:    schema.SAAttr().Label(uint16(i % schema.SADomain())),
				}}}, &resp)
				if code != http.StatusOK {
					t.Errorf("querier %d: query returned %d", g, code)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// Quiesce: one query reconciles any delta lost to a compaction race,
	// then the metadata must account for every accepted record.
	queryBattery(t, ts.URL, e.ID())
	total := 500 + inserters*batches*perBatch
	var info publicationJSON
	if code := get(t, fmt.Sprintf("%s/publications?id=%s", ts.URL, e.ID()), &info); code != http.StatusOK {
		t.Fatal("publication lookup failed")
	}
	if info.Meta == nil || info.Meta.Records != total || info.Meta.RecordsOut != total {
		t.Fatalf("conservation violated: meta %+v, want %d records", info.Meta, total)
	}
	if st := s.Stats(); st.QueryErrors != 0 {
		t.Fatalf("%d per-query errors under concurrency", st.QueryErrors)
	}
}

// BenchmarkSustainedIngest measures the end-to-end /insert firehose under
// the mixed workload the delta path exists for: each iteration lands one
// batch and immediately queries, so the legacy variant pays its full
// re-index on every iteration while the delta variant appends a generation.
// CI's bench smoke runs this; rpbench -exp ingest is the calibrated version.
func BenchmarkSustainedIngest(b *testing.B) {
	for _, mode := range []struct {
		name   string
		legacy bool
	}{{"delta", false}, {"legacy", true}} {
		b.Run(mode.name, func(b *testing.B) {
			s := New(Config{IngestLegacyReindex: mode.legacy})
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()
			req := medicalRequest()
			req.Method = MethodIncremental
			req.Size = 20000
			e, _, err := s.Publish(req, true)
			if err != nil {
				b.Fatal(err)
			}
			schema := datagen.MedicalSchema()
			rng := rand.New(rand.NewSource(3))
			const perBatch = 100
			query := queryRequest{ID: e.ID(), Queries: []QueryJSON{{
				Conds: []CondJSON{{Attr: "Job", Value: schema.Attrs[1].Label(0)}},
				SA:    schema.SAAttr().Label(0),
			}}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				recs, _ := insertBatch(rng, perBatch)
				if code := benchPost(b, ts.URL+"/insert", insertRequest{ID: e.ID(), Records: recs}); code != http.StatusOK {
					b.Fatalf("insert returned %d", code)
				}
				if code := benchPost(b, ts.URL+"/query", query); code != http.StatusOK {
					b.Fatalf("query returned %d", code)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(perBatch*b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}
