package serve

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"github.com/reconpriv/reconpriv/internal/budget"
	"github.com/reconpriv/reconpriv/internal/core"
	"github.com/reconpriv/reconpriv/internal/dataset"
	"github.com/reconpriv/reconpriv/internal/par"
	"github.com/reconpriv/reconpriv/internal/query"
	"github.com/reconpriv/reconpriv/internal/reconstruct"
)

// This file is the served adversary surface: POST /reconstruct answers
// batched full-distribution reconstructions through the publication's
// engine, and POST /audit runs the parallel per-group privacy audit the
// paper's criterion is defined against. Both read only immutable
// publication state, so they never contend with queries or publishes.

// reconstructRequest is the body of POST /reconstruct.
type reconstructRequest struct {
	ID string `json:"id"`
	// Client identifies the reconstructing party for exposure accounting
	// (X-Client-ID header takes precedence, remote IP is the fallback).
	Client string `json:"client,omitempty"`
	// Subsets are the condition sets to reconstruct over, one result each.
	Subsets [][]CondJSON `json:"subsets"`
	// Clamp projects every estimate onto the probability simplex (negative
	// entries floored at 0, renormalized); the raw unbiased MLE is the
	// default.
	Clamp bool `json:"clamp,omitempty"`
	// Wait blocks until a pending publication is ready instead of failing
	// with 409.
	Wait bool `json:"wait,omitempty"`
}

// Reconstruction is one subset's served reconstruction. Exported (with
// ReconstructResponse) so routing layers like internal/fleet can decode,
// verify, and re-emit the body without a private mirror.
type Reconstruction struct {
	// Size is the observed subset size |S*|; 0 with no freqs means the
	// subset is empty.
	Size int `json:"size"`
	// Freqs is the estimated sensitive-value distribution keyed by label.
	Freqs map[string]float64 `json:"freqs,omitempty"`
	Error string             `json:"error,omitempty"`
}

// ReconstructResponse is the body of a successful POST /reconstruct.
type ReconstructResponse struct {
	ID      string           `json:"id"`
	Results []Reconstruction `json:"results"`
	Client  string           `json:"client"`
	// Charged is the exposure charge of this batch alone (subsets × the
	// sensitive-attribute domain size); ClientQueries is the client's
	// cumulative exposure after it: every reconstruction reveals the
	// subset's full m-value histogram, so it is charged as m count queries.
	Charged       int64 `json:"charged"`
	ClientQueries int64 `json:"client_queries"`
	// BudgetRemaining is the window budget left after this charge, -1 when
	// enforcement is disabled; BudgetExact says whether the counts are exact
	// rather than sketch upper bounds.
	BudgetRemaining int64 `json:"budget_remaining"`
	BudgetExact     bool  `json:"budget_exact,omitempty"`
	ExposureWarning bool  `json:"exposure_warning,omitempty"`
	ServeMicros     int64 `json:"serve_us"`
}

func (s *Server) handleReconstruct(w http.ResponseWriter, r *http.Request) {
	if isBinary(r) {
		s.handleReconstructBinary(w, r)
		return
	}
	start := time.Now()
	var req reconstructRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Subsets) == 0 {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("empty subset batch"))
		return
	}
	if len(req.Subsets) > s.cfg.MaxBatch {
		WriteError(w, http.StatusRequestEntityTooLarge, CodeTooLarge,
			fmt.Errorf("batch of %d exceeds the limit %d", len(req.Subsets), s.cfg.MaxBatch))
		return
	}
	pub, ok := s.resolvePublication(w, req.ID, req.Wait, true)
	if !ok {
		return
	}
	// Charge before evaluating. Reconstruction is the first class shed as a
	// client nears quota — the batch reveals subsets × m histogram cells.
	client := clientID(r, req.Client)
	charged := int64(len(req.Subsets)) * int64(pub.Marg.SADomain())
	bres, ok := s.chargeExposure(w, client, pub.ID, charged, budget.ClassReconstruct)
	if !ok {
		return
	}

	// Label resolution is striped across the evaluation width, mirroring
	// the /query path: on large batches it costs as much as the engine
	// lookups.
	sets := make([][]query.Cond, len(req.Subsets))
	resolveErr := make([]error, len(req.Subsets))
	par.Striped(len(req.Subsets), s.cfg.QueryWorkers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			sets[i], resolveErr[i] = pub.ResolveConds(req.Subsets[i])
		}
	})
	recs := pub.Eng.ReconstructBatch(sets, reconstruct.BatchOptions{
		Workers: s.cfg.QueryWorkers,
		Clamp:   req.Clamp,
	})

	sa := pub.Orig.SAAttr()
	out := ReconstructResponse{ID: pub.ID, Results: make([]Reconstruction, len(recs))}
	var errs uint64
	for i, rec := range recs {
		rj := Reconstruction{Size: rec.Size}
		switch {
		case resolveErr[i] != nil:
			rj = Reconstruction{Error: resolveErr[i].Error()}
		case rec.Err != nil:
			rj = Reconstruction{Error: rec.Err.Error()}
		case rec.Freqs != nil:
			rj.Freqs = make(map[string]float64, len(rec.Freqs))
			for v, f := range rec.Freqs {
				rj.Freqs[sa.Label(uint16(v))] = f
			}
		}
		if rj.Error != "" {
			errs++
		}
		out.Results[i] = rj
	}

	out.Client = client
	out.Charged = charged
	out.ClientQueries, out.BudgetRemaining, out.BudgetExact, out.ExposureWarning = s.ledgerValues(bres)

	s.reconstructBatches.Add(1)
	s.reconstructions.Add(uint64(len(req.Subsets)))
	s.queryErrors.Add(errs)
	elapsed := time.Since(start)
	s.lat.Observe(elapsed)
	out.ServeMicros = elapsed.Microseconds()
	writeJSON(w, http.StatusOK, out)
}

// Audit endpoint defaults and caps.
const (
	defaultAuditTrials = 500
	maxAuditTrials     = 20000
	defaultAuditTop    = 20
	maxAuditTop        = 1000
	// maxAuditGroups caps an explicit max_groups request. 0 still means
	// "sweep every group", so the cap is not a work bound — it rejects
	// nonsensical explicit limits (far beyond any real group count) that
	// indicate a malformed client rather than a large sweep.
	maxAuditGroups = 1 << 20
	// maxCachedAudits bounds the audit result cache; beyond it an arbitrary
	// entry is dropped (audits are cheap to recompute and keyed
	// deterministically, so eviction policy hardly matters).
	maxCachedAudits = 256
	// auditTolerance is the Monte-Carlo slack when comparing empirical
	// tails against their Chernoff bounds.
	auditTolerance = 0.02
)

// auditRequest is the body of POST /audit.
type auditRequest struct {
	ID string `json:"id"`
	// Trials is the Monte-Carlo trial count per group (default 500, max
	// 20000).
	Trials int `json:"trials,omitempty"`
	// MaxGroups caps the audited groups, largest first; 0 sweeps every
	// personal group.
	MaxGroups int `json:"max_groups,omitempty"`
	// Top is how many per-group rows to return, largest groups first
	// (default 20, max 1000). Summary counters always cover every audited
	// group.
	Top int `json:"top,omitempty"`
	// Seed drives the audit's simulation randomness (default 1). Equal
	// (publication generation, trials, max_groups, seed) requests are
	// answered from cache.
	Seed int64 `json:"seed,omitempty"`
	// Wait blocks until a pending publication is ready instead of failing
	// with 409.
	Wait bool `json:"wait,omitempty"`
}

// auditGroupJSON is one personal group's audit row.
type auditGroupJSON struct {
	Key        string  `json:"key"`
	Size       int     `json:"size"`
	F          float64 `json:"f"`           // frequency of the audited (most frequent) value
	SG         float64 `json:"sg"`          // Eq. 10 threshold
	Violating  bool    `json:"violating"`   // Corollary 4 verdict on the raw group
	UpperEmp   float64 `json:"upper_emp"`   // empirical Pr[(F'-f)/f > λ]
	LowerEmp   float64 `json:"lower_emp"`   // empirical Pr[(F'-f)/f < -λ]
	UpperBound float64 `json:"upper_bound"` // Chernoff U (Corollary 3)
	LowerBound float64 `json:"lower_bound"` // Chernoff L (Corollary 3)
}

type auditResponse struct {
	ID         string `json:"id"`
	Generation int    `json:"generation"`
	Method     string `json:"method"`
	// SPS reports whether violating groups were simulated through the SPS
	// process (true for sps publications) or plain uniform perturbation.
	SPS       bool  `json:"sps"`
	Trials    int   `json:"trials"`
	Seed      int64 `json:"seed"`
	MaxGroups int   `json:"max_groups,omitempty"`
	// GroupsAudited counts the swept personal groups; Violating those
	// failing the Corollary 4 test on the raw data.
	GroupsAudited int `json:"groups_audited"`
	Violating     int `json:"violating_groups"`
	// BoundViolations counts plain-perturbed groups whose empirical tail
	// exceeded its Chernoff bound beyond the Monte-Carlo tolerance — zero
	// in a correct implementation. Under SPS, violating groups are
	// deliberately pushed past their raw-size bounds, so only
	// non-violating (plain-perturbed) groups are counted there.
	BoundViolations int              `json:"bound_violations"`
	AuditMS         float64          `json:"audit_ms"`
	Cached          bool             `json:"cached,omitempty"`
	Top             []auditGroupJSON `json:"top"`
}

// auditCacheKey identifies one audit result: everything that changes the
// output, including the publication generation (a refresh invalidates).
func auditCacheKey(pub *Publication, trials, maxGroups int, seed int64) string {
	return fmt.Sprintf("%s/g%d/t%d/m%d/s%d", pub.ID, pub.Generation, trials, maxGroups, seed)
}

func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	var req auditRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Trials == 0 {
		req.Trials = defaultAuditTrials
	}
	if req.Trials < 1 || req.Trials > maxAuditTrials {
		httpError(w, http.StatusBadRequest, fmt.Errorf("trials must be in [1,%d], got %d", maxAuditTrials, req.Trials))
		return
	}
	if req.MaxGroups < 0 || req.MaxGroups > maxAuditGroups {
		httpError(w, http.StatusBadRequest, fmt.Errorf("max_groups must be in [0,%d], got %d", maxAuditGroups, req.MaxGroups))
		return
	}
	if req.Top == 0 {
		req.Top = defaultAuditTop
	}
	if req.Top < 0 || req.Top > maxAuditTop {
		httpError(w, http.StatusBadRequest, fmt.Errorf("top must be in [0,%d], got %d", maxAuditTop, req.Top))
		return
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	pub, ok := s.resolvePublication(w, req.ID, req.Wait, true)
	if !ok {
		return
	}
	if pub.Groups == nil {
		WriteError(w, http.StatusConflict, CodeNoGroups,
			fmt.Errorf("publication %q has no raw group snapshot to audit", req.ID))
		return
	}

	key := auditCacheKey(pub, req.Trials, req.MaxGroups, req.Seed)
	if res := s.cachedAudit(key); res != nil {
		s.auditCacheHits.Add(1)
		writeAudit(w, res, true, req.Top)
		return
	}
	// Concurrent identical audits collapse into one sweep; the winner
	// populates the cache. auditRun distinguishes a run that executed the
	// sweep from one resolved by the inner cache double-check, and the
	// singleflight shared flag marks joiners — both are cache hits from the
	// caller's point of view.
	type auditRun struct {
		res       *auditResponse
		fromCache bool
	}
	v, err, shared := s.sf.Do("audit:"+key, func() (any, error) {
		if res := s.cachedAudit(key); res != nil {
			return &auditRun{res: res, fromCache: true}, nil
		}
		res, err := s.runAudit(pub, req)
		if err != nil {
			return nil, err
		}
		s.storeAudit(key, res)
		s.audits.Add(1)
		return &auditRun{res: res}, nil
	})
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	run := v.(*auditRun)
	cached := shared || run.fromCache
	if cached {
		s.auditCacheHits.Add(1)
	}
	writeAudit(w, run.res, cached, req.Top)
}

// writeAudit renders a cached-or-fresh audit result for one request: the
// shared result always carries the full maxAuditTop rows, and each response
// cuts its own Top — the row count is a presentation knob, not part of the
// cache identity.
func writeAudit(w http.ResponseWriter, res *auditResponse, cached bool, top int) {
	out := *res
	out.Cached = cached
	if top < len(out.Top) {
		out.Top = out.Top[:top]
	}
	writeJSON(w, http.StatusOK, out)
}

// runAudit executes the parallel group sweep for one publication.
func (s *Server) runAudit(pub *Publication, req auditRequest) (*auditResponse, error) {
	sps := pub.Req.Method == MethodSPS
	start := time.Now()
	rep, err := core.AuditSweep(req.Seed, pub.Groups, pub.Req.Params(), sps, req.Trials, req.MaxGroups, s.cfg.QueryWorkers)
	if err != nil {
		return nil, err
	}
	res := &auditResponse{
		ID:         pub.ID,
		Generation: pub.Generation,
		Method:     pub.Req.Method,
		SPS:        sps,
		Trials:     req.Trials,
		Seed:       req.Seed,
		MaxGroups:  req.MaxGroups,
		AuditMS:    float64(time.Since(start).Microseconds()) / 1000,
	}
	res.GroupsAudited = len(rep.Groups)
	for _, g := range rep.Groups {
		if g.Violating {
			res.Violating++
		}
		plainPerturbed := !sps || !g.Violating
		if plainPerturbed && (g.UpperEmp > g.UpperBound+auditTolerance || g.LowerEmp > g.LowerBound+auditTolerance) {
			res.BoundViolations++
		}
	}
	// Materialize rows to the cache-wide maximum; writeAudit cuts each
	// response down to its request's Top.
	top := maxAuditTop
	if top > len(rep.Groups) {
		top = len(rep.Groups)
	}
	res.Top = make([]auditGroupJSON, top)
	for i := 0; i < top; i++ {
		g := rep.Groups[i]
		res.Top[i] = auditGroupJSON{
			Key:        formatGroupKey(pub.Groups.Schema, g.Key),
			Size:       g.Size,
			F:          g.F,
			SG:         g.SG,
			Violating:  g.Violating,
			UpperEmp:   g.UpperEmp,
			LowerEmp:   g.LowerEmp,
			UpperBound: g.UpperBound,
			LowerBound: g.LowerBound,
		}
	}
	return res, nil
}

// formatGroupKey renders a group key with the schema's labels. Unlike
// core.FormatKey it derives the NA order from the schema rather than the
// group set's internal cache, which group sets materialized outside
// GroupsOf (the incremental publisher's raw snapshot) do not carry.
func formatGroupKey(schema *dataset.Schema, key []uint16) string {
	var b strings.Builder
	for i, a := range schema.NAIndices() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(schema.Attrs[a].Name)
		b.WriteByte('=')
		if i < len(key) {
			b.WriteString(schema.Attrs[a].Label(key[i]))
		}
	}
	return b.String()
}

// cachedAudit returns the cached result for a key, or nil.
func (s *Server) cachedAudit(key string) *auditResponse {
	s.auditCache.mu.Lock()
	defer s.auditCache.mu.Unlock()
	return s.auditCache.m[key]
}

// storeAudit caches a result, evicting an arbitrary entry beyond the cap.
func (s *Server) storeAudit(key string, res *auditResponse) {
	s.auditCache.mu.Lock()
	defer s.auditCache.mu.Unlock()
	if s.auditCache.m == nil {
		s.auditCache.m = make(map[string]*auditResponse)
	}
	if len(s.auditCache.m) >= maxCachedAudits {
		for k := range s.auditCache.m {
			delete(s.auditCache.m, k)
			break
		}
	}
	s.auditCache.m[key] = res
}
