package serve

import (
	"fmt"
	"net/http"
	"time"

	"github.com/reconpriv/reconpriv/internal/core"
	"github.com/reconpriv/reconpriv/internal/dataset"
	"github.com/reconpriv/reconpriv/internal/query"
	"github.com/reconpriv/reconpriv/internal/reconstruct"
)

// PublicationSnapshot is the portable checkpoint of one publication: the
// normalized publish request, the generation counter, and — for incremental
// publications — the complete streaming-publisher state. Batch publications
// (sps/up) need nothing beyond request + generation: publishSeed makes every
// generation addressable, so a restore rebuilds the exact bits
// deterministically. Incremental publications carry the mid-stream RNG and
// histogram state instead, because their stream position cannot be recomputed
// from the request alone. A server restored from a snapshot serves a
// publication digest-identical to the one the snapshot was taken from.
type PublicationSnapshot struct {
	Req        PublishRequest         `json:"req"`
	Generation int                    `json:"generation"`
	Inc        *core.IncrementalState `json:"inc,omitempty"`
}

// SnapshotPublication captures the checkpoint of a publication. The caller
// must ensure no mutation (/insert, /refresh) is in flight for the id — the
// fleet router holds its per-publication mutation lock across the call — or
// the captured generation and stream state may straddle a mutation.
func (s *Server) SnapshotPublication(id string) (*PublicationSnapshot, error) {
	e := s.reg.get(id)
	if e == nil {
		return nil, fmt.Errorf("serve: no publication %q", id)
	}
	<-e.done
	pub, err := e.Publication()
	if err != nil {
		return nil, err
	}
	snap := &PublicationSnapshot{Req: e.reqCopy, Generation: pub.Generation}
	if e.inc != nil {
		e.incMu.Lock()
		snap.Inc = e.inc.State()
		if p2 := e.pub.Load(); p2 != nil {
			snap.Generation = p2.Generation
		}
		e.incMu.Unlock()
	}
	return snap, nil
}

// RestorePublication installs a snapshot into this server as a fresh
// publication and builds its serving index synchronously. The target id must
// not already exist — restore initializes a replacement replica, it does not
// reconcile live state. For batch methods the build is the deterministic
// generation rebuild; for incremental publications the streaming publisher
// is restored mid-stream and a flat index is materialized from its full
// state, after which the delta baselines are aligned with that index so the
// next insert flushes only what the index lacks.
func (s *Server) RestorePublication(snap *PublicationSnapshot) (*Entry, error) {
	req := snap.Req
	if err := req.Normalize(); err != nil {
		return nil, err
	}
	if req.Dataset == DatasetCSV && !s.cfg.AllowCSV {
		return nil, fmt.Errorf("serve: csv sources are disabled (enable with -allow-csv)")
	}
	if snap.Generation < 0 {
		return nil, fmt.Errorf("serve: snapshot has negative generation %d", snap.Generation)
	}
	if req.Method == MethodIncremental && snap.Inc == nil {
		return nil, fmt.Errorf("serve: incremental snapshot is missing the publisher state")
	}
	key := req.Key()
	e, created, err := s.reg.getOrCreate(IDForKey(key), key, req, s.cfg.MaxPublications)
	if err != nil {
		return nil, err
	}
	if !created {
		return nil, fmt.Errorf("serve: publication %q already exists; restore targets a fresh replica", e.id)
	}
	var pub *Publication
	if req.Method == MethodIncremental {
		pub, err = s.buildFromIncState(e, snap)
	} else {
		pub, err = s.buildPublication(e, snap.Generation)
	}
	e.settle(pub, err)
	if err != nil {
		return nil, err
	}
	return e, nil
}

// buildFromIncState materializes a publication from a restored streaming
// publisher: the snapshot's full state becomes one flat generation carrying
// the checkpointed generation number. Digests agree with the checkpointed
// holder because marginal checksums fold effective counts (stable across
// generation stacking) and RawGroups emits insertion order — the same order
// the holder's overlay maintained.
func (s *Server) buildFromIncState(e *Entry, snap *PublicationSnapshot) (*Publication, error) {
	req := &e.reqCopy
	start := time.Now()
	raw, err := s.loadTable(req)
	if err != nil {
		return nil, err
	}
	pm := req.Params()
	inc, err := core.RestoreIncremental(raw.Schema, pm, snap.Inc)
	if err != nil {
		return nil, err
	}
	e.incMu.Lock()
	e.inc = inc
	// The index below covers the publisher's entire state; align the delta
	// baselines with it (cf. buildIncremental).
	inc.MarkFlushed()
	e.dirty.Store(false)
	snapGS := inc.Snapshot()
	rawGS := inc.RawGroups()
	e.incMu.Unlock()
	meta := core.ExtractMeta(rawGS, pm, nil)
	meta.RecordsOut = snapGS.Total()
	marg, err := query.BuildMarginalsFromGroupsParallel(snapGS, req.MaxDim, s.cfg.PipelineWorkers)
	if err != nil {
		return nil, err
	}
	eng, err := reconstruct.NewEngine(marg, pm.P)
	if err != nil {
		return nil, err
	}
	marg.Schema.PrimeIndexes()
	return &Publication{
		ID:         e.id,
		Key:        e.key,
		Req:        e.reqCopy,
		Generation: snap.Generation,
		CreatedAt:  time.Now(),
		BuildTime:  time.Since(start),
		Meta:       meta,
		Marg:       marg,
		Eng:        eng,
		Groups:     rawGS,
		Orig:       raw.Schema,
		mapping:    make([]*dataset.ValueMapping, raw.Schema.NumAttrs()),
	}, nil
}

// snapshotRequest is the body of POST /snapshot.
type snapshotRequest struct {
	ID string `json:"id"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	var req snapshotRequest
	if !s.decode(w, r, &req) {
		return
	}
	snap, err := s.SnapshotPublication(req.ID)
	if err != nil {
		WriteError(w, http.StatusNotFound, CodeNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	var snap PublicationSnapshot
	if !s.decode(w, r, &snap) {
		return
	}
	e, err := s.RestorePublication(&snap)
	if err != nil {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, entryJSON(e, false))
}

// digestResponse is the body of GET /digest — the replica-agreement probe
// the fleet router compares across holders without shipping publications.
type digestResponse struct {
	ID         string `json:"id"`
	Generation int    `json:"generation"`
	Digest     string `json:"digest"`
}

func (s *Server) handleDigest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		WriteError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("missing id"))
		return
	}
	// resolvePublication re-indexes a dirty incremental entry first, so the
	// digest always reflects every acknowledged insert.
	pub, ok := s.resolvePublication(w, id, true, true)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, digestResponse{ID: pub.ID, Generation: pub.Generation, Digest: pub.Digest()})
}
