package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/reconpriv/reconpriv/internal/query"
	"github.com/reconpriv/reconpriv/internal/reconstruct"
)

// publishMedical publishes the standard test publication and returns its
// entry.
func publishMedical(t *testing.T, s *Server) *Publication {
	t.Helper()
	e, _, err := s.Publish(medicalRequest(), true)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := e.Publication()
	if err != nil {
		t.Fatal(err)
	}
	return pub
}

func TestServedReconstructMatchesInlineEngine(t *testing.T) {
	// Golden test for /reconstruct: served reconstructions must equal the
	// inline engine on the same publication, label for label.
	s, ts := startServer(t, Config{})
	pub := publishMedical(t, s)

	subsets := [][]CondJSON{
		{{Attr: "Gender", Value: "Male"}},
		{{Attr: "Gender", Value: "Female"}, {Attr: "Job", Value: pub.Orig.Attrs[1].Values[0]}},
		{{Attr: "Gender", Value: "NotAGender"}}, // per-subset error
	}
	var resp ReconstructResponse
	if code := post(t, ts.URL+"/reconstruct", reconstructRequest{ID: pub.ID, Subsets: subsets}, &resp); code != http.StatusOK {
		t.Fatalf("reconstruct returned %d", code)
	}
	if len(resp.Results) != len(subsets) {
		t.Fatalf("answered %d of %d subsets", len(resp.Results), len(subsets))
	}
	if resp.Results[2].Error == "" {
		t.Error("bad label should produce a per-subset error")
	}
	for i := 0; i < 2; i++ {
		conds, err := pub.ResolveConds(subsets[i])
		if err != nil {
			t.Fatal(err)
		}
		want := pub.Eng.ReconstructBatch([][]query.Cond{conds}, reconstruct.BatchOptions{})[0]
		got := resp.Results[i]
		if got.Error != "" || got.Size != want.Size {
			t.Fatalf("subset %d: served %+v, inline size %d", i, got, want.Size)
		}
		sa := pub.Orig.SAAttr()
		for v, f := range want.Freqs {
			if d := math.Abs(got.Freqs[sa.Label(uint16(v))] - f); d > 1e-12 {
				t.Fatalf("subset %d value %d: served %v, inline %v", i, v, got.Freqs[sa.Label(uint16(v))], f)
			}
		}
	}

	// Clamped responses must be genuine distributions.
	var clamped ReconstructResponse
	post(t, ts.URL+"/reconstruct", reconstructRequest{ID: pub.ID, Subsets: subsets[:2], Clamp: true}, &clamped)
	for i, r := range clamped.Results {
		sum := 0.0
		for _, f := range r.Freqs {
			if f < 0 {
				t.Fatalf("subset %d: clamped entry negative", i)
			}
			sum += f
		}
		if r.Size > 0 && math.Abs(sum-1) > 1e-9 {
			t.Fatalf("subset %d: clamped freqs sum to %v", i, sum)
		}
	}
}

func TestServedReconstructExposureCharging(t *testing.T) {
	s, ts := startServer(t, Config{})
	pub := publishMedical(t, s)
	m := pub.Marg.SADomain()

	var resp ReconstructResponse
	req := reconstructRequest{ID: pub.ID, Client: "attacker", Subsets: [][]CondJSON{
		{{Attr: "Gender", Value: "Male"}},
		{{Attr: "Gender", Value: "Female"}},
	}}
	post(t, ts.URL+"/reconstruct", req, &resp)
	if want := int64(2 * m); resp.ClientQueries != want {
		t.Errorf("2 reconstructions charged %d queries, want %d (m = %d per subset)", resp.ClientQueries, want, m)
	}
	// The counter is shared with /query: a reconstruction batch counts
	// toward the same exposure budget.
	var qresp QueryResponse
	post(t, ts.URL+"/query", queryRequest{ID: pub.ID, Client: "attacker", Queries: []QueryJSON{
		{Conds: []CondJSON{{Attr: "Gender", Value: "Male"}}, SA: pub.Orig.SAAttr().Values[0]},
	}}, &qresp)
	if want := int64(2*m) + 1; qresp.ClientQueries != want {
		t.Errorf("cumulative exposure = %d, want %d", qresp.ClientQueries, want)
	}
	st := s.Stats()
	if st.ReconstructBatches != 1 || st.Reconstructions != 2 {
		t.Errorf("stats: batches %d reconstructions %d", st.ReconstructBatches, st.Reconstructions)
	}
}

func TestServedReconstructValidation(t *testing.T) {
	s, ts := startServer(t, Config{MaxBatch: 2})
	pub := publishMedical(t, s)
	if code := post(t, ts.URL+"/reconstruct", reconstructRequest{ID: pub.ID}, nil); code != http.StatusBadRequest {
		t.Errorf("empty batch returned %d", code)
	}
	big := reconstructRequest{ID: pub.ID, Subsets: [][]CondJSON{
		{{Attr: "Gender", Value: "Male"}}, {{Attr: "Gender", Value: "Male"}}, {{Attr: "Gender", Value: "Male"}},
	}}
	if code := post(t, ts.URL+"/reconstruct", big, nil); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch returned %d", code)
	}
	if code := post(t, ts.URL+"/reconstruct", reconstructRequest{ID: "pub-missing", Subsets: big.Subsets[:1]}, nil); code != http.StatusNotFound {
		t.Errorf("unknown id returned %d", code)
	}
}

func TestServedAuditCachedAndDeterministic(t *testing.T) {
	s, ts := startServer(t, Config{})
	pub := publishMedical(t, s)

	var first auditResponse
	if code := post(t, ts.URL+"/audit", auditRequest{ID: pub.ID, Trials: 200, Top: 5}, &first); code != http.StatusOK {
		t.Fatalf("audit returned %d", code)
	}
	if first.Cached {
		t.Error("first audit should not be cached")
	}
	if first.GroupsAudited == 0 || len(first.Top) == 0 || len(first.Top) > 5 {
		t.Fatalf("audit shape wrong: %+v", first)
	}
	if first.Method != MethodSPS || !first.SPS {
		t.Errorf("audit method = %q sps=%v", first.Method, first.SPS)
	}
	var second auditResponse
	post(t, ts.URL+"/audit", auditRequest{ID: pub.ID, Trials: 200, Top: 5}, &second)
	if !second.Cached {
		t.Error("second identical audit should be served from cache")
	}
	second.Cached = first.Cached
	if !reflect.DeepEqual(first, second) {
		t.Error("cached audit differs from the original")
	}
	st := s.Stats()
	if st.Audits != 1 || st.AuditCacheHits != 1 {
		t.Errorf("stats: audits %d cache hits %d, want 1 and 1", st.Audits, st.AuditCacheHits)
	}

	// Top is a presentation knob, not part of the cache identity: a wider
	// request against the same sweep is still a cache hit and gets its own
	// row count from the shared full-depth result.
	var wider auditResponse
	post(t, ts.URL+"/audit", auditRequest{ID: pub.ID, Trials: 200, Top: 100}, &wider)
	if !wider.Cached {
		t.Error("different top should still hit the cache")
	}
	wantRows := wider.GroupsAudited
	if wantRows > 100 {
		wantRows = 100
	}
	if len(wider.Top) != wantRows {
		t.Errorf("top=100 returned %d rows, want %d", len(wider.Top), wantRows)
	}
	if len(wider.Top) <= len(first.Top) && wider.GroupsAudited > 5 {
		t.Errorf("wider request returned %d rows, no more than the first's %d", len(wider.Top), len(first.Top))
	}

	// Different parameters are a different audit, not a cache hit.
	var third auditResponse
	post(t, ts.URL+"/audit", auditRequest{ID: pub.ID, Trials: 100, Top: 5}, &third)
	if third.Cached {
		t.Error("different trials should run a fresh sweep")
	}
	// Bound violations should be zero: plain-perturbed groups must respect
	// their Chernoff bounds (Corollary 3).
	if first.BoundViolations != 0 {
		t.Errorf("audit reports %d bound violations", first.BoundViolations)
	}
}

func TestServedAuditConcurrentSingleflight(t *testing.T) {
	s, ts := startServer(t, Config{})
	pub := publishMedical(t, s)
	const callers = 8
	var wg sync.WaitGroup
	results := make([]auditResponse, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			post(t, ts.URL+"/audit", auditRequest{ID: pub.ID, Trials: 150}, &results[i])
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		a, b := results[0], results[i]
		a.Cached, b.Cached = false, false
		a.AuditMS, b.AuditMS = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("concurrent audits disagree at %d", i)
		}
	}
	if st := s.Stats(); st.Audits != 1 {
		t.Errorf("%d concurrent identical audits ran %d sweeps, want 1", callers, st.Audits)
	}
}

func TestServedAuditValidation(t *testing.T) {
	s, ts := startServer(t, Config{})
	pub := publishMedical(t, s)
	if code := post(t, ts.URL+"/audit", auditRequest{ID: "pub-missing"}, nil); code != http.StatusNotFound {
		t.Errorf("unknown id returned %d", code)
	}
	if code := post(t, ts.URL+"/audit", auditRequest{ID: pub.ID, Trials: maxAuditTrials + 1}, nil); code != http.StatusBadRequest {
		t.Errorf("oversized trials returned %d", code)
	}
	if code := post(t, ts.URL+"/audit", auditRequest{ID: pub.ID, Top: maxAuditTop + 1}, nil); code != http.StatusBadRequest {
		t.Errorf("oversized top returned %d", code)
	}
	if code := post(t, ts.URL+"/audit", auditRequest{ID: pub.ID, MaxGroups: -1}, nil); code != http.StatusBadRequest {
		t.Errorf("negative max_groups returned %d", code)
	}
}

// TestAdversaryErrorPaths drives every rejection path of POST /reconstruct
// and POST /audit through one table: each case must produce the expected
// status code and the typed JSON error body ({"error": "..."} with a
// non-empty, recognizable message) — the contract adversary tooling and the
// workload simulator parse.
func TestAdversaryErrorPaths(t *testing.T) {
	s, ts := startServer(t, Config{MaxBatch: 2})
	pub := publishMedical(t, s)
	male := []CondJSON{{Attr: "Gender", Value: "Male"}}

	cases := []struct {
		name     string
		path     string
		body     string // raw request body, sent verbatim
		wantCode int
		wantMsg  string // substring the typed error must contain
	}{
		{
			name:     "reconstruct malformed json",
			path:     "/reconstruct",
			body:     `{"id": "` + pub.ID + `", "subsets": [[{`,
			wantCode: http.StatusBadRequest,
			wantMsg:  "bad request body",
		},
		{
			name:     "reconstruct unknown publication",
			path:     "/reconstruct",
			body:     mustJSON(t, reconstructRequest{ID: "pub-missing", Subsets: [][]CondJSON{male}}),
			wantCode: http.StatusNotFound,
			wantMsg:  `no publication "pub-missing"`,
		},
		{
			name:     "reconstruct empty batch",
			path:     "/reconstruct",
			body:     mustJSON(t, reconstructRequest{ID: pub.ID}),
			wantCode: http.StatusBadRequest,
			wantMsg:  "empty subset batch",
		},
		{
			name:     "reconstruct over-cap batch",
			path:     "/reconstruct",
			body:     mustJSON(t, reconstructRequest{ID: pub.ID, Subsets: [][]CondJSON{male, male, male}}),
			wantCode: http.StatusRequestEntityTooLarge,
			wantMsg:  "exceeds the limit 2",
		},
		{
			name:     "reconstruct wrong method",
			path:     "/reconstruct",
			body:     "",
			wantCode: http.StatusMethodNotAllowed,
			wantMsg:  "use POST",
		},
		{
			name:     "audit malformed json",
			path:     "/audit",
			body:     `{"id": 12`,
			wantCode: http.StatusBadRequest,
			wantMsg:  "bad request body",
		},
		{
			name:     "audit unknown publication",
			path:     "/audit",
			body:     mustJSON(t, auditRequest{ID: "pub-missing"}),
			wantCode: http.StatusNotFound,
			wantMsg:  `no publication "pub-missing"`,
		},
		{
			name:     "audit over-cap trials",
			path:     "/audit",
			body:     mustJSON(t, auditRequest{ID: pub.ID, Trials: maxAuditTrials + 1}),
			wantCode: http.StatusBadRequest,
			wantMsg:  "trials must be in",
		},
		{
			name:     "audit over-cap max_groups",
			path:     "/audit",
			body:     mustJSON(t, auditRequest{ID: pub.ID, MaxGroups: maxAuditGroups + 1}),
			wantCode: http.StatusBadRequest,
			wantMsg:  "max_groups must be in",
		},
		{
			name:     "audit negative max_groups",
			path:     "/audit",
			body:     mustJSON(t, auditRequest{ID: pub.ID, MaxGroups: -1}),
			wantCode: http.StatusBadRequest,
			wantMsg:  "max_groups must be in",
		},
		{
			name:     "audit over-cap top",
			path:     "/audit",
			body:     mustJSON(t, auditRequest{ID: pub.ID, Top: maxAuditTop + 1}),
			wantCode: http.StatusBadRequest,
			wantMsg:  "top must be in",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var code int
			var body struct {
				Error string `json:"error"`
			}
			if tc.body == "" {
				code = get(t, ts.URL+tc.path, &body)
			} else {
				code = postRaw(t, ts.URL+tc.path, tc.body, &body)
			}
			if code != tc.wantCode {
				t.Errorf("status %d, want %d", code, tc.wantCode)
			}
			if body.Error == "" {
				t.Fatal("error body missing the typed error field")
			}
			if !strings.Contains(body.Error, tc.wantMsg) {
				t.Errorf("error %q does not mention %q", body.Error, tc.wantMsg)
			}
		})
	}
}

// mustJSON marshals a request body for the error-path table.
func mustJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestServedAuditIncremental(t *testing.T) {
	// Incremental publications audit their raw-group snapshot; after an
	// insert wave and re-index, a fresh audit sees the new groups.
	s, ts := startServer(t, Config{})
	req := medicalRequest()
	req.Method = MethodIncremental
	e, _, err := s.Publish(req, true)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := e.Publication()
	if err != nil {
		t.Fatal(err)
	}
	var first auditResponse
	if code := post(t, ts.URL+"/audit", auditRequest{ID: pub.ID, Trials: 100}, &first); code != http.StatusOK {
		t.Fatalf("audit returned %d", code)
	}
	if first.SPS {
		t.Error("incremental audits should use the plain perturbation process")
	}
	if first.GroupsAudited == 0 {
		t.Error("no groups audited")
	}
}
