package serve

import (
	"github.com/reconpriv/reconpriv/internal/core"
	"github.com/reconpriv/reconpriv/internal/dataset"
	"github.com/reconpriv/reconpriv/internal/query"
	"github.com/reconpriv/reconpriv/internal/reconstruct"
)

// This file is the streaming-ingest hot path behind POST /insert. The old
// path marked the publication dirty and let the next query rebuild the whole
// marginal index from a full snapshot — O(|D|) per insert wave, which caps
// sustained ingest at the reindex rate. The delta path is LSM-shaped
// instead: each accepted batch flushes the publisher's per-group increments
// (core.Incremental.FlushDelta), builds a small marginal index over only
// those increments, and appends it as an immutable generation behind the
// publication's atomic pointer (query.Marginals.WithDelta). Read paths sum
// the generation stack positionally; a background compactor folds the stack
// back into one flat arena once it grows past Config.CompactEvery. Work per
// batch is proportional to the batch (plus an O(|G|) metadata pass), not to
// the accumulated stream — the sublinear ingest property rpbench -exp
// ingest measures.
//
// Failure handling is deliberately asymmetric: once records are in the
// publisher they are never lost, so any failure to extend the index (layout
// mismatch, a lost pointer race against a concurrent refresh or reindex)
// falls back to the legacy dirty flag and the full-snapshot reconciliation
// path repairs the index on the next query. Compaction changes no answer
// and no digest (checksums fold effective counts), so its timing is
// unobservable everywhere except the /statsz compactions counter.

// applyInsert ingests one resolved batch (keys in NAIndices order, sensitive
// codes aligned) and extends the served index. It is the shared core of the
// JSON and binary /insert handlers; the returned response has every field
// set except ID. On error the batch may be partially ingested — the entry is
// flagged dirty so the reconciliation path republishes a consistent index.
func (s *Server) applyInsert(e *Entry, keys [][]uint16, sas []uint16) (insertResponse, error) {
	var resp insertResponse
	e.incMu.Lock()
	defer e.incMu.Unlock()
	for i := range keys {
		fresh, err := e.inc.Add(keys[i], sas[i])
		if err != nil {
			e.dirty.Store(true)
			return resp, err
		}
		if fresh {
			resp.Trials++
		} else {
			resp.Absorbed++
		}
	}
	resp.Inserted = len(keys)
	resp.TotalRecords = e.inc.Stats().Records

	if s.cfg.IngestLegacyReindex {
		// Benchmark baseline: the pre-delta behavior, full reindex on the
		// next query.
		e.dirty.Store(true)
		return resp, nil
	}
	if !s.appendDelta(e) {
		e.dirty.Store(true)
	}
	return resp, nil
}

// appendDelta flushes the publisher's pending increments and swaps in a
// publication extended by one delta generation. Called under incMu, which
// serializes it against other inserts and against the snapshot sections of
// reindex and refresh; the pointer swap itself is a CAS because those paths
// store outside the lock. A false return means the index was not extended
// (the flushed increments are safe in the publisher; the caller flags the
// entry dirty so the full-snapshot path reconciles).
func (s *Server) appendDelta(e *Entry) bool {
	old := e.pub.Load()
	if old == nil {
		return false
	}
	d := e.inc.FlushDelta()
	if len(d.Pub.Groups) == 0 && len(d.Raw.Groups) == 0 {
		return true
	}
	dm, err := query.BuildMarginalsFromGroups(d.Pub, old.Req.MaxDim)
	if err != nil {
		return false
	}
	marg, err := old.Marg.WithDelta(dm)
	if err != nil {
		return false
	}
	eng, err := reconstruct.NewEngine(marg, old.Req.P)
	if err != nil {
		return false
	}
	raw := e.overlayRaw(old, d.Raw)
	meta := core.ExtractMeta(raw, old.Req.Params(), nil)
	meta.RecordsOut = marg.Total()

	pub := *old // shallow copy: shared fields are immutable
	pub.Marg = marg
	pub.Eng = eng
	pub.Groups = raw
	pub.Meta = meta
	if !e.pub.CompareAndSwap(old, &pub) {
		// A refresh or reindex swapped concurrently; their snapshot may or
		// may not include this delta, so let reconciliation decide.
		return false
	}
	e.ovBase = raw
	s.ingestAppends.Add(1)
	if ce := s.cfg.CompactEvery; ce > 0 && marg.Generations() > ce && !e.compacting.Swap(true) {
		go s.compactEntry(e)
	}
	return true
}

// overlayRaw merges a raw-histogram delta onto the current raw-group
// snapshot without re-materializing the stream: unchanged groups share their
// histogram slices with the base (they are never mutated after
// construction), changed groups get a fresh summed histogram, and new groups
// append in first-touch order — the same order a fresh
// core.Incremental.RawGroups materialization would emit, so digests agree.
// The entry-held key index survives across batches and self-heals whenever
// the base is not the one it was built for (after a refresh or full
// reindex). Called under incMu.
func (e *Entry) overlayRaw(old *Publication, d *dataset.GroupSet) *dataset.GroupSet {
	base := old.Groups
	if e.ovBase != base || e.ovIdx == nil {
		e.ovIdx = make(map[uint64]int32, base.NumGroups())
		for i := range base.Groups {
			e.ovIdx[base.EncodeKey(base.Groups[i].Key)] = int32(i)
		}
	}
	out := dataset.NewGroupSet(base.Schema)
	out.Groups = make([]dataset.Group, len(base.Groups), len(base.Groups)+len(d.Groups))
	copy(out.Groups, base.Groups)
	for di := range d.Groups {
		dg := &d.Groups[di]
		k := base.EncodeKey(dg.Key)
		if i, ok := e.ovIdx[k]; ok {
			g := &out.Groups[i]
			counts := make([]int, len(g.SACounts))
			copy(counts, g.SACounts)
			for j, c := range dg.SACounts {
				counts[j] += c
			}
			g.SACounts = counts
			g.Size += dg.Size
		} else {
			e.ovIdx[k] = int32(len(out.Groups))
			out.Groups = append(out.Groups, dataset.Group{Key: dg.Key, SACounts: dg.SACounts, Size: dg.Size})
		}
	}
	return out
}

// compactEntry folds the entry's generation stack into one flat index. The
// expensive positional sum runs off-lock against the immutable stack; the
// install takes incMu so no insert can append between the staleness check
// and the swap. If the publication moved while compacting (more inserts, a
// refresh), the result is discarded — the next append past the threshold
// re-triggers, so read amplification stays bounded. Answers and digests are
// unchanged by design (Compact is a positional integer sum and Checksum
// folds effective counts), which is what keeps compaction timing invisible
// to the sim's byte-identity checks and the fleet's digest agreement.
func (s *Server) compactEntry(e *Entry) {
	defer e.compacting.Store(false)
	cur := e.pub.Load()
	if cur == nil || cur.Marg.Generations() == 1 {
		return
	}
	marg := cur.Marg.Compact()
	eng, err := reconstruct.NewEngine(marg, cur.Req.P)
	if err != nil {
		return
	}
	e.incMu.Lock()
	defer e.incMu.Unlock()
	pub := *cur
	pub.Marg = marg
	pub.Eng = eng
	if e.pub.CompareAndSwap(cur, &pub) {
		s.compactions.Add(1)
	}
}
