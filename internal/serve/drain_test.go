package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// jsonBody marshals v into a request-body reader.
func jsonBody(t *testing.T, v any) *strings.Reader {
	t.Helper()
	return strings.NewReader(mustJSON(t, v))
}

// decodeBody decodes a response body into out.
func decodeBody(t *testing.T, resp *http.Response, out any) {
	t.Helper()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("decoding %q: %v", body, err)
	}
}

// TestDrainRejectsNewWork: once draining, every serving endpoint returns the
// typed 503 while the observability endpoints stay open and report the drain.
func TestDrainRejectsNewWork(t *testing.T) {
	s, ts := startServer(t, Config{})
	var pub publicationJSON
	if code := post(t, ts.URL+"/publish", medicalRequest(), &pub); code != http.StatusOK {
		t.Fatalf("publish returned %d", code)
	}

	s.BeginDrain()
	if !s.Draining() {
		t.Fatal("Draining() = false after BeginDrain")
	}

	req := map[string]any{"id": pub.ID, "queries": []QueryJSON{{SA: "Flu"}}}
	resp, err := http.Post(ts.URL+"/query", "application/json", jsonBody(t, req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query during drain returned %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 during drain carries no Retry-After header")
	}
	var eb ErrorBody
	decodeBody(t, resp, &eb)
	if eb.Code != CodeDraining {
		t.Fatalf("drain rejection code = %q, want %q", eb.Code, CodeDraining)
	}
	if eb.Error == "" {
		t.Fatal("legacy error field is empty; pre-taxonomy clients would see nothing")
	}

	// Observability stays open and reports the drain.
	var st statszResponse
	if code := get(t, ts.URL+"/statsz", &st); code != http.StatusOK {
		t.Fatalf("statsz during drain returned %d", code)
	}
	if !st.Draining {
		t.Fatal("statsz.draining = false during drain")
	}
	if st.InFlight < 1 {
		t.Fatalf("statsz.in_flight = %d; the reporting request itself must be counted", st.InFlight)
	}
	if code := get(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz during drain returned %d", code)
	}
}

// TestDrainWaitsForInflight: Drain blocks on outstanding requests, reports
// them when the deadline expires, and returns promptly once they finish.
func TestDrainWaitsForInflight(t *testing.T) {
	s := New(Config{})

	// Simulate one stuck in-flight request (the gate counts via this field).
	s.inflight.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("Drain returned nil with a request still in flight")
	}

	s.inflight.Add(-1)
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	if err := s.Drain(ctx2); err != nil {
		t.Fatalf("Drain after the last request finished: %v", err)
	}
}
