package serve

import (
	"math/rand"
	"net/http"
	"testing"
)

// getDigest reads GET /digest for id.
func getDigest(t *testing.T, url, id string) digestResponse {
	t.Helper()
	resp, err := http.Get(url + "/digest?id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("digest returned %d", resp.StatusCode)
	}
	var out digestResponse
	decodeBody(t, resp, &out)
	return out
}

// snapshotOf checkpoints id over HTTP.
func snapshotOf(t *testing.T, url, id string) *PublicationSnapshot {
	t.Helper()
	var snap PublicationSnapshot
	if code := post(t, url+"/snapshot", snapshotRequest{ID: id}, &snap); code != http.StatusOK {
		t.Fatalf("snapshot returned %d", code)
	}
	return &snap
}

// TestSnapshotRestoreIncremental is the checkpoint contract end to end over
// HTTP: a server restored from a mid-stream snapshot — after inserts and a
// refresh — serves a digest-identical publication with an identical answer
// surface, and continues identically under further inserts and refreshes
// (the restored RNG stream is the same stream, not a fresh one).
func TestSnapshotRestoreIncremental(t *testing.T) {
	sA, tsA := startServer(t, Config{})
	eA := publishIncremental(t, sA, 600)
	id := eA.ID()

	rng := rand.New(rand.NewSource(7))
	for batch := 0; batch < 3; batch++ {
		recs, _ := insertBatch(rng, 20)
		if code := post(t, tsA.URL+"/insert", insertRequest{ID: id, Records: recs}, nil); code != http.StatusOK {
			t.Fatalf("insert returned %d", code)
		}
	}
	if code := post(t, tsA.URL+"/refresh", refreshRequest{ID: id, Wait: true}, nil); code != http.StatusOK {
		t.Fatalf("refresh returned %d", code)
	}
	recs, _ := insertBatch(rng, 15)
	if code := post(t, tsA.URL+"/insert", insertRequest{ID: id, Records: recs}, nil); code != http.StatusOK {
		t.Fatalf("insert returned %d", code)
	}

	snap := snapshotOf(t, tsA.URL, id)
	if snap.Inc == nil || snap.Generation != 1 {
		t.Fatalf("snapshot: generation %d, inc present %v", snap.Generation, snap.Inc != nil)
	}

	_, tsB := startServer(t, Config{})
	var restored publicationJSON
	if code := post(t, tsB.URL+"/restore", snap, &restored); code != http.StatusOK {
		t.Fatalf("restore returned %d", code)
	}
	if restored.ID != id || restored.Status != "ready" || restored.Generation != 1 {
		t.Fatalf("restored entry: %+v", restored)
	}

	dA, dB := getDigest(t, tsA.URL, id), getDigest(t, tsB.URL, id)
	if dA != dB {
		t.Fatalf("digests diverge after restore: %+v vs %+v", dA, dB)
	}
	cA, bA := queryBattery(t, tsA.URL, id)
	cB, bB := queryBattery(t, tsB.URL, id)
	for i := range cA {
		if cA[i] != cB[i] || bA[i] != bB[i] {
			t.Fatalf("answer %d diverged after restore", i)
		}
	}

	// Continuation: identical further mutations must keep the servers
	// digest-identical — insert, refresh, insert again.
	rngA, rngB := rand.New(rand.NewSource(8)), rand.New(rand.NewSource(8))
	for step := 0; step < 2; step++ {
		recsA, _ := insertBatch(rngA, 25)
		recsB, _ := insertBatch(rngB, 25)
		for srv, recs := range map[string][]map[string]string{tsA.URL: recsA, tsB.URL: recsB} {
			if code := post(t, srv+"/insert", insertRequest{ID: id, Records: recs}, nil); code != http.StatusOK {
				t.Fatalf("continuation insert returned %d", code)
			}
			if code := post(t, srv+"/refresh", refreshRequest{ID: id, Wait: true}, nil); code != http.StatusOK {
				t.Fatalf("continuation refresh returned %d", code)
			}
		}
		dA, dB = getDigest(t, tsA.URL, id), getDigest(t, tsB.URL, id)
		if dA != dB {
			t.Fatalf("step %d: digests diverge in continuation: %+v vs %+v", step, dA, dB)
		}
	}
}

// TestSnapshotRestoreBatch pins the batch-method (sps) checkpoint: request +
// generation alone restore the exact served bits, because publishSeed makes
// every generation addressable.
func TestSnapshotRestoreBatch(t *testing.T) {
	sA, tsA := startServer(t, Config{})
	req := medicalRequest()
	eA, _, err := sA.Publish(req, true)
	if err != nil {
		t.Fatal(err)
	}
	id := eA.ID()
	for i := 0; i < 2; i++ {
		if code := post(t, tsA.URL+"/refresh", refreshRequest{ID: id, Wait: true}, nil); code != http.StatusOK {
			t.Fatalf("refresh returned %d", code)
		}
	}

	snap := snapshotOf(t, tsA.URL, id)
	if snap.Inc != nil || snap.Generation != 2 {
		t.Fatalf("batch snapshot: generation %d, inc present %v", snap.Generation, snap.Inc != nil)
	}

	_, tsB := startServer(t, Config{})
	if code := post(t, tsB.URL+"/restore", snap, nil); code != http.StatusOK {
		t.Fatalf("restore returned %d", code)
	}
	dA, dB := getDigest(t, tsA.URL, id), getDigest(t, tsB.URL, id)
	if dA != dB {
		t.Fatalf("batch digests diverge after restore: %+v vs %+v", dA, dB)
	}
}

// TestRestoreRejections covers the control-plane error paths: restoring onto
// an existing publication, restoring an incremental snapshot without
// publisher state, and snapshotting an unknown id.
func TestRestoreRejections(t *testing.T) {
	s, ts := startServer(t, Config{})
	e := publishIncremental(t, s, 300)
	snap := snapshotOf(t, ts.URL, e.ID())

	if code := post(t, ts.URL+"/restore", snap, nil); code != http.StatusBadRequest {
		t.Errorf("restore onto an existing publication returned %d, want 400", code)
	}

	_, tsB := startServer(t, Config{})
	noState := *snap
	noState.Inc = nil
	if code := post(t, tsB.URL+"/restore", &noState, nil); code != http.StatusBadRequest {
		t.Errorf("incremental restore without state returned %d, want 400", code)
	}

	if code := post(t, ts.URL+"/snapshot", snapshotRequest{ID: "pub-nope"}, nil); code != http.StatusNotFound {
		t.Errorf("snapshot of unknown id returned %d, want 404", code)
	}
}
