package serve

import "sync"

// singleflight collapses concurrent calls with the same key into one
// execution whose result every caller shares — the classic
// golang.org/x/sync/singleflight contract, reimplemented here because the
// module is dependency-free. The server uses it wherever a cache miss is
// expensive and stampedes are likely: loading a raw dataset, running the
// publish pipeline, and rebuilding a marginal index after inserts.
type singleflight struct {
	mu    sync.Mutex
	calls map[string]*sfCall
}

// sfCall is one in-flight execution.
type sfCall struct {
	done chan struct{}
	val  any
	err  error
}

// Do runs fn once per key at a time: the first caller executes it, later
// callers with the same key block until that execution finishes and receive
// its result. shared reports whether the result came from another caller's
// execution.
func (sf *singleflight) Do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	sf.mu.Lock()
	if sf.calls == nil {
		sf.calls = make(map[string]*sfCall)
	}
	if c, ok := sf.calls[key]; ok {
		sf.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &sfCall{done: make(chan struct{})}
	sf.calls[key] = c
	sf.mu.Unlock()

	c.val, c.err = fn()

	sf.mu.Lock()
	delete(sf.calls, key)
	sf.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}
