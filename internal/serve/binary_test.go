package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net/http"
	"runtime"
	"testing"

	"github.com/reconpriv/reconpriv/internal/query"
	"github.com/reconpriv/reconpriv/internal/wire"
)

// postBinary posts a raw frame with the binary content type and returns the
// status, body, and response content type.
func postBinary(t *testing.T, url string, frame []byte) (int, []byte, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", wire.ContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header.Get("Content-Type")
}

// TestBinaryJSONEquivalence is the cross-encoding property test: seeded
// random condition batches served over the binary framing must answer
// bit-identically to the same batches served as JSON, and to the in-process
// AnswerBatch reference, at every worker width. The medical publication is
// generalized by chi-merge, so the test also covers the original-code →
// generalized-code mapping the binary path performs.
func TestBinaryJSONEquivalence(t *testing.T) {
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		s, ts := startServer(t, Config{QueryWorkers: workers, PipelineWorkers: workers})
		e, _, err := s.Publish(medicalRequest(), true)
		if err != nil {
			t.Fatal(err)
		}
		pub, err := e.Publication()
		if err != nil {
			t.Fatal(err)
		}
		schema := pub.Orig // Gender(2) × Job(5) × Disease(10, SA)

		rng := rand.New(rand.NewSource(int64(workers)))
		for batch := 0; batch < 5; batch++ {
			n := 1 + rng.Intn(40)
			breq := wire.QueryReq{ID: []byte(pub.ID), Client: []byte("bin-client")}
			jreq := queryRequest{ID: pub.ID, Client: "json-client"}
			inline := make([]query.Query, n)
			for i := 0; i < n; i++ {
				var conds []wire.Cond
				var jconds []CondJSON
				for a := 0; a < schema.NumAttrs(); a++ {
					// Always keep the last NA: the engine requires at least
					// one condition, so the empty set is not in the space.
					if a == schema.SA || (len(conds) > 0 || a < schema.NumAttrs()-2) && rng.Intn(2) == 0 {
						continue
					}
					v := uint16(rng.Intn(schema.Attrs[a].Domain()))
					conds = append(conds, wire.Cond{Attr: a, Value: v})
					jconds = append(jconds, CondJSON{Attr: schema.Attrs[a].Name, Value: schema.Attrs[a].Label(v)})
				}
				sa := uint16(rng.Intn(schema.SADomain()))
				breq.Queries = append(breq.Queries, wire.Query{SA: sa, Conds: conds})
				jreq.Queries = append(jreq.Queries, QueryJSON{Conds: jconds, SA: schema.SAAttr().Label(sa)})
				// In-process reference: map a private copy of the original
				// codes exactly like the server does.
				cc := append([]query.Cond(nil), conds...)
				if err := pub.MapConds(cc); err != nil {
					t.Fatalf("workers=%d: mapping reference conds: %v", workers, err)
				}
				inline[i] = query.Query{Conds: cc, SA: sa}
			}

			status, body, ct := postBinary(t, ts.URL+"/query", breq.Append(nil))
			if status != http.StatusOK || ct != wire.ContentType {
				t.Fatalf("workers=%d: binary query returned %d (%s): %s", workers, status, ct, body)
			}
			var bresp wire.QueryResp
			if err := bresp.Decode(body); err != nil {
				t.Fatalf("workers=%d: decoding binary response: %v", workers, err)
			}
			var jresp QueryResponse
			if code := post(t, ts.URL+"/query", jreq, &jresp); code != http.StatusOK {
				t.Fatalf("workers=%d: json query returned %d", workers, code)
			}
			ref := pub.Marg.AnswerBatch(inline, pub.Req.P, workers)

			if len(bresp.Answers) != n || len(jresp.Answers) != n {
				t.Fatalf("workers=%d: %d binary / %d json answers for %d queries",
					workers, len(bresp.Answers), len(jresp.Answers), n)
			}
			for i := 0; i < n; i++ {
				ba, ja, ra := bresp.Answers[i], jresp.Answers[i], ref[i]
				if ba.Err != nil || ja.Error != "" || ra.Err != nil {
					t.Fatalf("workers=%d batch=%d query %d errored: bin=%q json=%q ref=%v",
						workers, batch, i, ba.Err, ja.Error, ra.Err)
				}
				if int(ba.Count) != ja.Count || int(ba.Count) != ra.Count {
					t.Fatalf("workers=%d batch=%d query %d: counts bin=%d json=%d ref=%d",
						workers, batch, i, ba.Count, ja.Count, ra.Count)
				}
				if math.Float64bits(ba.Estimate) != math.Float64bits(ja.Estimate) ||
					math.Float64bits(ba.Estimate) != math.Float64bits(ra.Estimate) {
					t.Fatalf("workers=%d batch=%d query %d: estimates bin=%v json=%v ref=%v",
						workers, batch, i, ba.Estimate, ja.Estimate, ra.Estimate)
				}
			}
			if bresp.Charged != uint64(n) {
				t.Fatalf("workers=%d: binary charged %d for %d queries", workers, bresp.Charged, n)
			}
		}
	}
}

// TestBinaryReconstructEquivalence is the /reconstruct twin: binary dense
// frequency vectors (indexed by sensitive-value code) must carry the same
// bits as the JSON label-keyed maps, for raw and clamped estimates.
func TestBinaryReconstructEquivalence(t *testing.T) {
	s, ts := startServer(t, Config{})
	e, _, err := s.Publish(medicalRequest(), true)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := e.Publication()
	if err != nil {
		t.Fatal(err)
	}
	schema := pub.Orig
	sa := schema.SAAttr()

	rng := rand.New(rand.NewSource(7))
	for _, clamp := range []bool{false, true} {
		n := 8
		breq := wire.ReconstructReq{ID: []byte(pub.ID), Client: []byte("bin-adv"), Clamp: clamp}
		jreq := reconstructRequest{ID: pub.ID, Client: "json-adv", Clamp: clamp}
		for i := 0; i < n; i++ {
			var conds []wire.Cond
			var jconds []CondJSON
			for a := 0; a < schema.NumAttrs(); a++ {
				if a == schema.SA || (len(conds) > 0 || a < schema.NumAttrs()-2) && rng.Intn(2) == 0 {
					continue
				}
				v := uint16(rng.Intn(schema.Attrs[a].Domain()))
				conds = append(conds, wire.Cond{Attr: a, Value: v})
				jconds = append(jconds, CondJSON{Attr: schema.Attrs[a].Name, Value: schema.Attrs[a].Label(v)})
			}
			breq.Subsets = append(breq.Subsets, conds)
			jreq.Subsets = append(jreq.Subsets, jconds)
		}

		status, body, _ := postBinary(t, ts.URL+"/reconstruct", breq.Append(nil))
		if status != http.StatusOK {
			t.Fatalf("clamp=%v: binary reconstruct returned %d: %s", clamp, status, body)
		}
		var bresp wire.ReconstructResp
		if err := bresp.Decode(body); err != nil {
			t.Fatalf("clamp=%v: decoding binary response: %v", clamp, err)
		}
		var jresp ReconstructResponse
		if code := post(t, ts.URL+"/reconstruct", jreq, &jresp); code != http.StatusOK {
			t.Fatalf("clamp=%v: json reconstruct returned %d", clamp, code)
		}
		if len(bresp.Results) != n || len(jresp.Results) != n {
			t.Fatalf("clamp=%v: %d binary / %d json results", clamp, len(bresp.Results), len(jresp.Results))
		}
		for i := 0; i < n; i++ {
			br, jr := bresp.Results[i], jresp.Results[i]
			if br.Err != nil || jr.Error != "" {
				t.Fatalf("clamp=%v subset %d errored: bin=%q json=%q", clamp, i, br.Err, jr.Error)
			}
			if int(br.Size) != jr.Size {
				t.Fatalf("clamp=%v subset %d: size bin=%d json=%d", clamp, i, br.Size, jr.Size)
			}
			for v, f := range br.Freqs {
				if math.Float64bits(f) != math.Float64bits(jr.Freqs[sa.Label(uint16(v))]) {
					t.Fatalf("clamp=%v subset %d value %d: freq bin=%v json=%v",
						clamp, i, v, f, jr.Freqs[sa.Label(uint16(v))])
				}
			}
		}
		if bresp.Charged != uint64(n)*uint64(pub.Marg.SADomain()) {
			t.Fatalf("clamp=%v: binary charged %d", clamp, bresp.Charged)
		}
	}
}

// TestBinaryErrorPaths drives malformed and hostile frames through both
// binary endpoints: every rejection must be the typed JSON ErrorBody
// envelope with the right code and status — never a panic, a hang, or a
// bare failure the fleet's taxonomy cannot classify.
func TestBinaryErrorPaths(t *testing.T) {
	s, ts := startServer(t, Config{MaxBatch: 5})
	e, _, err := s.Publish(medicalRequest(), true)
	if err != nil {
		t.Fatal(err)
	}

	valid := func(id string, qn int) []byte {
		m := wire.QueryReq{ID: []byte(id)}
		for i := 0; i < qn; i++ {
			m.Queries = append(m.Queries, wire.Query{SA: 0, Conds: []wire.Cond{{Attr: 1, Value: 0}}})
		}
		return m.Append(nil)
	}
	corrupt := func(frame []byte, off int, b byte) []byte {
		out := append([]byte(nil), frame...)
		out[off] = b
		return out
	}
	rvalid := func(id string, sn int) []byte {
		m := wire.ReconstructReq{ID: []byte(id)}
		for i := 0; i < sn; i++ {
			m.Subsets = append(m.Subsets, []wire.Cond{{Attr: 1, Value: 0}})
		}
		return m.Append(nil)
	}

	ok := valid(e.ID(), 1)
	cases := []struct {
		name     string
		path     string
		frame    []byte
		wantCode int
		want     ErrorCode
	}{
		{"garbage", "/query", []byte("not a frame at all"), http.StatusBadRequest, CodeBadRequest},
		{"empty body", "/query", nil, http.StatusBadRequest, CodeBadRequest},
		{"bad magic", "/query", corrupt(ok, 0, 'X'), http.StatusBadRequest, CodeBadRequest},
		{"bad version", "/query", corrupt(ok, 2, 99), http.StatusBadRequest, CodeBadRequest},
		{"wrong kind", "/query", corrupt(ok, 3, wire.KindQueryResp), http.StatusBadRequest, CodeBadRequest},
		{"truncated", "/query", ok[:len(ok)-3], http.StatusBadRequest, CodeBadRequest},
		{"trailing bytes", "/query", append(append([]byte(nil), ok...), 0xEE), http.StatusBadRequest, CodeBadRequest},
		// Offset 12 is the low byte of the query count for an 8-byte id
		// (header 8 + str8 id 9 + str8 client 1 + flags 1 ... counts from 8:
		// id at 8, client at 8+1+len(id)).
		{"count overdeclared", "/query", corrupt(ok, wire.HeaderSize+1+len(e.ID())+1+1, 200), http.StatusBadRequest, CodeBadRequest},
		{"undefined flag bits", "/query", corrupt(ok, wire.HeaderSize+1+len(e.ID())+1, 0x80), http.StatusBadRequest, CodeBadRequest},
		{"empty batch", "/query", valid(e.ID(), 0), http.StatusBadRequest, CodeBadRequest},
		{"oversized batch", "/query", valid(e.ID(), 6), http.StatusRequestEntityTooLarge, CodeTooLarge},
		{"unknown publication", "/query", valid("pub-none", 1), http.StatusNotFound, CodeNotFound},
		{"reconstruct garbage", "/reconstruct", []byte{0xde, 0xad}, http.StatusBadRequest, CodeBadRequest},
		{"reconstruct wrong kind", "/reconstruct", ok, http.StatusBadRequest, CodeBadRequest},
		{"reconstruct empty batch", "/reconstruct", rvalid(e.ID(), 0), http.StatusBadRequest, CodeBadRequest},
		{"reconstruct oversized", "/reconstruct", rvalid(e.ID(), 6), http.StatusRequestEntityTooLarge, CodeTooLarge},
		{"reconstruct unknown publication", "/reconstruct", rvalid("pub-none", 1), http.StatusNotFound, CodeNotFound},
	}
	for _, tc := range cases {
		status, body, ct := postBinary(t, ts.URL+tc.path, tc.frame)
		if status != tc.wantCode {
			t.Errorf("%s: status %d, want %d (body %q)", tc.name, status, tc.wantCode, body)
			continue
		}
		if ct != "application/json" {
			t.Errorf("%s: error content type %q, want JSON envelope", tc.name, ct)
		}
		var eb ErrorBody
		if err := json.Unmarshal(body, &eb); err != nil {
			t.Errorf("%s: error body is not an ErrorBody: %v (%q)", tc.name, err, body)
			continue
		}
		if eb.Code != tc.want {
			t.Errorf("%s: code %q, want %q", tc.name, eb.Code, tc.want)
		}
	}

	// Per-query code failures are per-query, not batch-fatal: out-of-range
	// attribute, SA-referencing condition, out-of-domain value and SA all
	// answer inside a 200 frame, alongside a healthy query.
	breq := wire.QueryReq{ID: []byte(e.ID())}
	breq.Queries = []wire.Query{
		{SA: 0, Conds: []wire.Cond{{Attr: 1, Value: 0}}},     // healthy
		{SA: 0, Conds: []wire.Cond{{Attr: 9, Value: 0}}},     // attr out of range
		{SA: 0, Conds: []wire.Cond{{Attr: 2, Value: 0}}},     // condition on the SA
		{SA: 0, Conds: []wire.Cond{{Attr: 1, Value: 500}}},   // value out of domain
		{SA: 60000, Conds: []wire.Cond{{Attr: 1, Value: 0}}}, // SA out of domain
	}
	status, body, _ := postBinary(t, ts.URL+"/query", breq.Append(nil))
	if status != http.StatusOK {
		t.Fatalf("per-query error batch returned %d: %s", status, body)
	}
	var bresp wire.QueryResp
	if err := bresp.Decode(body); err != nil {
		t.Fatal(err)
	}
	if bresp.Answers[0].Err != nil {
		t.Fatalf("healthy query errored: %q", bresp.Answers[0].Err)
	}
	for i := 1; i < len(bresp.Answers); i++ {
		if bresp.Answers[i].Err == nil {
			t.Fatalf("invalid query %d did not error", i)
		}
	}
	if st := s.Stats(); st.QueryErrors != 4 {
		t.Fatalf("query errors %d, want 4", st.QueryErrors)
	}

	// Method gate: a GET with the binary content type is still a 405.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/query", nil)
	req.Header.Set("Content-Type", wire.ContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET with binary content type returned %d, want 405", resp.StatusCode)
	}
}

// TestBinaryExposureSharedWithJSON checks the two encodings charge one
// ledger: a client's cumulative exposure spans both.
func TestBinaryExposureSharedWithJSON(t *testing.T) {
	s, ts := startServer(t, Config{ExposureWarn: 5})
	e, _, err := s.Publish(medicalRequest(), true)
	if err != nil {
		t.Fatal(err)
	}
	var jresp QueryResponse
	post(t, ts.URL+"/query", queryRequest{ID: e.ID(), Client: "carol", Queries: []QueryJSON{
		{Conds: []CondJSON{{Attr: "Job", Value: "Clerk"}}, SA: "Flu"},
		{Conds: []CondJSON{{Attr: "Job", Value: "Clerk"}}, SA: "Flu"},
		{Conds: []CondJSON{{Attr: "Job", Value: "Clerk"}}, SA: "Flu"},
	}}, &jresp)
	if jresp.ClientQueries != 3 || jresp.ExposureWarning {
		t.Fatalf("after 3 JSON queries: %+v", jresp)
	}

	breq := wire.QueryReq{ID: []byte(e.ID()), Client: []byte("carol")}
	for i := 0; i < 3; i++ {
		breq.Queries = append(breq.Queries, wire.Query{SA: 0, Conds: []wire.Cond{{Attr: 1, Value: 0}}})
	}
	status, body, _ := postBinary(t, ts.URL+"/query", breq.Append(nil))
	if status != http.StatusOK {
		t.Fatalf("binary query returned %d: %s", status, body)
	}
	var bresp wire.QueryResp
	if err := bresp.Decode(body); err != nil {
		t.Fatal(err)
	}
	if bresp.ClientQueries != 6 || !bresp.ExposureWarning {
		t.Fatalf("after 3 more binary queries: queries=%d warning=%v", bresp.ClientQueries, bresp.ExposureWarning)
	}
	if string(bresp.Client) != "carol" {
		t.Fatalf("binary response client %q", bresp.Client)
	}
}
