package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"

	"github.com/reconpriv/reconpriv/internal/chimerge"
	"github.com/reconpriv/reconpriv/internal/core"
	"github.com/reconpriv/reconpriv/internal/datagen"
	"github.com/reconpriv/reconpriv/internal/dataset"
	"github.com/reconpriv/reconpriv/internal/query"
)

// medicalRequest is the small, fast publication most tests publish.
func medicalRequest() PublishRequest {
	return PublishRequest{Dataset: DatasetMedical, Size: 2000, Seed: 1, Wait: true}
}

// startServer spins up a test server.
func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends a JSON body and decodes the JSON response into out, returning
// the status code.
func post(t *testing.T, url string, body any, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// postRaw sends a body verbatim — the error-path tests use it to deliver
// deliberately malformed JSON that post's Marshal round-trip would reject.
func postRaw(t *testing.T, url, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func get(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestServedBatchMatchesInlineMarginals is the golden test: answers served
// over HTTP must equal Marginals.Count / Marginals.Estimate computed inline
// from an identical pipeline run (same data, same seed — the parallel
// publisher is bit-deterministic for any worker count).
func TestServedBatchMatchesInlineMarginals(t *testing.T) {
	_, ts := startServer(t, Config{})
	var pub publicationJSON
	if code := post(t, ts.URL+"/publish", medicalRequest(), &pub); code != http.StatusOK {
		t.Fatalf("publish returned %d", code)
	}
	if pub.Status != "ready" {
		t.Fatalf("publication is %s: %s", pub.Status, pub.Error)
	}

	// Inline reference pipeline.
	raw, err := datagen.Medical(2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := chimerge.Generalize(raw, chimerge.DefaultSignificance)
	if err != nil {
		t.Fatal(err)
	}
	groups := dataset.GroupsOf(res.Table)
	published, _, err := core.PublishSPSParallel(1, groups, core.Params{P: 0.5, Lambda: 0.3, Delta: 0.3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	marg, err := query.BuildMarginalsFromGroups(published, 3)
	if err != nil {
		t.Fatal(err)
	}

	// Every (Gender, Job, Disease) combination as a served batch.
	schema := datagen.MedicalSchema()
	var wire []QueryJSON
	var inline []query.Query
	for g := uint16(0); g < 2; g++ {
		for j := uint16(0); j < 5; j++ {
			for sa := uint16(0); sa < 10; sa++ {
				wire = append(wire, QueryJSON{
					Conds: []CondJSON{
						{Attr: "Gender", Value: schema.Attrs[0].Label(g)},
						{Attr: "Job", Value: schema.Attrs[1].Label(j)},
					},
					SA: schema.SAAttr().Label(sa),
				})
				// The inline query goes through the same generalization map.
				cg, cj := g, j
				for i := range res.Mappings {
					switch res.Mappings[i].Attr {
					case 0:
						cg = res.Mappings[i].OldToNew[g]
					case 1:
						cj = res.Mappings[i].OldToNew[j]
					}
				}
				inline = append(inline, query.Query{
					Conds: []query.Cond{{Attr: 0, Value: cg}, {Attr: 1, Value: cj}},
					SA:    sa,
				})
			}
		}
	}

	var resp QueryResponse
	if code := post(t, ts.URL+"/query", queryRequest{ID: pub.ID, Queries: wire}, &resp); code != http.StatusOK {
		t.Fatalf("query returned %d", code)
	}
	if len(resp.Answers) != len(wire) {
		t.Fatalf("%d answers for %d queries", len(resp.Answers), len(wire))
	}
	for i := range inline {
		if resp.Answers[i].Error != "" {
			t.Fatalf("query %d failed: %s", i, resp.Answers[i].Error)
		}
		count, err := marg.Count(inline[i])
		if err != nil {
			t.Fatal(err)
		}
		if resp.Answers[i].Count != count {
			t.Fatalf("query %d: served count %d, inline %d", i, resp.Answers[i].Count, count)
		}
		est, err := marg.Estimate(inline[i], 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Answers[i].Estimate != est {
			t.Fatalf("query %d: served estimate %v, inline %v", i, resp.Answers[i].Estimate, est)
		}
	}
}

// TestPublishSingleflightDedupe hammers one identical publish request from
// many goroutines: every caller must receive the same publication id and
// the pipeline must run exactly once.
func TestPublishSingleflightDedupe(t *testing.T) {
	s, _ := startServer(t, Config{})
	const callers = 32
	ids := make([]string, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, _, err := s.Publish(medicalRequest(), true)
			if err != nil {
				t.Error(err)
				return
			}
			ids[i] = e.ID()
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("caller %d got id %s, caller 0 got %s", i, ids[i], ids[0])
		}
	}
	st := s.Stats()
	if st.PublishRuns != 1 {
		t.Fatalf("pipeline ran %d times for %d identical requests", st.PublishRuns, callers)
	}
	if st.CacheHits != callers-1 {
		t.Fatalf("cache hits %d, want %d", st.CacheHits, callers-1)
	}
	if st.Publications != 1 {
		t.Fatalf("registry holds %d publications, want 1", st.Publications)
	}
}

// TestConcurrentPublishQuery is the race test (run with -race in CI):
// publishers, queriers, inserters, and refreshers all hit one server at
// once.
func TestConcurrentPublishQuery(t *testing.T) {
	s, ts := startServer(t, Config{})

	// Pre-publish the queried and the incremental publications.
	qe, _, err := s.Publish(medicalRequest(), true)
	if err != nil {
		t.Fatal(err)
	}
	incReq := medicalRequest()
	incReq.Method = MethodIncremental
	ie, _, err := s.Publish(incReq, true)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	// Publishers: a parameter sweep plus repeats of the cached key.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := medicalRequest()
			req.Seed = int64(1 + i%4) // 4 distinct keys, each published twice
			if _, _, err := s.Publish(req, true); err != nil {
				t.Error(err)
			}
		}(i)
	}
	// Queriers.
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := qe.ID()
			if i%2 == 0 {
				id = ie.ID()
			}
			for r := 0; r < 10; r++ {
				var resp QueryResponse
				code := post(t, ts.URL+"/query", queryRequest{
					ID:   id,
					Wait: true,
					Queries: []QueryJSON{
						{Conds: []CondJSON{{Attr: "Job", Value: "Engineer"}}, SA: "Flu"},
						{Conds: []CondJSON{{Attr: "Gender", Value: "Female"}}, SA: "BreastCancer"},
					},
				}, &resp)
				if code != http.StatusOK {
					t.Errorf("query returned %d", code)
					return
				}
			}
		}(i)
	}
	// Inserters into the incremental publication.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 5; r++ {
				var resp insertResponse
				code := post(t, ts.URL+"/insert", insertRequest{
					ID: ie.ID(),
					Records: []map[string]string{
						{"Gender": "Male", "Job": "Engineer", "Disease": "Flu"},
						{"Gender": "Female", "Job": "Teacher", "Disease": "Migraine"},
					},
				}, &resp)
				if code != http.StatusOK {
					t.Errorf("insert returned %d", code)
					return
				}
			}
		}()
	}
	// Refreshers of the SPS publication.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < 3; r++ {
			code := post(t, ts.URL+"/refresh", refreshRequest{ID: qe.ID(), Wait: true}, nil)
			if code != http.StatusOK {
				t.Errorf("refresh returned %d", code)
				return
			}
		}
	}()
	wg.Wait()

	st := s.Stats()
	if st.QueryErrors != 0 {
		t.Fatalf("%d per-query errors", st.QueryErrors)
	}
	if st.Inserts != 20 {
		t.Fatalf("inserts %d, want 20", st.Inserts)
	}
}

// TestInsertAbsorbsRecords checks the incremental path end to end: inserts
// land without a republish, and the next query serves the re-indexed data.
func TestInsertAbsorbsRecords(t *testing.T) {
	s, ts := startServer(t, Config{})
	req := medicalRequest()
	req.Method = MethodIncremental
	req.Size = 1000
	e, _, err := s.Publish(req, true)
	if err != nil {
		t.Fatal(err)
	}

	records := make([]map[string]string, 50)
	for i := range records {
		records[i] = map[string]string{"Gender": "Male", "Job": "Engineer", "Disease": "Flu"}
	}
	var ins insertResponse
	if code := post(t, ts.URL+"/insert", insertRequest{ID: e.ID(), Records: records}, &ins); code != http.StatusOK {
		t.Fatalf("insert returned %d", code)
	}
	if ins.Inserted != 50 || ins.Trials+ins.Absorbed != 50 {
		t.Fatalf("unexpected insert accounting: %+v", ins)
	}
	if ins.TotalRecords != 1050 {
		t.Fatalf("total records %d, want 1050", ins.TotalRecords)
	}

	// The next query triggers the lazy re-index; afterwards the publication
	// metadata reflects the grown data.
	var resp QueryResponse
	if code := post(t, ts.URL+"/query", queryRequest{
		ID:      e.ID(),
		Queries: []QueryJSON{{Conds: []CondJSON{{Attr: "Job", Value: "Engineer"}}, SA: "Flu"}},
	}, &resp); code != http.StatusOK {
		t.Fatalf("query returned %d", code)
	}
	var info publicationJSON
	if code := get(t, fmt.Sprintf("%s/publications?id=%s", ts.URL, e.ID()), &info); code != http.StatusOK {
		t.Fatal("publication lookup failed")
	}
	if info.Meta == nil || info.Meta.Records != 1050 || info.Meta.RecordsOut != 1050 {
		t.Fatalf("metadata not re-indexed: %+v", info.Meta)
	}

	// Inserting into a non-incremental publication is refused.
	spsEntry, _, err := s.Publish(medicalRequest(), true)
	if err != nil {
		t.Fatal(err)
	}
	if code := post(t, ts.URL+"/insert", insertRequest{ID: spsEntry.ID(), Records: records[:1]}, nil); code != http.StatusConflict {
		t.Fatalf("insert into sps publication returned %d, want 409", code)
	}
}

// TestRefreshRedrawsPerturbation checks that /refresh bumps the generation
// and actually re-rolls the randomness while keeping the id stable.
func TestRefreshRedrawsPerturbation(t *testing.T) {
	s, ts := startServer(t, Config{})
	e, _, err := s.Publish(medicalRequest(), true)
	if err != nil {
		t.Fatal(err)
	}
	schema := datagen.MedicalSchema()
	var wire []QueryJSON
	for j := uint16(0); j < 5; j++ {
		for sa := uint16(0); sa < 10; sa++ {
			wire = append(wire, QueryJSON{
				Conds: []CondJSON{{Attr: "Job", Value: schema.Attrs[1].Label(j)}},
				SA:    schema.SAAttr().Label(sa),
			})
		}
	}
	counts := func() []int {
		var resp QueryResponse
		if code := post(t, ts.URL+"/query", queryRequest{ID: e.ID(), Queries: wire}, &resp); code != http.StatusOK {
			t.Fatalf("query returned %d", code)
		}
		out := make([]int, len(resp.Answers))
		for i, a := range resp.Answers {
			if a.Error != "" {
				t.Fatalf("query %d: %s", i, a.Error)
			}
			out[i] = a.Count
		}
		return out
	}
	before := counts()

	var ref publicationJSON
	if code := post(t, ts.URL+"/refresh", refreshRequest{ID: e.ID(), Wait: true}, &ref); code != http.StatusOK {
		t.Fatalf("refresh returned %d", code)
	}
	if ref.Generation != 1 {
		t.Fatalf("generation %d after refresh, want 1", ref.Generation)
	}
	if ref.ID != e.ID() {
		t.Fatalf("refresh changed the id: %s -> %s", e.ID(), ref.ID)
	}
	after := counts()

	same := true
	for i := range before {
		if before[i] != after[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("refresh did not change a single published count (RNG stream not fresh?)")
	}
}

// TestFailedPublishRetries checks that a key whose first build failed is
// not poisoned: a later identical publish retries the build and can
// succeed once the underlying cause (here, a missing CSV file) is fixed.
func TestFailedPublishRetries(t *testing.T) {
	s, _ := startServer(t, Config{AllowCSV: true})
	path := t.TempDir() + "/data.csv"
	req := PublishRequest{Dataset: DatasetCSV, Path: path, SA: "Disease", Wait: true}

	e, started, err := s.Publish(req, true)
	if err != nil {
		t.Fatal(err)
	}
	if !started || e.Status() != "failed" {
		t.Fatalf("publish of a missing file: started=%v status=%s", started, e.Status())
	}

	if err := os.WriteFile(path, []byte("Gender,Disease\nMale,Flu\nFemale,Flu\nMale,HIV\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	e2, started, err := s.Publish(req, true)
	if err != nil {
		t.Fatal(err)
	}
	if e2.ID() != e.ID() {
		t.Fatalf("retry changed the id: %s -> %s", e.ID(), e2.ID())
	}
	if !started {
		t.Fatal("second publish did not retry the failed build")
	}
	if e2.Status() != "ready" {
		pub, err := e2.Publication()
		t.Fatalf("retry did not recover: status=%s pub=%v err=%v", e2.Status(), pub, err)
	}
	pub, err := e2.Publication()
	if err != nil {
		t.Fatal(err)
	}
	if pub.Meta.Records != 3 {
		t.Fatalf("records %d, want 3", pub.Meta.Records)
	}
	if st := s.Stats(); st.PublishRuns != 2 {
		t.Fatalf("publish runs %d, want 2 (initial failure + retry)", st.PublishRuns)
	}
}

// TestPublicationLimit checks the registry creation cap and that size
// bounds reject oversized generator requests.
func TestPublicationLimit(t *testing.T) {
	s, _ := startServer(t, Config{MaxPublications: 2})
	for seed := int64(1); seed <= 2; seed++ {
		req := medicalRequest()
		req.Seed = seed
		if _, _, err := s.Publish(req, true); err != nil {
			t.Fatal(err)
		}
	}
	req := medicalRequest()
	req.Seed = 3
	if _, _, err := s.Publish(req, true); err == nil {
		t.Fatal("third distinct key accepted beyond MaxPublications=2")
	}
	// Cached keys still resolve.
	req.Seed = 1
	if _, _, err := s.Publish(req, true); err != nil {
		t.Fatalf("cached key rejected: %v", err)
	}

	// Size bounds.
	if err := (&PublishRequest{Dataset: DatasetMedical, Size: MaxGeneratedSize + 1}).Normalize(); err == nil {
		t.Fatal("oversized medical request accepted")
	}
	if err := (&PublishRequest{Dataset: DatasetCensus, Size: 600000}).Normalize(); err == nil {
		t.Fatal("oversized census request accepted")
	}
	if err := (&PublishRequest{Dataset: DatasetMedical, Size: -1}).Normalize(); err == nil {
		t.Fatal("negative size accepted")
	}
}

// TestExposureAccounting checks the per-client cumulative counter and the
// warning threshold.
func TestExposureAccounting(t *testing.T) {
	s, ts := startServer(t, Config{ExposureWarn: 10})
	e, _, err := s.Publish(medicalRequest(), true)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]QueryJSON, 6)
	for i := range batch {
		batch[i] = QueryJSON{Conds: []CondJSON{{Attr: "Job", Value: "Clerk"}}, SA: "Flu"}
	}
	var first QueryResponse
	post(t, ts.URL+"/query", queryRequest{ID: e.ID(), Client: "alice", Queries: batch}, &first)
	if first.ClientQueries != 6 || first.ExposureWarning {
		t.Fatalf("after 6 queries: %+v", first)
	}
	var second QueryResponse
	post(t, ts.URL+"/query", queryRequest{ID: e.ID(), Client: "alice", Queries: batch}, &second)
	if second.ClientQueries != 12 || !second.ExposureWarning {
		t.Fatalf("after 12 queries: %+v", second)
	}
	// A different client starts from zero.
	var other QueryResponse
	post(t, ts.URL+"/query", queryRequest{ID: e.ID(), Client: "bob", Queries: batch}, &other)
	if other.ClientQueries != 6 || other.ExposureWarning {
		t.Fatalf("bob after 6 queries: %+v", other)
	}
}

// TestRequestValidation covers the failure surface of the HTTP API.
func TestRequestValidation(t *testing.T) {
	s, ts := startServer(t, Config{MaxBatch: 4})
	e, _, err := s.Publish(medicalRequest(), true)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		url  string
		body any
		want int
	}{
		{"unknown dataset", ts.URL + "/publish", PublishRequest{Dataset: "nope"}, http.StatusBadRequest},
		{"unknown method", ts.URL + "/publish", PublishRequest{Dataset: DatasetMedical, Method: "laplace"}, http.StatusBadRequest},
		{"csv disabled", ts.URL + "/publish", PublishRequest{Dataset: DatasetCSV, Path: "x.csv", SA: "S"}, http.StatusBadRequest},
		{"bad p", ts.URL + "/publish", PublishRequest{Dataset: DatasetMedical, P: 1.5}, http.StatusBadRequest},
		{"missing publication", ts.URL + "/query", queryRequest{ID: "pub-none", Queries: []QueryJSON{{SA: "Flu"}}}, http.StatusNotFound},
		{"empty batch", ts.URL + "/query", queryRequest{ID: e.ID()}, http.StatusBadRequest},
		{"oversized batch", ts.URL + "/query", queryRequest{ID: e.ID(), Queries: make([]QueryJSON, 5)}, http.StatusRequestEntityTooLarge},
		{"missing refresh target", ts.URL + "/refresh", refreshRequest{ID: "pub-none"}, http.StatusNotFound},
		{"insert without records", ts.URL + "/insert", insertRequest{ID: e.ID()}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code := post(t, tc.url, tc.body, nil); code != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.want)
		}
	}

	// Per-query errors are per-query, not batch-fatal.
	var resp QueryResponse
	post(t, ts.URL+"/query", queryRequest{ID: e.ID(), Queries: []QueryJSON{
		{Conds: []CondJSON{{Attr: "Job", Value: "Engineer"}}, SA: "Flu"},
		{Conds: []CondJSON{{Attr: "Job", Value: "Astronaut"}}, SA: "Flu"},
		{Conds: []CondJSON{{Attr: "Disease", Value: "Flu"}}, SA: "Flu"},
	}}, &resp)
	if resp.Answers[0].Error != "" {
		t.Fatalf("valid query failed: %s", resp.Answers[0].Error)
	}
	if resp.Answers[1].Error == "" || resp.Answers[2].Error == "" {
		t.Fatalf("invalid queries did not error: %+v", resp.Answers[1:])
	}

	// GET endpoints exist and respond.
	if code := get(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz returned %d", code)
	}
	var st statszResponse
	if code := get(t, ts.URL+"/statsz", &st); code != http.StatusOK {
		t.Fatalf("statsz returned %d", code)
	}
	if st.QueryBatches == 0 || st.QueriesAnswered == 0 {
		t.Fatalf("statsz counters empty: %+v", st)
	}
	if st.QueryErrors != 2 {
		t.Fatalf("query errors %d, want 2", st.QueryErrors)
	}
}

// TestGeneralizedLabelQueries checks that clients may speak either the
// original vocabulary (mapped through the chi-square generalization) or the
// post-generalization labels.
func TestGeneralizedLabelQueries(t *testing.T) {
	s, ts := startServer(t, Config{})
	// medical-color guarantees a merge: FavoriteColor is SA-irrelevant, so
	// its six values generalize to one.
	req := PublishRequest{Dataset: DatasetMedicalColor, Size: 4000, Seed: 1, Wait: true}
	e, _, err := s.Publish(req, true)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := e.Publication()
	if err != nil {
		t.Fatal(err)
	}
	ci, err := pub.Orig.AttrIndex("FavoriteColor")
	if err != nil {
		t.Fatal(err)
	}
	genLabel := pub.Marg.Schema.Attrs[ci].Values[0]

	var resp QueryResponse
	post(t, ts.URL+"/query", queryRequest{ID: e.ID(), Queries: []QueryJSON{
		{Conds: []CondJSON{{Attr: "FavoriteColor", Value: "Red"}}, SA: "Flu"},
		{Conds: []CondJSON{{Attr: "FavoriteColor", Value: genLabel}}, SA: "Flu"},
	}}, &resp)
	for i, a := range resp.Answers {
		if a.Error != "" {
			t.Fatalf("query %d: %s", i, a.Error)
		}
	}
	if len(pub.Marg.Schema.Attrs[ci].Values) == 1 && resp.Answers[0].Count != resp.Answers[1].Count {
		t.Fatalf("original and generalized label disagree: %d vs %d",
			resp.Answers[0].Count, resp.Answers[1].Count)
	}
}
