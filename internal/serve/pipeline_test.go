package serve

import (
	"reflect"
	"testing"

	"github.com/reconpriv/reconpriv/internal/query"
)

// TestPipelineWorkersBitIdentical pins the cold-path determinism contract at
// the serving layer: the same publish request built under different
// PipelineWorkers widths must produce identical metadata and identical
// answers for every query — the fused generalization scan, the sharded
// grouping, and the concurrent marginal fill may differ only in wall-clock.
func TestPipelineWorkersBitIdentical(t *testing.T) {
	queries := func(pub *Publication) []query.Query {
		schema := pub.Marg.Schema
		var qs []query.Query
		for _, a := range schema.NAIndices() {
			for v := 0; v < schema.Attrs[a].Domain(); v++ {
				for sa := 0; sa < schema.SADomain(); sa++ {
					qs = append(qs, query.Query{
						Conds: []query.Cond{{Attr: a, Value: uint16(v)}},
						SA:    uint16(sa),
					})
				}
			}
		}
		return qs
	}

	build := func(workers int) (*Publication, []query.Answer) {
		s := New(Config{PipelineWorkers: workers})
		e, _, err := s.Publish(medicalRequest(), true)
		if err != nil {
			t.Fatal(err)
		}
		pub, err := e.Publication()
		if err != nil {
			t.Fatal(err)
		}
		return pub, pub.Marg.AnswerBatch(queries(pub), pub.Req.P, 1)
	}

	basePub, baseAnswers := build(1)
	for _, workers := range []int{2, 7, 0} {
		pub, answers := build(workers)
		if !reflect.DeepEqual(basePub.Meta, pub.Meta) {
			t.Fatalf("workers=%d: metadata differs: %+v vs %+v", workers, pub.Meta, basePub.Meta)
		}
		if !reflect.DeepEqual(baseAnswers, answers) {
			t.Fatalf("workers=%d: served answers differ", workers)
		}
	}
}
