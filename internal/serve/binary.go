package serve

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/reconpriv/reconpriv/internal/budget"
	"github.com/reconpriv/reconpriv/internal/par"
	"github.com/reconpriv/reconpriv/internal/query"
	"github.com/reconpriv/reconpriv/internal/reconstruct"
	"github.com/reconpriv/reconpriv/internal/wire"
)

// This file is the binary hot path: POST /query and POST /reconstruct
// bodies sent with Content-Type: application/x-rp-binary are decoded as
// internal/wire frames and answered in kind. The semantics are identical
// to the JSON path — same validation order, same limits, same exposure
// accounting, same typed failures (errors are always the JSON ErrorBody
// envelope, whatever the request encoding, so the fleet's error taxonomy
// is shared) — but the steady state allocates almost nothing: request
// body, decoded frame, resolved queries, answers, and the response frame
// all live in pooled scratch.

// binScratch is one request's pooled working set.
type binScratch struct {
	body []byte // raw request frame; decoded views alias it
	out  []byte // encoded response frame
	cbuf []byte // resolved client id bytes

	req     wire.QueryReq
	rreq    wire.ReconstructReq
	ireq    wire.InsertReq
	qs      []query.Query
	errs    []error
	answers []query.Answer
	wans    []wire.Answer
	results []wire.RecResult

	// Insert-path scratch: key views over one arena plus the aligned
	// sensitive codes, refilled per request.
	ikeys   [][]uint16
	ikarena []uint16
	isas    []uint16
}

var binPool = sync.Pool{New: func() any { return new(binScratch) }}

// isBinary reports whether a request negotiated the binary framing.
func isBinary(r *http.Request) bool {
	return r.Header.Get("Content-Type") == wire.ContentType
}

// readFrame reads the whole request body into the scratch buffer. A false
// return means the rejection is already written.
func (s *Server) readFrame(w http.ResponseWriter, r *http.Request, st *binScratch) bool {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return false
	}
	st.body = st.body[:0]
	lr := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	for {
		if len(st.body) == cap(st.body) {
			st.body = append(st.body, 0)[:len(st.body)]
		}
		n, err := lr.Read(st.body[len(st.body):cap(st.body)])
		st.body = st.body[:len(st.body)+n]
		if err == io.EOF {
			return true
		}
		if err != nil {
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				WriteError(w, http.StatusRequestEntityTooLarge, CodeTooLarge,
					fmt.Errorf("request body exceeds %d bytes", maxBodyBytes))
				return false
			}
			WriteError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("reading body: %v", err))
			return false
		}
	}
}

// writeFrame emits an encoded success frame.
func writeFrame(w http.ResponseWriter, frame []byte) {
	w.Header().Set("Content-Type", wire.ContentType)
	w.WriteHeader(http.StatusOK)
	w.Write(frame)
}

// handleQueryBinary answers one binary /query batch. The flow mirrors
// handleQuery exactly; divergence would show up in the JSON-vs-binary
// equivalence property test.
func (s *Server) handleQueryBinary(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	st := binPool.Get().(*binScratch)
	defer binPool.Put(st)
	if !s.readFrame(w, r, st) {
		return
	}
	if err := st.req.Decode(st.body); err != nil {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad binary frame: %w", err))
		return
	}
	n := len(st.req.Queries)
	if n == 0 {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("empty query batch"))
		return
	}
	if n > s.cfg.MaxBatch {
		WriteError(w, http.StatusRequestEntityTooLarge, CodeTooLarge,
			fmt.Errorf("batch of %d exceeds the limit %d", n, s.cfg.MaxBatch))
		return
	}
	pub, ok := s.resolvePublication(w, string(st.req.ID), st.req.Wait, true)
	if !ok {
		return
	}
	// Charge before evaluating, exactly like the JSON path: a budget
	// rejection (typed JSON ErrorBody even on the binary path) does no work
	// and is never charged.
	client := clientID(r, string(st.req.Client))
	bres, ok := s.chargeExposure(w, client, pub.ID, int64(n), budget.ClassQuery)
	if !ok {
		return
	}

	// Code mapping is striped like the JSON path's label resolution: the
	// per-query work is tiny, but a 100K batch should not map on one core
	// in front of the evaluation pool.
	st.qs = resizeQueries(st.qs, n)
	st.errs = resizeErrs(st.errs, n)
	par.Striped(n, s.cfg.QueryWorkers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			q := &st.req.Queries[i]
			err := pub.MapConds(q.Conds)
			if err == nil {
				err = pub.MapSA(q.SA)
			}
			st.errs[i] = err
			if err != nil {
				st.qs[i] = query.Query{}
				continue
			}
			st.qs[i] = query.Query{Conds: q.Conds, SA: q.SA}
		}
	})
	st.answers = pub.Marg.AnswerBatchInto(st.answers, st.qs, pub.Req.P, s.cfg.QueryWorkers)

	st.cbuf = append(st.cbuf[:0], client...)
	resp := wire.QueryResp{ID: st.req.ID, Client: st.cbuf}
	st.wans = st.wans[:0]
	var errs uint64
	for i := range st.answers {
		a := &st.answers[i]
		wa := wire.Answer{Count: int64(a.Count), Estimate: a.Estimate}
		if st.errs[i] != nil {
			wa = wire.Answer{Err: []byte(st.errs[i].Error())}
		} else if a.Err != nil {
			wa = wire.Answer{Err: []byte(a.Err.Error())}
		}
		if wa.Err != nil {
			errs++
		}
		st.wans = append(st.wans, wa)
	}
	resp.Answers = st.wans
	resp.Charged = uint64(n)
	resp.ClientQueries, resp.BudgetRemaining, resp.BudgetExact, resp.ExposureWarning = s.wireLedgerValues(bres)

	s.queryBatches.Add(1)
	s.queriesAnswered.Add(uint64(n))
	s.queryErrors.Add(errs)
	elapsed := time.Since(start)
	s.lat.Observe(elapsed)
	resp.ServeMicros = uint64(elapsed.Microseconds())
	st.out = resp.Append(st.out[:0])
	writeFrame(w, st.out)
}

// handleReconstructBinary answers one binary /reconstruct batch,
// mirroring handleReconstruct. Frequencies are returned dense by original
// sensitive-value code; labels are recoverable from /publications?domains=1.
func (s *Server) handleReconstructBinary(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	st := binPool.Get().(*binScratch)
	defer binPool.Put(st)
	if !s.readFrame(w, r, st) {
		return
	}
	if err := st.rreq.Decode(st.body); err != nil {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad binary frame: %w", err))
		return
	}
	n := len(st.rreq.Subsets)
	if n == 0 {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("empty subset batch"))
		return
	}
	if n > s.cfg.MaxBatch {
		WriteError(w, http.StatusRequestEntityTooLarge, CodeTooLarge,
			fmt.Errorf("batch of %d exceeds the limit %d", n, s.cfg.MaxBatch))
		return
	}
	pub, ok := s.resolvePublication(w, string(st.rreq.ID), st.rreq.Wait, true)
	if !ok {
		return
	}
	// Reconstruction charges subsets × sensitive-domain size, and is the
	// first class shed when the client nears quota (graceful degradation).
	client := clientID(r, string(st.rreq.Client))
	charged := int64(n) * int64(pub.Marg.SADomain())
	bres, ok := s.chargeExposure(w, client, pub.ID, charged, budget.ClassReconstruct)
	if !ok {
		return
	}

	st.errs = resizeErrs(st.errs, n)
	par.Striped(n, s.cfg.QueryWorkers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if st.errs[i] = pub.MapConds(st.rreq.Subsets[i]); st.errs[i] != nil {
				// Mirror the JSON path: a failed subset reaches the engine
				// as nil (answered as empty, overridden with the map error
				// below). The decoder refills Subsets next request.
				st.rreq.Subsets[i] = nil
			}
		}
	})
	sets := st.rreq.Subsets
	recs := pub.Eng.ReconstructBatch(sets, reconstruct.BatchOptions{
		Workers: s.cfg.QueryWorkers,
		Clamp:   st.rreq.Clamp,
	})

	st.cbuf = append(st.cbuf[:0], client...)
	resp := wire.ReconstructResp{ID: st.rreq.ID, Client: st.cbuf}
	st.results = st.results[:0]
	var errs uint64
	for i := range recs {
		rec := &recs[i]
		res := wire.RecResult{Size: int64(rec.Size), Freqs: rec.Freqs}
		switch {
		case st.errs[i] != nil:
			res = wire.RecResult{Err: []byte(st.errs[i].Error())}
		case rec.Err != nil:
			res = wire.RecResult{Err: []byte(rec.Err.Error())}
		}
		if res.Err != nil {
			errs++
		}
		st.results = append(st.results, res)
	}
	resp.Results = st.results
	resp.Charged = uint64(charged)
	resp.ClientQueries, resp.BudgetRemaining, resp.BudgetExact, resp.ExposureWarning = s.wireLedgerValues(bres)

	s.reconstructBatches.Add(1)
	s.reconstructions.Add(uint64(n))
	s.queryErrors.Add(errs)
	elapsed := time.Since(start)
	s.lat.Observe(elapsed)
	resp.ServeMicros = uint64(elapsed.Microseconds())
	st.out = resp.Append(st.out[:0])
	writeFrame(w, st.out)
}

// handleInsertBinary ingests one binary /insert batch, mirroring
// handleInsert. Records carry raw codes over the publication's original
// schema in schema order (incremental publications never generalize, so
// original and served schemas coincide); the handler validates every code
// against its attribute domain before touching the publisher, the same
// all-or-nothing admission the JSON path gets from label resolution.
// Inserts charge no exposure, so the response carries no ledger block.
func (s *Server) handleInsertBinary(w http.ResponseWriter, r *http.Request) {
	st := binPool.Get().(*binScratch)
	defer binPool.Put(st)
	if !s.readFrame(w, r, st) {
		return
	}
	if err := st.ireq.Decode(st.body); err != nil {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad binary frame: %w", err))
		return
	}
	n := len(st.ireq.Records)
	if n == 0 {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("no records"))
		return
	}
	if n > s.cfg.MaxInsert {
		WriteError(w, http.StatusRequestEntityTooLarge, CodeTooLarge,
			fmt.Errorf("insert of %d exceeds the limit %d", n, s.cfg.MaxInsert))
		return
	}
	pub, ok := s.resolvePublication(w, string(st.ireq.ID), st.ireq.Wait, false)
	if !ok {
		return
	}
	e := s.reg.get(string(st.ireq.ID))
	if e.inc == nil {
		WriteError(w, http.StatusConflict, CodeNotIncremental,
			fmt.Errorf("publication %q was published with method %q; only incremental publications accept inserts", st.ireq.ID, pub.Req.Method))
		return
	}
	schema := pub.Orig
	if st.ireq.NAttrs != schema.NumAttrs() {
		WriteError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("records carry %d attributes, schema has %d", st.ireq.NAttrs, schema.NumAttrs()))
		return
	}
	naIdx := schema.NAIndices()
	if cap(st.ikarena) < n*len(naIdx) {
		st.ikarena = make([]uint16, n*len(naIdx))
	}
	st.ikarena = st.ikarena[:0]
	st.ikeys = st.ikeys[:0]
	st.isas = st.isas[:0]
	for ri, rec := range st.ireq.Records {
		for _, ai := range naIdx {
			code := rec[ai]
			if int(code) >= schema.Attrs[ai].Domain() {
				WriteError(w, http.StatusBadRequest, CodeBadRequest,
					fmt.Errorf("record %d: attribute %q code %d out of domain [0,%d)", ri, schema.Attrs[ai].Name, code, schema.Attrs[ai].Domain()))
				return
			}
			st.ikarena = append(st.ikarena, code)
		}
		off := len(st.ikarena) - len(naIdx)
		st.ikeys = append(st.ikeys, st.ikarena[off:len(st.ikarena):len(st.ikarena)])
		sa := rec[schema.SA]
		if int(sa) >= schema.SADomain() {
			WriteError(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Errorf("record %d: sensitive code %d out of domain [0,%d)", ri, sa, schema.SADomain()))
			return
		}
		st.isas = append(st.isas, sa)
	}

	resp, err := s.applyInsert(e, st.ikeys, st.isas)
	if err != nil {
		WriteError(w, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	s.inserts.Add(uint64(resp.Inserted))
	s.absorbed.Add(uint64(resp.Absorbed))

	st.cbuf = append(st.cbuf[:0], clientID(r, string(st.ireq.Client))...)
	wresp := wire.InsertResp{
		ID:           st.ireq.ID,
		Client:       st.cbuf,
		Inserted:     uint32(resp.Inserted),
		Trials:       uint32(resp.Trials),
		Absorbed:     uint32(resp.Absorbed),
		TotalRecords: uint64(resp.TotalRecords),
	}
	st.out = wresp.Append(st.out[:0])
	writeFrame(w, st.out)
}

// wireLedgerValues is ledgerValues for the binary framing: unsigned fields,
// with the all-ones sentinel standing in for disabled enforcement.
func (s *Server) wireLedgerValues(res budget.Result) (total, remaining uint64, exact, warn bool) {
	t, rem, exact, warn := s.ledgerValues(res)
	remaining = uint64(rem)
	if rem < 0 {
		remaining = wire.UnlimitedBudget
	}
	return uint64(t), remaining, exact, warn
}

func resizeQueries(dst []query.Query, n int) []query.Query {
	if cap(dst) < n {
		return make([]query.Query, n)
	}
	return dst[:n]
}

func resizeErrs(dst []error, n int) []error {
	if cap(dst) < n {
		return make([]error, n)
	}
	return dst[:n]
}
