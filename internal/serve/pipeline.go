package serve

import (
	"fmt"
	"os"
	"time"

	"github.com/reconpriv/reconpriv/internal/chimerge"
	"github.com/reconpriv/reconpriv/internal/core"
	"github.com/reconpriv/reconpriv/internal/datagen"
	"github.com/reconpriv/reconpriv/internal/dataset"
	"github.com/reconpriv/reconpriv/internal/query"
	"github.com/reconpriv/reconpriv/internal/reconstruct"
	"github.com/reconpriv/reconpriv/internal/stats"
)

// publishSeed derives the RNG seed of one publication generation. Generation
// 0 uses the requested seed verbatim, so a served publication is
// bit-identical to what cmd/rpperturb produces offline with the same seed;
// refreshes mix the generation through SplitMix64 for a well-separated
// fresh stream.
func publishSeed(seed int64, generation int) int64 {
	if generation == 0 {
		return seed
	}
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(generation)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// loadTable returns the raw table behind a request, generating (or reading)
// it at most once per source: results are cached by sourceKey and a cache
// miss runs under singleflight, so a stampede of publishes over one dataset
// — a parameter sweep, say — generates the 300K-record CENSUS exactly once.
func (s *Server) loadTable(req *PublishRequest) (*dataset.Table, error) {
	key := req.sourceKey()
	s.tables.mu.RLock()
	t := s.tables.m[key]
	s.tables.mu.RUnlock()
	if t != nil {
		return t, nil
	}
	v, err, _ := s.sf.Do("table:"+key, func() (any, error) {
		s.tables.mu.RLock()
		t := s.tables.m[key]
		s.tables.mu.RUnlock()
		if t != nil {
			return t, nil
		}
		t, err := generateTable(req)
		if err != nil {
			return nil, err
		}
		// Prime the lazy label indexes while the table is still private to
		// this flight: concurrent builds sharing the cached table (and the
		// query path resolving labels) may then use Code read-only.
		t.Schema.PrimeIndexes()
		s.tables.mu.Lock()
		s.tables.m[key] = t
		s.tables.mu.Unlock()
		return t, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*dataset.Table), nil
}

// generateTable materializes the request's data source.
func generateTable(req *PublishRequest) (*dataset.Table, error) {
	switch req.Dataset {
	case DatasetAdult:
		return datagen.Adult(req.DataSeed), nil
	case DatasetCensus:
		return datagen.Census(req.Size, req.DataSeed)
	case DatasetMedical:
		return datagen.Medical(req.Size, req.DataSeed)
	case DatasetMedicalColor:
		return datagen.MedicalWithColor(req.Size, req.DataSeed)
	case DatasetCSV:
		f, err := os.Open(req.Path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dataset.ReadCSV(f, req.SA)
	}
	return nil, fmt.Errorf("serve: unknown dataset %q", req.Dataset)
}

// buildPublication runs the full pipeline for one generation of a
// publication: load (cached) raw data, generalize, publish with the
// requested method, and index the result for answering. It is the only
// expensive path in the server and runs outside all registry locks; its
// output is immutable.
//
// The cold path is fused and parallel (Config.PipelineWorkers wide): the
// chi-square analysis is one sharded scan (chimerge.Analyze), the
// generalized table is never materialized — grouping applies the value
// mappings on the fly (dataset.GroupsOfMapped) — and the marginal cubes
// fill concurrently. Every stage is bit-identical at any worker count, so
// a publication is still reproducible from its seed alone.
func (s *Server) buildPublication(e *Entry, generation int) (*Publication, error) {
	req := &e.reqCopy
	start := time.Now()
	raw, err := s.loadTable(req)
	if err != nil {
		return nil, err
	}

	workers := s.cfg.PipelineWorkers
	var merge *chimerge.Result
	mapping := make([]*dataset.ValueMapping, raw.Schema.NumAttrs())
	if sig := *req.Significance; sig > 0 {
		merge, err = chimerge.Analyze(raw, sig, workers)
		if err != nil {
			return nil, err
		}
		for i := range merge.Mappings {
			mapping[merge.Mappings[i].Attr] = &merge.Mappings[i]
		}
	}
	groupsOf := func() (*dataset.GroupSet, error) {
		if merge != nil {
			return dataset.GroupsOfMapped(raw, merge.Mappings, workers)
		}
		return dataset.GroupsOfParallel(raw, workers), nil
	}

	pm := req.Params()
	seed := publishSeed(req.Seed, generation)
	var published, rawGroups *dataset.GroupSet
	var meta core.Meta
	switch req.Method {
	case MethodSPS:
		groups, err := groupsOf()
		if err != nil {
			return nil, err
		}
		out, st, err := core.PublishSPSParallel(seed, groups, pm, s.cfg.PublishWorkers)
		if err != nil {
			return nil, err
		}
		published, rawGroups, meta = out, groups, core.ExtractMeta(groups, pm, st)
	case MethodUP:
		groups, err := groupsOf()
		if err != nil {
			return nil, err
		}
		out, err := core.PublishUPParallel(seed, groups, pm.P, s.cfg.PublishWorkers)
		if err != nil {
			return nil, err
		}
		published, rawGroups, meta = out, groups, core.ExtractMeta(groups, pm, nil)
	case MethodIncremental:
		// Incremental publications never generalize, so raw is the working
		// table (Normalize forces Significance to 0).
		published, rawGroups, meta, err = s.buildIncremental(e, raw, pm, seed, generation)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("serve: unknown method %q", req.Method)
	}

	marg, err := query.BuildMarginalsFromGroupsParallel(published, req.MaxDim, workers)
	if err != nil {
		return nil, err
	}
	eng, err := reconstruct.NewEngine(marg, pm.P)
	if err != nil {
		return nil, err
	}
	// Label resolution runs concurrently across query workers; the lazy
	// label indexes must be built before the schemas are shared. The raw
	// schema was primed by loadTable (it is shared across builds); the
	// generalized schema is private to this build (Remap clones it), except
	// for incremental publications, where it aliases the already-primed raw
	// schema and priming again only reads.
	marg.Schema.PrimeIndexes()
	return &Publication{
		ID:         e.id,
		Key:        e.key,
		Req:        e.reqCopy,
		Generation: generation,
		CreatedAt:  time.Now(),
		BuildTime:  time.Since(start),
		Meta:       meta,
		Marg:       marg,
		Eng:        eng,
		Groups:     rawGroups,
		Orig:       raw.Schema,
		mapping:    mapping,
	}, nil
}

// buildIncremental creates (generation 0) or rebuilds (refresh) the
// streaming publisher behind an incremental publication and snapshots it.
// The raw-group snapshot rides along for the audit endpoint (RawGroups
// materializes fresh slices, so the snapshot never aliases the live
// publisher state).
func (s *Server) buildIncremental(e *Entry, work *dataset.Table, pm core.Params, seed int64, generation int) (*dataset.GroupSet, *dataset.GroupSet, core.Meta, error) {
	e.incMu.Lock()
	defer e.incMu.Unlock()
	if e.inc == nil {
		inc, err := core.NewIncremental(work.Schema, pm, stats.NewRand(seed))
		if err != nil {
			return nil, nil, core.Meta{}, err
		}
		if err := inc.AddTable(work); err != nil {
			return nil, nil, core.Meta{}, err
		}
		e.inc = inc
	} else if generation > 0 {
		if err := e.inc.Rebuild(); err != nil {
			return nil, nil, core.Meta{}, err
		}
	}
	// The snapshot below captures the publisher's entire current state, so
	// the delta baselines must advance with it — otherwise the first
	// FlushDelta after this build would re-emit everything the index already
	// holds as a delta generation.
	e.inc.MarkFlushed()
	e.dirty.Store(false)
	snap := e.inc.Snapshot()
	// Metadata derives from the publisher's current raw histograms, not the
	// generation-0 table: after inserts, a refresh must report the stream's
	// violation profile, not the initial batch's.
	raw := e.inc.RawGroups()
	meta := core.ExtractMeta(raw, pm, nil)
	meta.RecordsOut = snap.Total()
	return snap, raw, meta, nil
}

// reindexIncremental rebuilds the marginal index of a dirty incremental
// publication and swaps in a fresh Publication value. It runs under
// singleflight so a burst of queries behind one insert wave triggers one
// snapshot + one index build; queries racing the rebuild are answered from
// the previous index (stale by at most the in-flight insert batch, a
// documented property of the endpoint).
func (s *Server) reindexIncremental(e *Entry) (*Publication, error) {
	v, err, _ := s.sf.Do("reindex:"+e.id, func() (any, error) {
		old := e.pub.Load()
		if !e.dirty.Load() {
			return old, nil
		}
		e.incMu.Lock()
		e.dirty.Store(false)
		snap := e.inc.Snapshot()
		raw := e.inc.RawGroups()
		// Full snapshot taken: advance the delta baselines under the same
		// lock hold so no concurrent insert can flush state this snapshot
		// already covers as a duplicate delta.
		e.inc.MarkFlushed()
		e.incMu.Unlock()
		meta := core.ExtractMeta(raw, old.Req.Params(), nil)
		meta.RecordsOut = snap.Total()
		marg, err := query.BuildMarginalsFromGroupsParallel(snap, old.Req.MaxDim, s.cfg.PipelineWorkers)
		if err != nil {
			return nil, err
		}
		eng, err := reconstruct.NewEngine(marg, old.Req.P)
		if err != nil {
			return nil, err
		}
		pub := *old // shallow copy: shared fields are immutable
		pub.Marg = marg
		pub.Eng = eng
		pub.Groups = raw
		pub.Meta = meta
		if !e.pub.CompareAndSwap(old, &pub) {
			// A concurrent /refresh swapped in a new generation while we
			// re-indexed. Depending on snapshot order either publication may
			// be fresher, so keep the refresh (its generation bump must not
			// be lost) and set dirty again: the next query re-indexes on top
			// of it if inserts are not yet reflected.
			e.dirty.Store(true)
			return e.pub.Load(), nil
		}
		return &pub, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*Publication), nil
}
