package serve

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// latencyHist is a lock-free log-linear latency histogram in the style of
// HDR histograms: durations land in one of 256 atomic buckets — 16 exact
// one-nanosecond buckets followed by 4 linear sub-buckets per power of two —
// so Observe is two atomic adds on the query hot path and quantiles are
// accurate to within 25% of the true value at any magnitude. Writers never
// block; Quantile takes a best-effort snapshot, which is the usual contract
// for monitoring counters.
type latencyHist struct {
	buckets [256]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
}

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(ns uint64) int {
	if ns < 16 {
		return int(ns)
	}
	o := bits.Len64(ns)             // o ≥ 5 since ns ≥ 16
	sub := int((ns >> (o - 3)) & 3) // the two bits after the leading one
	i := 16 + (o-5)*4 + sub
	if i > 255 {
		return 255
	}
	return i
}

// bucketValue returns a representative (midpoint) nanosecond value of bucket i.
func bucketValue(i int) uint64 {
	if i < 16 {
		return uint64(i)
	}
	o := 5 + (i-16)/4
	sub := uint64((i - 16) % 4)
	lo := uint64(1)<<(o-1) + sub<<(o-3)
	return lo + uint64(1)<<(o-4) // midpoint of a 2^(o-3)-wide bucket
}

// Observe records one duration.
func (h *latencyHist) Observe(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	h.buckets[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of observations.
func (h *latencyHist) Count() uint64 { return h.count.Load() }

// Mean returns the mean observed duration (0 when empty).
func (h *latencyHist) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile returns the approximate q-quantile (q in [0,1]) of the observed
// durations, or 0 when the histogram is empty.
func (h *latencyHist) Quantile(q float64) time.Duration {
	var counts [256]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is 1-based: the ⌈q·total⌉-th smallest observation.
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i := range counts {
		seen += counts[i]
		if seen >= rank {
			return time.Duration(bucketValue(i))
		}
	}
	return time.Duration(bucketValue(255))
}
