// Package serve is the long-running publication server behind cmd/rpserve:
// it holds reconstruction-private publications in memory and answers count
// queries against them at scale.
//
// The paper (Wang, Han, Fu, Wong, Yu — EDBT 2015) publishes a perturbed
// table precisely so it can be queried afterwards; Section 6.1 evaluates
// 5,000-query workloads against each publication. This package turns the
// one-shot pipeline (generalize → Corollary 4 test → SPS/UP publish, see
// internal/chimerge and internal/core) into a service:
//
//   - A publication is built once per (dataset, parameters) key and cached
//     together with its prebuilt query.Marginals index in a sharded registry
//     (one RWMutex per shard). Publications are immutable after they are
//     built, so query traffic takes only shard read-locks and one atomic
//     pointer load, and never contends with concurrent publishes.
//   - Concurrent identical publish requests are deduplicated: the registry
//     hands every caller the same pending entry, and the pipeline behind it
//     runs once (see singleflight.go for the primitive that also guards
//     dataset loading and marginal rebuilds).
//   - Queries arrive in batches and are answered from the cached marginal
//     cubes by a bounded worker pool — O(1) per query, no table scan
//     (query.Marginals.AnswerBatch).
//   - Streamed records are absorbed into a served publication through
//     core.Incremental without republishing; the marginal index is rebuilt
//     lazily, at most once per dirty window, when the next query arrives.
//   - The server tracks per-client cumulative query counts. Linear
//     reconstruction attacks (Kasiviswanathan, Rudelson, Smith et al.) grow
//     stronger with every answered query, so operators get a per-client
//     exposure counter and a configurable warning threshold in every query
//     response.
//   - The adversary side of the paper is served too (adversary.go): POST
//     /reconstruct answers batched full-distribution reconstructions
//     through the publication's reconstruct.Engine (each subset charged as
//     m count queries against the exposure counter), and POST /audit runs
//     the parallel per-group (λ, δ) tail audit (core.AuditSweep) on the
//     publication's raw group snapshot — singleflight-deduped and cached
//     by (publication, generation, parameters).
//
// Observability is served from /healthz and /statsz: publication and cache
// counters, query throughput, and p50/p99 request latency from a lock-free
// histogram (latency.go).
//
// HTTP surface (all bodies JSON):
//
//	POST /publish       build-or-get a publication (async; id returned at once)
//	GET  /publications  list cached publications and their metadata
//	POST /query         answer a batch of count queries against one publication
//	POST /reconstruct   batched SA-distribution reconstructions over condition sets
//	POST /audit         parallel per-group privacy audit of a publication (cached)
//	POST /refresh       republish the same key with a fresh RNG stream
//	POST /insert        stream records into an incremental publication
//	POST /snapshot      checkpoint a publication (request + generation + stream state)
//	POST /restore       install a checkpoint as a fresh publication (replica seeding)
//	GET  /digest        publication digest + generation (replica-agreement probe)
//	GET  /healthz       liveness
//	GET  /statsz        counters, throughput, latency quantiles
package serve
