package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"testing"

	"github.com/reconpriv/reconpriv/internal/wire"
)

// postErr posts JSON and returns the status, the decoded typed error body,
// and the Retry-After header — the rejection surface the budget tests pin.
func postErr(t *testing.T, url string, body any) (int, ErrorBody, string) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var eb ErrorBody
	if resp.StatusCode >= 400 {
		if err := json.Unmarshal(raw, &eb); err != nil {
			t.Fatalf("error response is not the typed envelope: %v\n%s", err, raw)
		}
	}
	return resp.StatusCode, eb, resp.Header.Get("Retry-After")
}

func queryBatch(id, client string, n int) queryRequest {
	qs := make([]QueryJSON, n)
	for i := range qs {
		qs[i] = QueryJSON{Conds: []CondJSON{{Attr: "Job", Value: "Clerk"}}, SA: "Flu"}
	}
	return queryRequest{ID: id, Client: client, Queries: qs}
}

// TestBudgetRejectionJSON pins the typed 429 on the JSON path: the quota
// boundary is reachable exactly, the rejection carries budget_exhausted and
// a Retry-After, and a rejected batch is never charged.
func TestBudgetRejectionJSON(t *testing.T) {
	s, ts := startServer(t, Config{BudgetQuota: 10})
	e, _, err := s.Publish(medicalRequest(), true)
	if err != nil {
		t.Fatal(err)
	}

	var first QueryResponse
	if code := post(t, ts.URL+"/query", queryBatch(e.ID(), "alice", 6), &first); code != http.StatusOK {
		t.Fatalf("first batch returned %d", code)
	}
	if first.BudgetRemaining != 4 || !first.BudgetExact {
		t.Fatalf("after 6 of 10: remaining %d exact %v", first.BudgetRemaining, first.BudgetExact)
	}

	// 6 + 6 > 10: rejected, typed, with a Retry-After, and not charged.
	code, eb, retry := postErr(t, ts.URL+"/query", queryBatch(e.ID(), "alice", 6))
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota batch returned %d", code)
	}
	if eb.Code != CodeBudgetExhausted {
		t.Fatalf("rejection code %q, want %q", eb.Code, CodeBudgetExhausted)
	}
	if !eb.Code.Retryable() {
		t.Fatal("budget_exhausted must be retryable: the window turns")
	}
	if secs, err := strconv.Atoi(retry); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q, want a positive integer", retry)
	}
	if got := s.ClientExposure("alice"); got != 6 {
		t.Fatalf("rejected batch charged the ledger: exposure %d, want 6", got)
	}

	// The boundary itself is admitted: 6 + 4 == 10 exactly.
	var last QueryResponse
	if code := post(t, ts.URL+"/query", queryBatch(e.ID(), "alice", 4), &last); code != http.StatusOK {
		t.Fatalf("boundary batch returned %d", code)
	}
	if last.BudgetRemaining != 0 {
		t.Fatalf("boundary batch left remaining %d, want 0", last.BudgetRemaining)
	}
	if code, _, _ := postErr(t, ts.URL+"/query", queryBatch(e.ID(), "alice", 1)); code != http.StatusTooManyRequests {
		t.Fatalf("post-boundary query returned %d", code)
	}

	// Another client is unaffected.
	if code := post(t, ts.URL+"/query", queryBatch(e.ID(), "bob", 6), nil); code != http.StatusOK {
		t.Fatalf("bob returned %d", code)
	}

	st := s.Stats()
	if st.Budget.RejectedClientQuota != 2 {
		t.Fatalf("rejected_client_quota = %d, want 2", st.Budget.RejectedClientQuota)
	}
	if st.TotalCharged != 16 {
		t.Fatalf("total_charged = %d, want 16", st.TotalCharged)
	}
	if !st.Budget.Enforced || st.Budget.Quota != 10 || st.Budget.SketchEpsilon <= 0 {
		t.Fatalf("budget statsz incomplete: %+v", st.Budget)
	}
	if st.Budget.Occupancy != 1 {
		t.Fatalf("occupancy = %v with alice pinned at quota, want 1", st.Budget.Occupancy)
	}
}

// TestBudgetRejectionBinary pins the binary path's rejection contract: the
// 429 body is the same typed JSON ErrorBody the JSON path emits, the header
// carries Retry-After, and the rejected frame is never charged.
func TestBudgetRejectionBinary(t *testing.T) {
	s, ts := startServer(t, Config{BudgetQuota: 5})
	e, _, err := s.Publish(medicalRequest(), true)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := e.Publication()
	if err != nil {
		t.Fatal(err)
	}

	frame := func(n int) []byte {
		req := wire.QueryReq{ID: []byte(pub.ID), Client: []byte("bin-client")}
		for i := 0; i < n; i++ {
			req.Queries = append(req.Queries, wire.Query{SA: 0, Conds: []wire.Cond{{Attr: 0, Value: 0}}})
		}
		return req.Append(nil)
	}

	code, body, ctype := postBinary(t, ts.URL+"/query", frame(3))
	if code != http.StatusOK || ctype != wire.ContentType {
		t.Fatalf("first frame: %d %s", code, ctype)
	}
	var resp wire.QueryResp
	if err := resp.Decode(body); err != nil {
		t.Fatal(err)
	}
	if resp.BudgetRemaining != 2 || !resp.BudgetExact {
		t.Fatalf("binary ledger: remaining %d exact %v", resp.BudgetRemaining, resp.BudgetExact)
	}

	code, body, ctype = postBinary(t, ts.URL+"/query", frame(3))
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota frame returned %d", code)
	}
	if ctype != "application/json" {
		t.Fatalf("binary rejection content type %q, want the JSON error envelope", ctype)
	}
	var eb ErrorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Code != CodeBudgetExhausted {
		t.Fatalf("binary rejection body %s (err %v), want code %q", body, err, CodeBudgetExhausted)
	}
	if got := s.ClientExposure("bin-client"); got != 3 {
		t.Fatalf("rejected frame charged the ledger: exposure %d, want 3", got)
	}
}

// TestBudgetDegradationHTTP drives graceful degradation over HTTP: past the
// soft threshold reconstructions are shed with a typed degraded rejection
// while plain queries still pass, and the hard quota then stops everything.
func TestBudgetDegradationHTTP(t *testing.T) {
	s, ts := startServer(t, Config{BudgetQuota: 1000, BudgetSoftFraction: 0.5})
	e, _, err := s.Publish(medicalRequest(), true)
	if err != nil {
		t.Fatal(err)
	}

	// A fresh client below the soft threshold reconstructs freely.
	rreq := reconstructRequest{ID: e.ID(), Client: "adv", Subsets: [][]CondJSON{
		{{Attr: "Gender", Value: "Male"}},
	}}
	var rr ReconstructResponse
	if code := post(t, ts.URL+"/reconstruct", rreq, &rr); code != http.StatusOK {
		t.Fatalf("fresh reconstruct returned %d", code)
	}
	if rr.BudgetRemaining != 1000-rr.Charged {
		t.Fatalf("reconstruct remaining %d after charge %d", rr.BudgetRemaining, rr.Charged)
	}

	// Fill to exactly the soft threshold (500).
	if code := post(t, ts.URL+"/query", queryBatch(e.ID(), "adv", int(500-rr.Charged)), nil); code != http.StatusOK {
		t.Fatalf("fill batch returned %d", code)
	}

	// Reconstruct-class work is shed first...
	code, eb, retry := postErr(t, ts.URL+"/reconstruct", rreq)
	if code != http.StatusTooManyRequests || eb.Code != CodeBudgetExhausted {
		t.Fatalf("degraded reconstruct: %d %q", code, eb.Code)
	}
	if retry == "" {
		t.Fatal("degraded rejection missing Retry-After")
	}
	// ...while query-class work still passes.
	var qr QueryResponse
	if code := post(t, ts.URL+"/query", queryBatch(e.ID(), "adv", 10), &qr); code != http.StatusOK {
		t.Fatalf("query past soft threshold returned %d", code)
	}

	// The hard quota stops queries too.
	if code := post(t, ts.URL+"/query", queryBatch(e.ID(), "adv", int(qr.BudgetRemaining)), nil); code != http.StatusOK {
		t.Fatalf("exact fill returned %d", code)
	}
	if code, eb, _ := postErr(t, ts.URL+"/query", queryBatch(e.ID(), "adv", 1)); code != http.StatusTooManyRequests || eb.Code != CodeBudgetExhausted {
		t.Fatalf("hard-quota query: %d %q", code, eb.Code)
	}

	st := s.Stats()
	if st.Budget.RejectedDegraded != 1 || st.Budget.RejectedClientQuota != 1 {
		t.Fatalf("rejection counters: degraded %d client_quota %d, want 1 and 1",
			st.Budget.RejectedDegraded, st.Budget.RejectedClientQuota)
	}
}

// TestBudgetDisabled pins the -1 escape hatch: no rejections, the unlimited
// sentinel in both encodings, and /statsz saying so.
func TestBudgetDisabled(t *testing.T) {
	s, ts := startServer(t, Config{BudgetQuota: -1})
	e, _, err := s.Publish(medicalRequest(), true)
	if err != nil {
		t.Fatal(err)
	}
	var qr QueryResponse
	if code := post(t, ts.URL+"/query", queryBatch(e.ID(), "alice", 7), &qr); code != http.StatusOK {
		t.Fatalf("query returned %d", code)
	}
	if qr.BudgetRemaining != -1 {
		t.Fatalf("disabled enforcement: remaining %d, want -1", qr.BudgetRemaining)
	}
	if qr.ClientQueries != 7 {
		t.Fatalf("ledger still counts when disabled: %d, want 7", qr.ClientQueries)
	}
	if st := s.Stats(); st.Budget.Enforced {
		t.Fatal("statsz reports enforcement on")
	}
}
