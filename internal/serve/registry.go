package serve

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reconpriv/reconpriv/internal/core"
	"github.com/reconpriv/reconpriv/internal/dataset"
)

// Entry lifecycle states.
const (
	statePending int32 = iota // build in flight, no publication yet
	stateReady                // publication available via pub.Load()
	stateFailed               // first build failed; failure holds the error
)

// stateName renders a state for the wire.
func stateName(s int32) string {
	switch s {
	case statePending:
		return "pending"
	case stateReady:
		return "ready"
	default:
		return "failed"
	}
}

// entry is one registry slot: the durable identity of a publication key plus
// the atomically-swapped current Publication. Queries read pub with one
// atomic load; publishes and refreshes build off to the side and swap, so
// readers never wait on a build. Incremental publications additionally carry
// the mutable streaming state, serialized by incMu — the only lock on the
// insert path, never taken by pure queries.
type Entry struct {
	id      string
	key     string
	created time.Time
	// reqCopy is the normalized request the entry was created for; refresh
	// rebuilds from it. Immutable after creation (Wait is zeroed so the
	// stored copy is canonical).
	reqCopy PublishRequest

	state   atomic.Int32
	pub     atomic.Pointer[Publication]
	failure atomic.Pointer[string]

	// done is closed when the first build settles (ready or failed); Wait
	// and /query block on it instead of polling.
	done     chan struct{}
	doneOnce sync.Once

	// buildMu serializes build-state transitions (starting a retry of a
	// failed build, tracking its completion channel). The query path never
	// takes it — readers see state/pub through the atomics above.
	buildMu   sync.Mutex
	retryDone chan struct{} // open while a retry build is in flight; guarded by buildMu

	// Incremental state: inc is set exactly once, by the generation-0 build;
	// dirty flags that inserts have outrun the marginal index (the delta
	// path leaves it clear — it is the fallback for lost races and errors).
	incMu sync.Mutex
	inc   *core.Incremental
	dirty atomic.Bool

	// Raw-group overlay state for the delta-insert path, guarded by incMu:
	// ovIdx maps encoded group key -> index into ovBase.Groups, and is only
	// valid while the served publication's Groups is ovBase (overlayRaw
	// rebuilds it otherwise, e.g. after a refresh or full reindex).
	ovBase *dataset.GroupSet
	ovIdx  map[uint64]int32

	// compacting admits at most one background compaction per entry.
	compacting atomic.Bool
}

// ID returns the publication id of the entry.
func (e *Entry) ID() string { return e.id }

// Status returns the entry's lifecycle state: pending, ready, or failed.
func (e *Entry) Status() string { return stateName(e.state.Load()) }

// Publication returns the entry's current publication, or the build error.
// It does not wait: a pending entry reports an error (publish with wait, or
// block on the entry's first build via Server.Publish).
func (e *Entry) Publication() (*Publication, error) {
	if pub := e.pub.Load(); pub != nil {
		return pub, nil
	}
	if msg := e.failure.Load(); msg != nil {
		return nil, fmt.Errorf("serve: publication %s failed: %s", e.id, *msg)
	}
	return nil, fmt.Errorf("serve: publication %s is still building", e.id)
}

// settle records the outcome of a build and unblocks first-build waiters.
// It is reused by retries of a failed first build (doneOnce makes the
// channel close idempotent); success clears any stale failure message.
func (e *Entry) settle(pub *Publication, err error) {
	if err != nil {
		msg := err.Error()
		e.failure.Store(&msg)
		e.state.Store(stateFailed)
	} else {
		e.pub.Store(pub)
		e.failure.Store(nil)
		e.state.Store(stateReady)
	}
	e.doneOnce.Do(func() { close(e.done) })
}

// registry is the sharded publication store. Shard count is fixed at
// construction (rounded up to a power of two); each shard guards its map
// with one RWMutex, so lookups from query traffic take a read-lock on 1/Nth
// of the keyspace and publication inserts never block reads on other
// shards. Entries are never removed — a publication server's working set is
// bounded by the distinct (dataset, params) keys it is asked for.
type registry struct {
	shards []regShard
	mask   uint64
	count  atomic.Int64 // total entries across shards (for the creation cap)
}

type regShard struct {
	mu      sync.RWMutex
	entries map[string]*Entry
}

// newRegistry builds a registry with at least n shards (n ≤ 0 means 16).
func newRegistry(n int) *registry {
	if n <= 0 {
		n = 16
	}
	size := 1
	for size < n {
		size <<= 1
	}
	r := &registry{shards: make([]regShard, size), mask: uint64(size - 1)}
	for i := range r.shards {
		r.shards[i].entries = make(map[string]*Entry)
	}
	return r
}

func (r *registry) shardFor(id string) *regShard {
	h := fnv.New64a()
	h.Write([]byte(id))
	return &r.shards[h.Sum64()&r.mask]
}

// getOrCreate returns the entry for id, creating a pending one when absent.
// created reports whether this call created it — the registry-level dedupe:
// concurrent identical publishes race on one shard lock and exactly one
// caller sees created == true and starts the build. A key mismatch on an
// existing id (an fnv64 collision between distinct request keys) is
// reported as an error rather than silently serving the wrong publication.
func (r *registry) getOrCreate(id, key string, req PublishRequest, max int) (e *Entry, created bool, err error) {
	req.Wait = false
	s := r.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[id]; ok {
		if e.key != key {
			return nil, false, fmt.Errorf("serve: id collision between %q and %q", e.key, key)
		}
		return e, false, nil
	}
	if max > 0 && r.count.Load() >= int64(max) {
		return nil, false, fmt.Errorf("serve: %w: %d distinct keys", ErrCapacity, max)
	}
	e = &Entry{id: id, key: key, created: time.Now(), reqCopy: req, done: make(chan struct{})}
	s.entries[id] = e
	r.count.Add(1)
	return e, true, nil
}

// get returns the entry for id, or nil.
func (r *registry) get(id string) *Entry {
	s := r.shardFor(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.entries[id]
}

// list snapshots all entries, oldest first (ties broken by id).
func (r *registry) list() []*Entry {
	var out []*Entry
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for _, e := range s.entries {
			out = append(out, e)
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(a, b int) bool {
		if !out[a].created.Equal(out[b].created) {
			return out[a].created.Before(out[b].created)
		}
		return out[a].id < out[b].id
	})
	return out
}

// counts returns (total, pending) entries.
func (r *registry) counts() (total, pending int) {
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		total += len(s.entries)
		for _, e := range s.entries {
			if e.state.Load() == statePending {
				pending++
			}
		}
		s.mu.RUnlock()
	}
	return total, pending
}
