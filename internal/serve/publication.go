package serve

import (
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"time"

	"github.com/reconpriv/reconpriv/internal/chimerge"
	"github.com/reconpriv/reconpriv/internal/core"
	"github.com/reconpriv/reconpriv/internal/datagen"
	"github.com/reconpriv/reconpriv/internal/dataset"
	"github.com/reconpriv/reconpriv/internal/query"
	"github.com/reconpriv/reconpriv/internal/reconstruct"
	"github.com/reconpriv/reconpriv/internal/stats"
)

// Publishing methods.
const (
	MethodSPS         = "sps"         // Sampling-Perturbing-Scaling (Section 5)
	MethodUP          = "up"          // uniform perturbation baseline (Section 6)
	MethodIncremental = "incremental" // streaming publisher (core.Incremental)
)

// Built-in dataset names (see internal/datagen); DatasetCSV loads a file.
const (
	DatasetAdult        = "adult"
	DatasetCensus       = "census"
	DatasetMedical      = "medical"
	DatasetMedicalColor = "medical-color"
	DatasetCSV          = "csv"
)

// PublishRequest is the body of POST /publish. The zero value of every
// optional field means "use the default"; Normalize resolves defaults, so
// two requests that spell the same publication differently share one cache
// entry.
type PublishRequest struct {
	// Dataset selects the data source: adult, census, medical,
	// medical-color, or csv (which reads Path with SA as the sensitive
	// attribute).
	Dataset string `json:"dataset"`
	// Size is the record count for the census/medical generators
	// (defaults: census 300,000 — the paper's default |D| — medical 10,000).
	Size int `json:"size,omitempty"`
	// DataSeed drives the synthetic generators (default 1).
	DataSeed int64 `json:"data_seed,omitempty"`
	// Path and SA configure the csv source.
	Path string `json:"path,omitempty"`
	SA   string `json:"sa,omitempty"`
	// Method is sps (default), up, or incremental.
	Method string `json:"method,omitempty"`
	// P, Lambda, Delta are the pipeline parameters (defaults 0.5/0.3/0.3,
	// the paper's Table 6 boldface).
	P      float64 `json:"p,omitempty"`
	Lambda float64 `json:"lambda,omitempty"`
	Delta  float64 `json:"delta,omitempty"`
	// Significance is the chi-square generalization level; nil means the
	// default 0.05, an explicit 0 disables generalization. Incremental
	// publications never generalize (the streaming publisher works on the
	// raw schema), so the field is forced to 0 there.
	Significance *float64 `json:"significance,omitempty"`
	// Seed drives the publication randomness (default 1). Equal normalized
	// requests produce bit-identical publications.
	Seed int64 `json:"seed,omitempty"`
	// MaxDim is the marginal-index depth = the largest answerable query
	// dimensionality (default 3, the paper's d).
	MaxDim int `json:"max_dim,omitempty"`
	// Wait makes POST /publish block until the publication is built instead
	// of returning a pending id immediately. Not part of the cache key.
	Wait bool `json:"wait,omitempty"`
}

// MaxGeneratedSize caps the record count of the generated medical data
// sets. Publish requests arrive unauthenticated, so an uncapped size would
// let one request allocate arbitrary memory in the long-running server
// (census is separately capped at datagen.CensusMaxSize).
const MaxGeneratedSize = 2000000

// Normalize fills defaults in place and validates the request.
func (r *PublishRequest) Normalize() error {
	if r.Size < 0 {
		return fmt.Errorf("serve: size must be non-negative, got %d", r.Size)
	}
	switch r.Dataset {
	case DatasetAdult:
		r.Size = 0 // fixed 45,222 records
	case DatasetCensus:
		if r.Size == 0 {
			r.Size = 300000
		}
		if r.Size > datagen.CensusMaxSize {
			return fmt.Errorf("serve: census size %d exceeds the maximum %d", r.Size, datagen.CensusMaxSize)
		}
	case DatasetMedical, DatasetMedicalColor:
		if r.Size == 0 {
			r.Size = 10000
		}
		if r.Size > MaxGeneratedSize {
			return fmt.Errorf("serve: %s size %d exceeds the maximum %d", r.Dataset, r.Size, MaxGeneratedSize)
		}
	case DatasetCSV:
		if r.Path == "" || r.SA == "" {
			return fmt.Errorf("serve: csv dataset requires path and sa")
		}
		r.Size = 0
	default:
		return fmt.Errorf("serve: unknown dataset %q (want adult, census, medical, medical-color, or csv)", r.Dataset)
	}
	if r.DataSeed == 0 {
		r.DataSeed = 1
	}
	if r.Method == "" {
		r.Method = MethodSPS
	}
	switch r.Method {
	case MethodSPS, MethodUP, MethodIncremental:
	default:
		return fmt.Errorf("serve: unknown method %q (want sps, up, or incremental)", r.Method)
	}
	if r.P == 0 {
		r.P = core.DefaultParams.P
	}
	if r.Lambda == 0 {
		r.Lambda = core.DefaultParams.Lambda
	}
	if r.Delta == 0 {
		r.Delta = core.DefaultParams.Delta
	}
	if r.Significance == nil {
		sig := chimerge.DefaultSignificance
		r.Significance = &sig
	}
	if r.Method == MethodIncremental {
		zero := 0.0
		r.Significance = &zero
	}
	if *r.Significance < 0 || *r.Significance >= 1 {
		return fmt.Errorf("serve: significance must be in [0,1), got %v", *r.Significance)
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.MaxDim == 0 {
		r.MaxDim = 3
	}
	if r.MaxDim < 1 || r.MaxDim > 6 {
		return fmt.Errorf("serve: max_dim must be in [1,6], got %d", r.MaxDim)
	}
	return r.Params().Validate()
}

// Params extracts the core pipeline parameters.
func (r *PublishRequest) Params() core.Params {
	return core.Params{P: r.P, Lambda: r.Lambda, Delta: r.Delta}
}

// Key is the canonical cache key of a normalized request: every field that
// influences the publication, none that doesn't (Wait is excluded).
func (r *PublishRequest) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%d/%d", r.Dataset, r.Size, r.DataSeed)
	if r.Dataset == DatasetCSV {
		fmt.Fprintf(&b, "/%s/%s", r.Path, r.SA)
	}
	fmt.Fprintf(&b, "|%s|p=%g,l=%g,d=%g,sig=%g,seed=%d,dim=%d",
		r.Method, r.P, r.Lambda, r.Delta, *r.Significance, r.Seed, r.MaxDim)
	return b.String()
}

// sourceKey identifies just the raw table behind the request, so parameter
// sweeps over one dataset share a single generated table.
func (r *PublishRequest) sourceKey() string {
	if r.Dataset == DatasetCSV {
		return fmt.Sprintf("%s/%s/%s", r.Dataset, r.Path, r.SA)
	}
	return fmt.Sprintf("%s/%d/%d", r.Dataset, r.Size, r.DataSeed)
}

// IDForKey derives the short publication id from a cache key.
func IDForKey(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return fmt.Sprintf("pub-%012x", h.Sum64()&0xffffffffffff)
}

// Publication is an immutable served publication: the perturbed data's
// marginal index plus everything needed to answer and translate queries.
// It is built once (buildPublication), published via one atomic pointer
// store, and never mutated afterwards — refreshes and incremental
// re-indexing swap in a fresh value.
type Publication struct {
	ID  string
	Key string
	Req PublishRequest // normalized request the publication answers for

	// Generation counts republications of the same key: 0 at first build,
	// +1 per POST /refresh, each drawing from a fresh RNG stream.
	Generation int
	CreatedAt  time.Time
	BuildTime  time.Duration

	// Meta summarizes the raw data and the enforcement run (internal/core).
	Meta core.Meta

	// Marg indexes the published groups for O(1) query answering; it is
	// immutable and safe for concurrent readers (see query.AnswerBatch).
	Marg *query.Marginals

	// Eng is the adversary engine over Marg: batched reconstructions and
	// count estimates for POST /reconstruct. Like Marg it is immutable and
	// shared by concurrent batches.
	Eng *reconstruct.Engine

	// Groups is the raw (pre-perturbation) personal groups of the
	// generalized data — the input of the Corollary 4 test, which POST
	// /audit sweeps to measure per-group tail probabilities. For
	// incremental publications it is a snapshot of the stream's raw
	// histograms at build/re-index time.
	Groups *dataset.GroupSet

	// Orig is the pre-generalization schema — the vocabulary clients speak —
	// and mapping translates original value codes to generalized codes
	// (nil entries: attribute unchanged).
	Orig    *dataset.Schema
	mapping []*dataset.ValueMapping
}

// Digest returns a deterministic fingerprint of everything the publication
// serves: generation, enforcement metadata, the full marginal index, and the
// raw group snapshot. Two builds of the same normalized request, seed, and
// generation must produce equal digests at any PipelineWorkers setting —
// the bit-identity guarantee of the parallel cold path, which internal/sim
// re-checks continuously while traffic is in flight.
func (p *Publication) Digest() string {
	d := stats.NewDigest()
	d.Word(uint64(p.Generation))
	d.Word(uint64(p.Meta.Records))
	d.Word(uint64(p.Meta.RecordsOut))
	d.Word(uint64(p.Meta.Groups))
	d.Word(uint64(p.Meta.ViolatingGroups))
	d.Word(uint64(p.Meta.ViolatingRecords))
	d.Word(uint64(p.Meta.SampledGroups))
	d.Word(uint64(p.Meta.MaxGroupSize))
	d.Word(math.Float64bits(p.Meta.AvgGroupSize))
	d.Word(p.Marg.Checksum())
	if p.Groups != nil {
		d.Word(uint64(p.Groups.NumGroups()))
		for gi := range p.Groups.Groups {
			g := &p.Groups.Groups[gi]
			d.Word(uint64(g.Size))
			for _, k := range g.Key {
				d.Word(uint64(k))
			}
			for _, c := range g.SACounts {
				d.Word(uint64(c))
			}
		}
	}
	return fmt.Sprintf("%016x", d.Sum64())
}

// CondJSON is one equality condition in the wire format: the original
// attribute name and original value label.
type CondJSON struct {
	Attr  string `json:"attr"`
	Value string `json:"value"`
}

// QueryJSON is one count query in the wire format (Eq. 11: conjunctive
// public-attribute conditions plus one sensitive value).
type QueryJSON struct {
	Conds []CondJSON `json:"conds"`
	SA    string     `json:"sa"`
}

// Resolve translates a wire query into engine codes. Condition values are
// resolved against the original schema and mapped through the
// generalization; values that only exist post-generalization (e.g. a merged
// label like "Edu-01+Edu-02") are accepted as written. The sensitive value
// is never generalized, so it resolves against the original SA domain.
func (p *Publication) Resolve(q QueryJSON) (query.Query, error) {
	conds, err := p.ResolveConds(q.Conds)
	if err != nil {
		return query.Query{}, err
	}
	sa, err := p.Orig.SAAttr().Code(q.SA)
	if err != nil {
		return query.Query{}, err
	}
	return query.Query{Conds: conds, SA: sa}, nil
}

// ResolveConds translates a wire condition set into engine codes — the
// condition half of Resolve, shared with the /reconstruct path, which has
// no sensitive value to resolve (it reconstructs the whole SA
// distribution).
func (p *Publication) ResolveConds(cs []CondJSON) ([]query.Cond, error) {
	out := make([]query.Cond, 0, len(cs))
	for _, c := range cs {
		ai, err := p.Orig.AttrIndex(c.Attr)
		if err != nil {
			return nil, err
		}
		if ai == p.Orig.SA {
			return nil, fmt.Errorf("serve: conditions may not reference the sensitive attribute %q", c.Attr)
		}
		code, err := p.Orig.Attrs[ai].Code(c.Value)
		if err == nil {
			if mp := p.mapping[ai]; mp != nil {
				code = mp.OldToNew[code]
			}
		} else if gc, gerr := p.Marg.Schema.Attrs[ai].Code(c.Value); gerr == nil {
			code = gc
		} else {
			return nil, err
		}
		out = append(out, query.Cond{Attr: ai, Value: code})
	}
	return out, nil
}

// MapConds is the binary-wire counterpart of ResolveConds: conditions
// arrive as original codes (attr = schema index, value = index into the
// attribute's original Values list) and are rewritten in place into engine
// codes through the generalization mapping. Every code is bounds-checked
// against the original schema before it indexes anything — a hostile frame
// can carry any uint16.
func (p *Publication) MapConds(conds []query.Cond) error {
	for i := range conds {
		c := &conds[i]
		if c.Attr < 0 || c.Attr >= p.Orig.NumAttrs() {
			return fmt.Errorf("serve: attribute index %d out of range (schema has %d attributes)",
				c.Attr, p.Orig.NumAttrs())
		}
		if c.Attr == p.Orig.SA {
			return fmt.Errorf("serve: conditions may not reference the sensitive attribute %q",
				p.Orig.Attrs[c.Attr].Name)
		}
		if int(c.Value) >= p.Orig.Attrs[c.Attr].Domain() {
			return fmt.Errorf("serve: value code %d out of domain for %q (domain %d)",
				c.Value, p.Orig.Attrs[c.Attr].Name, p.Orig.Attrs[c.Attr].Domain())
		}
		if mp := p.mapping[c.Attr]; mp != nil {
			c.Value = mp.OldToNew[c.Value]
		}
	}
	return nil
}

// MapSA validates a binary-wire sensitive-value code. The sensitive
// attribute is never generalized, so the original code is the engine code.
func (p *Publication) MapSA(sa uint16) error {
	if int(sa) >= p.Orig.SADomain() {
		return fmt.Errorf("serve: SA value code %d out of domain (domain %d)", sa, p.Orig.SADomain())
	}
	return nil
}
