package serve

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestBucketRoundTrip checks the log-linear bucketing error bound: the
// representative value of any duration's bucket is within 25% of it.
func TestBucketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10000; trial++ {
		ns := uint64(rng.Int63n(int64(10 * time.Minute)))
		i := bucketIndex(ns)
		if i < 0 || i > 255 {
			t.Fatalf("ns=%d: bucket %d out of range", ns, i)
		}
		v := bucketValue(i)
		if ns < 16 {
			if v != ns {
				t.Fatalf("small value %d mapped to %d", ns, v)
			}
			continue
		}
		lo, hi := float64(ns)*0.75, float64(ns)*1.25
		if float64(v) < lo || float64(v) > hi {
			t.Fatalf("ns=%d: representative %d outside ±25%%", ns, v)
		}
	}
	// Bucket indexes are monotone in the value.
	prev := 0
	for ns := uint64(1); ns < 1<<40; ns *= 3 {
		i := bucketIndex(ns)
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d", ns)
		}
		prev = i
	}
}

// TestLatencyQuantiles checks quantile extraction on a known distribution.
func TestLatencyQuantiles(t *testing.T) {
	var h latencyHist
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	// 90 observations at ~1ms, 10 at ~100ms.
	for i := 0; i < 90; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count %d", h.Count())
	}
	p50 := h.Quantile(0.50)
	if p50 < 750*time.Microsecond || p50 > 1250*time.Microsecond {
		t.Fatalf("p50 = %v, want ≈1ms", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 75*time.Millisecond || p99 > 125*time.Millisecond {
		t.Fatalf("p99 = %v, want ≈100ms", p99)
	}
	if p50 > p99 {
		t.Fatalf("quantiles not monotone: p50=%v p99=%v", p50, p99)
	}
	mean := h.Mean()
	if mean < 8*time.Millisecond || mean > 13*time.Millisecond {
		t.Fatalf("mean = %v, want ≈10.9ms", mean)
	}
}

// TestLatencyConcurrentObserve checks the lock-free writer path under the
// race detector.
func TestLatencyConcurrentObserve(t *testing.T) {
	var h latencyHist
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(w*1000+i) * time.Microsecond)
				if i%100 == 0 {
					h.Quantile(0.99) // readers race writers by design
				}
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count %d, want 8000", h.Count())
	}
}
