package stats

import (
	"errors"
	"math"
)

// ErrEmpty is returned by summary statistics that are undefined on empty input.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n-1 denominator) sample variance of xs.
// It returns NaN when fewer than two observations are supplied.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the sample mean, sd/sqrt(n). This is
// the "SE" column reported alongside every mean in the paper's Table 1.
func StdErr(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Summary bundles the statistics the experiment harness reports for a set of
// repeated trials.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	StdErr float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary over xs. It returns ErrEmpty when xs is empty.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{
		N:    len(xs),
		Mean: Mean(xs),
		Min:  xs[0],
		Max:  xs[0],
	}
	for _, x := range xs {
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	if len(xs) > 1 {
		s.StdDev = StdDev(xs)
		s.StdErr = s.StdDev / math.Sqrt(float64(len(xs)))
	}
	return s, nil
}

// MustSummarize is Summarize for callers that have already checked len(xs)>0;
// it panics on empty input.
func MustSummarize(xs []float64) Summary {
	s, err := Summarize(xs)
	if err != nil {
		panic(err)
	}
	return s
}

// RelativeError returns |est-actual|/actual, the utility metric used in the
// paper's Section 6 (a smaller relative error means better utility). The
// actual value must be non-zero.
func RelativeError(est, actual float64) float64 {
	return math.Abs(est-actual) / math.Abs(actual)
}
