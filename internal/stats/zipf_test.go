package stats

import (
	"math"
	"testing"
)

// TestZipfDistribution draws heavily from a small support and compares
// empirical frequencies against the exact normalized masses.
func TestZipfDistribution(t *testing.T) {
	for _, s := range []float64{1.1, 1.5, 2.0, 3.0} {
		const n = 8
		z := NewZipf(s, n)
		rng := NewRand(42)
		const draws = 200000
		var counts [n + 1]int
		for i := 0; i < draws; i++ {
			k := z.Draw(rng)
			if k < 1 || k > n {
				t.Fatalf("s=%v: draw %d outside [1,%d]", s, k, n)
			}
			counts[k]++
		}
		var norm float64
		for k := 1; k <= n; k++ {
			norm += math.Pow(float64(k), -s)
		}
		for k := 1; k <= n; k++ {
			want := math.Pow(float64(k), -s) / norm
			got := float64(counts[k]) / draws
			// 3.5 sigma of the binomial plus a floor for tiny cells.
			tol := 3.5*math.Sqrt(want*(1-want)/draws) + 1e-4
			if math.Abs(got-want) > tol {
				t.Errorf("s=%v rank %d: frequency %.5f, want %.5f ± %.5f", s, k, got, want, tol)
			}
		}
	}
}

// TestZipfDeterministic pins that equal seeds give equal streams and that
// draws from a huge support stay in range without any table allocation.
func TestZipfDeterministic(t *testing.T) {
	z := NewZipf(1.2, 10_000_000)
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 1000; i++ {
		x, y := z.Draw(a), z.Draw(b)
		if x != y {
			t.Fatalf("draw %d: %d != %d for equal seeds", i, x, y)
		}
		if x < 1 || x > 10_000_000 {
			t.Fatalf("draw %d out of range: %d", i, x)
		}
	}
}

// TestZipfSkew checks the defining property: low ranks dominate, and a
// larger exponent concentrates more mass on rank 1.
func TestZipfSkew(t *testing.T) {
	rank1 := func(s float64) float64 {
		z := NewZipf(s, 1000)
		rng := NewRand(1)
		hits := 0
		const draws = 50000
		for i := 0; i < draws; i++ {
			if z.Draw(rng) == 1 {
				hits++
			}
		}
		return float64(hits) / draws
	}
	lo, hi := rank1(1.1), rank1(2.0)
	if lo <= 0.05 || hi <= lo {
		t.Fatalf("rank-1 mass: s=1.1 -> %.3f, s=2.0 -> %.3f; want positive and increasing", lo, hi)
	}
}

func TestZipfPanics(t *testing.T) {
	for _, c := range []struct {
		s float64
		n uint64
	}{{1.0, 10}, {0.5, 10}, {2.0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%v, %d): expected panic", c.s, c.n)
				}
			}()
			NewZipf(c.s, c.n)
		}()
	}
}
