package stats

// Digest builds deterministic uint64 fingerprints of integer streams:
// FNV-1a over the little-endian bytes of each folded word. Every
// bit-identity fingerprint in the library (the marginal-index checksum, the
// served-publication digest, the simulator's answer digest) folds through
// this one implementation, so the fingerprints the checks cross-compare can
// never drift apart.
type Digest struct {
	h uint64
}

const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// NewDigest returns an empty digest.
func NewDigest() *Digest { return &Digest{h: fnvOffset64} }

// Word folds one uint64 (as 8 little-endian bytes) into the digest.
func (d *Digest) Word(v uint64) {
	h := d.h
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime64
		v >>= 8
	}
	d.h = h
}

// Sum64 returns the current fingerprint.
func (d *Digest) Sum64() uint64 { return d.h }
