package stats

import (
	"math"
	"math/bits"
)

// Binomial draws an exact sample from Binomial(n, p). Two regimes keep the
// expected cost O(1)-ish in n: below btrsCutoff expected successes the
// sampler inverts the CDF with the standard pmf recurrence (expected np+1
// iterations); above it, Hörmann's BTRS transformed-rejection sampler draws
// in O(1) expected trials. Both regimes sample the exact binomial law — BTRS
// evaluates the true pmf through Stirling tail corrections, it is not a
// normal approximation — so histogram-level perturbation (perturb.Counts)
// is distributed identically to flipping one coin per record, at a cost of
// O(|G|·m) instead of O(|D|) per publication.
func Binomial(rng *Rand, n int, p float64) int {
	if n <= 0 || p <= 0 || math.IsNaN(p) {
		// NaN fails every comparison below; without this guard it would fall
		// through to BTRS and spin in the rejection loop forever. Treat it
		// like the p ≤ 0 degenerate case (no successes), matching the
		// per-record reference path, whose `Float64() < NaN` coin never hits.
		return 0
	}
	if p >= 1 {
		return n
	}
	if p == 0.5 && n <= 64 {
		// Fair coins — the paper's default retention probability — are a
		// popcount: n random bits hold n independent Bernoulli(1/2) draws.
		// One Uint64 replaces up to 64 Float64 comparisons. This is the
		// single hottest case in publication (retention draws per SA cell
		// at P = 0.5).
		return bits.OnesCount64(rng.Uint64() >> (64 - uint(n)))
	}
	if n == 1 {
		if rng.Float64() < p {
			return 1
		}
		return 0
	}
	if p > 0.5 {
		// Sample the complement so both regimes only see p ≤ 1/2.
		return n - Binomial(rng, n, 1-p)
	}
	if float64(n)*p < btrsCutoff {
		return binomialInversion(rng, n, p)
	}
	return binomialBTRS(rng, n, p)
}

// btrsCutoff is the expected-successes threshold between CDF inversion and
// BTRS. Hörmann's rejection constants are tuned for n·p ≥ 10.
const btrsCutoff = 10

// binomialInversion samples Binomial(n, p) for p ≤ 1/2 and n·p < btrsCutoff
// by sequential search of the CDF from k = 0, advancing the pmf with the
// recurrence f(k+1) = f(k)·(n-k)/(k+1)·(p/q). With n·p < 10 and q ≥ 1/2 the
// starting mass q^n ≥ e^(-2np) never underflows.
func binomialInversion(rng *Rand, n int, p float64) int {
	q := 1 - p
	s := p / q
	// q^n: a multiply loop for small n and exp(n·ln q) otherwise — both
	// several times cheaper than math.Pow, and this setup cost dominates
	// the sampler for the small group cells that publication spends most
	// of its draws on.
	var f float64
	if n < 32 {
		f = 1
		for i := 0; i < n; i++ {
			f *= q
		}
	} else {
		f = math.Exp(float64(n) * math.Log(q))
	}
	u := rng.Float64()
	cum := f
	k := 0
	for u > cum && k < n {
		k++
		f *= s * float64(n-k+1) / float64(k)
		cum += f
	}
	return k
}

// binomialBTRS samples Binomial(n, p) for p ≤ 1/2 and n·p ≥ btrsCutoff with
// the transformed-rejection scheme of Hörmann ("The generation of binomial
// random variates", J. Stat. Comput. Simul. 46, 1993). A triangular
// transformation of a uniform pair proposes k; most proposals are accepted
// by the cheap squeeze, and the rest are resolved against the exact log-pmf
// ratio log f(k)/f(mode) written with Stirling tail corrections, so the
// accepted variates follow the exact binomial distribution.
func binomialBTRS(rng *Rand, n int, p float64) int {
	nf := float64(n)
	q := 1 - p
	spq := math.Sqrt(nf * p * q)
	b := 1.15 + 2.53*spq
	a := -0.0873 + 0.0248*b + 0.01*p
	c := nf*p + 0.5
	vr := 0.92 - 4.2/b
	r := p / q
	alpha := (2.83 + 5.1/b) * spq
	m := math.Floor((nf + 1) * p)
	for {
		u := rng.Float64() - 0.5
		v := rng.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + c)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || k > nf {
			continue
		}
		v = math.Log(v * alpha / (a/(us*us) + b))
		bound := (m+0.5)*math.Log((m+1)/(r*(nf-m+1))) +
			(nf+1)*math.Log((nf-m+1)/(nf-k+1)) +
			(k+0.5)*math.Log(r*(nf-k+1)/(k+1)) +
			stirlingTail(m) + stirlingTail(nf-m) -
			stirlingTail(k) - stirlingTail(nf-k)
		if v <= bound {
			return int(k)
		}
	}
}

// stirlingTailTable holds δ(k+1), where δ(x) = ln x! - (x+½)ln x + x - ½ln 2π
// is the Stirling series remainder, for small k where the asymptotic series
// converges too slowly. The one-shift matches the (k+1)-shifted factorial
// terms in the BTRS acceptance bound.
var stirlingTailTable = [...]float64{
	0.08106146679532726,
	0.04134069595540929,
	0.02767792568499834,
	0.02079067210376509,
	0.01664469118982119,
	0.01387612882307075,
	0.01189670994589177,
	0.01041126526197209,
	0.009255462182712733,
	0.008330563433362871,
}

// stirlingTail returns the Stirling series correction δ(k+1); together with
// the closed-form terms it reproduces ln (k+1)! to float64 precision.
func stirlingTail(k float64) float64 {
	if k < float64(len(stirlingTailTable)) {
		return stirlingTailTable[int(k)]
	}
	kp1sq := (k + 1) * (k + 1)
	return (1.0/12 - (1.0/360-1.0/1260/kp1sq)/kp1sq) / (k + 1)
}
