package stats

import "math"

// Zipf draws ranks 1..n with probability proportional to 1/rank^s, s > 1,
// by rejection-inversion for monotone discrete distributions (Hörmann &
// Derflinger, ACM TOMACS 1996). Construction precomputes a handful of
// constants and no tables, so a sampler over 10 million ranks costs the
// same as one over ten — the property the budget experiments rely on when
// they sweep synthetic client populations far past what a materialized CDF
// would allow. Draws consume uniforms from the caller's Rand only, so
// streams stay seed-reproducible.
type Zipf struct {
	s    float64
	n    float64
	hx1  float64 // H(1.5) - p(1): left edge of the inverted area
	hn   float64 // H(n + 0.5): right edge
	cut  float64 // unconditional-accept threshold on k - x
	hInv float64 // 1/(1-s), cached for H and its inverse
	sOne float64 // 1 - s
}

// NewZipf returns a sampler over ranks 1..n with exponent s. It panics if
// s <= 1 or n == 0: the normalizer diverges at s = 1, and
// rejection-inversion needs the strictly convex decreasing tail s > 1
// provides.
func NewZipf(s float64, n uint64) *Zipf {
	if s <= 1 {
		panic("stats: Zipf exponent must be > 1")
	}
	if n == 0 {
		panic("stats: Zipf needs a non-empty rank range")
	}
	z := &Zipf{s: s, n: float64(n), sOne: 1 - s}
	z.hInv = 1 / z.sOne
	z.hx1 = z.bigH(1.5) - 1 // p(1) = 1^-s = 1
	z.hn = z.bigH(z.n + 0.5)
	z.cut = 2 - z.bigHInverse(z.bigH(2.5)-z.p(2))
	return z
}

// bigH is the antiderivative of the density envelope x^-s: x^(1-s)/(1-s).
// It is negative and increasing on (0, inf) for s > 1.
func (z *Zipf) bigH(x float64) float64 {
	return math.Exp(z.sOne*math.Log(x)) * z.hInv
}

// bigHInverse inverts bigH: ((1-s)u)^(1/(1-s)).
func (z *Zipf) bigHInverse(u float64) float64 {
	return math.Exp(z.hInv * math.Log(z.sOne*u))
}

// p is the unnormalized mass k^-s.
func (z *Zipf) p(k float64) float64 {
	return math.Exp(-z.s * math.Log(k))
}

// Draw returns the next rank in [1, n].
func (z *Zipf) Draw(r *Rand) uint64 {
	for {
		u := z.hn + r.Float64()*(z.hx1-z.hn)
		x := z.bigHInverse(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > z.n {
			k = z.n
		}
		// Ranks whose rounding interval lies inside the envelope's
		// acceptance region need no second look; otherwise accept iff u
		// clears the exact per-rank cutoff H(k+0.5) - p(k).
		if k-x <= z.cut || u >= z.bigH(k+0.5)-z.p(k) {
			return uint64(k)
		}
	}
}
