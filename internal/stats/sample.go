package stats

import (
	"math"
)

// Laplace draws one sample from the zero-mean Laplace distribution
// Lap(b) = 1/(2b) exp(-|x|/b) with scale factor b > 0. The variance of
// Lap(b) is 2b², the fixed variance the paper's Section 2 attack exploits.
func Laplace(rng *Rand, b float64) float64 {
	// Inverse CDF method: u uniform on (-1/2, 1/2),
	// x = -b * sign(u) * ln(1 - 2|u|).
	u := rng.Float64() - 0.5
	if u >= 0 {
		return -b * math.Log(1-2*u)
	}
	return b * math.Log(1+2*u)
}

// Gaussian draws one sample from the zero-mean normal distribution with the
// given standard deviation (the Gaussian mechanism of Dwork et al. 2006).
func Gaussian(rng *Rand, sigma float64) float64 {
	return rng.NormFloat64() * sigma
}

// Bernoulli returns true with probability p.
func Bernoulli(rng *Rand, p float64) bool {
	return rng.Float64() < p
}

// Multinomial distributes n trials over the categories of the probability
// vector probs (which must sum to approximately 1) and returns the counts.
// It draws one conditional Binomial per category (counts[i] ~ B(remaining,
// probs[i]/rest)), so with the sublinear sampler in binomial.go the cost is
// O(len(probs)) binomial draws regardless of n.
func Multinomial(rng *Rand, n int, probs []float64) []int {
	counts := make([]int, len(probs))
	remaining := n
	rest := 1.0
	for i := 0; i < len(probs)-1 && remaining > 0; i++ {
		p := probs[i] / rest
		if p > 1 {
			p = 1
		}
		c := Binomial(rng, remaining, p)
		counts[i] = c
		remaining -= c
		rest -= probs[i]
		if rest <= 0 {
			break
		}
	}
	if len(probs) > 0 {
		counts[len(probs)-1] += remaining
	}
	return counts
}

// Categorical draws one index from the discrete distribution probs, which
// must sum to approximately 1.
func Categorical(rng Float64Source, probs []float64) int {
	u := rng.Float64()
	var cum float64
	for i, p := range probs {
		cum += p
		if u < cum {
			return i
		}
	}
	return len(probs) - 1
}

// CategoricalCDF draws one index using a precomputed cumulative distribution
// (cdf[i] = sum of probs[0..i]); it is the fast path for repeated draws from
// the same distribution.
func CategoricalCDF(rng Float64Source, cdf []float64) int {
	u := rng.Float64()
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// CDF converts a probability vector into its cumulative form for use with
// CategoricalCDF.
func CDF(probs []float64) []float64 {
	cdf := make([]float64, len(probs))
	var cum float64
	for i, p := range probs {
		cum += p
		cdf[i] = cum
	}
	if len(cdf) > 0 {
		cdf[len(cdf)-1] = 1 // guard against rounding drift
	}
	return cdf
}

// Normalize scales xs in place so it sums to 1 and returns it. A zero vector
// is left unchanged.
func Normalize(xs []float64) []float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	if sum == 0 {
		return xs
	}
	for i := range xs {
		xs[i] /= sum
	}
	return xs
}
