package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give the same stream")
		}
	}
}

func TestLaplaceMoments(t *testing.T) {
	// Lap(b) has mean 0 and variance 2b².
	rng := NewRand(1)
	const n = 200000
	const b = 3.0
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := Laplace(rng, b)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("Laplace mean = %v, want ~0", mean)
	}
	if math.Abs(variance-2*b*b)/(2*b*b) > 0.05 {
		t.Errorf("Laplace variance = %v, want ~%v", variance, 2*b*b)
	}
}

func TestLaplaceMedianZero(t *testing.T) {
	rng := NewRand(2)
	pos := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if Laplace(rng, 5) > 0 {
			pos++
		}
	}
	if frac := float64(pos) / n; math.Abs(frac-0.5) > 0.01 {
		t.Errorf("Laplace positive fraction = %v, want ~0.5", frac)
	}
}

func TestGaussianMoments(t *testing.T) {
	rng := NewRand(3)
	const n = 200000
	const sigma = 2.5
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := Gaussian(rng, sigma)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("Gaussian mean = %v, want ~0", mean)
	}
	if math.Abs(variance-sigma*sigma)/(sigma*sigma) > 0.05 {
		t.Errorf("Gaussian variance = %v, want ~%v", variance, sigma*sigma)
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	rng := NewRand(4)
	if Binomial(rng, 0, 0.5) != 0 {
		t.Error("Binomial(0, p) should be 0")
	}
	if Binomial(rng, 10, 0) != 0 {
		t.Error("Binomial(n, 0) should be 0")
	}
	if Binomial(rng, 10, 1) != 10 {
		t.Error("Binomial(n, 1) should be n")
	}
	if Binomial(rng, -5, 0.5) != 0 {
		t.Error("Binomial(-5, p) should be 0")
	}
}

func TestBinomialMean(t *testing.T) {
	rng := NewRand(5)
	const trials = 20000
	var sum int
	for i := 0; i < trials; i++ {
		sum += Binomial(rng, 40, 0.3)
	}
	mean := float64(sum) / trials
	if math.Abs(mean-12) > 0.2 {
		t.Errorf("Binomial(40, .3) mean = %v, want ~12", mean)
	}
}

func TestBinomialRange(t *testing.T) {
	// Property: 0 ≤ Binomial(n, p) ≤ n.
	rng := NewRand(6)
	prop := func(n uint8, pRaw uint16) bool {
		p := float64(pRaw) / math.MaxUint16
		k := Binomial(rng, int(n), p)
		return k >= 0 && k <= int(n)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMultinomialConservation(t *testing.T) {
	// Property: counts sum to n and are non-negative.
	rng := NewRand(7)
	prop := func(n uint16, seedProbs []uint8) bool {
		if len(seedProbs) == 0 {
			seedProbs = []uint8{1}
		}
		if len(seedProbs) > 20 {
			seedProbs = seedProbs[:20]
		}
		probs := make([]float64, len(seedProbs))
		for i, s := range seedProbs {
			probs[i] = float64(s) + 1
		}
		Normalize(probs)
		counts := Multinomial(rng, int(n), probs)
		total := 0
		for _, c := range counts {
			if c < 0 {
				return false
			}
			total += c
		}
		return total == int(n)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMultinomialMeans(t *testing.T) {
	rng := NewRand(8)
	probs := []float64{0.5, 0.3, 0.2}
	sums := make([]float64, 3)
	const trials = 2000
	const n = 100
	for i := 0; i < trials; i++ {
		for j, c := range Multinomial(rng, n, probs) {
			sums[j] += float64(c)
		}
	}
	for j, p := range probs {
		mean := sums[j] / trials
		if math.Abs(mean-n*p) > 1.5 {
			t.Errorf("category %d mean = %v, want ~%v", j, mean, n*p)
		}
	}
}

func TestCategoricalAgreesWithCDF(t *testing.T) {
	probs := []float64{0.1, 0.4, 0.25, 0.25}
	cdf := CDF(append([]float64(nil), probs...))
	r1, r2 := NewRand(9), NewRand(9)
	for i := 0; i < 10000; i++ {
		a := Categorical(r1, probs)
		b := CategoricalCDF(r2, cdf)
		if a != b {
			t.Fatalf("iteration %d: Categorical=%d CategoricalCDF=%d", i, a, b)
		}
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	rng := NewRand(10)
	probs := []float64{0.7, 0.2, 0.1}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[Categorical(rng, probs)]++
	}
	for j, p := range probs {
		frac := float64(counts[j]) / n
		if math.Abs(frac-p) > 0.01 {
			t.Errorf("category %d frequency = %v, want ~%v", j, frac, p)
		}
	}
}

func TestCDFLastEntryIsOne(t *testing.T) {
	cdf := CDF([]float64{0.3, 0.3, 0.4000000001})
	if cdf[len(cdf)-1] != 1 {
		t.Errorf("CDF should clamp the final entry to 1, got %v", cdf[len(cdf)-1])
	}
}

func TestNormalize(t *testing.T) {
	xs := Normalize([]float64{2, 3, 5})
	want := []float64{0.2, 0.3, 0.5}
	for i := range xs {
		if !almostEqual(xs[i], want[i], 1e-12) {
			t.Errorf("Normalize[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
	zero := Normalize([]float64{0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Error("Normalize of a zero vector should be unchanged")
	}
}

func TestBernoulliFrequency(t *testing.T) {
	rng := NewRand(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if Bernoulli(rng, 0.3) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) frequency = %v", frac)
	}
}
