package stats

import (
	"math"
	"testing"
)

func TestChiSquareQuantileExtremes(t *testing.T) {
	// A probability very close to 1 forces the bracket expansion loop.
	x, err := ChiSquareQuantile(0.999999, 3)
	if err != nil {
		t.Fatal(err)
	}
	cdf, err := ChiSquareCDF(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cdf-0.999999) > 1e-6 {
		t.Errorf("round trip at extreme probability: %v", cdf)
	}
	// Very large degrees of freedom.
	x, err = ChiSquareQuantile(0.95, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Wilson-Hilferty approximation: ~1074.68 for df=1000 at 0.95.
	if math.Abs(x-1074.68) > 1 {
		t.Errorf("quantile(0.95, 1000) = %v, want ≈ 1074.68", x)
	}
}

func TestRegIncGammaLargeArguments(t *testing.T) {
	// Far tails must saturate without convergence failures.
	p, err := RegIncGammaP(5, 200)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1-1e-12 {
		t.Errorf("P(5, 200) = %v, want ~1", p)
	}
	q, err := RegIncGammaQ(200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if q < 1-1e-12 {
		t.Errorf("Q(200, 5) = %v, want ~1", q)
	}
}

func TestMultinomialZeroTrials(t *testing.T) {
	rng := NewRand(1)
	counts := Multinomial(rng, 0, []float64{0.5, 0.5})
	if counts[0] != 0 || counts[1] != 0 {
		t.Errorf("Multinomial(0) = %v", counts)
	}
}

func TestMultinomialSingleCategory(t *testing.T) {
	rng := NewRand(2)
	counts := Multinomial(rng, 7, []float64{1})
	if counts[0] != 7 {
		t.Errorf("Multinomial single category = %v", counts)
	}
}

func TestCategoricalDegenerateTail(t *testing.T) {
	// A distribution whose entries sum slightly below 1 must still return a
	// valid index (the final category absorbs the rounding).
	rng := NewRand(3)
	probs := []float64{0.3, 0.3, 0.3999999}
	for i := 0; i < 1000; i++ {
		if v := Categorical(rng, probs); v < 0 || v > 2 {
			t.Fatalf("Categorical returned %d", v)
		}
	}
}

func TestLaplaceExtremeScales(t *testing.T) {
	rng := NewRand(4)
	for i := 0; i < 1000; i++ {
		if v := Laplace(rng, 1e-9); math.Abs(v) > 1e-6 {
			t.Fatalf("tiny scale produced %v", v)
		}
	}
	// Large scales stay finite.
	for i := 0; i < 1000; i++ {
		if v := Laplace(rng, 1e12); math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatal("large scale produced non-finite value")
		}
	}
}

func TestSummarizeMinMax(t *testing.T) {
	s, err := Summarize([]float64{3, -1, 7, 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Min != -1 || s.Max != 7 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
}
