package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegIncGammaComplement(t *testing.T) {
	// Property: P(a,x) + Q(a,x) = 1.
	prop := func(aRaw, xRaw uint16) bool {
		a := 0.5 + float64(aRaw%1000)/10
		x := float64(xRaw%2000) / 10
		p, err1 := RegIncGammaP(a, x)
		q, err2 := RegIncGammaQ(a, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(p+q, 1, 1e-10)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestRegIncGammaKnownValues(t *testing.T) {
	// P(1, x) = 1 - exp(-x) (exponential CDF).
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		p, err := RegIncGammaP(1, x)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - math.Exp(-x)
		if !almostEqual(p, want, 1e-12) {
			t.Errorf("P(1, %v) = %v, want %v", x, p, want)
		}
	}
	// P(1/2, x) = erf(sqrt(x)).
	for _, x := range []float64{0.25, 1, 4} {
		p, err := RegIncGammaP(0.5, x)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Erf(math.Sqrt(x))
		if !almostEqual(p, want, 1e-10) {
			t.Errorf("P(1/2, %v) = %v, want %v", x, p, want)
		}
	}
}

func TestRegIncGammaMonotoneInX(t *testing.T) {
	a := 3.0
	prev := -1.0
	for x := 0.0; x < 20; x += 0.25 {
		p, err := RegIncGammaP(a, x)
		if err != nil {
			t.Fatal(err)
		}
		if p < prev-1e-12 {
			t.Fatalf("P(a,x) not monotone at x=%v", x)
		}
		prev = p
	}
}

func TestRegIncGammaDomainErrors(t *testing.T) {
	if _, err := RegIncGammaP(0, 1); err == nil {
		t.Error("a=0 should error")
	}
	if _, err := RegIncGammaP(-1, 1); err == nil {
		t.Error("a<0 should error")
	}
	if _, err := RegIncGammaP(1, -1); err == nil {
		t.Error("x<0 should error")
	}
	if _, err := RegIncGammaQ(math.NaN(), 1); err == nil {
		t.Error("NaN a should error")
	}
}

func TestChiSquareCDFKnownValues(t *testing.T) {
	// Chi-square with 2 degrees of freedom is Exp(1/2): CDF = 1 - exp(-x/2).
	for _, x := range []float64{0.5, 1, 3, 5.991} {
		got, err := ChiSquareCDF(x, 2)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - math.Exp(-x/2)
		if !almostEqual(got, want, 1e-10) {
			t.Errorf("ChiSquareCDF(%v, 2) = %v, want %v", x, got, want)
		}
	}
}

func TestChiSquareQuantileKnownValues(t *testing.T) {
	// Standard critical values at the 0.95 level.
	cases := []struct {
		df   int
		want float64
	}{
		{1, 3.841459},
		{2, 5.991465},
		{5, 11.0705},
		{10, 18.30704},
		{50, 67.50481},
	}
	for _, c := range cases {
		got, err := ChiSquareQuantile(0.95, c.df)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, c.want, 1e-3) {
			t.Errorf("ChiSquareQuantile(0.95, %d) = %v, want %v", c.df, got, c.want)
		}
	}
}

func TestChiSquareQuantileRoundTrip(t *testing.T) {
	// Property: CDF(Quantile(p, df), df) = p.
	prop := func(pRaw uint16, dfRaw uint8) bool {
		p := 0.01 + 0.98*float64(pRaw)/math.MaxUint16
		df := 1 + int(dfRaw%100)
		x, err := ChiSquareQuantile(p, df)
		if err != nil {
			return false
		}
		back, err := ChiSquareCDF(x, df)
		if err != nil {
			return false
		}
		return almostEqual(back, p, 1e-8)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestChiSquareEdgeCases(t *testing.T) {
	if _, err := ChiSquareCDF(1, 0); err == nil {
		t.Error("df=0 should error")
	}
	if got, err := ChiSquareCDF(-1, 3); err != nil || got != 0 {
		t.Errorf("CDF(-1) = %v, %v; want 0, nil", got, err)
	}
	if got, err := ChiSquareSurvival(-1, 3); err != nil || got != 1 {
		t.Errorf("Survival(-1) = %v, %v; want 1, nil", got, err)
	}
	if _, err := ChiSquareQuantile(1, 3); err == nil {
		t.Error("prob=1 should error")
	}
	if got, err := ChiSquareQuantile(0, 3); err != nil || got != 0 {
		t.Errorf("Quantile(0) = %v, %v; want 0, nil", got, err)
	}
}

func TestChiSquareSurvivalComplement(t *testing.T) {
	for _, df := range []int{1, 2, 5, 20, 50} {
		for _, x := range []float64{0.5, 2, 10, 40} {
			cdf, err1 := ChiSquareCDF(x, df)
			sur, err2 := ChiSquareSurvival(x, df)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if !almostEqual(cdf+sur, 1, 1e-10) {
				t.Errorf("CDF+Survival != 1 at x=%v df=%d", x, df)
			}
		}
	}
}
