package stats

import (
	"math"
	"math/bits"
	"math/rand"
)

// SplitMix64 is a fast deterministic rand.Source64 (Steele, Lea & Flood,
// "Fast splittable pseudorandom number generators", OOPSLA 2014). Its state
// is a single uint64, so constructing one is free — unlike the standard
// library's lagged-Fibonacci source, whose Seed() walks a 607-word table and
// allocates ~5 KB. That construction cost dominates publishers that derive
// one private stream per personal group (internal/core's parallel path seeds
// one source per group per publication), which is why the library routes all
// randomness through this source.
//
// The generator passes BigCrush and has period 2⁶⁴; every output is a
// bijective mix of the counter, so all 2⁶⁴ seeds yield distinct streams.
type SplitMix64 struct {
	state uint64
}

// NewSource returns a SplitMix64 source seeded with the given value. It
// satisfies rand.Source64 for callers that want a math/rand.Rand; the
// library's own code uses the concrete Rand below instead.
func NewSource(seed int64) *SplitMix64 {
	return &SplitMix64{state: uint64(seed)}
}

// Uint64 advances the counter by the golden-ratio increment and returns the
// finalizer mix of the new state.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 satisfies rand.Source.
func (s *SplitMix64) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Seed satisfies rand.Source.
func (s *SplitMix64) Seed(seed int64) {
	s.state = uint64(seed)
}

// Rand is the library's deterministic pseudo-random stream: SplitMix64 with
// the handful of derived draws the samplers need. It is a concrete type, not
// an interface, so the per-draw methods inline into hot publication loops —
// a publication makes one to two draws per record equivalent, and the
// interface dispatch of math/rand.Rand's Source indirection was a measurable
// fraction of publication cost. All randomized operations in this library
// accept a *Rand so that experiments are reproducible run to run: a seed
// fully determines every publication.
type Rand struct {
	s SplitMix64

	spare    float64 // cached second variate of the polar Gaussian pair
	hasSpare bool
}

// NewRand returns a deterministic pseudo-random stream for the given seed.
// The stream is backed by SplitMix64 rather than the standard library's
// default source; seeds are as reproducible as before, but the values drawn
// for a given seed differ from releases that used rand.NewSource.
func NewRand(seed int64) *Rand {
	return &Rand{s: SplitMix64{state: uint64(seed)}}
}

// Uint64 returns the next 64 uniform bits.
func (r *Rand) Uint64() uint64 {
	return r.s.Uint64()
}

// RandState is the complete serializable state of a Rand: the SplitMix64
// counter plus the polar-Gaussian spare cache. Restoring it reproduces the
// stream exactly — RestoreRand(r.State()) continues bit-for-bit where r
// left off, which is what lets publication snapshots checkpoint a streaming
// publisher mid-stream.
type RandState struct {
	S        uint64  `json:"s"`
	Spare    float64 `json:"spare,omitempty"`
	HasSpare bool    `json:"has_spare,omitempty"`
}

// State captures the stream's current state for serialization.
func (r *Rand) State() RandState {
	return RandState{S: r.s.state, Spare: r.spare, HasSpare: r.hasSpare}
}

// RestoreRand reconstructs a Rand from a captured state. The returned stream
// produces exactly the draws the captured stream would have produced next.
func RestoreRand(st RandState) *Rand {
	return &Rand{s: SplitMix64{state: st.S}, spare: st.Spare, hasSpare: st.HasSpare}
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *Rand) Float64() float64 {
	return float64(r.s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n) for n ≥ 1, using Lemire's
// multiply-shift rejection ("Fast random integer generation in an interval",
// TOMACS 2019): exactly uniform, one Uint64 per accepted draw, and several
// times cheaper than math/rand's divide-based rejection.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive bound")
	}
	bound := uint64(n)
	hi, lo := bits.Mul64(r.s.Uint64(), bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			hi, lo = bits.Mul64(r.s.Uint64(), bound)
		}
	}
	return int(hi)
}

// Perm returns a uniform permutation of [0, n) (inside-out Fisher-Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// NormFloat64 returns a standard normal variate (Marsaglia's polar method;
// the second variate of each accepted pair is cached).
func (r *Rand) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// Float64Source is the minimal stream the generic distribution helpers
// (Categorical, CategoricalCDF) draw from. Both *Rand and *math/rand.Rand
// satisfy it; the synthetic data generators still feed the latter (see
// NewLegacyRand).
type Float64Source interface {
	Float64() float64
}

// NewLegacyRand returns the stream NewRand produced before the SplitMix64
// migration: the standard library's lagged-Fibonacci source. The synthetic
// data generators (internal/datagen) and the planted-structure tests stay on
// it because their inputs were calibrated against this exact stream — the
// paper-matching artifacts (Table 4/5 domain merges, the ADULT violation
// regime, planted-cluster recovery) depend on the generated records, not
// just their distribution. Nothing on a publication hot path should use it:
// seeding walks a 607-word table and allocates ~5 KB.
func NewLegacyRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
