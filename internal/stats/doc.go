// Package stats provides the statistical substrate used throughout the
// reconstruction-privacy library: seeded random samplers (Laplace, Gaussian,
// binomial, multinomial), summary statistics (mean, variance, standard error),
// and the gamma / chi-square special functions that the Go standard library
// does not ship.
//
// Everything is deterministic given a *rand.Rand seed, which the experiment
// harness relies on for reproducible tables and figures.
package stats
