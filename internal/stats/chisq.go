package stats

import (
	"fmt"
	"math"
)

// ChiSquareCDF returns Pr[X <= x] for a chi-square random variable with df
// degrees of freedom: P(df/2, x/2).
func ChiSquareCDF(x float64, df int) (float64, error) {
	if df <= 0 {
		return 0, fmt.Errorf("stats: chi-square needs positive degrees of freedom, got %d", df)
	}
	if x <= 0 {
		return 0, nil
	}
	return RegIncGammaP(float64(df)/2, x/2)
}

// ChiSquareSurvival returns the upper tail Pr[X > x] = Q(df/2, x/2); this is
// the p-value of an observed chi-square statistic.
func ChiSquareSurvival(x float64, df int) (float64, error) {
	if df <= 0 {
		return 0, fmt.Errorf("stats: chi-square needs positive degrees of freedom, got %d", df)
	}
	if x <= 0 {
		return 1, nil
	}
	return RegIncGammaQ(float64(df)/2, x/2)
}

// ChiSquareQuantile returns the value x such that Pr[X <= x] = prob for a
// chi-square variable with df degrees of freedom. The paper uses the 0.95
// quantile ("expected value of chi-square" at significance 0.05) as the
// critical value of its two-distribution test. The inverse is computed by
// bisection on the CDF, which is monotone; 200 iterations give full float64
// precision over the bracket.
func ChiSquareQuantile(prob float64, df int) (float64, error) {
	if df <= 0 {
		return 0, fmt.Errorf("stats: chi-square needs positive degrees of freedom, got %d", df)
	}
	if prob < 0 || prob >= 1 {
		return 0, fmt.Errorf("stats: chi-square quantile probability must be in [0,1), got %v", prob)
	}
	if prob == 0 {
		return 0, nil
	}
	// Bracket the root: the mean of chi-square(df) is df and the variance is
	// 2df, so df + 20*sqrt(2df) + 100 comfortably exceeds any quantile below
	// 1-1e-12 for the df values used here.
	lo, hi := 0.0, float64(df)+20*math.Sqrt(2*float64(df))+100
	for {
		cdf, err := ChiSquareCDF(hi, df)
		if err != nil {
			return 0, err
		}
		if cdf > prob {
			break
		}
		hi *= 2
		if hi > 1e12 {
			return 0, fmt.Errorf("stats: chi-square quantile bracket failed (prob=%v, df=%d)", prob, df)
		}
	}
	for i := 0; i < 200 && hi-lo > 1e-12*(1+hi); i++ {
		mid := (lo + hi) / 2
		cdf, err := ChiSquareCDF(mid, df)
		if err != nil {
			return 0, err
		}
		if cdf < prob {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}
