package stats

import (
	"fmt"
	"math"
)

// The regularized incomplete gamma functions P(a,x) and Q(a,x) = 1 - P(a,x)
// follow the classic series / continued-fraction split (Numerical Recipes
// §6.2, the same source the paper cites for its chi-square test): the series
// converges quickly for x < a+1 and the continued fraction for x >= a+1.

const (
	gammaEps     = 3e-14
	gammaMaxIter = 500
	gammaTiny    = 1e-300
)

// RegIncGammaP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a,x)/Γ(a) for a > 0, x >= 0.
func RegIncGammaP(a, x float64) (float64, error) {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return 0, fmt.Errorf("stats: RegIncGammaP domain error (a=%v, x=%v)", a, x)
	}
	if x == 0 {
		return 0, nil
	}
	if x < a+1 {
		p, err := gammaSeries(a, x)
		return p, err
	}
	q, err := gammaContinuedFraction(a, x)
	return 1 - q, err
}

// RegIncGammaQ returns the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func RegIncGammaQ(a, x float64) (float64, error) {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return 0, fmt.Errorf("stats: RegIncGammaQ domain error (a=%v, x=%v)", a, x)
	}
	if x == 0 {
		return 1, nil
	}
	if x < a+1 {
		p, err := gammaSeries(a, x)
		return 1 - p, err
	}
	return gammaContinuedFraction(a, x)
}

// gammaSeries evaluates P(a,x) by its power series, valid for x < a+1.
func gammaSeries(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return 0, fmt.Errorf("stats: incomplete gamma series failed to converge (a=%v, x=%v)", a, x)
}

// gammaContinuedFraction evaluates Q(a,x) by its continued fraction (modified
// Lentz method), valid for x >= a+1.
func gammaContinuedFraction(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / gammaTiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < gammaTiny {
			d = gammaTiny
		}
		c = b + an/c
		if math.Abs(c) < gammaTiny {
			c = gammaTiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			return math.Exp(-x+a*math.Log(x)-lg) * h, nil
		}
	}
	return 0, fmt.Errorf("stats: incomplete gamma continued fraction failed to converge (a=%v, x=%v)", a, x)
}
