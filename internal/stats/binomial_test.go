package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBinomialExactEdgeCases(t *testing.T) {
	rng := NewRand(41)
	cases := []struct {
		n    int
		p    float64
		want int
	}{
		{0, 0.5, 0},
		{-5, 0.5, 0},
		{10, 0, 0},
		{10, -0.2, 0},
		{10, 1, 10},
		{10, 1.5, 10},
		{1000000, 0, 0},
		{1000000, 1, 1000000},
	}
	for _, c := range cases {
		for i := 0; i < 100; i++ {
			if got := Binomial(rng, c.n, c.p); got != c.want {
				t.Fatalf("Binomial(%d, %v) = %d, want %d", c.n, c.p, got, c.want)
			}
		}
	}
}

func TestBinomialRangeProperty(t *testing.T) {
	// Property: 0 ≤ Binomial(n, p) ≤ n across both sampling regimes.
	rng := NewRand(42)
	prop := func(nRaw uint32, pRaw uint16) bool {
		n := int(nRaw % 2000000)
		p := float64(pRaw) / math.MaxUint16
		k := Binomial(rng, n, p)
		return k >= 0 && k <= n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// momentCheck draws `trials` samples of Binomial(n, p) and verifies the
// sample mean and variance against np and npq within z standard errors.
func momentCheck(t *testing.T, seed int64, n int, p float64, trials int) {
	t.Helper()
	rng := NewRand(seed)
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		k := float64(Binomial(rng, n, p))
		sum += k
		sumSq += k * k
	}
	mean := sum / float64(trials)
	variance := sumSq/float64(trials) - mean*mean
	wantMean := float64(n) * p
	wantVar := float64(n) * p * (1 - p)
	// Standard error of the mean is sqrt(npq/trials); allow 5σ.
	seMean := math.Sqrt(wantVar / float64(trials))
	if math.Abs(mean-wantMean) > 5*seMean+1e-9 {
		t.Errorf("Binomial(%d, %v): mean %v, want %v ± %v", n, p, mean, wantMean, 5*seMean)
	}
	// The variance of the sample variance is ≈ 2·Var²/trials for light
	// tails; 6σ with a kurtosis cushion.
	seVar := wantVar * math.Sqrt(3/float64(trials))
	if math.Abs(variance-wantVar) > 6*seVar+1e-9 {
		t.Errorf("Binomial(%d, %v): variance %v, want %v ± %v", n, p, variance, wantVar, 6*seVar)
	}
}

func TestBinomialMomentsAcrossRegimes(t *testing.T) {
	cases := []struct {
		n int
		p float64
	}{
		{5, 0.5},        // inversion, tiny n
		{40, 0.1},       // inversion, np = 4
		{199, 0.049},    // inversion, just under the cutoff
		{20, 0.5},       // BTRS boundary, np = 10
		{1000, 0.02},    // BTRS, small p
		{1000, 0.5},     // BTRS, symmetric
		{100000, 0.001}, // BTRS, np = 100 at tiny p
		{100000, 0.999}, // complement path into BTRS
		{300000, 0.25},  // CENSUS-group scale
		{64, 0.9},       // complement path into inversion
	}
	for i, c := range cases {
		momentCheck(t, int64(100+i), c.n, c.p, 20000)
	}
}

func TestBinomialChiSquareGOF(t *testing.T) {
	// Goodness of fit of the sampler against the exact pmf, in both
	// regimes. Bins with expected count < 5 are pooled into the tails.
	cases := []struct {
		seed   int64
		n      int
		p      float64
		trials int
	}{
		{7, 25, 0.2, 50000},  // inversion (np = 5)
		{8, 60, 0.4, 50000},  // BTRS (np = 24)
		{9, 500, 0.1, 50000}, // BTRS, larger n
	}
	for _, c := range cases {
		rng := NewRand(c.seed)
		obs := make([]int, c.n+1)
		for i := 0; i < c.trials; i++ {
			obs[Binomial(rng, c.n, c.p)]++
		}
		// Exact pmf via the recurrence.
		pmf := make([]float64, c.n+1)
		q := 1 - c.p
		pmf[0] = math.Pow(q, float64(c.n))
		for k := 1; k <= c.n; k++ {
			pmf[k] = pmf[k-1] * (c.p / q) * float64(c.n-k+1) / float64(k)
		}
		var chi2 float64
		df := -1 // total is fixed, so categories-1
		var poolObs, poolExp float64
		for k := 0; k <= c.n; k++ {
			exp := pmf[k] * float64(c.trials)
			poolObs += float64(obs[k])
			poolExp += exp
			if poolExp >= 5 {
				d := poolObs - poolExp
				chi2 += d * d / poolExp
				df++
				poolObs, poolExp = 0, 0
			}
		}
		if poolExp > 0 {
			d := poolObs - poolExp
			chi2 += d * d / poolExp
		}
		pval, err := ChiSquareSurvival(chi2, df)
		if err != nil {
			t.Fatal(err)
		}
		if pval < 1e-4 {
			t.Errorf("Binomial(%d, %v): chi2 = %v (df %d), p-value %v — sampler does not match the exact pmf", c.n, c.p, chi2, df, pval)
		}
	}
}

func TestBinomialDeterministicPerSeed(t *testing.T) {
	for _, c := range []struct {
		n int
		p float64
	}{{30, 0.3}, {100000, 0.4}} {
		a, b := NewRand(77), NewRand(77)
		for i := 0; i < 1000; i++ {
			x, y := Binomial(a, c.n, c.p), Binomial(b, c.n, c.p)
			if x != y {
				t.Fatalf("Binomial(%d, %v) not deterministic: %d vs %d at draw %d", c.n, c.p, x, y, i)
			}
		}
	}
}

func TestStirlingTailMatchesLgamma(t *testing.T) {
	// stirlingTail(k) is δ(k+1), so it must reproduce
	// ln (k+1)! = (k+1+½)ln(k+1) − (k+1) + ½ln 2π + stirlingTail(k)
	// across the table and the asymptotic series.
	for k := 0; k <= 200; k++ {
		want, _ := math.Lgamma(float64(k) + 2)
		x := float64(k) + 1
		got := (x+0.5)*math.Log(x) - x + 0.5*math.Log(2*math.Pi) + stirlingTail(float64(k))
		// The truncated series is worst at k = 10 (first non-table point),
		// where its remainder is ~1/(1680·11⁷) ≈ 3e-11 — far below anything
		// a rejection test could distinguish statistically.
		if math.Abs(got-want) > 1e-10*(1+math.Abs(want)) {
			t.Fatalf("stirlingTail(%d): ln (k+1)! = %v, want %v", k, got, want)
		}
	}
}
