package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= tol
}

func TestMeanKnownValues(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{[]float64{1, 2, 3}, 2},
		{[]float64{5}, 5},
		{[]float64{-1, 1}, 0},
		{[]float64{0.1, 0.2, 0.3, 0.4}, 0.25},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestMeanEmptyIsNaN(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestVarianceKnownValues(t *testing.T) {
	// Sample variance of {2,4,4,4,5,5,7,9} is 32/7.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got, want := Variance(xs), 32.0/7.0; !almostEqual(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
}

func TestVarianceNeedsTwoPoints(t *testing.T) {
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of a single point should be NaN")
	}
}

func TestStdErrMatchesDefinition(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	want := StdDev(xs) / math.Sqrt(6)
	if got := StdErr(xs); !almostEqual(got, want, 1e-12) {
		t.Errorf("StdErr = %v, want %v", got, want)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("Summarize(nil) error = %v, want ErrEmpty", err)
	}
}

func TestSummarizeSinglePoint(t *testing.T) {
	s, err := Summarize([]float64{3.5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 1 || s.Mean != 3.5 || s.Min != 3.5 || s.Max != 3.5 {
		t.Errorf("unexpected summary %+v", s)
	}
	if s.StdDev != 0 || s.StdErr != 0 {
		t.Errorf("single point should have zero spread, got %+v", s)
	}
}

func TestSummarizeBounds(t *testing.T) {
	// Property: Min ≤ Mean ≤ Max and N = len(xs), for any non-empty input.
	prop := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw)+1)
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		xs = append(xs, 1) // ensure non-empty
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		return s.N == len(xs) && s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMustSummarizePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSummarize(nil) should panic")
		}
	}()
	MustSummarize(nil)
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(110, 100); !almostEqual(got, 0.1, 1e-12) {
		t.Errorf("RelativeError(110,100) = %v, want 0.1", got)
	}
	if got := RelativeError(90, 100); !almostEqual(got, 0.1, 1e-12) {
		t.Errorf("RelativeError(90,100) = %v, want 0.1", got)
	}
	if got := RelativeError(-50, 100); !almostEqual(got, 1.5, 1e-12) {
		t.Errorf("RelativeError(-50,100) = %v, want 1.5", got)
	}
}
