package sim

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// OpTally counts issued operations (batches, not individual queries) per
// kind. Tallies derive purely from the client streams, so they are part of
// the deterministic summary.
type OpTally struct {
	Query       int64 `json:"query"`
	Insert      int64 `json:"insert"`
	Refresh     int64 `json:"refresh"`
	Reconstruct int64 `json:"reconstruct"`
	Audit       int64 `json:"audit"`
}

// InvariantSummary reports the invariant checker's verdict: how many checks
// ran, how many failed, and a bounded sample of failure messages.
type InvariantSummary struct {
	Checks     int64    `json:"checks"`
	Violations int64    `json:"violations"`
	Failures   []string `json:"failures,omitempty"`
}

// Summary is the machine-readable result of a run. Every field is a pure
// function of (scenario, seed, clients, steps), never of wall-clock time or
// request interleaving, so two runs with equal inputs marshal to identical
// bytes — the property TestSimScenarios pins and regression tooling diffs.
type Summary struct {
	Scenario       string `json:"scenario"`
	Seed           int64  `json:"seed"`
	Clients        int    `json:"clients"`
	StepsPerClient int    `json:"steps_per_client"`
	// Ops counts issued operation batches per kind; Queries and Subsets
	// count the individual queries and reconstruction subsets inside them.
	Ops     OpTally `json:"ops"`
	Queries int64   `json:"queries"`
	Subsets int64   `json:"reconstruction_subsets"`
	// RecordsInserted is the total record count streamed through /insert.
	RecordsInserted int64 `json:"records_inserted"`
	// IngestAppends is the delta-generation append count, present only for
	// refresh-free insert scenarios, where it is exactly one per insert
	// batch and therefore interleaving-independent. (The compaction counter
	// is deliberately absent: whether a background compaction wins its
	// install race is timing-dependent.)
	IngestAppends int64 `json:"ingest_appends,omitempty"`
	// ChargedQueries is the total exposure charged across all clients:
	// answered queries plus SADomain per reconstruction subset.
	ChargedQueries int64 `json:"charged_queries"`
	// AnswersDigest fingerprints every served answer, present only for
	// scenarios whose answers are interleaving-independent (no inserts or
	// refreshes). Per-client digests combine by XOR so the value does not
	// depend on goroutine scheduling.
	AnswersDigest string `json:"answers_digest,omitempty"`
	// Fleet is present for fleet scenarios: topology and chaos counts, all
	// schedule-independent (see FleetSummary).
	Fleet *FleetSummary `json:"fleet,omitempty"`
	// Budget is present for budget scenarios: identity population,
	// acceptance and rejection tallies, all deterministic because each
	// identity's admission sequence depends only on its own drawn history.
	Budget     *BudgetSummary   `json:"budget,omitempty"`
	Invariants InvariantSummary `json:"invariants"`
}

// BudgetSummary is the deterministic budget block of a budget-scenario
// summary: the enforced quotas, the zipf identity population, and how many
// operation batches were accepted and rejected (by reason).
type BudgetSummary struct {
	Quota        int64   `json:"quota"`
	SoftQuota    int64   `json:"soft_quota"`
	IdentityPool int     `json:"identity_pool_per_worker"`
	ZipfS        float64 `json:"zipf_s"`
	// Identities counts distinct identities that landed at least one
	// accepted charge; MaxIdentityCharged is the heaviest identity's total.
	Identities         int   `json:"identities_charged"`
	MaxIdentityCharged int64 `json:"max_identity_charged"`
	// AcceptedBatches counts accepted charged batches; the rejection
	// tallies split refused batches by the manager's reason.
	AcceptedBatches     int64 `json:"accepted_batches"`
	RejectedClientQuota int64 `json:"rejected_client_quota"`
	RejectedDegraded    int64 `json:"rejected_degraded"`
}

// OpTiming is one operation kind's wall-clock latency profile.
type OpTiming struct {
	Op     string  `json:"op"`
	Count  int     `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P90US  float64 `json:"p90_us"`
	P99US  float64 `json:"p99_us"`
}

// Timing holds the wall-clock measurements of a run. It is reported next to
// the Summary, never inside it: timing is the one part of a simulation that
// legitimately differs between identically-seeded runs.
type Timing struct {
	WallMS         float64    `json:"wall_ms"`
	Requests       int64      `json:"requests"`
	RequestsPerSec float64    `json:"requests_per_second"`
	QueriesPerSec  float64    `json:"queries_per_second"`
	Ops            []OpTiming `json:"ops"`
	// Fleet is present for fleet scenarios: router counters whose values
	// depend on request interleaving (see FleetTiming).
	Fleet *FleetTiming `json:"fleet,omitempty"`
}

// Result bundles a run's deterministic summary with its timing.
type Result struct {
	Summary Summary `json:"summary"`
	Timing  Timing  `json:"timing"`
}

// SummaryJSON marshals the deterministic summary with stable indentation —
// the bytes rpsim writes to stdout and determinism tests compare.
func (r *Result) SummaryJSON() ([]byte, error) {
	return json.MarshalIndent(&r.Summary, "", "  ")
}

// Report renders the human-readable run report (tallies plus timing).
func (r *Result) Report() string {
	s := &r.Summary
	t := &r.Timing
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s seed %d: %d clients x %d steps, %.1f ms wall\n",
		s.Scenario, s.Seed, s.Clients, s.StepsPerClient, t.WallMS)
	fmt.Fprintf(&b, "ops: query %d (%d queries), insert %d (%d records), refresh %d, reconstruct %d (%d subsets), audit %d\n",
		s.Ops.Query, s.Queries, s.Ops.Insert, s.RecordsInserted, s.Ops.Refresh,
		s.Ops.Reconstruct, s.Subsets, s.Ops.Audit)
	fmt.Fprintf(&b, "throughput: %.0f requests/s, %.0f queries/s; exposure charged %d\n",
		t.RequestsPerSec, t.QueriesPerSec, s.ChargedQueries)
	if bu := s.Budget; bu != nil {
		fmt.Fprintf(&b, "budget: quota %d (soft %d), %d identities (pool %d x zipf %.2f), max charged %d; accepted %d batches, rejected %d client-quota + %d degraded\n",
			bu.Quota, bu.SoftQuota, bu.Identities, bu.IdentityPool, bu.ZipfS,
			bu.MaxIdentityCharged, bu.AcceptedBatches, bu.RejectedClientQuota, bu.RejectedDegraded)
	}
	if s.Fleet != nil {
		fmt.Fprintf(&b, "fleet: %d replicas rf %d, %d publications; kills %d, restarts %d, verify mismatches %d\n",
			s.Fleet.Replicas, s.Fleet.ReplicationFactor, s.Fleet.Publications,
			s.Fleet.Kills, s.Fleet.Restarts, s.Fleet.VerifyMismatches)
	}
	if t.Fleet != nil {
		fmt.Fprintf(&b, "router: %d requests, %d retries, %d failovers; ejected %d, probed %d, reinstated %d; shed %d, unavailable %d, verified %d, rejected %d\n",
			t.Fleet.Requests, t.Fleet.Retries, t.Fleet.Failovers,
			t.Fleet.Ejections, t.Fleet.Probes, t.Fleet.Reinstated,
			t.Fleet.Shed, t.Fleet.Unavailable, t.Fleet.Verified, t.Fleet.Rejected)
	}
	for _, ot := range t.Ops {
		fmt.Fprintf(&b, "  %-11s n=%-5d mean %8.0f us  p50 %8.0f  p90 %8.0f  p99 %8.0f\n",
			ot.Op, ot.Count, ot.MeanUS, ot.P50US, ot.P90US, ot.P99US)
	}
	fmt.Fprintf(&b, "invariants: %d checks, %d violations", s.Invariants.Checks, s.Invariants.Violations)
	for _, f := range s.Invariants.Failures {
		fmt.Fprintf(&b, "\n  FAIL %s", f)
	}
	return b.String()
}

// opTimings folds raw per-op latency samples into sorted profiles.
func opTimings(lats map[string][]time.Duration) []OpTiming {
	names := make([]string, 0, len(lats))
	for op := range lats {
		if len(lats[op]) > 0 {
			names = append(names, op)
		}
	}
	sort.Strings(names)
	out := make([]OpTiming, 0, len(names))
	for _, op := range names {
		ds := lats[op]
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		var sum time.Duration
		for _, d := range ds {
			sum += d
		}
		q := func(p float64) float64 {
			i := int(p * float64(len(ds)-1))
			return float64(ds[i].Microseconds())
		}
		out = append(out, OpTiming{
			Op:     op,
			Count:  len(ds),
			MeanUS: float64(sum.Microseconds()) / float64(len(ds)),
			P50US:  q(0.50),
			P90US:  q(0.90),
			P99US:  q(0.99),
		})
	}
	return out
}
