package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reconpriv/reconpriv/internal/fleet"
	"github.com/reconpriv/reconpriv/internal/serve"
	"github.com/reconpriv/reconpriv/internal/stats"
	"github.com/reconpriv/reconpriv/internal/wire"
)

// FleetPlan runs a scenario against a replicated fleet instead of a single
// server, with deterministic fault injection. Chaos points are fractions of
// the total operation count — not absolute ops and not wall time — so the
// same scenario scales from tier-1 test runs to full benchmarks without the
// kill landing before the first request or after the last.
type FleetPlan struct {
	// Replicas and ReplicationFactor shape the fleet (defaults 3 and 2).
	Replicas          int `json:"replicas"`
	ReplicationFactor int `json:"replication_factor"`
	// Publications is how many publications to place (default 1); each gets
	// the scenario's publish request with a distinct seed, so placement
	// spreads them across replicas.
	Publications int `json:"publications"`
	// KillAtFrac kills the first holder of publication 0 once that fraction
	// of all operations has been issued (0 disables). RestartAtFrac restarts
	// it later the same way; the restart rebuilds every held publication
	// from its request and replays missed generations.
	KillAtFrac    float64 `json:"kill_at_frac"`
	RestartAtFrac float64 `json:"restart_at_frac"`
	// SpikeEvery injects one latency spike of Spike into a rotating replica
	// every that-many operations (0 disables). With Spike above Timeout the
	// spiked attempt times out and the router fails over.
	SpikeEvery int           `json:"spike_every"`
	Spike      time.Duration `json:"-"`
	// Timeout is the router's per-attempt deadline (default 1s).
	Timeout time.Duration `json:"-"`
	// CrossProcess runs each replica as a spawned child process of this
	// binary, reached over real sockets — kills become real process exits
	// and restarts respawn and replay. The process embedding the simulator
	// must call fleet.ChildServeMain first thing in main (rpsim, rpbench,
	// and the test binaries all do).
	CrossProcess bool `json:"cross_process,omitempty"`
	// CheckpointLog is the fleet's mutation-log fold threshold (0 keeps the
	// fleet default; negative disables checkpointing). Ingest-style fleet
	// scenarios set it low so logs fold repeatedly mid-run and the
	// restarted replica restores snapshot + tail rather than full history.
	CheckpointLog int `json:"checkpoint_log,omitempty"`
	// TolerateUnavailable accepts typed 429/503 rejections as outcomes —
	// tallied, not violations. Required when the plan makes loss reachable
	// (replication factor 1 plus a kill and no restart); such runs trade
	// away summary determinism, so no built-in scenario sets it.
	TolerateUnavailable bool `json:"tolerate_unavailable,omitempty"`
}

// withDefaults resolves zero fields.
func (p FleetPlan) withDefaults() FleetPlan {
	if p.Replicas <= 0 {
		p.Replicas = 3
	}
	if p.ReplicationFactor <= 0 {
		p.ReplicationFactor = 2
	}
	if p.Publications <= 0 {
		p.Publications = 1
	}
	if p.Timeout <= 0 {
		p.Timeout = time.Second
	}
	if p.Spike <= 0 {
		p.Spike = 1300 * time.Millisecond
	}
	return p
}

// FleetSummary is the deterministic fleet half of a run summary: topology
// and chaos counts are schedule-independent, and verify mismatches are
// asserted zero by an invariant, so all of it is safe to byte-compare.
type FleetSummary struct {
	Replicas          int `json:"replicas"`
	ReplicationFactor int `json:"replication_factor"`
	// Transport is how the fleet reached its replicas: "in-process" or
	// "spawned" (cross-process child processes).
	Transport        string `json:"transport"`
	Publications     int    `json:"publications"`
	Kills            int64  `json:"kills"`
	Restarts         int64  `json:"restarts"`
	VerifyMismatches uint64 `json:"verify_mismatches"`
}

// FleetTiming is the nondeterministic fleet half: how often the router
// actually retried, ejected, probed, shed, and verified depends on request
// interleaving, so it reports next to the summary, never inside it.
type FleetTiming struct {
	Requests    uint64 `json:"requests"`
	Retries     uint64 `json:"retries"`
	Failovers   uint64 `json:"failovers"`
	Ejections   uint64 `json:"ejections"`
	Probes      uint64 `json:"probes"`
	Reinstated  uint64 `json:"reinstated"`
	Shed        uint64 `json:"shed"`
	Unavailable uint64 `json:"unavailable"`
	Verified    uint64 `json:"verified"`
	// Checkpoints counts mutation logs folded into snapshots. The fold
	// count depends on which holders were alive at each threshold crossing,
	// so it reports here, not in the summary.
	Checkpoints uint64 `json:"checkpoints"`
	// Rejected counts client operations that ended in a tolerated 429/503
	// (always zero unless the plan sets TolerateUnavailable).
	Rejected int64 `json:"rejected"`
}

// fleetRunner holds the state shared by every client of one fleet run.
type fleetRunner struct {
	opts    Options
	sc      Scenario
	plan    FleetPlan
	clients int
	steps   int

	f    *fleet.Fleet
	ids  []string             // placed publication ids, in placement order
	pubs []*serve.Publication // schema handles, parallel to ids
	m    int                  // SA domain size (shared schema)
	base string
	hc   *http.Client
	// fold reports whether answers are folded into the summary digest:
	// only when the workload never mutates state (answers are then
	// interleaving-independent) and no rejections are tolerated.
	fold bool

	check *checker

	// ops is the global operation counter the chaos schedule keys off;
	// killAt/restartAt are the thresholds (0 = disabled), victim the replica
	// they target. Exactly one client observes each threshold value.
	ops       atomic.Int64
	killAt    int64
	restartAt int64
	victim    int
	kills     atomic.Int64
	restarts  atomic.Int64
	rejected  atomic.Int64
}

// runFleet executes one scenario against a replicated fleet.
func runFleet(opts Options, sc Scenario) (*Result, error) {
	r := &fleetRunner{
		opts:    opts,
		sc:      sc,
		plan:    sc.Fleet.withDefaults(),
		clients: opts.Clients,
		steps:   opts.Steps,
		check:   &checker{},
	}
	if r.clients <= 0 {
		r.clients = sc.Clients
	}
	if r.steps <= 0 {
		r.steps = sc.Steps
	}

	r.fold = sc.DeterministicAnswers() && !r.plan.TolerateUnavailable

	cfg := opts.Config
	if cfg.Clock == nil {
		cfg.Clock = func() time.Time { return simEpoch }
	}
	// Like the single-server runner: fleet load generators run in the
	// trusted budget tier so admission never interferes with the chaos
	// schedule under scrutiny.
	cfg.BudgetTrusted = append([]string(nil), trustedClientIDs(r.clients)...)
	fcfg := fleet.Config{
		Replicas:          r.plan.Replicas,
		ReplicationFactor: r.plan.ReplicationFactor,
		Timeout:           r.plan.Timeout,
		CheckpointLog:     r.plan.CheckpointLog,
		Serve:             cfg,
	}
	if r.plan.CrossProcess {
		f, err := fleet.NewProcs(fcfg)
		if err != nil {
			return nil, fmt.Errorf("sim: spawning cross-process fleet: %w", err)
		}
		r.f = f
	} else {
		r.f = fleet.New(fcfg)
	}
	defer r.f.Close()
	for i := 0; i < r.plan.Publications; i++ {
		req := sc.Publish
		req.Seed = sc.Publish.Seed + int64(i)
		id, err := r.f.Publish(req)
		if err != nil {
			return nil, fmt.Errorf("sim: fleet publish %d: %w", i, err)
		}
		pub, err := r.f.Publication(id)
		if err != nil {
			return nil, fmt.Errorf("sim: fleet publication %d: %w", i, err)
		}
		r.ids = append(r.ids, id)
		r.pubs = append(r.pubs, pub)
	}
	r.m = r.pubs[0].Marg.SADomain()

	// Chaos schedule: thresholds on the shared op counter, victim the
	// top-ranked holder of publication 0 so the kill always hits a replica
	// that matters.
	total := int64(r.clients * r.steps)
	if r.plan.KillAtFrac > 0 {
		r.killAt = max(1, int64(r.plan.KillAtFrac*float64(total)))
	}
	if r.plan.RestartAtFrac > 0 {
		r.restartAt = max(r.killAt+1, int64(r.plan.RestartAtFrac*float64(total)))
	}
	r.victim = r.f.Holders(r.ids[0])[0]

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	hs := &http.Server{Handler: r.f.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	r.base = "http://" + ln.Addr().String()
	r.hc = &http.Client{
		Timeout:   opts.clientTimeout(),
		Transport: &http.Transport{MaxIdleConnsPerHost: r.clients + 2},
	}

	start := time.Now()
	results := make([]clientResult, r.clients)
	var wg sync.WaitGroup
	for i := 0; i < r.clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.runClient(i, &results[i])
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	return r.finish(results, wall)
}

// chaos fires any due fault for global operation n. The counter hands each
// value to exactly one client, so each threshold triggers exactly once and
// the kill/restart counts are deterministic even though which client pulls
// the trigger is not.
func (r *fleetRunner) chaos(n int64) {
	if r.killAt > 0 && n == r.killAt {
		r.f.KillReplica(r.victim)
		r.kills.Add(1)
	}
	if r.restartAt > 0 && n == r.restartAt {
		r.check.check(r.f.RestartReplica(r.victim) == nil,
			"restarting replica %d failed", r.victim)
		r.restarts.Add(1)
	}
	if r.plan.SpikeEvery > 0 && n%int64(r.plan.SpikeEvery) == 0 {
		target := int((n / int64(r.plan.SpikeEvery)) % int64(r.plan.Replicas))
		r.f.InjectLatency(target, r.plan.Spike, 1)
	}
}

// runClient executes one client's schedule against the router.
func (r *fleetRunner) runClient(idx int, res *clientResult) {
	rng := stats.NewRand(clientSeed(r.opts.Seed, idx))
	id := fmt.Sprintf("c%03d", idx)
	res.lats = make(map[string][]time.Duration)
	digest := stats.NewDigest()
	for step := 0; step < r.steps; step++ {
		frac := rng.Float64()
		if r.opts.Think > 0 {
			time.Sleep(time.Duration(frac * float64(r.opts.Think)))
		}
		r.chaos(r.ops.Add(1))
		// One idempotency key per logical operation: a router-side retry of
		// this operation must charge exposure once, never twice.
		idem := fmt.Sprintf("%s-s%04d", id, step)
		switch pickOp(rng, r.sc.Mix) {
		case opQuery:
			res.ops.Query++
			r.doQuery(rng, id, idem, res, digest)
		case opInsert:
			res.ops.Insert++
			r.doInsert(rng, idem, res)
		case opRefresh:
			res.ops.Refresh++
			r.doRefresh(rng, idem, res)
		case opReconstruct:
			res.ops.Reconstruct++
			r.doReconstruct(rng, id, idem, res)
		case opAudit:
			res.ops.Audit++
			r.doAudit(rng, idem, res)
		}
	}
	res.digest = digest.Sum64()
}

// pickPub draws the target publication for one operation.
func (r *fleetRunner) pickPub(rng *stats.Rand) (string, *serve.Publication) {
	i := rng.Intn(len(r.ids))
	return r.ids[i], r.pubs[i]
}

// randomCondsOn mirrors runner.randomConds against an explicit publication.
func (r *fleetRunner) randomCondsOn(rng *stats.Rand, pub *serve.Publication) []serve.CondJSON {
	na := pub.Orig.NAIndices()
	maxDim := pub.Req.MaxDim
	if maxDim > len(na) {
		maxDim = len(na)
	}
	dim := 1 + rng.Intn(maxDim)
	perm := rng.Perm(len(na))[:dim]
	conds := make([]serve.CondJSON, dim)
	for j, pi := range perm {
		attr := &pub.Orig.Attrs[na[pi]]
		conds[j] = serve.CondJSON{Attr: attr.Name, Value: attr.Values[rng.Intn(attr.Domain())]}
	}
	return conds
}

// tolerated reports (and tallies) an outcome the plan accepts instead of
// requiring success: a typed rejection or a transport failure while the
// fleet has no serving holder.
func (r *fleetRunner) tolerated(code int, err error) bool {
	if !r.plan.TolerateUnavailable {
		return false
	}
	if err != nil || code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		r.rejected.Add(1)
		return true
	}
	return false
}

// doQuery issues one query batch through the router and validates shape,
// answers, and the router's cumulative exposure ledger.
func (r *fleetRunner) doQuery(rng *stats.Rand, id, idem string, res *clientResult, digest *stats.Digest) {
	pid, pub := r.pickPub(rng)
	sa := pub.Orig.SAAttr()
	qs := make([]serve.QueryJSON, r.sc.QueriesPerBatch)
	for i := range qs {
		qs[i] = serve.QueryJSON{Conds: r.randomCondsOn(rng, pub), SA: sa.Values[rng.Intn(r.m)]}
	}
	var resp queryWire
	var code int
	var err error
	if res.ops.Query%2 == 0 && !r.opts.forceJSON {
		// Even batches ride the binary framing through the router — head
		// peek, pass-through, and ledger patch all on the routed path.
		frame, ferr := encodeQueryFrame(pub.Orig, pid, id, qs)
		if !r.check.check(ferr == nil, "encoding binary query batch: %v", ferr) {
			return
		}
		code, err = r.timedPostBinary("query", res, "/query", idem, frame, &resp)
	} else {
		code, err = r.timedPost("query", res, "/query", idem,
			map[string]any{"id": pid, "client": id, "queries": qs, "wait": true}, &resp)
	}
	if r.tolerated(code, err) {
		return
	}
	if !r.check.check(err == nil && code == http.StatusOK, "query returned %d (%v)", code, err) {
		return
	}
	res.queries += int64(len(qs))
	res.charged += int64(len(qs))
	r.check.check(len(resp.Answers) == len(qs), "query batch of %d got %d answers", len(qs), len(resp.Answers))
	r.check.check(resp.ClientQueries == res.charged,
		"client %s exposure: router says %d, local ledger %d — lost or double-charged across failover",
		id, resp.ClientQueries, res.charged)
	for i := range resp.Answers {
		a := &resp.Answers[i]
		if !r.check.check(a.Error == "", "query %d failed: %s", i, a.Error) {
			continue
		}
		if r.fold {
			digest.Word(uint64(a.Count))
			digest.Word(math.Float64bits(a.Estimate))
		}
	}
}

// doInsert streams one record batch through the router: the batch fans out
// to every live holder and lands in the mutation log (folding into a
// checkpoint when the log fills), so the exactly-once check here is the
// batch arriving intact — total-record conservation across the whole run is
// what ReplicaAgreement proves at the end.
func (r *fleetRunner) doInsert(rng *stats.Rand, idem string, res *clientResult) {
	pid, pub := r.pickPub(rng)
	recs := make([]map[string]string, r.sc.RecordsPerInsert)
	schema := pub.Orig
	for i := range recs {
		rec := make(map[string]string, schema.NumAttrs())
		for ai := range schema.Attrs {
			attr := &schema.Attrs[ai]
			rec[attr.Name] = attr.Values[rng.Intn(attr.Domain())]
		}
		recs[i] = rec
	}
	var resp insertWire
	code, err := r.timedPost("insert", res, "/insert", idem,
		map[string]any{"id": pid, "records": recs, "wait": true}, &resp)
	if r.tolerated(code, err) {
		return
	}
	if !r.check.check(err == nil && code == http.StatusOK, "insert returned %d (%v)", code, err) {
		return
	}
	r.check.check(resp.Inserted == len(recs),
		"routed insert applied %d of %d records — a batch was partially lost", resp.Inserted, len(recs))
	r.check.check(resp.Trials+resp.Absorbed == resp.Inserted,
		"insert of %d split into %d trials + %d absorbed", resp.Inserted, resp.Trials, resp.Absorbed)
}

// doRefresh advances a publication's generation through the router; the
// router fans it out to every live holder and logs it for restart replay.
func (r *fleetRunner) doRefresh(rng *stats.Rand, idem string, res *clientResult) {
	pid, _ := r.pickPub(rng)
	var view struct {
		Generation int `json:"generation"`
	}
	code, err := r.timedPost("refresh", res, "/refresh", idem,
		map[string]any{"id": pid}, &view)
	if r.tolerated(code, err) {
		return
	}
	if !r.check.check(err == nil && code == http.StatusOK, "refresh returned %d (%v)", code, err) {
		return
	}
	r.check.check(view.Generation >= 1, "refreshed publication at generation %d", view.Generation)
}

// doReconstruct issues one reconstruction batch through the router.
func (r *fleetRunner) doReconstruct(rng *stats.Rand, id, idem string, res *clientResult) {
	pid, pub := r.pickPub(rng)
	subsets := make([][]serve.CondJSON, r.sc.SubsetsPerBatch)
	for i := range subsets {
		subsets[i] = r.randomCondsOn(rng, pub)
	}
	var resp reconstructWire
	code, err := r.timedPost("reconstruct", res, "/reconstruct", idem,
		map[string]any{"id": pid, "client": id, "subsets": subsets, "wait": true}, &resp)
	if r.tolerated(code, err) {
		return
	}
	if !r.check.check(err == nil && code == http.StatusOK, "reconstruct returned %d (%v)", code, err) {
		return
	}
	res.subsets += int64(len(subsets))
	res.charged += int64(len(subsets)) * int64(r.m)
	r.check.check(len(resp.Results) == len(subsets),
		"reconstruct batch of %d got %d results", len(subsets), len(resp.Results))
	r.check.check(resp.ClientQueries == res.charged,
		"client %s exposure after reconstruct: router says %d, local ledger %d — lost or double-charged across failover",
		id, resp.ClientQueries, res.charged)
	for i := range resp.Results {
		r.check.check(resp.Results[i].Error == "", "reconstruction %d failed: %s", i, resp.Results[i].Error)
	}
}

// doAudit runs one audit through the router and validates the verdicts.
func (r *fleetRunner) doAudit(rng *stats.Rand, idem string, res *clientResult) {
	pid, _ := r.pickPub(rng)
	seed := auditSeeds[rng.Intn(len(auditSeeds))]
	var resp auditWire
	code, err := r.timedPost("audit", res, "/audit", idem,
		map[string]any{"id": pid, "trials": r.sc.AuditTrials, "seed": seed, "top": 5, "wait": true}, &resp)
	if r.tolerated(code, err) {
		return
	}
	if !r.check.check(err == nil && code == http.StatusOK, "audit returned %d (%v)", code, err) {
		return
	}
	r.check.check(resp.GroupsAudited > 0, "audit swept no groups")
	r.check.check(resp.BoundViolations == 0,
		"audit found %d groups beyond their Chernoff bounds", resp.BoundViolations)
}

// finish runs the fleet-wide conservation checks and assembles the result.
func (r *fleetRunner) finish(results []clientResult, wall time.Duration) (*Result, error) {
	sum := Summary{
		Scenario:       r.sc.Name,
		Seed:           r.opts.Seed,
		Clients:        r.clients,
		StepsPerClient: r.steps,
	}
	var digest uint64
	var charged int64
	lats := make(map[string][]time.Duration)
	for i := range results {
		res := &results[i]
		sum.Ops.Query += res.ops.Query
		sum.Ops.Insert += res.ops.Insert
		sum.Ops.Refresh += res.ops.Refresh
		sum.Ops.Reconstruct += res.ops.Reconstruct
		sum.Ops.Audit += res.ops.Audit
		sum.Queries += res.queries
		sum.Subsets += res.subsets
		sum.ChargedQueries += res.charged
		charged += res.charged
		digest ^= res.digest
		for op, ds := range res.lats {
			lats[op] = append(lats[op], ds...)
		}
	}

	// Exactly-once exposure, per client and in aggregate: the router's
	// authoritative ledger must equal what each client observed being
	// charged, and the fleet total must equal their sum — no answered
	// operation lost, none double-charged across retries and failovers.
	for i := range results {
		id := fmt.Sprintf("c%03d", i)
		got := r.f.ClientExposure(id)
		r.check.check(got == results[i].charged,
			"client %s final exposure: fleet ledger %d, charges observed %d", id, got, results[i].charged)
	}
	r.check.check(r.f.TotalExposure() == charged,
		"fleet aggregate exposure %d, sum of per-client charges %d", r.f.TotalExposure(), charged)

	// Replica agreement: every publication with a live holder must serve
	// bit-identical state on all of them — including a restarted victim,
	// which rebuilt from the request and replayed missed generations.
	for _, id := range r.ids {
		live := 0
		for _, h := range r.f.Holders(id) {
			if r.f.Alive(h) {
				live++
			}
		}
		if live == 0 {
			continue // rf 1 with an unrestarted kill; reachable only under TolerateUnavailable
		}
		err := r.f.ReplicaAgreement(id)
		r.check.check(err == nil, "replica agreement on %s: %v", id, err)
	}

	st := r.f.Stats()
	r.check.check(st.VerifyMismatches == 0,
		"%d sampled answers disagreed across replicas", st.VerifyMismatches)
	r.check.check(st.TotalCharged == charged,
		"router statsz charged %d, clients observed %d", st.TotalCharged, charged)
	if r.killAt > 0 {
		r.check.check(r.kills.Load() == 1, "kill fired %d times, want 1", r.kills.Load())
	}
	if r.restartAt > 0 {
		r.check.check(r.restarts.Load() == 1, "restart fired %d times, want 1", r.restarts.Load())
	}

	// Checkpoint bound: with folding enabled, no publication's mutation log
	// may end the run at or above the threshold — every crossing must have
	// folded into a snapshot (the run restarts its only killed replica, so
	// a live checkpoint source always exists).
	if r.plan.CheckpointLog > 0 {
		for _, id := range r.ids {
			l := r.f.MutationLogLen(id)
			r.check.check(l < r.plan.CheckpointLog,
				"publication %s mutation log at %d, threshold %d: checkpointing never folded it", id, l, r.plan.CheckpointLog)
		}
	}

	if r.fold {
		sum.AnswersDigest = fmt.Sprintf("%016x", digest)
	}
	sum.Fleet = &FleetSummary{
		Replicas:          r.plan.Replicas,
		ReplicationFactor: r.plan.ReplicationFactor,
		Transport:         r.f.Transport(),
		Publications:      len(r.ids),
		Kills:             r.kills.Load(),
		Restarts:          r.restarts.Load(),
		VerifyMismatches:  st.VerifyMismatches,
	}
	sum.Invariants = InvariantSummary{
		Checks:     r.check.checks.Load(),
		Violations: r.check.violations.Load(),
		Failures:   r.check.sampleFailures(),
	}

	timing := Timing{
		WallMS:   float64(wall.Microseconds()) / 1000,
		Requests: sum.Ops.Query + sum.Ops.Insert + sum.Ops.Refresh + sum.Ops.Reconstruct + sum.Ops.Audit,
		Ops:      opTimings(lats),
		Fleet: &FleetTiming{
			Requests:    st.Requests,
			Retries:     st.Retries,
			Failovers:   st.Failovers,
			Ejections:   st.Ejections,
			Probes:      st.Probes,
			Reinstated:  st.Reinstated,
			Shed:        st.Shed,
			Unavailable: st.Unavailable,
			Verified:    st.Verified,
			Checkpoints: st.Checkpoints,
			Rejected:    r.rejected.Load(),
		},
	}
	if s := wall.Seconds(); s > 0 {
		timing.RequestsPerSec = float64(timing.Requests) / s
		timing.QueriesPerSec = float64(sum.Queries) / s
	}
	return &Result{Summary: sum, Timing: timing}, nil
}

// timedPost posts a JSON body with the operation's idempotency key and
// records its wall latency under the op name.
func (r *fleetRunner) timedPost(op string, res *clientResult, path, idem string, body, out any) (int, error) {
	start := time.Now()
	code, err := r.postJSON(path, idem, body, out)
	res.lats[op] = append(res.lats[op], time.Since(start))
	return code, err
}

// timedPostBinary posts a wire frame through the router with the
// operation's idempotency key.
func (r *fleetRunner) timedPostBinary(op string, res *clientResult, path, idem string, frame []byte, out *queryWire) (int, error) {
	start := time.Now()
	code, err := r.postBinary(path, idem, frame, out)
	res.lats[op] = append(res.lats[op], time.Since(start))
	return code, err
}

func (r *fleetRunner) postBinary(path, idem string, frame []byte, out *queryWire) (int, error) {
	req, err := http.NewRequest(http.MethodPost, r.base+path, bytes.NewReader(frame))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", wire.ContentType)
	if idem != "" {
		req.Header.Set("X-Idempotency-Key", idem)
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	return resp.StatusCode, decodeQueryFrame(body, out)
}

func (r *fleetRunner) postJSON(path, idem string, body, out any) (int, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequest(http.MethodPost, r.base+path, bytes.NewReader(buf))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if idem != "" {
		req.Header.Set("X-Idempotency-Key", idem)
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	return resp.StatusCode, decodeBody(resp.Body, out)
}
