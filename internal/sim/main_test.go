package sim

import (
	"os"
	"testing"

	"github.com/reconpriv/reconpriv/internal/fleet"
)

// TestMain lets the test binary double as a fleet replica child process:
// cross-process fleet scenarios re-execute their own binary, and
// ChildServeMain turns that re-execution into a bare replica server.
func TestMain(m *testing.M) {
	fleet.ChildServeMain()
	os.Exit(m.Run())
}
