package sim

import (
	"bytes"
	"math"
	"testing"

	"github.com/reconpriv/reconpriv/internal/bounds"
	"github.com/reconpriv/reconpriv/internal/dataset"
	"github.com/reconpriv/reconpriv/internal/query"
	"github.com/reconpriv/reconpriv/internal/serve"
)

// TestSimScenarios is the tier-1 simulation gate: every built-in scenario
// runs at small scale under a fixed seed, must finish with zero invariant
// violations, and must produce byte-identical summaries on a second run —
// the reproducibility contract rpsim relies on. The churn scenario doubles
// as the concurrency stressor: N clients race inserts against /query
// re-indexing and /refresh rebuilds, which is what the CI -race job leans
// on.
func TestSimScenarios(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			run := func() *Result {
				res, err := Run(Options{Scenario: sc, Seed: 1, Clients: 4, Steps: 6})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			first := run()
			for _, f := range first.Summary.Invariants.Failures {
				t.Errorf("invariant violated: %s", f)
			}
			if v := first.Summary.Invariants.Violations; v != 0 {
				t.Fatalf("%d invariant violations", v)
			}
			if first.Summary.Invariants.Checks == 0 {
				t.Fatal("no invariant checks ran")
			}
			wantOps := int64(4 * 6)
			ops := first.Summary.Ops
			if got := ops.Query + ops.Insert + ops.Refresh + ops.Reconstruct + ops.Audit; got != wantOps {
				t.Fatalf("issued %d ops, want %d", got, wantOps)
			}
			if sc.DeterministicAnswers() && first.Summary.AnswersDigest == "" {
				t.Error("read-only scenario produced no answers digest")
			}

			a, err := first.SummaryJSON()
			if err != nil {
				t.Fatal(err)
			}
			b, err := run().SummaryJSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Errorf("summaries differ between identically-seeded runs:\n%s\n---\n%s", a, b)
			}
		})
	}
}

// TestScenarioValidation pins the scenario sanity rules.
func TestScenarioValidation(t *testing.T) {
	if _, err := Lookup("steady-read"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("no-such-scenario"); err == nil {
		t.Error("unknown scenario should not resolve")
	}
	sc, _ := Lookup("steady-read")
	sc.Mix = Mix{}
	if _, err := Run(Options{Scenario: sc, Seed: 1}); err == nil {
		t.Error("empty mix should be rejected")
	}
	sc, _ = Lookup("steady-read")
	sc.Mix.Insert = 1
	if _, err := Run(Options{Scenario: sc, Seed: 1}); err == nil {
		t.Error("inserts into a non-incremental publication should be rejected")
	}
	sc, _ = Lookup("churn")
	sc.CheckBernstein = true
	if _, err := Run(Options{Scenario: sc, Seed: 1}); err == nil {
		t.Error("Bernstein invariant on a non-up method should be rejected")
	}
	sc, _ = Lookup("budget")
	sc.Mix.Insert = 1
	sc.Publish.Method = serve.MethodIncremental
	if _, err := Run(Options{Scenario: sc, Seed: 1}); err == nil {
		t.Error("budget scenario with mutations should be rejected")
	}
	sc, _ = Lookup("budget")
	sc.Budget.ZipfS = 1
	if _, err := Run(Options{Scenario: sc, Seed: 1}); err == nil {
		t.Error("budget scenario with ZipfS <= 1 should be rejected")
	}
}

// TestBudgetScenarioRejects pins that the budget scenario at its default
// scale actually exhausts quotas: both rejection kinds fire, the heaviest
// identity lands exactly on the quota boundary or below, and the run stays
// violation-free — the zipf head is rejected, never overcharged.
func TestBudgetScenarioRejects(t *testing.T) {
	sc, err := Lookup("budget")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{Scenario: sc, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Summary.Invariants.Failures {
		t.Errorf("invariant violated: %s", f)
	}
	if v := res.Summary.Invariants.Violations; v != 0 {
		t.Fatalf("%d invariant violations", v)
	}
	b := res.Summary.Budget
	if b == nil {
		t.Fatal("budget scenario produced no budget summary")
	}
	if b.RejectedClientQuota == 0 {
		t.Error("no client-quota rejections; the scenario must exhaust the zipf head's budget")
	}
	if b.RejectedDegraded == 0 {
		t.Error("no degraded rejections; the scenario must shed reconstructs past the soft threshold")
	}
	if b.AcceptedBatches == 0 {
		t.Error("no accepted batches")
	}
	if b.MaxIdentityCharged > b.Quota {
		t.Errorf("heaviest identity charged %d past quota %d", b.MaxIdentityCharged, b.Quota)
	}
}

// TestBernsteinOmegaInvertsBound checks the closed-form inversion against
// the internal/bounds implementation it is derived from: the solved ω must
// land exactly on the requested tail probability.
func TestBernsteinOmegaInvertsBound(t *testing.T) {
	b := bounds.Bernstein{}
	for _, mu := range []float64{0.5, 3, 47, 1200, 9e5} {
		for _, eps := range []float64{1e-3, 1e-6, 1e-9} {
			omega := BernsteinOmega(mu, eps)
			if got := b.Upper(omega, mu, 0); math.Abs(got-eps) > eps*1e-6 {
				t.Errorf("Upper(ω(µ=%g, eps=%g)) = %g, want %g", mu, eps, got, eps)
			}
			// Slightly smaller ω must overshoot eps: ω is the smallest root.
			if got := b.Upper(omega*0.999, mu, 0); got <= eps {
				t.Errorf("ω(µ=%g, eps=%g) is not minimal: Upper at 0.999ω = %g", mu, eps, got)
			}
		}
	}
	if !math.IsInf(BernsteinOmega(0, 1e-9), 1) {
		t.Error("µ = 0 should yield an infinite (vacuous) envelope")
	}
}

// TestRawSubsetCounts pins the ground-truth scan against a hand-built
// group set.
func TestRawSubsetCounts(t *testing.T) {
	schema := dataset.MustSchema([]dataset.Attribute{
		{Name: "A", Values: []string{"a0", "a1"}},
		{Name: "B", Values: []string{"b0", "b1", "b2"}},
		{Name: "S", Values: []string{"s0", "s1"}},
	}, "S")
	tbl := dataset.NewTable(schema, 6)
	tbl.MustAppendRow(0, 0, 0)
	tbl.MustAppendRow(0, 0, 1)
	tbl.MustAppendRow(0, 1, 0)
	tbl.MustAppendRow(1, 0, 1)
	tbl.MustAppendRow(1, 2, 0)
	tbl.MustAppendRow(1, 2, 1)
	gs := dataset.GroupsOf(tbl)

	counts, size := rawSubsetCounts(gs, []query.Cond{{Attr: 0, Value: 0}})
	if size != 3 || counts[0] != 2 || counts[1] != 1 {
		t.Fatalf("A=a0: size %d counts %v, want 3 [2 1]", size, counts)
	}
	counts, size = rawSubsetCounts(gs, []query.Cond{{Attr: 0, Value: 1}, {Attr: 1, Value: 2}})
	if size != 2 || counts[0] != 1 || counts[1] != 1 {
		t.Fatalf("A=a1∧B=b2: size %d counts %v, want 2 [1 1]", size, counts)
	}
	if _, size := rawSubsetCounts(gs, []query.Cond{{Attr: 1, Value: 1}}); size != 1 {
		t.Fatalf("B=b1: size %d, want 1", size)
	}
}

// TestClientSeedsDistinct guards the stream derivation: nearby run seeds
// and client indices must never collide (SplitMix64 finalizer bijectivity).
func TestClientSeedsDistinct(t *testing.T) {
	seen := make(map[int64]bool)
	for seed := int64(0); seed < 8; seed++ {
		for idx := 0; idx < 64; idx++ {
			s := clientSeed(seed, idx)
			if seen[s] {
				t.Fatalf("duplicate client seed %d at run seed %d client %d", s, seed, idx)
			}
			seen[s] = true
		}
	}
}

// TestMixedEncodingDigestMatchesJSON is the end-to-end cross-encoding pin:
// the default run alternates JSON and binary query batches (the alternation
// consumes no randomness, so both runs draw the same workload), and the
// XOR-folded answers digest must come out identical — every count and
// estimate served over the binary framing carried exactly the bits the
// JSON encoding carries. Checked on the single-server and the routed
// (fleet) topology.
func TestMixedEncodingDigestMatchesJSON(t *testing.T) {
	for _, name := range []string{"steady-read", "fleet"} {
		sc, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		mixed, err := Run(Options{Scenario: sc, Seed: 3, Clients: 3, Steps: 4})
		if err != nil {
			t.Fatal(err)
		}
		jsonOnly, err := Run(Options{Scenario: sc, Seed: 3, Clients: 3, Steps: 4, forceJSON: true})
		if err != nil {
			t.Fatal(err)
		}
		if v := mixed.Summary.Invariants.Violations; v != 0 {
			t.Fatalf("%s: %d invariant violations in mixed run: %v", name, v, mixed.Summary.Invariants.Failures)
		}
		if mixed.Summary.AnswersDigest == "" {
			t.Fatalf("%s: mixed run produced no digest", name)
		}
		if mixed.Summary.AnswersDigest != jsonOnly.Summary.AnswersDigest {
			t.Fatalf("%s: mixed-encoding digest %s differs from all-JSON digest %s",
				name, mixed.Summary.AnswersDigest, jsonOnly.Summary.AnswersDigest)
		}
	}
}
