// Package sim is a deterministic, seed-reproducible workload simulator for
// the publication server: it drives an in-process serve.Server over real
// HTTP with N concurrent simulated clients, each executing a per-client
// SplitMix64-derived schedule of publish/query/insert/refresh/reconstruct/
// audit operations, and validates the library's serving invariants after
// every step.
//
// The invariants checked continuously are:
//
//   - exposure conservation: each client's cumulative charged query count
//     (answered queries plus m per reconstruction) must equal the server's
//     ledger, per response and against Server.ClientExposure at the end;
//   - latency accounting: the /statsz latency-histogram total must equal
//     the number of successfully answered /query and /reconstruct requests;
//   - pipeline bit-identity: publications built or refreshed mid-simulation
//     at PipelineWorkers = 1 and at full width must have equal
//     Publication.Digest fingerprints;
//   - insert conservation: incremental publications never drop rows — the
//     streamed total equals the initial batch plus every inserted record,
//     and each insert batch splits exactly into trials + absorbed;
//   - reconstruction accuracy: on plain-perturbation (up) publications,
//     reconstructed frequencies stay within the internal/bounds Bernstein
//     envelope of the raw group frequencies at failure probability 1e-9,
//     across refreshed generations.
//
// A scenario fixes the operation mix, batch shapes, and client population;
// the seed fixes every random draw. Two runs of the same scenario, seed,
// and scale produce byte-identical Summary JSON — wall-clock measurements
// (throughput, latency quantiles) live in the separate Timing section so
// the summary stays a regression artifact. cmd/rpsim is the CLI front end;
// TestSimScenarios pins all built-in scenarios at small scale in tier-1.
package sim
