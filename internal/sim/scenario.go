package sim

import (
	"fmt"
	"strings"
	"time"

	"github.com/reconpriv/reconpriv/internal/serve"
)

// Mix holds the relative weights of the operations a client draws from its
// stream at each step. A zero weight disables the operation; at least one
// weight must be positive.
type Mix struct {
	Query       int `json:"query"`
	Insert      int `json:"insert"`
	Refresh     int `json:"refresh"`
	Reconstruct int `json:"reconstruct"`
	Audit       int `json:"audit"`
}

func (m Mix) total() int {
	return m.Query + m.Insert + m.Refresh + m.Reconstruct + m.Audit
}

// Scenario describes one reproducible workload: the publication under test,
// the client population, the operation mix, and the per-operation batch
// shapes. Everything else — which operation each client runs at each step
// and every payload — derives from the run seed.
type Scenario struct {
	// Name identifies the scenario (rpsim -scenario).
	Name string
	// Description is the one-line summary rpsim -list prints.
	Description string
	// Publish is the publication every client works against. Incremental
	// publications are required for scenarios with insert weight.
	Publish serve.PublishRequest
	// Mix is the operation weight table.
	Mix Mix
	// Clients and Steps are the default population and per-client step
	// count; Options can override both.
	Clients int
	Steps   int
	// QueriesPerBatch, SubsetsPerBatch, RecordsPerInsert size one
	// operation of each kind.
	QueriesPerBatch  int
	SubsetsPerBatch  int
	RecordsPerInsert int
	// AuditTrials is the Monte-Carlo trial count of one audit operation.
	// Audit seeds are drawn from a small fixed set so verdicts are
	// independent of the run seed and the audit cache is exercised.
	AuditTrials int
	// CompactEvery overrides the server's generation-compaction threshold
	// when non-zero (-1 disables compaction). Insert scenarios set it low so
	// background compaction races the query and insert streams.
	CompactEvery int
	// CheckBernstein enables the reconstruction-accuracy invariant. It is
	// only sound for method "up": plain perturbation retains every record
	// and perturbs each independently, which is exactly the Poisson-trials
	// model behind the internal/bounds Bernstein envelope. SPS deliberately
	// pushes violating groups past their raw-size bounds, and incremental
	// absorption duplicates records, so neither fits the model.
	CheckBernstein bool
	// Fleet, when set, runs the scenario against a replicated fleet with
	// deterministic fault injection instead of a single server (see
	// FleetPlan). Mutations are allowed — the router fans inserts and
	// refreshes out to every live holder and logs them for restart replay,
	// folding the log into checkpoints when configured — but fleet
	// scenarios skip the Bernstein invariant, which needs raw-group access
	// the router does not expose.
	Fleet *FleetPlan
	// Budget, when set, enables the exposure-budget workload (see
	// BudgetPlan): quotas are enforced, identities are zipf-skewed, and the
	// runner validates every 429 against a local mirror of the manager's
	// admission rule.
	Budget *BudgetPlan
}

// BudgetPlan drives the budget scenario: every query and reconstruct
// operation draws its client identity from a Zipf distribution over the
// worker's own identity pool, so a few head identities concentrate charges
// and exhaust their quotas while the tail never comes close. Identity pools
// are disjoint per worker and the simulation clock is frozen (the window
// never rotates), so each identity's accept/reject sequence is a pure
// function of its own drawn history — rejection tallies are part of the
// deterministic summary. The publication quota is disabled for the run: it
// is shared across identities, so whether a given request tripped it would
// depend on goroutine interleaving.
type BudgetPlan struct {
	// Quota is the per-identity window quota (serve.Config.BudgetQuota).
	Quota int64
	// SoftFraction of the quota past which reconstruct-class charges are
	// shed (0 = budget.DefaultSoftFraction).
	SoftFraction float64
	// IdentityPool is the per-worker identity pool size and ZipfS the
	// exponent (> 1) ranking those identities by popularity.
	IdentityPool int
	ZipfS        float64
}

// DeterministicAnswers reports whether served answers are independent of
// request interleaving: with no inserts and no refreshes the publication
// never changes, so the answer stream folds into the summary digest.
func (sc *Scenario) DeterministicAnswers() bool {
	return sc.Mix.Insert == 0 && sc.Mix.Refresh == 0
}

// validate rejects inconsistent scenarios before any server is started.
func (sc *Scenario) validate() error {
	if sc.Mix.total() <= 0 {
		return fmt.Errorf("sim: scenario %q has an empty operation mix", sc.Name)
	}
	if sc.Mix.Insert > 0 && sc.Publish.Method != serve.MethodIncremental {
		return fmt.Errorf("sim: scenario %q mixes inserts into a %q publication; inserts need method %q",
			sc.Name, sc.Publish.Method, serve.MethodIncremental)
	}
	if sc.CheckBernstein && sc.Publish.Method != serve.MethodUP {
		return fmt.Errorf("sim: scenario %q enables the Bernstein invariant on method %q; it is only sound for %q",
			sc.Name, sc.Publish.Method, serve.MethodUP)
	}
	if sc.Fleet != nil && sc.CheckBernstein {
		return fmt.Errorf("sim: fleet scenario %q enables the Bernstein invariant; it needs raw-group access the router does not expose", sc.Name)
	}
	if b := sc.Budget; b != nil {
		if sc.Fleet != nil {
			return fmt.Errorf("sim: budget scenario %q runs against a fleet; the router's precheck/settle split needs its own mirror", sc.Name)
		}
		if sc.Mix.Insert > 0 || sc.Mix.Refresh > 0 {
			return fmt.Errorf("sim: budget scenario %q mixes mutations; budget workloads are read-only", sc.Name)
		}
		if b.Quota <= 0 {
			return fmt.Errorf("sim: budget scenario %q needs a positive quota", sc.Name)
		}
		if b.IdentityPool <= 0 || b.ZipfS <= 1 {
			return fmt.Errorf("sim: budget scenario %q needs IdentityPool > 0 and ZipfS > 1", sc.Name)
		}
	}
	return nil
}

// simDataset is the publication every built-in scenario serves: the medical
// generator at a size small enough for tier-1 runs yet large enough that
// groups span the violating and non-violating regimes.
func simDataset(method string) serve.PublishRequest {
	return serve.PublishRequest{Dataset: serve.DatasetMedical, Size: 2000, Seed: 1, Method: method}
}

// Scenarios returns the built-in scenarios in a fixed order.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:            "steady-read",
			Description:     "read-only query traffic against one SPS publication; answers folded into the summary digest",
			Publish:         simDataset(serve.MethodSPS),
			Mix:             Mix{Query: 1},
			Clients:         8,
			Steps:           30,
			QueriesPerBatch: 50,
		},
		{
			Name:             "churn",
			Description:      "insert/refresh-heavy streaming publication with queries racing re-indexing",
			Publish:          simDataset(serve.MethodIncremental),
			Mix:              Mix{Query: 3, Insert: 5, Refresh: 1},
			Clients:          8,
			Steps:            25,
			QueriesPerBatch:  20,
			RecordsPerInsert: 40,
		},
		{
			Name:             "ingest",
			Description:      "sustained /insert firehose against the delta-marginal path: background compaction races inserts and queries, append accounting and conservation checked",
			Publish:          simDataset(serve.MethodIncremental),
			Mix:              Mix{Query: 2, Insert: 5},
			Clients:          8,
			Steps:            25,
			QueriesPerBatch:  20,
			RecordsPerInsert: 50,
			CompactEvery:     2,
		},
		{
			Name:            "adversary",
			Description:     "reconstruct/audit-heavy adaptive querier against a plain-perturbation publication, Bernstein-checked",
			Publish:         simDataset(serve.MethodUP),
			Mix:             Mix{Query: 1, Refresh: 1, Reconstruct: 5, Audit: 1},
			Clients:         8,
			Steps:           20,
			QueriesPerBatch: 20,
			SubsetsPerBatch: 20,
			AuditTrials:     200,
			CheckBernstein:  true,
		},
		{
			Name:            "fleet",
			Description:     "replicated fleet under kill/restart chaos: failover, probe reinstatement, exactly-once exposure across retries",
			Publish:         simDataset(serve.MethodSPS),
			Mix:             Mix{Query: 5, Reconstruct: 2, Audit: 1},
			Clients:         8,
			Steps:           25,
			QueriesPerBatch: 20,
			SubsetsPerBatch: 10,
			AuditTrials:     200,
			Fleet: &FleetPlan{
				Replicas:          3,
				ReplicationFactor: 2,
				Publications:      3,
				KillAtFrac:        0.2,
				RestartAtFrac:     0.6,
				SpikeEvery:        25,
				Spike:             1300 * time.Millisecond,
				Timeout:           time.Second,
			},
		},
		{
			Name:             "fleet-ingest",
			Description:      "cross-process fleet under a streaming firehose: child replicas killed and respawned mid-ingest, mutation logs folding into checkpoints, zero lost batches",
			Publish:          simDataset(serve.MethodIncremental),
			Mix:              Mix{Query: 3, Insert: 4, Refresh: 1},
			Clients:          6,
			Steps:            20,
			QueriesPerBatch:  15,
			RecordsPerInsert: 30,
			Fleet: &FleetPlan{
				Replicas:          3,
				ReplicationFactor: 2,
				Publications:      2,
				KillAtFrac:        0.25,
				RestartAtFrac:     0.65,
				// No latency spikes are injected, so failover comes from the
				// kill's instant connection-refused, not from timeouts — the
				// deadline is deliberately generous so race-instrumented child
				// processes on a loaded runner never burn the attempt budget.
				Timeout:       5 * time.Second,
				CrossProcess:  true,
				CheckpointLog: 6,
			},
		},
		{
			Name:            "budget",
			Description:     "zipf-skewed identities against enforced exposure quotas: typed 429s, degraded reconstructs, never-undercount sketching",
			Publish:         simDataset(serve.MethodSPS),
			Mix:             Mix{Query: 3, Reconstruct: 2},
			Clients:         8,
			Steps:           30,
			QueriesPerBatch: 20,
			SubsetsPerBatch: 4,
			Budget: &BudgetPlan{
				Quota:        240,
				SoftFraction: 0.85,
				IdentityPool: 16,
				ZipfS:        1.4,
			},
		},
		{
			Name:             "mixed",
			Description:      "all operations against one streaming publication: queries, inserts, refreshes, reconstructions, audits",
			Publish:          simDataset(serve.MethodIncremental),
			Mix:              Mix{Query: 4, Insert: 2, Refresh: 1, Reconstruct: 2, Audit: 1},
			Clients:          8,
			Steps:            25,
			QueriesPerBatch:  25,
			SubsetsPerBatch:  15,
			RecordsPerInsert: 30,
			AuditTrials:      200,
		},
	}
}

// Lookup resolves a scenario by name.
func Lookup(name string) (Scenario, error) {
	names := make([]string, 0, 4)
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, nil
		}
		names = append(names, sc.Name)
	}
	return Scenario{}, fmt.Errorf("sim: unknown scenario %q (want one of %s)", name, strings.Join(names, ", "))
}
