package sim

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"github.com/reconpriv/reconpriv/internal/bounds"
	"github.com/reconpriv/reconpriv/internal/dataset"
	"github.com/reconpriv/reconpriv/internal/query"
)

// maxFailureSamples bounds the failure messages kept for the summary; the
// violation counter always covers every failed check.
const maxFailureSamples = 8

// checker accumulates invariant verdicts from every client goroutine.
type checker struct {
	checks     atomic.Int64
	violations atomic.Int64

	mu       sync.Mutex
	failures []string
}

// check records one invariant evaluation; on failure the formatted message
// joins the (bounded) sample list.
func (c *checker) check(ok bool, format string, args ...any) bool {
	c.checks.Add(1)
	if ok {
		return true
	}
	c.violations.Add(1)
	c.mu.Lock()
	if len(c.failures) < maxFailureSamples {
		c.failures = append(c.failures, fmt.Sprintf(format, args...))
	}
	c.mu.Unlock()
	return false
}

// sampleFailures snapshots the recorded failure messages.
func (c *checker) sampleFailures() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.failures...)
}

// bernsteinEps is the per-tail failure probability the accuracy invariant
// allows a reconstruction to exceed its Bernstein envelope with. Across the
// few thousand (subset, value) checks of a simulation the union bound keeps
// the false-alarm probability below ~1e-5, so a reported violation means a
// broken estimator or perturber, not noise.
const bernsteinEps = 1e-9

// BernsteinOmega inverts the internal/bounds Bernstein upper tail: the
// smallest ω with Upper(ω, µ) ≤ eps. From exp(−ω²µ/(2+2ω/3)) = eps,
// writing L = ln(1/eps): ω²µ − (2L/3)ω − 2L = 0, whose positive root is
// returned. The same ω is valid for the lower tail, whose bound
// exp(−ω²µ/2) is at least as strong.
func BernsteinOmega(mu, eps float64) float64 {
	if mu <= 0 {
		return math.Inf(1)
	}
	L := math.Log(1 / eps)
	b := 2 * L / 3
	return (b + math.Sqrt(b*b+8*L*mu)) / (2 * mu)
}

// checkBernstein validates one reconstruction against the raw subset
// histogram under the plain-perturbation model: each of the n subset
// records keeps its value with probability p and otherwise resamples
// uniformly over m values, so the observed count of value v is a sum of
// independent Poisson trials with mean µ_v = c_v·p + n(1−p)/m. The MLE maps
// count deviations to frequency deviations by 1/(n·p), so the envelope on
// |F'_v − f_v| is ω(µ_v)·µ_v/(n·p) with ω from BernsteinOmega. A sanity
// cross-check first: Upper must be a genuine tail bound at the solved ω.
func (c *checker) checkBernstein(label string, raw []int, n int, freqs []float64, p float64) {
	m := len(raw)
	for v := 0; v < m; v++ {
		fRaw := float64(raw[v]) / float64(n)
		mu := float64(raw[v])*p + float64(n)*(1-p)/float64(m)
		omega := BernsteinOmega(mu, bernsteinEps)
		if ub := (bounds.Bernstein{}).Upper(omega, mu, n); ub > bernsteinEps*(1+1e-9) {
			c.check(false, "bernstein inversion off: Upper(%g, %g) = %g > %g", omega, mu, ub, bernsteinEps)
			return
		}
		tol := omega * mu / (float64(n) * p)
		dev := math.Abs(freqs[v] - fRaw)
		c.check(dev <= tol+1e-9,
			"%s value %d: reconstructed %.6f vs raw %.6f, |Δ| = %.6f exceeds Bernstein envelope %.6f (n=%d, µ=%.2f)",
			label, v, freqs[v], fRaw, dev, tol, n, mu)
	}
}

// rawSubsetCounts scans a raw group set for the SA histogram and size of
// the subset matching a resolved condition set — the ground truth the
// Bernstein invariant compares reconstructions against. Conditions are in
// the group schema's codes (the output of Publication.ResolveConds).
func rawSubsetCounts(gs *dataset.GroupSet, conds []query.Cond) (counts []int, size int) {
	m := gs.Schema.SADomain()
	counts = make([]int, m)
	na := gs.NAIndices()
	pos := make(map[int]int, len(na)) // schema attr index -> key position
	for i, a := range na {
		pos[a] = i
	}
	for gi := range gs.Groups {
		g := &gs.Groups[gi]
		match := true
		for _, c := range conds {
			if g.Key[pos[c.Attr]] != c.Value {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		for sa, n := range g.SACounts {
			counts[sa] += n
		}
		size += g.Size
	}
	return counts, size
}
