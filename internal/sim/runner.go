package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reconpriv/reconpriv/internal/budget"
	"github.com/reconpriv/reconpriv/internal/par"
	"github.com/reconpriv/reconpriv/internal/serve"
	"github.com/reconpriv/reconpriv/internal/stats"
	"github.com/reconpriv/reconpriv/internal/wire"
)

// Options configure one simulation run.
type Options struct {
	// Scenario is the workload to execute (see Scenarios / Lookup).
	Scenario Scenario
	// Seed drives every random draw of the run; equal (Scenario, Seed,
	// Clients, Steps) inputs yield byte-identical summaries.
	Seed int64
	// Clients and Steps override the scenario defaults when positive.
	Clients int
	Steps   int
	// Think is the maximum per-step pause; each client draws a uniform
	// fraction of it from its stream before every operation (the arrival
	// schedule). The fraction is drawn even at Think == 0 so the operation
	// sequence — and hence the summary — is independent of pacing.
	Think time.Duration
	// ClientTimeout bounds each simulated client's HTTP exchanges (default
	// 30s). Without it a stuck server would hang the whole run; it must
	// comfortably exceed the fleet's worst retry chain (MaxAttempts × the
	// per-attempt timeout plus backoff), so a timed-out client is always a
	// real failure, never an impatient one.
	ClientTimeout time.Duration
	// Config is the traffic server's configuration. Clock is overridden
	// with a fixed epoch so time-derived /statsz fields are deterministic.
	Config serve.Config
	// forceJSON disables the deterministic JSON/binary query alternation
	// (test hook: the mixed-encoding digest must equal the all-JSON one).
	forceJSON bool
}

// simEpoch is the fixed clock injected into every simulated server.
var simEpoch = time.Unix(1700000000, 0)

// clientTimeout resolves the client-side HTTP timeout.
func (o Options) clientTimeout() time.Duration {
	if o.ClientTimeout > 0 {
		return o.ClientTimeout
	}
	return 30 * time.Second
}

// auditSeeds is the fixed pool audit operations draw their seed from. Audit
// verdicts are Monte-Carlo with a fixed tolerance, so keeping the seeds
// independent of the run seed pins the verdicts (they are validated by the
// repo's own audit tests) while still exercising the server's audit cache.
var auditSeeds = []int64{1, 2, 3, 4}

// clientSeed derives client idx's stream seed from the run seed with the
// SplitMix64 finalizer, giving well-separated per-client streams (idx + 1
// keeps client 0 off the raw run seed, which the publication itself uses).
func clientSeed(seed int64, idx int) int64 {
	return int64(par.Mix64(uint64(seed) + 0x9e3779b97f4a7c15*uint64(idx+1)))
}

// --- wire mirrors of the serve response bodies the simulator decodes ---

type answerWire struct {
	Count    int     `json:"count"`
	Estimate float64 `json:"estimate"`
	Error    string  `json:"error"`
}

type queryWire struct {
	Answers         []answerWire `json:"answers"`
	ClientQueries   int64        `json:"client_queries"`
	BudgetRemaining int64        `json:"budget_remaining"`
	BudgetExact     bool         `json:"budget_exact"`
}

type reconstructionWire struct {
	Size  int                `json:"size"`
	Freqs map[string]float64 `json:"freqs"`
	Error string             `json:"error"`
}

type reconstructWire struct {
	Results         []reconstructionWire `json:"results"`
	ClientQueries   int64                `json:"client_queries"`
	BudgetRemaining int64                `json:"budget_remaining"`
	BudgetExact     bool                 `json:"budget_exact"`
}

type insertWire struct {
	Inserted     int `json:"inserted"`
	Trials       int `json:"trials"`
	Absorbed     int `json:"absorbed"`
	TotalRecords int `json:"total_records"`
}

type entryWire struct {
	ID         string `json:"id"`
	Status     string `json:"status"`
	Generation int    `json:"generation"`
	Error      string `json:"error"`
}

type auditWire struct {
	GroupsAudited   int  `json:"groups_audited"`
	Violating       int  `json:"violating_groups"`
	BoundViolations int  `json:"bound_violations"`
	Cached          bool `json:"cached"`
}

type statszWire struct {
	QueryBatches        uint64 `json:"query_batches"`
	QueriesAnswered     uint64 `json:"queries_answered"`
	QueryErrors         uint64 `json:"query_errors"`
	Inserts             uint64 `json:"inserts"`
	ReconstructBatches  uint64 `json:"reconstruct_batches"`
	Reconstructions     uint64 `json:"reconstructions"`
	Audits              uint64 `json:"audits"`
	AuditCacheHits      uint64 `json:"audit_cache_hits"`
	Refreshes           uint64 `json:"refreshes"`
	IngestAppends       uint64 `json:"ingest_appends"`
	Compactions         uint64 `json:"compactions"`
	LatencyObservations uint64 `json:"latency_observations"`
	Clients             int    `json:"clients"`
	TotalCharged        int64  `json:"total_charged"`
	Budget              struct {
		Enforced            bool    `json:"enforced"`
		Occupancy           float64 `json:"occupancy"`
		TrackedClients      int     `json:"tracked_clients"`
		Charges             uint64  `json:"charges"`
		RejectedClientQuota uint64  `json:"rejected_client_quota"`
		RejectedPubQuota    uint64  `json:"rejected_publication_quota"`
		RejectedDegraded    uint64  `json:"rejected_degraded"`
	} `json:"budget"`
}

// clientResult is one client's deterministic tallies plus its latency
// samples.
type clientResult struct {
	ops         OpTally
	queries     int64
	subsets     int64
	inserted    int64
	charged     int64
	latObserved int64 // successfully answered /query + /reconstruct requests
	digest      uint64
	lats        map[string][]time.Duration

	// Budget-scenario state: per-identity accepted charges (the local
	// mirror of the server's exact ledgers; identity pools are disjoint per
	// worker so no two goroutines share an entry) and rejection tallies by
	// mirror reason and by operation kind.
	idents      map[string]int64
	rejClient   int64
	rejDegraded int64
	rejQuery    int64
	rejRecon    int64
}

// runner holds the state shared by every client of one run.
type runner struct {
	opts    Options
	sc      Scenario
	clients int
	steps   int

	srv   *serve.Server
	entry *serve.Entry
	pub0  *serve.Publication
	m     int // SA domain size
	base  string
	hc    *http.Client

	check    *checker
	inserted atomic.Int64
	initial  int // raw record count of generation 0 (Meta.Records)

	// Budget-scenario state: the shared zipf sampler (stateless after
	// construction) and the quota mirror. softQuota is the shed threshold
	// for reconstruct-class charges, computed exactly as the manager does.
	zipf      *stats.Zipf
	quota     int64
	softQuota int64

	// pairA/pairB are the bit-identity witnesses: two extra in-process
	// servers serving the same publication at PipelineWorkers 1 and full
	// width. pairMu serializes their refreshes so generations advance in
	// lockstep and every comparison is like for like.
	pairMu sync.Mutex
	pairA  *serve.Server
	pairB  *serve.Server
	pairID string
}

// Run executes one scenario and returns its result. Setup failures (invalid
// scenario, publication build errors) are returned as errors; invariant
// violations are reported in the summary, never as an error.
func Run(opts Options) (*Result, error) {
	sc := opts.Scenario
	if err := sc.validate(); err != nil {
		return nil, err
	}
	if sc.Fleet != nil {
		return runFleet(opts, sc)
	}
	r := &runner{
		opts:    opts,
		sc:      sc,
		clients: opts.Clients,
		steps:   opts.Steps,
		check:   &checker{},
	}
	if r.clients <= 0 {
		r.clients = sc.Clients
	}
	if r.steps <= 0 {
		r.steps = sc.Steps
	}

	cfg := opts.Config
	if cfg.Clock == nil {
		cfg.Clock = func() time.Time { return simEpoch }
	}
	if sc.CompactEvery != 0 {
		cfg.CompactEvery = sc.CompactEvery
	}
	if b := sc.Budget; b != nil {
		cfg.BudgetQuota = b.Quota
		cfg.BudgetSoftFraction = b.SoftFraction
		// The publication quota is shared across identities; whether one
		// request trips it would depend on goroutine interleaving, so it is
		// disabled to keep every admission decision per-identity.
		cfg.BudgetPublicationQuota = -1
		r.zipf = stats.NewZipf(b.ZipfS, uint64(b.IdentityPool))
		r.quota = b.Quota
		soft := b.SoftFraction
		if soft == 0 {
			soft = budget.DefaultSoftFraction
		}
		if soft > 0 {
			r.softQuota = int64(soft * float64(r.quota))
		}
	} else {
		// Non-budget scenarios measure serving behavior, not admission:
		// their load generators run in the trusted tier, whose 4x quota
		// clears every scenario's worst-case per-client charge at default
		// scale (the adversary scenario's all-reconstruct client tops out
		// at 4000 units). The default tier stays at the adversarially
		// calibrated budget.DefaultQuota, which those clients would trip.
		cfg.BudgetTrusted = append([]string(nil), trustedClientIDs(r.clients)...)
	}
	r.srv = serve.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	hs := &http.Server{Handler: r.srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	r.base = "http://" + ln.Addr().String()
	r.hc = &http.Client{
		Timeout:   opts.clientTimeout(),
		Transport: &http.Transport{MaxIdleConnsPerHost: r.clients + 2},
	}

	if err := r.setup(cfg); err != nil {
		return nil, err
	}

	start := time.Now()
	results := make([]clientResult, r.clients)
	var wg sync.WaitGroup
	for i := 0; i < r.clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.runClient(i, &results[i])
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	return r.finish(results, wall)
}

// setup publishes the scenario's publication over HTTP, wires the
// in-process handles, and runs the start-of-life invariant checks.
func (r *runner) setup(cfg serve.Config) error {
	req := r.sc.Publish
	req.Wait = true
	var pubJSON entryWire
	if code, err := r.postJSON("/publish", req, &pubJSON); err != nil || code != http.StatusOK {
		return fmt.Errorf("sim: publish returned %d: %v (%s)", code, err, pubJSON.Error)
	}
	if pubJSON.Status != "ready" {
		return fmt.Errorf("sim: publication is %s: %s", pubJSON.Status, pubJSON.Error)
	}
	// The HTTP publish above built the publication; this in-process call is
	// a cache hit that hands us the entry for the snapshot accessors.
	e, _, err := r.srv.Publish(req, true)
	if err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	r.entry = e
	r.pub0, err = e.Publication()
	if err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	r.m = r.pub0.Marg.SADomain()
	r.initial = r.pub0.Meta.Records

	// Bit-identity witnesses: the same publication built at PipelineWorkers
	// 1 and at the traffic server's width must fingerprint identically —
	// now, and after every mid-simulation refresh.
	r.pairA = serve.New(serve.Config{PipelineWorkers: 1, Clock: cfg.Clock})
	r.pairB = serve.New(serve.Config{PipelineWorkers: cfg.PipelineWorkers, Clock: cfg.Clock})
	pubA, err := publishOn(r.pairA, req)
	if err != nil {
		return fmt.Errorf("sim: pair publish: %w", err)
	}
	pubB, err := publishOn(r.pairB, req)
	if err != nil {
		return fmt.Errorf("sim: pair publish: %w", err)
	}
	r.pairID = r.pub0.ID
	dA, dB, dServed := pubA.Digest(), pubB.Digest(), r.pub0.Digest()
	r.check.check(dA == dB && dA == dServed,
		"generation-0 publications diverge across PipelineWorkers: 1-worker %s, full-width %s, served %s",
		dA, dB, dServed)

	var health struct {
		Status string `json:"status"`
	}
	code, err := r.getJSON("/healthz", &health)
	r.check.check(err == nil && code == http.StatusOK && health.Status == "ok",
		"healthz returned %d %q (%v)", code, health.Status, err)
	return nil
}

// publishOn builds a publication on an in-process server and waits for it.
func publishOn(s *serve.Server, req serve.PublishRequest) (*serve.Publication, error) {
	e, _, err := s.Publish(req, true)
	if err != nil {
		return nil, err
	}
	return e.Publication()
}

// trustedClientIDs lists the fixed worker ids ("c000", "c001", ...) for
// the trusted budget tier of non-budget scenarios.
func trustedClientIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("c%03d", i)
	}
	return ids
}

// runClient executes one client's schedule.
func (r *runner) runClient(idx int, res *clientResult) {
	rng := stats.NewRand(clientSeed(r.opts.Seed, idx))
	id := fmt.Sprintf("c%03d", idx)
	res.lats = make(map[string][]time.Duration)
	if r.sc.Budget != nil {
		res.idents = make(map[string]int64)
	}
	digest := stats.NewDigest()
	for step := 0; step < r.steps; step++ {
		// Arrival schedule: the pause fraction is drawn unconditionally so
		// the operation sequence does not depend on the Think setting.
		frac := rng.Float64()
		if r.opts.Think > 0 {
			time.Sleep(time.Duration(frac * float64(r.opts.Think)))
		}
		switch pickOp(rng, r.sc.Mix) {
		case opQuery:
			res.ops.Query++
			r.doQuery(rng, r.opIdentity(rng, idx, id), res, digest)
		case opInsert:
			res.ops.Insert++
			r.doInsert(rng, res)
		case opRefresh:
			res.ops.Refresh++
			r.doRefresh(res)
		case opReconstruct:
			res.ops.Reconstruct++
			r.doReconstruct(rng, r.opIdentity(rng, idx, id), res)
		case opAudit:
			res.ops.Audit++
			r.doAudit(rng, res)
		}
	}
	res.digest = digest.Sum64()
}

// opIdentity picks the client id issuing the next charged operation: the
// worker's fixed id normally, a zipf-ranked identity from the worker's
// disjoint pool under a budget plan. Each identity belongs to exactly one
// worker goroutine, so its accept/reject sequence depends only on its own
// drawn history — never on cross-worker interleaving.
func (r *runner) opIdentity(rng *stats.Rand, idx int, def string) string {
	if r.sc.Budget == nil {
		return def
	}
	return fmt.Sprintf("z%02d-%04d", idx, r.zipf.Draw(rng))
}

// Operation kinds, in Mix order.
const (
	opQuery = iota
	opInsert
	opRefresh
	opReconstruct
	opAudit
)

// pickOp draws one operation from the weighted mix.
func pickOp(rng *stats.Rand, m Mix) int {
	x := rng.Intn(m.total())
	for i, w := range [...]int{m.Query, m.Insert, m.Refresh, m.Reconstruct, m.Audit} {
		if x < w {
			return i
		}
		x -= w
	}
	return opQuery
}

// randomConds draws 1..MaxDim distinct public attributes with uniform
// in-domain original labels.
func (r *runner) randomConds(rng *stats.Rand) []serve.CondJSON {
	na := r.pub0.Orig.NAIndices()
	maxDim := r.pub0.Req.MaxDim
	if maxDim > len(na) {
		maxDim = len(na)
	}
	dim := 1 + rng.Intn(maxDim)
	perm := rng.Perm(len(na))[:dim]
	conds := make([]serve.CondJSON, dim)
	for j, pi := range perm {
		attr := &r.pub0.Orig.Attrs[na[pi]]
		conds[j] = serve.CondJSON{Attr: attr.Name, Value: attr.Values[rng.Intn(attr.Domain())]}
	}
	return conds
}

// doQuery issues one query batch and validates shape and exposure.
func (r *runner) doQuery(rng *stats.Rand, id string, res *clientResult, digest *stats.Digest) {
	sa := r.pub0.Orig.SAAttr()
	qs := make([]serve.QueryJSON, r.sc.QueriesPerBatch)
	for i := range qs {
		qs[i] = serve.QueryJSON{Conds: r.randomConds(rng), SA: sa.Values[rng.Intn(r.m)]}
	}
	n := int64(len(qs))
	binary := res.ops.Query%2 == 0 && !r.opts.forceJSON
	var payload []byte
	ctype := "application/json"
	if binary {
		// Even batches ride the binary framing; see binary.go for why this
		// choice must not consume the client's randomness.
		frame, ferr := encodeQueryFrame(r.pub0.Orig, r.pub0.ID, id, qs)
		if !r.check.check(ferr == nil, "encoding binary query batch: %v", ferr) {
			return
		}
		payload, ctype = frame, wire.ContentType
	} else {
		var merr error
		payload, merr = json.Marshal(map[string]any{"id": r.pub0.ID, "client": id, "queries": qs, "wait": true})
		if !r.check.check(merr == nil, "encoding query batch: %v", merr) {
			return
		}
	}
	code, retryAfter, body, err := r.timedFull("query", res, "/query", ctype, payload)
	if r.sc.Budget != nil && code == http.StatusTooManyRequests {
		res.rejQuery++
		r.checkReject("query", id, n, false, retryAfter, body, res)
		return
	}
	if !r.check.check(err == nil && code == http.StatusOK, "query returned %d (%v)", code, err) {
		return
	}
	var resp queryWire
	if binary {
		err = decodeQueryFrame(body, &resp)
	} else {
		err = json.Unmarshal(body, &resp)
	}
	if !r.check.check(err == nil, "decoding query response: %v", err) {
		return
	}
	res.latObserved++
	res.queries += n
	res.charged += n
	r.check.check(len(resp.Answers) == len(qs), "query batch of %d got %d answers", len(qs), len(resp.Answers))
	if r.sc.Budget != nil {
		r.checkAccepted("query", id, n, false, resp.ClientQueries, resp.BudgetRemaining, resp.BudgetExact, res)
	} else {
		r.check.check(resp.ClientQueries == res.charged,
			"client %s exposure: server says %d, local ledger %d", id, resp.ClientQueries, res.charged)
	}
	for i := range resp.Answers {
		a := &resp.Answers[i]
		if !r.check.check(a.Error == "", "query %d failed: %s", i, a.Error) {
			continue
		}
		if r.sc.DeterministicAnswers() {
			digest.Word(uint64(a.Count))
			digest.Word(math.Float64bits(a.Estimate))
		}
	}
}

// admit mirrors budget.Manager's admission rule under the frozen simulation
// clock: the window never rotates, so an identity's window usage equals its
// accepted lifetime charges. Order matters and matches the manager: the
// hard quota is checked before the reconstruct-shedding soft threshold.
func (r *runner) admit(used, n int64, reconstruct bool) (bool, string) {
	if used+n > r.quota {
		return false, "client_quota"
	}
	if reconstruct && r.softQuota > 0 && used+n > r.softQuota {
		return false, "degraded"
	}
	return true, ""
}

// checkAccepted validates the ledger block of one accepted charge against
// the identity's mirror and the hard quota invariant, then lands the charge
// in the mirror.
func (r *runner) checkAccepted(op, id string, n int64, reconstruct bool, clientQueries, remaining int64, exact bool, res *clientResult) {
	used := res.idents[id]
	ok, _ := r.admit(used, n, reconstruct)
	r.check.check(ok, "%s for %s accepted by server, but mirror had %d used of quota %d for a charge of %d",
		op, id, used, r.quota, n)
	want := used + n
	res.idents[id] = want
	r.check.check(clientQueries == want,
		"%s identity %s ledger: server says %d, mirror %d", op, id, clientQueries, want)
	r.check.check(want <= r.quota,
		"%s identity %s charged to %d, past quota %d", op, id, want, r.quota)
	r.check.check(remaining == r.quota-want,
		"%s identity %s remaining budget: server says %d, want %d", op, id, remaining, r.quota-want)
	r.check.check(exact,
		"%s identity %s budget counts flagged as estimates; every sim identity must be exactly tracked", op, id)
}

// checkReject validates one 429 rejection: typed error body, integer
// Retry-After, mirror agreement that the charge had to be refused, and —
// by leaving the mirror untouched — that rejected ops are never charged
// (the next accepted response's ledger would diverge otherwise, and
// finish() compares final ledgers identity by identity).
func (r *runner) checkReject(op, id string, n int64, reconstruct bool, retryAfter string, body []byte, res *clientResult) {
	var eb struct {
		Code string `json:"code"`
	}
	jerr := json.Unmarshal(body, &eb)
	r.check.check(jerr == nil && eb.Code == "budget_exhausted",
		"%s rejection for %s carries error code %q (%v)", op, id, eb.Code, jerr)
	secs, aerr := strconv.Atoi(retryAfter)
	r.check.check(aerr == nil && secs >= 1,
		"%s rejection for %s Retry-After %q is not a positive integer", op, id, retryAfter)
	used := res.idents[id]
	ok, reason := r.admit(used, n, reconstruct)
	r.check.check(!ok,
		"%s for %s rejected by server, but mirror had %d used of quota %d for a charge of %d",
		op, id, used, r.quota, n)
	if reason == "degraded" {
		res.rejDegraded++
	} else {
		res.rejClient++
	}
}

// doInsert streams one record batch and validates conservation.
func (r *runner) doInsert(rng *stats.Rand, res *clientResult) {
	recs := make([]map[string]string, r.sc.RecordsPerInsert)
	schema := r.pub0.Orig
	for i := range recs {
		rec := make(map[string]string, schema.NumAttrs())
		for ai := range schema.Attrs {
			attr := &schema.Attrs[ai]
			rec[attr.Name] = attr.Values[rng.Intn(attr.Domain())]
		}
		recs[i] = rec
	}
	var resp insertWire
	code, err := r.timedPost("insert", res, "/insert",
		map[string]any{"id": r.pub0.ID, "records": recs, "wait": true}, &resp)
	if !r.check.check(err == nil && code == http.StatusOK, "insert returned %d (%v)", code, err) {
		return
	}
	res.inserted += int64(len(recs))
	r.inserted.Add(int64(len(recs)))
	r.check.check(resp.Inserted == len(recs), "inserted %d of %d records", resp.Inserted, len(recs))
	r.check.check(resp.Trials+resp.Absorbed == resp.Inserted,
		"insert of %d split into %d trials + %d absorbed", resp.Inserted, resp.Trials, resp.Absorbed)
	r.check.check(int64(resp.TotalRecords) >= int64(r.initial)+res.inserted,
		"total_records %d below initial %d + own inserts %d: rows dropped",
		resp.TotalRecords, r.initial, res.inserted)
}

// doRefresh refreshes the served publication, then advances the
// bit-identity pair in lockstep and compares fingerprints.
func (r *runner) doRefresh(res *clientResult) {
	var resp entryWire
	code, err := r.timedPost("refresh", res, "/refresh",
		map[string]any{"id": r.pub0.ID, "wait": true}, &resp)
	if !r.check.check(err == nil && code == http.StatusOK, "refresh returned %d (%v): %s", code, err, resp.Error) {
		return
	}
	r.check.check(resp.Status == "ready" && resp.Generation >= 1,
		"refreshed publication is %s at generation %d", resp.Status, resp.Generation)

	r.pairMu.Lock()
	defer r.pairMu.Unlock()
	pubA, errA := refreshOn(r.pairA, r.pairID)
	pubB, errB := refreshOn(r.pairB, r.pairID)
	if !r.check.check(errA == nil && errB == nil, "pair refresh failed: %v / %v", errA, errB) {
		return
	}
	r.check.check(pubA.Generation == pubB.Generation,
		"pair generations diverged: %d vs %d", pubA.Generation, pubB.Generation)
	dA, dB := pubA.Digest(), pubB.Digest()
	r.check.check(dA == dB,
		"generation-%d publications diverge across PipelineWorkers: 1-worker %s, full-width %s",
		pubA.Generation, dA, dB)
}

// refreshOn refreshes an in-process witness server and returns the new
// publication.
func refreshOn(s *serve.Server, id string) (*serve.Publication, error) {
	e, err := s.Refresh(id)
	if err != nil {
		return nil, err
	}
	return e.Publication()
}

// doReconstruct issues one reconstruction batch, validates shape and
// exposure charging, and — on plain-perturbation scenarios — checks every
// reconstruction against the Bernstein envelope of the raw groups.
func (r *runner) doReconstruct(rng *stats.Rand, id string, res *clientResult) {
	subsets := make([][]serve.CondJSON, r.sc.SubsetsPerBatch)
	for i := range subsets {
		subsets[i] = r.randomConds(rng)
	}
	n := int64(len(subsets)) * int64(r.m)
	payload, merr := json.Marshal(map[string]any{"id": r.pub0.ID, "client": id, "subsets": subsets, "wait": true})
	if !r.check.check(merr == nil, "encoding reconstruct batch: %v", merr) {
		return
	}
	code, retryAfter, body, err := r.timedFull("reconstruct", res, "/reconstruct", "application/json", payload)
	if r.sc.Budget != nil && code == http.StatusTooManyRequests {
		res.rejRecon++
		r.checkReject("reconstruct", id, n, true, retryAfter, body, res)
		return
	}
	if !r.check.check(err == nil && code == http.StatusOK, "reconstruct returned %d (%v)", code, err) {
		return
	}
	var resp reconstructWire
	if !r.check.check(json.Unmarshal(body, &resp) == nil, "decoding reconstruct response") {
		return
	}
	res.latObserved++
	res.subsets += int64(len(subsets))
	res.charged += n
	r.check.check(len(resp.Results) == len(subsets),
		"reconstruct batch of %d got %d results", len(subsets), len(resp.Results))
	if r.sc.Budget != nil {
		r.checkAccepted("reconstruct", id, n, true, resp.ClientQueries, resp.BudgetRemaining, resp.BudgetExact, res)
	} else {
		r.check.check(resp.ClientQueries == res.charged,
			"client %s exposure after reconstruct: server says %d, local ledger %d", id, resp.ClientQueries, res.charged)
	}
	for i := range resp.Results {
		rec := &resp.Results[i]
		if !r.check.check(rec.Error == "", "reconstruction %d failed: %s", i, rec.Error) {
			continue
		}
		if !r.sc.CheckBernstein {
			continue
		}
		conds, err := r.pub0.ResolveConds(subsets[i])
		if !r.check.check(err == nil, "resolving subset %d: %v", i, err) {
			continue
		}
		raw, size := rawSubsetCounts(r.pub0.Groups, conds)
		r.check.check(rec.Size == size,
			"subset %d: published size %d, raw size %d — plain perturbation must preserve counts", i, rec.Size, size)
		if size == 0 {
			continue
		}
		sa := r.pub0.Orig.SAAttr()
		freqs := make([]float64, r.m)
		for v := 0; v < r.m; v++ {
			freqs[v] = rec.Freqs[sa.Label(uint16(v))]
		}
		r.check.checkBernstein(fmt.Sprintf("subset %d", i), raw, size, freqs, r.pub0.Req.P)
	}
}

// doAudit runs one audit and validates the Chernoff verdicts.
func (r *runner) doAudit(rng *stats.Rand, res *clientResult) {
	seed := auditSeeds[rng.Intn(len(auditSeeds))]
	var resp auditWire
	code, err := r.timedPost("audit", res, "/audit",
		map[string]any{"id": r.pub0.ID, "trials": r.sc.AuditTrials, "seed": seed, "top": 5, "wait": true}, &resp)
	if !r.check.check(err == nil && code == http.StatusOK, "audit returned %d (%v)", code, err) {
		return
	}
	r.check.check(resp.GroupsAudited > 0, "audit swept no groups")
	r.check.check(resp.BoundViolations == 0,
		"audit found %d groups beyond their Chernoff bounds", resp.BoundViolations)
}

// finish runs the end-of-run conservation checks and assembles the result.
func (r *runner) finish(results []clientResult, wall time.Duration) (*Result, error) {
	sum := Summary{
		Scenario:       r.sc.Name,
		Seed:           r.opts.Seed,
		Clients:        r.clients,
		StepsPerClient: r.steps,
	}
	var digest uint64
	var latObserved int64
	var rejQuery, rejRecon int64
	lats := make(map[string][]time.Duration)
	for i := range results {
		res := &results[i]
		sum.Ops.Query += res.ops.Query
		sum.Ops.Insert += res.ops.Insert
		sum.Ops.Refresh += res.ops.Refresh
		sum.Ops.Reconstruct += res.ops.Reconstruct
		sum.Ops.Audit += res.ops.Audit
		sum.Queries += res.queries
		sum.Subsets += res.subsets
		sum.RecordsInserted += res.inserted
		sum.ChargedQueries += res.charged
		rejQuery += res.rejQuery
		rejRecon += res.rejRecon
		latObserved += res.latObserved
		digest ^= res.digest
		for op, ds := range res.lats {
			lats[op] = append(lats[op], ds...)
		}
	}

	// Per-client exposure ledgers against the server's accounting. Budget
	// scenarios compare per zipf identity instead of per worker.
	if r.sc.Budget == nil {
		for i := range results {
			id := fmt.Sprintf("c%03d", i)
			got := r.srv.ClientExposure(id)
			r.check.check(got == results[i].charged,
				"client %s final exposure: server ledger %d, charges observed %d", id, got, results[i].charged)
		}
	} else {
		sum.Budget = r.finishBudget(results)
	}

	// measuredQueries is the tally issued inside the timed window; the final
	// conservation query below lands after wall was measured, so it counts
	// toward the summary and the statsz cross-checks but not the throughput.
	measuredQueries := sum.Queries
	var finalBatches int64

	// Insert conservation: after a final quiescing query, the raw stream —
	// the ingested record count and the raw group histograms behind the
	// audit — must total the initial batch plus every inserted record. The
	// delta path keeps this true continuously (every insert appends a
	// generation and overlays the raw snapshot), so the check also covers
	// any background compactions that landed mid-run: compaction rewrites
	// the index representation, never the totals. The published snapshot is
	// deliberately not compared: a refresh rebuilds through SPS scaling,
	// whose rounding may publish a few more or fewer records than were
	// ingested; the group-size conservation claim is about the raw
	// histograms never dropping rows.
	if r.sc.Mix.Insert > 0 {
		finalRng := stats.NewRand(clientSeed(r.opts.Seed, r.clients))
		var resp queryWire
		q := serve.QueryJSON{Conds: r.randomConds(finalRng), SA: r.pub0.Orig.SAAttr().Values[0]}
		code, err := r.postJSON("/query",
			map[string]any{"id": r.pub0.ID, "client": "sim-final", "queries": []serve.QueryJSON{q}, "wait": true}, &resp)
		if r.check.check(err == nil && code == http.StatusOK, "final query returned %d (%v)", code, err) {
			latObserved++
			sum.Queries++
			sum.ChargedQueries++
			finalBatches++
		}
		pub, err := r.entry.Publication()
		if r.check.check(err == nil, "final publication: %v", err) {
			want := int64(r.initial) + r.inserted.Load()
			r.check.check(int64(pub.Meta.Records) == want,
				"raw records %d after %d inserts on %d initial: want %d — rows dropped or duplicated",
				pub.Meta.Records, r.inserted.Load(), r.initial, want)
			r.check.check(pub.Groups != nil && int64(pub.Groups.Total()) == want,
				"raw group histograms total %d, want %d — group-size conservation broken",
				pub.Groups.Total(), want)
		}
	}

	// Latency-histogram conservation, via the accessor and over the wire.
	r.check.check(int64(r.srv.LatencyObservations()) == latObserved,
		"latency histogram holds %d observations, %d query/reconstruct requests answered",
		r.srv.LatencyObservations(), latObserved)
	var st statszWire
	code, err := r.getJSON("/statsz", &st)
	if r.check.check(err == nil && code == http.StatusOK, "statsz returned %d (%v)", code, err) {
		r.check.check(int64(st.LatencyObservations) == latObserved,
			"statsz latency_observations %d, want %d", st.LatencyObservations, latObserved)
		r.check.check(int64(st.QueriesAnswered) == sum.Queries,
			"statsz queries_answered %d, want %d", st.QueriesAnswered, sum.Queries)
		// Budget-rejected batches are refused before any counter or latency
		// observation, so the server-side tallies cover accepted ones only.
		acceptedQ := sum.Ops.Query - rejQuery + finalBatches
		r.check.check(int64(st.QueryBatches) == acceptedQ,
			"statsz query_batches %d, want %d", st.QueryBatches, acceptedQ)
		r.check.check(st.QueryErrors == 0, "statsz reports %d query errors", st.QueryErrors)
		r.check.check(int64(st.Reconstructions) == sum.Subsets,
			"statsz reconstructions %d, want %d", st.Reconstructions, sum.Subsets)
		r.check.check(int64(st.ReconstructBatches) == sum.Ops.Reconstruct-rejRecon,
			"statsz reconstruct_batches %d, want %d", st.ReconstructBatches, sum.Ops.Reconstruct-rejRecon)
		r.check.check(int64(st.Inserts) == sum.RecordsInserted,
			"statsz inserts %d, want %d", st.Inserts, sum.RecordsInserted)
		r.check.check(int64(st.Refreshes) == sum.Ops.Refresh,
			"statsz refreshes %d, want %d issued", st.Refreshes, sum.Ops.Refresh)
		if r.sc.Mix.Insert > 0 && r.sc.Mix.Refresh == 0 && !r.opts.Config.IngestLegacyReindex {
			// With no refreshes every publication-pointer writer (append,
			// compaction install, reconciliation) serializes on the stream
			// mutex, so each insert appends exactly one delta generation:
			// ingest_appends is a pure function of the operation tallies and
			// joins the deterministic summary. Compactions stay advisory —
			// a compaction that loses its install race to a concurrent append
			// is discarded — so only a loose bound applies.
			r.check.check(int64(st.IngestAppends) == sum.Ops.Insert,
				"statsz ingest_appends %d, want one per insert batch (%d)", st.IngestAppends, sum.Ops.Insert)
			sum.IngestAppends = int64(st.IngestAppends)
			r.check.check(st.Compactions <= st.IngestAppends,
				"statsz compactions %d exceeds ingest_appends %d", st.Compactions, st.IngestAppends)
		}
		r.check.check(int64(st.Audits+st.AuditCacheHits) == sum.Ops.Audit,
			"statsz audits %d + cache hits %d, want %d issued", st.Audits, st.AuditCacheHits, sum.Ops.Audit)
		if b := sum.Budget; b != nil {
			r.check.check(st.Budget.Enforced, "statsz budget not enforced under a budget plan")
			r.check.check(st.TotalCharged == sum.ChargedQueries,
				"statsz total_charged %d, want %d accepted charges", st.TotalCharged, sum.ChargedQueries)
			r.check.check(st.Clients == b.Identities && st.Budget.TrackedClients == b.Identities,
				"statsz tracks %d/%d clients, want %d distinct identities",
				st.Clients, st.Budget.TrackedClients, b.Identities)
			accepted := (sum.Ops.Query - rejQuery) + (sum.Ops.Reconstruct - rejRecon)
			r.check.check(int64(st.Budget.Charges) == accepted,
				"statsz budget charges %d, want %d accepted batches", st.Budget.Charges, accepted)
			r.check.check(int64(st.Budget.RejectedClientQuota) == b.RejectedClientQuota,
				"statsz rejected_client_quota %d, mirrors tallied %d", st.Budget.RejectedClientQuota, b.RejectedClientQuota)
			r.check.check(int64(st.Budget.RejectedDegraded) == b.RejectedDegraded,
				"statsz rejected_degraded %d, mirrors tallied %d", st.Budget.RejectedDegraded, b.RejectedDegraded)
			r.check.check(st.Budget.RejectedPubQuota == 0,
				"statsz rejected_publication_quota %d with the publication quota disabled", st.Budget.RejectedPubQuota)
			occ := float64(b.MaxIdentityCharged) / float64(r.quota)
			r.check.check(math.Abs(st.Budget.Occupancy-occ) < 1e-12,
				"statsz budget occupancy %g, want %g", st.Budget.Occupancy, occ)
		}
	}

	if r.sc.DeterministicAnswers() {
		sum.AnswersDigest = fmt.Sprintf("%016x", digest)
	}
	sum.Invariants = InvariantSummary{
		Checks:     r.check.checks.Load(),
		Violations: r.check.violations.Load(),
		Failures:   r.check.sampleFailures(),
	}

	timing := Timing{
		WallMS:   float64(wall.Microseconds()) / 1000,
		Requests: sum.Ops.Query + sum.Ops.Insert + sum.Ops.Refresh + sum.Ops.Reconstruct + sum.Ops.Audit,
		Ops:      opTimings(lats),
	}
	if s := wall.Seconds(); s > 0 {
		timing.RequestsPerSec = float64(timing.Requests) / s
		timing.QueriesPerSec = float64(measuredQueries) / s
	}
	return &Result{Summary: sum, Timing: timing}, nil
}

// finishBudget runs the end-of-run budget invariants: per-identity ledger
// agreement (which proves rejected ops were never charged), the hard quota
// ceiling, and the never-undercount sketch pin — every identity's exact
// charge total replayed through a deliberately tiny shadow manager, whose
// count-min estimate must dominate the exact count. It returns the
// deterministic budget summary block.
func (r *runner) finishBudget(results []clientResult) *BudgetSummary {
	bs := &BudgetSummary{
		Quota:        r.quota,
		SoftQuota:    r.softQuota,
		IdentityPool: r.sc.Budget.IdentityPool,
		ZipfS:        r.sc.Budget.ZipfS,
	}
	idents := make(map[string]int64)
	for i := range results {
		res := &results[i]
		for id, charged := range res.idents {
			idents[id] = charged // pools are per-worker disjoint
		}
		bs.AcceptedBatches += (res.ops.Query - res.rejQuery) + (res.ops.Reconstruct - res.rejRecon)
		bs.RejectedClientQuota += res.rejClient
		bs.RejectedDegraded += res.rejDegraded
	}
	bs.Identities = len(idents)
	ids := make([]string, 0, len(idents))
	for id := range idents {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		charged := idents[id]
		if charged > bs.MaxIdentityCharged {
			bs.MaxIdentityCharged = charged
		}
		got := r.srv.ClientExposure(id)
		r.check.check(got == charged,
			"identity %s final exposure: server ledger %d, accepted charges %d — rejected ops must never charge",
			id, got, charged)
		r.check.check(charged <= r.quota,
			"identity %s charged %d past quota %d", id, charged, r.quota)
	}

	// Shadow sketch replay: 4 exact slots and a 64-wide sketch force most
	// identities through count-min and its promotion/eviction machinery;
	// estimates must never undercount the exact totals.
	shadow := budget.New(budget.Config{
		Quota:       -1,
		MaxTracked:  4,
		SketchWidth: 64,
		SketchDepth: 2,
		PromoteAt:   r.quota / 2,
		Clock:       func() time.Time { return simEpoch },
	})
	for _, id := range ids {
		shadow.Charge(id, "", idents[id], budget.ClassQuery)
	}
	for _, id := range ids {
		est, _ := shadow.Estimate(id)
		r.check.check(est >= idents[id],
			"shadow sketch estimate %d under exact count %d for %s — count-min must never undercount",
			est, idents[id], id)
	}
	return bs
}

// --- HTTP plumbing ---

// timedPost posts a JSON body and records the request's wall latency under
// the op name.
func (r *runner) timedPost(op string, res *clientResult, path string, body, out any) (int, error) {
	start := time.Now()
	code, err := r.postJSON(path, body, out)
	res.lats[op] = append(res.lats[op], time.Since(start))
	return code, err
}

// timedFull posts a raw payload and records the request's wall latency
// under the op name, returning status, Retry-After header, and raw body —
// everything the budget rejection path asserts on.
func (r *runner) timedFull(op string, res *clientResult, path, ctype string, payload []byte) (int, string, []byte, error) {
	start := time.Now()
	code, retryAfter, body, err := r.postFull(path, ctype, payload)
	res.lats[op] = append(res.lats[op], time.Since(start))
	return code, retryAfter, body, err
}

// postFull is the one HTTP POST primitive: every other helper wraps it.
func (r *runner) postFull(path, ctype string, payload []byte) (int, string, []byte, error) {
	resp, err := r.hc.Post(r.base+path, ctype, bytes.NewReader(payload))
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header.Get("Retry-After"), body, err
}

func (r *runner) postJSON(path string, body, out any) (int, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	code, _, data, err := r.postFull(path, "application/json", buf)
	if err != nil || out == nil {
		return code, err
	}
	return code, json.Unmarshal(data, out)
}

func (r *runner) getJSON(path string, out any) (int, error) {
	resp, err := r.hc.Get(r.base + path)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	return resp.StatusCode, decodeBody(resp.Body, out)
}

func decodeBody(body io.Reader, out any) error {
	data, err := io.ReadAll(body)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}
