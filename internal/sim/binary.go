package sim

import (
	"github.com/reconpriv/reconpriv/internal/dataset"
	"github.com/reconpriv/reconpriv/internal/serve"
	"github.com/reconpriv/reconpriv/internal/wire"
)

// The simulator speaks both protocol encodings: every client alternates
// JSON and binary query batches deterministically (odd batches JSON, even
// binary), and the encoding choice consumes no randomness — the drawn
// workload is identical to an all-JSON run. Because the summary digest
// folds only counts and estimate bits, a mixed-encoding run must produce
// the same AnswersDigest as a forced-JSON run of the same seed; that
// equality is the end-to-end pin on cross-encoding equivalence
// (TestMixedEncodingDigestMatchesJSON).

// encodeQueryFrame translates one JSON-shaped query batch into a wire
// frame, mapping labels back to the original value codes the binary
// protocol speaks.
func encodeQueryFrame(schema *dataset.Schema, id, client string, qs []serve.QueryJSON) ([]byte, error) {
	m := wire.QueryReq{ID: []byte(id), Client: []byte(client), Wait: true}
	sa := schema.SAAttr()
	for i := range qs {
		saCode, err := sa.Code(qs[i].SA)
		if err != nil {
			return nil, err
		}
		conds := make([]wire.Cond, len(qs[i].Conds))
		for j, c := range qs[i].Conds {
			ai, err := schema.AttrIndex(c.Attr)
			if err != nil {
				return nil, err
			}
			v, err := schema.Attrs[ai].Code(c.Value)
			if err != nil {
				return nil, err
			}
			conds[j] = wire.Cond{Attr: ai, Value: v}
		}
		m.Queries = append(m.Queries, wire.Query{SA: saCode, Conds: conds})
	}
	return m.Append(nil), nil
}

// decodeQueryFrame mirrors a binary query response into the JSON-shaped
// struct the validation path consumes, so shape, exposure, and digest
// checks are encoding-blind.
func decodeQueryFrame(body []byte, out *queryWire) error {
	var resp wire.QueryResp
	if err := resp.Decode(body); err != nil {
		return err
	}
	out.Answers = make([]answerWire, len(resp.Answers))
	for i := range resp.Answers {
		a := &resp.Answers[i]
		out.Answers[i] = answerWire{Count: int(a.Count), Estimate: a.Estimate, Error: string(a.Err)}
	}
	out.ClientQueries = int64(resp.ClientQueries)
	out.BudgetRemaining = int64(resp.BudgetRemaining)
	if resp.BudgetRemaining == wire.UnlimitedBudget {
		out.BudgetRemaining = -1
	}
	out.BudgetExact = resp.BudgetExact
	return nil
}
