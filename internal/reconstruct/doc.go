// Package reconstruct estimates the original sensitive-value distribution of
// a record subset from its perturbed counterpart — the consumer side of the
// publishing pipeline, and the adversary side of the privacy definition
// (reconstruction privacy bounds how accurate these estimators can be on a
// personal group).
//
// Three estimators are provided:
//
//   - MLE: the closed form of the paper's Lemma 2(ii),
//     F'ᵢ = (O*ᵢ/|S| − (1−p)/m) / p, which is the maximum likelihood
//     estimator under the sum-to-one constraint (Theorem 1) and the
//     estimator reconstruction privacy is defined against.
//   - MatrixMLE: the same quantity computed as P⁻¹·(O*/|S|) (Theorem 1's
//     original form) over the explicit perturbation matrix; it
//     cross-validates the closed form in tests and exercises the general
//     matrix-inversion path (linalg.go).
//   - IterativeBayes: the EM-style estimator of Agrawal–Aggarwal, included
//     as an extension; unlike the raw MLE it never leaves the simplex.
//
// MLEValue is the scalar hot path behind query estimation
// (internal/query.Marginals.Estimate): est = |S*|·F' per Section 6.1.
package reconstruct
