package reconstruct

import (
	"fmt"
	"math"
)

// InvertUniformMatrix returns the closed-form inverse of the uniform
// perturbation matrix P = pI + ((1−p)/m)J:
//
//	P⁻¹ = (1/p)·I − ((1−p)/(pm))·J
//
// (J is the all-ones matrix; the identity follows from P·P⁻¹ = I because
// J·J = mJ and p + m(1−p)/m = 1).
func InvertUniformMatrix(m int, p float64) [][]float64 {
	diag := 1 / p
	off := -(1 - p) / (p * float64(m))
	inv := make([][]float64, m)
	for j := 0; j < m; j++ {
		inv[j] = make([]float64, m)
		for i := 0; i < m; i++ {
			inv[j][i] = off
			if i == j {
				inv[j][i] += diag
			}
		}
	}
	return inv
}

// Invert computes the inverse of a general square matrix by Gauss-Jordan
// elimination with partial pivoting. It is used to cross-check the
// closed-form inverse and to support non-uniform perturbation matrices.
func Invert(a [][]float64) ([][]float64, error) {
	n := len(a)
	if n == 0 {
		return nil, fmt.Errorf("reconstruct: cannot invert an empty matrix")
	}
	// Augmented matrix [A | I].
	aug := make([][]float64, n)
	for i := range aug {
		if len(a[i]) != n {
			return nil, fmt.Errorf("reconstruct: matrix is not square (row %d has %d entries)", i, len(a[i]))
		}
		aug[i] = make([]float64, 2*n)
		copy(aug[i], a[i])
		aug[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(aug[r][col]) > math.Abs(aug[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(aug[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("reconstruct: matrix is singular at column %d", col)
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		pv := aug[col][col]
		for c := 0; c < 2*n; c++ {
			aug[col][c] /= pv
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			factor := aug[r][col]
			if factor == 0 {
				continue
			}
			for c := 0; c < 2*n; c++ {
				aug[r][c] -= factor * aug[col][c]
			}
		}
	}
	inv := make([][]float64, n)
	for i := range inv {
		inv[i] = aug[i][n:]
	}
	return inv, nil
}

// MatVec returns a·x.
func MatVec(a [][]float64, x []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		var sum float64
		for j, v := range a[i] {
			sum += v * x[j]
		}
		out[i] = sum
	}
	return out
}

// MatMul returns a·b for square matrices of equal size.
func MatMul(a, b [][]float64) [][]float64 {
	n := len(a)
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		out[i] = make([]float64, n)
		for k := 0; k < n; k++ {
			aik := a[i][k]
			if aik == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				out[i][j] += aik * b[k][j]
			}
		}
	}
	return out
}
