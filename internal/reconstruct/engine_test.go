package reconstruct_test

// The engine tests live in an external test package so they can drive the
// engine through query.Marginals — the Counter implementation the adversary
// stack actually runs on (the query package imports reconstruct, so an
// internal test could not).

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"github.com/reconpriv/reconpriv/internal/dataset"
	"github.com/reconpriv/reconpriv/internal/query"
	"github.com/reconpriv/reconpriv/internal/reconstruct"
	"github.com/reconpriv/reconpriv/internal/stats"
)

// engineFixture builds a random 3-NA-attribute table, its marginal index,
// and an engine over it.
func engineFixture(t *testing.T, seed int64, rows int) (*dataset.Table, *query.Marginals, *reconstruct.Engine) {
	t.Helper()
	schema := dataset.MustSchema([]dataset.Attribute{
		{Name: "A", Values: []string{"a0", "a1", "a2"}},
		{Name: "B", Values: []string{"b0", "b1"}},
		{Name: "C", Values: []string{"c0", "c1", "c2", "c3"}},
		{Name: "S", Values: []string{"s0", "s1", "s2"}},
	}, "S")
	rng := stats.NewRand(seed)
	tab := dataset.NewTable(schema, rows)
	for i := 0; i < rows; i++ {
		tab.MustAppendRow(uint16(rng.Intn(3)), uint16(rng.Intn(2)), uint16(rng.Intn(4)), uint16(rng.Intn(3)))
	}
	marg, err := query.BuildMarginals(tab, 3)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := reconstruct.NewEngine(marg, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return tab, marg, eng
}

// scanCounts is the reference scan: the SA histogram of the subset.
func scanCounts(tab *dataset.Table, conds []reconstruct.Condition) ([]int, int) {
	counts := make([]int, tab.Schema.SADomain())
	size := 0
	for r := 0; r < tab.NumRows(); r++ {
		row := tab.Row(r)
		ok := true
		for _, c := range conds {
			if row[c.Attr] != c.Value {
				ok = false
				break
			}
		}
		if ok {
			counts[row[tab.Schema.SA]]++
			size++
		}
	}
	return counts, size
}

// randomSets draws n random condition sets over the fixture schema,
// including values that select empty subsets.
func randomSets(rng *stats.Rand, n int) [][]reconstruct.Condition {
	domains := []int{3, 2, 4}
	sets := make([][]reconstruct.Condition, n)
	for i := range sets {
		dim := 1 + rng.Intn(3)
		attrs := rng.Perm(3)[:dim]
		set := make([]reconstruct.Condition, dim)
		for j, a := range attrs {
			set[j] = reconstruct.Condition{Attr: a, Value: uint16(rng.Intn(domains[a]))}
		}
		sets[i] = set
	}
	return sets
}

func TestEngineValidation(t *testing.T) {
	_, marg, _ := engineFixture(t, 1, 50)
	if _, err := reconstruct.NewEngine(nil, 0.5); err == nil {
		t.Error("nil source should error")
	}
	for _, p := range []float64{0, 1, -0.5, math.NaN()} {
		if _, err := reconstruct.NewEngine(marg, p); err == nil {
			t.Errorf("p = %v should error", p)
		}
	}
	eng, err := reconstruct.NewEngine(marg, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if eng.SADomain() != 3 || eng.P() != 0.5 {
		t.Errorf("engine reports m=%d p=%v", eng.SADomain(), eng.P())
	}
}

func TestReconstructBatchMatchesScan(t *testing.T) {
	// Batch-vs-scan equivalence on randomized condition sets: the indexed
	// engine must agree with MLE over a fresh table scan on every set.
	tab, _, eng := engineFixture(t, 2, 400)
	sets := randomSets(stats.NewRand(3), 200)
	got := eng.ReconstructBatch(sets, reconstruct.BatchOptions{})
	empties := 0
	for i, set := range sets {
		counts, size := scanCounts(tab, set)
		if got[i].Err != nil {
			t.Fatalf("set %d: unexpected error %v", i, got[i].Err)
		}
		if got[i].Size != size {
			t.Fatalf("set %d: size %d, scan %d", i, got[i].Size, size)
		}
		if size == 0 {
			empties++
			if got[i].Freqs != nil {
				t.Fatalf("set %d: empty subset should have nil freqs", i)
			}
			continue
		}
		want, err := reconstruct.MLE(counts, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if d := math.Abs(got[i].Freqs[j] - want[j]); d > 1e-12 {
				t.Fatalf("set %d value %d: batch %v, scan MLE %v", i, j, got[i].Freqs[j], want[j])
			}
		}
	}
	if empties == 0 {
		t.Log("warning: no empty subsets drawn; empty-subset path untested here")
	}
}

func TestReconstructBatchWorkerIndependent(t *testing.T) {
	_, _, eng := engineFixture(t, 4, 300)
	sets := randomSets(stats.NewRand(5), 100)
	base := eng.ReconstructBatch(sets, reconstruct.BatchOptions{Workers: 1})
	for _, w := range []int{2, 7, runtime.GOMAXPROCS(0)} {
		got := eng.ReconstructBatch(sets, reconstruct.BatchOptions{Workers: w})
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("batch results differ between 1 and %d workers", w)
		}
	}
}

func TestReconstructBatchPerSetErrors(t *testing.T) {
	_, _, eng := engineFixture(t, 6, 100)
	sets := [][]reconstruct.Condition{
		{{Attr: 0, Value: 0}},
		{{Attr: 0, Value: 0}, {Attr: 1, Value: 0}, {Attr: 2, Value: 0}, {Attr: 0, Value: 1}}, // too deep + duplicate
		nil, // empty condition set: no 0-dim cube
		{{Attr: 0, Value: 99}},
	}
	got := eng.ReconstructBatch(sets, reconstruct.BatchOptions{})
	if got[0].Err != nil || got[0].Freqs == nil {
		t.Errorf("healthy set failed: %+v", got[0])
	}
	for _, i := range []int{1, 2, 3} {
		if got[i].Err == nil {
			t.Errorf("set %d should report an error", i)
		}
	}
}

func TestReconstructBatchClamp(t *testing.T) {
	tab, _, eng := engineFixture(t, 7, 60)
	sets := randomSets(stats.NewRand(8), 150)
	clamped := eng.ReconstructBatch(sets, reconstruct.BatchOptions{Clamp: true})
	raw := eng.ReconstructBatch(sets, reconstruct.BatchOptions{})
	sawNegative := false
	for i := range clamped {
		if clamped[i].Freqs == nil {
			continue
		}
		sum := 0.0
		for j, v := range clamped[i].Freqs {
			if v < 0 {
				t.Fatalf("set %d: clamped entry %d is negative: %v", i, j, v)
			}
			sum += v
			if raw[i].Freqs[j] < 0 {
				sawNegative = true
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("set %d: clamped freqs sum to %v", i, sum)
		}
		// Cross-check against the reference scan + MLEClamped.
		counts, _ := scanCounts(tab, sets[i])
		want, err := reconstruct.MLEClamped(counts, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if math.Abs(clamped[i].Freqs[j]-want[j]) > 1e-12 {
				t.Fatalf("set %d value %d: clamp paths disagree", i, j)
			}
		}
	}
	if !sawNegative {
		t.Error("fixture produced no negative raw MLE entries; clamp untested (shrink the table)")
	}
}

func TestEstimateCountBatchMatchesScan(t *testing.T) {
	tab, _, eng := engineFixture(t, 9, 400)
	rng := stats.NewRand(10)
	sets := randomSets(rng, 150)
	qs := make([]reconstruct.CountQuery, len(sets))
	for i := range qs {
		qs[i] = reconstruct.CountQuery{Conds: sets[i], SA: uint16(rng.Intn(3))}
	}
	got := eng.EstimateCountBatch(qs, reconstruct.BatchOptions{})
	for i, q := range qs {
		counts, size := scanCounts(tab, q.Conds)
		if got[i].Err != nil {
			t.Fatalf("query %d: %v", i, got[i].Err)
		}
		if got[i].Size != size || (size > 0 && got[i].Observed != counts[q.SA]) {
			t.Fatalf("query %d: size/observed mismatch", i)
		}
		want := 0.0
		if size > 0 {
			want = float64(size) * reconstruct.MLEValue(counts[q.SA], size, 0.5, 3)
		}
		if math.Abs(got[i].Estimate-want) > 1e-12 {
			t.Fatalf("query %d: estimate %v, scan %v", i, got[i].Estimate, want)
		}
	}
}

func TestEstimateCountBatchEmptySubset(t *testing.T) {
	// An empty subset is a valid adversary probe: the estimate is 0 with no
	// error, matching the public EstimateCount contract.
	schema := dataset.MustSchema([]dataset.Attribute{
		{Name: "A", Values: []string{"a0", "a1"}},
		{Name: "S", Values: []string{"s0", "s1"}},
	}, "S")
	tab := dataset.NewTable(schema, 4)
	for i := 0; i < 4; i++ {
		tab.MustAppendRow(0, uint16(i%2)) // A=a1 never occurs
	}
	marg, err := query.BuildMarginals(tab, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := reconstruct.NewEngine(marg, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	empty := []reconstruct.Condition{{Attr: 0, Value: 1}}
	est := eng.EstimateCountBatch([]reconstruct.CountQuery{{Conds: empty, SA: 0}}, reconstruct.BatchOptions{})
	if est[0].Err != nil || est[0].Estimate != 0 || est[0].Size != 0 {
		t.Errorf("empty subset estimate = %+v, want zero with no error", est[0])
	}
	rec := eng.ReconstructBatch([][]reconstruct.Condition{empty}, reconstruct.BatchOptions{})
	if rec[0].Err != nil || rec[0].Size != 0 || rec[0].Freqs != nil {
		t.Errorf("empty subset reconstruction = %+v, want zero with no error", rec[0])
	}
	// Out-of-domain SA is an error, not a zero.
	bad := eng.EstimateCountBatch([]reconstruct.CountQuery{{Conds: empty, SA: 9}}, reconstruct.BatchOptions{})
	if bad[0].Err == nil {
		t.Error("out-of-domain SA should error")
	}
}

func TestClampSimplex(t *testing.T) {
	f := []float64{0.8, -0.2, 0.4}
	reconstruct.ClampSimplex(f)
	if f[1] != 0 {
		t.Errorf("negative entry survived: %v", f)
	}
	if math.Abs(f[0]+f[2]-1) > 1e-12 || math.Abs(f[0]/f[2]-2) > 1e-12 {
		t.Errorf("renormalization wrong: %v", f)
	}
	// Degenerate all-nonpositive input falls back to uniform.
	g := []float64{-1, -2}
	reconstruct.ClampSimplex(g)
	if g[0] != 0.5 || g[1] != 0.5 {
		t.Errorf("degenerate clamp = %v, want uniform", g)
	}
}

func TestMLEClamped(t *testing.T) {
	counts := []int{9, 1} // small skewed subset: raw MLE goes negative at p=0.5
	raw, err := reconstruct.MLE(counts, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if raw[1] >= 0 {
		t.Fatalf("fixture should produce a negative raw entry, got %v", raw)
	}
	clamped, err := reconstruct.MLEClamped(counts, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if clamped[1] != 0 || math.Abs(clamped[0]-1) > 1e-12 {
		t.Errorf("clamped = %v, want [1 0]", clamped)
	}
	if _, err := reconstruct.MLEClamped(nil, 0.5); err == nil {
		t.Error("invalid input should propagate the MLE error")
	}
}
