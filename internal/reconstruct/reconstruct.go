package reconstruct

import (
	"fmt"
	"math"
)

// MLE returns the maximum likelihood estimate of the SA frequency vector in
// a subset S, given the observed counts in the perturbed S*, the retention
// probability p, and |S| = Σ counts. The result sums to 1 exactly (up to
// floating point), but individual entries may be negative for small subsets
// — the raw MLE is unbiased, not truncated.
func MLE(counts []int, p float64) ([]float64, error) {
	m := len(counts)
	if m < 2 {
		return nil, fmt.Errorf("reconstruct: SA domain must have at least 2 values, got %d", m)
	}
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		return nil, fmt.Errorf("reconstruct: retention probability must be in (0,1), got %v", p)
	}
	total := 0
	for _, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("reconstruct: negative observed count %d", c)
		}
		total += c
	}
	if total == 0 {
		return nil, fmt.Errorf("reconstruct: empty subset")
	}
	off := (1 - p) / float64(m)
	out := make([]float64, m)
	for i, c := range counts {
		out[i] = (float64(c)/float64(total) - off) / p
	}
	return out, nil
}

// ClampSimplex projects an MLE estimate onto the probability simplex in
// place: negative entries are floored at 0 and the remainder renormalized
// to sum to 1. Clamping trades the raw MLE's unbiasedness for feasibility —
// useful when an estimate feeds code that requires a genuine distribution
// (visualization, KL divergences, downstream samplers). If everything is
// clamped away (possible only for degenerate inputs), the result is the
// uniform distribution.
func ClampSimplex(f []float64) {
	total := 0.0
	for i, v := range f {
		if v < 0 || math.IsNaN(v) {
			f[i] = 0
			continue
		}
		total += v
	}
	if total <= 0 {
		for i := range f {
			f[i] = 1 / float64(len(f))
		}
		return
	}
	for i := range f {
		f[i] /= total
	}
}

// MLEClamped is MLE followed by ClampSimplex: the Lemma 2 estimate
// projected onto the simplex. The unbiased raw MLE stays the default
// estimator everywhere; callers opt into clamping explicitly.
func MLEClamped(counts []int, p float64) ([]float64, error) {
	out, err := MLE(counts, p)
	if err != nil {
		return nil, err
	}
	ClampSimplex(out)
	return out, nil
}

// MLEValue is the single-value form of Lemma 2(ii):
// F' = (O*/|S| − (1−p)/m) / p.
func MLEValue(observed, size int, p float64, m int) float64 {
	return (float64(observed)/float64(size) - (1-p)/float64(m)) / p
}

// ExpectedObserved is Lemma 2(i): E[O*] = |S|(fp + (1-p)/m).
func ExpectedObserved(size int, f, p float64, m int) float64 {
	return float64(size) * (f*p + (1-p)/float64(m))
}

// MatrixMLE computes the estimate as P⁻¹ · (O*/|S|) using the closed-form
// inverse of the uniform perturbation matrix,
// P⁻¹ = (1/p)I − ((1−p)/(pm))J. It must agree with MLE to floating-point
// accuracy; tests enforce this.
func MatrixMLE(counts []int, p float64) ([]float64, error) {
	m := len(counts)
	if m < 2 {
		return nil, fmt.Errorf("reconstruct: SA domain must have at least 2 values, got %d", m)
	}
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		return nil, fmt.Errorf("reconstruct: retention probability must be in (0,1), got %v", p)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return nil, fmt.Errorf("reconstruct: empty subset")
	}
	obs := make([]float64, m)
	for i, c := range counts {
		obs[i] = float64(c) / float64(total)
	}
	inv := InvertUniformMatrix(m, p)
	return MatVec(inv, obs), nil
}

// IterativeBayes runs the EM reconstruction: starting from the uniform
// distribution, repeatedly apply
//
//	f'ᵢ ← Σⱼ (O*ⱼ/|S|) · P[j][i]·fᵢ / (P·f)ⱼ
//
// until the L1 change drops below tol or maxIter is reached. The fixed point
// is the constrained MLE projected onto the probability simplex.
func IterativeBayes(counts []int, p float64, maxIter int, tol float64) ([]float64, error) {
	m := len(counts)
	if m < 2 {
		return nil, fmt.Errorf("reconstruct: SA domain must have at least 2 values, got %d", m)
	}
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		return nil, fmt.Errorf("reconstruct: retention probability must be in (0,1), got %v", p)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return nil, fmt.Errorf("reconstruct: empty subset")
	}
	obs := make([]float64, m)
	for i, c := range counts {
		obs[i] = float64(c) / float64(total)
	}
	off := (1 - p) / float64(m)
	f := make([]float64, m)
	for i := range f {
		f[i] = 1 / float64(m)
	}
	next := make([]float64, m)
	for iter := 0; iter < maxIter; iter++ {
		// (P·f)ⱼ = p·fⱼ + (1-p)/m for the uniform matrix.
		var delta float64
		for i := 0; i < m; i++ {
			var sum float64
			for j := 0; j < m; j++ {
				pji := off
				if i == j {
					pji += p
				}
				pf := p*f[j] + off
				if pf > 0 {
					sum += obs[j] * pji * f[i] / pf
				}
			}
			next[i] = sum
		}
		// Normalize to absorb floating-point drift.
		var tot float64
		for _, v := range next {
			tot += v
		}
		for i := range next {
			if tot > 0 {
				next[i] /= tot
			}
			delta += math.Abs(next[i] - f[i])
		}
		copy(f, next)
		if delta < tol {
			break
		}
	}
	return f, nil
}
