package reconstruct

import (
	"fmt"
	"math"

	"github.com/reconpriv/reconpriv/internal/par"
)

// Condition is one equality condition on a public attribute, in engine
// codes. It is the condition currency of the whole adversary stack:
// internal/query aliases it as query.Cond, so condition sets move between
// the marginal index and this package without conversion.
type Condition struct {
	Attr  int // schema attribute index
	Value uint16
}

// Counter is the indexed subset-count source an Engine reconstructs from.
// query.Marginals implements it: every call is an O(1) cube lookup instead
// of a table scan. The implementation must be safe for concurrent readers —
// the batch methods fan condition sets out across workers.
type Counter interface {
	// SADomain returns m, the sensitive-attribute domain size.
	SADomain() int
	// SubsetCountsInto fills dst (length SADomain) with the SA histogram of
	// the record subset matching conds and returns the subset size. An
	// unanswerable condition set (empty, out of domain, deeper than the
	// index) returns an error.
	SubsetCountsInto(conds []Condition, dst []int) (int, error)
}

// Engine answers batched adversary workloads — full-distribution
// reconstructions and count estimates over arbitrary condition sets —
// against published data through a Counter. It holds no mutable state, so
// one Engine is safe for any number of concurrent batches; a served
// publication builds one next to its marginal index.
//
// The estimators are exactly Lemma 2 (MLE / MLEValue) evaluated on indexed
// subset counts instead of per-call row scans; the scan path in the public
// Reconstruct API is kept as the cross-checked reference implementation.
type Engine struct {
	src Counter
	p   float64
	m   int
}

// NewEngine wraps an indexed count source for published data with retention
// probability p.
func NewEngine(src Counter, p float64) (*Engine, error) {
	if src == nil {
		return nil, fmt.Errorf("reconstruct: engine needs a count source")
	}
	m := src.SADomain()
	if m < 2 {
		return nil, fmt.Errorf("reconstruct: SA domain must have at least 2 values, got %d", m)
	}
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		return nil, fmt.Errorf("reconstruct: retention probability must be in (0,1), got %v", p)
	}
	return &Engine{src: src, p: p, m: m}, nil
}

// SADomain returns m, the sensitive-attribute domain size of the engine's
// source.
func (e *Engine) SADomain() int { return e.m }

// P returns the retention probability the engine inverts.
func (e *Engine) P() float64 { return e.p }

// BatchOptions tune one batch evaluation.
type BatchOptions struct {
	// Workers bounds the evaluation pool (0 = GOMAXPROCS). Results are
	// positionally assigned, so they are identical at any worker count.
	Workers int
	// Clamp projects each reconstruction onto the probability simplex:
	// negative MLE entries are floored at 0 and the rest renormalized. The
	// raw MLE stays the default — it is unbiased, clamping is not.
	Clamp bool
}

// Reconstruction is one condition set's result within a ReconstructBatch.
type Reconstruction struct {
	// Freqs is the estimated SA frequency vector of the subset (length
	// SADomain); nil when the subset is empty or the conditions failed.
	Freqs []float64
	// Size is the observed subset size |S*|.
	Size int
	// Err reports a per-set failure (out-of-domain value, too many
	// conditions); other sets in the batch are unaffected. An empty subset
	// is not an error: Size is 0 and Freqs nil.
	Err error
}

// ReconstructBatch runs the Lemma 2 MLE over every condition set and
// returns per-set results in input order. This is the batched form of the
// public Reconstruct API: one indexed histogram lookup per set instead of
// one full table scan, which is what makes thousand-condition adversary
// workloads (the linear-reconstruction regime) practical.
func (e *Engine) ReconstructBatch(sets [][]Condition, opt BatchOptions) []Reconstruction {
	out := make([]Reconstruction, len(sets))
	par.Striped(len(sets), opt.Workers, func(_, lo, hi int) {
		counts := make([]int, e.m)
		for i := lo; i < hi; i++ {
			out[i] = e.reconstructOne(sets[i], counts, opt.Clamp)
		}
	})
	return out
}

// reconstructOne evaluates one condition set into a Reconstruction, reusing
// the caller's scratch histogram.
func (e *Engine) reconstructOne(conds []Condition, counts []int, clamp bool) Reconstruction {
	size, err := e.src.SubsetCountsInto(conds, counts)
	if err != nil {
		return Reconstruction{Err: err}
	}
	if size == 0 {
		return Reconstruction{}
	}
	// Lemma 2: F'ᵢ = (O*ᵢ/|S*| − (1−p)/m) / p — inlined from MLE so the
	// batch reuses the scratch histogram without re-validating p and m per
	// set. Equality with MLE on the same counts is pinned by tests.
	off := (1 - e.p) / float64(e.m)
	freqs := make([]float64, e.m)
	for i, c := range counts {
		freqs[i] = (float64(c)/float64(size) - off) / e.p
	}
	if clamp {
		ClampSimplex(freqs)
	}
	return Reconstruction{Freqs: freqs, Size: size}
}

// CountQuery is one count-estimate request: conjunctive public-attribute
// conditions plus one sensitive value (Eq. 11 in engine codes).
type CountQuery struct {
	Conds []Condition
	SA    uint16
}

// CountEstimate is one CountQuery's result within an EstimateCountBatch.
type CountEstimate struct {
	// Estimate is est = |S*|·F' (Section 6.1); 0 for an empty subset.
	Estimate float64
	// Size is the observed subset size |S*|.
	Size int
	// Observed is the raw perturbed count O* of the requested value.
	Observed int
	// Err reports a per-query failure; an empty subset is not an error.
	Err error
}

// EstimateCountBatch evaluates the Section 6.1 count estimator for every
// query, in input order — the batched form of the public EstimateCount.
func (e *Engine) EstimateCountBatch(qs []CountQuery, opt BatchOptions) []CountEstimate {
	out := make([]CountEstimate, len(qs))
	par.Striped(len(qs), opt.Workers, func(_, lo, hi int) {
		counts := make([]int, e.m)
		for i := lo; i < hi; i++ {
			out[i] = e.estimateOne(qs[i], counts)
		}
	})
	return out
}

// estimateOne evaluates one count query, reusing the caller's scratch
// histogram.
func (e *Engine) estimateOne(q CountQuery, counts []int) CountEstimate {
	if int(q.SA) >= e.m {
		return CountEstimate{Err: fmt.Errorf("reconstruct: SA value %d out of domain", q.SA)}
	}
	size, err := e.src.SubsetCountsInto(q.Conds, counts)
	if err != nil {
		return CountEstimate{Err: err}
	}
	if size == 0 {
		return CountEstimate{}
	}
	obs := counts[q.SA]
	return CountEstimate{
		Estimate: float64(size) * MLEValue(obs, size, e.p, e.m),
		Size:     size,
		Observed: obs,
	}
}
