package reconstruct

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/reconpriv/reconpriv/internal/perturb"
	"github.com/reconpriv/reconpriv/internal/stats"
)

func TestMLESumsToOne(t *testing.T) {
	// Property: the MLE sums to exactly 1 for any observed histogram
	// (Theorem 1's constraint falls out of the closed form).
	prop := func(raw []uint8, pRaw uint8) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 50 {
			raw = raw[:50]
		}
		counts := make([]int, len(raw))
		total := 0
		for i, c := range raw {
			counts[i] = int(c)
			total += int(c)
		}
		if total == 0 {
			counts[0] = 1
		}
		p := 0.01 + 0.98*float64(pRaw)/255
		est, err := MLE(counts, p)
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range est {
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMLEMatchesMatrixMLE(t *testing.T) {
	// Property: the closed form and P⁻¹·(O*/|S|) are the same estimator.
	prop := func(raw []uint8, pRaw uint8) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 30 {
			raw = raw[:30]
		}
		counts := make([]int, len(raw))
		total := 0
		for i, c := range raw {
			counts[i] = int(c)
			total += int(c)
		}
		if total == 0 {
			counts[0] = 1
		}
		p := 0.05 + 0.9*float64(pRaw)/255
		a, err1 := MLE(counts, p)
		b, err2 := MatrixMLE(counts, p)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMLEInvertsExactExpectation(t *testing.T) {
	// Feed the MLE the exact expected counts; it must recover f exactly.
	const m = 4
	const p = 0.3
	f := []float64{0.5, 0.25, 0.15, 0.10}
	const size = 100000
	counts := make([]int, m)
	for i := range counts {
		counts[i] = int(math.Round(float64(size) * (f[i]*p + (1-p)/m)))
	}
	est, err := MLE(counts, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f {
		if math.Abs(est[i]-f[i]) > 1e-4 {
			t.Errorf("est[%d] = %v, want %v", i, est[i], f[i])
		}
	}
}

func TestMLEUnbiased(t *testing.T) {
	// Lemma 2(iii): averaging the MLE over many perturbations approaches f.
	const m = 5
	const p = 0.4
	const size = 1000
	f := []float64{0.4, 0.3, 0.15, 0.1, 0.05}
	rng := stats.NewRand(1)
	sums := make([]float64, m)
	const runs = 3000
	for run := 0; run < runs; run++ {
		counts := make([]int, m)
		for v := 0; v < m; v++ {
			c := int(f[v] * size)
			for k := 0; k < c; k++ {
				counts[perturb.Value(rng, uint16(v), m, p)]++
			}
		}
		est, err := MLE(counts, p)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range est {
			sums[i] += v
		}
	}
	for i := range f {
		mean := sums[i] / runs
		if math.Abs(mean-f[i]) > 0.01 {
			t.Errorf("mean est[%d] = %v, want ~%v (unbiasedness)", i, mean, f[i])
		}
	}
}

func TestMLEErrors(t *testing.T) {
	if _, err := MLE([]int{5}, 0.5); err == nil {
		t.Error("m<2 should error")
	}
	if _, err := MLE([]int{1, 2}, 0); err == nil {
		t.Error("p=0 should error")
	}
	if _, err := MLE([]int{1, 2}, 1); err == nil {
		t.Error("p=1 should error")
	}
	if _, err := MLE([]int{0, 0}, 0.5); err == nil {
		t.Error("empty subset should error")
	}
	if _, err := MLE([]int{-1, 2}, 0.5); err == nil {
		t.Error("negative count should error")
	}
}

func TestMLEValueMatchesVector(t *testing.T) {
	counts := []int{30, 50, 20}
	p := 0.6
	est, err := MLE(counts, p)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		single := MLEValue(c, 100, p, 3)
		if math.Abs(single-est[i]) > 1e-12 {
			t.Errorf("MLEValue[%d] = %v, vector = %v", i, single, est[i])
		}
	}
}

func TestExpectedObserved(t *testing.T) {
	// Lemma 2(i): E[O*] = |S|(fp + (1-p)/m).
	got := ExpectedObserved(1000, 0.3, 0.5, 10)
	want := 1000 * (0.3*0.5 + 0.5/10)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("ExpectedObserved = %v, want %v", got, want)
	}
}

func TestIterativeBayesOnSimplex(t *testing.T) {
	// Property: EM output is a probability vector (non-negative, sums to 1).
	prop := func(raw []uint8, pRaw uint8) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 20 {
			raw = raw[:20]
		}
		counts := make([]int, len(raw))
		total := 0
		for i, c := range raw {
			counts[i] = int(c)
			total += int(c)
		}
		if total == 0 {
			counts[0] = 1
		}
		p := 0.05 + 0.9*float64(pRaw)/255
		est, err := IterativeBayes(counts, p, 200, 1e-8)
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range est {
			if v < -1e-12 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestIterativeBayesAgreesWithMLEOnLargeSamples(t *testing.T) {
	// On large samples the constrained MLE is interior, so EM converges to
	// the same point as the closed form.
	const m = 6
	const p = 0.5
	const size = 200000
	f := []float64{0.3, 0.25, 0.2, 0.1, 0.1, 0.05}
	counts := make([]int, m)
	for i := range counts {
		counts[i] = int(float64(size) * (f[i]*p + (1-p)/m))
	}
	mle, err := MLE(counts, p)
	if err != nil {
		t.Fatal(err)
	}
	em, err := IterativeBayes(counts, p, 2000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mle {
		if math.Abs(mle[i]-em[i]) > 1e-3 {
			t.Errorf("EM[%d] = %v, MLE = %v", i, em[i], mle[i])
		}
	}
}

func TestInvertUniformMatrixIsInverse(t *testing.T) {
	// Property: P · P⁻¹ = I for the closed form.
	prop := func(mRaw, pRaw uint8) bool {
		m := 2 + int(mRaw%30)
		p := 0.05 + 0.9*float64(pRaw)/255
		P := perturb.Matrix(m, p)
		inv := InvertUniformMatrix(m, p)
		prod := MatMul(P, inv)
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(prod[i][j]-want) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestInvertMatchesClosedForm(t *testing.T) {
	const m = 8
	const p = 0.35
	P := perturb.Matrix(m, p)
	inv1, err := Invert(P)
	if err != nil {
		t.Fatal(err)
	}
	inv2 := InvertUniformMatrix(m, p)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if math.Abs(inv1[i][j]-inv2[i][j]) > 1e-9 {
				t.Fatalf("Gauss-Jordan[%d][%d] = %v, closed form %v", i, j, inv1[i][j], inv2[i][j])
			}
		}
	}
}

func TestInvertErrors(t *testing.T) {
	if _, err := Invert(nil); err == nil {
		t.Error("empty matrix should error")
	}
	if _, err := Invert([][]float64{{1, 2}}); err == nil {
		t.Error("non-square matrix should error")
	}
	singular := [][]float64{{1, 2}, {2, 4}}
	if _, err := Invert(singular); err == nil {
		t.Error("singular matrix should error")
	}
}

func TestMatVec(t *testing.T) {
	a := [][]float64{{1, 2}, {3, 4}}
	got := MatVec(a, []float64{5, 6})
	if got[0] != 17 || got[1] != 39 {
		t.Errorf("MatVec = %v, want [17 39]", got)
	}
}
