package fleet

import (
	"bytes"
	"context"
	"io"
	"net/http"

	"github.com/reconpriv/reconpriv/internal/serve"
)

// transport is how the router exchanges one HTTP request with one replica
// server, wherever that server runs. The in-process implementation serves
// straight into memory; the HTTP implementation crosses real sockets to a
// child process or an attached peer. Both present identical semantics —
// transport-level failures (down, refused, timed out) come back as errors,
// HTTP-level failures come back as responses — so the router's failover,
// health, and replay machinery is provably transport-agnostic: the same
// test table runs against both.
type transport interface {
	// do executes one request. The context deadline bounds the exchange;
	// on expiry the attempt is abandoned and an error returned.
	do(ctx context.Context, method, path string, header http.Header, body []byte) (*response, error)
	// close releases transport resources (idle connections; a no-op for
	// the in-process transport).
	close()
}

// response is one HTTP exchange's result, as the router stores, patches,
// replays, and re-emits it.
type response struct {
	status int
	header http.Header
	body   []byte
}

// memWriter is the in-process http.ResponseWriter replicas serve into: no
// sockets, just bytes. It is written by exactly one handler goroutine and
// read only after that goroutine signals completion. Its commit semantics
// mirror net/http exactly — an implicit 200 when the handler returns
// without writing, and a header snapshot taken when the status is
// committed, so header mutations after WriteHeader are not observed —
// because the HTTP transport inherits those semantics from a real server
// and the two transports must be indistinguishable to the router.
type memWriter struct {
	hdr       http.Header
	status    int
	committed http.Header
	buf       bytes.Buffer
}

func (m *memWriter) Header() http.Header {
	if m.hdr == nil {
		m.hdr = make(http.Header)
	}
	return m.hdr
}

func (m *memWriter) Write(p []byte) (int, error) {
	if m.status == 0 {
		m.WriteHeader(http.StatusOK)
	}
	return m.buf.Write(p)
}

func (m *memWriter) WriteHeader(code int) {
	if m.status != 0 {
		return
	}
	m.status = code
	m.committed = m.hdr.Clone()
}

// response finalizes the exchange the way a real server would: a handler
// that returned without writing anything gets an implicit 200 OK.
func (m *memWriter) response() *response {
	if m.status == 0 {
		m.WriteHeader(http.StatusOK)
	}
	return &response{status: m.status, header: m.committed, body: m.buf.Bytes()}
}

// memTransport serves requests into an in-process serve.Server — the
// simulation-scale replica. It also exposes the server for harnesses that
// need direct schema access; cross-process transports cannot, which is why
// every router code path speaks HTTP through the transport instead.
type memTransport struct {
	srv *serve.Server
	h   http.Handler
}

func newMemTransport(cfg serve.Config) *memTransport {
	srv := serve.New(cfg)
	return &memTransport{srv: srv, h: srv.Handler()}
}

// do runs the handler in a goroutine so the context deadline is honored
// even mid-handler. On deadline the goroutine is abandoned — it keeps
// running against the replica (charging its local ledger, exactly the
// hazard the router's authoritative ledger exists for) but its response is
// discarded, just as a real server keeps serving a request whose client
// hung up.
func (t *memTransport) do(ctx context.Context, method, path string, header http.Header, body []byte) (*response, error) {
	req, err := http.NewRequestWithContext(ctx, method, "http://replica"+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	for k, vs := range header {
		req.Header[k] = vs
	}
	req.RemoteAddr = "fleet:0"

	w := &memWriter{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		t.h.ServeHTTP(w, req)
	}()
	select {
	case <-done:
		return w.response(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (t *memTransport) close() {}

// httpTransport reaches one replica over real sockets: a spawned child
// process or an attached peer. The pooled client is shared across the
// fleet's replicas and carries no client-level timeout — every exchange is
// bounded by its context, so the router's per-attempt deadline is the only
// clock, same as in-process.
type httpTransport struct {
	base string // "http://127.0.0.1:port"
	hc   *http.Client
}

func newHTTPTransport(base string, hc *http.Client) *httpTransport {
	return &httpTransport{base: base, hc: hc}
}

func (t *httpTransport) do(ctx context.Context, method, path string, header http.Header, body []byte) (*response, error) {
	var rd io.Reader
	if len(body) > 0 {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, t.base+path, rd)
	if err != nil {
		return nil, err
	}
	for k, vs := range header {
		req.Header[k] = vs
	}
	resp, err := t.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return nil, err
	}
	hdr := resp.Header.Clone()
	// Strip wire- and server-owned headers so both transports hand the
	// router the same view: the router re-frames the body it emits (which
	// may be ledger-patched to a different length), and the in-process
	// transport never sees these.
	for _, k := range []string{"Content-Length", "Transfer-Encoding", "Connection", "Keep-Alive", "Date"} {
		hdr.Del(k)
	}
	return &response{status: resp.StatusCode, header: hdr, body: b}, nil
}

func (t *httpTransport) close() { t.hc.CloseIdleConnections() }

// newFleetClient builds the fleet's shared connection-pooled HTTP client.
// No Timeout is set deliberately: per-attempt contexts supply every
// deadline, and a client-level timeout would double-bound long control
// operations (publish, restore) that run under the build deadline.
func newFleetClient(replicas int) *http.Client {
	return &http.Client{Transport: &http.Transport{
		MaxIdleConnsPerHost: 16,
		MaxIdleConns:        16 * max(replicas, 1),
	}}
}
