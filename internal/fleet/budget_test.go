package fleet

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/reconpriv/reconpriv/internal/serve"
)

// fakeClock is a mutex-guarded test clock shared by the router's budget
// manager and every replica.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	// An epoch aligned to every slot width used below, so window positions
	// are deterministic.
	return &fakeClock{now: time.Unix(1_000_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// TestFleetBudgetRejection pins the router-authoritative budget: the
// precheck 429 is typed, never charges, and never reaches a replica, while
// replicas themselves run with enforcement disabled so the router's
// admission decision is the only one.
func TestFleetBudgetRejection(t *testing.T) {
	f := New(Config{Replicas: 2, ReplicationFactor: 2,
		Serve: serve.Config{BudgetQuota: 10}})
	id, err := f.Publish(testPublish(1))
	if err != nil {
		t.Fatal(err)
	}
	h := f.Handler()

	var first serve.QueryResponse
	if code, _ := doJSON(t, h, http.MethodPost, "/query", nil, queryBody(id, "c1", 10), &first); code != http.StatusOK {
		t.Fatalf("fill batch returned %d", code)
	}
	if first.ClientQueries != 10 || first.BudgetRemaining != 0 || !first.BudgetExact {
		t.Fatalf("fill ledger: %+v", first)
	}

	var eb serve.ErrorBody
	code, hdr := doJSON(t, h, http.MethodPost, "/query", nil, queryBody(id, "c1", 1), &eb)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota query returned %d", code)
	}
	if eb.Code != serve.CodeBudgetExhausted {
		t.Fatalf("code = %q, want %q", eb.Code, serve.CodeBudgetExhausted)
	}
	if secs, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q, want a positive integer", hdr.Get("Retry-After"))
	}
	if got := f.ClientExposure("c1"); got != 10 {
		t.Fatalf("rejected request charged the ledger: %d, want 10", got)
	}
	if f.Stats().BudgetRejected != 1 {
		t.Fatalf("budget_rejected = %d, want 1", f.Stats().BudgetRejected)
	}

	// Replicas must not enforce on their own: each holder saw at most the
	// fill batch, far under the fleet quota, and their managers are off.
	for _, hi := range f.Holders(id) {
		if f.replicas[hi].server().Budget().Enforced() {
			t.Fatalf("replica %d enforces its own budget", hi)
		}
	}

	// Fleet /statsz mirrors the single-server budget block.
	st := f.Stats()
	if st.TotalCharged != 10 || !st.Budget.Enforced || st.Budget.RejectedClientQuota != 1 {
		t.Fatalf("fleet statsz budget block: total %d %+v", st.TotalCharged, st.Budget)
	}
}

// TestFleetRetryAfterHeaders is the rejection-header table: both 429 flavors
// (budget precheck, overload shed) and the 503 carry Retry-After, with the
// computed values where the configuration makes them deterministic.
func TestFleetRetryAfterHeaders(t *testing.T) {
	t.Run("budget 429 derives from the window", func(t *testing.T) {
		clock := newFakeClock()
		f := New(Config{Replicas: 1, ReplicationFactor: 1,
			Serve: serve.Config{BudgetQuota: 5, BudgetWindow: 400 * time.Second, Clock: clock.Now}})
		id, err := f.Publish(testPublish(1))
		if err != nil {
			t.Fatal(err)
		}
		h := f.Handler()
		if code, _ := doJSON(t, h, http.MethodPost, "/query", nil, queryBody(id, "c1", 5), nil); code != http.StatusOK {
			t.Fatal("fill failed")
		}
		var eb serve.ErrorBody
		code, hdr := doJSON(t, h, http.MethodPost, "/query", nil, queryBody(id, "c1", 1), &eb)
		if code != http.StatusTooManyRequests || eb.Code != serve.CodeBudgetExhausted {
			t.Fatalf("got %d %q", code, eb.Code)
		}
		// The whole quota sits in the current (newest) slot of a 4-slot,
		// 400s window that the fixed clock entered exactly at a slot edge:
		// the charge decays out only when the full window passes.
		if got := hdr.Get("Retry-After"); got != "400" {
			t.Fatalf("Retry-After = %q, want 400 (full window)", got)
		}
	})

	t.Run("overload 429 derives from the backoff schedule", func(t *testing.T) {
		f := New(Config{Replicas: 2, ReplicationFactor: 2, MaxInFlight: 1,
			MaxAttempts: 5, BackoffMax: 2 * time.Second, Timeout: 10 * time.Second})
		id, err := f.Publish(testPublish(1))
		if err != nil {
			t.Fatal(err)
		}
		h := f.Handler()
		for _, hi := range f.Holders(id) {
			f.InjectLatency(hi, 2*time.Second, 1)
		}
		done := make(chan int, 2)
		for i := 0; i < 2; i++ {
			go func(i int) {
				code, _ := doJSON(t, h, http.MethodPost, "/query", nil,
					queryBody(id, fmt.Sprintf("slow%d", i), 1), nil)
				done <- code
			}(i)
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			busy := 0
			for _, hi := range f.Holders(id) {
				if f.replicas[hi].inflight.Load() > 0 {
					busy++
				}
			}
			if busy == 2 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("slow requests never occupied both holders")
			}
			time.Sleep(5 * time.Millisecond)
		}
		var eb serve.ErrorBody
		code, hdr := doJSON(t, h, http.MethodPost, "/query", nil, queryBody(id, "c5", 1), &eb)
		if code != http.StatusTooManyRequests || eb.Code != serve.CodeOverloaded {
			t.Fatalf("got %d %q", code, eb.Code)
		}
		// MaxAttempts × BackoffMax = 10s: the backoff budget a queued retry
		// would have burned.
		if got := hdr.Get("Retry-After"); got != "10" {
			t.Fatalf("Retry-After = %q, want 10", got)
		}
		for i := 0; i < 2; i++ {
			if code := <-done; code != http.StatusOK {
				t.Fatalf("parked request returned %d", code)
			}
		}
	})

	t.Run("503 unavailable keeps the generic hint", func(t *testing.T) {
		f := New(Config{Replicas: 2, ReplicationFactor: 2,
			MaxAttempts: 2, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
			Timeout: 100 * time.Millisecond})
		id, err := f.Publish(testPublish(1))
		if err != nil {
			t.Fatal(err)
		}
		for _, hi := range f.Holders(id) {
			f.KillReplica(hi)
		}
		var eb serve.ErrorBody
		code, hdr := doJSON(t, f.Handler(), http.MethodPost, "/query", nil, queryBody(id, "c1", 1), &eb)
		if code != http.StatusServiceUnavailable || eb.Code != serve.CodeUnavailable {
			t.Fatalf("got %d %q", code, eb.Code)
		}
		if got := hdr.Get("Retry-After"); got != "1" {
			t.Fatalf("Retry-After = %q, want 1", got)
		}
	})
}

// TestIdempotentReplayAfterBudget429 pins the interaction of the replay
// cache with budget rejections: a 429 is never cached, so the same
// idempotency key succeeds once the window turns — and the earlier cached
// success still replays without recharging.
func TestIdempotentReplayAfterBudget429(t *testing.T) {
	clock := newFakeClock()
	f := New(Config{Replicas: 2, ReplicationFactor: 2,
		Serve: serve.Config{BudgetQuota: 10, BudgetWindow: 400 * time.Second, Clock: clock.Now}})
	id, err := f.Publish(testPublish(1))
	if err != nil {
		t.Fatal(err)
	}
	h := f.Handler()

	keyA := map[string]string{"X-Idempotency-Key": "fill"}
	keyB := map[string]string{"X-Idempotency-Key": "blocked"}
	var fill serve.QueryResponse
	if code, _ := doJSON(t, h, http.MethodPost, "/query", keyA, queryBody(id, "c1", 10), &fill); code != http.StatusOK {
		t.Fatalf("fill returned %d", code)
	}

	// keyB hits the quota: 429, uncached, uncharged.
	if code, _ := doJSON(t, h, http.MethodPost, "/query", keyB, queryBody(id, "c1", 2), nil); code != http.StatusTooManyRequests {
		t.Fatalf("blocked request returned %d", code)
	}
	if got := f.ClientExposure("c1"); got != 10 {
		t.Fatalf("429 charged the ledger: %d", got)
	}
	// A resend of keyB is re-evaluated, not replayed from the cache: the
	// precheck counter moves again.
	if code, _ := doJSON(t, h, http.MethodPost, "/query", keyB, queryBody(id, "c1", 2), nil); code != http.StatusTooManyRequests {
		t.Fatalf("blocked resend returned %d", code)
	}
	if got := f.Stats().BudgetRejected; got != 2 {
		t.Fatalf("budget_rejected = %d, want 2 (429s must not be idempotency-cached)", got)
	}

	// The cached success still replays verbatim and does not recharge.
	var replay serve.QueryResponse
	if code, _ := doJSON(t, h, http.MethodPost, "/query", keyA, queryBody(id, "c1", 10), &replay); code != http.StatusOK {
		t.Fatalf("replay returned %d", code)
	}
	if replay.ClientQueries != fill.ClientQueries || f.ClientExposure("c1") != 10 {
		t.Fatalf("replay recharged: %d vs %d, ledger %d", replay.ClientQueries, fill.ClientQueries, f.ClientExposure("c1"))
	}

	// Once the window turns, the same logical request is admitted.
	clock.Advance(401 * time.Second)
	var retried serve.QueryResponse
	if code, _ := doJSON(t, h, http.MethodPost, "/query", keyB, queryBody(id, "c1", 2), &retried); code != http.StatusOK {
		t.Fatalf("post-window retry returned %d", code)
	}
	if retried.ClientQueries != 12 {
		t.Fatalf("cumulative after retry = %d, want 12 (totals never decay)", retried.ClientQueries)
	}
}
