package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/reconpriv/reconpriv/internal/datagen"
	"github.com/reconpriv/reconpriv/internal/serve"
	"github.com/reconpriv/reconpriv/internal/wire"
)

// testPublish is the small, fast publication the failover tests place.
func testPublish(seed int64) serve.PublishRequest {
	return serve.PublishRequest{Dataset: serve.DatasetMedical, Size: 500, Seed: seed}
}

// doJSON drives the router handler in-process and decodes the response.
func doJSON(t *testing.T, h http.Handler, method, path string, headers map[string]string, body, out any) (int, http.Header) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if out != nil {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("decoding %s %s response %q: %v", method, path, w.Body.String(), err)
		}
	}
	return w.Code, w.Result().Header
}

// queryBody builds a /query body of n identical single-condition queries.
func queryBody(id, client string, n int) map[string]any {
	qs := make([]serve.QueryJSON, n)
	for i := range qs {
		qs[i] = serve.QueryJSON{SA: "Flu"}
	}
	return map[string]any{"id": id, "client": client, "queries": qs, "wait": true}
}

func TestPlacement(t *testing.T) {
	// Deterministic, clamped, and within range.
	for _, tc := range []struct{ n, rf, want int }{
		{3, 2, 2}, {3, 5, 3}, {1, 1, 1}, {5, 0, 1},
	} {
		got := placement("pub-x", tc.n, tc.rf)
		if len(got) != tc.want {
			t.Fatalf("placement(n=%d, rf=%d) returned %d holders, want %d", tc.n, tc.rf, len(got), tc.want)
		}
		seen := map[int]bool{}
		for _, h := range got {
			if h < 0 || h >= tc.n || seen[h] {
				t.Fatalf("placement(n=%d, rf=%d) = %v: out of range or duplicate", tc.n, tc.rf, got)
			}
			seen[h] = true
		}
		again := placement("pub-x", tc.n, tc.rf)
		for i := range got {
			if got[i] != again[i] {
				t.Fatalf("placement not deterministic: %v vs %v", got, again)
			}
		}
	}
	// Different ids spread across replicas: with 64 keys on 8 replicas,
	// every replica should hold something.
	counts := make([]int, 8)
	for k := 0; k < 64; k++ {
		for _, h := range placement(fmt.Sprintf("pub-%d", k), 8, 2) {
			counts[h]++
		}
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("replica %d holds no publications across 64 keys: %v", i, counts)
		}
	}
}

func TestRoutedQueryMatchesSingleServer(t *testing.T) {
	f := New(Config{Replicas: 3, ReplicationFactor: 2})
	id, err := f.Publish(testPublish(1))
	if err != nil {
		t.Fatal(err)
	}
	h := f.Handler()

	var fleetResp serve.QueryResponse
	code, _ := doJSON(t, h, http.MethodPost, "/query", nil, queryBody(id, "c1", 4), &fleetResp)
	if code != http.StatusOK {
		t.Fatalf("routed query returned %d", code)
	}
	if fleetResp.Charged != 4 || fleetResp.ClientQueries != 4 {
		t.Fatalf("charged %d / cumulative %d, want 4 / 4", fleetResp.Charged, fleetResp.ClientQueries)
	}

	// The same batch against a standalone server must answer identically —
	// deterministic builds make replicas interchangeable.
	solo := serve.New(serve.Config{})
	if _, _, err := solo.Publish(testPublish(1), true); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(solo.Handler())
	defer ts.Close()
	buf, _ := json.Marshal(queryBody(id, "c1", 4))
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var soloResp serve.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&soloResp); err != nil {
		t.Fatal(err)
	}
	if len(soloResp.Answers) != len(fleetResp.Answers) {
		t.Fatalf("answer counts differ: solo %d, fleet %d", len(soloResp.Answers), len(fleetResp.Answers))
	}
	for i := range soloResp.Answers {
		if soloResp.Answers[i] != fleetResp.Answers[i] {
			t.Fatalf("answer %d differs: solo %+v, fleet %+v", i, soloResp.Answers[i], fleetResp.Answers[i])
		}
	}
}

// mkFleet builds a fleet for a failover case on one transport.
type mkFleet func(t *testing.T, cfg Config) *Fleet

// fleetTransports is the transport matrix the failover table runs over:
// identical semantics on both sides is the transport contract.
var fleetTransports = []struct {
	name string
	mk   mkFleet
}{
	{"in-process", func(t *testing.T, cfg Config) *Fleet {
		f := New(cfg)
		t.Cleanup(f.Close)
		return f
	}},
	{"cross-process", func(t *testing.T, cfg Config) *Fleet {
		f, err := NewProcs(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(f.Close)
		return f
	}},
}

// TestFailoverScenarios is the failover edge-case table: each case breaks
// the fleet a different way and states what the router must still deliver.
// The whole table runs once per transport — in-process replicas and real
// spawned child processes must be indistinguishable to the router.
func TestFailoverScenarios(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, mk mkFleet)
	}{
		{"replica death mid-batch", func(t *testing.T, mk mkFleet) {
			f := mk(t, Config{Replicas: 3, ReplicationFactor: 2, Timeout: 2 * time.Second})
			id, err := f.Publish(testPublish(1))
			if err != nil {
				t.Fatal(err)
			}
			h := f.Handler()
			// Both holders fail the next request at the transport level —
			// a crash mid-request; the router must retry to success and
			// charge once.
			for _, hi := range f.Holders(id) {
				f.InjectFailures(hi, 1)
			}
			var resp serve.QueryResponse
			code, _ := doJSON(t, h, http.MethodPost, "/query", nil, queryBody(id, "c1", 5), &resp)
			if code != http.StatusOK {
				t.Fatalf("query with injected crashes returned %d", code)
			}
			if got := f.ClientExposure("c1"); got != 5 {
				t.Fatalf("exposure after crash-retry = %d, want exactly 5", got)
			}
			if st := f.Stats(); st.Retries == 0 {
				t.Fatal("no retries recorded despite injected failures")
			}
		}},
		{"exactly-once charging under injected timeouts", func(t *testing.T, mk mkFleet) {
			f := mk(t, Config{Replicas: 3, ReplicationFactor: 2, Timeout: 60 * time.Millisecond})
			id, err := f.Publish(testPublish(1))
			if err != nil {
				t.Fatal(err)
			}
			h := f.Handler()
			// Every holder stalls past the per-attempt deadline once: the
			// first attempts time out, the abandoned handlers may still
			// charge their replica-local ledgers, and the router must
			// charge its own exactly once.
			for _, hi := range f.Holders(id) {
				f.InjectLatency(hi, 300*time.Millisecond, 1)
			}
			var resp serve.QueryResponse
			code, _ := doJSON(t, h, http.MethodPost, "/query", nil, queryBody(id, "c2", 7), &resp)
			if code != http.StatusOK {
				t.Fatalf("query with injected timeouts returned %d", code)
			}
			if resp.ClientQueries != 7 {
				t.Fatalf("client_queries = %d, want 7", resp.ClientQueries)
			}
			if got := f.ClientExposure("c2"); got != 7 {
				t.Fatalf("router ledger = %d after timeout retries, want exactly 7 (double-charge?)", got)
			}
			if got := f.TotalExposure(); got != 7 {
				t.Fatalf("fleet total = %d, want 7", got)
			}
		}},
		{"retry after eject, probe reinstatement", func(t *testing.T, mk mkFleet) {
			f := mk(t, Config{Replicas: 2, ReplicationFactor: 2, EjectAfter: 2, ProbeAfter: 2,
				Timeout: 2 * time.Second, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond})
			id, err := f.Publish(testPublish(1))
			if err != nil {
				t.Fatal(err)
			}
			h := f.Handler()
			victim := f.Holders(id)[0]
			f.KillReplica(victim)
			// Enough traffic to hit the dead replica EjectAfter times.
			for i := 0; i < 6; i++ {
				var resp serve.QueryResponse
				code, _ := doJSON(t, h, http.MethodPost, "/query", nil, queryBody(id, "c3", 1), &resp)
				if code != http.StatusOK {
					t.Fatalf("query %d during kill returned %d", i, code)
				}
			}
			if st := f.Stats(); st.Ejections == 0 {
				t.Fatal("dead replica was never ejected")
			}
			if err := f.RestartReplica(victim); err != nil {
				t.Fatal(err)
			}
			// The restarted replica rejoins only through a successful probe.
			var reinstated bool
			extra := int64(0)
			for i := 0; i < 20 && !reinstated; i++ {
				code, _ := doJSON(t, h, http.MethodPost, "/query", nil, queryBody(id, "c3", 1), nil)
				if code != http.StatusOK {
					t.Fatalf("query after restart returned %d", code)
				}
				extra++
				reinstated = f.Stats().Reinstated > 0
			}
			if !reinstated {
				t.Fatal("restarted replica was never probed back into rotation")
			}
			if err := f.ReplicaAgreement(id); err != nil {
				t.Fatalf("post-restart agreement: %v", err)
			}
			// Every answered query — across kill, eject, probe — charged
			// exactly once.
			if got := f.ClientExposure("c3"); got != 6+extra {
				t.Fatalf("exposure = %d, want %d (one per answered query)", got, 6+extra)
			}
		}},
		{"exhausted replica set yields typed 503", func(t *testing.T, mk mkFleet) {
			f := mk(t, Config{Replicas: 2, ReplicationFactor: 2, EjectAfter: 1, ProbeAfter: 1000,
				Timeout: 2 * time.Second, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond})
			id, err := f.Publish(testPublish(1))
			if err != nil {
				t.Fatal(err)
			}
			h := f.Handler()
			f.KillReplica(0)
			f.KillReplica(1)
			var eb serve.ErrorBody
			code, hdr := doJSON(t, h, http.MethodPost, "/query", nil, queryBody(id, "c4", 1), &eb)
			if code != http.StatusServiceUnavailable {
				t.Fatalf("all-dead query returned %d, want 503", code)
			}
			if eb.Code != serve.CodeUnavailable {
				t.Fatalf("code = %q, want %q", eb.Code, serve.CodeUnavailable)
			}
			if hdr.Get("Retry-After") == "" {
				t.Fatal("503 without Retry-After")
			}
			if got := f.ClientExposure("c4"); got != 0 {
				t.Fatalf("failed request charged %d exposure", got)
			}
		}},
		{"saturated holders shed with typed 429", func(t *testing.T, mk mkFleet) {
			f := mk(t, Config{Replicas: 2, ReplicationFactor: 2, MaxInFlight: 1, Timeout: 10 * time.Second})
			id, err := f.Publish(testPublish(1))
			if err != nil {
				t.Fatal(err)
			}
			h := f.Handler()
			// Park one slow request on each holder, then a third must shed.
			for _, hi := range f.Holders(id) {
				f.InjectLatency(hi, 2*time.Second, 1)
			}
			done := make(chan int, 2)
			for i := 0; i < 2; i++ {
				go func(i int) {
					// Distinct clients give distinct body hashes, spreading
					// the two slow requests across both holders.
					code, _ := doJSON(t, h, http.MethodPost, "/query", nil,
						queryBody(id, fmt.Sprintf("slow%d", i), 1), nil)
					done <- code
				}(i)
			}
			// Wait until both replicas report an in-flight request.
			deadline := time.Now().Add(5 * time.Second)
			for {
				busy := 0
				for _, hi := range f.Holders(id) {
					if f.replicas[hi].inflight.Load() > 0 {
						busy++
					}
				}
				if busy == 2 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("slow requests never occupied both holders")
				}
				time.Sleep(5 * time.Millisecond)
			}
			var eb serve.ErrorBody
			code, hdr := doJSON(t, h, http.MethodPost, "/query", nil, queryBody(id, "c5", 1), &eb)
			if code != http.StatusTooManyRequests {
				t.Fatalf("saturated query returned %d, want 429", code)
			}
			if eb.Code != serve.CodeOverloaded {
				t.Fatalf("code = %q, want %q", eb.Code, serve.CodeOverloaded)
			}
			if hdr.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			if f.Stats().Shed == 0 {
				t.Fatal("shed counter not incremented")
			}
			for i := 0; i < 2; i++ {
				if code := <-done; code != http.StatusOK {
					t.Fatalf("parked request returned %d", code)
				}
			}
		}},
	}
	for _, tr := range fleetTransports {
		t.Run(tr.name, func(t *testing.T) {
			for _, tc := range cases {
				t.Run(tc.name, func(t *testing.T) { tc.run(t, tr.mk) })
			}
		})
	}
}

func TestIdempotentReplay(t *testing.T) {
	f := New(Config{Replicas: 2, ReplicationFactor: 2})
	id, err := f.Publish(testPublish(1))
	if err != nil {
		t.Fatal(err)
	}
	h := f.Handler()
	hdrs := map[string]string{"X-Idempotency-Key": "req-42"}
	var first, second serve.QueryResponse
	if code, _ := doJSON(t, h, http.MethodPost, "/query", hdrs, queryBody(id, "c1", 3), &first); code != http.StatusOK {
		t.Fatalf("first send returned %d", code)
	}
	if code, _ := doJSON(t, h, http.MethodPost, "/query", hdrs, queryBody(id, "c1", 3), &second); code != http.StatusOK {
		t.Fatalf("replay returned %d", code)
	}
	if first.ClientQueries != 3 || second.ClientQueries != 3 {
		t.Fatalf("cumulative exposure %d then %d, want 3 both times (replay must not recharge)",
			first.ClientQueries, second.ClientQueries)
	}
	if got := f.ClientExposure("c1"); got != 3 {
		t.Fatalf("ledger = %d after replay, want 3", got)
	}
	// A fresh key is a fresh logical request and charges again.
	var third serve.QueryResponse
	doJSON(t, h, http.MethodPost, "/query", map[string]string{"X-Idempotency-Key": "req-43"},
		queryBody(id, "c1", 3), &third)
	if third.ClientQueries != 6 {
		t.Fatalf("new key cumulative = %d, want 6", third.ClientQueries)
	}
}

// incPublish is the incremental publication the insert-routing tests place.
func incPublish(seed int64) serve.PublishRequest {
	req := testPublish(seed)
	req.Method = serve.MethodIncremental
	return req
}

// insertRecords builds n deterministic medical records in both the JSON
// label encoding and the binary full-schema code encoding.
func insertRecords(rng *rand.Rand, n int) (recs []map[string]string, codes [][]uint16) {
	schema := datagen.MedicalSchema()
	for i := 0; i < n; i++ {
		rec := make([]uint16, schema.NumAttrs())
		lab := make(map[string]string, schema.NumAttrs())
		for a := 0; a < schema.NumAttrs(); a++ {
			rec[a] = uint16(rng.Intn(schema.Attrs[a].Domain()))
			lab[schema.Attrs[a].Name] = schema.Attrs[a].Label(rec[a])
		}
		recs = append(recs, lab)
		codes = append(codes, rec)
	}
	return recs, codes
}

// doRaw drives the router with a pre-encoded body (the binary frame path).
func doRaw(t *testing.T, h http.Handler, path, contentType string, body []byte) (int, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", contentType)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w.Code, w.Body.Bytes()
}

// TestInsertFanOut: a routed insert batch reaches every live holder — the
// replicas stay digest-identical — and the typed rejections (unknown
// publication, non-incremental publication) relay through the router with
// the single-server bodies.
func TestInsertFanOut(t *testing.T) {
	f := New(Config{Replicas: 3, ReplicationFactor: 2, Timeout: 2 * time.Second})
	id, err := f.Publish(incPublish(7))
	if err != nil {
		t.Fatal(err)
	}
	h := f.Handler()
	rng := rand.New(rand.NewSource(7))

	total := 500
	for batch := 0; batch < 4; batch++ {
		recs, _ := insertRecords(rng, 20+batch*5)
		total += len(recs)
		var ins struct {
			Inserted     int `json:"inserted"`
			TotalRecords int `json:"total_records"`
		}
		code, _ := doJSON(t, h, http.MethodPost, "/insert", nil,
			map[string]any{"id": id, "records": recs, "wait": true}, &ins)
		if code != http.StatusOK {
			t.Fatalf("routed insert %d returned %d", batch, code)
		}
		if ins.Inserted != len(recs) || ins.TotalRecords != total {
			t.Fatalf("batch %d: inserted %d (want %d), total %d (want %d)",
				batch, ins.Inserted, len(recs), ins.TotalRecords, total)
		}
	}
	if err := f.ReplicaAgreement(id); err != nil {
		t.Fatalf("post-insert agreement: %v", err)
	}
	if st := f.Stats(); st.InsertsRouted != 4 {
		t.Fatalf("inserts_routed = %d, want 4", st.InsertsRouted)
	}

	// Unknown publication: typed 404, nothing logged.
	var eb serve.ErrorBody
	code, _ := doJSON(t, h, http.MethodPost, "/insert", nil,
		map[string]any{"id": "no-such-pub", "records": []map[string]string{{"a": "b"}}}, &eb)
	if code != http.StatusNotFound || eb.Code != serve.CodeNotFound {
		t.Fatalf("unknown-pub insert returned %d/%q, want 404/%q", code, eb.Code, serve.CodeNotFound)
	}

	// Non-incremental publication: the holders' deterministic 409 relays
	// verbatim and must not grow the mutation log.
	staticID, err := f.Publish(testPublish(9))
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := insertRecords(rng, 3)
	code, _ = doJSON(t, h, http.MethodPost, "/insert", nil,
		map[string]any{"id": staticID, "records": recs, "wait": true}, &eb)
	if code != http.StatusConflict || eb.Code != serve.CodeNotIncremental {
		t.Fatalf("non-incremental insert returned %d/%q, want 409/%q", code, eb.Code, serve.CodeNotIncremental)
	}
	if st := f.Stats(); st.InsertsRouted != 4 {
		t.Fatalf("rejected insert grew inserts_routed to %d", st.InsertsRouted)
	}
	if err := f.ReplicaAgreement(staticID); err != nil {
		t.Fatalf("static publication agreement after rejected insert: %v", err)
	}
}

// TestInsertRestartReplaysMutationLog: a holder that dies misses insert
// batches and refreshes; its restart replays the publication's mutation log
// in order, so the rebuilt replica is digest-identical to the survivors.
func TestInsertRestartReplaysMutationLog(t *testing.T) {
	f := New(Config{Replicas: 3, ReplicationFactor: 2, Timeout: 2 * time.Second})
	id, err := f.Publish(incPublish(11))
	if err != nil {
		t.Fatal(err)
	}
	h := f.Handler()
	rng := rand.New(rand.NewSource(11))
	insert := func(n int) {
		t.Helper()
		recs, _ := insertRecords(rng, n)
		code, _ := doJSON(t, h, http.MethodPost, "/insert", nil,
			map[string]any{"id": id, "records": recs, "wait": true}, nil)
		if code != http.StatusOK {
			t.Fatalf("insert returned %d", code)
		}
	}

	// Interleave mutations while everyone is alive…
	insert(30)
	if err := f.Refresh(id); err != nil {
		t.Fatal(err)
	}
	insert(25)

	// …then kill a holder and keep mutating: the victim misses two inserts
	// and a refresh.
	victim := f.Holders(id)[0]
	f.KillReplica(victim)
	insert(40)
	if err := f.Refresh(id); err != nil {
		t.Fatal(err)
	}
	insert(15)

	if err := f.RestartReplica(victim); err != nil {
		t.Fatal(err)
	}
	if err := f.ReplicaAgreement(id); err != nil {
		t.Fatalf("post-restart agreement (mutation-log replay): %v", err)
	}
}

// TestBinaryInsertRouted: the binary firehose frame routes through the
// fleet — fanned out byte-for-byte, logged, and replayed on restart in its
// original encoding.
func TestBinaryInsertRouted(t *testing.T) {
	f := New(Config{Replicas: 3, ReplicationFactor: 2, Timeout: 2 * time.Second})
	id, err := f.Publish(incPublish(13))
	if err != nil {
		t.Fatal(err)
	}
	h := f.Handler()
	schema := datagen.MedicalSchema()
	rng := rand.New(rand.NewSource(13))

	victim := f.Holders(id)[0]
	total := 500
	for batch := 0; batch < 3; batch++ {
		if batch == 2 {
			f.KillReplica(victim)
		}
		_, codes := insertRecords(rng, 20)
		total += len(codes)
		req := wire.InsertReq{ID: []byte(id), Wait: true, NAttrs: schema.NumAttrs(), Records: codes}
		code, body := doRaw(t, h, "/insert", wire.ContentType, req.Append(nil))
		if code != http.StatusOK {
			t.Fatalf("binary insert %d returned %d: %s", batch, code, body)
		}
		var resp wire.InsertResp
		if err := resp.Decode(body); err != nil {
			t.Fatalf("binary insert %d: decoding response: %v", batch, err)
		}
		if int(resp.Inserted) != len(codes) || int(resp.TotalRecords) != total {
			t.Fatalf("batch %d: inserted %d (want %d), total %d (want %d)",
				batch, resp.Inserted, len(codes), resp.TotalRecords, total)
		}
	}
	if err := f.RestartReplica(victim); err != nil {
		t.Fatal(err)
	}
	if err := f.ReplicaAgreement(id); err != nil {
		t.Fatalf("post-restart agreement (binary replay): %v", err)
	}
}

// TestInsertIdempotentReplay: a client resend of an insert with the same
// idempotency key must not double-apply the batch.
func TestInsertIdempotentReplay(t *testing.T) {
	f := New(Config{Replicas: 2, ReplicationFactor: 2, Timeout: 2 * time.Second})
	id, err := f.Publish(incPublish(17))
	if err != nil {
		t.Fatal(err)
	}
	h := f.Handler()
	rng := rand.New(rand.NewSource(17))
	recs, _ := insertRecords(rng, 10)
	body := map[string]any{"id": id, "records": recs, "wait": true}
	hdrs := map[string]string{"X-Idempotency-Key": "ins-1"}

	var first, second struct {
		TotalRecords int `json:"total_records"`
	}
	if code, _ := doJSON(t, h, http.MethodPost, "/insert", hdrs, body, &first); code != http.StatusOK {
		t.Fatalf("first send returned %d", code)
	}
	if code, _ := doJSON(t, h, http.MethodPost, "/insert", hdrs, body, &second); code != http.StatusOK {
		t.Fatalf("replay returned %d", code)
	}
	if first.TotalRecords != 510 || second.TotalRecords != 510 {
		t.Fatalf("total_records %d then %d, want 510 both times (replay must not re-apply)",
			first.TotalRecords, second.TotalRecords)
	}
	if st := f.Stats(); st.InsertsRouted != 1 {
		t.Fatalf("inserts_routed = %d after idempotent replay, want 1", st.InsertsRouted)
	}
	if err := f.ReplicaAgreement(id); err != nil {
		t.Fatalf("agreement after replay: %v", err)
	}
}

func TestRefreshAndRestartGenerationReplay(t *testing.T) {
	f := New(Config{Replicas: 3, ReplicationFactor: 2})
	id, err := f.Publish(testPublish(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Refresh(id); err != nil {
		t.Fatal(err)
	}
	if err := f.Refresh(id); err != nil {
		t.Fatal(err)
	}
	if err := f.ReplicaAgreement(id); err != nil {
		t.Fatalf("post-refresh agreement: %v", err)
	}
	victim := f.Holders(id)[0]
	f.KillReplica(victim)
	// A refresh while one holder is down advances the survivors; the
	// restart must replay the missed generation.
	if err := f.Refresh(id); err != nil {
		t.Fatal(err)
	}
	if err := f.RestartReplica(victim); err != nil {
		t.Fatal(err)
	}
	if err := f.ReplicaAgreement(id); err != nil {
		t.Fatalf("post-restart agreement (generation replay): %v", err)
	}
}

func TestVerificationAgreesAcrossReplicas(t *testing.T) {
	// VerifyEvery=1 verifies every answer; with bit-identical replicas the
	// mismatch counter must stay zero.
	f := New(Config{Replicas: 3, ReplicationFactor: 2, VerifyEvery: 1})
	id, err := f.Publish(testPublish(1))
	if err != nil {
		t.Fatal(err)
	}
	h := f.Handler()
	for i := 0; i < 8; i++ {
		client := fmt.Sprintf("v%d", i)
		if code, _ := doJSON(t, h, http.MethodPost, "/query", nil, queryBody(id, client, 2), nil); code != http.StatusOK {
			t.Fatalf("query %d returned %d", i, code)
		}
	}
	st := f.Stats()
	if st.Verified == 0 {
		t.Fatal("no answers were verified at VerifyEvery=1")
	}
	if st.VerifyMismatches != 0 {
		t.Fatalf("%d verification mismatches across bit-identical replicas", st.VerifyMismatches)
	}
}
