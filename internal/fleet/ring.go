package fleet

import (
	"sort"

	"github.com/reconpriv/reconpriv/internal/par"
)

// Rendezvous (highest-random-weight) hashing places publications on
// replicas. Unlike a ring of virtual nodes it needs no stored state, every
// node scores every key independently, and removing a replica moves only
// the keys it held — the property that keeps placement stable across
// restarts.

// fnv64 is FNV-1a over a string, the key half of the rendezvous score.
func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * prime
	}
	return h
}

// score is replica idx's rendezvous weight for a publication id: the key
// hash whitened against a per-replica odd multiplier through the SplitMix64
// finalizer. idx+1 keeps replica 0 off the bare key hash.
func score(pubID string, idx int) uint64 {
	return par.Mix64(fnv64(pubID) ^ (0x9e3779b97f4a7c15 * uint64(idx+1)))
}

// placement returns the indices of the rf replicas (of n) that hold a
// publication, highest score first. Ties break on the lower index so the
// order is total; rf is clamped to n.
func placement(pubID string, n, rf int) []int {
	if rf > n {
		rf = n
	}
	if rf <= 0 {
		rf = 1
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		sa, sb := score(pubID, idx[a]), score(pubID, idx[b])
		if sa != sb {
			return sa > sb
		}
		return idx[a] < idx[b]
	})
	return idx[:rf]
}
