package fleet

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"github.com/reconpriv/reconpriv/internal/datagen"
	"github.com/reconpriv/reconpriv/internal/serve"
	"github.com/reconpriv/reconpriv/internal/wire"
)

// digestOf reads one holder's generation-qualified digest over its
// transport — the same exchange ReplicaAgreement performs, exposed so tests
// can compare digests across fleets, not just within one.
func digestOf(t *testing.T, f *Fleet, holder int, id string) string {
	t.Helper()
	resp, err := f.control(f.replicas[holder], http.MethodGet, "/digest?id="+id, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.status != http.StatusOK {
		t.Fatalf("digest from replica %d returned %d: %s", holder, resp.status, resp.body)
	}
	var d struct {
		Generation int    `json:"generation"`
		Digest     string `json:"digest"`
	}
	if err := json.Unmarshal(resp.body, &d); err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("g%d:%s", d.Generation, d.Digest)
}

// runCheckpointScript drives one fleet through a fixed mutation interleaving
// — JSON inserts, binary inserts, refreshes — killing the first holder
// partway so two mutations land in the log while it is down. Deterministic
// record generation makes the script bit-identical across fleets.
func runCheckpointScript(t *testing.T, f *Fleet, id string) (victim int) {
	t.Helper()
	h := f.Handler()
	schema := datagen.MedicalSchema()
	rng := rand.New(rand.NewSource(23))
	insertJSON := func(n int) {
		t.Helper()
		recs, _ := insertRecords(rng, n)
		code, _ := doJSON(t, h, http.MethodPost, "/insert", nil,
			map[string]any{"id": id, "records": recs, "wait": true}, nil)
		if code != http.StatusOK {
			t.Fatalf("insert returned %d", code)
		}
	}
	insertBin := func(n int) {
		t.Helper()
		_, codes := insertRecords(rng, n)
		req := wire.InsertReq{ID: []byte(id), Wait: true, NAttrs: schema.NumAttrs(), Records: codes}
		code, body := doRaw(t, h, "/insert", wire.ContentType, req.Append(nil))
		if code != http.StatusOK {
			t.Fatalf("binary insert returned %d: %s", code, body)
		}
	}
	refresh := func() {
		t.Helper()
		if err := f.Refresh(id); err != nil {
			t.Fatal(err)
		}
	}

	// Four mutations while everyone is alive — exactly CheckpointLog for the
	// checkpointing fleet, which folds them into a snapshot…
	insertJSON(10)
	insertBin(12)
	refresh()
	insertJSON(8)
	// …then two more with a holder dead: the checkpoint's tail.
	victim = f.Holders(id)[0]
	f.KillReplica(victim)
	insertBin(9)
	refresh()
	return victim
}

// TestCheckpointRestartByteIdentity is the checkpoint correctness pin: a
// replica restarted from snapshot + log tail must be digest-identical to
// one that replayed the full mutation log, and both to a holder that never
// died — across an interleaving of JSON inserts, binary inserts, and
// refreshes, and through further mutations after the restart.
func TestCheckpointRestartByteIdentity(t *testing.T) {
	mk := func(checkpointLog int) (*Fleet, string) {
		f := New(Config{Replicas: 3, ReplicationFactor: 2, Timeout: 2 * time.Second,
			CheckpointLog: checkpointLog})
		t.Cleanup(f.Close)
		id, err := f.Publish(incPublish(19))
		if err != nil {
			t.Fatal(err)
		}
		return f, id
	}
	fA, id := mk(4) // checkpoints after the 4th mutation
	fB, idB := mk(-1)
	if id != idB {
		t.Fatalf("fleets placed different ids: %q vs %q", id, idB)
	}

	vA := runCheckpointScript(t, fA, id)
	vB := runCheckpointScript(t, fB, id)
	if vA != vB {
		t.Fatalf("victims differ: %d vs %d (placement is pure)", vA, vB)
	}

	// The checkpointing fleet folded the first four mutations and kept the
	// two post-kill ones as tail; the other kept the full history.
	if got := fA.MutationLogLen(id); got != 2 {
		t.Fatalf("checkpointed log length = %d, want 2 (tail only)", got)
	}
	if st := fA.Stats(); st.Checkpoints != 1 {
		t.Fatalf("checkpoints = %d, want 1", st.Checkpoints)
	}
	if got := fB.MutationLogLen(id); got != 6 {
		t.Fatalf("unbounded log length = %d, want 6 (full history)", got)
	}
	if st := fB.Stats(); st.Checkpoints != 0 {
		t.Fatalf("disabled checkpointing still folded %d times", st.Checkpoints)
	}

	// The router's own view reports the fold.
	var pubs []pubJSON
	if code, _ := doJSON(t, fA.Handler(), http.MethodGet, "/publications", nil, nil, &pubs); code != http.StatusOK {
		t.Fatalf("publications returned %d", code)
	}
	if len(pubs) != 1 || !pubs[0].Checkpointed || pubs[0].LogLen != 2 {
		t.Fatalf("publications view = %+v, want checkpointed with log_len 2", pubs)
	}

	// Restart: fA's victim restores snapshot + tail, fB's replays request +
	// full log. Within each fleet the victim must agree with the survivor;
	// across fleets all digests must be one value.
	if err := fA.RestartReplica(vA); err != nil {
		t.Fatal(err)
	}
	if err := fB.RestartReplica(vB); err != nil {
		t.Fatal(err)
	}
	if err := fA.ReplicaAgreement(id); err != nil {
		t.Fatalf("agreement after snapshot+tail restart: %v", err)
	}
	if err := fB.ReplicaAgreement(id); err != nil {
		t.Fatalf("agreement after full-log restart: %v", err)
	}
	dA, dB := digestOf(t, fA, vA, id), digestOf(t, fB, vB, id)
	if dA != dB {
		t.Fatalf("snapshot+tail restart diverges from full-log restart: %s vs %s", dA, dB)
	}

	// Continuation: identical further mutations keep both fleets — restored
	// holders included — on one digest (the restored streaming state is the
	// same state, not a lookalike).
	for _, f := range []*Fleet{fA, fB} {
		h := f.Handler()
		rng := rand.New(rand.NewSource(31))
		recs, _ := insertRecords(rng, 7)
		if code, _ := doJSON(t, h, http.MethodPost, "/insert", nil,
			map[string]any{"id": id, "records": recs, "wait": true}, nil); code != http.StatusOK {
			t.Fatalf("continuation insert returned %d", code)
		}
		if err := f.Refresh(id); err != nil {
			t.Fatal(err)
		}
		if err := f.ReplicaAgreement(id); err != nil {
			t.Fatalf("continuation agreement: %v", err)
		}
	}
	dA, dB = digestOf(t, fA, vA, id), digestOf(t, fB, vB, id)
	if dA != dB {
		t.Fatalf("fleets diverge after continuation: %s vs %s", dA, dB)
	}
}

// TestCheckpointBoundsMutationLog: with checkpointing enabled the log never
// grows past the configured threshold — every time a mutation fills it, the
// fold truncates it — so restart replay cost is bounded no matter how long
// the fleet ingests.
func TestCheckpointBoundsMutationLog(t *testing.T) {
	const limit = 4
	f := New(Config{Replicas: 3, ReplicationFactor: 2, Timeout: 2 * time.Second,
		CheckpointLog: limit})
	t.Cleanup(f.Close)
	id, err := f.Publish(incPublish(37))
	if err != nil {
		t.Fatal(err)
	}
	h := f.Handler()
	rng := rand.New(rand.NewSource(37))
	const mutations = 21
	for i := 0; i < mutations; i++ {
		if i%5 == 4 {
			if err := f.Refresh(id); err != nil {
				t.Fatal(err)
			}
		} else {
			recs, _ := insertRecords(rng, 3)
			if code, _ := doJSON(t, h, http.MethodPost, "/insert", nil,
				map[string]any{"id": id, "records": recs, "wait": true}, nil); code != http.StatusOK {
				t.Fatalf("insert %d returned %d", i, code)
			}
		}
		if got := f.MutationLogLen(id); got >= limit {
			t.Fatalf("after mutation %d: log length %d, want < %d (fold never ran)", i, got, limit)
		}
	}
	if st := f.Stats(); st.Checkpoints != mutations/limit {
		t.Fatalf("checkpoints = %d, want %d", st.Checkpoints, mutations/limit)
	}
	// A restart replays snapshot + short tail and still lands on the
	// survivors' digest.
	victim := f.Holders(id)[0]
	f.KillReplica(victim)
	if err := f.RestartReplica(victim); err != nil {
		t.Fatal(err)
	}
	if err := f.ReplicaAgreement(id); err != nil {
		t.Fatalf("agreement after bounded-log restart: %v", err)
	}
}

// TestCrossProcessKillMidBatch is the cross-process failover pin: a fleet
// of spawned child processes loses one to a real OS kill in the middle of a
// query/insert batch and keeps answering over real sockets — every
// operation succeeds, every answered query charges exactly once, the log
// keeps folding into checkpoints, and after the child is respawned and
// replayed all holders agree bit-for-bit.
func TestCrossProcessKillMidBatch(t *testing.T) {
	f, err := NewProcs(Config{Replicas: 3, ReplicationFactor: 2, Timeout: 2 * time.Second,
		EjectAfter: 2, ProbeAfter: 2, CheckpointLog: 3,
		BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	id, err := f.Publish(incPublish(29))
	if err != nil {
		t.Fatal(err)
	}
	h := f.Handler()
	rng := rand.New(rand.NewSource(29))
	victim := f.Holders(id)[0]

	queries, total := 0, 500
	for i := 0; i < 40; i++ {
		switch i {
		case 15:
			// A real process kill: the child is dead, its socket refuses.
			f.KillReplica(victim)
			if f.Alive(victim) {
				t.Fatal("victim still marked alive after kill")
			}
		case 30:
			// Respawn and replay; the child rejoins through the probe path.
			if err := f.RestartReplica(victim); err != nil {
				t.Fatal(err)
			}
		}
		if i%3 == 2 {
			recs, _ := insertRecords(rng, 5)
			total += len(recs)
			var ins struct {
				Inserted     int `json:"inserted"`
				TotalRecords int `json:"total_records"`
			}
			code, _ := doJSON(t, h, http.MethodPost, "/insert", nil,
				map[string]any{"id": id, "records": recs, "wait": true}, &ins)
			if code != http.StatusOK {
				t.Fatalf("insert at op %d returned %d", i, code)
			}
			if ins.Inserted != len(recs) || ins.TotalRecords != total {
				t.Fatalf("op %d: inserted %d/%d records, total %d want %d — a batch was lost",
					i, ins.Inserted, len(recs), ins.TotalRecords, total)
			}
		} else {
			var resp serve.QueryResponse
			code, _ := doJSON(t, h, http.MethodPost, "/query", nil, queryBody(id, "kc", 2), &resp)
			if code != http.StatusOK {
				t.Fatalf("query at op %d returned %d", i, code)
			}
			queries++
		}
	}

	// Exactly-once accounting across the kill: every answered query charged
	// its 2 cells once — nothing lost, nothing double-charged.
	if got := f.ClientExposure("kc"); got != int64(2*queries) {
		t.Fatalf("client exposure = %d, want %d", got, 2*queries)
	}
	if got := f.TotalExposure(); got != int64(2*queries) {
		t.Fatalf("fleet total = %d, want %d", got, 2*queries)
	}
	// The restarted process serves the same bits as the survivor.
	if err := f.ReplicaAgreement(id); err != nil {
		t.Fatalf("cross-process agreement after kill/restart: %v", err)
	}
	st := f.Stats()
	if st.Checkpoints == 0 {
		t.Fatal("mutation log never folded into a checkpoint")
	}
	if st.Transport != "spawned" {
		t.Fatalf("transport = %q, want spawned", st.Transport)
	}
	if got := f.MutationLogLen(id); got >= 3 {
		t.Fatalf("log length %d at end, want < 3 (checkpoint bound)", got)
	}
}
