package fleet

import (
	"bytes"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/reconpriv/reconpriv/internal/serve"
	"github.com/reconpriv/reconpriv/internal/wire"
)

// doBinary drives the router handler in-process with a wire frame.
func doBinary(t *testing.T, h http.Handler, path string, headers map[string]string, frame []byte) (int, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(frame))
	req.Header.Set("Content-Type", wire.ContentType)
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w.Code, w.Body.Bytes()
}

// binaryQueryFrame builds a /query frame of n identical single-condition
// queries — Job=Engineer (code 0), SA Flu (code 0) — matching
// condQueryBody.
func binaryQueryFrame(id, client string, n int) []byte {
	m := wire.QueryReq{ID: []byte(id), Client: []byte(client), Wait: true}
	for i := 0; i < n; i++ {
		m.Queries = append(m.Queries, wire.Query{SA: 0, Conds: []wire.Cond{{Attr: 1, Value: 0}}})
	}
	return m.Append(nil)
}

// condQueryBody is binaryQueryFrame's JSON twin, speaking labels.
func condQueryBody(id, client string, n int) map[string]any {
	qs := make([]serve.QueryJSON, n)
	for i := range qs {
		qs[i] = serve.QueryJSON{Conds: []serve.CondJSON{{Attr: "Job", Value: "Engineer"}}, SA: "Flu"}
	}
	return map[string]any{"id": id, "client": client, "queries": qs, "wait": true}
}

// TestRoutedBinaryQuery routes binary frames through the fleet: answers
// must match the JSON route bit for bit, the router's authoritative ledger
// must be patched into the frame, and digest verification across replicas
// must hold at VerifyEvery=1.
func TestRoutedBinaryQuery(t *testing.T) {
	f := New(Config{Replicas: 3, ReplicationFactor: 2, VerifyEvery: 1})
	id, err := f.Publish(testPublish(1))
	if err != nil {
		t.Fatal(err)
	}
	h := f.Handler()

	// JSON route first: its per-answer content is the reference. The JSON
	// batch speaks labels and the binary one original codes — the same
	// queries either way.
	var jresp serve.QueryResponse
	if code, _ := doJSON(t, h, http.MethodPost, "/query", nil, condQueryBody(id, "carol", 4), &jresp); code != http.StatusOK {
		t.Fatalf("json route returned %d", code)
	}

	code, body := doBinary(t, h, "/query", nil, binaryQueryFrame(id, "carol", 4))
	if code != http.StatusOK {
		t.Fatalf("binary route returned %d: %s", code, body)
	}
	var bresp wire.QueryResp
	if err := bresp.Decode(body); err != nil {
		t.Fatalf("decoding routed binary response: %v", err)
	}
	if len(bresp.Answers) != len(jresp.Answers) {
		t.Fatalf("%d binary answers, %d json", len(bresp.Answers), len(jresp.Answers))
	}
	for i := range bresp.Answers {
		ba, ja := bresp.Answers[i], jresp.Answers[i]
		if ba.Err != nil || ja.Error != "" {
			t.Fatalf("answer %d errored: bin=%q json=%q", i, ba.Err, ja.Error)
		}
		if int(ba.Count) != ja.Count || math.Float64bits(ba.Estimate) != math.Float64bits(ja.Estimate) {
			t.Fatalf("answer %d: bin (%d, %v) vs json (%d, %v)", i, ba.Count, ba.Estimate, ja.Count, ja.Estimate)
		}
	}

	// The router, not the replica, owns the ledger: 4 JSON + 4 binary
	// queries by the same client must accumulate in the patched frame.
	if bresp.Charged != 4 {
		t.Fatalf("binary charged %d, want 4", bresp.Charged)
	}
	if bresp.ClientQueries != 8 {
		t.Fatalf("cumulative exposure %d after 8 routed queries, want 8", bresp.ClientQueries)
	}
	if string(bresp.Client) != "carol" {
		t.Fatalf("patched client %q, want carol", bresp.Client)
	}

	st := f.Stats()
	if st.Verified == 0 {
		t.Fatal("no binary answers were verified at VerifyEvery=1")
	}
	if st.VerifyMismatches != 0 {
		t.Fatalf("%d verification mismatches across bit-identical replicas", st.VerifyMismatches)
	}
}

// TestRoutedBinaryReconstruct covers the second binary endpoint end to end,
// including the subsets×SADomain exposure charge surviving the patch.
func TestRoutedBinaryReconstruct(t *testing.T) {
	f := New(Config{Replicas: 2, ReplicationFactor: 2, VerifyEvery: 1})
	id, err := f.Publish(testPublish(1))
	if err != nil {
		t.Fatal(err)
	}
	h := f.Handler()

	m := wire.ReconstructReq{ID: []byte(id), Client: []byte("adv"), Wait: true}
	m.Subsets = [][]wire.Cond{
		{{Attr: 1, Value: 0}},
		{{Attr: 0, Value: 1}, {Attr: 1, Value: 2}},
	}
	code, body := doBinary(t, h, "/reconstruct", nil, m.Append(nil))
	if code != http.StatusOK {
		t.Fatalf("binary reconstruct returned %d: %s", code, body)
	}
	var resp wire.ReconstructResp
	if err := resp.Decode(body); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("%d results, want 2", len(resp.Results))
	}
	for i := range resp.Results {
		if resp.Results[i].Err != nil {
			t.Fatalf("subset %d errored: %q", i, resp.Results[i].Err)
		}
	}
	// Medical SA domain is 10: 2 subsets charge 20.
	if resp.Charged != 20 {
		t.Fatalf("charged %d, want 20", resp.Charged)
	}
	if resp.ClientQueries != 20 {
		t.Fatalf("cumulative exposure %d, want 20", resp.ClientQueries)
	}
	st := f.Stats()
	if st.VerifyMismatches != 0 {
		t.Fatalf("%d verification mismatches", st.VerifyMismatches)
	}
}

// TestRoutedBinaryErrors pins the router-level failure surface for frames.
func TestRoutedBinaryErrors(t *testing.T) {
	f := New(Config{Replicas: 2, ReplicationFactor: 2})
	id, err := f.Publish(testPublish(1))
	if err != nil {
		t.Fatal(err)
	}
	h := f.Handler()

	// A body that is not a frame fails at the router's head peek.
	if code, body := doBinary(t, h, "/query", nil, []byte("junk")); code != http.StatusBadRequest {
		t.Fatalf("junk frame returned %d: %s", code, body)
	}
	// An unknown publication is rejected before any replica is tried.
	if code, _ := doBinary(t, h, "/query", nil, binaryQueryFrame("pub-none", "c", 1)); code != http.StatusNotFound {
		t.Fatal("unknown publication not rejected")
	}
	// A frame that peeks fine but fails replica-side decoding relays the
	// replica's typed JSON rejection verbatim.
	frame := binaryQueryFrame(id, "c", 1)
	frame = append(frame, 0xEE)
	n := uint32(len(frame) - wire.HeaderSize)
	frame[4], frame[5], frame[6], frame[7] = byte(n), byte(n>>8), byte(n>>16), byte(n>>24)
	code, body := doBinary(t, h, "/query", nil, frame)
	if code != http.StatusBadRequest {
		t.Fatalf("trailing-byte frame returned %d: %s", code, body)
	}
	if got := serve.DecodeErrorCode(code, body); got != serve.CodeBadRequest {
		t.Fatalf("replica rejection decoded as %q", got)
	}

	// Idempotent replay works for binary bodies: the second send returns
	// the stored frame without charging the ledger again.
	hdrs := map[string]string{"X-Idempotency-Key": "bin-key-1"}
	code, first := doBinary(t, h, "/query", hdrs, binaryQueryFrame(id, "ida", 3))
	if code != http.StatusOK {
		t.Fatalf("first idempotent send returned %d", code)
	}
	code, second := doBinary(t, h, "/query", hdrs, binaryQueryFrame(id, "ida", 3))
	if code != http.StatusOK || !bytes.Equal(first, second) {
		t.Fatalf("replay differs (code %d)", code)
	}
	var resp wire.QueryResp
	if err := resp.Decode(second); err != nil {
		t.Fatal(err)
	}
	if resp.ClientQueries != 3 {
		t.Fatalf("replayed exposure %d, want 3 (no double charge)", resp.ClientQueries)
	}
}
