package fleet

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	"github.com/reconpriv/reconpriv/internal/serve"
)

// childEnv is the environment variable that turns any binary calling
// ChildServeMain into a bare replica server. Its value is the childConfig
// JSON.
const childEnv = "RP_FLEET_CHILD"

// childReadyPrefix is the stdout line a child prints once it is listening;
// the rest of the line is its address.
const childReadyPrefix = "RP_FLEET_CHILD_READY "

// childConfig is the serializable slice of serve.Config a spawned replica
// needs. Function-valued fields (Clock) cannot cross a process boundary and
// budget enforcement is always disabled on replicas (the router's manager
// is authoritative), so only the build/ingest tuning knobs travel.
type childConfig struct {
	Shards              int   `json:"shards,omitempty"`
	QueryWorkers        int   `json:"query_workers,omitempty"`
	PublishWorkers      int   `json:"publish_workers,omitempty"`
	PipelineWorkers     int   `json:"pipeline_workers,omitempty"`
	MaxBatch            int   `json:"max_batch,omitempty"`
	MaxInsert           int   `json:"max_insert,omitempty"`
	CompactEvery        int   `json:"compact_every,omitempty"`
	IngestLegacyReindex bool  `json:"ingest_legacy_reindex,omitempty"`
	ExposureWarn        int64 `json:"exposure_warn,omitempty"`
	MaxPublications     int   `json:"max_publications,omitempty"`
	AllowCSV            bool  `json:"allow_csv,omitempty"`
}

// childConfigOf extracts the portable fields from a replica serve config.
func childConfigOf(cfg serve.Config) childConfig {
	return childConfig{
		Shards:              cfg.Shards,
		QueryWorkers:        cfg.QueryWorkers,
		PublishWorkers:      cfg.PublishWorkers,
		PipelineWorkers:     cfg.PipelineWorkers,
		MaxBatch:            cfg.MaxBatch,
		MaxInsert:           cfg.MaxInsert,
		CompactEvery:        cfg.CompactEvery,
		IngestLegacyReindex: cfg.IngestLegacyReindex,
		ExposureWarn:        cfg.ExposureWarn,
		MaxPublications:     cfg.MaxPublications,
		AllowCSV:            cfg.AllowCSV,
	}
}

// serveConfig expands the portable fields back into a serve config with
// budget enforcement disabled, mirroring Fleet.replicaServeConfig.
func (c childConfig) serveConfig() serve.Config {
	return serve.Config{
		Shards:              c.Shards,
		QueryWorkers:        c.QueryWorkers,
		PublishWorkers:      c.PublishWorkers,
		PipelineWorkers:     c.PipelineWorkers,
		MaxBatch:            c.MaxBatch,
		MaxInsert:           c.MaxInsert,
		CompactEvery:        c.CompactEvery,
		IngestLegacyReindex: c.IngestLegacyReindex,
		ExposureWarn:        c.ExposureWarn,
		MaxPublications:     c.MaxPublications,
		AllowCSV:            c.AllowCSV,
		BudgetQuota:         -1,
	}
}

// ChildServeMain is the child-process hook for cross-process fleets: when
// the RP_FLEET_CHILD environment variable is set, the process runs a bare
// replica server on a loopback port, prints the address for the parent, and
// never returns. Binaries that spawn fleets (cmd/rpfleet, cmd/rpsim,
// cmd/rpbench) and test mains call it first thing, so the fleet can
// re-execute its own binary as replica processes without needing a separate
// server binary on disk. When the variable is unset it does nothing.
func ChildServeMain() {
	raw := os.Getenv(childEnv)
	if raw == "" {
		return
	}
	var cc childConfig
	if err := json.Unmarshal([]byte(raw), &cc); err != nil {
		fmt.Fprintf(os.Stderr, "fleet child: bad %s: %v\n", childEnv, err)
		os.Exit(2)
	}
	// The parent holds our stdin open for our lifetime; EOF means it died
	// and we must not outlive it as an orphaned listener.
	go func() {
		io.Copy(io.Discard, os.Stdin)
		os.Exit(0)
	}()
	srv := serve.New(cc.serveConfig())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleet child: listen: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("%s%s\n", childReadyPrefix, ln.Addr().String())
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	if err := hs.Serve(ln); err != nil {
		fmt.Fprintf(os.Stderr, "fleet child: serve: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// childProc is one spawned replica process.
type childProc struct {
	cmd   *exec.Cmd
	addr  string    // "http://127.0.0.1:port"
	stdin io.Closer // held open as the child's parent-death watchdog

	killOnce sync.Once
}

// spawnChild re-executes this binary as a replica child, waits for its
// ready line, and confirms /healthz answers over the socket.
func spawnChild(cfg serve.Config, hc *http.Client) (*childProc, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("fleet: resolving own binary: %w", err)
	}
	cj, err := json.Marshal(childConfigOf(cfg))
	if err != nil {
		return nil, fmt.Errorf("fleet: encoding child config: %w", err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), childEnv+"="+string(cj))
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("fleet: spawning replica child: %w", err)
	}
	c := &childProc{cmd: cmd, stdin: stdin}

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, childReadyPrefix) {
				addrCh <- strings.TrimSpace(strings.TrimPrefix(line, childReadyPrefix))
				break
			}
		}
		// Keep draining so the child never blocks on a full stdout pipe.
		io.Copy(io.Discard, stdout)
		close(addrCh)
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok || addr == "" {
			c.kill()
			return nil, fmt.Errorf("fleet: replica child exited before announcing its address")
		}
		c.addr = "http://" + addr
	case <-time.After(30 * time.Second):
		c.kill()
		return nil, fmt.Errorf("fleet: replica child never announced its address")
	}
	if err := waitHealthy(c.addr, hc, 30*time.Second); err != nil {
		c.kill()
		return nil, err
	}
	return c, nil
}

// kill terminates the child hard — a real process exit, the cross-process
// analogue of KillReplica's transport cutoff — and reaps it.
func (c *childProc) kill() {
	c.killOnce.Do(func() {
		c.stdin.Close()
		c.cmd.Process.Kill()
		c.cmd.Wait()
	})
}

// waitHealthy polls a replica's /healthz until it answers 200.
func waitHealthy(base string, hc *http.Client, within time.Duration) error {
	deadline := time.Now().Add(within)
	var lastErr error
	for time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
		if err != nil {
			cancel()
			return err
		}
		resp, err := hc.Do(req)
		cancel()
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			lastErr = fmt.Errorf("healthz returned %d", resp.StatusCode)
		} else {
			lastErr = err
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("fleet: replica at %s never became healthy: %v", base, lastErr)
}
