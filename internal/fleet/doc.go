// Package fleet runs N in-process serve.Server replicas behind one router
// and makes the pair behave like a single fault-tolerant publication server.
//
// Placement is rendezvous hashing: each publication id scores every replica
// and lives on the top ReplicationFactor of them, so replicas hold disjoint
// overlapping subsets and losing one machine loses no publication with
// ReplicationFactor >= 2. Publications are deterministic builds — the same
// request yields bit-identical marginal cubes on every replica
// (Publication.Digest) — which is what makes replication cheap (no state
// transfer: a restarted replica rebuilds from the request) and agreement
// checkable (the router digest-compares sampled answers across holders).
//
// The router (Handler) proxies /query, /reconstruct, and /audit by
// publication id with per-attempt timeouts, capped exponential backoff with
// deterministic jitter, and failover across holders. Replica health is a
// three-state machine: healthy, ejected after EjectAfter consecutive
// transport failures, probing after a cooldown of ProbeAfter routed
// requests — one trial request either reinstates the replica or re-ejects
// it. Admission control bounds the in-flight requests per replica; when
// every holder is saturated the router sheds load with a typed 429, and
// when every holder is down past the retry budget it fails with a typed
// 503, both carrying Retry-After (see the serve error taxonomy).
//
// Exposure accounting is router-authoritative: replicas report each
// batch's charge in the response's charged field, and the router adds it
// to its own per-client ledger exactly once per logical request — however
// many replica attempts, timeouts, or abandoned executions it took — then
// rewrites client_queries and exposure_warning in the body it returns.
// Replica-local ledgers count abandoned work and are deliberately ignored;
// this is what keeps a retried query from being double-charged, the
// privacy half of the failover contract. Client resends are deduplicated
// by the X-Idempotency-Key header against a bounded replay cache.
package fleet
