package fleet

import (
	"bytes"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reconpriv/reconpriv/internal/budget"
	"github.com/reconpriv/reconpriv/internal/serve"
	"github.com/reconpriv/reconpriv/internal/wire"
)

// Config tunes the fleet; the zero value is fully usable.
type Config struct {
	// Replicas is the replica count (default 3).
	Replicas int
	// ReplicationFactor is how many replicas hold each publication
	// (default 2, clamped to Replicas).
	ReplicationFactor int
	// EjectAfter is the consecutive transport-failure count that ejects a
	// replica from rotation (default 3).
	EjectAfter int
	// ProbeAfter is the ejection cooldown, measured in requests routed
	// fleet-wide (not wall time, so tests and the simulator stay
	// deterministic): once that many requests have passed, the next
	// request to need the replica probes it (default 16).
	ProbeAfter uint64
	// MaxInFlight bounds concurrent requests per replica; beyond it the
	// router tries the next holder and, with every holder saturated,
	// sheds the request with a typed 429 (default 64).
	MaxInFlight int64
	// MaxAttempts is the per-logical-request attempt budget across all
	// holders (default 5).
	MaxAttempts int
	// Timeout is the per-attempt deadline (default 2s).
	Timeout time.Duration
	// BackoffBase and BackoffMax shape the capped exponential backoff
	// between attempts (defaults 2ms and 50ms); actual sleeps are jittered
	// deterministically from the request key.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// VerifyEvery samples 1-in-N successful /query and /reconstruct
	// answers for digest comparison against a second holder (default 16;
	// negative disables). Deterministic builds make holders bit-identical,
	// so any mismatch is a real fault.
	VerifyEvery int
	// Serve is each replica's configuration.
	Serve serve.Config
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.ReplicationFactor <= 0 {
		c.ReplicationFactor = 2
	}
	if c.ReplicationFactor > c.Replicas {
		c.ReplicationFactor = c.Replicas
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 3
	}
	if c.ProbeAfter == 0 {
		c.ProbeAfter = 16
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 2 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 50 * time.Millisecond
	}
	if c.VerifyEvery == 0 {
		c.VerifyEvery = 16
	}
	return c
}

// mutation is one entry of a publication's ordered mutation log: either a
// generation bump or an insert batch (the request body verbatim, so JSON
// and binary firehose batches replay through the same handler path that
// applied them live).
type mutation struct {
	refresh bool
	body    []byte
	binary  bool
}

// pub is the fleet's record of one placed publication: the request to
// rebuild it from (deterministic builds make the request the whole state)
// and the ordered mutation log — refreshes and insert batches, exactly as
// the live holders applied them — to replay on restart. The log holds every
// insert body for the publication's lifetime; that is the fleet's
// simulation-scale durability model (a production deployment would
// checkpoint a snapshot and truncate). gen and log are guarded by mu, which
// is also what serializes mutations into one total order per publication.
type pub struct {
	req     serve.PublishRequest
	holders []int
	mu      sync.Mutex
	gen     int
	log     []mutation
}

// Fleet is a router plus its replicas. Create with New; all methods are
// safe for concurrent use.
type Fleet struct {
	cfg      Config
	replicas []*replica

	pubs struct {
		mu sync.RWMutex
		m  map[string]*pub
	}

	// budget is the authoritative exposure ledger — bounded, quota-enforcing,
	// charged exactly once per logical request. Replicas run with
	// enforcement disabled so the router's decisions are the only ones; a
	// budget 429 is issued here, before any replica is touched, and never
	// charges.
	budget *budget.Manager

	// idem is the bounded idempotency replay cache (see router.go).
	idem struct {
		mu    sync.Mutex
		m     map[string]*response
		order []string
	}

	// requests is the fleet-wide routed-request counter — also the clock
	// probe cooldowns are measured against.
	requests atomic.Uint64

	// Operational counters (wall-clock and interleaving dependent; the
	// simulator reports them as timing, never in the deterministic summary).
	retries          atomic.Uint64
	failovers        atomic.Uint64
	ejections        atomic.Uint64
	probes           atomic.Uint64
	reinstated       atomic.Uint64
	shed             atomic.Uint64
	budgetRejected   atomic.Uint64
	insertsRouted    atomic.Uint64
	unavailable      atomic.Uint64
	verified         atomic.Uint64
	verifyMismatches atomic.Uint64
}

// New builds a fleet of cfg.Replicas live replicas.
func New(cfg Config) *Fleet {
	f := &Fleet{cfg: cfg.withDefaults()}
	f.budget = budget.New(budget.Config{
		Quota:            f.cfg.Serve.BudgetQuota,
		TrustedQuota:     f.cfg.Serve.BudgetTrustedQuota,
		Trusted:          f.cfg.Serve.BudgetTrusted,
		PublicationQuota: f.cfg.Serve.BudgetPublicationQuota,
		Window:           f.cfg.Serve.BudgetWindow,
		SoftFraction:     f.cfg.Serve.BudgetSoftFraction,
		MaxTracked:       f.cfg.Serve.BudgetMaxTracked,
		Clock:            f.cfg.Serve.Clock,
	})
	f.replicas = make([]*replica, f.cfg.Replicas)
	for i := range f.replicas {
		f.replicas[i] = newReplica(i, f.replicaServeConfig())
	}
	f.pubs.m = make(map[string]*pub)
	f.idem.m = make(map[string]*response)
	return f
}

// replicaServeConfig is each replica's serve configuration: the fleet's,
// with budget enforcement disabled — the router's manager is authoritative,
// so a replica must never issue its own 429 for a request the router already
// admitted. The replica ledgers still count; settle overwrites their fields
// with the router's values.
func (f *Fleet) replicaServeConfig() serve.Config {
	cfg := f.cfg.Serve
	cfg.BudgetQuota = -1
	return cfg
}

// Config returns the resolved configuration.
func (f *Fleet) Config() Config { return f.cfg }

// Publish places a publication on its rendezvous holders and builds it on
// every live one, returning the publication id. Dead holders pick it up on
// restart. Publishing the same request twice is a cache hit on every
// holder, exactly as on a single server.
func (f *Fleet) Publish(req serve.PublishRequest) (string, error) {
	if err := req.Normalize(); err != nil {
		return "", err
	}
	id := serve.IDForKey(req.Key())
	holders := placement(id, f.cfg.Replicas, f.cfg.ReplicationFactor)

	f.pubs.mu.Lock()
	p, ok := f.pubs.m[id]
	if !ok {
		p = &pub{req: req, holders: holders}
		f.pubs.m[id] = p
	}
	f.pubs.mu.Unlock()

	for _, h := range p.holders {
		rep := f.replicas[h]
		if !rep.alive.Load() {
			continue
		}
		if err := buildOn(rep.server(), req, 0); err != nil {
			return "", fmt.Errorf("fleet: replica %d: %w", h, err)
		}
	}
	return id, nil
}

// Refresh advances a publication's generation on every live holder. Dead
// holders replay the generation on restart, so holders always converge on
// one generation — the digest-agreement precondition.
func (f *Fleet) Refresh(id string) error {
	p := f.lookup(id)
	if p == nil {
		return fmt.Errorf("fleet: no publication %q", id)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, h := range p.holders {
		rep := f.replicas[h]
		if !rep.alive.Load() {
			continue
		}
		if _, err := rep.server().Refresh(id); err != nil {
			return fmt.Errorf("fleet: replica %d: %w", h, err)
		}
	}
	p.gen++
	p.log = append(p.log, mutation{refresh: true})
	return nil
}

// lookup returns the fleet's record of a publication, or nil.
func (f *Fleet) lookup(id string) *pub {
	f.pubs.mu.RLock()
	defer f.pubs.mu.RUnlock()
	return f.pubs.m[id]
}

// Holders returns the replica indices placed for a publication id
// (placement is pure, so this works for ids not yet published).
func (f *Fleet) Holders(id string) []int {
	return placement(id, f.cfg.Replicas, f.cfg.ReplicationFactor)
}

// KillReplica takes a replica down hard: requests to it fail at the
// transport level until RestartReplica. The router discovers the death
// through consecutive failures and ejects it — kill deliberately does not
// update health state, so the detection path is always exercised.
func (f *Fleet) KillReplica(i int) {
	f.replicas[i].alive.Store(false)
}

// RestartReplica brings a killed replica back with a fresh server and
// deterministically reconstructs its state: every placed publication is
// rebuilt from its request and rolled forward through its mutation log —
// refreshes and insert batches in the exact order the surviving holders
// applied them, so the rebuilt publishers' RNG streams (and therefore the
// digests) match the peers by construction. Health state is left alone —
// the replica rejoins rotation through the probe path, not by fiat.
func (f *Fleet) RestartReplica(i int) error {
	rep := f.replicas[i]
	srv := serve.New(f.replicaServeConfig())

	f.pubs.mu.RLock()
	placed := make([]*pub, 0, len(f.pubs.m))
	for _, p := range f.pubs.m {
		for _, h := range p.holders {
			if h == i {
				placed = append(placed, p)
				break
			}
		}
	}
	f.pubs.mu.RUnlock()
	// Deterministic rebuild order (map iteration is not).
	sort.Slice(placed, func(a, b int) bool {
		return serve.IDForKey(placed[a].req.Key()) < serve.IDForKey(placed[b].req.Key())
	})

	for _, p := range placed {
		p.mu.Lock()
		err := replayOn(srv, p)
		p.mu.Unlock()
		if err != nil {
			return fmt.Errorf("fleet: restart replica %d: %w", i, err)
		}
	}

	rep.mu.Lock()
	rep.srv = srv
	rep.handler = srv.Handler()
	rep.mu.Unlock()
	rep.alive.Store(true)
	return nil
}

// buildOn publishes a request on a server (the generation-0 build shared by
// Publish and restart replay).
func buildOn(s *serve.Server, req serve.PublishRequest, gen int) error {
	e, _, err := s.Publish(req, true)
	if err != nil {
		return err
	}
	pubv, err := e.Publication()
	if err != nil {
		return err
	}
	id := pubv.ID
	for g := pubv.Generation; g < gen; g++ {
		if _, err := s.Refresh(id); err != nil {
			return err
		}
	}
	return nil
}

// replayOn reconstructs one publication on a fresh server: generation-0
// build, then the mutation log in order. Insert batches replay through the
// same /insert handler that applied them live (same validation, same
// publisher Add sequence), so a replayed holder is bit-identical to one
// that never died. The caller holds p.mu.
func replayOn(srv *serve.Server, p *pub) error {
	e, _, err := srv.Publish(p.req, true)
	if err != nil {
		return err
	}
	pubv, err := e.Publication()
	if err != nil {
		return err
	}
	h := srv.Handler()
	for i := range p.log {
		m := &p.log[i]
		if m.refresh {
			if _, err := srv.Refresh(pubv.ID); err != nil {
				return err
			}
			continue
		}
		req, err := http.NewRequest(http.MethodPost, "http://replica/insert", bytes.NewReader(m.body))
		if err != nil {
			return err
		}
		if m.binary {
			req.Header.Set("Content-Type", wire.ContentType)
		} else {
			req.Header.Set("Content-Type", "application/json")
		}
		w := &memWriter{}
		h.ServeHTTP(w, req)
		if w.status >= 400 {
			return fmt.Errorf("replaying insert %d of %q: status %d: %s", i, pubv.ID, w.status, w.buf.String())
		}
	}
	return nil
}

// Publication returns a live holder's built publication — schema and
// parameter access for harnesses that generate workloads against the fleet.
// Holders are bit-identical, so any live one is authoritative.
func (f *Fleet) Publication(id string) (*serve.Publication, error) {
	p := f.lookup(id)
	if p == nil {
		return nil, fmt.Errorf("fleet: no publication %q", id)
	}
	for _, h := range p.holders {
		rep := f.replicas[h]
		if !rep.alive.Load() {
			continue
		}
		e := rep.server().Lookup(id)
		if e == nil {
			continue
		}
		return e.Publication()
	}
	return nil, fmt.Errorf("fleet: no live holder of %q", id)
}

// Alive reports whether replica i is serving.
func (f *Fleet) Alive(i int) bool { return f.replicas[i].alive.Load() }

// InjectLatency makes the next n requests to replica i stall for d before
// serving — the simulator's latency-spike fault.
func (f *Fleet) InjectLatency(i int, d time.Duration, n int) {
	rep := f.replicas[i]
	rep.faults.spike.Store(int64(d))
	rep.faults.spikeN.Add(int64(n))
}

// InjectFailures makes the next n requests to replica i fail at the
// transport level — a crash-mid-request fault.
func (f *Fleet) InjectFailures(i, n int) {
	f.replicas[i].faults.failN.Add(int64(n))
}

// Budget exposes the router's authoritative budget manager for tests and
// harnesses.
func (f *Fleet) Budget() *budget.Manager { return f.budget }

// ClientExposure returns one client's cumulative charged exposure — exact
// for exactly tracked clients, a count-min upper bound past the tracking cap.
func (f *Fleet) ClientExposure(client string) int64 {
	total, _ := f.budget.Estimate(client)
	return total
}

// TotalExposure returns the fleet-wide charged total. By construction it
// equals the sum of per-client ledgers; the simulator asserts exactly that
// against the charges its clients observed.
func (f *Fleet) TotalExposure() int64 { return f.budget.TotalCharged() }

// ReplicaAgreement digest-compares a publication across every live holder:
// all must serve bit-identical marginal cubes at one generation. A nil
// error is the fleet-consistency invariant.
func (f *Fleet) ReplicaAgreement(id string) error {
	p := f.lookup(id)
	if p == nil {
		return fmt.Errorf("fleet: no publication %q", id)
	}
	var digest string
	var gen, first = 0, -1
	for _, h := range p.holders {
		rep := f.replicas[h]
		if !rep.alive.Load() {
			continue
		}
		e := rep.server().Lookup(id)
		if e == nil {
			return fmt.Errorf("fleet: replica %d lost publication %q", h, id)
		}
		pubv, err := e.Publication()
		if err != nil {
			return fmt.Errorf("fleet: replica %d: %w", h, err)
		}
		if first < 0 {
			first, digest, gen = h, pubv.Digest(), pubv.Generation
			continue
		}
		if d := pubv.Digest(); d != digest || pubv.Generation != gen {
			return fmt.Errorf("fleet: %q diverges: replica %d g%d %s vs replica %d g%d %s",
				id, first, gen, digest, h, pubv.Generation, d)
		}
	}
	if first < 0 {
		return fmt.Errorf("fleet: no live holder of %q", id)
	}
	return nil
}

// Stats is the fleet's operational snapshot (/statsz at the router).
type Stats struct {
	Replicas          int    `json:"replicas"`
	ReplicationFactor int    `json:"replication_factor"`
	Publications      int    `json:"publications"`
	Healthy           int    `json:"healthy"`
	Ejected           int    `json:"ejected"`
	Alive             int    `json:"alive"`
	Requests          uint64 `json:"requests"`
	Retries           uint64 `json:"retries"`
	Failovers         uint64 `json:"failovers"`
	Ejections         uint64 `json:"ejections"`
	Probes            uint64 `json:"probes"`
	Reinstated        uint64 `json:"reinstated"`
	Shed              uint64 `json:"shed"`
	// BudgetRejected counts logical requests refused at the router's budget
	// precheck — none of them charged the ledger or reached a replica.
	BudgetRejected uint64 `json:"budget_rejected"`
	// InsertsRouted counts insert batches accepted by at least one holder and
	// appended to a publication's mutation log.
	InsertsRouted    uint64 `json:"inserts_routed"`
	Unavailable      uint64 `json:"unavailable"`
	Verified         uint64 `json:"verified"`
	VerifyMismatches uint64 `json:"verify_mismatches"`
	// Clients counts exactly tracked budget entries (a lower bound on the
	// distinct-client total once the sketch absorbs a tail); TotalCharged is
	// the exact fleet-cumulative charged sum — the same fields the
	// single-server /statsz reports.
	Clients      int   `json:"clients"`
	TotalCharged int64 `json:"total_charged"`
	// Budget is the router's exposure budget manager snapshot, in the same
	// shape the single-server /statsz uses.
	Budget serve.BudgetStatsz `json:"budget"`
}

// Stats snapshots the router's counters.
func (f *Fleet) Stats() Stats {
	out := Stats{
		Replicas:          f.cfg.Replicas,
		ReplicationFactor: f.cfg.ReplicationFactor,
		Requests:          f.requests.Load(),
		Retries:           f.retries.Load(),
		Failovers:         f.failovers.Load(),
		Ejections:         f.ejections.Load(),
		Probes:            f.probes.Load(),
		Reinstated:        f.reinstated.Load(),
		Shed:              f.shed.Load(),
		BudgetRejected:    f.budgetRejected.Load(),
		InsertsRouted:     f.insertsRouted.Load(),
		Unavailable:       f.unavailable.Load(),
		Verified:          f.verified.Load(),
		VerifyMismatches:  f.verifyMismatches.Load(),
	}
	bs := f.budget.Snapshot()
	out.Clients = bs.Tracked
	out.TotalCharged = bs.TotalCharged
	out.Budget = serve.BudgetStatszOf(bs)
	f.pubs.mu.RLock()
	out.Publications = len(f.pubs.m)
	f.pubs.mu.RUnlock()
	for _, rep := range f.replicas {
		if rep.alive.Load() {
			out.Alive++
		}
		switch rep.state.Load() {
		case stateEjected:
			out.Ejected++
		default:
			out.Healthy++
		}
	}
	return out
}
