package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reconpriv/reconpriv/internal/budget"
	"github.com/reconpriv/reconpriv/internal/serve"
	"github.com/reconpriv/reconpriv/internal/wire"
)

// Config tunes the fleet; the zero value is fully usable.
type Config struct {
	// Replicas is the replica count (default 3).
	Replicas int
	// ReplicationFactor is how many replicas hold each publication
	// (default 2, clamped to Replicas).
	ReplicationFactor int
	// EjectAfter is the consecutive transport-failure count that ejects a
	// replica from rotation (default 3).
	EjectAfter int
	// ProbeAfter is the ejection cooldown, measured in requests routed
	// fleet-wide (not wall time, so tests and the simulator stay
	// deterministic): once that many requests have passed, the next
	// request to need the replica probes it (default 16).
	ProbeAfter uint64
	// MaxInFlight bounds concurrent requests per replica; beyond it the
	// router tries the next holder and, with every holder saturated,
	// sheds the request with a typed 429 (default 64).
	MaxInFlight int64
	// MaxAttempts is the per-logical-request attempt budget across all
	// holders (default 5).
	MaxAttempts int
	// Timeout is the per-attempt deadline (default 2s).
	Timeout time.Duration
	// BuildTimeout is the deadline for control-plane operations against
	// one replica — publish, refresh, snapshot, restore, and restart
	// replay — which run builds and must outlast the query timeout
	// (default 2m).
	BuildTimeout time.Duration
	// BackoffBase and BackoffMax shape the capped exponential backoff
	// between attempts (defaults 2ms and 50ms); actual sleeps are jittered
	// deterministically from the request key.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// VerifyEvery samples 1-in-N successful /query and /reconstruct
	// answers for digest comparison against a second holder (default 16;
	// negative disables). Deterministic builds make holders bit-identical,
	// so any mismatch is a real fault.
	VerifyEvery int
	// CheckpointLog bounds each publication's mutation log: when a
	// mutation pushes the log to this many entries, the router snapshots
	// the publication from a live up-to-date holder (POST /snapshot),
	// stores the checkpoint, and truncates the log. Restarts then replay
	// checkpoint + tail instead of the full history. Default 64; negative
	// disables checkpointing (the log grows for the fleet's lifetime).
	CheckpointLog int
	// Serve is each replica's configuration.
	Serve serve.Config
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.ReplicationFactor <= 0 {
		c.ReplicationFactor = 2
	}
	if c.ReplicationFactor > c.Replicas {
		c.ReplicationFactor = c.Replicas
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 3
	}
	if c.ProbeAfter == 0 {
		c.ProbeAfter = 16
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.BuildTimeout <= 0 {
		c.BuildTimeout = 2 * time.Minute
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 2 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 50 * time.Millisecond
	}
	if c.VerifyEvery == 0 {
		c.VerifyEvery = 16
	}
	if c.CheckpointLog == 0 {
		c.CheckpointLog = 64
	}
	return c
}

// fleetMode is how this fleet reaches its replicas.
type fleetMode int

const (
	// modeMem: in-process replicas behind memTransport (New).
	modeMem fleetMode = iota
	// modeProcs: spawned child processes behind httpTransport (NewProcs).
	modeProcs
	// modePeers: attached external servers behind httpTransport (NewPeers).
	modePeers
)

func (m fleetMode) String() string {
	switch m {
	case modeProcs:
		return "spawned"
	case modePeers:
		return "attached"
	default:
		return "in-process"
	}
}

// mutation is one entry of a publication's ordered mutation log: either a
// generation bump or an insert batch (the request body verbatim, so JSON
// and binary firehose batches replay through the same handler path that
// applied them live).
type mutation struct {
	refresh bool
	body    []byte
	binary  bool
}

// pub is the fleet's record of one placed publication: the request to
// rebuild it from (deterministic builds make the request the whole state),
// the latest checkpoint, and the ordered mutation log since that checkpoint
// — refreshes and insert batches, exactly as the live holders applied them.
// A restart replays checkpoint + tail; without a checkpoint it replays the
// request + full log. gen, snap, log, and stale are guarded by mu, which is
// also what serializes mutations into one total order per publication.
type pub struct {
	req     serve.PublishRequest
	holders []int
	mu      sync.Mutex
	gen     int
	// snap is the latest checkpoint — the raw /snapshot response body,
	// POSTed verbatim to /restore on restart — and snapped is the number of
	// checkpoints folded so far.
	snap    []byte
	snapped int
	log     []mutation
	// stale marks live holders that missed a logged mutation (transport
	// failure during fan-out): their state lags the log, so they are never
	// used as a checkpoint source until a restart replays them back into
	// agreement.
	stale map[int]bool
}

// markStale records that holder h missed a logged mutation.
func (p *pub) markStale(h int) {
	if p.stale == nil {
		p.stale = make(map[int]bool)
	}
	p.stale[h] = true
}

// Fleet is a router plus its replicas. Create with New (in-process),
// NewProcs (spawned child processes), or NewPeers (attached addresses); all
// methods are safe for concurrent use.
type Fleet struct {
	cfg      Config
	mode     fleetMode
	replicas []*replica

	// hc is the shared connection-pooled client behind every HTTP
	// transport (nil in in-process mode until needed).
	hc *http.Client

	pubs struct {
		mu sync.RWMutex
		m  map[string]*pub
	}

	// shadow is a lazily built router-local server used only when no
	// in-process holder exists (cross-process modes): harnesses ask the
	// fleet for a *serve.Publication to generate workloads from, and a
	// deterministic generation-0 build on the shadow is bit-identical in
	// schema and parameters to what the holders serve.
	shadow struct {
		mu  sync.Mutex
		srv *serve.Server
	}

	// budget is the authoritative exposure ledger — bounded, quota-enforcing,
	// charged exactly once per logical request. Replicas run with
	// enforcement disabled so the router's decisions are the only ones; a
	// budget 429 is issued here, before any replica is touched, and never
	// charges.
	budget *budget.Manager

	// idem is the bounded idempotency replay cache (see router.go).
	idem struct {
		mu    sync.Mutex
		m     map[string]*response
		order []string
	}

	// requests is the fleet-wide routed-request counter — also the clock
	// probe cooldowns are measured against.
	requests atomic.Uint64

	// Operational counters (wall-clock and interleaving dependent; the
	// simulator reports them as timing, never in the deterministic summary).
	retries          atomic.Uint64
	failovers        atomic.Uint64
	ejections        atomic.Uint64
	probes           atomic.Uint64
	reinstated       atomic.Uint64
	shed             atomic.Uint64
	budgetRejected   atomic.Uint64
	insertsRouted    atomic.Uint64
	unavailable      atomic.Uint64
	verified         atomic.Uint64
	verifyMismatches atomic.Uint64
	checkpoints      atomic.Uint64
}

// newFleet builds the replica-less shell shared by every constructor.
func newFleet(cfg Config, mode fleetMode) *Fleet {
	f := &Fleet{cfg: cfg.withDefaults(), mode: mode}
	f.budget = budget.New(budget.Config{
		Quota:            f.cfg.Serve.BudgetQuota,
		TrustedQuota:     f.cfg.Serve.BudgetTrustedQuota,
		Trusted:          f.cfg.Serve.BudgetTrusted,
		PublicationQuota: f.cfg.Serve.BudgetPublicationQuota,
		Window:           f.cfg.Serve.BudgetWindow,
		SoftFraction:     f.cfg.Serve.BudgetSoftFraction,
		MaxTracked:       f.cfg.Serve.BudgetMaxTracked,
		Clock:            f.cfg.Serve.Clock,
	})
	f.pubs.m = make(map[string]*pub)
	f.idem.m = make(map[string]*response)
	return f
}

// New builds a fleet of cfg.Replicas in-process replicas — the zero-setup
// mode tests and single-binary deployments use.
func New(cfg Config) *Fleet {
	f := newFleet(cfg, modeMem)
	f.replicas = make([]*replica, f.cfg.Replicas)
	for i := range f.replicas {
		f.replicas[i] = newReplica(i, newMemTransport(f.replicaServeConfig()))
	}
	return f
}

// NewProcs builds a fleet of cfg.Replicas replicas, each a spawned child
// process of this binary reached over real sockets (see ChildServeMain).
// KillReplica kills the child process; RestartReplica spawns a fresh one
// and replays its state. Call Close to reap the children.
func NewProcs(cfg Config) (*Fleet, error) {
	f := newFleet(cfg, modeProcs)
	f.hc = newFleetClient(f.cfg.Replicas)
	f.replicas = make([]*replica, f.cfg.Replicas)
	for i := range f.replicas {
		proc, err := spawnChild(f.replicaServeConfig(), f.hc)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet: replica %d: %w", i, err)
		}
		rep := newReplica(i, newHTTPTransport(proc.addr, f.hc))
		rep.proc = proc
		f.replicas[i] = rep
	}
	return f, nil
}

// NewPeers builds a fleet attached to already-running replica servers (one
// base URL per replica, e.g. "http://10.0.0.5:8080"); len(peers) overrides
// cfg.Replicas. The fleet does not manage peer lifecycles: KillReplica only
// detaches a peer, and RestartReplica assumes the operator restarted the
// peer process empty before reattaching (restore targets a fresh replica).
func NewPeers(cfg Config, peers []string) (*Fleet, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("fleet: no peer addresses")
	}
	cfg.Replicas = len(peers)
	f := newFleet(cfg, modePeers)
	f.hc = newFleetClient(f.cfg.Replicas)
	f.replicas = make([]*replica, f.cfg.Replicas)
	for i, base := range peers {
		base = strings.TrimSuffix(base, "/")
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		if err := waitHealthy(base, f.hc, 10*time.Second); err != nil {
			return nil, fmt.Errorf("fleet: peer %d: %w", i, err)
		}
		f.replicas[i] = newReplica(i, newHTTPTransport(base, f.hc))
	}
	return f, nil
}

// Close releases the fleet's resources: spawned child processes are killed
// and reaped, pooled connections closed. Safe to call on any mode.
func (f *Fleet) Close() {
	for _, rep := range f.replicas {
		if rep == nil {
			continue
		}
		rep.mu.Lock()
		if rep.proc != nil {
			rep.proc.kill()
			rep.proc = nil
		}
		if rep.tr != nil {
			rep.tr.close()
		}
		rep.mu.Unlock()
	}
	if f.hc != nil {
		f.hc.CloseIdleConnections()
	}
}

// replicaServeConfig is each replica's serve configuration: the fleet's,
// with budget enforcement disabled — the router's manager is authoritative,
// so a replica must never issue its own 429 for a request the router already
// admitted. The replica ledgers still count; settle overwrites their fields
// with the router's values.
func (f *Fleet) replicaServeConfig() serve.Config {
	cfg := f.cfg.Serve
	cfg.BudgetQuota = -1
	return cfg
}

// Config returns the resolved configuration.
func (f *Fleet) Config() Config { return f.cfg }

// Transport names how this fleet reaches its replicas: "in-process",
// "spawned" (child processes), or "attached" (external peers).
func (f *Fleet) Transport() string { return f.mode.String() }

// jsonHeader is the control plane's request header.
func jsonHeader() http.Header {
	h := make(http.Header, 1)
	h.Set("Content-Type", "application/json")
	return h
}

// roundTrip executes one control-plane exchange on a transport under the
// build deadline.
func (f *Fleet) roundTrip(tr transport, method, path string, hdr http.Header, body []byte) (*response, error) {
	ctx, cancel := context.WithTimeout(context.Background(), f.cfg.BuildTimeout)
	defer cancel()
	return tr.do(ctx, method, path, hdr, body)
}

// control executes one control-plane exchange against a replica's current
// transport (alive-checked, fault injection bypassed).
func (f *Fleet) control(rep *replica, method, path string, hdr http.Header, body []byte) (*response, error) {
	ctx, cancel := context.WithTimeout(context.Background(), f.cfg.BuildTimeout)
	defer cancel()
	return rep.control(ctx, method, path, hdr, body)
}

// controlErr folds a control exchange's transport error and HTTP status
// into one error (nil on 2xx).
func controlErr(resp *response, err error) error {
	if err != nil {
		return err
	}
	if resp.status >= 400 {
		return fmt.Errorf("status %d: %s", resp.status, strings.TrimSpace(string(resp.body)))
	}
	return nil
}

// Publish places a publication on its rendezvous holders and builds it on
// every live one (POST /publish with wait through each holder's transport),
// returning the publication id. Dead holders pick it up on restart.
// Publishing the same request twice is a cache hit on every holder, exactly
// as on a single server.
func (f *Fleet) Publish(req serve.PublishRequest) (string, error) {
	if err := req.Normalize(); err != nil {
		return "", err
	}
	id := serve.IDForKey(req.Key())
	holders := placement(id, f.cfg.Replicas, f.cfg.ReplicationFactor)

	f.pubs.mu.Lock()
	p, ok := f.pubs.m[id]
	if !ok {
		p = &pub{req: req, holders: holders}
		f.pubs.m[id] = p
	}
	f.pubs.mu.Unlock()

	body, err := publishBody(req)
	if err != nil {
		return "", err
	}
	for _, h := range p.holders {
		rep := f.replicas[h]
		if !rep.alive.Load() {
			continue
		}
		if err := controlErr(f.control(rep, http.MethodPost, "/publish", jsonHeader(), body)); err != nil {
			return "", fmt.Errorf("fleet: replica %d: %w", h, err)
		}
	}
	return id, nil
}

// publishBody encodes a publish request with wait set, so the control
// plane's POST /publish blocks until the build settles — the transport
// analogue of serve.Publish(req, true).
func publishBody(req serve.PublishRequest) ([]byte, error) {
	req.Wait = true
	return json.Marshal(req)
}

// Refresh advances a publication's generation on every live holder (POST
// /refresh with wait through each holder's transport). A holder that fails
// at the transport level misses the refresh, is marked stale, and converges
// on restart via log replay; a holder that rejects it (deterministic
// validation) fails the whole refresh, which is then not logged. Dead
// holders replay the generation on restart, so holders always converge on
// one generation — the digest-agreement precondition.
func (f *Fleet) Refresh(id string) error {
	p := f.lookup(id)
	if p == nil {
		return fmt.Errorf("fleet: no publication %q", id)
	}
	body, err := json.Marshal(map[string]any{"id": id, "wait": true})
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	applied := false
	var missed []int
	for _, h := range p.holders {
		rep := f.replicas[h]
		if !rep.alive.Load() {
			continue
		}
		resp, err := f.control(rep, http.MethodPost, "/refresh", jsonHeader(), body)
		if err != nil {
			missed = append(missed, h)
			continue
		}
		if resp.status >= 400 {
			return fmt.Errorf("fleet: replica %d: refresh %q: status %d: %s",
				h, id, resp.status, strings.TrimSpace(string(resp.body)))
		}
		applied = true
	}
	if !applied {
		return fmt.Errorf("fleet: no live holder of %q applied the refresh", id)
	}
	for _, h := range missed {
		p.markStale(h)
	}
	p.gen++
	p.log = append(p.log, mutation{refresh: true})
	f.maybeCheckpoint(id, p)
	return nil
}

// maybeCheckpoint folds a publication's mutation log into a stored
// snapshot once it reaches the configured length: POST /snapshot to the
// first live, non-stale holder captures request + generation + streaming
// state under the same p.mu that serializes mutations (so the checkpoint
// can never straddle one), and on success the log is truncated. Failure
// leaves the log intact — the next mutation retries, and restart replay
// falls back to the full history. The caller holds p.mu.
func (f *Fleet) maybeCheckpoint(id string, p *pub) {
	if f.cfg.CheckpointLog <= 0 || len(p.log) < f.cfg.CheckpointLog {
		return
	}
	body, err := json.Marshal(map[string]string{"id": id})
	if err != nil {
		return
	}
	for _, h := range p.holders {
		rep := f.replicas[h]
		if !rep.alive.Load() || p.stale[h] {
			continue
		}
		resp, err := f.control(rep, http.MethodPost, "/snapshot", jsonHeader(), body)
		if err != nil || resp.status != http.StatusOK {
			continue
		}
		p.snap = resp.body
		p.snapped++
		p.log = nil
		f.checkpoints.Add(1)
		return
	}
}

// MutationLogLen reports the current mutation-log length of a publication
// (entries since the last checkpoint), or -1 for an unknown id. With
// checkpointing enabled this stays below Config.CheckpointLog except
// transiently while every checkpoint source is dead or stale.
func (f *Fleet) MutationLogLen(id string) int {
	p := f.lookup(id)
	if p == nil {
		return -1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.log)
}

// lookup returns the fleet's record of a publication, or nil.
func (f *Fleet) lookup(id string) *pub {
	f.pubs.mu.RLock()
	defer f.pubs.mu.RUnlock()
	return f.pubs.m[id]
}

// Holders returns the replica indices placed for a publication id
// (placement is pure, so this works for ids not yet published).
func (f *Fleet) Holders(id string) []int {
	return placement(id, f.cfg.Replicas, f.cfg.ReplicationFactor)
}

// KillReplica takes a replica down hard: for spawned children the process
// is killed — a real exit, sockets and all — and for every mode requests to
// it fail at the transport level until RestartReplica. The router discovers
// the death through consecutive failures and ejects it — kill deliberately
// does not update health state, so the detection path is always exercised.
func (f *Fleet) KillReplica(i int) {
	rep := f.replicas[i]
	rep.alive.Store(false)
	rep.mu.Lock()
	if rep.proc != nil {
		rep.proc.kill()
		rep.proc = nil
	}
	rep.mu.Unlock()
}

// RestartReplica brings a killed replica back — a fresh in-process server,
// a freshly spawned child process, or a reattached peer, by mode — and
// deterministically reconstructs its state before it serves: every placed
// publication is restored from its latest checkpoint (POST /restore) and
// rolled forward through the mutation-log tail, or rebuilt from its request
// and the full log when no checkpoint exists. Replay runs over the new
// transport before it is swapped in, so the replica is never visible
// half-built. Health state is left alone — the replica rejoins rotation
// through the probe path, not by fiat.
func (f *Fleet) RestartReplica(i int) error {
	rep := f.replicas[i]

	var tr transport
	var proc *childProc
	switch f.mode {
	case modeProcs:
		p, err := spawnChild(f.replicaServeConfig(), f.hc)
		if err != nil {
			return fmt.Errorf("fleet: restart replica %d: %w", i, err)
		}
		tr, proc = newHTTPTransport(p.addr, f.hc), p
	case modePeers:
		old, ok := rep.transport().(*httpTransport)
		if !ok {
			return fmt.Errorf("fleet: restart replica %d: no peer address", i)
		}
		if err := waitHealthy(old.base, f.hc, 10*time.Second); err != nil {
			return fmt.Errorf("fleet: restart replica %d: %w", i, err)
		}
		tr = newHTTPTransport(old.base, f.hc)
	default:
		tr = newMemTransport(f.replicaServeConfig())
	}

	// Replay and swap under every placed publication's mutation lock (and a
	// read lock on the pub table, so no new placement slips past the
	// snapshot). A mutation concurrent with the restart either completed
	// before the locks were taken — then it is in the log and replayed — or
	// blocks until the replica is alive and fans out to it normally. Without
	// the locks there is a window after a publication's replay and before
	// alive flips in which a mutation skips the replica and is never
	// repaired, leaving it permanently divergent. Mutation paths lock one
	// publication at a time, so taking them all here cannot deadlock.
	f.pubs.mu.RLock()
	defer f.pubs.mu.RUnlock()
	placed := make([]*pub, 0, len(f.pubs.m))
	for _, p := range f.pubs.m {
		for _, h := range p.holders {
			if h == i {
				placed = append(placed, p)
				break
			}
		}
	}
	// Deterministic rebuild order (map iteration is not).
	sort.Slice(placed, func(a, b int) bool {
		return serve.IDForKey(placed[a].req.Key()) < serve.IDForKey(placed[b].req.Key())
	})
	for _, p := range placed {
		p.mu.Lock()
		defer p.mu.Unlock()
	}

	for _, p := range placed {
		if err := f.replayOn(tr, p); err != nil {
			if proc != nil {
				proc.kill()
			}
			return fmt.Errorf("fleet: restart replica %d: %w", i, err)
		}
		delete(p.stale, i)
	}

	rep.mu.Lock()
	rep.tr = tr
	rep.proc = proc
	rep.mu.Unlock()
	rep.alive.Store(true)
	return nil
}

// replayOn reconstructs one publication on a fresh replica through its
// transport: restore the latest checkpoint (or the generation-0 build when
// none exists), then the mutation-log tail in order. Insert batches replay
// through the same /insert handler that applied them live — same
// validation, same publisher Add sequence, original encoding — so a
// replayed holder is digest-identical to one that never died. The caller
// holds p.mu.
func (f *Fleet) replayOn(tr transport, p *pub) error {
	id := serve.IDForKey(p.req.Key())
	if p.snap != nil {
		if err := controlErr(f.roundTrip(tr, http.MethodPost, "/restore", jsonHeader(), p.snap)); err != nil {
			return fmt.Errorf("restoring checkpoint of %q: %w", id, err)
		}
	} else {
		body, err := publishBody(p.req)
		if err != nil {
			return err
		}
		if err := controlErr(f.roundTrip(tr, http.MethodPost, "/publish", jsonHeader(), body)); err != nil {
			return fmt.Errorf("rebuilding %q: %w", id, err)
		}
	}
	refreshBody, err := json.Marshal(map[string]any{"id": id, "wait": true})
	if err != nil {
		return err
	}
	for i := range p.log {
		m := &p.log[i]
		if m.refresh {
			if err := controlErr(f.roundTrip(tr, http.MethodPost, "/refresh", jsonHeader(), refreshBody)); err != nil {
				return fmt.Errorf("replaying refresh %d of %q: %w", i, id, err)
			}
			continue
		}
		hdr := make(http.Header, 1)
		if m.binary {
			hdr.Set("Content-Type", wire.ContentType)
		} else {
			hdr.Set("Content-Type", "application/json")
		}
		if err := controlErr(f.roundTrip(tr, http.MethodPost, "/insert", hdr, m.body)); err != nil {
			return fmt.Errorf("replaying insert %d of %q: %w", i, id, err)
		}
	}
	return nil
}

// Publication returns a built publication value — schema and parameter
// access for harnesses that generate workloads against the fleet. With an
// in-process holder alive its publication is returned directly; in
// cross-process modes an equivalent is built once on a router-local shadow
// server (deterministic builds make schema and parameters identical; the
// shadow stays at generation 0 and is never mutated).
func (f *Fleet) Publication(id string) (*serve.Publication, error) {
	p := f.lookup(id)
	if p == nil {
		return nil, fmt.Errorf("fleet: no publication %q", id)
	}
	live := false
	for _, h := range p.holders {
		rep := f.replicas[h]
		if !rep.alive.Load() {
			continue
		}
		live = true
		srv := rep.server()
		if srv == nil {
			continue
		}
		if e := srv.Lookup(id); e != nil {
			return e.Publication()
		}
	}
	if !live {
		return nil, fmt.Errorf("fleet: no live holder of %q", id)
	}
	return f.shadowPublication(p)
}

// shadowPublication builds p on the router-local shadow server.
func (f *Fleet) shadowPublication(p *pub) (*serve.Publication, error) {
	f.shadow.mu.Lock()
	defer f.shadow.mu.Unlock()
	if f.shadow.srv == nil {
		f.shadow.srv = serve.New(f.replicaServeConfig())
	}
	e, _, err := f.shadow.srv.Publish(p.req, true)
	if err != nil {
		return nil, err
	}
	return e.Publication()
}

// Alive reports whether replica i is serving.
func (f *Fleet) Alive(i int) bool { return f.replicas[i].alive.Load() }

// InjectLatency makes the next n requests to replica i stall for d before
// serving — the simulator's latency-spike fault.
func (f *Fleet) InjectLatency(i int, d time.Duration, n int) {
	rep := f.replicas[i]
	rep.faults.spike.Store(int64(d))
	rep.faults.spikeN.Add(int64(n))
}

// InjectFailures makes the next n requests to replica i fail at the
// transport level — a crash-mid-request fault.
func (f *Fleet) InjectFailures(i, n int) {
	f.replicas[i].faults.failN.Add(int64(n))
}

// Budget exposes the router's authoritative budget manager for tests and
// harnesses.
func (f *Fleet) Budget() *budget.Manager { return f.budget }

// ClientExposure returns one client's cumulative charged exposure — exact
// for exactly tracked clients, a count-min upper bound past the tracking cap.
func (f *Fleet) ClientExposure(client string) int64 {
	total, _ := f.budget.Estimate(client)
	return total
}

// TotalExposure returns the fleet-wide charged total. By construction it
// equals the sum of per-client ledgers; the simulator asserts exactly that
// against the charges its clients observed.
func (f *Fleet) TotalExposure() int64 { return f.budget.TotalCharged() }

// ReplicaAgreement digest-compares a publication across every live holder
// (GET /digest through each transport, which re-indexes dirty incremental
// state first, so acknowledged inserts are covered): all must serve
// bit-identical marginal cubes at one generation. A nil error is the
// fleet-consistency invariant.
func (f *Fleet) ReplicaAgreement(id string) error {
	p := f.lookup(id)
	if p == nil {
		return fmt.Errorf("fleet: no publication %q", id)
	}
	path := "/digest?id=" + url.QueryEscape(id)
	var digest string
	var gen, first = 0, -1
	for _, h := range p.holders {
		rep := f.replicas[h]
		if !rep.alive.Load() {
			continue
		}
		resp, err := f.control(rep, http.MethodGet, path, nil, nil)
		if err != nil {
			return fmt.Errorf("fleet: replica %d: %w", h, err)
		}
		if resp.status == http.StatusNotFound {
			return fmt.Errorf("fleet: replica %d lost publication %q", h, id)
		}
		if resp.status != http.StatusOK {
			return fmt.Errorf("fleet: replica %d: digest %q: status %d: %s",
				h, id, resp.status, strings.TrimSpace(string(resp.body)))
		}
		var d struct {
			Generation int    `json:"generation"`
			Digest     string `json:"digest"`
		}
		if err := json.Unmarshal(resp.body, &d); err != nil {
			return fmt.Errorf("fleet: replica %d: decoding digest: %w", h, err)
		}
		if first < 0 {
			first, digest, gen = h, d.Digest, d.Generation
			continue
		}
		if d.Digest != digest || d.Generation != gen {
			return fmt.Errorf("fleet: %q diverges: replica %d g%d %s vs replica %d g%d %s",
				id, first, gen, digest, h, d.Generation, d.Digest)
		}
	}
	if first < 0 {
		return fmt.Errorf("fleet: no live holder of %q", id)
	}
	return nil
}

// Stats is the fleet's operational snapshot (/statsz at the router).
type Stats struct {
	Replicas          int `json:"replicas"`
	ReplicationFactor int `json:"replication_factor"`
	// Transport is how replicas are reached: in-process, spawned, attached.
	Transport    string `json:"transport"`
	Publications int    `json:"publications"`
	Healthy      int    `json:"healthy"`
	Ejected      int    `json:"ejected"`
	Alive        int    `json:"alive"`
	Requests     uint64 `json:"requests"`
	Retries      uint64 `json:"retries"`
	Failovers    uint64 `json:"failovers"`
	Ejections    uint64 `json:"ejections"`
	Probes       uint64 `json:"probes"`
	Reinstated   uint64 `json:"reinstated"`
	Shed         uint64 `json:"shed"`
	// BudgetRejected counts logical requests refused at the router's budget
	// precheck — none of them charged the ledger or reached a replica.
	BudgetRejected uint64 `json:"budget_rejected"`
	// InsertsRouted counts insert batches accepted by at least one holder and
	// appended to a publication's mutation log.
	InsertsRouted uint64 `json:"inserts_routed"`
	// Checkpoints counts mutation logs folded into stored snapshots.
	Checkpoints      uint64 `json:"checkpoints"`
	Unavailable      uint64 `json:"unavailable"`
	Verified         uint64 `json:"verified"`
	VerifyMismatches uint64 `json:"verify_mismatches"`
	// Clients counts exactly tracked budget entries (a lower bound on the
	// distinct-client total once the sketch absorbs a tail); TotalCharged is
	// the exact fleet-cumulative charged sum — the same fields the
	// single-server /statsz reports.
	Clients      int   `json:"clients"`
	TotalCharged int64 `json:"total_charged"`
	// Budget is the router's exposure budget manager snapshot, in the same
	// shape the single-server /statsz uses.
	Budget serve.BudgetStatsz `json:"budget"`
}

// Stats snapshots the router's counters.
func (f *Fleet) Stats() Stats {
	out := Stats{
		Replicas:          f.cfg.Replicas,
		ReplicationFactor: f.cfg.ReplicationFactor,
		Transport:         f.mode.String(),
		Requests:          f.requests.Load(),
		Retries:           f.retries.Load(),
		Failovers:         f.failovers.Load(),
		Ejections:         f.ejections.Load(),
		Probes:            f.probes.Load(),
		Reinstated:        f.reinstated.Load(),
		Shed:              f.shed.Load(),
		BudgetRejected:    f.budgetRejected.Load(),
		InsertsRouted:     f.insertsRouted.Load(),
		Checkpoints:       f.checkpoints.Load(),
		Unavailable:       f.unavailable.Load(),
		Verified:          f.verified.Load(),
		VerifyMismatches:  f.verifyMismatches.Load(),
	}
	bs := f.budget.Snapshot()
	out.Clients = bs.Tracked
	out.TotalCharged = bs.TotalCharged
	out.Budget = serve.BudgetStatszOf(bs)
	f.pubs.mu.RLock()
	out.Publications = len(f.pubs.m)
	f.pubs.mu.RUnlock()
	for _, rep := range f.replicas {
		if rep.alive.Load() {
			out.Alive++
		}
		switch rep.state.Load() {
		case stateEjected:
			out.Ejected++
		default:
			out.Healthy++
		}
	}
	return out
}
