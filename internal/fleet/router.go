package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"time"

	"github.com/reconpriv/reconpriv/internal/budget"
	"github.com/reconpriv/reconpriv/internal/par"
	"github.com/reconpriv/reconpriv/internal/serve"
	"github.com/reconpriv/reconpriv/internal/stats"
	"github.com/reconpriv/reconpriv/internal/wire"
)

// maxBodyBytes bounds proxied request bodies (matches the serve limit).
const maxBodyBytes = 64 << 20

// maxIdempotencyEntries bounds the replay cache; beyond it the oldest
// entries are evicted FIFO.
const maxIdempotencyEntries = 4096

// Handler returns the fleet's HTTP surface: the routed read endpoints
// (/query, /reconstruct, /audit), the fan-out write endpoints (/publish,
// /refresh, /insert), and fleet-level /healthz and /statsz. Bodies and
// codes match the single-server serve surface, so clients move between one
// server and a fleet without changes.
func (f *Fleet) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", f.proxyHandler("/query"))
	mux.HandleFunc("/reconstruct", f.proxyHandler("/reconstruct"))
	mux.HandleFunc("/audit", f.proxyHandler("/audit"))
	mux.HandleFunc("/publish", f.handlePublish)
	mux.HandleFunc("/refresh", f.handleRefresh)
	mux.HandleFunc("/insert", f.handleInsert)
	mux.HandleFunc("/publications", f.handlePublications)
	mux.HandleFunc("/healthz", f.handleHealthz)
	mux.HandleFunc("/statsz", f.handleStatsz)
	return mux
}

// requestHead is the slice of a routed body the router itself reads: the
// publication id to place the request and the client for the ledger.
type requestHead struct {
	ID     string `json:"id"`
	Client string `json:"client"`
}

func (f *Fleet) proxyHandler(path string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		f.proxy(w, r, path)
	}
}

// proxy routes one logical request: place by publication id, fail over
// across holders with timeouts and jittered backoff, charge exposure
// exactly once on the first decoded success, and digest-verify a sampled
// fraction of answers against a second holder.
func (f *Fleet) proxy(w http.ResponseWriter, r *http.Request, path string) {
	f.requests.Add(1)
	if r.Method != http.MethodPost {
		serve.WriteError(w, http.StatusMethodNotAllowed, serve.CodeMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, serve.CodeBadRequest, fmt.Errorf("reading body: %v", err))
		return
	}
	// The router reads only the routing head — publication id and client —
	// whatever the encoding; the rest of the body is opaque and forwarded
	// byte-for-byte to the chosen replica.
	var head requestHead
	binary := r.Header.Get("Content-Type") == wire.ContentType
	if binary {
		h, err := wire.PeekHead(body)
		if err != nil {
			serve.WriteError(w, http.StatusBadRequest, serve.CodeBadRequest, fmt.Errorf("bad binary frame: %w", err))
			return
		}
		head = requestHead{ID: string(h.ID), Client: string(h.Client)}
	} else if err := json.Unmarshal(body, &head); err != nil {
		serve.WriteError(w, http.StatusBadRequest, serve.CodeBadRequest, fmt.Errorf("bad request body: %v", err))
		return
	}
	p := f.lookup(head.ID)
	if p == nil {
		serve.WriteError(w, http.StatusNotFound, serve.CodeNotFound, fmt.Errorf("no publication %q", head.ID))
		return
	}

	// Idempotent replay: a client resend with the same key gets the stored
	// response — same answers, same cumulative exposure — without touching
	// a replica or the ledger.
	idemKey := r.Header.Get("X-Idempotency-Key")
	if idemKey != "" {
		if cached := f.idemGet(idemKey); cached != nil {
			emit(w, cached)
			return
		}
	}

	client := head.Client
	if h := r.Header.Get("X-Client-ID"); h != "" {
		client = h
	}
	if client == "" {
		client = "fleet"
	}

	// Budget precheck before any replica is touched: a client already at
	// quota gets the typed 429 with a window-derived Retry-After, pays no
	// replica work, and is never charged. The rejection is deliberately not
	// idempotency-cached — a resend after the window turns is a fresh
	// request and must be re-admitted. The actual charge lands in settle
	// (force-charged, since the batch size is only known from the response),
	// so one admitted oversized batch can overshoot; the next precheck stops
	// the client.
	if path != "/audit" {
		class := budget.ClassQuery
		if path == "/reconstruct" {
			class = budget.ClassReconstruct
		}
		if res := f.budget.Precheck(client, head.ID, class); !res.OK {
			f.budgetRejected.Add(1)
			serve.WriteErrorRetryAfter(w, http.StatusTooManyRequests, serve.CodeBudgetExhausted,
				fmt.Errorf("client %q over exposure budget (%s): window usage %d of quota %d",
					client, res.Reason, res.WindowUsed, res.Quota),
				res.RetryAfter)
			return
		}
	}

	// keyHash seeds the backoff jitter, the holder rotation, and the
	// verification sample — all deterministic functions of the logical
	// request, never of wall time.
	keyHash := fnv64(idemKey)
	if idemKey == "" {
		keyHash = fnv64(string(body))
	}

	hdr := make(http.Header, 2)
	if binary {
		hdr.Set("Content-Type", wire.ContentType)
	} else {
		hdr.Set("Content-Type", "application/json")
	}
	if h := r.Header.Get("X-Client-ID"); h != "" {
		hdr.Set("X-Client-ID", h)
	}

	lastCode, lastMsg := serve.CodeUnavailable, "no live holder"
	for attempt := 0; attempt < f.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			f.retries.Add(1)
			time.Sleep(f.backoff(keyHash, attempt))
		}
		rep, saturated := f.pick(p.holders, keyHash, attempt)
		if rep == nil {
			if saturated {
				// Every admissible holder is at capacity: shed now rather
				// than queue retries behind an overload. Retry-After is the
				// full backoff schedule a queued retry would have burned —
				// the soonest a resend is likely to find a free slot.
				f.shed.Add(1)
				serve.WriteErrorRetryAfter(w, http.StatusTooManyRequests, serve.CodeOverloaded,
					fmt.Errorf("all %d holders of %q at capacity", len(p.holders), head.ID),
					time.Duration(f.cfg.MaxAttempts)*f.cfg.BackoffMax)
				return
			}
			continue
		}

		rep.inflight.Add(1)
		ctx, cancel := context.WithTimeout(r.Context(), f.cfg.Timeout)
		resp, err := rep.do(ctx, http.MethodPost, path, hdr, body)
		cancel()
		rep.inflight.Add(-1)

		if err != nil {
			f.noteFailure(rep)
			lastCode, lastMsg = serve.CodeUnavailable, err.Error()
			continue
		}
		if resp.status >= 400 {
			code := serve.DecodeErrorCode(resp.status, resp.body)
			if code.Retryable() {
				// Handler-level transient (still building, draining): the
				// replica process is fine, so health is untouched.
				lastCode, lastMsg = code, fmt.Sprintf("replica %d: %s", rep.idx, code)
				continue
			}
			// Permanent: the replica answered definitively; relay verbatim.
			f.noteSuccess(rep)
			emit(w, resp)
			return
		}

		f.noteSuccess(rep)
		if attempt > 0 {
			f.failovers.Add(1)
		}
		final := f.settle(path, head.ID, p, rep, keyHash, hdr, body, resp, client)
		if idemKey != "" {
			f.idemPut(idemKey, final)
		}
		emit(w, final)
		return
	}
	f.unavailable.Add(1)
	serve.WriteError(w, http.StatusServiceUnavailable, serve.CodeUnavailable,
		fmt.Errorf("publication %q unavailable after %d attempts (last: %s: %s)",
			head.ID, f.cfg.MaxAttempts, lastCode, lastMsg))
}

// pick selects the next attempt's replica among a publication's holders:
// rotation starts at a key-derived offset, ejected replicas are skipped
// until their probe cooldown expires (then exactly one request wins the
// ejected→probing transition and carries the probe), and saturated
// replicas are skipped with the fact recorded so the caller can
// distinguish overload (shed) from death (retry, then unavailable).
func (f *Fleet) pick(holders []int, keyHash uint64, attempt int) (rep *replica, saturated bool) {
	start := int((keyHash + uint64(attempt)) % uint64(len(holders)))
	now := f.requests.Load()
	for k := 0; k < len(holders); k++ {
		cand := f.replicas[holders[(start+k)%len(holders)]]
		switch cand.state.Load() {
		case stateEjected:
			if now-cand.ejectedAt.Load() < f.cfg.ProbeAfter {
				continue
			}
			if !cand.state.CompareAndSwap(stateEjected, stateProbing) {
				continue
			}
			f.probes.Add(1)
			return cand, saturated
		case stateProbing:
			// Someone else's probe is in flight; one trial at a time.
			continue
		default:
			if cand.inflight.Load() >= f.cfg.MaxInFlight {
				saturated = true
				continue
			}
			return cand, saturated
		}
	}
	return nil, saturated
}

// backoff computes the sleep before retry attempt n: capped exponential in
// the attempt, scaled by a deterministic jitter fraction in [0.5, 1.0)
// drawn from the request key — no shared RNG, no lock, and identical
// requests back off identically.
func (f *Fleet) backoff(keyHash uint64, attempt int) time.Duration {
	d := f.cfg.BackoffBase << (attempt - 1)
	if d <= 0 || d > f.cfg.BackoffMax {
		d = f.cfg.BackoffMax
	}
	frac := 0.5 + float64(par.Mix64(keyHash+uint64(attempt))&1023)/2048
	return time.Duration(float64(d) * frac)
}

// noteFailure records one transport-level failure: EjectAfter consecutive
// failures eject a healthy replica; a failed probe re-ejects immediately
// and restarts the cooldown.
func (f *Fleet) noteFailure(rep *replica) {
	n := rep.fails.Add(1)
	switch rep.state.Load() {
	case stateProbing:
		rep.ejectedAt.Store(f.requests.Load())
		rep.state.Store(stateEjected)
	case stateHealthy:
		if n >= int32(f.cfg.EjectAfter) && rep.state.CompareAndSwap(stateHealthy, stateEjected) {
			rep.ejectedAt.Store(f.requests.Load())
			f.ejections.Add(1)
		}
	}
}

// noteSuccess resets the failure streak and reinstates a probing replica.
func (f *Fleet) noteSuccess(rep *replica) {
	rep.fails.Store(0)
	if rep.state.Load() != stateHealthy && rep.state.CompareAndSwap(stateProbing, stateHealthy) {
		f.reinstated.Add(1)
	}
}

// settle finishes a successful routed response: charge the router's budget
// manager exactly once, rewrite the exposure fields to the authoritative
// values, and digest-verify a sampled fraction against a second holder.
// Responses without a charged field (audits) pass through unchanged. The
// charge is force-applied (ChargeServed): the replica already did the work,
// so the ledger must record it even when it overshoots the quota — the
// precheck in proxy stops the client on its next request.
func (f *Fleet) settle(path, id string, p *pub, rep *replica, keyHash uint64, hdr http.Header, reqBody []byte, resp *response, client string) *response {
	if f.cfg.VerifyEvery > 0 && path != "/audit" && keyHash%uint64(f.cfg.VerifyEvery) == 0 {
		f.verify(path, p, rep.idx, hdr, reqBody, resp.body)
	}

	// Binary responses carry the ledger at a fixed offset: read the charge,
	// apply it to the router's ledger, and patch the authoritative totals
	// back in place — no re-encoding of the answer block.
	if wire.IsFrame(resp.body) {
		led, err := wire.ReadLedger(resp.body)
		if err != nil || led.Charged == 0 {
			return resp
		}
		res := f.budget.ChargeServed(client, id, int64(led.Charged), classFor(path))
		total, remaining, exact, warn := f.ledgerValues(res)
		wrem := uint64(remaining)
		if remaining < 0 {
			wrem = wire.UnlimitedBudget
		}
		body, err := wire.PatchLedger(resp.body, []byte(client), uint64(total), wrem, warn, exact)
		if err != nil {
			return resp
		}
		return &response{status: resp.status, header: resp.header, body: body}
	}

	var doc map[string]any
	if err := json.Unmarshal(resp.body, &doc); err != nil {
		return resp
	}
	charged, ok := doc["charged"].(float64)
	if !ok || charged <= 0 {
		return resp
	}
	res := f.budget.ChargeServed(client, id, int64(charged), classFor(path))
	total, remaining, exact, warn := f.ledgerValues(res)
	doc["client_queries"] = total
	doc["client"] = client
	doc["budget_remaining"] = remaining
	if exact {
		doc["budget_exact"] = true
	} else {
		delete(doc, "budget_exact")
	}
	if warn {
		doc["exposure_warning"] = true
	} else {
		delete(doc, "exposure_warning")
	}
	body, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return resp
	}
	return &response{status: resp.status, header: resp.header, body: append(body, '\n')}
}

// classFor maps a routed path onto the budget charge class: reconstruction
// is the first class shed as a client nears quota.
func classFor(path string) budget.Class {
	if path == "/reconstruct" {
		return budget.ClassReconstruct
	}
	return budget.ClassQuery
}

// ledgerValues converts a budget result into response ledger fields, with
// serve's conventions: -1 remaining means enforcement is disabled, and the
// warning compares the cumulative total against the serve threshold.
func (f *Fleet) ledgerValues(res budget.Result) (total, remaining int64, exact, warn bool) {
	total = res.Total
	remaining = res.Remaining
	if remaining == budget.Unlimited {
		remaining = -1
	}
	w := f.exposureWarn()
	return total, remaining, res.Exact, w > 0 && total > w
}

// exposureWarn resolves the warning threshold with serve's semantics
// (0 = default 50000, negative = disabled).
func (f *Fleet) exposureWarn() int64 {
	w := f.cfg.Serve.ExposureWarn
	if w == 0 {
		return 50000
	}
	return w
}

// verify replays a sampled request against a second live holder and
// compares answer digests. Deterministic builds make replicas
// bit-identical, so any mismatch is real corruption — counted, never
// masked. Verification failures to reach a second holder are skipped;
// this is sampling, not a quorum.
func (f *Fleet) verify(path string, p *pub, primary int, hdr http.Header, reqBody, primaryBody []byte) {
	want, ok := answersDigest(path, primaryBody)
	if !ok {
		return
	}
	for _, h := range p.holders {
		rep := f.replicas[h]
		if h == primary || !rep.alive.Load() || rep.state.Load() != stateHealthy {
			continue
		}
		vh := make(http.Header, len(hdr)+1)
		for k, vs := range hdr {
			vh[k] = vs
		}
		vh.Set("X-Fleet-Verify", "1")
		rep.inflight.Add(1)
		ctx, cancel := context.WithTimeout(context.Background(), f.cfg.Timeout)
		resp, err := rep.do(ctx, http.MethodPost, path, vh, reqBody)
		cancel()
		rep.inflight.Add(-1)
		if err != nil || resp.status != http.StatusOK {
			return
		}
		got, ok := answersDigest(path, resp.body)
		if !ok {
			return
		}
		f.verified.Add(1)
		if got != want {
			f.verifyMismatches.Add(1)
		}
		return
	}
}

// answersDigest fingerprints the replica-determined content of a routed
// response — counts and estimates for /query, sizes and frequency maps for
// /reconstruct — excluding router-owned fields (client_queries, timing).
// Verification replays the original request body, so both digests of a pair
// are computed from the same encoding; for /query the binary digest folds
// the very words the JSON one does, making it stable across encodings too
// (the /reconstruct encodings key frequencies differently — labels against
// dense value codes — so only same-encoding pairs compare there).
func answersDigest(path string, body []byte) (uint64, bool) {
	if wire.IsFrame(body) {
		return binaryAnswersDigest(path, body)
	}
	d := stats.NewDigest()
	switch path {
	case "/query":
		var qr serve.QueryResponse
		if json.Unmarshal(body, &qr) != nil {
			return 0, false
		}
		for i := range qr.Answers {
			a := &qr.Answers[i]
			d.Word(uint64(a.Count))
			d.Word(math.Float64bits(a.Estimate))
			d.Word(fnv64(a.Error))
		}
	case "/reconstruct":
		var rr serve.ReconstructResponse
		if json.Unmarshal(body, &rr) != nil {
			return 0, false
		}
		for i := range rr.Results {
			res := &rr.Results[i]
			d.Word(uint64(res.Size))
			keys := make([]string, 0, len(res.Freqs))
			for k := range res.Freqs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				d.Word(fnv64(k))
				d.Word(math.Float64bits(res.Freqs[k]))
			}
			d.Word(fnv64(res.Error))
		}
	default:
		return 0, false
	}
	return d.Sum64(), true
}

// binaryAnswersDigest is the wire-frame arm of answersDigest.
func binaryAnswersDigest(path string, body []byte) (uint64, bool) {
	d := stats.NewDigest()
	switch path {
	case "/query":
		var qr wire.QueryResp
		if qr.Decode(body) != nil {
			return 0, false
		}
		for i := range qr.Answers {
			a := &qr.Answers[i]
			d.Word(uint64(a.Count))
			d.Word(math.Float64bits(a.Estimate))
			d.Word(fnv64(string(a.Err)))
		}
	case "/reconstruct":
		var rr wire.ReconstructResp
		if rr.Decode(body) != nil {
			return 0, false
		}
		for i := range rr.Results {
			res := &rr.Results[i]
			d.Word(uint64(res.Size))
			for v, freq := range res.Freqs {
				d.Word(uint64(v))
				d.Word(math.Float64bits(freq))
			}
			d.Word(fnv64(string(res.Err)))
		}
	default:
		return 0, false
	}
	return d.Sum64(), true
}

// --- idempotency replay cache ---

func (f *Fleet) idemGet(key string) *response {
	f.idem.mu.Lock()
	defer f.idem.mu.Unlock()
	return f.idem.m[key]
}

func (f *Fleet) idemPut(key string, resp *response) {
	f.idem.mu.Lock()
	defer f.idem.mu.Unlock()
	if _, ok := f.idem.m[key]; ok {
		return
	}
	for len(f.idem.order) >= maxIdempotencyEntries {
		oldest := f.idem.order[0]
		f.idem.order = f.idem.order[1:]
		delete(f.idem.m, oldest)
	}
	f.idem.m[key] = resp
	f.idem.order = append(f.idem.order, key)
}

// emit writes a stored response.
func emit(w http.ResponseWriter, resp *response) {
	for k, vs := range resp.header {
		w.Header()[k] = vs
	}
	if w.Header().Get("Content-Type") == "" {
		w.Header().Set("Content-Type", "application/json")
	}
	w.WriteHeader(resp.status)
	w.Write(resp.body)
}

// --- fan-out and fleet-level endpoints ---

func (f *Fleet) handlePublish(w http.ResponseWriter, r *http.Request) {
	f.requests.Add(1)
	if r.Method != http.MethodPost {
		serve.WriteError(w, http.StatusMethodNotAllowed, serve.CodeMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var req serve.PublishRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		serve.WriteError(w, http.StatusBadRequest, serve.CodeBadRequest, fmt.Errorf("bad request body: %v", err))
		return
	}
	id, err := f.Publish(req)
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, serve.CodeBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, f.pubView(id))
}

func (f *Fleet) handleRefresh(w http.ResponseWriter, r *http.Request) {
	f.requests.Add(1)
	if r.Method != http.MethodPost {
		serve.WriteError(w, http.StatusMethodNotAllowed, serve.CodeMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var req requestHead
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		serve.WriteError(w, http.StatusBadRequest, serve.CodeBadRequest, fmt.Errorf("bad request body: %v", err))
		return
	}
	if f.lookup(req.ID) == nil {
		serve.WriteError(w, http.StatusNotFound, serve.CodeNotFound, fmt.Errorf("no publication %q", req.ID))
		return
	}
	if err := f.Refresh(req.ID); err != nil {
		serve.WriteError(w, http.StatusInternalServerError, serve.CodeInternal, err)
		return
	}
	writeJSON(w, http.StatusOK, f.pubView(req.ID))
}

// handleInsert routes one insert batch. Inserts mutate replica state, so
// unlike queries they fan out to every live holder of the publication, in
// one total order per publication (under the pub mutex — deterministic
// publishers fed identical batch streams stay bit-identical), and the body
// is appended verbatim to the pub's mutation log so a restarted holder
// replays the exact stream its peers applied. Both encodings route: the
// body is opaque beyond the head, forwarded byte-for-byte. Inserts charge
// no exposure, so there is no settle step — the first accepting holder's
// response is relayed as-is.
func (f *Fleet) handleInsert(w http.ResponseWriter, r *http.Request) {
	f.requests.Add(1)
	if r.Method != http.MethodPost {
		serve.WriteError(w, http.StatusMethodNotAllowed, serve.CodeMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, serve.CodeBadRequest, fmt.Errorf("reading body: %v", err))
		return
	}
	var head requestHead
	binary := r.Header.Get("Content-Type") == wire.ContentType
	if binary {
		h, err := wire.PeekHead(body)
		if err != nil {
			serve.WriteError(w, http.StatusBadRequest, serve.CodeBadRequest, fmt.Errorf("bad binary frame: %w", err))
			return
		}
		head = requestHead{ID: string(h.ID), Client: string(h.Client)}
	} else if err := json.Unmarshal(body, &head); err != nil {
		serve.WriteError(w, http.StatusBadRequest, serve.CodeBadRequest, fmt.Errorf("bad request body: %v", err))
		return
	}
	p := f.lookup(head.ID)
	if p == nil {
		serve.WriteError(w, http.StatusNotFound, serve.CodeNotFound, fmt.Errorf("no publication %q", head.ID))
		return
	}

	// Replaying an insert would double-apply it; the idempotency cache is
	// what makes a client resend after a dropped response safe.
	idemKey := r.Header.Get("X-Idempotency-Key")
	if idemKey != "" {
		if cached := f.idemGet(idemKey); cached != nil {
			emit(w, cached)
			return
		}
	}

	hdr := make(http.Header, 1)
	if binary {
		hdr.Set("Content-Type", wire.ContentType)
	} else {
		hdr.Set("Content-Type", "application/json")
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	var first *response
	var missed []int
	lastErr := "no live holder"
	for _, h := range p.holders {
		rep := f.replicas[h]
		if !rep.alive.Load() {
			// A dead holder misses the batch now and converges on restart:
			// the mutation log replay includes it.
			continue
		}
		rep.inflight.Add(1)
		ctx, cancel := context.WithTimeout(r.Context(), f.cfg.Timeout)
		resp, err := rep.do(ctx, http.MethodPost, "/insert", hdr, body)
		cancel()
		rep.inflight.Add(-1)
		if err != nil {
			// Transport failure: the holder is treated as dead for this batch
			// and repaired by restart replay, same as the alive=false case.
			f.noteFailure(rep)
			missed = append(missed, h)
			lastErr = err.Error()
			continue
		}
		f.noteSuccess(rep)
		if resp.status >= 400 {
			// Validation is deterministic, so every holder returns the same
			// verdict — relay the first rejection and log nothing. (A holder
			// that diverges from this assumption gains an extra batch, which
			// ReplicaAgreement surfaces as a digest mismatch.)
			emit(w, resp)
			return
		}
		if first == nil {
			first = resp
		}
	}
	if first == nil {
		f.unavailable.Add(1)
		serve.WriteError(w, http.StatusServiceUnavailable, serve.CodeUnavailable,
			fmt.Errorf("no live holder of %q accepted the insert (last: %s)", head.ID, lastErr))
		return
	}
	// Live holders that failed at the transport level missed a batch that is
	// now logged: mark them stale so they are never used as a checkpoint
	// source until restart replay repairs them.
	for _, h := range missed {
		p.markStale(h)
	}
	p.log = append(p.log, mutation{body: body, binary: binary})
	f.insertsRouted.Add(1)
	f.maybeCheckpoint(head.ID, p)
	if idemKey != "" {
		f.idemPut(idemKey, first)
	}
	emit(w, first)
}

// pubJSON is the fleet-level view of one placed publication.
type pubJSON struct {
	ID         string `json:"id"`
	Holders    []int  `json:"holders"`
	Generation int    `json:"generation"`
	// LogLen is the mutation-log length since the last checkpoint;
	// Checkpointed reports whether a stored snapshot exists.
	LogLen       int  `json:"log_len"`
	Checkpointed bool `json:"checkpointed"`
}

func (f *Fleet) pubView(id string) pubJSON {
	p := f.lookup(id)
	p.mu.Lock()
	gen, logLen, ckpt := p.gen, len(p.log), p.snap != nil
	p.mu.Unlock()
	return pubJSON{
		ID:           id,
		Holders:      append([]int(nil), p.holders...),
		Generation:   gen,
		LogLen:       logLen,
		Checkpointed: ckpt,
	}
}

func (f *Fleet) handlePublications(w http.ResponseWriter, r *http.Request) {
	f.requests.Add(1)
	if r.Method != http.MethodGet {
		serve.WriteError(w, http.StatusMethodNotAllowed, serve.CodeMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	f.pubs.mu.RLock()
	ids := make([]string, 0, len(f.pubs.m))
	for id := range f.pubs.m {
		ids = append(ids, id)
	}
	f.pubs.mu.RUnlock()
	sort.Strings(ids)
	out := make([]pubJSON, 0, len(ids))
	for _, id := range ids {
		out = append(out, f.pubView(id))
	}
	writeJSON(w, http.StatusOK, out)
}

func (f *Fleet) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := f.Stats()
	status := "ok"
	if st.Alive < st.Replicas {
		status = "degraded"
	}
	if st.Alive == 0 {
		status = "down"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   status,
		"alive":    st.Alive,
		"replicas": st.Replicas,
	})
}

func (f *Fleet) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, f.Stats())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
