package fleet

import (
	"os"
	"testing"
)

// TestMain lets the test binary double as a replica child process: a
// cross-process fleet re-executes its own binary, and ChildServeMain turns
// that re-execution into a bare replica server instead of a test run.
func TestMain(m *testing.M) {
	ChildServeMain()
	os.Exit(m.Run())
}
