package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reconpriv/reconpriv/internal/serve"
)

// Health states of one replica, as tracked by the router.
const (
	stateHealthy int32 = iota
	stateEjected
	stateProbing
)

// ErrReplicaDown is the transport-level failure a killed replica returns;
// it plays the role a connection refusal would over real sockets (and for a
// killed child process, a connection refusal is exactly what the transport
// would produce).
var ErrReplicaDown = errors.New("fleet: replica down")

// faults is the per-replica fault injector the cluster simulator and the
// failover tests drive. All knobs are safe for concurrent use.
type faults struct {
	// spike holds a latency to inject into the next spikeN requests.
	spike  atomic.Int64 // time.Duration
	spikeN atomic.Int64
	// failN makes the next N requests fail at the transport level (after
	// any injected latency), as a crashed-mid-request replica would.
	failN atomic.Int64
}

// takeSpike consumes one pending latency spike, if any.
func (f *faults) takeSpike() time.Duration {
	for {
		n := f.spikeN.Load()
		if n <= 0 {
			return 0
		}
		if f.spikeN.CompareAndSwap(n, n-1) {
			return time.Duration(f.spike.Load())
		}
	}
}

// takeFail consumes one pending injected failure, if any.
func (f *faults) takeFail() bool {
	for {
		n := f.failN.Load()
		if n <= 0 {
			return false
		}
		if f.failN.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

// replica is the router's view of one replica server, reached through a
// transport: liveness, health state, in-flight gauge, and the fault
// injector. The server itself may live in this process (memTransport), in a
// spawned child process, or behind an attached peer address (httpTransport).
type replica struct {
	idx int

	// mu guards tr and proc across kill/restart; requests read them under
	// RLock, restart swaps them under Lock. In-flight exchanges on a
	// replaced transport finish against the old instance and are discarded.
	mu   sync.RWMutex
	tr   transport
	proc *childProc // non-nil only for spawned child processes

	alive    atomic.Bool
	inflight atomic.Int64

	// Health machine (owned by the router): state is one of stateHealthy /
	// stateEjected / stateProbing; fails counts consecutive transport
	// failures; ejectedAt is the router's request counter at ejection, the
	// clock the probe cooldown is measured against.
	state     atomic.Int32
	fails     atomic.Int32
	ejectedAt atomic.Uint64

	faults faults
}

// newReplica builds a live replica behind the given transport.
func newReplica(idx int, tr transport) *replica {
	rep := &replica{idx: idx, tr: tr}
	rep.alive.Store(true)
	return rep
}

// transport returns the replica's current transport.
func (rep *replica) transport() transport {
	rep.mu.RLock()
	defer rep.mu.RUnlock()
	return rep.tr
}

// server returns the in-process serve.Server, or nil for a cross-process
// replica — callers needing direct access (tests, harness schema lookups)
// must handle nil and fall back to the HTTP surface.
func (rep *replica) server() *serve.Server {
	rep.mu.RLock()
	defer rep.mu.RUnlock()
	if mt, ok := rep.tr.(*memTransport); ok {
		return mt.srv
	}
	return nil
}

// do executes one routed request against the replica, honoring injected
// faults and the context deadline. Transport-level failures (down, injected
// crash, refused connection, timeout) come back as errors; HTTP-level
// failures come back as responses. The fault injector sits in front of the
// transport so both implementations misbehave identically under test.
func (rep *replica) do(ctx context.Context, method, path string, header http.Header, body []byte) (*response, error) {
	if !rep.alive.Load() {
		return nil, fmt.Errorf("fleet: replica %d: %w", rep.idx, ErrReplicaDown)
	}
	if d := rep.faults.takeSpike(); d > 0 {
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, fmt.Errorf("fleet: replica %d: %w", rep.idx, ctx.Err())
		}
	}
	if rep.faults.takeFail() {
		return nil, fmt.Errorf("fleet: replica %d: injected failure: %w", rep.idx, ErrReplicaDown)
	}
	tr := rep.transport()
	if tr == nil || !rep.alive.Load() {
		return nil, fmt.Errorf("fleet: replica %d: %w", rep.idx, ErrReplicaDown)
	}
	resp, err := tr.do(ctx, method, path, header, body)
	if err != nil {
		return nil, fmt.Errorf("fleet: replica %d: %w", rep.idx, err)
	}
	return resp, nil
}

// control executes one control-plane request (publish, refresh, snapshot,
// digest) against the replica. Unlike do it bypasses the fault injector:
// injected faults model data-path chaos and are consumed only by routed
// traffic, so failover tests stay exact.
func (rep *replica) control(ctx context.Context, method, path string, header http.Header, body []byte) (*response, error) {
	if !rep.alive.Load() {
		return nil, fmt.Errorf("fleet: replica %d: %w", rep.idx, ErrReplicaDown)
	}
	tr := rep.transport()
	if tr == nil {
		return nil, fmt.Errorf("fleet: replica %d: %w", rep.idx, ErrReplicaDown)
	}
	resp, err := tr.do(ctx, method, path, header, body)
	if err != nil {
		return nil, fmt.Errorf("fleet: replica %d: %w", rep.idx, err)
	}
	return resp, nil
}
