package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reconpriv/reconpriv/internal/serve"
)

// Health states of one replica, as tracked by the router.
const (
	stateHealthy int32 = iota
	stateEjected
	stateProbing
)

// ErrReplicaDown is the transport-level failure a killed replica returns;
// it plays the role a connection refusal would over real sockets.
var ErrReplicaDown = errors.New("fleet: replica down")

// faults is the per-replica fault injector the cluster simulator and the
// failover tests drive. All knobs are safe for concurrent use.
type faults struct {
	// spike holds a latency to inject into the next spikeN requests.
	spike  atomic.Int64 // time.Duration
	spikeN atomic.Int64
	// failN makes the next N requests fail at the transport level (after
	// any injected latency), as a crashed-mid-request replica would.
	failN atomic.Int64
}

// takeSpike consumes one pending latency spike, if any.
func (f *faults) takeSpike() time.Duration {
	for {
		n := f.spikeN.Load()
		if n <= 0 {
			return 0
		}
		if f.spikeN.CompareAndSwap(n, n-1) {
			return time.Duration(f.spike.Load())
		}
	}
}

// takeFail consumes one pending injected failure, if any.
func (f *faults) takeFail() bool {
	for {
		n := f.failN.Load()
		if n <= 0 {
			return false
		}
		if f.failN.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

// replica is one in-process serve.Server plus the router's view of it:
// liveness, health state, in-flight gauge, and the fault injector.
type replica struct {
	idx int

	// mu guards srv and handler across kill/restart; requests read them
	// under RLock, restart swaps them under Lock. In-flight handlers on a
	// replaced server finish against the old instance and are discarded.
	mu      sync.RWMutex
	srv     *serve.Server
	handler http.Handler

	alive    atomic.Bool
	inflight atomic.Int64

	// Health machine (owned by the router): state is one of stateHealthy /
	// stateEjected / stateProbing; fails counts consecutive transport
	// failures; ejectedAt is the router's request counter at ejection, the
	// clock the probe cooldown is measured against.
	state     atomic.Int32
	fails     atomic.Int32
	ejectedAt atomic.Uint64

	faults faults
}

// newReplica builds a live replica with a fresh server.
func newReplica(idx int, cfg serve.Config) *replica {
	rep := &replica{idx: idx}
	rep.srv = serve.New(cfg)
	rep.handler = rep.srv.Handler()
	rep.alive.Store(true)
	return rep
}

// server returns the current serve.Server (nil only mid-restart).
func (rep *replica) server() *serve.Server {
	rep.mu.RLock()
	defer rep.mu.RUnlock()
	return rep.srv
}

// response is one in-process HTTP exchange's result.
type response struct {
	status int
	header http.Header
	body   []byte
}

// memWriter is the in-process http.ResponseWriter replicas serve into: no
// sockets, just bytes. It is written by exactly one handler goroutine and
// read only after that goroutine signals completion.
type memWriter struct {
	hdr    http.Header
	status int
	buf    bytes.Buffer
}

func (m *memWriter) Header() http.Header {
	if m.hdr == nil {
		m.hdr = make(http.Header)
	}
	return m.hdr
}

func (m *memWriter) Write(p []byte) (int, error) {
	if m.status == 0 {
		m.status = http.StatusOK
	}
	return m.buf.Write(p)
}

func (m *memWriter) WriteHeader(code int) {
	if m.status == 0 {
		m.status = code
	}
}

// do executes one request against the replica, honoring injected faults and
// the context deadline. On deadline the handler goroutine is abandoned — it
// keeps running against the replica (charging its local ledger, exactly the
// hazard the router's authoritative ledger exists for) but its response is
// discarded. Transport-level failures (down, injected crash, timeout) come
// back as errors; HTTP-level failures come back as responses.
func (rep *replica) do(ctx context.Context, method, path string, header http.Header, body []byte) (*response, error) {
	if !rep.alive.Load() {
		return nil, ErrReplicaDown
	}
	if d := rep.faults.takeSpike(); d > 0 {
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, fmt.Errorf("fleet: replica %d: %w", rep.idx, ctx.Err())
		}
	}
	if rep.faults.takeFail() {
		return nil, fmt.Errorf("fleet: replica %d: injected failure: %w", rep.idx, ErrReplicaDown)
	}
	rep.mu.RLock()
	h := rep.handler
	rep.mu.RUnlock()
	if h == nil || !rep.alive.Load() {
		return nil, ErrReplicaDown
	}

	req, err := http.NewRequestWithContext(ctx, method, "http://replica"+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	for k, vs := range header {
		req.Header[k] = vs
	}
	req.RemoteAddr = "fleet:0"

	w := &memWriter{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(w, req)
	}()
	select {
	case <-done:
		return &response{status: w.status, header: w.hdr, body: w.buf.Bytes()}, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("fleet: replica %d: %w", rep.idx, ctx.Err())
	}
}
