package dp

import (
	"fmt"
	"math"

	"github.com/reconpriv/reconpriv/internal/stats"
)

// LaplaceMechanism answers numeric queries with Laplace noise of scale
// b = Δ/ε, the standard ε-differential-privacy construction.
type LaplaceMechanism struct {
	Epsilon     float64 // privacy budget ε
	Sensitivity float64 // query sensitivity Δ (2 for the paired count queries of Section 2)
}

// Validate checks the mechanism parameters.
func (m LaplaceMechanism) Validate() error {
	if m.Epsilon <= 0 || math.IsNaN(m.Epsilon) {
		return fmt.Errorf("dp: epsilon must be positive, got %v", m.Epsilon)
	}
	if m.Sensitivity <= 0 || math.IsNaN(m.Sensitivity) {
		return fmt.Errorf("dp: sensitivity must be positive, got %v", m.Sensitivity)
	}
	return nil
}

// Scale returns the noise scale b = Δ/ε.
func (m LaplaceMechanism) Scale() float64 { return m.Sensitivity / m.Epsilon }

// Variance returns the noise variance 2b².
func (m LaplaceMechanism) Variance() float64 { b := m.Scale(); return 2 * b * b }

// Answer returns the noisy answer a + Lap(b).
func (m LaplaceMechanism) Answer(rng *stats.Rand, trueAnswer float64) float64 {
	return trueAnswer + stats.Laplace(rng, m.Scale())
}

// GaussianMechanism answers numeric queries with zero-mean Gaussian noise;
// for (ε, δ)-DP the standard deviation is σ = Δ·sqrt(2 ln(1.25/δ))/ε.
// Like Laplace it has zero mean and fixed variance, so Corollary 1 applies.
type GaussianMechanism struct {
	Epsilon     float64
	Delta       float64
	Sensitivity float64
}

// Validate checks the mechanism parameters.
func (m GaussianMechanism) Validate() error {
	if m.Epsilon <= 0 || math.IsNaN(m.Epsilon) {
		return fmt.Errorf("dp: epsilon must be positive, got %v", m.Epsilon)
	}
	if m.Delta <= 0 || m.Delta >= 1 || math.IsNaN(m.Delta) {
		return fmt.Errorf("dp: delta must be in (0,1), got %v", m.Delta)
	}
	if m.Sensitivity <= 0 || math.IsNaN(m.Sensitivity) {
		return fmt.Errorf("dp: sensitivity must be positive, got %v", m.Sensitivity)
	}
	return nil
}

// Sigma returns the noise standard deviation.
func (m GaussianMechanism) Sigma() float64 {
	return m.Sensitivity * math.Sqrt(2*math.Log(1.25/m.Delta)) / m.Epsilon
}

// Variance returns σ².
func (m GaussianMechanism) Variance() float64 { s := m.Sigma(); return s * s }

// Answer returns the noisy answer a + N(0, σ²).
func (m GaussianMechanism) Answer(rng *stats.Rand, trueAnswer float64) float64 {
	return trueAnswer + stats.Gaussian(rng, m.Sigma())
}

// RatioMoments holds the Lemma 1 Taylor approximations for the ratio Y/X of
// two noisy answers X = x+ξ₁, Y = y+ξ₂ with zero-mean noises of variance V:
//
//	E[Y/X]   ≈ (y/x)(1 + V/x²)
//	Var[Y/X] ≈ (V/x²)(1 + y²/x²)
type RatioMoments struct {
	Mean     float64
	Variance float64
}

// RatioMomentsApprox evaluates Lemma 1 for true answers x, y and noise
// variance V. x must be non-zero.
func RatioMomentsApprox(x, y, V float64) (RatioMoments, error) {
	if x == 0 {
		return RatioMoments{}, fmt.Errorf("dp: Lemma 1 requires x != 0")
	}
	vx2 := V / (x * x)
	return RatioMoments{
		Mean:     (y / x) * (1 + vx2),
		Variance: vx2 * (1 + (y*y)/(x*x)),
	}, nil
}

// Indicator returns 2(b/x)², the Corollary 2 disclosure indicator for the
// Laplace mechanism: it simultaneously bounds |E[Y/X] − y/x| and one half of
// Var[Y/X]. The paper's rule of thumb is that b/x ≤ 1/20 (indicator ≤ 1/200)
// makes Y/X a good estimate of y/x — i.e. a disclosure if y/x is sensitive.
func Indicator(b, x float64) float64 {
	r := b / x
	return 2 * r * r
}

// MeanBiasBound returns the Corollary 2(i) bound |E[Y/X] − y/x| ≤ 2(b/x)².
func MeanBiasBound(b, x float64) float64 { return Indicator(b, x) }

// VarianceBound returns the Corollary 2(ii) bound Var[Y/X] ≤ 4(b/x)².
func VarianceBound(b, x float64) float64 { return 2 * Indicator(b, x) }

// AttackTrial is one run of the Section 2 / Table 1 experiment: two noisy
// answers and the derived confidence estimate.
type AttackTrial struct {
	Ans1, Ans2 float64 // noisy answers X, Y
	Conf       float64 // Y/X
	RelErr1    float64 // |x - X| / x
	RelErr2    float64 // |y - Y| / y
}

// AttackResult aggregates trials of the ratio attack.
type AttackResult struct {
	TrueConf float64 // y/x
	Conf     stats.Summary
	RelErr1  stats.Summary
	RelErr2  stats.Summary
	Trials   []AttackTrial
}

// RatioAttack runs the NIR disclosure experiment of Example 1: issue the two
// count queries with true answers x (the NA match count) and y (the NA ∧ SA
// match count) against the mechanism `trials` times, and summarize the
// attacker's confidence estimate Y/X together with the per-answer relative
// errors — the disclosure and utility columns of Table 1.
func RatioAttack(rng *stats.Rand, mech LaplaceMechanism, x, y float64, trials int) (AttackResult, error) {
	if err := mech.Validate(); err != nil {
		return AttackResult{}, err
	}
	if x <= 0 || y < 0 {
		return AttackResult{}, fmt.Errorf("dp: attack requires x > 0 and y >= 0, got x=%v y=%v", x, y)
	}
	if trials < 1 {
		return AttackResult{}, fmt.Errorf("dp: need at least one trial")
	}
	res := AttackResult{TrueConf: y / x}
	confs := make([]float64, 0, trials)
	errs1 := make([]float64, 0, trials)
	errs2 := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		X := mech.Answer(rng, x)
		Y := mech.Answer(rng, y)
		t := AttackTrial{
			Ans1:    X,
			Ans2:    Y,
			Conf:    Y / X,
			RelErr1: math.Abs(x-X) / x,
			RelErr2: math.Abs(y-Y) / y,
		}
		res.Trials = append(res.Trials, t)
		confs = append(confs, t.Conf)
		errs1 = append(errs1, t.RelErr1)
		errs2 = append(errs2, t.RelErr2)
	}
	res.Conf = stats.MustSummarize(confs)
	res.RelErr1 = stats.MustSummarize(errs1)
	res.RelErr2 = stats.MustSummarize(errs2)
	return res, nil
}
