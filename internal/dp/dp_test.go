package dp

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/reconpriv/reconpriv/internal/stats"
)

func TestLaplaceMechanismScale(t *testing.T) {
	m := LaplaceMechanism{Epsilon: 0.1, Sensitivity: 2}
	if m.Scale() != 20 {
		t.Errorf("Scale = %v, want 20 (b = Δ/ε)", m.Scale())
	}
	if m.Variance() != 800 {
		t.Errorf("Variance = %v, want 800 (2b²)", m.Variance())
	}
}

func TestLaplaceMechanismValidate(t *testing.T) {
	bad := []LaplaceMechanism{
		{Epsilon: 0, Sensitivity: 1},
		{Epsilon: -1, Sensitivity: 1},
		{Epsilon: 1, Sensitivity: 0},
		{Epsilon: math.NaN(), Sensitivity: 1},
	}
	for i, m := range bad {
		if m.Validate() == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestLaplaceAnswerMoments(t *testing.T) {
	m := LaplaceMechanism{Epsilon: 0.5, Sensitivity: 2}
	rng := stats.NewRand(1)
	const n = 100000
	const truth = 500.0
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := m.Answer(rng, truth)
		sum += x
		sumSq += (x - truth) * (x - truth)
	}
	if mean := sum / n; math.Abs(mean-truth) > 0.2 {
		t.Errorf("noisy answer mean = %v, want ~%v", mean, truth)
	}
	if variance := sumSq / n; math.Abs(variance-m.Variance())/m.Variance() > 0.05 {
		t.Errorf("noise variance = %v, want ~%v", variance, m.Variance())
	}
}

func TestGaussianMechanism(t *testing.T) {
	g := GaussianMechanism{Epsilon: 1, Delta: 1e-5, Sensitivity: 1}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(2 * math.Log(1.25/1e-5))
	if math.Abs(g.Sigma()-want) > 1e-9 {
		t.Errorf("Sigma = %v, want %v", g.Sigma(), want)
	}
	rng := stats.NewRand(2)
	const n = 50000
	var sumSq float64
	for i := 0; i < n; i++ {
		d := g.Answer(rng, 100) - 100
		sumSq += d * d
	}
	if v := sumSq / n; math.Abs(v-g.Variance())/g.Variance() > 0.05 {
		t.Errorf("empirical variance %v, want ~%v", v, g.Variance())
	}
	bad := GaussianMechanism{Epsilon: 1, Delta: 0, Sensitivity: 1}
	if bad.Validate() == nil {
		t.Error("delta=0 should fail validation")
	}
}

func TestRatioMomentsApprox(t *testing.T) {
	// Lemma 1 exact algebra: E[Y/X] ≈ (y/x)(1 + V/x²).
	rm, err := RatioMomentsApprox(500, 420, 800)
	if err != nil {
		t.Fatal(err)
	}
	wantMean := (420.0 / 500) * (1 + 800.0/250000)
	if math.Abs(rm.Mean-wantMean) > 1e-12 {
		t.Errorf("Mean = %v, want %v", rm.Mean, wantMean)
	}
	wantVar := (800.0 / 250000) * (1 + (420.0*420)/(500.0*500))
	if math.Abs(rm.Variance-wantVar) > 1e-12 {
		t.Errorf("Variance = %v, want %v", rm.Variance, wantVar)
	}
	if _, err := RatioMomentsApprox(0, 1, 1); err == nil {
		t.Error("x=0 should error")
	}
}

func TestRatioMomentsMatchSimulation(t *testing.T) {
	// For large x the Taylor approximation should match the simulated
	// moments of Y/X closely.
	const x, y = 2000.0, 1500.0
	mech := LaplaceMechanism{Epsilon: 0.1, Sensitivity: 2}
	V := mech.Variance()
	approx, err := RatioMomentsApprox(x, y, V)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(3)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		r := mech.Answer(rng, y) / mech.Answer(rng, x)
		sum += r
		sumSq += r * r
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-approx.Mean) > 0.002 {
		t.Errorf("simulated mean %v vs Taylor %v", mean, approx.Mean)
	}
	if math.Abs(variance-approx.Variance)/approx.Variance > 0.1 {
		t.Errorf("simulated variance %v vs Taylor %v", variance, approx.Variance)
	}
}

func TestIndicatorTable2Values(t *testing.T) {
	// Spot-check the paper's Table 2 cells.
	cases := []struct {
		b, x, want float64
	}{
		{10, 5000, 0.000008},
		{20, 1000, 0.0008},
		{40, 500, 0.0128},
		{200, 200, 2},
		{200, 100, 8},
	}
	for _, c := range cases {
		if got := Indicator(c.b, c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Indicator(%v, %v) = %v, want %v", c.b, c.x, got, c.want)
		}
	}
}

func TestIndicatorBoundsRelationship(t *testing.T) {
	// Corollary 2: the mean-bias bound is the indicator, the variance bound
	// is twice it — for any b and x.
	prop := func(bRaw, xRaw uint16) bool {
		b := 1 + float64(bRaw%500)
		x := 1 + float64(xRaw%10000)
		return MeanBiasBound(b, x) == Indicator(b, x) &&
			math.Abs(VarianceBound(b, x)-2*Indicator(b, x)) < 1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestCorollary2BoundsHold(t *testing.T) {
	// |E[Y/X] − y/x| ≤ 2(b/x)² empirically for large-ish x.
	mech := LaplaceMechanism{Epsilon: 0.1, Sensitivity: 2}
	const x, y = 1000.0, 700.0
	rng := stats.NewRand(4)
	const n = 400000
	var sum float64
	for i := 0; i < n; i++ {
		sum += mech.Answer(rng, y) / mech.Answer(rng, x)
	}
	mean := sum / n
	bias := math.Abs(mean - y/x)
	bound := MeanBiasBound(mech.Scale(), x)
	// Allow simulation noise on top of the bound.
	se := math.Sqrt(VarianceBound(mech.Scale(), x) / n)
	if bias > bound+4*se {
		t.Errorf("bias %v exceeds Corollary 2 bound %v", bias, bound)
	}
}

func TestRatioAttack(t *testing.T) {
	mech := LaplaceMechanism{Epsilon: 0.5, Sensitivity: 2}
	res, err := RatioAttack(stats.NewRand(5), mech, 501, 420, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 10 {
		t.Fatalf("trials = %d", len(res.Trials))
	}
	if math.Abs(res.TrueConf-0.8383) > 0.001 {
		t.Errorf("TrueConf = %v", res.TrueConf)
	}
	// At eps=0.5 (b=4) the estimate should be close to the truth.
	if math.Abs(res.Conf.Mean-res.TrueConf) > 0.05 {
		t.Errorf("Conf mean = %v, want near %v", res.Conf.Mean, res.TrueConf)
	}
	if res.RelErr1.Mean > 0.1 || res.RelErr2.Mean > 0.1 {
		t.Error("relative errors should be small at eps=0.5")
	}
}

func TestRatioAttackDisclosureGradient(t *testing.T) {
	// The attack sharpens as epsilon grows — the Section 2 claim.
	rng := stats.NewRand(6)
	var prevSE float64 = math.Inf(1)
	for _, eps := range []float64{0.01, 0.1, 0.5} {
		mech := LaplaceMechanism{Epsilon: eps, Sensitivity: 2}
		res, err := RatioAttack(rng, mech, 501, 420, 400)
		if err != nil {
			t.Fatal(err)
		}
		if res.Conf.StdErr >= prevSE {
			t.Errorf("eps=%v: SE %v did not shrink from %v", eps, res.Conf.StdErr, prevSE)
		}
		prevSE = res.Conf.StdErr
	}
}

func TestRatioAttackErrors(t *testing.T) {
	mech := LaplaceMechanism{Epsilon: 0.5, Sensitivity: 2}
	rng := stats.NewRand(7)
	if _, err := RatioAttack(rng, mech, 0, 1, 10); err == nil {
		t.Error("x=0 should error")
	}
	if _, err := RatioAttack(rng, mech, 10, -1, 10); err == nil {
		t.Error("y<0 should error")
	}
	if _, err := RatioAttack(rng, mech, 10, 5, 0); err == nil {
		t.Error("0 trials should error")
	}
	if _, err := RatioAttack(rng, LaplaceMechanism{}, 10, 5, 10); err == nil {
		t.Error("invalid mechanism should error")
	}
}
