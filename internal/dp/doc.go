// Package dp implements the output-perturbation substrate the paper attacks
// in Section 2: the ε-differential-privacy Laplace and Gaussian mechanisms
// for count queries, the Taylor-expansion moments of the ratio of two noisy
// answers (Lemma 1), and the closed-form disclosure indicator 2(b/x)²
// (Corollary 2) that predicts when the ratio Y/X pins down y/x.
//
// It exists as the contrast class: Table 1 mounts the
// non-independent-reasoning ratio attack on the Example-1 rule through
// ε-DP answers, and internal/experiments.RunOutputVsData measures Laplace
// utility against the data-perturbation publishers of internal/core on the
// shared Section 6.1 query pool.
package dp
