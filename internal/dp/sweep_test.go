package dp

import (
	"reflect"
	"testing"

	"github.com/reconpriv/reconpriv/internal/stats"
)

func TestRatioAttackSweepMatchesRatioAttack(t *testing.T) {
	// Each sweep cell must be an exact RatioAttack run on its derived
	// stream: the sweep is a scheduler, not a different experiment.
	epsilons := []float64{0.01, 0.1, 0.5}
	pairs := []CountPair{{X: 423, Y: 354}, {X: 1000, Y: 100}}
	sweep, err := RatioAttackSweep(7, 2, epsilons, pairs, 25, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Cells) != len(epsilons)*len(pairs) {
		t.Fatalf("cells = %d", len(sweep.Cells))
	}
	for c := range sweep.Cells {
		ei, pi := c/len(pairs), c%len(pairs)
		mech := LaplaceMechanism{Epsilon: epsilons[ei], Sensitivity: 2}
		want, err := RatioAttack(stats.NewRand(cellSeed(7, c)), mech, pairs[pi].X, pairs[pi].Y, 25)
		if err != nil {
			t.Fatal(err)
		}
		got := sweep.Cell(ei, pi)
		if got.Conf != want.Conf || got.RelErr1 != want.RelErr1 || got.RelErr2 != want.RelErr2 {
			t.Fatalf("cell (%d,%d) diverges from its reference RatioAttack", ei, pi)
		}
		if got.TrueConf != want.TrueConf || got.Indicator != Indicator(mech.Scale(), pairs[pi].X) {
			t.Fatalf("cell (%d,%d) analytic columns wrong", ei, pi)
		}
	}
}

func TestRatioAttackSweepWorkerIndependent(t *testing.T) {
	epsilons := []float64{0.01, 0.1, 0.5, 1}
	pairs := []CountPair{{X: 423, Y: 354}, {X: 50, Y: 25}, {X: 9, Y: 3}}
	base, err := RatioAttackSweep(3, 2, epsilons, pairs, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 7} {
		got, err := RatioAttackSweep(3, 2, epsilons, pairs, 40, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("sweep differs between 1 and %d workers", w)
		}
	}
}

func TestRatioAttackSweepValidation(t *testing.T) {
	good := []CountPair{{X: 10, Y: 5}}
	if _, err := RatioAttackSweep(1, 2, nil, good, 10, 0); err == nil {
		t.Error("no epsilons should error")
	}
	if _, err := RatioAttackSweep(1, 2, []float64{0.1}, nil, 10, 0); err == nil {
		t.Error("no pairs should error")
	}
	if _, err := RatioAttackSweep(1, 2, []float64{0.1}, good, 0, 0); err == nil {
		t.Error("0 trials should error")
	}
	if _, err := RatioAttackSweep(1, 2, []float64{-1}, good, 10, 0); err == nil {
		t.Error("bad epsilon should error")
	}
	if _, err := RatioAttackSweep(1, 2, []float64{0.1}, []CountPair{{X: 0, Y: 1}}, 10, 0); err == nil {
		t.Error("x = 0 should error")
	}
}
