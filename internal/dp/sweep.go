package dp

import (
	"fmt"

	"github.com/reconpriv/reconpriv/internal/par"
	"github.com/reconpriv/reconpriv/internal/stats"
)

// CountPair is one (x, y) pair of true count answers the ratio attack runs
// against: x the public-attribute match count, y the match count with the
// sensitive value. Pairs typically come from the adversary engine's batched
// count estimates against a publication.
type CountPair struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// SweepCell is one (ε, pair) cell of an attack sweep: the RatioAttack
// summaries without the per-trial detail, plus the Corollary 2 indicator.
type SweepCell struct {
	Epsilon   float64       `json:"epsilon"`
	Scale     float64       `json:"scale"` // b = Δ/ε
	X         float64       `json:"x"`
	Y         float64       `json:"y"`
	TrueConf  float64       `json:"true_conf"`
	Conf      stats.Summary `json:"conf"`
	RelErr1   stats.Summary `json:"rel_err1"`
	RelErr2   stats.Summary `json:"rel_err2"`
	Indicator float64       `json:"indicator"` // 2(b/x)²
}

// AttackSweep is the vectorized NIR attack: every ε of a grid crossed with
// every count pair, each cell an independent RatioAttack run.
type AttackSweep struct {
	Sensitivity float64     `json:"sensitivity"`
	Trials      int         `json:"trials"`
	Epsilons    []float64   `json:"epsilons"`
	Pairs       []CountPair `json:"pairs"`
	// Cells is row-major over (epsilon, pair): cell (i, j) of the grid is
	// Cells[i*len(Pairs)+j].
	Cells []SweepCell `json:"cells"`
}

// Cell returns the (epsilon index, pair index) cell.
func (s *AttackSweep) Cell(ei, pi int) *SweepCell { return &s.Cells[ei*len(s.Pairs)+pi] }

// cellSeed derives the deterministic RNG seed of one sweep cell: a
// SplitMix64 avalanche of the base seed and the cell's grid position, so
// every cell draws a private well-separated stream regardless of which
// worker evaluates it.
func cellSeed(seed int64, cell int) int64 {
	return int64(par.Mix64(uint64(seed) ^ par.Mix64(uint64(cell)+0x9e3779b97f4a7c15)))
}

// RatioAttackSweep runs the Section 2 ratio attack over the full (ε, pair)
// grid, fanning cells out across up to `workers` goroutines (0 =
// GOMAXPROCS). Each cell is an exact RatioAttack run on its own derived
// stream — cell (i, j) equals RatioAttack(stats.NewRand(cellSeed(seed,
// i*len(pairs)+j)), ...) minus the per-trial detail — so results are
// bit-identical at any worker count and reproducible from the seed alone.
func RatioAttackSweep(seed int64, sensitivity float64, epsilons []float64, pairs []CountPair, trials, workers int) (*AttackSweep, error) {
	if len(epsilons) == 0 || len(pairs) == 0 {
		return nil, fmt.Errorf("dp: sweep needs at least one epsilon and one count pair")
	}
	if trials < 1 {
		return nil, fmt.Errorf("dp: need at least one trial")
	}
	for _, eps := range epsilons {
		if err := (LaplaceMechanism{Epsilon: eps, Sensitivity: sensitivity}).Validate(); err != nil {
			return nil, err
		}
	}
	for _, pr := range pairs {
		if pr.X <= 0 || pr.Y < 0 {
			return nil, fmt.Errorf("dp: attack requires x > 0 and y >= 0, got x=%v y=%v", pr.X, pr.Y)
		}
	}
	sweep := &AttackSweep{
		Sensitivity: sensitivity,
		Trials:      trials,
		Epsilons:    append([]float64(nil), epsilons...),
		Pairs:       append([]CountPair(nil), pairs...),
		Cells:       make([]SweepCell, len(epsilons)*len(pairs)),
	}
	par.Striped(len(sweep.Cells), workers, func(_, lo, hi int) {
		for c := lo; c < hi; c++ {
			ei, pi := c/len(pairs), c%len(pairs)
			mech := LaplaceMechanism{Epsilon: epsilons[ei], Sensitivity: sensitivity}
			res, err := RatioAttack(stats.NewRand(cellSeed(seed, c)), mech, pairs[pi].X, pairs[pi].Y, trials)
			if err != nil {
				// Inputs were validated above; a failure here is a
				// programming error, not an input error.
				panic(err)
			}
			sweep.Cells[c] = SweepCell{
				Epsilon:   epsilons[ei],
				Scale:     mech.Scale(),
				X:         pairs[pi].X,
				Y:         pairs[pi].Y,
				TrueConf:  res.TrueConf,
				Conf:      res.Conf,
				RelErr1:   res.RelErr1,
				RelErr2:   res.RelErr2,
				Indicator: Indicator(mech.Scale(), pairs[pi].X),
			}
		}
	})
	return sweep, nil
}
