package wire

import (
	"encoding/binary"
	"math"

	"github.com/reconpriv/reconpriv/internal/query"
)

// Cond is the engine condition type carried on the wire: attr is the
// schema attribute index, value an original value code.
type Cond = query.Cond

// span marks a sub-slice of a decode arena; views are materialized only
// after the arena stops growing.
type span struct{ off, n int }

// --- little-endian primitives ---

func appendU16(dst []byte, v uint16) []byte {
	return append(dst, byte(v), byte(v>>8))
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func appendF64(dst []byte, v float64) []byte {
	return appendU64(dst, math.Float64bits(v))
}

// appendBytes8 writes a str8; inputs beyond 255 bytes are truncated (ids
// and client names are short by construction).
func appendBytes8(dst []byte, b []byte) []byte {
	if len(b) > 255 {
		b = b[:255]
	}
	dst = append(dst, byte(len(b)))
	return append(dst, b...)
}

// appendBytes16 writes a str16; inputs beyond 64 KiB are truncated (error
// messages).
func appendBytes16(dst []byte, b []byte) []byte {
	if len(b) > 65535 {
		b = b[:65535]
	}
	dst = appendU16(dst, uint16(len(b)))
	return append(dst, b...)
}

// beginFrame appends the fixed header with a zero length placeholder and
// returns the payload start offset; endFrame back-patches the length.
func beginFrame(dst []byte, kind byte) ([]byte, int) {
	dst = append(dst, magic0, magic1, Version, kind, 0, 0, 0, 0)
	return dst, len(dst)
}

func endFrame(dst []byte, payloadStart int) []byte {
	binary.LittleEndian.PutUint32(dst[payloadStart-4:payloadStart], uint32(len(dst)-payloadStart))
	return dst
}

// reader is a bounds-checked cursor over a payload with a sticky failure
// flag: after the first short read every subsequent read yields zero, and
// the caller checks ok once per structural boundary.
type reader struct {
	b   []byte
	off int
	ok  bool
}

func (r *reader) remaining() int { return len(r.b) - r.off }

func (r *reader) u8() byte {
	if !r.ok || r.off >= len(r.b) {
		r.ok = false
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if !r.ok || r.off+2 > len(r.b) {
		r.ok = false
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if !r.ok || r.off+4 > len(r.b) {
		r.ok = false
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if !r.ok || r.off+8 > len(r.b) {
		r.ok = false
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

// bytes8 reads a str8 and returns a zero-copy view into the payload.
func (r *reader) bytes8() []byte {
	n := int(r.u8())
	if !r.ok || r.off+n > len(r.b) {
		r.ok = false
		return nil
	}
	v := r.b[r.off : r.off+n : r.off+n]
	r.off += n
	return v
}

// bytes16 reads a str16 view.
func (r *reader) bytes16() []byte {
	n := int(r.u16())
	if !r.ok || r.off+n > len(r.b) {
		r.ok = false
		return nil
	}
	v := r.b[r.off : r.off+n : r.off+n]
	r.off += n
	return v
}

// --- POST /query request ---

// Query is one count query inside a QueryReq: conjunctive conditions plus
// one sensitive value, all as original codes.
type Query struct {
	SA    uint16
	Conds []Cond
}

// QueryReq is the binary body of POST /query. ID and Client are zero-copy
// views into the decoded frame. The struct is reusable: Decode resets and
// refills it without allocating once its backing slices have grown to the
// workload's steady-state size.
type QueryReq struct {
	ID      []byte
	Client  []byte
	Wait    bool
	Queries []Query

	conds []Cond // arena backing every query's Conds
	spans []span
}

// Append encodes the request as one frame appended to dst.
func (m *QueryReq) Append(dst []byte) []byte {
	dst, ps := beginFrame(dst, KindQueryReq)
	dst = appendBytes8(dst, m.ID)
	dst = appendBytes8(dst, m.Client)
	var flags byte
	if m.Wait {
		flags |= flagWait
	}
	dst = append(dst, flags)
	dst = appendU32(dst, uint32(len(m.Queries)))
	for i := range m.Queries {
		q := &m.Queries[i]
		dst = appendU16(dst, q.SA)
		dst = append(dst, byte(len(q.Conds)))
		for _, c := range q.Conds {
			dst = appendU16(dst, uint16(c.Attr))
			dst = appendU16(dst, c.Value)
		}
	}
	return endFrame(dst, ps)
}

// Decode parses a full frame. On error the struct contents are undefined;
// on success every byte-slice field aliases the frame.
func (m *QueryReq) Decode(frame []byte) error {
	p, err := payload(frame, KindQueryReq)
	if err != nil {
		return err
	}
	r := reader{b: p, ok: true}
	m.ID = r.bytes8()
	m.Client = r.bytes8()
	flags := r.u8()
	if flags&^byte(flagWait) != 0 {
		return ErrFlags
	}
	m.Wait = flags&flagWait != 0
	n := int(r.u32())
	if !r.ok {
		return ErrTruncated
	}
	// Each query is at least sa(2)+nConds(1) bytes: a declared count that
	// cannot fit is rejected before any allocation sized from it.
	if n > r.remaining()/3 {
		return ErrCount
	}
	m.Queries = m.Queries[:0]
	m.conds = m.conds[:0]
	m.spans = m.spans[:0]
	for i := 0; i < n; i++ {
		sa := r.u16()
		nc := int(r.u8())
		if !r.ok || nc*4 > r.remaining() {
			return ErrTruncated
		}
		off := len(m.conds)
		for j := 0; j < nc; j++ {
			a := r.u16()
			v := r.u16()
			m.conds = append(m.conds, Cond{Attr: int(a), Value: v})
		}
		m.Queries = append(m.Queries, Query{SA: sa})
		m.spans = append(m.spans, span{off, nc})
	}
	if !r.ok {
		return ErrTruncated
	}
	if r.remaining() != 0 {
		return ErrTrailing
	}
	// Views are cut only now: the arena has stopped growing, so they stay
	// valid (and mutable in place — the server rewrites codes through them).
	for i := range m.Queries {
		sp := m.spans[i]
		m.Queries[i].Conds = m.conds[sp.off : sp.off+sp.n : sp.off+sp.n]
	}
	return nil
}

// --- POST /query response ---

// Answer is one served answer: either a count/estimate pair or an error
// message (a view into the frame on decode).
type Answer struct {
	Count    int64
	Estimate float64
	Err      []byte
}

// UnlimitedBudget is the BudgetRemaining sentinel meaning enforcement is
// disabled: no finite budget applies to the client.
const UnlimitedBudget = ^uint64(0)

// Ledger is the router-relevant slice of a response: the exposure fields
// the fleet charges and rewrites. BudgetRemaining is the window budget
// left after the charge (UnlimitedBudget when enforcement is off);
// BudgetExact says whether the budget counts are exact rather than sketch
// upper bounds.
type Ledger struct {
	Charged         uint64
	ClientQueries   uint64
	BudgetRemaining uint64
	ExposureWarning bool
	BudgetExact     bool
}

// QueryResp is the binary body of a successful POST /query.
type QueryResp struct {
	ID     []byte
	Client []byte
	Ledger
	ServeMicros uint64
	Answers     []Answer
}

func appendLedger(dst []byte, id, client []byte, led Ledger, serveMicros uint64) []byte {
	dst = appendBytes8(dst, id)
	dst = appendBytes8(dst, client)
	dst = appendU64(dst, led.Charged)
	dst = appendU64(dst, led.ClientQueries)
	dst = appendU64(dst, led.BudgetRemaining)
	var flags byte
	if led.ExposureWarning {
		flags |= flagWarning
	}
	if led.BudgetExact {
		flags |= flagBudgetExact
	}
	dst = append(dst, flags)
	return appendU64(dst, serveMicros)
}

func (r *reader) ledger(m *Ledger) (id, client []byte, serveMicros uint64, err error) {
	id = r.bytes8()
	client = r.bytes8()
	m.Charged = r.u64()
	m.ClientQueries = r.u64()
	m.BudgetRemaining = r.u64()
	flags := r.u8()
	if r.ok && flags&^byte(flagWarning|flagBudgetExact) != 0 {
		return nil, nil, 0, ErrFlags
	}
	m.ExposureWarning = flags&flagWarning != 0
	m.BudgetExact = flags&flagBudgetExact != 0
	serveMicros = r.u64()
	return id, client, serveMicros, nil
}

// Append encodes the response as one frame appended to dst.
func (m *QueryResp) Append(dst []byte) []byte {
	dst, ps := beginFrame(dst, KindQueryResp)
	dst = appendLedger(dst, m.ID, m.Client, m.Ledger, m.ServeMicros)
	dst = appendU32(dst, uint32(len(m.Answers)))
	for i := range m.Answers {
		a := &m.Answers[i]
		if a.Err != nil {
			dst = append(dst, 1)
			dst = appendBytes16(dst, a.Err)
			continue
		}
		dst = append(dst, 0)
		dst = appendU64(dst, uint64(a.Count))
		dst = appendF64(dst, a.Estimate)
	}
	return endFrame(dst, ps)
}

// Decode parses a full frame; byte-slice fields alias it.
func (m *QueryResp) Decode(frame []byte) error {
	p, err := payload(frame, KindQueryResp)
	if err != nil {
		return err
	}
	r := reader{b: p, ok: true}
	id, client, mic, lerr := r.ledger(&m.Ledger)
	if lerr != nil {
		return lerr
	}
	m.ID, m.Client, m.ServeMicros = id, client, mic
	n := int(r.u32())
	if !r.ok {
		return ErrTruncated
	}
	if n > r.remaining() { // each answer is at least one tag byte
		return ErrCount
	}
	m.Answers = m.Answers[:0]
	for i := 0; i < n; i++ {
		var a Answer
		switch r.u8() {
		case 0:
			a.Count = int64(r.u64())
			a.Estimate = r.f64()
		case 1:
			a.Err = r.bytes16()
			if a.Err == nil {
				a.Err = []byte{}
			}
		default:
			return ErrFlags
		}
		if !r.ok {
			return ErrTruncated
		}
		m.Answers = append(m.Answers, a)
	}
	if r.remaining() != 0 {
		return ErrTrailing
	}
	return nil
}

// --- POST /reconstruct request ---

// ReconstructReq is the binary body of POST /reconstruct: condition
// subsets as original codes, one reconstruction each.
type ReconstructReq struct {
	ID      []byte
	Client  []byte
	Clamp   bool
	Wait    bool
	Subsets [][]Cond

	conds []Cond
	spans []span
}

// Append encodes the request as one frame appended to dst.
func (m *ReconstructReq) Append(dst []byte) []byte {
	dst, ps := beginFrame(dst, KindReconstructReq)
	dst = appendBytes8(dst, m.ID)
	dst = appendBytes8(dst, m.Client)
	var flags byte
	if m.Wait {
		flags |= flagWait
	}
	if m.Clamp {
		flags |= flagClamp
	}
	dst = append(dst, flags)
	dst = appendU32(dst, uint32(len(m.Subsets)))
	for _, set := range m.Subsets {
		dst = append(dst, byte(len(set)))
		for _, c := range set {
			dst = appendU16(dst, uint16(c.Attr))
			dst = appendU16(dst, c.Value)
		}
	}
	return endFrame(dst, ps)
}

// Decode parses a full frame; byte-slice fields alias it.
func (m *ReconstructReq) Decode(frame []byte) error {
	p, err := payload(frame, KindReconstructReq)
	if err != nil {
		return err
	}
	r := reader{b: p, ok: true}
	m.ID = r.bytes8()
	m.Client = r.bytes8()
	flags := r.u8()
	if flags&^byte(flagWait|flagClamp) != 0 {
		return ErrFlags
	}
	m.Wait = flags&flagWait != 0
	m.Clamp = flags&flagClamp != 0
	n := int(r.u32())
	if !r.ok {
		return ErrTruncated
	}
	if n > r.remaining() { // each subset is at least one count byte
		return ErrCount
	}
	m.Subsets = m.Subsets[:0]
	m.conds = m.conds[:0]
	m.spans = m.spans[:0]
	for i := 0; i < n; i++ {
		nc := int(r.u8())
		if !r.ok || nc*4 > r.remaining() {
			return ErrTruncated
		}
		off := len(m.conds)
		for j := 0; j < nc; j++ {
			a := r.u16()
			v := r.u16()
			m.conds = append(m.conds, Cond{Attr: int(a), Value: v})
		}
		m.spans = append(m.spans, span{off, nc})
	}
	if !r.ok {
		return ErrTruncated
	}
	if r.remaining() != 0 {
		return ErrTrailing
	}
	for _, sp := range m.spans {
		m.Subsets = append(m.Subsets, m.conds[sp.off:sp.off+sp.n:sp.off+sp.n])
	}
	return nil
}

// --- POST /reconstruct response ---

// RecResult is one subset's reconstruction: the observed size and the
// estimated SA frequency vector, dense by original sensitive-value code
// (labels are recoverable from GET /publications?domains=1). Freqs is nil
// for an empty subset; Err reports a per-subset failure.
type RecResult struct {
	Size  int64
	Freqs []float64
	Err   []byte
}

// ReconstructResp is the binary body of a successful POST /reconstruct.
type ReconstructResp struct {
	ID     []byte
	Client []byte
	Ledger
	ServeMicros uint64
	Results     []RecResult

	freqs []float64
	spans []span
}

// Append encodes the response as one frame appended to dst.
func (m *ReconstructResp) Append(dst []byte) []byte {
	dst, ps := beginFrame(dst, KindReconstructResp)
	dst = appendLedger(dst, m.ID, m.Client, m.Ledger, m.ServeMicros)
	dst = appendU32(dst, uint32(len(m.Results)))
	for i := range m.Results {
		res := &m.Results[i]
		if res.Err != nil {
			dst = append(dst, 1)
			dst = appendBytes16(dst, res.Err)
			continue
		}
		dst = append(dst, 0)
		dst = appendU64(dst, uint64(res.Size))
		dst = appendU16(dst, uint16(len(res.Freqs)))
		for _, f := range res.Freqs {
			dst = appendF64(dst, f)
		}
	}
	return endFrame(dst, ps)
}

// Decode parses a full frame; byte-slice fields alias it.
func (m *ReconstructResp) Decode(frame []byte) error {
	p, err := payload(frame, KindReconstructResp)
	if err != nil {
		return err
	}
	r := reader{b: p, ok: true}
	id, client, mic, lerr := r.ledger(&m.Ledger)
	if lerr != nil {
		return lerr
	}
	m.ID, m.Client, m.ServeMicros = id, client, mic
	n := int(r.u32())
	if !r.ok {
		return ErrTruncated
	}
	if n > r.remaining() { // each result is at least one tag byte
		return ErrCount
	}
	m.Results = m.Results[:0]
	m.freqs = m.freqs[:0]
	m.spans = m.spans[:0]
	for i := 0; i < n; i++ {
		var res RecResult
		sp := span{off: -1}
		switch r.u8() {
		case 0:
			res.Size = int64(r.u64())
			nf := int(r.u16())
			if !r.ok || nf*8 > r.remaining() {
				return ErrTruncated
			}
			if nf > 0 {
				sp = span{off: len(m.freqs), n: nf}
				for j := 0; j < nf; j++ {
					m.freqs = append(m.freqs, r.f64())
				}
			}
		case 1:
			res.Err = r.bytes16()
			if res.Err == nil {
				res.Err = []byte{}
			}
		default:
			return ErrFlags
		}
		if !r.ok {
			return ErrTruncated
		}
		m.Results = append(m.Results, res)
		m.spans = append(m.spans, sp)
	}
	if r.remaining() != 0 {
		return ErrTrailing
	}
	for i, sp := range m.spans {
		if sp.off >= 0 {
			m.Results[i].Freqs = m.freqs[sp.off : sp.off+sp.n : sp.off+sp.n]
		}
	}
	return nil
}
