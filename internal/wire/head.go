package wire

import "encoding/binary"

// This file is the routing layer's view of a frame: internal/fleet places
// a request by publication id, charges its authoritative exposure ledger
// from the replica's charged field, and rewrites the ledger fields of the
// response it relays — all without decoding the variable-length answers.

// Head is the prefix every frame kind shares: the publication id and the
// client, in payload order.
type Head struct {
	Kind   byte
	ID     []byte
	Client []byte
}

// PeekHead parses a frame's header and leading id/client fields without
// touching the rest of the payload. It works on every frame kind.
func PeekHead(frame []byte) (Head, error) {
	k, err := FrameKind(frame)
	if err != nil {
		return Head{}, err
	}
	if k < KindQueryReq || k > KindInsertResp {
		return Head{}, ErrKind
	}
	n := int(binary.LittleEndian.Uint32(frame[4:8]))
	if n > len(frame)-HeaderSize {
		return Head{}, ErrTruncated
	}
	r := reader{b: frame[HeaderSize : HeaderSize+n], ok: true}
	h := Head{Kind: k}
	h.ID = r.bytes8()
	h.Client = r.bytes8()
	if !r.ok {
		return Head{}, ErrTruncated
	}
	return h, nil
}

// ledgerOffsets locates the fixed ledger block of a response frame:
// clientOff is the offset of the client str8's length byte, chargedOff the
// offset of the charged u64. Frame offsets, not payload offsets.
func ledgerOffsets(frame []byte) (clientOff, chargedOff int, err error) {
	k, err := FrameKind(frame)
	if err != nil {
		return 0, 0, err
	}
	if k != KindQueryResp && k != KindReconstructResp {
		return 0, 0, ErrKind
	}
	n := int(binary.LittleEndian.Uint32(frame[4:8]))
	if n > len(frame)-HeaderSize {
		return 0, 0, ErrTruncated
	}
	r := reader{b: frame[HeaderSize : HeaderSize+n], ok: true}
	r.bytes8() // id
	clientOff = HeaderSize + r.off
	r.bytes8() // client
	chargedOff = HeaderSize + r.off
	if !r.ok || r.remaining() < 8+8+8+1+8 {
		return 0, 0, ErrTruncated
	}
	return clientOff, chargedOff, nil
}

// ReadLedger extracts the exposure fields from a response frame.
func ReadLedger(frame []byte) (Ledger, error) {
	_, off, err := ledgerOffsets(frame)
	if err != nil {
		return Ledger{}, err
	}
	return Ledger{
		Charged:         binary.LittleEndian.Uint64(frame[off:]),
		ClientQueries:   binary.LittleEndian.Uint64(frame[off+8:]),
		BudgetRemaining: binary.LittleEndian.Uint64(frame[off+16:]),
		ExposureWarning: frame[off+24]&flagWarning != 0,
		BudgetExact:     frame[off+24]&flagBudgetExact != 0,
	}, nil
}

// PatchLedger rewrites the client, cumulative exposure, remaining budget,
// and flags of a response frame to a router's authoritative values,
// leaving charged and the answers untouched. When the new client matches
// the frame's, the patch is in place and the input slice is returned;
// otherwise the frame is spliced into a fresh slice. The caller must own
// the frame either way.
func PatchLedger(frame []byte, client []byte, clientQueries, remaining uint64, warning, exact bool) ([]byte, error) {
	clientOff, chargedOff, err := ledgerOffsets(frame)
	if err != nil {
		return nil, err
	}
	out := frame
	oldLen := int(frame[clientOff])
	if len(client) > 255 {
		client = client[:255]
	}
	if string(frame[clientOff+1:clientOff+1+oldLen]) != string(client) {
		// Splice: header + id + new client + everything from charged on.
		out = make([]byte, 0, len(frame)-oldLen+len(client))
		out = append(out, frame[:clientOff]...)
		out = appendBytes8(out, client)
		chargedOff = len(out)
		out = append(out, frame[clientOff+1+oldLen:]...)
		binary.LittleEndian.PutUint32(out[4:8], uint32(len(out)-HeaderSize))
	}
	binary.LittleEndian.PutUint64(out[chargedOff+8:], clientQueries)
	binary.LittleEndian.PutUint64(out[chargedOff+16:], remaining)
	if warning {
		out[chargedOff+24] |= flagWarning
	} else {
		out[chargedOff+24] &^= flagWarning
	}
	if exact {
		out[chargedOff+24] |= flagBudgetExact
	} else {
		out[chargedOff+24] &^= flagBudgetExact
	}
	return out, nil
}
