package wire

// The /insert firehose frames. Records travel as fixed-width vectors of
// original value codes over the full schema (sensitive attribute included,
// at its schema position), so a record costs 2×nAttrs bytes instead of a
// JSON object of attribute and value labels — and decoding is a bounds
// check plus a u16 read per code, no label resolution at all. The frame
// leads with the same str8 id + str8 client prefix as every other kind, so
// PeekHead (and therefore the fleet router) handles insert frames without a
// dedicated path. Insert responses carry no ledger block: inserts charge no
// exposure, which is also why the router's settle path treats a ledger-less
// response as zero-charge.

// InsertReq is the binary body of POST /insert. ID and Client are zero-copy
// views into the decoded frame. The struct is reusable: Decode resets and
// refills it without allocating once its backing storage has grown to the
// workload's steady-state size.
//
//	insertReq := str8(id) str8(client) flags(u8) nAttrs(u8) n(u32) record×n
//	record    := code(u16)×nAttrs
type InsertReq struct {
	ID     []byte
	Client []byte
	Wait   bool
	// NAttrs is the full schema width every record is encoded at. Kept
	// explicit (rather than inferred from Records) so a decoded request
	// re-encodes byte-identically even when it carries zero records.
	NAttrs  int
	Records [][]uint16

	codes []uint16 // arena backing every record
}

// Append encodes the request as one frame appended to dst. Every record
// must be exactly NAttrs codes wide; shorter or longer records would decode
// as a different record boundary, so Append truncates or zero-pads to keep
// the frame self-consistent (callers construct records at schema width by
// construction).
func (m *InsertReq) Append(dst []byte) []byte {
	dst, ps := beginFrame(dst, KindInsertReq)
	dst = appendBytes8(dst, m.ID)
	dst = appendBytes8(dst, m.Client)
	var flags byte
	if m.Wait {
		flags |= flagWait
	}
	dst = append(dst, flags)
	dst = append(dst, byte(m.NAttrs))
	dst = appendU32(dst, uint32(len(m.Records)))
	for _, rec := range m.Records {
		for i := 0; i < m.NAttrs; i++ {
			var c uint16
			if i < len(rec) {
				c = rec[i]
			}
			dst = appendU16(dst, c)
		}
	}
	return endFrame(dst, ps)
}

// Decode parses a full frame. On error the struct contents are undefined;
// on success ID and Client alias the frame.
func (m *InsertReq) Decode(frame []byte) error {
	p, err := payload(frame, KindInsertReq)
	if err != nil {
		return err
	}
	r := reader{b: p, ok: true}
	m.ID = r.bytes8()
	m.Client = r.bytes8()
	flags := r.u8()
	if flags&^byte(flagWait) != 0 {
		return ErrFlags
	}
	m.Wait = flags&flagWait != 0
	m.NAttrs = int(r.u8())
	n := int(r.u32())
	if !r.ok {
		return ErrTruncated
	}
	// Each record is exactly 2×NAttrs bytes; a declared count that cannot
	// fit is rejected before any allocation sized from it. Zero-width
	// records would make any count "fit", so they are rejected outright.
	if m.NAttrs == 0 {
		if n != 0 {
			return ErrCount
		}
	} else if n > r.remaining()/(2*m.NAttrs) {
		return ErrCount
	}
	m.Records = m.Records[:0]
	m.codes = m.codes[:0]
	for i := 0; i < n; i++ {
		for j := 0; j < m.NAttrs; j++ {
			m.codes = append(m.codes, r.u16())
		}
	}
	if !r.ok {
		return ErrTruncated
	}
	if r.remaining() != 0 {
		return ErrTrailing
	}
	// Views are cut only now: the arena has stopped growing, so they stay
	// valid for the life of the decoded request.
	for i := 0; i < n; i++ {
		off := i * m.NAttrs
		m.Records = append(m.Records, m.codes[off:off+m.NAttrs:off+m.NAttrs])
	}
	return nil
}

// InsertResp is the binary body of a successful POST /insert, mirroring the
// JSON insertResponse counters.
//
//	insertResp := str8(id) str8(client) inserted(u32) trials(u32)
//	              absorbed(u32) totalRecords(u64)
type InsertResp struct {
	ID     []byte
	Client []byte
	// Inserted = Trials + Absorbed: records published by a fresh
	// perturbation trial vs. folded in by duplication (the streaming
	// analogue of SPS Scaling).
	Inserted uint32
	Trials   uint32
	Absorbed uint32
	// TotalRecords is the stream's raw record count after this batch.
	TotalRecords uint64
}

// Append encodes the response as one frame appended to dst.
func (m *InsertResp) Append(dst []byte) []byte {
	dst, ps := beginFrame(dst, KindInsertResp)
	dst = appendBytes8(dst, m.ID)
	dst = appendBytes8(dst, m.Client)
	dst = appendU32(dst, m.Inserted)
	dst = appendU32(dst, m.Trials)
	dst = appendU32(dst, m.Absorbed)
	dst = appendU64(dst, m.TotalRecords)
	return endFrame(dst, ps)
}

// Decode parses a full frame; byte-slice fields alias it.
func (m *InsertResp) Decode(frame []byte) error {
	p, err := payload(frame, KindInsertResp)
	if err != nil {
		return err
	}
	r := reader{b: p, ok: true}
	m.ID = r.bytes8()
	m.Client = r.bytes8()
	m.Inserted = r.u32()
	m.Trials = r.u32()
	m.Absorbed = r.u32()
	m.TotalRecords = r.u64()
	if !r.ok {
		return ErrTruncated
	}
	if r.remaining() != 0 {
		return ErrTrailing
	}
	return nil
}
