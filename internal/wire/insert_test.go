package wire

import (
	"bytes"
	"errors"
	"testing"
)

// goldenInsertReq and goldenInsertResp feed the byte-exact fixtures in
// testdata/ (insert_req.bin, insert_resp.bin) through the shared
// TestGoldenFrames table, same contract as the query fixtures: drift fails
// the test unless it is deliberate (-update plus a Version bump).
func goldenInsertReq() *InsertReq {
	return &InsertReq{
		ID:     []byte("census-sps"),
		Client: []byte("ingestd"),
		Wait:   true,
		NAttrs: 4,
		Records: [][]uint16{
			{0, 2, 17, 3},
			{1, 0, 999, 0},
			{65535, 255, 0, 12},
		},
	}
}

func goldenInsertResp() *InsertResp {
	return &InsertResp{
		ID:           []byte("census-sps"),
		Client:       []byte("ingestd"),
		Inserted:     3,
		Trials:       2,
		Absorbed:     1,
		TotalRecords: 45225,
	}
}

func TestInsertDecodeErrors(t *testing.T) {
	valid := goldenInsertReq().Append(nil)
	corrupt := func(mut func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		mut(b)
		return b
	}
	// Payload layout: id(1+10) client(1+7) flags(1) nAttrs(1) n(4) records.
	flagsOff := HeaderSize + 11 + 8
	cases := []struct {
		name  string
		frame []byte
		want  error
	}{
		{"empty", nil, ErrTruncated},
		{"wrong kind", corrupt(func(b []byte) { b[3] = KindQueryReq }), ErrKind},
		{"unknown flag", corrupt(func(b []byte) { b[flagsOff] |= 0x80 }), ErrFlags},
		{"truncated records", valid[:len(valid)-2], ErrTruncated},
		{"trailing bytes", append(append([]byte(nil), valid...), 0xEE), ErrTrailing},
		{"count overdeclared", corrupt(func(b []byte) {
			off := flagsOff + 2
			b[off], b[off+1], b[off+2], b[off+3] = 0xFF, 0xFF, 0xFF, 0xFF
		}), ErrCount},
		{"zero-width records", corrupt(func(b []byte) { b[flagsOff+1] = 0 }), ErrCount},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var m InsertReq
			if err := m.Decode(tc.frame); !errors.Is(err, tc.want) {
				t.Fatalf("Decode = %v, want %v", err, tc.want)
			}
		})
	}

	t.Run("zero records zero width ok", func(t *testing.T) {
		// nAttrs = 0 with n = 0 is a legal (if useless) frame — only a
		// nonzero count at zero width is rejected.
		src := &InsertReq{ID: []byte("p"), Client: []byte("c")}
		var m InsertReq
		if err := m.Decode(src.Append(nil)); err != nil {
			t.Fatal(err)
		}
		if len(m.Records) != 0 || m.NAttrs != 0 {
			t.Fatalf("decoded %#v", m)
		}
	})
}

func TestInsertRoundTripReusesState(t *testing.T) {
	var m InsertReq
	first := goldenInsertReq()
	second := &InsertReq{ID: []byte("x"), NAttrs: 2, Records: [][]uint16{{7, 8}}}
	for _, src := range []*InsertReq{first, second, first} {
		frame := src.Append(nil)
		if err := m.Decode(frame); err != nil {
			t.Fatal(err)
		}
		if !equivalentMessage(&m, src) {
			t.Fatalf("reused decode diverged:\n got %#v\nwant %#v", m, src)
		}
		if out := m.Append(nil); !bytes.Equal(out, frame) {
			t.Fatalf("re-encode drift:\n got %x\nwant %x", out, frame)
		}
	}
}

// TestInsertDecodeAllocs extends the zero-allocation pin to the firehose
// path: a warmed InsertReq decoder parses a steady-state batch without
// allocating, which is what lets serveload pump record batches at wire
// speed.
func TestInsertDecodeAllocs(t *testing.T) {
	frame := goldenInsertReq().Append(nil)
	respFrame := goldenInsertResp().Append(nil)
	var req InsertReq
	var resp InsertResp
	if err := req.Decode(frame); err != nil {
		t.Fatal(err)
	}
	if err := resp.Decode(respFrame); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() { _ = req.Decode(frame) }); n != 0 {
		t.Fatalf("decode InsertReq: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { _ = resp.Decode(respFrame) }); n != 0 {
		t.Fatalf("decode InsertResp: %v allocs/op, want 0", n)
	}
	buf := make([]byte, 0, 4096)
	if n := testing.AllocsPerRun(200, func() { buf = goldenFixedInsertReq.Append(buf[:0]) }); n != 0 {
		t.Fatalf("encode InsertReq: %v allocs/op, want 0", n)
	}
}

var goldenFixedInsertReq = goldenInsertReq()

// TestInsertRaggedRecords pins the encoder's self-consistency rule: records
// shorter than NAttrs are zero-padded and longer ones truncated, so the
// frame always decodes at the declared width.
func TestInsertRaggedRecords(t *testing.T) {
	src := &InsertReq{
		ID:     []byte("p"),
		NAttrs: 3,
		Records: [][]uint16{
			{1},          // short: padded to {1, 0, 0}
			{1, 2, 3, 4}, // long: truncated to {1, 2, 3}
		},
	}
	var m InsertReq
	if err := m.Decode(src.Append(nil)); err != nil {
		t.Fatal(err)
	}
	want := [][]uint16{{1, 0, 0}, {1, 2, 3}}
	for i := range want {
		for j := range want[i] {
			if m.Records[i][j] != want[i][j] {
				t.Fatalf("record %d = %v, want %v", i, m.Records[i], want[i])
			}
		}
	}
}
