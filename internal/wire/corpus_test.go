package wire

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestFuzzSeedCorpus materializes the fuzz seed corpora under testdata/fuzz/
// in Go's corpus file format, one file per seed (regenerate with -update).
// Checked-in seeds mean every plain `go test` run — not just -fuzz runs —
// exercises the decoder over the interesting frames, and a fresh checkout
// fuzzes from a warm start.
func TestFuzzSeedCorpus(t *testing.T) {
	type seed struct {
		target string
		name   string
		lines  []string
	}
	bs := func(b []byte) string { return fmt.Sprintf("[]byte(%s)", strconv.Quote(string(b))) }
	seeds := []seed{
		{"FuzzWireDecode", "query_req", []string{bs(goldenQueryReq().Append(nil))}},
		{"FuzzWireDecode", "query_resp", []string{bs(goldenQueryResp().Append(nil))}},
		{"FuzzWireDecode", "reconstruct_req", []string{bs(goldenReconstructReq().Append(nil))}},
		{"FuzzWireDecode", "reconstruct_resp", []string{bs(goldenReconstructResp().Append(nil))}},
		{"FuzzWireDecode", "insert_req", []string{bs(goldenInsertReq().Append(nil))}},
		{"FuzzWireDecode", "insert_resp", []string{bs(goldenInsertResp().Append(nil))}},
		{"FuzzWireDecode", "empty", []string{bs(nil)}},
		{"FuzzWireDecode", "overdeclared", []string{bs([]byte{magic0, magic1, Version, KindQueryReq, 0xFF, 0xFF, 0xFF, 0xFF})}},
		{"FuzzCondDecode", "two_conds", []string{
			bs(condCorpusPrefix(1)), bs([]byte{2, 0, 1, 3, 0, 5, 0}),
		}},
		{"FuzzCondDecode", "zero_queries", []string{bs(condCorpusPrefix(0)), bs(nil)}},
		{"FuzzCondDecode", "undersupplied", []string{
			bs(condCorpusPrefix(3)), bs([]byte{1, 0, 255, 255, 255, 255, 255}),
		}},
		{"FuzzFrameRoundTrip", "typical", []string{
			`string("census-sps")`, `string("analyst")`, "bool(true)",
			"uint16(3)", "uint16(1)", "uint16(2)", "uint16(40000)", "uint16(7)",
		}},
		{"FuzzFrameRoundTrip", "zeroes", []string{
			`string("")`, `string("")`, "bool(false)",
			"uint16(0)", "uint16(0)", "uint16(0)", "uint16(0)", "uint16(0)",
		}},
		{"FuzzFrameRoundTrip", "extremes", []string{
			`string("id")`, `string("client-with-a-longer-name")`, "bool(true)",
			"uint16(65535)", "uint16(255)", "uint16(65535)", "uint16(1)", "uint16(9)",
		}},
	}
	for _, s := range seeds {
		dir := filepath.Join("testdata", "fuzz", s.target)
		path := filepath.Join(dir, s.name)
		content := "go test fuzz v1\n"
		for _, l := range s.lines {
			content += l + "\n"
		}
		if *update {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing fuzz seed (run go test ./internal/wire -run FuzzSeedCorpus -update): %v", err)
		}
		if string(got) != content {
			t.Fatalf("fuzz seed %s drifted from the format (regenerate with -update)", path)
		}
	}
}

// condCorpusPrefix builds FuzzCondDecode's head input: a valid frame up to
// the query count, which the fuzzer splices fuzzed query bytes onto.
func condCorpusPrefix(n uint32) []byte {
	m := &QueryReq{ID: []byte("p"), Client: []byte("c")}
	frame := m.Append(nil)
	frame[len(frame)-4], frame[len(frame)-3], frame[len(frame)-2], frame[len(frame)-1] =
		byte(n), byte(n>>8), byte(n>>16), byte(n>>24)
	return frame
}
