// Package wire implements the compact binary framing for the server's
// hottest endpoints: POST /query, POST /reconstruct, and the POST /insert
// firehose. JSON remains the default encoding everywhere; a client opts in
// per request with
// Content-Type: application/x-rp-binary, and the server answers success in
// the same encoding (errors stay in the JSON ErrorBody envelope so the
// typed error taxonomy is shared by both paths).
//
// Every frame is length-prefixed and little-endian:
//
//	frame     := 'R' 'P' version(u8) kind(u8) payloadLen(u32) payload
//	queryReq  := str8(id) str8(client) flags(u8) n(u32) query×n
//	query     := sa(u16) nConds(u8) cond×nConds
//	cond      := attr(u16) value(u16)
//	queryResp := ledger n(u32) answer×n
//	answer    := 0x00 count(u64) estimate(f64)  |  0x01 str16(error)
//	reconReq  := str8(id) str8(client) flags(u8) n(u32) subset×n
//	subset    := nConds(u8) cond×nConds
//	reconResp := ledger n(u32) result×n
//	result    := 0x00 size(u64) nFreqs(u16) f64×nFreqs  |  0x01 str16(error)
//	ledger    := str8(id) str8(client) charged(u64) clientQueries(u64)
//	             budgetRemaining(u64) flags(u8) serveMicros(u64)
//	insertReq := str8(id) str8(client) flags(u8) nAttrs(u8) n(u32) record×n
//	record    := code(u16)×nAttrs
//	insertResp:= str8(id) str8(client) inserted(u32) trials(u32)
//	             absorbed(u32) totalRecords(u64)
//
// str8/str16 are length-prefixed byte strings (u8/u16 length). Request
// flags: bit0 = wait, bit1 = clamp (reconstruct only). Response flags:
// bit0 = exposure warning, bit1 = budget counts are exact (an unset bit
// means sketch upper bounds). budgetRemaining is the client's window
// budget left after the charge; all-ones means enforcement is disabled.
// Conditions carry original schema codes — attr
// is the attribute's schema index, value the index into its original
// Values list — and the server maps them through the publication's
// generalization, exactly mirroring the JSON label resolution.
//
// The ledger block sits at a computable offset before the variable-length
// answers, so a routing layer (internal/fleet) can charge its own
// authoritative ledger and patch client/client_queries/exposure_warning
// without re-encoding the answers.
//
// The codec is allocation-free on the steady state: decoders parse into
// reusable structs whose backing slices persist across calls, byte-string
// fields are zero-copy views into the frame, and encoders append into a
// caller-owned buffer. Decoded requests therefore alias the frame buffer
// — the buffer must outlive the decoded struct.
package wire

import (
	"encoding/binary"
	"errors"
	"sync"
)

// ContentType is the negotiation token: requests carrying it are decoded
// as binary frames and answered in kind.
const ContentType = "application/x-rp-binary"

// Version is the frame format version this package speaks. The decoder
// rejects any other value, so a format change must bump it. Version 2
// added the ledger's budgetRemaining field and the budget-exact response
// flag.
const Version = 2

// HeaderSize is the fixed frame header length in bytes.
const HeaderSize = 8

const (
	magic0 = 'R'
	magic1 = 'P'
)

// Frame kinds.
const (
	KindQueryReq        = 1
	KindQueryResp       = 2
	KindReconstructReq  = 3
	KindReconstructResp = 4
	KindInsertReq       = 5
	KindInsertResp      = 6
)

// Request flag bits.
const (
	flagWait  = 1 << 0
	flagClamp = 1 << 1
)

// Response flag bits.
const (
	flagWarning     = 1 << 0
	flagBudgetExact = 1 << 1
)

// The decoder's typed failure set. Servers map all of these onto the
// bad_request error code; tests and the fuzzers distinguish them with
// errors.Is.
var (
	// ErrTruncated reports a frame shorter than its header or declared
	// payload demands.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrMagic reports a body that is not a wire frame at all.
	ErrMagic = errors.New("wire: bad magic")
	// ErrVersion reports an unsupported format version.
	ErrVersion = errors.New("wire: unsupported version")
	// ErrKind reports a frame of the wrong kind for the decoder invoked.
	ErrKind = errors.New("wire: unexpected frame kind")
	// ErrTrailing reports bytes beyond the declared payload, or payload
	// bytes beyond the last field — both mean a corrupt or hostile frame.
	ErrTrailing = errors.New("wire: trailing bytes")
	// ErrCount reports a declared element count that cannot fit in the
	// remaining payload — caught before any allocation sized from it.
	ErrCount = errors.New("wire: declared count exceeds frame size")
	// ErrFlags reports flag bits or a union tag this version does not
	// define; rejecting them keeps decode(frame) a bijection (every
	// accepted frame re-encodes byte-identically, the property the
	// round-trip fuzzer pins).
	ErrFlags = errors.New("wire: unknown flag or tag value")
)

// FrameKind returns the kind byte of a frame after validating the header,
// without touching the payload. Routing layers dispatch on it.
func FrameKind(frame []byte) (byte, error) {
	if len(frame) < HeaderSize {
		return 0, ErrTruncated
	}
	if frame[0] != magic0 || frame[1] != magic1 {
		return 0, ErrMagic
	}
	if frame[2] != Version {
		return 0, ErrVersion
	}
	return frame[3], nil
}

// IsFrame reports whether a body looks like a wire frame (magic bytes
// present) — the cheap sniff routing layers use to pick a decode path.
func IsFrame(body []byte) bool {
	return len(body) >= HeaderSize && body[0] == magic0 && body[1] == magic1
}

// payload validates the full header against an expected kind and returns
// the payload view.
func payload(frame []byte, kind byte) ([]byte, error) {
	k, err := FrameKind(frame)
	if err != nil {
		return nil, err
	}
	if k != kind {
		return nil, ErrKind
	}
	n := int(binary.LittleEndian.Uint32(frame[4:8]))
	switch {
	case n > len(frame)-HeaderSize:
		return nil, ErrTruncated
	case n < len(frame)-HeaderSize:
		return nil, ErrTrailing
	}
	return frame[HeaderSize:], nil
}

// maxPooledBuffer bounds the buffers kept by the pool: one giant request
// must not pin its buffer forever.
const maxPooledBuffer = 1 << 22

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// GetBuffer returns a pooled byte buffer (length 0) for frame encoding or
// request body reads. Return it with PutBuffer.
func GetBuffer() *[]byte {
	return bufPool.Get().(*[]byte)
}

// PutBuffer returns a buffer to the pool. Oversized buffers are dropped.
func PutBuffer(b *[]byte) {
	if cap(*b) > maxPooledBuffer {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}
