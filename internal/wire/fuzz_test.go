package wire

import (
	"bytes"
	"testing"
)

// The fuzzers' contract is the server's: any byte string fed to a decoder
// either decodes cleanly or returns a typed error — never a panic, an
// out-of-bounds read, or a hang. Seed corpora live in testdata/fuzz/ and
// are exercised on every plain `go test` run; CI additionally runs each
// target for a short randomized budget.

// FuzzWireDecode drives every frame decoder over arbitrary bytes, reusing
// one decoder per kind across inputs the way the server's pooled scratch
// does — state leakage between hostile frames would surface here.
func FuzzWireDecode(f *testing.F) {
	f.Add(goldenQueryReq().Append(nil))
	f.Add(goldenQueryResp().Append(nil))
	f.Add(goldenReconstructReq().Append(nil))
	f.Add(goldenReconstructResp().Append(nil))
	f.Add(goldenInsertReq().Append(nil))
	f.Add(goldenInsertResp().Append(nil))
	f.Add([]byte{})
	f.Add([]byte{magic0, magic1, Version, KindQueryReq, 0xFF, 0xFF, 0xFF, 0xFF})

	var qreq QueryReq
	var qresp QueryResp
	var rreq ReconstructReq
	var rresp ReconstructResp
	var ireq InsertReq
	var iresp InsertResp
	f.Fuzz(func(t *testing.T, frame []byte) {
		if err := qreq.Decode(frame); err == nil {
			// A frame the decoder accepts must re-encode to the same bytes:
			// decode is a bijection on valid frames.
			if out := qreq.Append(nil); !bytes.Equal(out, frame) {
				t.Fatalf("query req round-trip drift:\n in  %x\n out %x", frame, out)
			}
		}
		if err := qresp.Decode(frame); err == nil {
			if out := qresp.Append(nil); !bytes.Equal(out, frame) {
				t.Fatalf("query resp round-trip drift:\n in  %x\n out %x", frame, out)
			}
		}
		if err := rreq.Decode(frame); err == nil {
			if out := rreq.Append(nil); !bytes.Equal(out, frame) {
				t.Fatalf("reconstruct req round-trip drift:\n in  %x\n out %x", frame, out)
			}
		}
		if err := rresp.Decode(frame); err == nil {
			if out := rresp.Append(nil); !bytes.Equal(out, frame) {
				t.Fatalf("reconstruct resp round-trip drift:\n in  %x\n out %x", frame, out)
			}
		}
		if err := ireq.Decode(frame); err == nil {
			if out := ireq.Append(nil); !bytes.Equal(out, frame) {
				t.Fatalf("insert req round-trip drift:\n in  %x\n out %x", frame, out)
			}
		}
		if err := iresp.Decode(frame); err == nil {
			if out := iresp.Append(nil); !bytes.Equal(out, frame) {
				t.Fatalf("insert resp round-trip drift:\n in  %x\n out %x", frame, out)
			}
		}
		// The routing-layer helpers must tolerate the same inputs.
		if _, err := PeekHead(frame); err == nil {
			if _, err := ReadLedger(frame); err == nil {
				if _, perr := PatchLedger(append([]byte(nil), frame...), []byte("patched"), 1, 2, true, false); perr != nil {
					t.Fatalf("ReadLedger ok but PatchLedger failed: %v", perr)
				}
			}
		}
	})
}

// FuzzCondDecode focuses the condition-block parser: a valid prefix (id,
// client, flags, count) followed by fuzzed query/cond bytes, hunting for
// arena and span bookkeeping bugs in the hot inner loop.
func FuzzCondDecode(f *testing.F) {
	f.Add(condCorpusPrefix(1), []byte{2, 0, 1, 3, 0, 5, 0})
	f.Add(condCorpusPrefix(2), []byte{0, 0, 0, 0, 0, 0})
	f.Add(condCorpusPrefix(0), []byte{})
	f.Add(condCorpusPrefix(3), []byte{1, 0, 255, 255, 255, 255, 255})

	var m QueryReq
	f.Fuzz(func(t *testing.T, head, tail []byte) {
		if len(head) == 0 {
			return
		}
		frame := append(append([]byte(nil), head...), tail...)
		if len(frame) >= HeaderSize {
			// Keep the declared length honest so the fuzzer spends its
			// budget inside the condition parser, not the header check.
			n := uint32(len(frame) - HeaderSize)
			frame[4], frame[5], frame[6], frame[7] = byte(n), byte(n>>8), byte(n>>16), byte(n>>24)
		}
		if err := m.Decode(frame); err != nil {
			return
		}
		// Structural invariants of a successful decode: spans partition the
		// arena in order, and every view lands inside it.
		total := 0
		for i := range m.Queries {
			total += len(m.Queries[i].Conds)
		}
		if total != len(m.conds) {
			t.Fatalf("views cover %d conds, arena holds %d", total, len(m.conds))
		}
	})
}

// FuzzFrameRoundTrip drives the encoder from fuzzed message content and
// requires decode(encode(msg)) to reproduce the message exactly — the
// property the golden fixtures pin for four points, extended to the whole
// input space the encoder accepts.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add("census-sps", "analyst", true, uint16(3), uint16(1), uint16(2), uint16(40000), uint16(7))
	f.Add("", "", false, uint16(0), uint16(0), uint16(0), uint16(0), uint16(0))
	f.Add("id", "client-with-a-longer-name", true, uint16(65535), uint16(255), uint16(65535), uint16(1), uint16(9))

	f.Fuzz(func(t *testing.T, id, client string, wait bool, sa, a0, v0, a1, v1 uint16) {
		src := &QueryReq{
			ID:     []byte(id),
			Client: []byte(client),
			Wait:   wait,
			Queries: []Query{
				{SA: sa, Conds: []Cond{{Attr: int(a0), Value: v0}, {Attr: int(a1), Value: v1}}},
				{SA: v1, Conds: []Cond{}},
				{SA: a1, Conds: []Cond{{Attr: int(v0), Value: a0}}},
			},
		}
		frame := src.Append(nil)
		var got QueryReq
		if err := got.Decode(frame); err != nil {
			t.Fatalf("decode of encoded frame failed: %v", err)
		}
		// The encoder truncates oversized ids; mirror that before comparing.
		want := *src
		if len(want.ID) > 255 {
			want.ID = want.ID[:255]
		}
		if len(want.Client) > 255 {
			want.Client = want.Client[:255]
		}
		if !equivalentMessage(&got, &want) {
			t.Fatalf("round trip drift:\n got %#v\nwant %#v", got, want)
		}

		rsrc := &ReconstructResp{
			ID:          []byte(id),
			Client:      []byte(client),
			Ledger:      Ledger{Charged: uint64(sa), ClientQueries: uint64(a0), ExposureWarning: wait},
			ServeMicros: uint64(v0),
			Results: []RecResult{
				{Size: int64(a1), Freqs: []float64{float64(v1) / 7, 0.25}},
				{Err: []byte(client)},
			},
		}
		rframe := rsrc.Append(nil)
		var rgot ReconstructResp
		if err := rgot.Decode(rframe); err != nil {
			t.Fatalf("reconstruct resp decode of encoded frame failed: %v", err)
		}
		rwant := *rsrc
		if len(rwant.ID) > 255 {
			rwant.ID = rwant.ID[:255]
		}
		if len(rwant.Client) > 255 {
			rwant.Client = rwant.Client[:255]
		}
		if !equivalentMessage(&rgot, &rwant) {
			t.Fatalf("reconstruct resp round trip drift:\n got %#v\nwant %#v", rgot, rwant)
		}
	})
}
