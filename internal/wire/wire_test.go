package wire

import (
	"bytes"
	"errors"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden wire fixtures")

// goldenQueryReq and friends are the fixed representative messages behind
// the byte-exact fixtures in testdata/. Changing the wire format changes
// their encoding and fails TestGoldenFrames — which is the point: format
// drift must be deliberate (regenerate with -update and bump Version).
func goldenQueryReq() *QueryReq {
	return &QueryReq{
		ID:     []byte("census-sps"),
		Client: []byte("analyst-7"),
		Wait:   true,
		Queries: []Query{
			{SA: 3, Conds: []Cond{{Attr: 0, Value: 2}, {Attr: 4, Value: 17}}},
			{SA: 0, Conds: []Cond{{Attr: 2, Value: 999}}},
			{SA: 12, Conds: []Cond{{Attr: 1, Value: 0}, {Attr: 3, Value: 5}, {Attr: 5, Value: 1}}},
		},
	}
}

func goldenQueryResp() *QueryResp {
	return &QueryResp{
		ID:          []byte("census-sps"),
		Client:      []byte("analyst-7"),
		Ledger:      Ledger{Charged: 3, ClientQueries: 4242, BudgetRemaining: 1758, ExposureWarning: true, BudgetExact: true},
		ServeMicros: 1234,
		Answers: []Answer{
			{Count: 118, Estimate: 127.75},
			{Err: []byte("query: SA value 99 out of domain")},
			{Count: 0, Estimate: 0},
		},
	}
}

func goldenReconstructReq() *ReconstructReq {
	return &ReconstructReq{
		ID:     []byte("census-sps"),
		Client: []byte("adversary"),
		Clamp:  true,
		Subsets: [][]Cond{
			{{Attr: 0, Value: 1}, {Attr: 2, Value: 3}},
			{},
			{{Attr: 4, Value: 65535}},
		},
	}
}

func goldenReconstructResp() *ReconstructResp {
	return &ReconstructResp{
		ID:          []byte("census-sps"),
		Client:      []byte("adversary"),
		Ledger:      Ledger{Charged: 42, ClientQueries: 99, BudgetRemaining: UnlimitedBudget},
		ServeMicros: 77,
		Results: []RecResult{
			{Size: 311, Freqs: []float64{0.25, 0.5, 0, 0.25}},
			{Err: []byte("serve: attribute index 300 out of range")},
			{Size: 0},
		},
	}
}

func TestGoldenFrames(t *testing.T) {
	cases := []struct {
		file   string
		encode func() []byte
		decode func([]byte) (any, error)
		want   any
	}{
		{
			"query_req.bin",
			func() []byte { return goldenQueryReq().Append(nil) },
			func(b []byte) (any, error) { var m QueryReq; err := m.Decode(b); return &m, err },
			goldenQueryReq(),
		},
		{
			"query_resp.bin",
			func() []byte { return goldenQueryResp().Append(nil) },
			func(b []byte) (any, error) { var m QueryResp; err := m.Decode(b); return &m, err },
			goldenQueryResp(),
		},
		{
			"reconstruct_req.bin",
			func() []byte { return goldenReconstructReq().Append(nil) },
			func(b []byte) (any, error) { var m ReconstructReq; err := m.Decode(b); return &m, err },
			goldenReconstructReq(),
		},
		{
			"reconstruct_resp.bin",
			func() []byte { return goldenReconstructResp().Append(nil) },
			func(b []byte) (any, error) { var m ReconstructResp; err := m.Decode(b); return &m, err },
			goldenReconstructResp(),
		},
		{
			"insert_req.bin",
			func() []byte { return goldenInsertReq().Append(nil) },
			func(b []byte) (any, error) { var m InsertReq; err := m.Decode(b); return &m, err },
			goldenInsertReq(),
		},
		{
			"insert_resp.bin",
			func() []byte { return goldenInsertResp().Append(nil) },
			func(b []byte) (any, error) { var m InsertResp; err := m.Decode(b); return &m, err },
			goldenInsertResp(),
		},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			path := filepath.Join("testdata", tc.file)
			got := tc.encode()
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run go test ./internal/wire -run Golden -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("encoding drifted from golden %s:\n got %x\nwant %x\n"+
					"a deliberate format change must bump wire.Version and regenerate with -update",
					tc.file, got, want)
			}
			// The golden bytes also decode back to the source message —
			// fixture and codec agree in both directions.
			dec, err := tc.decode(want)
			if err != nil {
				t.Fatalf("decoding golden %s: %v", tc.file, err)
			}
			if !equivalentMessage(dec, tc.want) {
				t.Fatalf("golden %s decoded to\n%#v\nwant\n%#v", tc.file, dec, tc.want)
			}
		})
	}
}

// equivalentMessage compares a decoded message against its source, looking
// only at exported fields (decode scratch like arenas and spans differs by
// construction, and nil-vs-empty Conds on an empty subset is not
// observable).
func equivalentMessage(got, want any) bool {
	switch g := got.(type) {
	case *QueryReq:
		w := want.(*QueryReq)
		if !bytes.Equal(g.ID, w.ID) || !bytes.Equal(g.Client, w.Client) || g.Wait != w.Wait ||
			len(g.Queries) != len(w.Queries) {
			return false
		}
		for i := range g.Queries {
			if g.Queries[i].SA != w.Queries[i].SA || !condsEqual(g.Queries[i].Conds, w.Queries[i].Conds) {
				return false
			}
		}
		return true
	case *QueryResp:
		w := want.(*QueryResp)
		if !bytes.Equal(g.ID, w.ID) || !bytes.Equal(g.Client, w.Client) ||
			g.Ledger != w.Ledger || g.ServeMicros != w.ServeMicros || len(g.Answers) != len(w.Answers) {
			return false
		}
		for i := range g.Answers {
			ga, wa := g.Answers[i], w.Answers[i]
			if ga.Count != wa.Count || ga.Estimate != wa.Estimate || !bytes.Equal(ga.Err, wa.Err) {
				return false
			}
		}
		return true
	case *ReconstructReq:
		w := want.(*ReconstructReq)
		if !bytes.Equal(g.ID, w.ID) || !bytes.Equal(g.Client, w.Client) ||
			g.Clamp != w.Clamp || g.Wait != w.Wait || len(g.Subsets) != len(w.Subsets) {
			return false
		}
		for i := range g.Subsets {
			if !condsEqual(g.Subsets[i], w.Subsets[i]) {
				return false
			}
		}
		return true
	case *InsertReq:
		w := want.(*InsertReq)
		if !bytes.Equal(g.ID, w.ID) || !bytes.Equal(g.Client, w.Client) ||
			g.Wait != w.Wait || g.NAttrs != w.NAttrs || len(g.Records) != len(w.Records) {
			return false
		}
		for i := range g.Records {
			if len(g.Records[i]) != len(w.Records[i]) {
				return false
			}
			for j := range g.Records[i] {
				if g.Records[i][j] != w.Records[i][j] {
					return false
				}
			}
		}
		return true
	case *InsertResp:
		w := want.(*InsertResp)
		return bytes.Equal(g.ID, w.ID) && bytes.Equal(g.Client, w.Client) &&
			g.Inserted == w.Inserted && g.Trials == w.Trials &&
			g.Absorbed == w.Absorbed && g.TotalRecords == w.TotalRecords
	case *ReconstructResp:
		w := want.(*ReconstructResp)
		if !bytes.Equal(g.ID, w.ID) || !bytes.Equal(g.Client, w.Client) ||
			g.Ledger != w.Ledger || g.ServeMicros != w.ServeMicros || len(g.Results) != len(w.Results) {
			return false
		}
		for i := range g.Results {
			gr, wr := g.Results[i], w.Results[i]
			if gr.Size != wr.Size || !bytes.Equal(gr.Err, wr.Err) || len(gr.Freqs) != len(wr.Freqs) {
				return false
			}
			for j := range gr.Freqs {
				if math.Float64bits(gr.Freqs[j]) != math.Float64bits(wr.Freqs[j]) {
					return false
				}
			}
		}
		return true
	}
	return false
}

func condsEqual(a, b []Cond) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRoundTripReusesState(t *testing.T) {
	// Decoding different messages through one reused struct must not leak
	// state between frames.
	var m QueryReq
	first := goldenQueryReq()
	second := &QueryReq{ID: []byte("x"), Queries: []Query{{SA: 1}}}
	for _, src := range []*QueryReq{first, second, first} {
		frame := src.Append(nil)
		if err := m.Decode(frame); err != nil {
			t.Fatal(err)
		}
		if !equivalentMessage(&m, src) {
			t.Fatalf("reused decode diverged:\n got %#v\nwant %#v", m, src)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	valid := goldenQueryReq().Append(nil)
	corrupt := func(mut func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		mut(b)
		return b
	}
	cases := []struct {
		name  string
		frame []byte
		want  error
	}{
		{"empty", nil, ErrTruncated},
		{"short header", valid[:HeaderSize-1], ErrTruncated},
		{"bad magic", corrupt(func(b []byte) { b[0] = 'X' }), ErrMagic},
		{"bad version", corrupt(func(b []byte) { b[2] = 9 }), ErrVersion},
		{"wrong kind", corrupt(func(b []byte) { b[3] = KindQueryResp }), ErrKind},
		{"truncated payload", valid[:len(valid)-3], ErrTruncated},
		{"trailing bytes", append(append([]byte(nil), valid...), 0xEE), ErrTrailing},
		{"length overdeclared", corrupt(func(b []byte) { b[4] = 0xFF; b[5] = 0xFF }), ErrTruncated},
		{"count overdeclared", corrupt(func(b []byte) {
			// n sits after id(1+10) + client(1+9) + flags(1) in the payload.
			off := HeaderSize + 22
			b[off], b[off+1], b[off+2], b[off+3] = 0xFF, 0xFF, 0xFF, 0xFF
		}), ErrCount},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var m QueryReq
			if err := m.Decode(tc.frame); !errors.Is(err, tc.want) {
				t.Fatalf("Decode = %v, want %v", err, tc.want)
			}
		})
	}

	t.Run("bad answer tag", func(t *testing.T) {
		resp := goldenQueryResp().Append(nil)
		// First answer tag sits after the ledger block and count.
		off := HeaderSize + 1 + 10 + 1 + 9 + 8 + 8 + 8 + 1 + 8 + 4
		resp[off] = 7
		var m QueryResp
		if err := m.Decode(resp); !errors.Is(err, ErrFlags) {
			t.Fatalf("Decode = %v, want %v", err, ErrFlags)
		}
	})
}

// TestDecodeAllocs pins the zero-allocation steady state: once a reused
// decoder has grown its backing slices, decoding and encoding the same
// workload shape allocates nothing. Run under -race in CI.
func TestDecodeAllocs(t *testing.T) {
	reqFrame := goldenQueryReq().Append(nil)
	respFrame := goldenQueryResp().Append(nil)
	rreqFrame := goldenReconstructReq().Append(nil)
	rrespFrame := goldenReconstructResp().Append(nil)

	var req QueryReq
	var resp QueryResp
	var rreq ReconstructReq
	var rresp ReconstructResp
	// Warm: first decode grows the arenas.
	for _, err := range []error{req.Decode(reqFrame), resp.Decode(respFrame),
		rreq.Decode(rreqFrame), rresp.Decode(rrespFrame)} {
		if err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		name string
		fn   func()
	}{
		{"decode QueryReq", func() { _ = req.Decode(reqFrame) }},
		{"decode QueryResp", func() { _ = resp.Decode(respFrame) }},
		{"decode ReconstructReq", func() { _ = rreq.Decode(rreqFrame) }},
		{"decode ReconstructResp", func() { _ = rresp.Decode(rrespFrame) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if n := testing.AllocsPerRun(200, tc.fn); n != 0 {
				t.Fatalf("%s: %v allocs/op, want 0", tc.name, n)
			}
		})
	}

	// Encoding into a warmed buffer is also allocation-free.
	buf := make([]byte, 0, 4096)
	encCases := []struct {
		name string
		fn   func()
	}{
		{"encode QueryReq", func() { buf = goldenFixedQueryReq.Append(buf[:0]) }},
		{"encode QueryResp", func() { buf = goldenFixedQueryResp.Append(buf[:0]) }},
		{"encode ReconstructReq", func() { buf = goldenFixedReconReq.Append(buf[:0]) }},
		{"encode ReconstructResp", func() { buf = goldenFixedReconResp.Append(buf[:0]) }},
	}
	for _, tc := range encCases {
		t.Run(tc.name, func(t *testing.T) {
			if n := testing.AllocsPerRun(200, tc.fn); n != 0 {
				t.Fatalf("%s: %v allocs/op, want 0", tc.name, n)
			}
		})
	}
}

// Package-level fixtures for the encode alloc runs: building them inside
// the measured closure would count the message construction itself.
var (
	goldenFixedQueryReq  = goldenQueryReq()
	goldenFixedQueryResp = goldenQueryResp()
	goldenFixedReconReq  = goldenReconstructReq()
	goldenFixedReconResp = goldenReconstructResp()
)

func TestPeekHead(t *testing.T) {
	frames := map[byte][]byte{
		KindQueryReq:        goldenQueryReq().Append(nil),
		KindQueryResp:       goldenQueryResp().Append(nil),
		KindReconstructReq:  goldenReconstructReq().Append(nil),
		KindReconstructResp: goldenReconstructResp().Append(nil),
		KindInsertReq:       goldenInsertReq().Append(nil),
		KindInsertResp:      goldenInsertResp().Append(nil),
	}
	for kind, frame := range frames {
		h, err := PeekHead(frame)
		if err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		if h.Kind != kind || string(h.ID) != "census-sps" {
			t.Fatalf("kind %d: head = %+v", kind, h)
		}
	}
	if _, err := PeekHead([]byte("not a frame")); !errors.Is(err, ErrMagic) {
		t.Fatalf("PeekHead on garbage = %v, want %v", err, ErrMagic)
	}
	if _, err := PeekHead(append([]byte{magic0, magic1, Version, 9}, 0, 0, 0, 0)); !errors.Is(err, ErrKind) {
		t.Fatalf("PeekHead on kind 9 = %v, want %v", err, ErrKind)
	}
}

func TestReadAndPatchLedger(t *testing.T) {
	frame := goldenQueryResp().Append(nil)
	led, err := ReadLedger(frame)
	if err != nil {
		t.Fatal(err)
	}
	if led.Charged != 3 || led.ClientQueries != 4242 || led.BudgetRemaining != 1758 || !led.ExposureWarning || !led.BudgetExact {
		t.Fatalf("ReadLedger = %+v", led)
	}

	t.Run("in place", func(t *testing.T) {
		f := append([]byte(nil), frame...)
		out, err := PatchLedger(f, []byte("analyst-7"), 9000, 500, false, false)
		if err != nil {
			t.Fatal(err)
		}
		if &out[0] != &f[0] {
			t.Fatal("same-client patch should be in place")
		}
		var m QueryResp
		if err := m.Decode(out); err != nil {
			t.Fatal(err)
		}
		if m.ClientQueries != 9000 || m.BudgetRemaining != 500 || m.ExposureWarning || m.BudgetExact || m.Charged != 3 {
			t.Fatalf("patched ledger = %+v", m.Ledger)
		}
		if len(m.Answers) != 3 || m.Answers[0].Count != 118 {
			t.Fatalf("answers disturbed: %+v", m.Answers)
		}
	})

	t.Run("splice client", func(t *testing.T) {
		f := append([]byte(nil), frame...)
		out, err := PatchLedger(f, []byte("a-much-longer-client-name"), 7, UnlimitedBudget, true, true)
		if err != nil {
			t.Fatal(err)
		}
		var m QueryResp
		if err := m.Decode(out); err != nil {
			t.Fatal(err)
		}
		if string(m.Client) != "a-much-longer-client-name" || m.ClientQueries != 7 ||
			m.BudgetRemaining != UnlimitedBudget || !m.BudgetExact || !m.ExposureWarning {
			t.Fatalf("spliced ledger = client %q %+v", m.Client, m.Ledger)
		}
		if len(m.Answers) != 3 || m.Answers[1].Err == nil {
			t.Fatalf("answers disturbed: %+v", m.Answers)
		}
	})

	t.Run("rejects requests", func(t *testing.T) {
		if _, err := ReadLedger(goldenQueryReq().Append(nil)); !errors.Is(err, ErrKind) {
			t.Fatalf("ReadLedger on request = %v, want %v", err, ErrKind)
		}
	})
}

func TestBufferPool(t *testing.T) {
	b := GetBuffer()
	*b = append(*b, 1, 2, 3)
	PutBuffer(b)
	b2 := GetBuffer()
	if len(*b2) != 0 {
		t.Fatalf("pooled buffer not reset: len %d", len(*b2))
	}
	PutBuffer(b2)
	// Oversized buffers are dropped, not pooled.
	big := make([]byte, 0, maxPooledBuffer+1)
	PutBuffer(&big)
}

func TestIsFrameAndKind(t *testing.T) {
	frame := goldenQueryReq().Append(nil)
	if !IsFrame(frame) {
		t.Fatal("IsFrame(valid) = false")
	}
	if IsFrame([]byte(`{"id":"x"}`)) {
		t.Fatal("IsFrame(json) = true")
	}
	k, err := FrameKind(frame)
	if err != nil || k != KindQueryReq {
		t.Fatalf("FrameKind = %d, %v", k, err)
	}
}
