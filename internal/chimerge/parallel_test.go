package chimerge

import (
	"reflect"
	"runtime"
	"testing"
)

// The parallel generalization must be bit-identical to the sequential one
// at every worker count: the fused histogram scan accumulates integer
// counts (exact in float64), and each attribute's merge analysis is
// independent of the others.

func TestGeneralizeParallelMatchesSequential(t *testing.T) {
	tab := mergeTable(t, 20000)
	base, err := Generalize(tab, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 7, runtime.GOMAXPROCS(0), 0} {
		got, err := GeneralizeParallel(tab, 0.05, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base.Mappings, got.Mappings) {
			t.Fatalf("workers=%d: mappings differ", workers)
		}
		if !reflect.DeepEqual(base.Attrs, got.Attrs) {
			t.Fatalf("workers=%d: attr results differ", workers)
		}
		if !base.Table.Equal(got.Table) {
			t.Fatalf("workers=%d: remapped table differs", workers)
		}
	}
}

func TestAnalyzeMatchesGeneralizeWithoutTable(t *testing.T) {
	tab := mergeTable(t, 20000)
	base, err := Generalize(tab, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 0} {
		got, err := Analyze(tab, 0.05, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got.Table != nil {
			t.Fatalf("workers=%d: Analyze must not materialize the table", workers)
		}
		if !reflect.DeepEqual(base.Mappings, got.Mappings) {
			t.Fatalf("workers=%d: mappings differ", workers)
		}
		if !reflect.DeepEqual(base.Attrs, got.Attrs) {
			t.Fatalf("workers=%d: attr results differ", workers)
		}
	}
}

func TestMappingForIndexedLookup(t *testing.T) {
	tab := mergeTable(t, 5000)
	res, err := Analyze(tab, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Indexed lookups must agree with a linear scan for every attribute,
	// including out-of-range probes and the SA attribute.
	linear := &Result{Mappings: res.Mappings}
	for attr := -1; attr <= tab.Schema.NumAttrs(); attr++ {
		if got, want := res.MappingFor(attr), linear.MappingFor(attr); got != want {
			t.Errorf("MappingFor(%d) = %p, linear scan = %p", attr, got, want)
		}
	}
}

func TestAnalyzeValidation(t *testing.T) {
	tab := mergeTable(t, 100)
	if _, err := Analyze(tab, 0, 0); err == nil {
		t.Error("significance 0 should error")
	}
	if _, err := Analyze(tab, 1, 0); err == nil {
		t.Error("significance 1 should error")
	}
}
