package chimerge

// unionFind is a standard disjoint-set forest with union by rank and path
// compression, used to extract the connected components of the
// "not statistically distinguishable" graph over attribute values.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	switch {
	case uf.rank[ra] < uf.rank[rb]:
		uf.parent[ra] = rb
	case uf.rank[ra] > uf.rank[rb]:
		uf.parent[rb] = ra
	default:
		uf.parent[rb] = ra
		uf.rank[ra]++
	}
}

// components returns, for each element, a dense component id numbered by
// first appearance, plus the number of components.
func (uf *unionFind) components() ([]int, int) {
	ids := make([]int, len(uf.parent))
	next := 0
	seen := make(map[int]int)
	for i := range uf.parent {
		root := uf.find(i)
		id, ok := seen[root]
		if !ok {
			id = next
			seen[root] = id
			next++
		}
		ids[i] = id
	}
	return ids, next
}
