package chimerge

import (
	"fmt"
	"math"
	"strings"

	"github.com/reconpriv/reconpriv/internal/dataset"
	"github.com/reconpriv/reconpriv/internal/par"
	"github.com/reconpriv/reconpriv/internal/stats"
)

// DefaultSignificance is the conventional 0.05 level the paper uses.
const DefaultSignificance = 0.05

// ChiSquare computes the Eq. 4 statistic for two binned SA distributions
// with (possibly) unequal numbers of data points:
//
//	χ² = Σⱼ (√(R/S)·oⱼ − √(S/R)·o'ⱼ)² / (oⱼ + o'ⱼ),  R = Σoⱼ, S = Σo'ⱼ.
//
// Bins where both counts are zero contribute nothing (their term is 0/0 and
// is skipped, per Numerical Recipes).
func ChiSquare(o, o2 []float64) (float64, error) {
	if len(o) != len(o2) {
		return 0, fmt.Errorf("chimerge: histograms have different lengths %d and %d", len(o), len(o2))
	}
	var r, s float64
	for j := range o {
		r += o[j]
		s += o2[j]
	}
	if r == 0 || s == 0 {
		return 0, fmt.Errorf("chimerge: empty histogram (totals %v, %v)", r, s)
	}
	rs := math.Sqrt(r / s)
	sr := math.Sqrt(s / r)
	var chi2 float64
	for j := range o {
		den := o[j] + o2[j]
		if den == 0 {
			continue
		}
		d := rs*o2[j] - sr*o[j] // symmetric in the pair; sign squared away
		chi2 += d * d / den
	}
	return chi2, nil
}

// SameDistribution runs the paper's test at the given significance level:
// it returns true when the null hypothesis "o and o2 are drawn from the same
// population distribution" is NOT disproven, i.e. when the values should be
// merged. Following the paper, the degrees of freedom equal the number of
// bins m (the two totals are not constrained to match).
func SameDistribution(o, o2 []float64, significance float64) (bool, error) {
	chi2, err := ChiSquare(o, o2)
	if err != nil {
		return false, err
	}
	crit, err := stats.ChiSquareQuantile(1-significance, len(o))
	if err != nil {
		return false, err
	}
	return chi2 <= crit, nil
}

// AttrResult describes the merge outcome for one public attribute.
type AttrResult struct {
	Attr         int    // attribute index in the schema
	Name         string // attribute name
	DomainBefore int
	DomainAfter  int
	Components   []int    // value code -> component id
	OldLabels    []string // original value labels, indexed by old code
}

// Result is the outcome of generalizing a table.
type Result struct {
	Table    *dataset.Table         // remapped table (nil for Analyze results)
	Mappings []dataset.ValueMapping // one per public attribute
	Attrs    []AttrResult           // per-attribute domain impact (Tables 4/5)

	// byAttr indexes Mappings by original attribute (-1: no mapping). It is
	// built by Generalize/Analyze; hand-assembled Results leave it nil and
	// MappingFor falls back to a linear scan.
	byAttr []int
}

// MappingFor returns the value mapping of the given original attribute
// index, or nil if the attribute was not remapped (the SA attribute). For
// Results built by Generalize or Analyze the lookup is one slice index —
// it runs per condition in served-query label translation, so it must not
// rescan Mappings.
func (r *Result) MappingFor(attr int) *dataset.ValueMapping {
	if r.byAttr != nil {
		if attr < 0 || attr >= len(r.byAttr) || r.byAttr[attr] < 0 {
			return nil
		}
		return &r.Mappings[r.byAttr[attr]]
	}
	for i := range r.Mappings {
		if r.Mappings[i].Attr == attr {
			return &r.Mappings[i]
		}
	}
	return nil
}

// Generalize merges, for every public attribute, the values the chi-square
// test cannot distinguish (connected components of the failed-to-disprove
// graph) and returns the remapped table plus the mapping bookkeeping.
func Generalize(t *dataset.Table, significance float64) (*Result, error) {
	return GeneralizeParallel(t, significance, 1)
}

// GeneralizeParallel is Generalize with the histogram scan, the chi-square
// merge analysis, and the table rewrite striped across up to `workers`
// goroutines (0 = GOMAXPROCS). The result is bit-identical to Generalize at
// any worker count: the fused scan accumulates integer-valued counts whose
// merge order cannot change their sums, and each attribute's merge analysis
// is independent.
func GeneralizeParallel(t *dataset.Table, significance float64, workers int) (*Result, error) {
	res, err := Analyze(t, significance, workers)
	if err != nil {
		return nil, err
	}
	out, err := dataset.RemapWorkers(t, res.Mappings, workers)
	if err != nil {
		return nil, err
	}
	res.Table = out
	return res, nil
}

// Analyze runs the chi-square merge analysis without materializing the
// remapped table: Result.Table is nil, everything else matches Generalize.
// Callers that only need the personal groups of the generalized data pair
// Analyze with dataset.GroupsOfMapped and skip the rewrite entirely.
func Analyze(t *dataset.Table, significance float64, workers int) (*Result, error) {
	if significance <= 0 || significance >= 1 {
		return nil, fmt.Errorf("chimerge: significance must be in (0,1), got %v", significance)
	}
	m := t.Schema.SADomain()
	crit, err := stats.ChiSquareQuantile(1-significance, m)
	if err != nil {
		return nil, err
	}
	na := t.Schema.NAIndices()
	hists := fusedHistograms(t, na, m, workers)

	res := &Result{
		Mappings: make([]dataset.ValueMapping, len(na)),
		Attrs:    make([]AttrResult, len(na)),
	}
	attrErrs := make([]error, len(na))
	par.Striped(len(na), workers, func(_, lo, hi int) {
		for ai := lo; ai < hi; ai++ {
			attrErrs[ai] = mergeAttr(t.Schema, na[ai], hists[ai], crit, &res.Mappings[ai], &res.Attrs[ai])
		}
	})
	for _, err := range attrErrs {
		if err != nil {
			return nil, err
		}
	}
	res.byAttr = make([]int, t.Schema.NumAttrs())
	for i := range res.byAttr {
		res.byAttr[i] = -1
	}
	for i := range res.Mappings {
		res.byAttr[res.Mappings[i].Attr] = i
	}
	return res, nil
}

// fusedHistograms accumulates the conditional SA histogram of every public
// attribute in ONE pass over the table — the fused scan that replaces the
// per-attribute pass of the original implementation. Rows are striped
// across workers; each worker owns a private flat accumulator (one block
// per attribute) and the per-worker blocks are summed after the join.
// Counts are integers, so the merge is exact and order-free.
func fusedHistograms(t *dataset.Table, na []int, m, workers int) [][][]float64 {
	// Flat layout: attribute ai's block starts at off[ai] and holds
	// Domain(ai)·m counts, row-major by value code.
	off := make([]int, len(na)+1)
	for i, a := range na {
		off[i+1] = off[i] + t.Schema.Attrs[a].Domain()*m
	}
	total := off[len(na)]
	n := t.NumRows()
	workers = par.Clamp(n, workers)
	locals := make([][]float64, workers)
	par.Striped(n, workers, func(w, lo, hi int) {
		buf := make([]float64, total)
		locals[w] = buf
		sa := t.Schema.SA
		for r := lo; r < hi; r++ {
			row := t.Row(r)
			s := int(row[sa])
			for i, a := range na {
				buf[off[i]+int(row[a])*m+s]++
			}
		}
	})
	merged := locals[0]
	if merged == nil {
		merged = make([]float64, total)
	}
	if len(locals) > 1 {
		// Sum the worker blocks in parallel over disjoint index ranges;
		// float64 additions of integer counts below 2^53 are exact, so the
		// reduction order cannot affect the result.
		par.Striped(total, workers, func(_, lo, hi int) {
			for _, buf := range locals[1:] {
				if buf == nil {
					continue
				}
				for j := lo; j < hi; j++ {
					merged[j] += buf[j]
				}
			}
		})
	}
	out := make([][][]float64, len(na))
	for i, a := range na {
		dom := t.Schema.Attrs[a].Domain()
		block := merged[off[i]:off[i+1]]
		hist := make([][]float64, dom)
		for v := 0; v < dom; v++ {
			hist[v] = block[v*m : (v+1)*m : (v+1)*m]
		}
		out[i] = hist
	}
	return out
}

// mergeAttr runs the pairwise chi-square merge of one attribute's values and
// fills in its mapping and impact record. A nonzero-value prefilter skips
// the empty bins of the O(dom²) pair loop up front, so attributes whose
// observed domain is much smaller than their declared one (sparse CSV
// dictionaries) do not pay for values that never occur.
func mergeAttr(schema *dataset.Schema, attr int, hist [][]float64, crit float64, mapping *dataset.ValueMapping, impact *AttrResult) error {
	dom := len(hist)
	nz := make([]int, 0, dom)
	for v := 0; v < dom; v++ {
		if !isEmpty(hist[v]) {
			nz = append(nz, v)
		}
	}
	uf := newUnionFind(dom)
	for i, a := range nz {
		for _, b := range nz[i+1:] {
			chi2, err := ChiSquare(hist[a], hist[b])
			if err != nil {
				return fmt.Errorf("chimerge: attribute %q values %d,%d: %w",
					schema.Attrs[attr].Name, a, b, err)
			}
			if chi2 <= crit {
				uf.union(a, b)
			}
		}
	}
	comps, numComps := uf.components()
	*mapping = dataset.ValueMapping{
		Attr:      attr,
		OldToNew:  make([]uint16, dom),
		NewValues: make([]string, numComps),
	}
	members := make([][]string, numComps)
	for v := 0; v < dom; v++ {
		c := comps[v]
		mapping.OldToNew[v] = uint16(c)
		members[c] = append(members[c], schema.Attrs[attr].Label(uint16(v)))
	}
	for c := range members {
		mapping.NewValues[c] = strings.Join(members[c], "|")
	}
	*impact = AttrResult{
		Attr:         attr,
		Name:         schema.Attrs[attr].Name,
		DomainBefore: dom,
		DomainAfter:  numComps,
		Components:   comps,
		OldLabels:    append([]string(nil), schema.Attrs[attr].Values...),
	}
	return nil
}

func isEmpty(h []float64) bool {
	for _, v := range h {
		if v != 0 {
			return false
		}
	}
	return true
}
