package chimerge

import (
	"fmt"
	"math"
	"strings"

	"github.com/reconpriv/reconpriv/internal/dataset"
	"github.com/reconpriv/reconpriv/internal/stats"
)

// DefaultSignificance is the conventional 0.05 level the paper uses.
const DefaultSignificance = 0.05

// ChiSquare computes the Eq. 4 statistic for two binned SA distributions
// with (possibly) unequal numbers of data points:
//
//	χ² = Σⱼ (√(R/S)·oⱼ − √(S/R)·o'ⱼ)² / (oⱼ + o'ⱼ),  R = Σoⱼ, S = Σo'ⱼ.
//
// Bins where both counts are zero contribute nothing (their term is 0/0 and
// is skipped, per Numerical Recipes).
func ChiSquare(o, o2 []float64) (float64, error) {
	if len(o) != len(o2) {
		return 0, fmt.Errorf("chimerge: histograms have different lengths %d and %d", len(o), len(o2))
	}
	var r, s float64
	for j := range o {
		r += o[j]
		s += o2[j]
	}
	if r == 0 || s == 0 {
		return 0, fmt.Errorf("chimerge: empty histogram (totals %v, %v)", r, s)
	}
	rs := math.Sqrt(r / s)
	sr := math.Sqrt(s / r)
	var chi2 float64
	for j := range o {
		den := o[j] + o2[j]
		if den == 0 {
			continue
		}
		d := rs*o2[j] - sr*o[j] // symmetric in the pair; sign squared away
		chi2 += d * d / den
	}
	return chi2, nil
}

// SameDistribution runs the paper's test at the given significance level:
// it returns true when the null hypothesis "o and o2 are drawn from the same
// population distribution" is NOT disproven, i.e. when the values should be
// merged. Following the paper, the degrees of freedom equal the number of
// bins m (the two totals are not constrained to match).
func SameDistribution(o, o2 []float64, significance float64) (bool, error) {
	chi2, err := ChiSquare(o, o2)
	if err != nil {
		return false, err
	}
	crit, err := stats.ChiSquareQuantile(1-significance, len(o))
	if err != nil {
		return false, err
	}
	return chi2 <= crit, nil
}

// AttrResult describes the merge outcome for one public attribute.
type AttrResult struct {
	Attr         int    // attribute index in the schema
	Name         string // attribute name
	DomainBefore int
	DomainAfter  int
	Components   []int    // value code -> component id
	OldLabels    []string // original value labels, indexed by old code
}

// Result is the outcome of generalizing a table.
type Result struct {
	Table    *dataset.Table         // remapped table over generalized values
	Mappings []dataset.ValueMapping // one per public attribute
	Attrs    []AttrResult           // per-attribute domain impact (Tables 4/5)
}

// MappingFor returns the value mapping of the given original attribute
// index, or nil if the attribute was not remapped (the SA attribute).
func (r *Result) MappingFor(attr int) *dataset.ValueMapping {
	for i := range r.Mappings {
		if r.Mappings[i].Attr == attr {
			return &r.Mappings[i]
		}
	}
	return nil
}

// Generalize merges, for every public attribute, the values the chi-square
// test cannot distinguish (connected components of the failed-to-disprove
// graph) and returns the remapped table plus the mapping bookkeeping.
func Generalize(t *dataset.Table, significance float64) (*Result, error) {
	if significance <= 0 || significance >= 1 {
		return nil, fmt.Errorf("chimerge: significance must be in (0,1), got %v", significance)
	}
	m := t.Schema.SADomain()
	crit, err := stats.ChiSquareQuantile(1-significance, m)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	n := t.NumRows()
	for _, attr := range t.Schema.NAIndices() {
		dom := t.Schema.Attrs[attr].Domain()
		// Conditional SA histogram per attribute value, one table pass.
		hist := make([][]float64, dom)
		for v := range hist {
			hist[v] = make([]float64, m)
		}
		for r := 0; r < n; r++ {
			hist[t.At(r, attr)][t.SA(r)]++
		}
		uf := newUnionFind(dom)
		for a := 0; a < dom; a++ {
			if isEmpty(hist[a]) {
				continue
			}
			for b := a + 1; b < dom; b++ {
				if isEmpty(hist[b]) {
					continue
				}
				chi2, err := ChiSquare(hist[a], hist[b])
				if err != nil {
					return nil, fmt.Errorf("chimerge: attribute %q values %d,%d: %w",
						t.Schema.Attrs[attr].Name, a, b, err)
				}
				if chi2 <= crit {
					uf.union(a, b)
				}
			}
		}
		comps, numComps := uf.components()
		mapping := dataset.ValueMapping{
			Attr:      attr,
			OldToNew:  make([]uint16, dom),
			NewValues: make([]string, numComps),
		}
		members := make([][]string, numComps)
		for v := 0; v < dom; v++ {
			c := comps[v]
			mapping.OldToNew[v] = uint16(c)
			members[c] = append(members[c], t.Schema.Attrs[attr].Label(uint16(v)))
		}
		for c := range members {
			mapping.NewValues[c] = strings.Join(members[c], "|")
		}
		res.Mappings = append(res.Mappings, mapping)
		res.Attrs = append(res.Attrs, AttrResult{
			Attr:         attr,
			Name:         t.Schema.Attrs[attr].Name,
			DomainBefore: dom,
			DomainAfter:  numComps,
			Components:   comps,
			OldLabels:    append([]string(nil), t.Schema.Attrs[attr].Values...),
		})
	}
	out, err := dataset.Remap(t, res.Mappings)
	if err != nil {
		return nil, err
	}
	res.Table = out
	return res, nil
}

func isEmpty(h []float64) bool {
	for _, v := range h {
		if v != 0 {
			return false
		}
	}
	return true
}
