// Package chimerge implements the public-attribute generalization of the
// paper's Section 3.4. For each public attribute, every pair of domain
// values is tested with the chi-square test for two binned distributions
// with unequal totals (Eq. 4, Numerical Recipes form, degrees of freedom m);
// pairs the test fails to distinguish are connected in a graph (a union-find
// over value codes, see unionfind.go), and each connected component is
// merged into one generalized value. After merging, any two surviving values
// have a statistically different impact on SA, so aggregate groups genuinely
// mix different sub-populations — the property the Split Role Principle
// (Definition 2) relies on, and the defense against the
// irrelevant-attribute aggregation attack of Section 3.4.
//
// Generalize is the entry point; its Result carries the rewritten table and
// the per-attribute dataset.ValueMapping that downstream layers (the query
// pool of internal/query, the serving layer's label resolution) use to
// translate original values into generalized ones. The paper's measured
// merge outcomes are pinned by tests: ADULT 16/14/5/2 → 7/4/2/2 (Table 4)
// and CENSUS Age 77 → 1 (Table 5).
//
// The analysis is one fused scan: every public attribute's conditional SA
// histogram accumulates in a single pass over the table, striped across
// workers with per-worker accumulators summed after the join
// (GeneralizeParallel), and the O(dom²) pair loop prefilters empty bins.
// Callers that only need the merge decisions — the serving layer groups
// straight off the raw table via dataset.GroupsOfMapped — use Analyze,
// which skips the table rewrite entirely. Results are bit-identical at any
// worker count.
package chimerge
