package chimerge

import (
	"math"
	"strings"
	"testing"

	"github.com/reconpriv/reconpriv/internal/dataset"
	"github.com/reconpriv/reconpriv/internal/stats"
)

func TestChiSquareIdenticalIsZero(t *testing.T) {
	o := []float64{10, 20, 30}
	chi2, err := ChiSquare(o, o)
	if err != nil {
		t.Fatal(err)
	}
	if chi2 > 1e-12 {
		t.Errorf("identical histograms should give 0, got %v", chi2)
	}
}

func TestChiSquareSymmetric(t *testing.T) {
	a := []float64{10, 25, 5, 60}
	b := []float64{40, 10, 30, 20}
	x, err1 := ChiSquare(a, b)
	y, err2 := ChiSquare(b, a)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if math.Abs(x-y) > 1e-9 {
		t.Errorf("ChiSquare not symmetric: %v vs %v", x, y)
	}
}

func TestChiSquareEqualTotalsReducesToClassic(t *testing.T) {
	// With equal totals the Eq. 4 statistic reduces to Σ (o-o')²/(o+o').
	a := []float64{30, 20, 50}
	b := []float64{20, 40, 40}
	got, err := ChiSquare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for i := range a {
		d := a[i] - b[i]
		want += d * d / (a[i] + b[i])
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("ChiSquare = %v, want %v", got, want)
	}
}

func TestChiSquareSkipsEmptyBins(t *testing.T) {
	a := []float64{10, 0, 30}
	b := []float64{12, 0, 28}
	if _, err := ChiSquare(a, b); err != nil {
		t.Errorf("both-zero bins must be skipped, got error %v", err)
	}
}

func TestChiSquareErrors(t *testing.T) {
	if _, err := ChiSquare([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := ChiSquare([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("empty histogram should error")
	}
}

func TestSameDistribution(t *testing.T) {
	rng := stats.NewRand(1)
	// Two large samples from the same distribution: should merge.
	probs := []float64{0.2, 0.3, 0.1, 0.4}
	mk := func(n int) []float64 {
		h := make([]float64, len(probs))
		for i := 0; i < n; i++ {
			h[stats.Categorical(rng, probs)]++
		}
		return h
	}
	same, err := SameDistribution(mk(5000), mk(8000), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Error("same-distribution samples should not be disproven")
	}
	// Very different distributions: should split.
	other := []float64{0.4, 0.1, 0.4, 0.1}
	h2 := make([]float64, len(other))
	for i := 0; i < 8000; i++ {
		h2[stats.Categorical(rng, other)]++
	}
	same, err = SameDistribution(mk(5000), h2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if same {
		t.Error("different distributions should be disproven")
	}
}

// mergeTable builds a table where attribute A has 4 values in 2 planted
// clusters ({0,1} and {2,3}) with different SA impact, and attribute B has
// 3 values with no SA impact at all (should merge to 1).
func mergeTable(t *testing.T, n int) *dataset.Table {
	t.Helper()
	s := dataset.MustSchema([]dataset.Attribute{
		{Name: "A", Values: []string{"a0", "a1", "a2", "a3"}},
		{Name: "B", Values: []string{"b0", "b1", "b2"}},
		{Name: "S", Values: []string{"s0", "s1", "s2"}},
	}, "S")
	tab := dataset.NewTable(s, n)
	rng := stats.NewLegacyRand(42)
	lowRisk := []float64{0.7, 0.2, 0.1}
	highRisk := []float64{0.2, 0.3, 0.5}
	for i := 0; i < n; i++ {
		a := uint16(rng.Intn(4))
		b := uint16(rng.Intn(3))
		dist := lowRisk
		if a >= 2 {
			dist = highRisk
		}
		tab.MustAppendRow(a, b, uint16(stats.Categorical(rng, dist)))
	}
	return tab
}

func TestGeneralizeRecoversPlantedClusters(t *testing.T) {
	tab := mergeTable(t, 20000)
	res, err := Generalize(tab, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AttrResult{}
	for _, a := range res.Attrs {
		byName[a.Name] = a
	}
	if got := byName["A"].DomainAfter; got != 2 {
		t.Errorf("A should merge 4 -> 2, got %d", got)
	}
	if got := byName["B"].DomainAfter; got != 1 {
		t.Errorf("B should merge 3 -> 1, got %d", got)
	}
	// a0 and a1 must land in the same component, a2/a3 in the other.
	comps := byName["A"].Components
	if comps[0] != comps[1] || comps[2] != comps[3] || comps[0] == comps[2] {
		t.Errorf("unexpected A components %v", comps)
	}
}

func TestGeneralizeMappingIsPartition(t *testing.T) {
	tab := mergeTable(t, 10000)
	res, err := Generalize(tab, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for _, mp := range res.Mappings {
		seen := make(map[uint16]bool)
		for _, nw := range mp.OldToNew {
			if int(nw) >= len(mp.NewValues) {
				t.Fatalf("mapping target %d out of range", nw)
			}
			seen[nw] = true
		}
		if len(seen) != len(mp.NewValues) {
			t.Errorf("mapping for attr %d is not surjective", mp.Attr)
		}
	}
}

func TestGeneralizePreservesRecords(t *testing.T) {
	tab := mergeTable(t, 5000)
	res, err := Generalize(tab, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != tab.NumRows() {
		t.Error("generalization must not change the record count")
	}
	// SA column untouched.
	for r := 0; r < tab.NumRows(); r++ {
		if res.Table.SA(r) != tab.SA(r) {
			t.Fatal("SA value changed by generalization")
		}
	}
}

func TestGeneralizeLabelsJoinMembers(t *testing.T) {
	tab := mergeTable(t, 20000)
	res, err := Generalize(tab, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	var bAttr *AttrResult
	for i := range res.Attrs {
		if res.Attrs[i].Name == "B" {
			bAttr = &res.Attrs[i]
		}
	}
	if bAttr == nil || bAttr.DomainAfter != 1 {
		t.Skip("B did not fully merge in this configuration")
	}
	label := res.Table.Schema.Attrs[bAttr.Attr].Values[0]
	for _, member := range []string{"b0", "b1", "b2"} {
		if !strings.Contains(label, member) {
			t.Errorf("merged label %q missing member %q", label, member)
		}
	}
}

func TestGeneralizeSignificanceValidation(t *testing.T) {
	tab := mergeTable(t, 100)
	if _, err := Generalize(tab, 0); err == nil {
		t.Error("significance 0 should error")
	}
	if _, err := Generalize(tab, 1); err == nil {
		t.Error("significance 1 should error")
	}
}

func TestMappingFor(t *testing.T) {
	tab := mergeTable(t, 1000)
	res, err := Generalize(tab, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.MappingFor(0) == nil {
		t.Error("attribute 0 should have a mapping")
	}
	if res.MappingFor(2) != nil {
		t.Error("the SA attribute should have no mapping")
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(6)
	uf.union(0, 1)
	uf.union(1, 2)
	uf.union(4, 5)
	ids, n := uf.components()
	if n != 3 {
		t.Fatalf("components = %d, want 3", n)
	}
	if ids[0] != ids[1] || ids[1] != ids[2] {
		t.Error("0,1,2 should share a component")
	}
	if ids[3] == ids[0] || ids[3] == ids[4] {
		t.Error("3 should be a singleton")
	}
	if ids[4] != ids[5] {
		t.Error("4,5 should share a component")
	}
	// Component ids are dense and numbered by first appearance.
	if ids[0] != 0 || ids[3] != 1 || ids[4] != 2 {
		t.Errorf("unexpected component numbering %v", ids)
	}
}
