package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"github.com/reconpriv/reconpriv/internal/datagen"
	"github.com/reconpriv/reconpriv/internal/serve"
	"github.com/reconpriv/reconpriv/internal/wire"
)

// IngestBenchRow is one insert path's measured profile over the shared
// record stream: ingest throughput with a freshness query after every batch,
// plus the query latency distribution during ingest and at quiescence.
type IngestBenchRow struct {
	Path          string  `json:"path"` // "delta" or "legacy"
	Records       int64   `json:"records"`
	WallMS        float64 `json:"wall_ms"`
	RecordsPerSec float64 `json:"records_per_second"`
	// Ingest latencies are the per-batch freshness queries racing the
	// insert stream; quiescent latencies are the same query against the
	// same final publication once the stream has stopped.
	QuiescentP50US float64 `json:"quiescent_p50_us"`
	QuiescentP99US float64 `json:"quiescent_p99_us"`
	IngestP50US    float64 `json:"ingest_p50_us"`
	IngestP99US    float64 `json:"ingest_p99_us"`
	// Appends and Compactions are the server's delta-generation counters
	// (both zero on the legacy path).
	Appends     uint64 `json:"ingest_appends"`
	Compactions uint64 `json:"compactions"`
}

// IngestBenchResult is the rpbench output for the ingest experiment: the
// same insert stream through the delta-generation path and the legacy
// full-reindex path, with the two acceptance ratios the tentpole is judged
// on. Both paths must converge to the same publication digest — the bench
// pins equivalence before it reports a speedup.
type IngestBenchResult struct {
	Dataset     string           `json:"dataset"`
	BaseRecords int              `json:"base_records"`
	Batches     int              `json:"batches"`
	PerBatch    int              `json:"records_per_batch"`
	Rows        []IngestBenchRow `json:"rows"`
	// Speedup is delta records/s over legacy records/s; acceptance is >= 10.
	Speedup float64 `json:"speedup"`
	// P99Ratio is the delta path's ingest-time query p99 over its quiescent
	// p99; acceptance is <= 2.
	P99Ratio float64 `json:"p99_ratio"`
	// Digest is the publication digest both paths converged to.
	Digest string `json:"digest"`
}

// RunIngestBench streams the same pre-encoded binary record frames into two
// served ADULT incremental publications — one on the delta-marginal insert
// path, one with Config.IngestLegacyReindex restoring the old full-reindex
// behavior — and measures sustained ingest throughput under the workload the
// delta path exists for: a freshness query lands after every batch, so the
// legacy server pays a full O(|D|) re-index per batch while the delta server
// appends a generation proportional to the batch. The firehose speaks the
// binary wire frame (the encoding a sustained ingest client would use), so
// per-batch decode cost is negligible on both paths and the ratio isolates
// the indexing work. Batch size matters: per-record publishing cost (the
// perturbation trials) is identical on both paths, so small batches keep the
// ratio focused on the per-batch index cost — O(batch + |G|) for the delta
// append against O(|G| x cube) for the full re-index. Zero batches or
// perBatch means the calibrated defaults (300 batches of 50 records on top
// of the fixed 45,222-record base).
//
// The p99 comparison is deliberately run with GOGC raised for the duration
// of the duel, as a sustained-ingest deployment would tune it: at the
// default pacing the tail of a few-hundred-sample window is decided by
// whether a rare GC cycle happens to land inside it, not by the index work
// the ratio is meant to judge. Both windows (ingest-time and quiescent) see
// the same setting, so the comparison stays apples-to-apples.
// ingestWarmupBatches is the number of leading stream batches each path
// ingests before its timed window opens.
const ingestWarmupBatches = 10

func RunIngestBench(batches, perBatch int, seed int64) (*IngestBenchResult, error) {
	if batches <= 0 {
		batches = 300
	}
	if perBatch <= 0 {
		perBatch = 50
	}
	defer debug.SetGCPercent(debug.SetGCPercent(400))

	// Pre-generate and pre-encode the stream once so both paths ingest
	// byte-identical frames in the same order: the incremental publishers
	// then consume identical trial randomness and the final digests must
	// agree. (The publication ID is deterministic — the request hash — so
	// both servers accept the same frames.) The first ingestWarmupBatches
	// of the stream are landed outside the timed window on both paths, so
	// fresh-process costs (first-touch allocation, code paging) don't skew
	// whichever path happens to run first.
	schema := datagen.AdultSchema()
	rng := rand.New(rand.NewSource(seed))
	stream := make([][][]uint16, batches+ingestWarmupBatches)
	for b := range stream {
		codes := make([][]uint16, perBatch)
		for i := range codes {
			rec := make([]uint16, schema.NumAttrs())
			for a := range rec {
				rec[a] = uint16(rng.Intn(schema.Attrs[a].Domain()))
			}
			codes[i] = rec
		}
		stream[b] = codes
	}

	out := &IngestBenchResult{
		Dataset:  "ADULT",
		Batches:  batches,
		PerBatch: perBatch,
	}
	var digests [2]string
	for i, legacy := range []bool{false, true} {
		row, digest, base, err := runIngestPath(legacy, stream, perBatch)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
		digests[i] = digest
		out.BaseRecords = base
	}
	if digests[0] != digests[1] {
		return nil, fmt.Errorf("experiments: ingest paths diverged: delta digest %s, legacy %s", digests[0], digests[1])
	}
	out.Digest = digests[0]
	if legacyRate := out.Rows[1].RecordsPerSec; legacyRate > 0 {
		out.Speedup = out.Rows[0].RecordsPerSec / legacyRate
	}
	if q := out.Rows[0].QuiescentP99US; q > 0 {
		out.P99Ratio = out.Rows[0].IngestP99US / q
	}
	return out, nil
}

// runIngestPath drives one server through the shared stream and returns its
// measured row, its final publication digest, and the base record count.
func runIngestPath(legacy bool, stream [][][]uint16, perBatch int) (IngestBenchRow, string, int, error) {
	row := IngestBenchRow{Path: "delta"}
	if legacy {
		row.Path = "legacy"
	}
	// Budget enforcement off: the bench replays thousands of queries from
	// one client, which would exhaust any realistic quota.
	srv := serve.New(serve.Config{BudgetQuota: -1, IngestLegacyReindex: legacy})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	e, _, err := srv.Publish(serve.PublishRequest{
		Dataset: serve.DatasetAdult,
		Method:  serve.MethodIncremental,
	}, true)
	if err != nil {
		return row, "", 0, err
	}
	pub, err := e.Publication()
	if err != nil {
		return row, "", 0, err
	}
	base := pub.Meta.Records

	// The freshness query: one single-condition count, the cheapest probe
	// that still forces the legacy path's lazy re-index.
	schema := datagen.AdultSchema()
	qbody, err := json.Marshal(map[string]any{
		"id":     e.ID(),
		"client": "ingestbench",
		"queries": []serve.QueryJSON{{
			Conds: []serve.CondJSON{{Attr: "Occupation", Value: schema.Attrs[1].Label(0)}},
			SA:    schema.SAAttr().Label(1),
		}},
	})
	if err != nil {
		return row, "", 0, err
	}
	query := func() (time.Duration, error) {
		t0 := time.Now()
		err := postOK(ts.URL+"/query", "application/json", qbody)
		return time.Since(t0), err
	}

	// Pre-encode every firehose frame outside the timed window.
	frames := make([][]byte, len(stream))
	for b, codes := range stream {
		frames[b] = (&wire.InsertReq{
			ID:      []byte(e.ID()),
			Client:  []byte("ingestbench"),
			NAttrs:  schema.NumAttrs(),
			Records: codes,
		}).Append(nil)
	}
	for i := 0; i < 20; i++ { // warm the connection and the query path
		if _, err := query(); err != nil {
			return row, "", 0, err
		}
	}

	// Warmup batches, then the timed window: land a frame, then query for
	// freshness.
	timed := frames[ingestWarmupBatches:]
	ingest := make([]time.Duration, 0, len(timed))
	var start time.Time
	for b, frame := range frames {
		if b == ingestWarmupBatches {
			start = time.Now()
		}
		if err := postOK(ts.URL+"/insert", wire.ContentType, frame); err != nil {
			return row, "", 0, fmt.Errorf("experiments: ingest batch %d (%s): %w", b, row.Path, err)
		}
		d, err := query()
		if err != nil {
			return row, "", 0, err
		}
		if b >= ingestWarmupBatches {
			ingest = append(ingest, d)
		}
	}
	elapsed := time.Since(start)
	row.Records = int64(len(timed) * perBatch)
	row.WallMS = elapsed.Seconds() * 1e3
	row.RecordsPerSec = float64(row.Records) / elapsed.Seconds()
	row.IngestP50US, row.IngestP99US = quantilesUS(ingest)

	st := srv.Stats()
	row.Appends = st.IngestAppends
	row.Compactions = st.Compactions

	// Quiescent baseline: the same query against the same final
	// publication with the stream stopped. A short settle first lets any
	// in-flight background compaction install, so the baseline reflects
	// the steady-state generation stack rather than a racing compactor.
	// The window is deliberately large — the p99 of a small sample swings
	// on whether a rare GC pause lands inside it.
	time.Sleep(100 * time.Millisecond)
	quiescent := make([]time.Duration, 0, 1000)
	for i := 0; i < 1000; i++ {
		d, err := query()
		if err != nil {
			return row, "", 0, err
		}
		quiescent = append(quiescent, d)
	}
	row.QuiescentP50US, row.QuiescentP99US = quantilesUS(quiescent)

	// The last loop iteration ended with a query, so the legacy server has
	// reconciled: the digest is comparable across paths.
	final, err := e.Publication()
	if err != nil {
		return row, "", 0, err
	}
	want := base + len(stream)*perBatch // warmup batches included
	if final.Meta.Records != want || final.Meta.RecordsOut != want {
		return row, "", 0, fmt.Errorf("experiments: ingest conservation violated on %s path: meta %d/%d, want %d",
			row.Path, final.Meta.Records, final.Meta.RecordsOut, want)
	}
	return row, final.Digest(), base, nil
}

// postOK posts a body and requires a 200, draining the response.
func postOK(url, contentType string, body []byte) error {
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("experiments: %s returned %d: %s", url, resp.StatusCode, buf.Bytes())
	}
	return nil
}

// quantilesUS returns the p50 and p99 of a latency sample in microseconds.
// The p50 is over the pooled sample; the p99 is the median of per-segment
// p99s over three equal segments of the window. A few-hundred-sample p99 is
// otherwise decided by whether a single stray scheduling or GC hiccup lands
// anywhere in the window — a systematic tail shows up in every segment and
// survives the median, an isolated one-off lands in one segment and doesn't.
func quantilesUS(ds []time.Duration) (p50, p99 float64) {
	if len(ds) == 0 {
		return 0, 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	p50 = float64(sorted[len(sorted)/2].Microseconds())

	const segments = 3
	segP99 := make([]float64, 0, segments)
	for s := 0; s < segments; s++ {
		seg := ds[s*len(ds)/segments : (s+1)*len(ds)/segments]
		if len(seg) == 0 {
			continue
		}
		ss := make([]time.Duration, len(seg))
		copy(ss, seg)
		sort.Slice(ss, func(i, j int) bool { return ss[i] < ss[j] })
		segP99 = append(segP99, float64(ss[int(0.99*float64(len(ss)-1))].Microseconds()))
	}
	sort.Float64s(segP99)
	p99 = segP99[len(segP99)/2]
	return p50, p99
}

// String renders the duel as a table with the acceptance ratios.
func (r *IngestBenchResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sustained /insert firehose on %s (|D| = %d + %d batches x %d records, query after every batch)\n",
		r.Dataset, r.BaseRecords, r.Batches, r.PerBatch)
	t := &textTable{header: []string{"path", "records", "wall ms", "records/s", "query p50 us", "query p99 us", "quiescent p99 us", "appends", "compactions"}}
	for _, row := range r.Rows {
		t.addRow(
			row.Path,
			fmt.Sprint(row.Records),
			f3(row.WallMS),
			fmt.Sprintf("%.0f", row.RecordsPerSec),
			fmt.Sprintf("%.0f", row.IngestP50US),
			fmt.Sprintf("%.0f", row.IngestP99US),
			fmt.Sprintf("%.0f", row.QuiescentP99US),
			fmt.Sprint(row.Appends),
			fmt.Sprint(row.Compactions),
		)
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "delta/legacy ingest speedup: %.1fx; ingest-time p99 over quiescent: %.2fx\n",
		r.Speedup, r.P99Ratio)
	return b.String()
}
