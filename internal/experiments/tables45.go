package experiments

import (
	"fmt"
	"strings"

	"github.com/reconpriv/reconpriv/internal/dataset"
)

// AggregationImpact reproduces Tables 4 and 5: the impact of the chi-square
// NA generalization on attribute domains, the number of personal groups |G|,
// and the average group size |D|/|G|.
type AggregationImpact struct {
	Dataset      string
	Attrs        []AttrImpact
	GroupsBefore int
	GroupsAfter  int
	AvgBefore    float64
	AvgAfter     float64
	Records      int
}

// AttrImpact is one public attribute's domain before/after merging.
type AttrImpact struct {
	Name   string
	Before int
	After  int
}

// RunTable4 computes the ADULT aggregation impact (paper: 16/14/5/2 →
// 7/4/2/2, |G| 2240 → 112, |D|/|G| 20 → 404).
func RunTable4() (*AggregationImpact, error) {
	ds, err := AdultData()
	if err != nil {
		return nil, err
	}
	return aggregationImpact(ds), nil
}

// RunTable5 computes the CENSUS aggregation impact at the given size
// (paper at 300K: Age 77 → 1, others unchanged, |G| 116424 → 1512).
func RunTable5(size int) (*AggregationImpact, error) {
	ds, err := CensusData(size)
	if err != nil {
		return nil, err
	}
	return aggregationImpact(ds), nil
}

func aggregationImpact(ds *Dataset) *AggregationImpact {
	before := dataset.GroupsOfParallel(ds.Raw, 0)
	imp := &AggregationImpact{
		Dataset:      ds.Name,
		GroupsBefore: before.NumGroups(),
		GroupsAfter:  ds.Groups.NumGroups(),
		AvgBefore:    before.AvgGroupSize(),
		AvgAfter:     ds.Groups.AvgGroupSize(),
		Records:      ds.Raw.NumRows(),
	}
	for _, a := range ds.Merge.Attrs {
		imp.Attrs = append(imp.Attrs, AttrImpact{Name: a.Name, Before: a.DomainBefore, After: a.DomainAfter})
	}
	return imp
}

// String renders the impact in the layout of Tables 4 and 5.
func (r *AggregationImpact) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "NA aggregation impact on %s (|D| = %d)\n", r.Dataset, r.Records)
	t := &textTable{header: []string{""}}
	for _, a := range r.Attrs {
		t.header = append(t.header, a.Name)
	}
	t.header = append(t.header, "|G|", "|D|/|G|")
	beforeRow := []string{"Before Aggregation"}
	afterRow := []string{"After Aggregation"}
	for _, a := range r.Attrs {
		beforeRow = append(beforeRow, fmt.Sprintf("%d", a.Before))
		afterRow = append(afterRow, fmt.Sprintf("%d", a.After))
	}
	beforeRow = append(beforeRow, fmt.Sprintf("%d", r.GroupsBefore), fmt.Sprintf("%.0f", r.AvgBefore))
	afterRow = append(afterRow, fmt.Sprintf("%d", r.GroupsAfter), fmt.Sprintf("%.0f", r.AvgAfter))
	t.addRow(beforeRow...)
	t.addRow(afterRow...)
	sb.WriteString(t.String())
	return sb.String()
}
