package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"github.com/reconpriv/reconpriv/internal/chimerge"
	"github.com/reconpriv/reconpriv/internal/core"
	"github.com/reconpriv/reconpriv/internal/datagen"
	"github.com/reconpriv/reconpriv/internal/dataset"
	"github.com/reconpriv/reconpriv/internal/query"
)

// ColdStage is one cold-path stage's latency under both pipelines.
type ColdStage struct {
	Name         string  `json:"name"`
	SequentialMS float64 `json:"sequential_ms"`
	ParallelMS   float64 `json:"parallel_ms"`
}

// ColdPublishResult measures the request-to-queryable cold path — the
// chi-square generalization, the grouping pass, the SPS perturbation, and
// the marginal-cube indexing — on CENSUS, comparing the sequential
// (materialize-the-table, one core) chain against the fused parallel one
// (GOMAXPROCS wide). Data generation is excluded: the server caches raw
// tables per source, so a cold publish never regenerates them.
type ColdPublishResult struct {
	Dataset      string      `json:"dataset"`
	Records      int         `json:"records"`
	Workers      int         `json:"workers"` // GOMAXPROCS of the run
	Runs         int         `json:"runs"`    // timing runs; best-of is kept
	Stages       []ColdStage `json:"stages"`
	SequentialMS float64     `json:"sequential_ms"`
	ParallelMS   float64     `json:"parallel_ms"`
	Speedup      float64     `json:"speedup"`
}

// RunColdPublish times the cold publishing path on a CENSUS sample of the
// given size, keeping the best of `runs` runs per pipeline (0 means 5).
// Both chains produce bit-identical publications — RunColdPublish verifies
// that on every run and fails loudly if they ever diverge.
func RunColdPublish(size, runs int) (*ColdPublishResult, error) {
	if runs <= 0 {
		runs = 5
	}
	raw, err := datagen.Census(size, DataSeed)
	if err != nil {
		return nil, err
	}
	res := &ColdPublishResult{
		Dataset: fmt.Sprintf("CENSUS-%dK", size/1000),
		Records: raw.NumRows(),
		Workers: runtime.GOMAXPROCS(0),
		Runs:    runs,
		Stages: []ColdStage{
			{Name: "generalize"},
			{Name: "group"},
			{Name: "publish"},
			{Name: "index"},
		},
	}

	best := func(cur, v float64) float64 {
		if cur == 0 || v < cur {
			return v
		}
		return cur
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

	for run := 0; run < runs; run++ {
		// Sequential chain: the pre-fusion pipeline shape — materialize the
		// generalized table, single-threaded grouping and indexing, one
		// publish worker.
		t0 := time.Now()
		merge, err := chimerge.Generalize(raw, DefaultSignificance)
		if err != nil {
			return nil, err
		}
		t1 := time.Now()
		groups := dataset.GroupsOf(merge.Table)
		t2 := time.Now()
		seqPub, _, err := core.PublishSPSParallel(RunSeed, groups, DefaultParams, 1)
		if err != nil {
			return nil, err
		}
		t3 := time.Now()
		seqMarg, err := query.BuildMarginalsFromGroups(seqPub, 3)
		if err != nil {
			return nil, err
		}
		t4 := time.Now()
		res.Stages[0].SequentialMS = best(res.Stages[0].SequentialMS, ms(t1.Sub(t0)))
		res.Stages[1].SequentialMS = best(res.Stages[1].SequentialMS, ms(t2.Sub(t1)))
		res.Stages[2].SequentialMS = best(res.Stages[2].SequentialMS, ms(t3.Sub(t2)))
		res.Stages[3].SequentialMS = best(res.Stages[3].SequentialMS, ms(t4.Sub(t3)))
		res.SequentialMS = best(res.SequentialMS, ms(t4.Sub(t0)))

		// Fused parallel chain: one analysis scan, grouping straight off the
		// raw table through the value mappings, concurrent cube fill.
		p0 := time.Now()
		analysis, err := chimerge.Analyze(raw, DefaultSignificance, 0)
		if err != nil {
			return nil, err
		}
		p1 := time.Now()
		parGroups, err := dataset.GroupsOfMapped(raw, analysis.Mappings, 0)
		if err != nil {
			return nil, err
		}
		p2 := time.Now()
		parPub, _, err := core.PublishSPSParallel(RunSeed, parGroups, DefaultParams, 0)
		if err != nil {
			return nil, err
		}
		p3 := time.Now()
		parMarg, err := query.BuildMarginalsFromGroupsParallel(parPub, 3, 0)
		if err != nil {
			return nil, err
		}
		p4 := time.Now()
		res.Stages[0].ParallelMS = best(res.Stages[0].ParallelMS, ms(p1.Sub(p0)))
		res.Stages[1].ParallelMS = best(res.Stages[1].ParallelMS, ms(p2.Sub(p1)))
		res.Stages[2].ParallelMS = best(res.Stages[2].ParallelMS, ms(p3.Sub(p2)))
		res.Stages[3].ParallelMS = best(res.Stages[3].ParallelMS, ms(p4.Sub(p3)))
		res.ParallelMS = best(res.ParallelMS, ms(p4.Sub(p0)))

		// Determinism cross-check: both chains must publish the same groups
		// and answer every total identically.
		if err := sameColdOutput(seqPub, parPub, seqMarg, parMarg); err != nil {
			return nil, err
		}
	}
	if res.ParallelMS > 0 {
		res.Speedup = res.SequentialMS / res.ParallelMS
	}
	return res, nil
}

// sameColdOutput asserts the sequential and fused chains produced the same
// publication (group histograms) and the same index totals.
func sameColdOutput(seq, par *dataset.GroupSet, seqMarg, parMarg *query.Marginals) error {
	if seq.NumGroups() != par.NumGroups() {
		return fmt.Errorf("experiments: cold chains disagree: |G| %d vs %d", seq.NumGroups(), par.NumGroups())
	}
	for i := range seq.Groups {
		a, b := &seq.Groups[i], &par.Groups[i]
		if a.Size != b.Size {
			return fmt.Errorf("experiments: cold chains disagree at group %d: size %d vs %d", i, a.Size, b.Size)
		}
		for sa := range a.SACounts {
			if a.SACounts[sa] != b.SACounts[sa] {
				return fmt.Errorf("experiments: cold chains disagree at group %d, sa %d", i, sa)
			}
		}
	}
	if seqMarg.Total() != parMarg.Total() {
		return fmt.Errorf("experiments: cold chains disagree on indexed totals: %d vs %d", seqMarg.Total(), parMarg.Total())
	}
	return nil
}

// String renders the latency table.
func (r *ColdPublishResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Cold publish latency on %s (|D| = %d, GOMAXPROCS = %d, best of %d)\n",
		r.Dataset, r.Records, r.Workers, r.Runs)
	t := &textTable{header: []string{"stage", "sequential ms", "parallel ms", "speedup"}}
	ratio := func(s, p float64) string {
		if p <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.2fx", s/p)
	}
	for _, st := range r.Stages {
		t.addRow(st.Name, f3(st.SequentialMS), f3(st.ParallelMS), ratio(st.SequentialMS, st.ParallelMS))
	}
	t.addRow("total", f3(r.SequentialMS), f3(r.ParallelMS), ratio(r.SequentialMS, r.ParallelMS))
	sb.WriteString(t.String())
	return sb.String()
}
