package experiments

import (
	"math"
	"strings"
	"testing"
)

// The experiment tests use a small CENSUS size to keep the suite fast; the
// full sizes are exercised by cmd/rpbench and the top-level benchmarks.
const testCensusSize = 100000

func TestRunTable1ReproducesDisclosure(t *testing.T) {
	res, err := RunTable1(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ans1 != 501 || res.Ans2 != 420 {
		t.Fatalf("true answers %d/%d, want 501/420", res.Ans1, res.Ans2)
	}
	if math.Abs(res.Conf-0.8383) > 0.001 {
		t.Errorf("Conf = %v, want 0.8383", res.Conf)
	}
	if len(res.Columns) != 3 {
		t.Fatalf("columns = %d", len(res.Columns))
	}
	// The Table 1 claim: at eps=0.5 the estimate is within ~1% of the truth
	// with small SE, while at eps=0.01 the SE is orders of magnitude larger.
	weak := res.Columns[0]   // eps = 0.01
	strong := res.Columns[2] // eps = 0.5
	if math.Abs(strong.Conf.Mean-res.Conf) > 0.02 {
		t.Errorf("eps=0.5 Conf' = %v, want within 2%% of %v", strong.Conf.Mean, res.Conf)
	}
	if strong.Conf.StdErr > 0.05 {
		t.Errorf("eps=0.5 SE = %v, want small", strong.Conf.StdErr)
	}
	if weak.Conf.StdErr < 5*strong.Conf.StdErr {
		t.Errorf("eps=0.01 SE (%v) should dwarf eps=0.5 SE (%v)", weak.Conf.StdErr, strong.Conf.StdErr)
	}
	if !strings.Contains(res.String(), "Conf'") {
		t.Error("rendering should include the Conf' row")
	}
}

func TestRunTable2ExactValues(t *testing.T) {
	res := RunTable2()
	// The paper's Table 2, row b=20: 0.000032, 0.0008, 0.0032, 0.02, 0.08.
	want := []float64{0.000032, 0.0008, 0.0032, 0.02, 0.08}
	for i, v := range res.Values[1] {
		if math.Abs(v-want[i]) > 1e-9 {
			t.Errorf("b=20 x=%v: %v, want %v", res.Answers[i], v, want[i])
		}
	}
	if !strings.Contains(res.String(), "b=200") {
		t.Error("rendering should include the b=200 row")
	}
}

func TestRunTable4MatchesPaper(t *testing.T) {
	res, err := RunTable4()
	if err != nil {
		t.Fatal(err)
	}
	wantAfter := map[string]int{"Education": 7, "Occupation": 4, "Race": 2, "Gender": 2}
	for _, a := range res.Attrs {
		if want := wantAfter[a.Name]; a.After != want {
			t.Errorf("%s after = %d, want %d", a.Name, a.After, want)
		}
	}
	if res.GroupsBefore != 2240 || res.GroupsAfter != 112 {
		t.Errorf("|G| = %d -> %d, want 2240 -> 112", res.GroupsBefore, res.GroupsAfter)
	}
	if math.Abs(res.AvgBefore-20) > 1 || math.Abs(res.AvgAfter-404) > 5 {
		t.Errorf("|D|/|G| = %.0f -> %.0f, want 20 -> 404", res.AvgBefore, res.AvgAfter)
	}
}

func TestRunTable5MatchesPaperShape(t *testing.T) {
	res, err := RunTable5(testCensusSize)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Attrs {
		switch a.Name {
		case "Age":
			if a.After != 1 {
				t.Errorf("Age should merge 77 -> 1, got %d", a.After)
			}
		default:
			if a.After != a.Before {
				t.Errorf("%s should be unchanged (%d -> %d)", a.Name, a.Before, a.After)
			}
		}
	}
	if res.GroupsAfter != 1512 {
		t.Errorf("|G| after = %d, want 1512", res.GroupsAfter)
	}
}

func TestRunFig1Shapes(t *testing.T) {
	for _, panel := range []string{"ADULT", "CENSUS"} {
		res, err := RunFig1(panel)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Series) != 3 {
			t.Fatalf("series = %d", len(res.Series))
		}
		for si, s := range res.Series {
			// s_g decreases in f along each curve.
			for i := 1; i < len(s.SG); i++ {
				if s.SG[i] >= s.SG[i-1] {
					t.Errorf("%s p=%v: s_g not decreasing at f=%v", panel, s.P, s.F[i])
				}
			}
			// And decreases in p across curves (at equal f).
			if si > 0 {
				prev := res.Series[si-1]
				for i := range s.SG {
					if s.SG[i] >= prev.SG[i] {
						t.Errorf("%s f=%v: s_g should shrink as p grows", panel, s.F[i])
					}
				}
			}
		}
	}
	if _, err := RunFig1("NOPE"); err == nil {
		t.Error("unknown panel should error")
	}
}

func TestViolationSweepAdultShapes(t *testing.T) {
	for _, v := range []SweepVar{SweepP, SweepLambda, SweepDelta} {
		sweep, err := RunViolationSweep(true, v, testCensusSize)
		if err != nil {
			t.Fatal(err)
		}
		if len(sweep.Points) != 5 {
			t.Fatalf("points = %d", len(sweep.Points))
		}
		// Violations are monotone non-decreasing along every sweep
		// (Section 4.3: larger p, λ, δ shrink s_g).
		for i := 1; i < len(sweep.Points); i++ {
			if sweep.Points[i].VG < sweep.Points[i-1].VG-1e-9 {
				t.Errorf("%s: vg not monotone at %v", v, sweep.Points[i].X)
			}
		}
		// v_r ≥ v_g pointwise: violating groups are the larger ones.
		for _, pt := range sweep.Points {
			if pt.VR < pt.VG-1e-9 {
				t.Errorf("%s: vr (%v) < vg (%v)", v, pt.VR, pt.VG)
			}
		}
	}
}

func TestViolationSweepAdultDefaultsMatchPaper(t *testing.T) {
	sweep, err := RunViolationSweep(true, SweepP, testCensusSize)
	if err != nil {
		t.Fatal(err)
	}
	// p = 0.5 is index 2; the paper reports vg ≈ 85%, vr > 99%.
	def := sweep.Points[2]
	if def.VG < 0.7 || def.VG > 0.95 {
		t.Errorf("default vg = %v, want in the paper's ~0.85 regime", def.VG)
	}
	if def.VR < 0.9 {
		t.Errorf("default vr = %v, want >0.9 (paper: >0.99)", def.VR)
	}
}

func TestViolationSweepCensusShape(t *testing.T) {
	sweep, err := RunViolationSweep(false, SweepP, testCensusSize)
	if err != nil {
		t.Fatal(err)
	}
	def := sweep.Points[2]
	// CENSUS: small vg, much larger vr (few large groups violate).
	if def.VG > 0.1 {
		t.Errorf("census vg = %v, want small", def.VG)
	}
	if def.VR < 5*def.VG {
		t.Errorf("census vr (%v) should dwarf vg (%v)", def.VR, def.VG)
	}
}

func TestViolationSweepSizeRejectsAdult(t *testing.T) {
	if _, err := RunViolationSweep(true, SweepSize, testCensusSize); err == nil {
		t.Error("size sweep on ADULT should error")
	}
	if _, err := RunViolationSweep(true, SweepVar("bogus"), testCensusSize); err == nil {
		t.Error("unknown sweep variable should error")
	}
}

func TestErrorSweepAdult(t *testing.T) {
	sweep, err := RunErrorSweep(true, SweepLambda, testCensusSize, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range sweep.Points {
		// SPS pays a utility cost relative to UP that grows with λ
		// (more sampling); UP is flat in λ.
		if pt.SPS.Mean < pt.UP.Mean-0.01 {
			t.Errorf("λ=%v: SPS (%v) materially below UP (%v)", pt.X, pt.SPS.Mean, pt.UP.Mean)
		}
		if i > 0 {
			prev := sweep.Points[i-1]
			if math.Abs(pt.UP.Mean-prev.UP.Mean) > 0.01 {
				t.Errorf("UP error should be ~flat in λ, moved %v -> %v", prev.UP.Mean, pt.UP.Mean)
			}
		}
	}
	if !strings.Contains(sweep.String(), "SPS/UP") {
		t.Error("rendering should include the ratio column")
	}
	if _, err := RunErrorSweep(true, SweepLambda, testCensusSize, 0); err == nil {
		t.Error("0 runs should error")
	}
	if _, err := RunErrorSweep(true, SweepSize, testCensusSize, 1); err == nil {
		t.Error("size sweep on ADULT should error")
	}
}

func TestErrorSweepUPDecreasesInP(t *testing.T) {
	sweep, err := RunErrorSweep(true, SweepP, testCensusSize, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sweep.Points); i++ {
		if sweep.Points[i].UP.Mean >= sweep.Points[i-1].UP.Mean {
			t.Errorf("UP error should fall as p grows: %v -> %v at p=%v",
				sweep.Points[i-1].UP.Mean, sweep.Points[i].UP.Mean, sweep.Points[i].X)
		}
	}
}

func TestBoundsAblation(t *testing.T) {
	res, err := RunBoundsAblation(testCensusSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]BoundsAblationRow{}
	for _, r := range res.Rows {
		byName[r.Bound] = r
	}
	// Markov certifies nothing.
	if byName["markov"].AdultVG != 0 {
		t.Error("markov should find no violations")
	}
	// Chernoff's s_g at the ADULT operating point matches Eq. 10 (~119).
	if math.Abs(byName["chernoff"].SGAdult-119) > 3 {
		t.Errorf("chernoff sg = %v, want ~119", byName["chernoff"].SGAdult)
	}
	if !strings.Contains(res.String(), "chernoff") {
		t.Error("rendering should list the bounds")
	}
}

func TestEstimatorAblation(t *testing.T) {
	res, err := RunEstimatorAblation(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if math.Abs(row.MLE-row.Matrix) > 1e-9 {
			t.Errorf("|S|=%d: MLE and matrix MLE must coincide", row.Size)
		}
		// The tolerance is loose in absolute terms but far below any
		// meaningful L1 difference: EM's accelerated fixed point stops at a
		// finite iteration budget, so it can sit a few 1e-9 above the
		// closed-form MLE it converges to.
		if row.EM > row.MLE+1e-6 {
			t.Errorf("|S|=%d: EM (%v) should not be worse than raw MLE (%v)", row.Size, row.EM, row.MLE)
		}
	}
	// Errors shrink with subset size (the law of large numbers, i.e. the
	// mechanism behind the Split Role Principle).
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].MLE >= res.Rows[i-1].MLE {
			t.Errorf("MLE error should fall with |S|")
		}
	}
}

func TestReducePAblation(t *testing.T) {
	res, err := RunReducePAblation(true, testCensusSize, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReducedP >= res.OriginalP {
		t.Errorf("reduced p = %v should be below %v", res.ReducedP, res.OriginalP)
	}
	// The paper's Section 5 argument: reduce-p costs far more utility than SPS.
	if res.ReduceP.Mean <= res.SPSError.Mean {
		t.Errorf("reduce-p error (%v) should exceed SPS error (%v)", res.ReduceP.Mean, res.SPSError.Mean)
	}
	if !strings.Contains(res.String(), "reduced-p") {
		t.Error("rendering should include the reduced-p row")
	}
}

func TestRunAudit(t *testing.T) {
	res, err := RunAudit(true, testCensusSize, 300, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UP.Groups) != 5 || len(res.SPS.Groups) != 5 {
		t.Fatalf("audited %d/%d groups", len(res.UP.Groups), len(res.SPS.Groups))
	}
	if v := res.UP.BoundViolations(0.03); v != 0 {
		t.Errorf("%d UP groups exceeded their Chernoff bounds", v)
	}
	// SPS must lift the tails of violating groups above the UP level.
	for i := range res.UP.Groups {
		if !res.UP.Groups[i].Violating {
			continue
		}
		upTail := res.UP.Groups[i].UpperEmp + res.UP.Groups[i].LowerEmp
		spsTail := res.SPS.Groups[i].UpperEmp + res.SPS.Groups[i].LowerEmp
		if spsTail < upTail {
			t.Errorf("group %d: SPS tail %v below UP tail %v", i, spsTail, upTail)
		}
	}
	if !strings.Contains(res.String(), "Chernoff") {
		t.Error("rendering incomplete")
	}
}

func TestRunOutputVsData(t *testing.T) {
	res, err := RunOutputVsData(true, testCensusSize, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DP) != len(OutputVsDataEpsilons) {
		t.Fatalf("DP rows = %d", len(res.DP))
	}
	// DP error shrinks as ε grows (less noise) — the utility side of the
	// Section 2 trade-off.
	for i := 1; i < len(res.DP); i++ {
		if res.DP[i].DPError.Mean >= res.DP[i-1].DPError.Mean {
			t.Errorf("DP error should fall with ε: %v -> %v",
				res.DP[i-1].DPError.Mean, res.DP[i].DPError.Mean)
		}
	}
	if res.SPSError.Mean < res.UPError.Mean-0.01 {
		t.Error("SPS should not beat UP materially")
	}
	if !strings.Contains(res.String(), "ratio attack") {
		t.Error("rendering incomplete")
	}
	if _, err := RunOutputVsData(true, testCensusSize, 0); err == nil {
		t.Error("0 runs should error")
	}
}

func TestDatasetCaching(t *testing.T) {
	a, err := AdultData()
	if err != nil {
		t.Fatal(err)
	}
	b, err := AdultData()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("AdultData should be cached")
	}
	c1, err := CensusData(testCensusSize)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := CensusData(testCensusSize)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("CensusData should be cached per size")
	}
}

func TestPoolHasPaperWorkloadShape(t *testing.T) {
	ds, err := AdultData()
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Pool.Queries) != 5000 {
		t.Fatalf("pool size = %d, want 5000", len(ds.Pool.Queries))
	}
	seenDim := map[int]bool{}
	for _, q := range ds.Pool.Queries {
		seenDim[len(q.Conds)] = true
	}
	for d := 1; d <= 3; d++ {
		if !seenDim[d] {
			t.Errorf("no queries of dimensionality %d", d)
		}
	}
}

func TestRunBudgetBench(t *testing.T) {
	res, err := RunBudgetBench(60000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 6 {
		t.Fatalf("swept %d cells, want 6", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.MemoryMiB >= 64 {
			t.Errorf("cell %dx%.1f: %f MiB", c.Clients, c.ZipfS, c.MemoryMiB)
		}
		if c.Rejected == 0 {
			t.Errorf("cell %dx%.1f: zipf head never exhausted its quota", c.Clients, c.ZipfS)
		}
		if c.RejectionPrecision < 0.999 {
			t.Errorf("cell %dx%.1f: rejection precision %f", c.Clients, c.ZipfS, c.RejectionPrecision)
		}
	}
	cal := res.Calibration
	if cal.ClosedFormMargin <= 1 || cal.StableMargin <= 1 {
		t.Errorf("adversary breaches within quota: closed-form %fx, stable %fx", cal.ClosedFormMargin, cal.StableMargin)
	}
	if cal.ResidualErrorAtQuota < 0.5 {
		t.Errorf("attacker already within rounding distance (%f records) at the quota cutoff", cal.ResidualErrorAtQuota)
	}
	if !strings.Contains(res.String(), "quota calibration") {
		t.Error("rendering incomplete")
	}
}

func TestRunIngestBench(t *testing.T) {
	// A deliberately small stream: the digest-equivalence and conservation
	// checks inside the runner are what this test exists for, not the
	// calibrated throughput ratio (rpbench -exp ingest measures that).
	res, err := RunIngestBench(6, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0].Path != "delta" || res.Rows[1].Path != "legacy" {
		t.Fatalf("rows %+v, want delta then legacy", res.Rows)
	}
	if res.BaseRecords != 45222 {
		t.Fatalf("ADULT base %d, want 45222", res.BaseRecords)
	}
	if res.Digest == "" {
		t.Fatal("no converged digest")
	}
	delta, legacy := &res.Rows[0], &res.Rows[1]
	if delta.Records != 120 || legacy.Records != 120 {
		t.Fatalf("records %d/%d, want 120", delta.Records, legacy.Records)
	}
	if want := uint64(6 + ingestWarmupBatches); delta.Appends != want {
		t.Fatalf("delta path made %d appends for 6 timed + %d warmup batches, want %d",
			delta.Appends, ingestWarmupBatches, want)
	}
	if legacy.Appends != 0 || legacy.Compactions != 0 {
		t.Fatalf("legacy path used the delta machinery: %+v", legacy)
	}
	if res.Speedup <= 1 {
		t.Errorf("delta path not faster than full re-index: %.2fx", res.Speedup)
	}
	if !strings.Contains(res.String(), "ingest speedup") {
		t.Error("rendering incomplete")
	}
}
