package experiments

import (
	"strings"
	"testing"
)

func TestTextTableAlignment(t *testing.T) {
	tbl := &textTable{header: []string{"col", "longer-header"}}
	tbl.addRow("a-very-long-cell", "b")
	tbl.addRow("x", "y")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want header+separator+2 rows", len(lines))
	}
	// All lines padded to the same visible structure: the second column
	// starts at the same offset everywhere.
	idx := strings.Index(lines[0], "longer-header")
	for _, ln := range lines[2:] {
		if len(ln) < idx {
			t.Fatalf("row %q shorter than header offset", ln)
		}
	}
	if !strings.Contains(lines[1], "---") {
		t.Error("missing separator row")
	}
}

func TestFormatHelpers(t *testing.T) {
	if f3(0.12345) != "0.123" {
		t.Errorf("f3 = %q", f3(0.12345))
	}
	if f4(0.12345) != "0.1235" {
		t.Errorf("f4 = %q", f4(0.12345))
	}
	if pct(0.256) != "25.6%" {
		t.Errorf("pct = %q", pct(0.256))
	}
	if f6(0.0000321) != "3.21e-05" {
		t.Errorf("f6 = %q", f6(0.0000321))
	}
}

func TestViolationSweepCensusSizePanel(t *testing.T) {
	// Figure 4d: the |D| sweep must be non-decreasing in both series and
	// label its x values in thousands.
	sweep, err := RunViolationSweep(false, SweepSize, testCensusSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Points) != len(CensusSizes) {
		t.Fatalf("points = %d", len(sweep.Points))
	}
	for i := 1; i < len(sweep.Points); i++ {
		if sweep.Points[i].VR < sweep.Points[i-1].VR-1e-9 {
			t.Errorf("vr should grow with |D|: %v -> %v", sweep.Points[i-1].VR, sweep.Points[i].VR)
		}
	}
	if !strings.Contains(sweep.String(), "100K") {
		t.Error("size axis should be rendered in thousands")
	}
	if sweep.Dataset != "CENSUS" {
		t.Errorf("dataset label = %q", sweep.Dataset)
	}
}

func TestSweepValuesAndParams(t *testing.T) {
	for _, v := range []SweepVar{SweepP, SweepLambda, SweepDelta, SweepSize} {
		xs, err := sweepValues(v)
		if err != nil || len(xs) != 5 {
			t.Errorf("%s: %v values, err %v", v, len(xs), err)
		}
	}
	if _, err := sweepValues(SweepVar("nope")); err == nil {
		t.Error("unknown variable should error")
	}
	if pm := paramsAt(SweepP, 0.7); pm.P != 0.7 || pm.Lambda != DefaultParams.Lambda {
		t.Error("paramsAt(p) wrong")
	}
	if pm := paramsAt(SweepLambda, 0.4); pm.Lambda != 0.4 || pm.P != DefaultParams.P {
		t.Error("paramsAt(lambda) wrong")
	}
	if pm := paramsAt(SweepDelta, 0.2); pm.Delta != 0.2 {
		t.Error("paramsAt(delta) wrong")
	}
	if pm := paramsAt(SweepSize, 12345); pm != DefaultParams {
		t.Error("paramsAt(size) should keep the defaults")
	}
}

func TestTable5RendersBothRows(t *testing.T) {
	res, err := RunTable5(testCensusSize)
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	if !strings.Contains(out, "Before Aggregation") || !strings.Contains(out, "After Aggregation") {
		t.Error("Table 5 rendering incomplete")
	}
	// |G| = 116424 only at the 300K reference size; at the test size the
	// coverage layer is proportional, so just check the column exists.
	if !strings.Contains(out, "|G|") {
		t.Error("Table 5 should report the |G| column")
	}
}

func TestFig1Renders(t *testing.T) {
	res, err := RunFig1("CENSUS")
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	if !strings.Contains(out, "sg(p=0.3)") || !strings.Contains(out, "m=50") {
		t.Errorf("Figure 1 rendering incomplete:\n%s", out)
	}
}
