package experiments

import (
	"fmt"
	"strings"

	"github.com/reconpriv/reconpriv/internal/core"
)

// SweepVar names the x-axis of a parameter sweep.
type SweepVar string

// Sweep variables of Figures 2–5.
const (
	SweepP      SweepVar = "p"
	SweepLambda SweepVar = "lambda"
	SweepDelta  SweepVar = "delta"
	SweepSize   SweepVar = "size" // CENSUS only (Figures 4d and 5d)
)

// paramsAt returns the Table 6 defaults with the sweep variable replaced.
func paramsAt(v SweepVar, x float64) core.Params {
	pm := DefaultParams
	switch v {
	case SweepP:
		pm.P = x
	case SweepLambda:
		pm.Lambda = x
	case SweepDelta:
		pm.Delta = x
	}
	return pm
}

// sweepValues returns the Table 6 grid for a sweep variable.
func sweepValues(v SweepVar) ([]float64, error) {
	switch v {
	case SweepP:
		return PSweep, nil
	case SweepLambda:
		return LambdaSweep, nil
	case SweepDelta:
		return DeltaSweep, nil
	case SweepSize:
		xs := make([]float64, len(CensusSizes))
		for i, s := range CensusSizes {
			xs[i] = float64(s)
		}
		return xs, nil
	default:
		return nil, fmt.Errorf("experiments: unknown sweep variable %q", v)
	}
}

// ViolationPoint is one x position of a violation-rate curve.
type ViolationPoint struct {
	X  float64
	VG float64 // fraction of personal groups violating (v_g)
	VR float64 // fraction of records covered by violating groups (v_r)
}

// ViolationSweep reproduces one panel of Figures 2 (ADULT) or 4 (CENSUS):
// how much of the data set violates (λ, δ)-reconstruction privacy under
// plain uniform perturbation, as one parameter sweeps its Table 6 grid.
type ViolationSweep struct {
	Dataset string
	Var     SweepVar
	Points  []ViolationPoint
}

// RunViolationSweep computes the sweep for a dataset. The violation test is
// a property of the raw personal groups and the parameters (Corollary 4), so
// no perturbation run is needed.
func RunViolationSweep(adult bool, v SweepVar, censusSize int) (*ViolationSweep, error) {
	if adult && v == SweepSize {
		return nil, fmt.Errorf("experiments: the size sweep is CENSUS-only")
	}
	xs, err := sweepValues(v)
	if err != nil {
		return nil, err
	}
	sweep := &ViolationSweep{Var: v}
	for _, x := range xs {
		var ds *Dataset
		if adult {
			ds, err = AdultData()
		} else if v == SweepSize {
			ds, err = CensusData(int(x))
		} else {
			ds, err = CensusData(censusSize)
		}
		if err != nil {
			return nil, err
		}
		sweep.Dataset = ds.Name
		rep := core.Violations(ds.Groups, paramsAt(v, x))
		sweep.Points = append(sweep.Points, ViolationPoint{X: x, VG: rep.VG(), VR: rep.VR()})
	}
	if v == SweepSize {
		sweep.Dataset = "CENSUS"
	}
	return sweep, nil
}

// String renders the sweep as the two series v_r and v_g.
func (s *ViolationSweep) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s privacy violation vs %s (defaults p=%.1f lambda=%.1f delta=%.1f)\n",
		s.Dataset, s.Var, DefaultParams.P, DefaultParams.Lambda, DefaultParams.Delta)
	t := &textTable{header: []string{string(s.Var), "vr", "vg"}}
	for _, pt := range s.Points {
		x := fmt.Sprintf("%g", pt.X)
		if s.Var == SweepSize {
			x = fmt.Sprintf("%gK", pt.X/1000)
		}
		t.addRow(x, pct(pt.VR), pct(pt.VG))
	}
	sb.WriteString(t.String())
	return sb.String()
}
