package experiments

import (
	"fmt"
	"math"
	"strings"

	"github.com/reconpriv/reconpriv/internal/core"
	"github.com/reconpriv/reconpriv/internal/dp"
	"github.com/reconpriv/reconpriv/internal/query"
	"github.com/reconpriv/reconpriv/internal/stats"
)

// OutputVsDataRow is one ε setting of the comparison.
type OutputVsDataRow struct {
	Epsilon float64
	Scale   float64       // Laplace b = Δ/ε
	DPError stats.Summary // pool-average relative error of noisy answers
}

// OutputVsData compares the two publishing philosophies the paper's
// introduction contrasts, on the same 5,000-query workload:
//
//   - output perturbation (ε-DP Laplace answers, one per query), whose
//     error vanishes on large counts — which is exactly why the Section-2
//     ratio attack works against it;
//   - data perturbation (UP and reconstruction-private SPS), whose error
//     also vanishes on large aggregates but whose *personal-group* error is
//     kept high by construction.
//
// The point of the experiment is not that one error curve beats the other —
// it is that DP's good utility and its NIR disclosure are the same
// phenomenon, while SPS buys a targeted inaccuracy (personal groups) for a
// bounded aggregate cost.
type OutputVsData struct {
	Dataset  string
	Runs     int
	UPError  stats.Summary
	SPSError stats.Summary
	DP       []OutputVsDataRow
}

// OutputVsDataEpsilons are the DP budgets compared.
var OutputVsDataEpsilons = []float64{0.1, 0.5, 1.0}

// RunOutputVsData evaluates the pool under all three mechanisms at the
// default data-perturbation parameters.
func RunOutputVsData(adult bool, censusSize, runs int) (*OutputVsData, error) {
	if runs < 1 {
		return nil, fmt.Errorf("experiments: need at least one run")
	}
	var ds *Dataset
	var err error
	if adult {
		ds, err = AdultData()
	} else {
		ds, err = CensusData(censusSize)
	}
	if err != nil {
		return nil, err
	}
	res := &OutputVsData{Dataset: ds.Name, Runs: runs}
	pm := DefaultParams

	var upErrs, spsErrs []float64
	dpErrs := make([][]float64, len(OutputVsDataEpsilons))
	for run := 0; run < runs; run++ {
		rng := stats.NewRand(RunSeed + int64(run))
		up, err := core.PublishUP(rng, ds.Groups, pm.P)
		if err != nil {
			return nil, err
		}
		upMarg, err := query.BuildMarginalsFromGroups(up, 3)
		if err != nil {
			return nil, err
		}
		upRep, err := ds.Pool.Evaluate(upMarg, pm.P)
		if err != nil {
			return nil, err
		}
		upErrs = append(upErrs, upRep.AvgError)

		sps, _, err := core.PublishSPS(rng, ds.Groups, pm)
		if err != nil {
			return nil, err
		}
		spsMarg, err := query.BuildMarginalsFromGroups(sps, 3)
		if err != nil {
			return nil, err
		}
		spsRep, err := ds.Pool.Evaluate(spsMarg, pm.P)
		if err != nil {
			return nil, err
		}
		spsErrs = append(spsErrs, spsRep.AvgError)

		for ei, eps := range OutputVsDataEpsilons {
			mech := dp.LaplaceMechanism{Epsilon: eps, Sensitivity: 1}
			var sum float64
			for qi := range ds.Pool.Queries {
				ans := float64(ds.Pool.Answers[qi])
				noisy := mech.Answer(rng, ans)
				sum += math.Abs(noisy-ans) / ans
			}
			dpErrs[ei] = append(dpErrs[ei], sum/float64(len(ds.Pool.Queries)))
		}
	}
	res.UPError = stats.MustSummarize(upErrs)
	res.SPSError = stats.MustSummarize(spsErrs)
	for ei, eps := range OutputVsDataEpsilons {
		mech := dp.LaplaceMechanism{Epsilon: eps, Sensitivity: 1}
		res.DP = append(res.DP, OutputVsDataRow{
			Epsilon: eps,
			Scale:   mech.Scale(),
			DPError: stats.MustSummarize(dpErrs[ei]),
		})
	}
	return res, nil
}

// String renders the comparison.
func (r *OutputVsData) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Output vs data perturbation on %s (5000-query pool, %d runs, defaults p=%.1f λ=δ=%.1f)\n",
		r.Dataset, r.Runs, DefaultParams.P, DefaultParams.Lambda)
	t := &textTable{header: []string{"mechanism", "avg rel err", "se", "personal groups protected?"}}
	t.addRow("UP (data perturbation)", pct(r.UPError.Mean), f4(r.UPError.StdErr), "no (Figure 2/4 violations)")
	t.addRow("SPS (reconstruction privacy)", pct(r.SPSError.Mean), f4(r.SPSError.StdErr), "yes (Theorem 4)")
	for _, row := range r.DP {
		t.addRow(fmt.Sprintf("Laplace eps=%g (b=%g)", row.Epsilon, row.Scale),
			pct(row.DPError.Mean), f4(row.DPError.StdErr), "no (Section 2 ratio attack)")
	}
	sb.WriteString(t.String())
	return sb.String()
}
