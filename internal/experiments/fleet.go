package experiments

import (
	"fmt"
	"strings"

	"github.com/reconpriv/reconpriv/internal/sim"
)

// FleetBenchRow is one fleet configuration's measured serving profile:
// throughput and query latency at a replication factor, with or without one
// replica killed a fifth of the way into the run (and never restarted, so
// the row measures the degraded steady state, not a transient).
type FleetBenchRow struct {
	ReplicationFactor int     `json:"replication_factor"`
	Killed            bool    `json:"replica_killed"`
	Requests          int64   `json:"requests"`
	RequestsPerSec    float64 `json:"requests_per_second"`
	QueriesPerSec     float64 `json:"queries_per_second"`
	QueryP50US        float64 `json:"query_p50_us"`
	QueryP99US        float64 `json:"query_p99_us"`
	Failovers         uint64  `json:"failovers"`
	Ejections         uint64  `json:"ejections"`
	// Rejected counts operations that ended in a tolerated typed rejection;
	// it can be nonzero only on the rf=1 killed row, where the victim's
	// publications have no surviving holder.
	Rejected   int64 `json:"rejected"`
	Violations int64 `json:"violations"`
}

// FleetBenchResult is the rpbench output for the fleet experiment: the
// replication-factor sweep crossed with replica loss.
type FleetBenchResult struct {
	Clients int             `json:"clients"`
	Steps   int             `json:"steps"`
	Rows    []FleetBenchRow `json:"rows"`
}

// RunFleetBench sweeps replication factor 1..3 on a 3-replica fleet, each
// with and without a mid-run replica kill, and reports router throughput and
// query latency. Every run must finish with zero invariant violations —
// exactly-once exposure and replica agreement hold under failure or the
// bench fails, it does not report degraded numbers. The rf=1 killed cell is
// the one configuration where loss is allowed by construction: the victim's
// publications have no surviving holder, so the plan tolerates typed
// rejections and the row reports how many requests were turned away.
func RunFleetBench(clients, steps int, seed int64) (*FleetBenchResult, error) {
	sc, err := sim.Lookup("fleet")
	if err != nil {
		return nil, err
	}
	out := &FleetBenchResult{Clients: clients, Steps: steps}
	for rf := 1; rf <= 3; rf++ {
		for _, killed := range []bool{false, true} {
			plan := *sc.Fleet
			plan.ReplicationFactor = rf
			plan.RestartAtFrac = 0
			plan.SpikeEvery = 0 // pure throughput: no injected latency
			plan.KillAtFrac = 0
			if killed {
				plan.KillAtFrac = 0.2
				plan.TolerateUnavailable = rf == 1
			}
			bsc := sc
			bsc.Fleet = &plan
			res, err := sim.Run(sim.Options{Scenario: bsc, Seed: seed, Clients: clients, Steps: steps})
			if err != nil {
				return nil, err
			}
			s, t := &res.Summary, &res.Timing
			if s.Invariants.Violations > 0 {
				return nil, fmt.Errorf("experiments: fleet rf=%d killed=%v violated %d invariants: %s",
					rf, killed, s.Invariants.Violations, strings.Join(s.Invariants.Failures, "; "))
			}
			row := FleetBenchRow{
				ReplicationFactor: rf,
				Killed:            killed,
				Requests:          t.Requests,
				RequestsPerSec:    t.RequestsPerSec,
				QueriesPerSec:     t.QueriesPerSec,
				Violations:        s.Invariants.Violations,
			}
			if t.Fleet != nil {
				row.Failovers = t.Fleet.Failovers
				row.Ejections = t.Fleet.Ejections
				row.Rejected = t.Fleet.Rejected
			}
			for _, ot := range t.Ops {
				if ot.Op == "query" {
					row.QueryP50US, row.QueryP99US = ot.P50US, ot.P99US
				}
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// String renders the sweep as a table.
func (r *FleetBenchResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fleet throughput under replica loss (%d clients x %d steps, 3 replicas)\n",
		r.Clients, r.Steps)
	t := &textTable{header: []string{"rf", "killed", "req/s", "queries/s", "query p50 us", "query p99 us", "failovers", "rejected"}}
	for _, row := range r.Rows {
		t.addRow(
			fmt.Sprint(row.ReplicationFactor),
			fmt.Sprint(row.Killed),
			fmt.Sprintf("%.0f", row.RequestsPerSec),
			fmt.Sprintf("%.0f", row.QueriesPerSec),
			fmt.Sprintf("%.0f", row.QueryP50US),
			fmt.Sprintf("%.0f", row.QueryP99US),
			fmt.Sprint(row.Failovers),
			fmt.Sprint(row.Rejected),
		)
	}
	b.WriteString(t.String())
	return b.String()
}
