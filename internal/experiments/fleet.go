package experiments

import (
	"fmt"
	"strings"

	"github.com/reconpriv/reconpriv/internal/sim"
)

// FleetBenchRow is one fleet configuration's measured serving profile:
// throughput and query latency at a replication factor and transport, with
// or without one replica killed a fifth of the way into the run.
type FleetBenchRow struct {
	// Transport is how the fleet reached its replicas: "in-process" (the
	// goroutine exchange) or "spawned" (child processes over real sockets).
	Transport         string  `json:"transport"`
	ReplicationFactor int     `json:"replication_factor"`
	Killed            bool    `json:"replica_killed"`
	Requests          int64   `json:"requests"`
	RequestsPerSec    float64 `json:"requests_per_second"`
	QueriesPerSec     float64 `json:"queries_per_second"`
	QueryP50US        float64 `json:"query_p50_us"`
	QueryP99US        float64 `json:"query_p99_us"`
	Failovers         uint64  `json:"failovers"`
	Ejections         uint64  `json:"ejections"`
	// Rejected counts operations that ended in a tolerated typed rejection;
	// it can be nonzero only on the rf=1 killed row, where the victim's
	// publications have no surviving holder.
	Rejected   int64 `json:"rejected"`
	Violations int64 `json:"violations"`
}

// FleetBenchResult is the rpbench output for the fleet experiment: the
// replication-factor sweep crossed with replica loss, in-process, plus the
// cross-process comparison rows.
type FleetBenchResult struct {
	Clients int             `json:"clients"`
	Steps   int             `json:"steps"`
	Rows    []FleetBenchRow `json:"rows"`
}

// RunFleetBench sweeps replication factor 1..3 on a 3-replica in-process
// fleet, each with and without a mid-run replica kill, then repeats the
// rf=2 pair against spawned child processes over real sockets — the
// cross-process kill is a real OS process exit mid-run, followed by a
// respawn-and-replay restart. Every run must finish with zero invariant
// violations — exactly-once exposure and replica agreement hold under
// failure or the bench fails, it does not report degraded numbers. The
// in-process rf=1 killed cell is the one configuration where loss is
// allowed by construction: the victim's publications have no surviving
// holder, so the plan tolerates typed rejections and the row reports how
// many requests were turned away.
func RunFleetBench(clients, steps int, seed int64) (*FleetBenchResult, error) {
	sc, err := sim.Lookup("fleet")
	if err != nil {
		return nil, err
	}
	out := &FleetBenchResult{Clients: clients, Steps: steps}

	type cell struct {
		rf           int
		killed       bool
		crossProcess bool
	}
	var cells []cell
	for rf := 1; rf <= 3; rf++ {
		for _, killed := range []bool{false, true} {
			cells = append(cells, cell{rf: rf, killed: killed})
		}
	}
	// Cross-process comparison at the fault-tolerant operating point: same
	// workload, real sockets, and — on the killed row — a real process kill
	// with a respawn-and-replay restart at 60%.
	cells = append(cells,
		cell{rf: 2, crossProcess: true},
		cell{rf: 2, killed: true, crossProcess: true},
	)

	for _, c := range cells {
		plan := *sc.Fleet
		plan.ReplicationFactor = c.rf
		plan.RestartAtFrac = 0
		plan.SpikeEvery = 0 // pure throughput: no injected latency
		plan.KillAtFrac = 0
		plan.CrossProcess = c.crossProcess
		if c.killed {
			plan.KillAtFrac = 0.2
			plan.TolerateUnavailable = c.rf == 1 && !c.crossProcess
			if c.crossProcess {
				// The cross-process kill is a real process exit; the restart
				// respawns the child and replays checkpoint + log before it
				// rejoins, so no loss is tolerated.
				plan.RestartAtFrac = 0.6
			}
		}
		bsc := sc
		bsc.Fleet = &plan
		res, err := sim.Run(sim.Options{Scenario: bsc, Seed: seed, Clients: clients, Steps: steps})
		if err != nil {
			return nil, err
		}
		s, t := &res.Summary, &res.Timing
		if s.Invariants.Violations > 0 {
			return nil, fmt.Errorf("experiments: fleet rf=%d killed=%v cross=%v violated %d invariants: %s",
				c.rf, c.killed, c.crossProcess, s.Invariants.Violations, strings.Join(s.Invariants.Failures, "; "))
		}
		row := FleetBenchRow{
			ReplicationFactor: c.rf,
			Killed:            c.killed,
			Requests:          t.Requests,
			RequestsPerSec:    t.RequestsPerSec,
			QueriesPerSec:     t.QueriesPerSec,
			Violations:        s.Invariants.Violations,
		}
		if s.Fleet != nil {
			row.Transport = s.Fleet.Transport
		}
		if t.Fleet != nil {
			row.Failovers = t.Fleet.Failovers
			row.Ejections = t.Fleet.Ejections
			row.Rejected = t.Fleet.Rejected
		}
		for _, ot := range t.Ops {
			if ot.Op == "query" {
				row.QueryP50US, row.QueryP99US = ot.P50US, ot.P99US
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// String renders the sweep as a table.
func (r *FleetBenchResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fleet throughput under replica loss (%d clients x %d steps, 3 replicas)\n",
		r.Clients, r.Steps)
	t := &textTable{header: []string{"transport", "rf", "killed", "req/s", "queries/s", "query p50 us", "query p99 us", "failovers", "rejected"}}
	for _, row := range r.Rows {
		t.addRow(
			row.Transport,
			fmt.Sprint(row.ReplicationFactor),
			fmt.Sprint(row.Killed),
			fmt.Sprintf("%.0f", row.RequestsPerSec),
			fmt.Sprintf("%.0f", row.QueriesPerSec),
			fmt.Sprintf("%.0f", row.QueryP50US),
			fmt.Sprintf("%.0f", row.QueryP99US),
			fmt.Sprint(row.Failovers),
			fmt.Sprint(row.Rejected),
		)
	}
	b.WriteString(t.String())
	return b.String()
}
