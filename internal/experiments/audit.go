package experiments

import (
	"fmt"
	"strings"

	"github.com/reconpriv/reconpriv/internal/core"
	"github.com/reconpriv/reconpriv/internal/stats"
)

// AuditResult is the Monte-Carlo verification of Corollary 3 on a real
// dataset: for the largest personal groups, the empirical tail
// probabilities of the personal-reconstruction error under the UP process
// and under the SPS process, next to the Chernoff bounds.
type AuditResult struct {
	Dataset string
	Trials  int
	UP      *core.AuditReport
	SPS     *core.AuditReport
}

// RunAudit audits the top maxGroups groups of a dataset with the default
// parameters. It is the experiment the paper's analytical Sections 4–5
// imply but never runs: bounds must dominate UP tails, and SPS must lift
// the tails of violating groups far above their UP level.
func RunAudit(adult bool, censusSize, trials, maxGroups int, seed int64) (*AuditResult, error) {
	var ds *Dataset
	var err error
	if adult {
		ds, err = AdultData()
	} else {
		ds, err = CensusData(censusSize)
	}
	if err != nil {
		return nil, err
	}
	up, err := core.Audit(stats.NewRand(seed), ds.Groups, DefaultParams, false, trials, maxGroups)
	if err != nil {
		return nil, err
	}
	sps, err := core.Audit(stats.NewRand(seed+1), ds.Groups, DefaultParams, true, trials, maxGroups)
	if err != nil {
		return nil, err
	}
	return &AuditResult{Dataset: ds.Name, Trials: trials, UP: up, SPS: sps}, nil
}

// String renders the audit as a per-group table.
func (r *AuditResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Monte-Carlo audit of %s (top %d groups, %d trials, defaults)\n",
		r.Dataset, len(r.UP.Groups), r.Trials)
	t := &textTable{header: []string{
		"size", "f", "s_g", "violates",
		"UP tail", "Chernoff U+L", "SPS tail",
	}}
	for i := range r.UP.Groups {
		u := r.UP.Groups[i]
		var spsTail float64
		if i < len(r.SPS.Groups) {
			spsTail = r.SPS.Groups[i].UpperEmp + r.SPS.Groups[i].LowerEmp
		}
		t.addRow(
			fmt.Sprintf("%d", u.Size),
			f3(u.F),
			fmt.Sprintf("%.0f", u.SG),
			fmt.Sprintf("%v", u.Violating),
			f4(u.UpperEmp+u.LowerEmp),
			f4(u.UpperBound+u.LowerBound),
			f4(spsTail),
		)
	}
	sb.WriteString(t.String())
	if v := r.UP.BoundViolations(0.02); v > 0 {
		fmt.Fprintf(&sb, "WARNING: %d groups exceeded their Chernoff bounds under UP\n", v)
	} else {
		sb.WriteString("all empirical UP tails sit below their Chernoff bounds (Corollary 3 verified)\n")
	}
	return sb.String()
}
