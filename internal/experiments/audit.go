package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"github.com/reconpriv/reconpriv/internal/core"
)

// AuditResult is the Monte-Carlo verification of Corollary 3 on a real
// dataset: for the largest personal groups, the empirical tail
// probabilities of the personal-reconstruction error under the UP process
// and under the SPS process, next to the Chernoff bounds.
type AuditResult struct {
	Dataset string            `json:"dataset"`
	Trials  int               `json:"trials"`
	Groups  int               `json:"groups"`  // personal groups swept per report
	Workers int               `json:"workers"` // GOMAXPROCS of the run
	SweepMS float64           `json:"sweep_ms"`
	UP      *core.AuditReport `json:"up"`
	SPS     *core.AuditReport `json:"sps"`
}

// RunAudit audits the top maxGroups groups of a dataset with the default
// parameters (0 sweeps every personal group). It is the experiment the
// paper's analytical Sections 4–5 imply but never run: bounds must dominate
// UP tails, and SPS must lift the tails of violating groups far above their
// UP level. Both reports run through the parallel core.AuditSweep, so the
// result is bit-identical at any GOMAXPROCS; SweepMS times the two sweeps
// together.
func RunAudit(adult bool, censusSize, trials, maxGroups int, seed int64) (*AuditResult, error) {
	var ds *Dataset
	var err error
	if adult {
		ds, err = AdultData()
	} else {
		ds, err = CensusData(censusSize)
	}
	if err != nil {
		return nil, err
	}
	start := time.Now()
	up, err := core.AuditSweep(seed, ds.Groups, DefaultParams, false, trials, maxGroups, 0)
	if err != nil {
		return nil, err
	}
	sps, err := core.AuditSweep(seed+1, ds.Groups, DefaultParams, true, trials, maxGroups, 0)
	if err != nil {
		return nil, err
	}
	return &AuditResult{
		Dataset: ds.Name,
		Trials:  trials,
		Groups:  len(up.Groups),
		Workers: runtime.GOMAXPROCS(0),
		SweepMS: float64(time.Since(start).Microseconds()) / 1000,
		UP:      up,
		SPS:     sps,
	}, nil
}

// String renders the audit as a per-group table.
func (r *AuditResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Monte-Carlo audit of %s (top %d groups, %d trials, defaults; swept in %.1f ms on %d workers)\n",
		r.Dataset, len(r.UP.Groups), r.Trials, r.SweepMS, r.Workers)
	t := &textTable{header: []string{
		"size", "f", "s_g", "violates",
		"UP tail", "Chernoff U+L", "SPS tail",
	}}
	for i := range r.UP.Groups {
		u := r.UP.Groups[i]
		var spsTail float64
		if i < len(r.SPS.Groups) {
			spsTail = r.SPS.Groups[i].UpperEmp + r.SPS.Groups[i].LowerEmp
		}
		t.addRow(
			fmt.Sprintf("%d", u.Size),
			f3(u.F),
			fmt.Sprintf("%.0f", u.SG),
			fmt.Sprintf("%v", u.Violating),
			f4(u.UpperEmp+u.LowerEmp),
			f4(u.UpperBound+u.LowerBound),
			f4(spsTail),
		)
	}
	sb.WriteString(t.String())
	if v := r.UP.BoundViolations(0.02); v > 0 {
		fmt.Fprintf(&sb, "WARNING: %d groups exceeded their Chernoff bounds under UP\n", v)
	} else {
		sb.WriteString("all empirical UP tails sit below their Chernoff bounds (Corollary 3 verified)\n")
	}
	return sb.String()
}
