// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 6 plus the motivating Tables 1–2 of Sections 1–2).
// Each Run* function regenerates one artifact and returns a structured
// result with a text renderer; cmd/rpbench and the top-level benchmarks are
// thin wrappers around these runners.
//
// Datasets and their derived artifacts (chi-square generalization, personal
// groups, query marginals, the 5,000-query pool) are deterministic and
// cached process-wide, so repeated benchmark iterations measure the
// experiment itself rather than data generation.
package experiments

import (
	"fmt"
	"sync"

	"github.com/reconpriv/reconpriv/internal/chimerge"
	"github.com/reconpriv/reconpriv/internal/core"
	"github.com/reconpriv/reconpriv/internal/datagen"
	"github.com/reconpriv/reconpriv/internal/dataset"
	"github.com/reconpriv/reconpriv/internal/query"
	"github.com/reconpriv/reconpriv/internal/stats"
)

// Seeds used throughout the harness. Fixed seeds make every table and figure
// reproducible run to run; publishing randomness inside multi-run experiments
// derives from RunSeed plus the run index.
const (
	DataSeed = 1
	PoolSeed = 42
	RunSeed  = 1000
)

// Defaults mirroring the paper's Table 6 (boldface) and Section 6.1.
var (
	DefaultParams       = core.Params{P: 0.5, Lambda: 0.3, Delta: 0.3}
	PSweep              = []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	LambdaSweep         = []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	DeltaSweep          = []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	CensusSizes         = []int{100000, 200000, 300000, 400000, 500000}
	DefaultCensusSize   = 300000
	DefaultRuns         = 10
	DefaultSignificance = chimerge.DefaultSignificance
)

// Dataset bundles a raw table with every derived artifact the experiments
// share: the chi-square merge analysis (Merge.Table is nil — the
// generalized table is never materialized), the personal groups of the
// generalized data, the query-answering marginal cubes for both the
// original and generalized data, and the Section 6.1 query pool.
type Dataset struct {
	Name     string
	Raw      *dataset.Table
	Merge    *chimerge.Result
	Groups   *dataset.GroupSet // personal groups of the generalized table
	OrigMarg *query.Marginals
	GenMarg  *query.Marginals
	Pool     *query.Pool
}

// build derives all artifacts from a raw table, on the same fused parallel
// cold path the publication server uses: one sharded chi-square analysis
// scan (no remapped table is materialized — Merge.Table is nil), grouping
// directly from the raw table through the value mappings, and concurrent
// marginal-cube fills. Every stage is bit-identical to its sequential
// counterpart, so cached artifacts are reproducible regardless of
// GOMAXPROCS; the generalized marginals are built from the |G| groups
// instead of the |D|-row generalized table (identical counts, far cheaper).
func build(name string, raw *dataset.Table) (*Dataset, error) {
	merge, err := chimerge.Analyze(raw, DefaultSignificance, 0)
	if err != nil {
		return nil, fmt.Errorf("experiments: generalizing %s: %w", name, err)
	}
	groups, err := dataset.GroupsOfMapped(raw, merge.Mappings, 0)
	if err != nil {
		return nil, fmt.Errorf("experiments: grouping %s: %w", name, err)
	}
	origMarg, err := query.BuildMarginalsParallel(raw, 3, 0)
	if err != nil {
		return nil, fmt.Errorf("experiments: indexing %s: %w", name, err)
	}
	genMarg, err := query.BuildMarginalsFromGroupsParallel(groups, 3, 0)
	if err != nil {
		return nil, fmt.Errorf("experiments: indexing generalized %s: %w", name, err)
	}
	pool, err := query.GeneratePool(stats.NewRand(PoolSeed), origMarg, genMarg, merge.Mappings, query.DefaultPoolOptions)
	if err != nil {
		return nil, fmt.Errorf("experiments: query pool for %s: %w", name, err)
	}
	return &Dataset{
		Name:     name,
		Raw:      raw,
		Merge:    merge,
		Groups:   groups,
		OrigMarg: origMarg,
		GenMarg:  genMarg,
		Pool:     pool,
	}, nil
}

var cache struct {
	mu     sync.Mutex
	adult  *Dataset
	census map[int]*Dataset
}

// AdultData returns the cached ADULT dataset bundle.
func AdultData() (*Dataset, error) {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	if cache.adult == nil {
		ds, err := build("ADULT", datagen.Adult(DataSeed))
		if err != nil {
			return nil, err
		}
		cache.adult = ds
	}
	return cache.adult, nil
}

// CensusData returns the cached CENSUS bundle of the given size.
func CensusData(n int) (*Dataset, error) {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	if cache.census == nil {
		cache.census = make(map[int]*Dataset)
	}
	if ds, ok := cache.census[n]; ok {
		return ds, nil
	}
	raw, err := datagen.Census(n, DataSeed)
	if err != nil {
		return nil, err
	}
	ds, err := build(fmt.Sprintf("CENSUS-%dK", n/1000), raw)
	if err != nil {
		return nil, err
	}
	cache.census[n] = ds
	return ds, nil
}
