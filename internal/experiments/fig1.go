package experiments

import (
	"fmt"
	"strings"

	"github.com/reconpriv/reconpriv/internal/core"
)

// Fig1PSettings are the retention probabilities of Figure 1's three curves.
var Fig1PSettings = []float64{0.3, 0.5, 0.7}

// Fig1Series is one s_g-vs-f curve for a fixed retention probability.
type Fig1Series struct {
	P  float64
	F  []float64
	SG []float64
}

// Fig1Result reproduces Figure 1: the maximum group size s_g (Eq. 12) as a
// function of the maximum frequency f, for ADULT (m = 2, f ∈ [0.5, 0.9] —
// with two SA values the top frequency is at least one half) and CENSUS
// (m = 50, f ∈ [0.1, 0.9]).
type Fig1Result struct {
	Panel  string // "ADULT" or "CENSUS"
	M      int
	Series []Fig1Series
}

// RunFig1 computes one panel with the default λ and δ.
func RunFig1(panel string) (*Fig1Result, error) {
	var m int
	var fs []float64
	switch panel {
	case "ADULT":
		m = 2
		for f := 0.5; f <= 0.901; f += 0.05 {
			fs = append(fs, f)
		}
	case "CENSUS":
		m = 50
		for f := 0.1; f <= 0.901; f += 0.05 {
			fs = append(fs, f)
		}
	default:
		return nil, fmt.Errorf("experiments: Figure 1 panel must be ADULT or CENSUS, got %q", panel)
	}
	res := &Fig1Result{Panel: panel, M: m}
	for _, p := range Fig1PSettings {
		pm := DefaultParams
		pm.P = p
		s := Fig1Series{P: p}
		for _, f := range fs {
			s.F = append(s.F, f)
			s.SG = append(s.SG, core.MaxGroupSize(f, m, pm))
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// String renders the curves as aligned columns (one row per f).
func (r *Fig1Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 1(%s): maximum group size s_g vs maximum frequency f (m=%d, lambda=%.1f, delta=%.1f)\n",
		r.Panel, r.M, DefaultParams.Lambda, DefaultParams.Delta)
	t := &textTable{header: []string{"f"}}
	for _, s := range r.Series {
		t.header = append(t.header, fmt.Sprintf("sg(p=%.1f)", s.P))
	}
	for i := range r.Series[0].F {
		row := []string{fmt.Sprintf("%.2f", r.Series[0].F[i])}
		for _, s := range r.Series {
			row = append(row, fmt.Sprintf("%.0f", s.SG[i]))
		}
		t.addRow(row...)
	}
	sb.WriteString(t.String())
	return sb.String()
}
