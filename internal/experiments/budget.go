package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"github.com/reconpriv/reconpriv/internal/budget"
	"github.com/reconpriv/reconpriv/internal/datagen"
	"github.com/reconpriv/reconpriv/internal/dataset"
	"github.com/reconpriv/reconpriv/internal/perturb"
	"github.com/reconpriv/reconpriv/internal/reconstruct"
	"github.com/reconpriv/reconpriv/internal/sim"
	"github.com/reconpriv/reconpriv/internal/stats"
)

// The budget experiment answers the two questions the exposure budget
// manager was built for. Scale: does one manager with production defaults
// hold its memory bound and its accuracy contract when 10 million distinct
// zipf-distributed clients pour charges through it? Calibration: is the
// shipped DefaultQuota small enough that a generation-averaging adversary
// is cut off by a budget_exhausted rejection before its averaged
// reconstruction becomes more accurate than the single-generation
// Bernstein envelope permits?

// budgetChargeUnits is the exposure charged per synthetic operation in the
// scale sweep: one 20-query batch, the simulator's batch size.
const budgetChargeUnits = 20

// budgetOracleRanks bounds the exact shadow ledger the sweep keeps next to
// the manager: the zipf head it can judge rejections against. It equals
// the manager's own default exact-tracking capacity, so every client the
// manager could possibly track exactly has an oracle entry.
const budgetOracleRanks = budget.DefaultMaxTracked

// BudgetCell is one (population, skew) cell of the scale sweep.
type BudgetCell struct {
	Clients     int     `json:"clients"` // zipf rank population
	ZipfS       float64 `json:"zipf_s"`
	Draws       int     `json:"draws"`
	NSPerCharge float64 `json:"ns_per_charge"`
	// Manager snapshot after the run.
	Accepted   uint64  `json:"accepted"`
	Rejected   uint64  `json:"rejected"`
	Tracked    int     `json:"tracked"`
	Promotions uint64  `json:"promotions"`
	Evictions  uint64  `json:"evictions"`
	MemoryMiB  float64 `json:"memory_mib"`
	// BytesPerTracked is manager memory divided by exactly tracked
	// clients: the marginal cost of one more tracked heavy hitter.
	BytesPerTracked float64 `json:"bytes_per_tracked"`
	// Rejection accounting against the exact oracle over the zipf head.
	// A rejection is true when the client's exact usage really exceeded
	// the quota, and false otherwise; false rejections split by whether
	// the manager believed its counts exact (must never happen) or knew
	// it was holding a count-min upper bound.
	TrueRejects        int64   `json:"true_rejects"`
	SketchFalseRejects int64   `json:"sketch_false_rejects"`
	ExactFalseRejects  int64   `json:"exact_false_rejects"`
	UnoracledRejects   int64   `json:"unoracled_rejects"`
	RejectionPrecision float64 `json:"rejection_precision"`
	// Undercounts over the sampled head: manager estimates below the
	// oracle's exact totals (the count-min contract forbids any).
	Undercounts int `json:"undercounts"`
}

// BudgetCalibration records the quota-vs-averaging-adversary analysis on
// the reference medical publication (Example 2, n = 2000, UP at the
// default p): the closed-form and empirical charge cost of pinning a raw
// group histogram, next to the shipped DefaultQuota.
type BudgetCalibration struct {
	Dataset string  `json:"dataset"`
	Records int     `json:"records"`
	Groups  int     `json:"groups"`
	M       int     `json:"m"`
	P       float64 `json:"p"`
	// Quota is budget.DefaultQuota; one reconstruction of one group
	// charges M units, so the quota admits GenerationsAtQuota averaged
	// generations before the 429 arrives.
	Quota              int64 `json:"quota"`
	GenerationsAtQuota int64 `json:"generations_at_quota"`
	// ClosedFormGenerations is k* for the analytically weakest group:
	// averaging k* fresh generations shrinks its weakest cell's Bernstein
	// envelope below half a record, the first point where the attacker can
	// CERTIFY a pinned raw count from the envelope alone.
	// ClosedFormCharges = k*·M.
	WeakestGroupSize      int     `json:"weakest_group_size"`
	WeakestGroupMinMu     float64 `json:"weakest_group_min_mu"`
	ClosedFormGenerations int64   `json:"closed_form_generations"`
	ClosedFormCharges     int64   `json:"closed_form_charges"`
	ClosedFormMargin      float64 `json:"closed_form_margin"`
	// StableGenerations is the empirical attacker's best result over every
	// group: the generation after which its rounded averaged histogram
	// never again deviates from the raw histogram — from that point its
	// knowledge is exact even without a certificate. StableGroupSize is
	// the group that pinned cheapest.
	StableGroupSize   int     `json:"stable_group_size"`
	StableGenerations int64   `json:"stable_generations"`
	StableCharges     int64   `json:"stable_charges"`
	StableMargin      float64 `json:"stable_margin"`
	// TransientGenerations is the earliest lucky crossing over every
	// group: the first generation at which some group's average happened
	// to round to the raw histogram. The attacker cannot detect such a
	// crossing (its confidence envelope is still far wider than half a
	// record), so this is reported but carries no quota assertion.
	TransientGenerations int64 `json:"transient_generations"`
	// ResidualErrorAtQuota is the attacker's worst remaining cell error in
	// records, on the cheapest-to-pin group, at the moment the default
	// quota cuts it off.
	ResidualErrorAtQuota float64 `json:"residual_error_at_quota"`
}

// BudgetBenchResult is the full budget experiment: the scale sweep and the
// quota calibration, plus any contract violations (which also surface as
// an error from RunBudgetBench).
type BudgetBenchResult struct {
	DrawsPerCell int                `json:"draws_per_cell"`
	ChargeUnits  int64              `json:"charge_units_per_draw"`
	Quota        int64              `json:"quota"`
	Cells        []BudgetCell       `json:"cells"`
	Calibration  *BudgetCalibration `json:"calibration"`
	Violations   []string           `json:"violations,omitempty"`
}

// RunBudgetBench sweeps one production-default budget manager across
// synthetic client populations {100k, 1M, 10M} and zipf skews {1.1, 1.5},
// driving draws charge batches per cell, then calibrates DefaultQuota
// against a generation-averaging adversary on the medical publication.
// draws <= 0 selects the default 2,000,000 per cell.
//
// The sweep charges query-class batches only, so every rejection is a hard
// client_quota verdict and precision is well-defined against the exact
// oracle; the degraded (reconstruct-shedding) path is pinned by the budget
// unit tests and the sim budget scenario. It returns an error if any cell
// exceeds the 64 MiB memory bound, falsely rejects an exactly tracked
// client, undercounts the oracle, or if either calibration bound says the
// quota fails to cut the adversary off in time.
func RunBudgetBench(draws int, seed int64) (*BudgetBenchResult, error) {
	if draws <= 0 {
		draws = 2_000_000
	}
	res := &BudgetBenchResult{
		DrawsPerCell: draws,
		ChargeUnits:  budgetChargeUnits,
		Quota:        budget.DefaultQuota,
	}
	for _, pop := range []int{100_000, 1_000_000, 10_000_000} {
		for _, s := range []float64{1.1, 1.5} {
			cell := runBudgetCell(pop, s, draws, seed)
			res.Cells = append(res.Cells, cell)
			if cell.MemoryMiB >= 64 {
				res.violatef("cell %dx%.1f: manager memory %.1f MiB breaches the 64 MiB bound", pop, s, cell.MemoryMiB)
			}
			if cell.ExactFalseRejects != 0 {
				res.violatef("cell %dx%.1f: %d false rejections of exactly tracked clients", pop, s, cell.ExactFalseRejects)
			}
			if cell.Undercounts != 0 {
				res.violatef("cell %dx%.1f: %d estimates below the exact oracle", pop, s, cell.Undercounts)
			}
		}
	}

	cal, err := calibrateQuota(seed)
	if err != nil {
		return nil, err
	}
	res.Calibration = cal
	if cal.ClosedFormCharges <= cal.Quota {
		res.violatef("closed-form certified breach at %d charges is within the default quota %d", cal.ClosedFormCharges, cal.Quota)
	}
	if cal.StableGenerations > 0 && cal.StableCharges <= cal.Quota {
		res.violatef("empirical attacker stably pinned a group after %d charges, within the default quota %d", cal.StableCharges, cal.Quota)
	}
	if cal.StableGenerations == 0 {
		res.violatef("empirical attacker never stabilized within the horizon; cannot certify the margin")
	}

	if len(res.Violations) > 0 {
		return nil, fmt.Errorf("experiments: budget contract violated: %s", strings.Join(res.Violations, "; "))
	}
	return res, nil
}

func (r *BudgetBenchResult) violatef(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// runBudgetCell drives one manager cell: draws zipf-ranked clients, each
// charged one query batch per draw, with an exact shadow ledger over the
// head ranks to judge every rejection and estimate.
func runBudgetCell(pop int, s float64, draws int, seed int64) BudgetCell {
	t0 := time.Unix(1_700_000_000, 0)
	// Production defaults except the shared publication cap: every draw
	// charges the same publication, so that cap would trip on aggregate
	// usage and say nothing about per-client precision (the publication
	// quota has its own unit tests).
	mgr := budget.New(budget.Config{
		PublicationQuota: -1,
		Clock:            func() time.Time { return t0 },
	})
	z := stats.NewZipf(s, uint64(pop))
	rng := stats.NewRand(seed ^ int64(pop) ^ int64(math.Float64bits(s)))

	quota := mgr.QuotaFor("")
	oracle := make([]int64, budgetOracleRanks+1)
	cell := BudgetCell{Clients: pop, ZipfS: s, Draws: draws}

	start := time.Now()
	for i := 0; i < draws; i++ {
		rank := z.Draw(rng)
		client := fmt.Sprintf("c%08d", rank)
		r := mgr.Charge(client, "sweep", budgetChargeUnits, budget.ClassQuery)
		if rank > budgetOracleRanks {
			if !r.OK {
				cell.UnoracledRejects++
			}
			continue
		}
		prior := oracle[rank]
		if r.OK {
			oracle[rank] = prior + budgetChargeUnits
		} else if prior+budgetChargeUnits > quota {
			cell.TrueRejects++
		} else if r.Exact {
			cell.ExactFalseRejects++
		} else {
			cell.SketchFalseRejects++
		}
	}
	elapsed := time.Since(start)
	cell.NSPerCharge = float64(elapsed.Nanoseconds()) / float64(draws)

	st := mgr.Snapshot()
	cell.Accepted = st.Charges
	cell.Rejected = st.RejectedClientQuota + st.RejectedPublication + st.RejectedDegraded
	cell.Tracked = st.Tracked
	cell.Promotions = st.Promotions
	cell.Evictions = st.Evictions
	cell.MemoryMiB = float64(st.MemoryBytes) / (1 << 20)
	if st.Tracked > 0 {
		cell.BytesPerTracked = float64(st.MemoryBytes) / float64(st.Tracked)
	}
	if rej := cell.TrueRejects + cell.SketchFalseRejects + cell.ExactFalseRejects; rej > 0 {
		cell.RejectionPrecision = float64(cell.TrueRejects) / float64(rej)
	} else {
		cell.RejectionPrecision = 1
	}
	// Never-undercount audit over the sampled head: the manager's lifetime
	// estimate must dominate the oracle for every rank, tracked or not.
	for rank := 1; rank <= 1024 && rank <= pop; rank++ {
		if oracle[rank] == 0 {
			continue
		}
		if est, _ := mgr.Estimate(fmt.Sprintf("c%08d", rank)); est < oracle[rank] {
			cell.Undercounts++
		}
	}
	return cell
}

// calibrateQuota works out how many charge units a generation-averaging
// adversary needs before it pins a raw group histogram of the reference
// medical publication — the reconstruction-accuracy breach the Bernstein
// envelope otherwise rules out — and compares both a closed-form and an
// empirical answer against budget.DefaultQuota.
//
// Closed form: one UP generation bounds the reconstructed count of group
// cell v within tol_v = ω(µ_v)·µ_v/p records (the sim's Bernstein
// invariant, scaled from frequencies to counts). Averaging k independent
// generations shrinks the envelope by √k, so the attacker pins the cell —
// averaged error below half a record, rounding recovers the raw count —
// once k ≥ (tol_v/0.5)². The weakest cell over all groups minimizes that
// k*, and each generation's reconstruction charges m units.
func calibrateQuota(seed int64) (*BudgetCalibration, error) {
	tbl, err := datagen.Medical(2000, DataSeed)
	if err != nil {
		return nil, err
	}
	gs := dataset.GroupsOf(tbl)
	m := tbl.Schema.SADomain()
	p := DefaultParams.P

	cal := &BudgetCalibration{
		Dataset: "MEDICAL-2000",
		Records: tbl.NumRows(),
		Groups:  gs.NumGroups(),
		M:       m,
		P:       p,
		Quota:   budget.DefaultQuota,
	}
	cal.GenerationsAtQuota = cal.Quota / int64(m)

	// The per-tail eps matches the sim's bernsteinEps: the envelope being
	// breached is literally the one checkBernstein enforces.
	const eps = 1e-9
	for gi := range gs.Groups {
		g := &gs.Groups[gi]
		kStar, minMu := groupPinGenerations(g, p, m, eps)
		if cal.ClosedFormGenerations == 0 || kStar < cal.ClosedFormGenerations {
			cal.ClosedFormGenerations = kStar
			cal.WeakestGroupSize = g.Size
			cal.WeakestGroupMinMu = minMu
		}
	}
	cal.ClosedFormCharges = cal.ClosedFormGenerations * int64(m)
	cal.ClosedFormMargin = float64(cal.ClosedFormCharges) / float64(cal.Quota)

	// Empirical attacker against every group: fresh UP generations of the
	// group's SA histogram, MLE-reconstructed and averaged. The attack on
	// each group runs to a fixed horizon to find its stabilization point
	// (a short horizon could only understate it, which errs against the
	// quota). The attacker breaches at its cheapest group.
	const horizon = 20000
	for gi := range gs.Groups {
		g := &gs.Groups[gi]
		stable, transient, residual := attackGroup(g, p, m, horizon, cal.GenerationsAtQuota, stats.NewRand(seed+int64(gi)*7919))
		if stable > 0 && (cal.StableGenerations == 0 || stable < cal.StableGenerations) {
			cal.StableGenerations = stable
			cal.StableGroupSize = g.Size
			cal.ResidualErrorAtQuota = residual
		}
		if transient > 0 && (cal.TransientGenerations == 0 || transient < cal.TransientGenerations) {
			cal.TransientGenerations = transient
		}
	}
	cal.StableCharges = cal.StableGenerations * int64(m)
	cal.StableMargin = float64(cal.StableCharges) / float64(cal.Quota)
	return cal, nil
}

// attackGroup simulates the generation-averaging adversary against one
// group: draw horizon fresh UP perturbations of its SA histogram, average
// the MLE reconstructions, and report the stabilization generation (first
// k after which every cell stays within half a record of the raw count
// through the horizon; 0 if it never stabilizes), the first transient
// crossing, and the worst cell error at the quota cutoff.
func attackGroup(g *dataset.Group, p float64, m int, horizon, quotaGens int64, rng *stats.Rand) (stable, transient int64, residual float64) {
	n := g.Size
	sums := make([]float64, m)
	obs := make([]int, m)
	var lastBad int64
	for k := int64(1); k <= horizon; k++ {
		perturb.CountsInto(rng, g.SACounts, p, obs)
		worst := 0.0
		for v := 0; v < m; v++ {
			sums[v] += float64(n) * reconstruct.MLEValue(obs[v], n, p, m)
			if dev := math.Abs(sums[v]/float64(k) - float64(g.SACounts[v])); dev > worst {
				worst = dev
			}
		}
		if k == quotaGens {
			residual = worst
		}
		if worst >= 0.5 {
			lastBad = k
		} else if transient == 0 {
			transient = k
		}
	}
	if lastBad < horizon {
		stable = lastBad + 1
	}
	return stable, transient, residual
}

// groupPinGenerations returns the closed-form k* for one group: the
// fewest averaged generations after which the group's weakest cell —
// the one with the tightest single-generation envelope — resolves to
// within half a record, plus that cell's µ.
func groupPinGenerations(g *dataset.Group, p float64, m int, eps float64) (int64, float64) {
	n := float64(g.Size)
	best := int64(0)
	bestMu := 0.0
	for v := 0; v < m; v++ {
		mu := float64(g.SACounts[v])*p + n*(1-p)/float64(m)
		tol := sim.BernsteinOmega(mu, eps) * mu / p
		if tol > n {
			tol = n // a count deviation cannot exceed the group size
		}
		k := int64(math.Ceil((tol / 0.5) * (tol / 0.5)))
		if k < 1 {
			k = 1
		}
		if best == 0 || k < best {
			best, bestMu = k, mu
		}
	}
	return best, bestMu
}

// String renders the sweep table and the calibration verdict.
func (r *BudgetBenchResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Exposure budget manager at scale (%d draws x %d units per cell, quota %d)\n",
		r.DrawsPerCell, r.ChargeUnits, r.Quota)
	t := &textTable{header: []string{
		"clients", "zipf s", "ns/charge", "accepted", "rejected",
		"tracked", "evict", "MiB", "B/client", "precision", "false(exact)",
	}}
	for i := range r.Cells {
		c := &r.Cells[i]
		t.addRow(
			fmt.Sprintf("%d", c.Clients),
			fmt.Sprintf("%.1f", c.ZipfS),
			fmt.Sprintf("%.0f", c.NSPerCharge),
			fmt.Sprintf("%d", c.Accepted),
			fmt.Sprintf("%d", c.Rejected),
			fmt.Sprintf("%d", c.Tracked),
			fmt.Sprintf("%d", c.Evictions),
			fmt.Sprintf("%.1f", c.MemoryMiB),
			fmt.Sprintf("%.0f", c.BytesPerTracked),
			f4(c.RejectionPrecision),
			fmt.Sprintf("%d", c.ExactFalseRejects),
		)
	}
	sb.WriteString(t.String())
	if c := r.Calibration; c != nil {
		fmt.Fprintf(&sb, "quota calibration on %s (%d groups, m=%d, p=%.2f), averaging adversary vs quota %d:\n",
			c.Dataset, c.Groups, c.M, c.P, c.Quota)
		fmt.Fprintf(&sb, "  certified pin (envelope < 0.5 rec, weakest group size %d, min µ %.1f): %d generations = %d charges (%.0fx quota)\n",
			c.WeakestGroupSize, c.WeakestGroupMinMu, c.ClosedFormGenerations, c.ClosedFormCharges, c.ClosedFormMargin)
		fmt.Fprintf(&sb, "  stable pin (cheapest group, size %d): %d generations = %d charges (%.1fx quota); first transient crossing at %d generations\n",
			c.StableGroupSize, c.StableGenerations, c.StableCharges, c.StableMargin, c.TransientGenerations)
		fmt.Fprintf(&sb, "  budget_exhausted arrives at generation %d; attacker's residual error there: %.2f records\n",
			c.GenerationsAtQuota, c.ResidualErrorAtQuota)
	}
	if len(r.Violations) > 0 {
		for _, v := range r.Violations {
			fmt.Fprintf(&sb, "VIOLATION: %s\n", v)
		}
	} else {
		sb.WriteString("memory bound, exact-rejection precision, and quota margin all hold\n")
	}
	return sb.String()
}
