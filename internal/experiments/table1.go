package experiments

import (
	"fmt"
	"strings"

	"github.com/reconpriv/reconpriv/internal/datagen"
	"github.com/reconpriv/reconpriv/internal/dp"
	"github.com/reconpriv/reconpriv/internal/stats"
)

// Table1Epsilons are the privacy budgets of the paper's Table 1; with query
// sensitivity Δ = 2 they correspond to Laplace scales b = 200, 20, 4.
var Table1Epsilons = []float64{0.01, 0.1, 0.5}

// Table1Sensitivity is Δ = 2, "to account for the two count queries".
const Table1Sensitivity = 2

// Table1Column is one ε column of Table 1.
type Table1Column struct {
	Epsilon float64
	Scale   float64 // b = Δ/ε
	Conf    stats.Summary
	RelErr1 stats.Summary
	RelErr2 stats.Summary
}

// Table1Result reproduces Table 1: the NIR disclosure of the Example-1 rule
// through two differentially private count answers.
type Table1Result struct {
	Ans1, Ans2 int     // true answers to Q1 and Q2
	Conf       float64 // ans2/ans1 = 0.8383
	Trials     int
	Columns    []Table1Column
}

// RunTable1 issues the Example-1 queries against the synthetic ADULT data,
// perturbs the answers with the Laplace mechanism at each ε, and summarizes
// the attacker's confidence estimate and the answers' relative errors over
// the given number of trials (the paper uses 10).
func RunTable1(trials int, seed int64) (*Table1Result, error) {
	ds, err := AdultData()
	if err != nil {
		return nil, err
	}
	conds, sa := datagen.AdultExample1Query()
	ans1, ans2 := 0, 0
	n := ds.Raw.NumRows()
	for r := 0; r < n; r++ {
		row := ds.Raw.Row(r)
		if row[0] == conds[0] && row[1] == conds[1] && row[2] == conds[2] && row[3] == conds[3] {
			ans1++
			if row[4] == sa {
				ans2++
			}
		}
	}
	res := &Table1Result{Ans1: ans1, Ans2: ans2, Conf: float64(ans2) / float64(ans1), Trials: trials}
	rng := stats.NewRand(seed)
	for _, eps := range Table1Epsilons {
		mech := dp.LaplaceMechanism{Epsilon: eps, Sensitivity: Table1Sensitivity}
		atk, err := dp.RatioAttack(rng, mech, float64(ans1), float64(ans2), trials)
		if err != nil {
			return nil, err
		}
		res.Columns = append(res.Columns, Table1Column{
			Epsilon: eps,
			Scale:   mech.Scale(),
			Conf:    atk.Conf,
			RelErr1: atk.RelErr1,
			RelErr2: atk.RelErr2,
		})
	}
	return res, nil
}

// String renders the table in the paper's layout (one ε per column pair).
func (r *Table1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: {Prof-school, Prof-specialty, White, Male} -> >50K  (ans1=%d, ans2=%d, Conf=%.4f, %d trials)\n",
		r.Ans1, r.Ans2, r.Conf, r.Trials)
	t := &textTable{header: []string{"row"}}
	for _, c := range r.Columns {
		t.header = append(t.header, fmt.Sprintf("eps=%g (b=%g) Mean", c.Epsilon, c.Scale), "SE")
	}
	conf := []string{"Conf'"}
	e1 := []string{"|ans1-ans1'|/ans1"}
	e2 := []string{"|ans2-ans2'|/ans2"}
	for _, c := range r.Columns {
		conf = append(conf, f6(c.Conf.Mean), f6(c.Conf.StdErr))
		e1 = append(e1, f6(c.RelErr1.Mean), f6(c.RelErr1.StdErr))
		e2 = append(e2, f6(c.RelErr2.Mean), f6(c.RelErr2.StdErr))
	}
	t.addRow(conf...)
	t.addRow(e1...)
	t.addRow(e2...)
	b.WriteString(t.String())
	return b.String()
}
