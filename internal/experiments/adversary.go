package experiments

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"github.com/reconpriv/reconpriv/internal/core"
	"github.com/reconpriv/reconpriv/internal/dataset"
	"github.com/reconpriv/reconpriv/internal/query"
	"github.com/reconpriv/reconpriv/internal/reconstruct"
	"github.com/reconpriv/reconpriv/internal/stats"
)

// AdversarySeed drives the randomized condition sets of the adversary
// bench.
const AdversarySeed = 7

// AdversaryBenchResult measures the index-backed adversary engine against
// the reference scan path on one SPS publication: the same batch of random
// condition sets answered by reconstruct.Engine (one cube lookup per set)
// and by per-call table scans (the public Reconstruct's observed-counts
// loop), with the numerical agreement of every estimate verified to 1e-12.
type AdversaryBenchResult struct {
	Dataset      string  `json:"dataset"`
	Records      int     `json:"records"`
	Conditions   int     `json:"conditions"` // condition sets in the batch
	Workers      int     `json:"workers"`    // GOMAXPROCS of the run
	IndexMS      float64 `json:"index_ms"`   // marginal-cube build (paid once per publication)
	ScanMS       float64 `json:"scan_ms"`    // per-call scans, sequential (the old adversary path)
	BatchMS      float64 `json:"batch_ms"`   // ReconstructBatch over the same sets
	Speedup      float64 `json:"speedup"`    // ScanMS / BatchMS
	MaxAbsDiff   float64 `json:"max_abs_diff"`
	EmptySubsets int     `json:"empty_subsets"`
}

// RunAdversaryBench publishes a CENSUS sample with SPS, draws nConds random
// condition sets (1–3 public attributes, uniform in-domain values), and
// answers the batch both ways. It fails loudly if any reconstruction
// disagrees beyond 1e-12 — the equivalence is an acceptance criterion, not
// a best-effort comparison.
func RunAdversaryBench(censusSize, nConds int) (*AdversaryBenchResult, error) {
	if nConds <= 0 {
		nConds = 1000
	}
	ds, err := CensusData(censusSize)
	if err != nil {
		return nil, err
	}
	pub, _, err := core.PublishSPSParallel(RunSeed, ds.Groups, DefaultParams, 0)
	if err != nil {
		return nil, err
	}
	table := pub.Table()
	res := &AdversaryBenchResult{
		Dataset:    ds.Name,
		Records:    table.NumRows(),
		Conditions: nConds,
		Workers:    runtime.GOMAXPROCS(0),
	}

	t0 := time.Now()
	marg, err := query.BuildMarginalsFromGroupsParallel(pub, 3, 0)
	if err != nil {
		return nil, err
	}
	res.IndexMS = float64(time.Since(t0).Microseconds()) / 1000
	eng, err := reconstruct.NewEngine(marg, DefaultParams.P)
	if err != nil {
		return nil, err
	}

	sets := randomConditionSets(stats.NewRand(AdversarySeed), pub.Schema, nConds, 3)

	// Reference path: one full table scan per condition set, exactly what
	// the public Reconstruct does per call.
	scanFreqs := make([][]float64, nConds)
	t1 := time.Now()
	for i, set := range sets {
		counts, size := scanSubsetCounts(table, set)
		if size == 0 {
			res.EmptySubsets++
			continue
		}
		f, err := reconstruct.MLE(counts, DefaultParams.P)
		if err != nil {
			return nil, err
		}
		scanFreqs[i] = f
	}
	res.ScanMS = float64(time.Since(t1).Microseconds()) / 1000

	t2 := time.Now()
	batch := eng.ReconstructBatch(sets, reconstruct.BatchOptions{})
	res.BatchMS = float64(time.Since(t2).Microseconds()) / 1000
	if res.BatchMS > 0 {
		res.Speedup = res.ScanMS / res.BatchMS
	}

	for i := range sets {
		b := batch[i]
		if b.Err != nil {
			return nil, fmt.Errorf("experiments: batch set %d failed: %w", i, b.Err)
		}
		if (scanFreqs[i] == nil) != (b.Freqs == nil) {
			return nil, fmt.Errorf("experiments: set %d: scan and batch disagree on emptiness", i)
		}
		for j := range b.Freqs {
			if d := math.Abs(b.Freqs[j] - scanFreqs[i][j]); d > res.MaxAbsDiff {
				res.MaxAbsDiff = d
			}
		}
	}
	if res.MaxAbsDiff > 1e-12 {
		return nil, fmt.Errorf("experiments: adversary paths diverge: max |Δ| = %g > 1e-12", res.MaxAbsDiff)
	}
	return res, nil
}

// RandomConditionSets draws n deterministic condition sets from the
// AdversarySeed stream — the workload shared by the adversary bench and the
// top-level BenchmarkReconstructBatch.
func RandomConditionSets(schema *dataset.Schema, n, maxDim int) [][]reconstruct.Condition {
	return randomConditionSets(stats.NewRand(AdversarySeed), schema, n, maxDim)
}

// randomConditionSets draws n condition sets of 1..maxDim distinct public
// attributes with uniform in-domain values.
func randomConditionSets(rng *stats.Rand, schema *dataset.Schema, n, maxDim int) [][]reconstruct.Condition {
	na := schema.NAIndices()
	if maxDim > len(na) {
		maxDim = len(na)
	}
	sets := make([][]reconstruct.Condition, n)
	for i := range sets {
		dim := 1 + rng.Intn(maxDim)
		attrs := rng.Perm(len(na))[:dim]
		set := make([]reconstruct.Condition, dim)
		for j, ai := range attrs {
			a := na[ai]
			set[j] = reconstruct.Condition{Attr: a, Value: uint16(rng.Intn(schema.Attrs[a].Domain()))}
		}
		sets[i] = set
	}
	return sets
}

// scanSubsetCounts is the reference observed-counts scan: the SA histogram
// and size of the subset matching the condition set.
func scanSubsetCounts(t *dataset.Table, set []reconstruct.Condition) ([]int, int) {
	counts := make([]int, t.Schema.SADomain())
	size := 0
	n := t.NumRows()
	for r := 0; r < n; r++ {
		row := t.Row(r)
		match := true
		for _, c := range set {
			if row[c.Attr] != c.Value {
				match = false
				break
			}
		}
		if match {
			counts[row[t.Schema.SA]]++
			size++
		}
	}
	return counts, size
}

// String renders the bench summary.
func (r *AdversaryBenchResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Adversary engine on %s (|D*| = %d, %d condition sets, GOMAXPROCS = %d)\n",
		r.Dataset, r.Records, r.Conditions, r.Workers)
	t := &textTable{header: []string{"path", "ms", "per set"}}
	perSet := func(ms float64) string {
		return fmt.Sprintf("%.1f us", ms*1000/float64(r.Conditions))
	}
	t.addRow("per-call scans", f3(r.ScanMS), perSet(r.ScanMS))
	t.addRow("ReconstructBatch", f3(r.BatchMS), perSet(r.BatchMS))
	t.addRow("index build (once)", f3(r.IndexMS), "-")
	sb.WriteString(t.String())
	fmt.Fprintf(&sb, "speedup %.1fx, max |Δ| = %.2g, %d empty subsets\n",
		r.Speedup, r.MaxAbsDiff, r.EmptySubsets)
	return sb.String()
}
