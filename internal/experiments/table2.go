package experiments

import (
	"fmt"
	"strings"

	"github.com/reconpriv/reconpriv/internal/dp"
)

// Table 2 grid: Laplace scales (with the ε implied by Δ = 2) × true answers.
var (
	Table2Scales  = []float64{10, 20, 40, 200}
	Table2Answers = []float64{5000, 1000, 500, 200, 100}
)

// Table2Result reproduces Table 2: the disclosure indicator 2(b/x)² of
// Corollary 2 over the grid of noise scales and query answers.
type Table2Result struct {
	Scales  []float64
	Answers []float64
	Values  [][]float64 // [scale][answer]
}

// RunTable2 evaluates the indicator grid. It is deterministic (a closed
// form), which is the point: the disclosure condition can be read off
// before issuing any query.
func RunTable2() *Table2Result {
	res := &Table2Result{Scales: Table2Scales, Answers: Table2Answers}
	for _, b := range res.Scales {
		row := make([]float64, len(res.Answers))
		for i, x := range res.Answers {
			row[i] = dp.Indicator(b, x)
		}
		res.Values = append(res.Values, row)
	}
	return res
}

// String renders the grid in the paper's layout.
func (r *Table2Result) String() string {
	var sb strings.Builder
	sb.WriteString("Table 2: disclosure indicator 2(b/x)^2 (bold in the paper where the ratio certifies disclosure)\n")
	t := &textTable{header: []string{"b \\ x"}}
	for _, x := range r.Answers {
		t.header = append(t.header, fmt.Sprintf("%g", x))
	}
	for i, b := range r.Scales {
		row := []string{fmt.Sprintf("b=%g (eps=%g)", b, Table1Sensitivity/b)}
		for _, v := range r.Values[i] {
			row = append(row, f6(v))
		}
		t.addRow(row...)
	}
	sb.WriteString(t.String())
	return sb.String()
}
