package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"github.com/reconpriv/reconpriv/internal/serve"
	"github.com/reconpriv/reconpriv/internal/wire"
)

// WireWorkload translates the cached Section 6.1 query pool (generalized
// value codes) into both vocabularies the publication server accepts: JSON
// queries speaking original attribute labels and wire queries speaking
// original codes. For each generalized code, any original value that maps
// to it names the same cube cell, so both workloads are the same queries
// and a served-throughput duel between the encodings is apples to apples.
func WireWorkload(ds *Dataset) ([]serve.QueryJSON, []wire.Query) {
	orig := ds.Raw.Schema
	rev := make([]map[uint16]uint16, orig.NumAttrs()) // attr -> new code -> an old code
	for i := range ds.Merge.Mappings {
		mp := &ds.Merge.Mappings[i]
		r := make(map[uint16]uint16, len(mp.NewValues))
		for old, nw := range mp.OldToNew {
			if _, ok := r[nw]; !ok {
				r[nw] = uint16(old)
			}
		}
		rev[mp.Attr] = r
	}
	jqs := make([]serve.QueryJSON, len(ds.Pool.Queries))
	wqs := make([]wire.Query, len(ds.Pool.Queries))
	for i, q := range ds.Pool.Queries {
		jq := serve.QueryJSON{SA: orig.SAAttr().Label(q.SA)}
		wq := wire.Query{SA: q.SA, Conds: make([]wire.Cond, 0, len(q.Conds))}
		for _, c := range q.Conds {
			code := c.Value
			if r := rev[c.Attr]; r != nil {
				code = r[c.Value]
			}
			jq.Conds = append(jq.Conds, serve.CondJSON{
				Attr:  orig.Attrs[c.Attr].Name,
				Value: orig.Attrs[c.Attr].Label(code),
			})
			wq.Conds = append(wq.Conds, wire.Cond{Attr: c.Attr, Value: code})
		}
		jqs[i] = jq
		wqs[i] = wq
	}
	return jqs, wqs
}

// WireBenchRow is one encoding's measured serving profile on the paper's
// 5,000-query batch workload.
type WireBenchRow struct {
	Encoding      string  `json:"encoding"`
	Batches       int64   `json:"batches"`
	RequestBytes  int     `json:"request_bytes"`
	ResponseBytes int     `json:"response_bytes"`
	QueriesPerSec float64 `json:"queries_per_second"`
	MSPerBatch    float64 `json:"ms_per_batch"`
}

// WireBenchResult is the rpbench output for the wire experiment: the same
// served workload through both negotiated encodings, and the throughput
// ratio the tentpole is accepted on.
type WireBenchResult struct {
	CensusSize   int            `json:"census_size"`
	BatchQueries int            `json:"batch_queries"`
	Rows         []WireBenchRow `json:"rows"`
	// Speedup is binary queries/s over JSON queries/s; acceptance is >= 5.
	Speedup float64 `json:"speedup"`
}

// RunWireBench answers the Section 6.1 query pool as repeated HTTP batches
// against a served CENSUS publication, once per encoding, for at least
// `seconds` of wall time each. Both encodings must answer every query
// without a per-query error — the bench pins equivalence before it reports
// a ratio. The JSON row is the BenchmarkServedQueryBatch baseline; the
// binary row is the same workload as application/x-rp-binary frames.
func RunWireBench(censusSize int, seconds float64) (*WireBenchResult, error) {
	ds, err := CensusData(censusSize)
	if err != nil {
		return nil, err
	}
	// Budget enforcement off: the duel replays the 5,000-query batch from
	// one client for the whole timing window, which would exhaust any
	// realistic quota after the first frame.
	srv := serve.New(serve.Config{BudgetQuota: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	e, _, err := srv.Publish(serve.PublishRequest{Dataset: serve.DatasetCensus, Size: censusSize}, true)
	if err != nil {
		return nil, err
	}
	if _, err := e.Publication(); err != nil {
		return nil, err
	}

	jqs, wqs := WireWorkload(ds)
	jbody, err := json.Marshal(map[string]any{"id": e.ID(), "client": "wirebench", "queries": jqs})
	if err != nil {
		return nil, err
	}
	m := wire.QueryReq{ID: []byte(e.ID()), Client: []byte("wirebench"), Queries: wqs}
	frame := m.Append(nil)

	queries := len(wqs)
	out := &WireBenchResult{CensusSize: censusSize, BatchQueries: queries}
	dur := time.Duration(seconds * float64(time.Second))

	jrow, err := duelJSON(ts.URL, jbody, queries, dur)
	if err != nil {
		return nil, err
	}
	brow, err := duelBinary(ts.URL, frame, queries, dur)
	if err != nil {
		return nil, err
	}
	out.Rows = []WireBenchRow{jrow, brow}
	out.Speedup = brow.QueriesPerSec / jrow.QueriesPerSec
	return out, nil
}

func duelJSON(url string, body []byte, queries int, dur time.Duration) (WireBenchRow, error) {
	row := WireBenchRow{Encoding: "json", RequestBytes: len(body)}
	var resp struct {
		Answers []struct {
			Error string `json:"error"`
		} `json:"answers"`
	}
	post := func() error {
		r, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer r.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(r.Body); err != nil {
			return err
		}
		if r.StatusCode != http.StatusOK {
			return fmt.Errorf("experiments: wire json batch returned %d: %s", r.StatusCode, buf.Bytes())
		}
		row.ResponseBytes = buf.Len()
		resp.Answers = resp.Answers[:0]
		if err := json.Unmarshal(buf.Bytes(), &resp); err != nil {
			return err
		}
		if len(resp.Answers) != queries {
			return fmt.Errorf("experiments: wire json batch answered %d of %d", len(resp.Answers), queries)
		}
		for i := range resp.Answers {
			if resp.Answers[i].Error != "" {
				return fmt.Errorf("experiments: wire json query %d: %s", i, resp.Answers[i].Error)
			}
		}
		return nil
	}
	if err := post(); err != nil { // warm up outside the timed window
		return row, err
	}
	start := time.Now()
	for time.Since(start) < dur {
		if err := post(); err != nil {
			return row, err
		}
		row.Batches++
	}
	elapsed := time.Since(start)
	row.QueriesPerSec = float64(row.Batches) * float64(queries) / elapsed.Seconds()
	row.MSPerBatch = elapsed.Seconds() * 1e3 / float64(row.Batches)
	return row, nil
}

func duelBinary(url string, frame []byte, queries int, dur time.Duration) (WireBenchRow, error) {
	row := WireBenchRow{Encoding: "binary", RequestBytes: len(frame)}
	var resp wire.QueryResp
	var buf bytes.Buffer
	post := func() error {
		r, err := http.Post(url+"/query", wire.ContentType, bytes.NewReader(frame))
		if err != nil {
			return err
		}
		defer r.Body.Close()
		buf.Reset()
		if _, err := buf.ReadFrom(r.Body); err != nil {
			return err
		}
		if r.StatusCode != http.StatusOK {
			return fmt.Errorf("experiments: wire binary batch returned %d: %s", r.StatusCode, buf.Bytes())
		}
		row.ResponseBytes = buf.Len()
		if err := resp.Decode(buf.Bytes()); err != nil {
			return err
		}
		if len(resp.Answers) != queries {
			return fmt.Errorf("experiments: wire binary batch answered %d of %d", len(resp.Answers), queries)
		}
		for i := range resp.Answers {
			if resp.Answers[i].Err != nil {
				return fmt.Errorf("experiments: wire binary query %d: %s", i, resp.Answers[i].Err)
			}
		}
		return nil
	}
	if err := post(); err != nil {
		return row, err
	}
	start := time.Now()
	for time.Since(start) < dur {
		if err := post(); err != nil {
			return row, err
		}
		row.Batches++
	}
	elapsed := time.Since(start)
	row.QueriesPerSec = float64(row.Batches) * float64(queries) / elapsed.Seconds()
	row.MSPerBatch = elapsed.Seconds() * 1e3 / float64(row.Batches)
	return row, nil
}

// String renders the duel as a table with the acceptance ratio.
func (r *WireBenchResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Served wire-protocol throughput (CENSUS %d, %d queries/batch)\n",
		r.CensusSize, r.BatchQueries)
	t := &textTable{header: []string{"encoding", "batches", "req bytes", "resp bytes", "queries/s", "ms/batch"}}
	for _, row := range r.Rows {
		t.addRow(
			row.Encoding,
			fmt.Sprint(row.Batches),
			fmt.Sprint(row.RequestBytes),
			fmt.Sprint(row.ResponseBytes),
			fmt.Sprintf("%.0f", row.QueriesPerSec),
			fmt.Sprintf("%.2f", row.MSPerBatch),
		)
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "binary/json speedup: %.1fx\n", r.Speedup)
	return b.String()
}
