package experiments

import (
	"fmt"
	"strings"

	"github.com/reconpriv/reconpriv/internal/sim"
)

// SimMixedResult is the rpbench row for the mixed workload simulation: the
// deterministic run summary next to its wall-clock measurements. The
// summary half is byte-stable under the frozen seed; the timing half is the
// serving throughput the simulator measured end to end over real HTTP.
type SimMixedResult struct {
	Summary sim.Summary `json:"summary"`
	Timing  sim.Timing  `json:"timing"`
}

// RunSimMixed drives the built-in mixed scenario (queries, inserts,
// refreshes, reconstructions, and audits against one streaming publication)
// with the given population and fails if any serving invariant was violated
// — like the adversary bench's equivalence check, a clean run is an
// acceptance criterion, not a best-effort report.
func RunSimMixed(clients, steps int, seed int64) (*SimMixedResult, error) {
	sc, err := sim.Lookup("mixed")
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(sim.Options{Scenario: sc, Seed: seed, Clients: clients, Steps: steps})
	if err != nil {
		return nil, err
	}
	if v := res.Summary.Invariants.Violations; v > 0 {
		return nil, fmt.Errorf("experiments: mixed simulation violated %d invariants: %s",
			v, strings.Join(res.Summary.Invariants.Failures, "; "))
	}
	return &SimMixedResult{Summary: res.Summary, Timing: res.Timing}, nil
}

// String renders the simulation summary.
func (r *SimMixedResult) String() string {
	var b strings.Builder
	s := &r.Summary
	fmt.Fprintf(&b, "Mixed workload simulation (seed %d, %d clients x %d steps)\n",
		s.Seed, s.Clients, s.StepsPerClient)
	t := &textTable{header: []string{"op", "batches", "items"}}
	t.addRow("query", fmt.Sprint(s.Ops.Query), fmt.Sprint(s.Queries))
	t.addRow("insert", fmt.Sprint(s.Ops.Insert), fmt.Sprint(s.RecordsInserted))
	t.addRow("refresh", fmt.Sprint(s.Ops.Refresh), "-")
	t.addRow("reconstruct", fmt.Sprint(s.Ops.Reconstruct), fmt.Sprint(s.Subsets))
	t.addRow("audit", fmt.Sprint(s.Ops.Audit), "-")
	b.WriteString(t.String())
	fmt.Fprintf(&b, "%.0f requests/s, %.0f queries/s over %.1f ms; %d invariant checks, %d violations\n",
		r.Timing.RequestsPerSec, r.Timing.QueriesPerSec, r.Timing.WallMS,
		s.Invariants.Checks, s.Invariants.Violations)
	return b.String()
}
