package experiments

import (
	"fmt"
	"math"
	"strings"

	"github.com/reconpriv/reconpriv/internal/bounds"
	"github.com/reconpriv/reconpriv/internal/core"
	"github.com/reconpriv/reconpriv/internal/perturb"
	"github.com/reconpriv/reconpriv/internal/query"
	"github.com/reconpriv/reconpriv/internal/reconstruct"
	"github.com/reconpriv/reconpriv/internal/stats"
)

// BoundsAblationRow is one tail bound's induced group-size threshold and the
// violation rates it yields on both data sets.
type BoundsAblationRow struct {
	Bound    string
	SGAdult  float64 // s_g at (f=0.75, m=2) — a typical ADULT group
	SGCensus float64 // s_g at (f=0.05, m=50) — a typical CENSUS group
	AdultVG  float64
	AdultVR  float64
	CensusVG float64
	CensusVR float64
}

// BoundsAblation compares the bounds pluggable through Theorem 2.
type BoundsAblation struct {
	Rows []BoundsAblationRow
}

// RunBoundsAblation quantifies why the paper adopts the Chernoff bound: a
// looser plugged-in bound yields a larger "best known" upper bound, hence a
// larger admissible group size s_g and fewer detected violations — i.e. a
// weaker test of the same criterion.
func RunBoundsAblation(censusSize int) (*BoundsAblation, error) {
	adult, err := AdultData()
	if err != nil {
		return nil, err
	}
	census, err := CensusData(censusSize)
	if err != nil {
		return nil, err
	}
	res := &BoundsAblation{}
	for _, b := range []bounds.TailBound{bounds.Chernoff{}, bounds.Bernstein{}, bounds.Chebyshev{}, bounds.Hoeffding{}, bounds.Markov{}} {
		row := BoundsAblationRow{Bound: b.Name()}
		row.SGAdult = core.MaxGroupSizeForBound(b, 0.75, 2, DefaultParams)
		row.SGCensus = core.MaxGroupSizeForBound(b, 0.05, 50, DefaultParams)
		for _, ds := range []*Dataset{adult, census} {
			m := ds.Groups.Schema.SADomain()
			groups, records := 0, 0
			vGroups, vRecords := 0, 0
			for i := range ds.Groups.Groups {
				g := &ds.Groups.Groups[i]
				groups++
				records += g.Size
				if float64(g.Size) > core.MaxGroupSizeForBound(b, g.MaxFreq(), m, DefaultParams) {
					vGroups++
					vRecords += g.Size
				}
			}
			vg := float64(vGroups) / float64(groups)
			vr := float64(vRecords) / float64(records)
			if ds == adult {
				row.AdultVG, row.AdultVR = vg, vr
			} else {
				row.CensusVG, row.CensusVR = vg, vr
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the comparison.
func (r *BoundsAblation) String() string {
	var sb strings.Builder
	sb.WriteString("Ablation: plugged-in tail bound (Theorem 2) at default parameters\n")
	t := &textTable{header: []string{"bound", "sg(adult f=.75)", "sg(census f=.05)", "adult vg", "adult vr", "census vg", "census vr"}}
	for _, row := range r.Rows {
		t.addRow(row.Bound, fmtSG(row.SGAdult), fmtSG(row.SGCensus),
			pct(row.AdultVG), pct(row.AdultVR), pct(row.CensusVG), pct(row.CensusVR))
	}
	sb.WriteString(t.String())
	return sb.String()
}

func fmtSG(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.0f", v)
}

// EstimatorAblationRow compares the three reconstruction estimators on one
// subset size: mean L1 distance between the estimate and the true frequency
// vector over the trials.
type EstimatorAblationRow struct {
	Size   int
	MLE    float64
	Matrix float64
	EM     float64
}

// EstimatorAblation compares MLE, matrix-inverse MLE, and iterative Bayes.
type EstimatorAblation struct {
	M      int
	P      float64
	Trials int
	Rows   []EstimatorAblationRow
}

// RunEstimatorAblation perturbs synthetic subsets of varying size and
// measures each estimator's L1 reconstruction error. MLE and the matrix
// form must coincide (they are the same estimator); EM trades a small bias
// for staying on the probability simplex, which pays off on small subsets.
func RunEstimatorAblation(trials int, seed int64) (*EstimatorAblation, error) {
	const m = 10
	p := DefaultParams.P
	truth := []float64{0.30, 0.20, 0.15, 0.10, 0.08, 0.06, 0.05, 0.03, 0.02, 0.01}
	rng := stats.NewRand(seed)
	res := &EstimatorAblation{M: m, P: p, Trials: trials}
	for _, size := range []int{50, 200, 1000, 5000, 20000} {
		var sumMLE, sumMat, sumEM float64
		for trial := 0; trial < trials; trial++ {
			counts := make([]int, m)
			for i := 0; i < size; i++ {
				sa := stats.Categorical(rng, truth)
				counts[perturb.Value(rng, uint16(sa), m, p)]++
			}
			mle, err := reconstruct.MLE(counts, p)
			if err != nil {
				return nil, err
			}
			mat, err := reconstruct.MatrixMLE(counts, p)
			if err != nil {
				return nil, err
			}
			em, err := reconstruct.IterativeBayes(counts, p, 500, 1e-9)
			if err != nil {
				return nil, err
			}
			sumMLE += l1(mle, truth)
			sumMat += l1(mat, truth)
			sumEM += l1(em, truth)
		}
		res.Rows = append(res.Rows, EstimatorAblationRow{
			Size:   size,
			MLE:    sumMLE / float64(trials),
			Matrix: sumMat / float64(trials),
			EM:     sumEM / float64(trials),
		})
	}
	return res, nil
}

func l1(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// String renders the estimator comparison.
func (r *EstimatorAblation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation: reconstruction estimators (m=%d, p=%.1f, %d trials, L1 error)\n", r.M, r.P, r.Trials)
	t := &textTable{header: []string{"|S|", "MLE", "matrix MLE", "iterative Bayes"}}
	for _, row := range r.Rows {
		t.addRow(fmt.Sprintf("%d", row.Size), f4(row.MLE), f4(row.Matrix), f4(row.EM))
	}
	sb.WriteString(t.String())
	return sb.String()
}

// ReducePAblation compares SPS against the rejected alternative of Section
// 5: shrinking the retention probability globally until no group violates.
type ReducePAblation struct {
	Dataset   string
	OriginalP float64
	ReducedP  float64
	Runs      int
	UPError   stats.Summary // baseline UP at the original p (violating)
	SPSError  stats.Summary // SPS at the original p (private)
	ReduceP   stats.Summary // UP at the reduced p (private)
}

// RunReducePAblation quantifies the paper's argument that "reducing p has a
// global effect of making the perturbed data too noisy": both SPS and
// reduce-p achieve reconstruction privacy, but reduce-p pays with a much
// larger query error.
func RunReducePAblation(adult bool, censusSize, runs int) (*ReducePAblation, error) {
	var ds *Dataset
	var err error
	if adult {
		ds, err = AdultData()
	} else {
		ds, err = CensusData(censusSize)
	}
	if err != nil {
		return nil, err
	}
	pm := DefaultParams
	reduced, err := core.RetentionForNoViolation(ds.Groups, pm)
	if err != nil {
		return nil, err
	}
	res := &ReducePAblation{Dataset: ds.Name, OriginalP: pm.P, ReducedP: reduced, Runs: runs}
	var upErrs, spsErrs, redErrs []float64
	for run := 0; run < runs; run++ {
		rng := stats.NewRand(RunSeed + int64(run))
		up, err := core.PublishUP(rng, ds.Groups, pm.P)
		if err != nil {
			return nil, err
		}
		upMarg, err := query.BuildMarginalsFromGroups(up, 3)
		if err != nil {
			return nil, err
		}
		upRep, err := ds.Pool.Evaluate(upMarg, pm.P)
		if err != nil {
			return nil, err
		}
		sps, _, err := core.PublishSPS(rng, ds.Groups, pm)
		if err != nil {
			return nil, err
		}
		spsMarg, err := query.BuildMarginalsFromGroups(sps, 3)
		if err != nil {
			return nil, err
		}
		spsRep, err := ds.Pool.Evaluate(spsMarg, pm.P)
		if err != nil {
			return nil, err
		}
		red, err := core.PublishUP(rng, ds.Groups, reduced)
		if err != nil {
			return nil, err
		}
		redMarg, err := query.BuildMarginalsFromGroups(red, 3)
		if err != nil {
			return nil, err
		}
		redRep, err := ds.Pool.Evaluate(redMarg, reduced)
		if err != nil {
			return nil, err
		}
		upErrs = append(upErrs, upRep.AvgError)
		spsErrs = append(spsErrs, spsRep.AvgError)
		redErrs = append(redErrs, redRep.AvgError)
	}
	res.UPError = stats.MustSummarize(upErrs)
	res.SPSError = stats.MustSummarize(spsErrs)
	res.ReduceP = stats.MustSummarize(redErrs)
	return res, nil
}

// String renders the three-way comparison.
func (r *ReducePAblation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation: SPS vs globally reducing p on %s (%d runs)\n", r.Dataset, r.Runs)
	t := &textTable{header: []string{"publication", "p", "private?", "avg rel err", "se"}}
	t.addRow("UP", fmt.Sprintf("%.3f", r.OriginalP), "no", pct(r.UPError.Mean), f4(r.UPError.StdErr))
	t.addRow("SPS", fmt.Sprintf("%.3f", r.OriginalP), "yes", pct(r.SPSError.Mean), f4(r.SPSError.StdErr))
	t.addRow("UP reduced-p", fmt.Sprintf("%.3f", r.ReducedP), "yes", pct(r.ReduceP.Mean), f4(r.ReduceP.StdErr))
	sb.WriteString(t.String())
	return sb.String()
}
