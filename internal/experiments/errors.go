package experiments

import (
	"fmt"
	"strings"

	"github.com/reconpriv/reconpriv/internal/core"
	"github.com/reconpriv/reconpriv/internal/query"
	"github.com/reconpriv/reconpriv/internal/stats"
)

// ErrorPoint is one x position of a relative-error curve: the pool-average
// relative error of count queries answered from UP- and SPS-published data,
// averaged over the experiment's runs (the paper averages 10 runs).
type ErrorPoint struct {
	X   float64
	UP  stats.Summary
	SPS stats.Summary
}

// ErrorSweep reproduces one panel of Figures 3 (ADULT) or 5 (CENSUS).
type ErrorSweep struct {
	Dataset string
	Var     SweepVar
	Runs    int
	Points  []ErrorPoint
}

// RunErrorSweep evaluates the 5,000-query pool against UP and SPS
// publications at every grid position, over `runs` independent
// perturbations. The published data is indexed group-level, so each run
// costs O(|D| + |G|·m + |pool|).
func RunErrorSweep(adult bool, v SweepVar, censusSize, runs int) (*ErrorSweep, error) {
	if adult && v == SweepSize {
		return nil, fmt.Errorf("experiments: the size sweep is CENSUS-only")
	}
	if runs < 1 {
		return nil, fmt.Errorf("experiments: need at least one run, got %d", runs)
	}
	xs, err := sweepValues(v)
	if err != nil {
		return nil, err
	}
	sweep := &ErrorSweep{Var: v, Runs: runs}
	for _, x := range xs {
		var ds *Dataset
		if adult {
			ds, err = AdultData()
		} else if v == SweepSize {
			ds, err = CensusData(int(x))
		} else {
			ds, err = CensusData(censusSize)
		}
		if err != nil {
			return nil, err
		}
		sweep.Dataset = ds.Name
		pm := paramsAt(v, x)
		upErrs := make([]float64, 0, runs)
		spsErrs := make([]float64, 0, runs)
		for run := 0; run < runs; run++ {
			rng := stats.NewRand(RunSeed + int64(run))
			up, err := core.PublishUP(rng, ds.Groups, pm.P)
			if err != nil {
				return nil, err
			}
			upMarg, err := query.BuildMarginalsFromGroups(up, 3)
			if err != nil {
				return nil, err
			}
			upRep, err := ds.Pool.Evaluate(upMarg, pm.P)
			if err != nil {
				return nil, err
			}
			sps, _, err := core.PublishSPS(rng, ds.Groups, pm)
			if err != nil {
				return nil, err
			}
			spsMarg, err := query.BuildMarginalsFromGroups(sps, 3)
			if err != nil {
				return nil, err
			}
			spsRep, err := ds.Pool.Evaluate(spsMarg, pm.P)
			if err != nil {
				return nil, err
			}
			upErrs = append(upErrs, upRep.AvgError)
			spsErrs = append(spsErrs, spsRep.AvgError)
		}
		sweep.Points = append(sweep.Points, ErrorPoint{
			X:   x,
			UP:  stats.MustSummarize(upErrs),
			SPS: stats.MustSummarize(spsErrs),
		})
	}
	if v == SweepSize {
		sweep.Dataset = "CENSUS"
	}
	return sweep, nil
}

// String renders the two series with their standard errors.
func (s *ErrorSweep) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s relative error vs %s (SPS vs UP, %d runs, 5000-query pool)\n", s.Dataset, s.Var, s.Runs)
	t := &textTable{header: []string{string(s.Var), "UP err", "UP se", "SPS err", "SPS se", "SPS/UP"}}
	for _, pt := range s.Points {
		x := fmt.Sprintf("%g", pt.X)
		if s.Var == SweepSize {
			x = fmt.Sprintf("%gK", pt.X/1000)
		}
		ratio := pt.SPS.Mean / pt.UP.Mean
		t.addRow(x, pct(pt.UP.Mean), f4(pt.UP.StdErr), pct(pt.SPS.Mean), f4(pt.SPS.StdErr), fmt.Sprintf("%.2fx", ratio))
	}
	sb.WriteString(t.String())
	return sb.String()
}
