package experiments

import (
	"fmt"
	"strings"
)

// textTable accumulates rows and renders them with aligned columns; every
// experiment result uses it so rpbench output reads like the paper's tables.
type textTable struct {
	header []string
	rows   [][]string
}

func (t *textTable) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *textTable) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string  { return fmt.Sprintf("%.4f", v) }
func f6(v float64) string  { return fmt.Sprintf("%.6g", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
