package perturb

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGammaDiagonalEqualsUniformMatrix(t *testing.T) {
	// Property: Matrix(m, RetentionForGamma(γ)) == GammaDiagonal(m, γ).
	prop := func(mRaw, gRaw uint8) bool {
		m := 2 + int(mRaw%60)
		gamma := 1.01 + float64(gRaw)/4
		p, err := RetentionForGamma(gamma, m)
		if err != nil {
			return false
		}
		uniform := Matrix(m, p)
		gd, err := GammaDiagonal(m, gamma)
		if err != nil {
			return false
		}
		for j := 0; j < m; j++ {
			for i := 0; i < m; i++ {
				if math.Abs(uniform[j][i]-gd[j][i]) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestGammaDiagonalColumnStochastic(t *testing.T) {
	gd, err := GammaDiagonal(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		var sum float64
		for j := 0; j < 5; j++ {
			sum += gd[j][i]
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("column %d sums to %v", i, sum)
		}
	}
}

func TestGammaDiagonalAmplification(t *testing.T) {
	// The matrix's diagonal/off-diagonal ratio is exactly γ, and the
	// round trip through p recovers γ via Amplification.
	const m = 8
	const gamma = 4.5
	gd, err := GammaDiagonal(m, gamma)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := gd[0][0] / gd[1][0]; math.Abs(ratio-gamma) > 1e-12 {
		t.Errorf("matrix ratio = %v, want %v", ratio, gamma)
	}
	p, err := RetentionForGamma(gamma, m)
	if err != nil {
		t.Fatal(err)
	}
	if got := Amplification(p, m); math.Abs(got-gamma) > 1e-9 {
		t.Errorf("Amplification(RetentionForGamma(γ)) = %v, want %v", got, gamma)
	}
}

func TestGammaDiagonalValidation(t *testing.T) {
	if _, err := GammaDiagonal(1, 2); err == nil {
		t.Error("m=1 should error")
	}
	if _, err := GammaDiagonal(5, 1); err == nil {
		t.Error("gamma=1 should error")
	}
	if _, err := GammaDiagonal(5, math.Inf(1)); err == nil {
		t.Error("infinite gamma should error")
	}
	if _, err := RetentionForGamma(0.5, 5); err == nil {
		t.Error("gamma<1 should error")
	}
	if _, err := RetentionForGamma(2, 0); err == nil {
		t.Error("m=0 should error")
	}
}
