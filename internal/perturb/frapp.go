package perturb

import (
	"fmt"
	"math"
)

// FRAPP (Agrawal & Haritsa, ICDE 2005 — the paper's reference [25]) shows
// that among all perturbation matrices with amplification γ, the
// "gamma-diagonal" matrix maximizes utility:
//
//	P[j][i] = γ·x  if i == j,   x  otherwise,   x = 1/(γ + m − 1).
//
// Uniform perturbation with retention probability p is exactly the
// gamma-diagonal matrix with γ = 1 + pm/(1−p) — the identity these helpers
// expose (and the tests prove), which is why the paper can enforce ρ1-ρ2
// privacy "through a proper choice of p" without leaving the uniform
// operator.

// GammaDiagonal returns the m×m gamma-diagonal matrix with amplification γ.
// γ must exceed 1 (γ = 1 is the useless uniform-output matrix; γ → ∞ is the
// identity).
func GammaDiagonal(m int, gamma float64) ([][]float64, error) {
	if m < 2 {
		return nil, fmt.Errorf("perturb: domain must have at least 2 values, got %d", m)
	}
	if gamma <= 1 || math.IsInf(gamma, 0) || math.IsNaN(gamma) {
		return nil, fmt.Errorf("perturb: amplification must be a finite value > 1, got %v", gamma)
	}
	x := 1 / (gamma + float64(m) - 1)
	P := make([][]float64, m)
	for j := 0; j < m; j++ {
		P[j] = make([]float64, m)
		for i := 0; i < m; i++ {
			if i == j {
				P[j][i] = gamma * x
			} else {
				P[j][i] = x
			}
		}
	}
	return P, nil
}

// RetentionForGamma returns the retention probability whose uniform
// perturbation matrix equals the gamma-diagonal matrix with amplification γ:
// p = (γ−1)/(γ−1+m).
func RetentionForGamma(gamma float64, m int) (float64, error) {
	if m < 2 {
		return 0, fmt.Errorf("perturb: domain must have at least 2 values, got %d", m)
	}
	if gamma <= 1 || math.IsInf(gamma, 0) || math.IsNaN(gamma) {
		return 0, fmt.Errorf("perturb: amplification must be a finite value > 1, got %v", gamma)
	}
	return (gamma - 1) / (gamma - 1 + float64(m)), nil
}
